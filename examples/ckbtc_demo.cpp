// Chain-key Bitcoin demo: deposit native BTC, receive 1:1 tokens that move
// at IC speed/cost, then withdraw native BTC — all without a bridge or
// custodian (the paper's answer to WBTC/RSK/THORChain in §V).
//
// Build & run:  cmake --build build && ./build/examples/ckbtc_demo
// After the walkthrough it runs a settlement wave: thousands of user
// withdrawals authorized through the subnet's batched threshold-signing
// pipeline, with the tecdsa.* metrics printed at the end.
#include <chrono>
#include <cstdio>

#include "btcnet/harness.h"
#include "contracts/ckbtc_minter.h"
#include "crypto/presig_pool.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"

using namespace icbtc;

int main() {
  std::printf("=== chain-key BTC (ckBTC-style minter) demo ===\n\n");

  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  btcnet::BitcoinNetworkConfig btc_config;
  btc_config.num_nodes = 10;
  btc_config.num_miners = 1;
  btc_config.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness bitcoin_net(sim, params, btc_config, 91);
  sim.run();

  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  subnet_config.num_byzantine = 4;
  subnet_config.ecdsa_presig_depth = 256;  // sized for the settlement wave
  subnet_config.ecdsa_presig_low_watermark = 64;
  ic::Subnet subnet(sim, subnet_config, 92);
  obs::MetricsRegistry metrics;
  subnet.ecdsa().set_metrics(&metrics);
  canister::IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 8;
  config.adapter.multi_block_below_height = 1 << 30;
  config.canister = canister::CanisterConfig::for_params(params);
  canister::BitcoinIntegration integration(subnet, bitcoin_net.network(), params, config, 93);
  subnet.start();
  integration.start();

  contracts::CkBtcMinter minter(integration, "demo", /*required_confirmations=*/2);

  auto pay = [&](const std::string& address, bitcoin::Amount amount, std::uint64_t tag) {
    auto decoded = bitcoin::decode_address(address, params.network);
    auto& node = bitcoin_net.node(0);
    auto block = chain::build_child_block(
        node.tree(), node.best_tip(),
        static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond + 600),
        bitcoin::script_for_address(*decoded), amount, {}, tag);
    node.submit_block(block);
    sim.run_until(sim.now() + 3 * util::kMinute);
  };
  auto mine = [&](int n) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + 600 * util::kSecond);
      bitcoin_net.miners()[0]->mine_one();
    }
    sim.run_until(sim.now() + 3 * util::kMinute);
  };

  // 1. Alice deposits 1 BTC to her personal minter address.
  std::string alice_deposit = minter.deposit_address_for("alice");
  std::printf("[alice] deposit address: %s\n", alice_deposit.c_str());
  pay(alice_deposit, bitcoin::kCoin, 1);
  std::printf("[alice] deposited 1 BTC; confirmations required: %d\n",
              minter.required_confirmations());
  std::printf("[alice] tokens before confirmation: %.8f ckBTC\n",
              static_cast<double>(minter.ledger().balance_of("alice")) / bitcoin::kCoin);
  mine(2);
  minter.update_balance("alice");
  std::printf("[alice] tokens after 2 more blocks:  %.8f ckBTC\n\n",
              static_cast<double>(minter.ledger().balance_of("alice")) / bitcoin::kCoin);

  // 2. Tokens move instantly — no Bitcoin transaction, sub-cent cost.
  minter.ledger().transfer("alice", "bob", 40'000'000);
  minter.ledger().transfer("bob", "carol", 15'000'000);
  std::printf("token transfers (no Bitcoin tx, seconds not hours):\n");
  for (const char* who : {"alice", "bob", "carol"}) {
    std::printf("  %-6s %.8f ckBTC\n", who,
                static_cast<double>(minter.ledger().balance_of(who)) / bitcoin::kCoin);
  }
  std::printf("  total supply %.8f, backed by %.8f BTC on-chain\n\n",
              static_cast<double>(minter.ledger().total_supply()) / bitcoin::kCoin,
              static_cast<double>(minter.managed_btc()) / bitcoin::kCoin);

  // 3. Carol withdraws to a native Bitcoin address.
  util::Hash160 carol_key;
  carol_key.data[0] = 0xca;
  std::string carol_btc = bitcoin::p2pkh_address(carol_key, params.network);
  auto result = minter.retrieve_btc("carol", carol_btc, 15'000'000);
  std::printf("[carol] retrieve_btc 0.15 to %s\n", carol_btc.c_str());
  std::printf("  txid %s, fee %lld sat (status: %s)\n", result.txid.rpc_hex().c_str(),
              static_cast<long long>(result.fee), canister::to_string(result.status));
  sim.run_until(sim.now() + 3 * util::kMinute);
  mine(1);
  auto balance = integration.query_get_balance(carol_btc);
  std::printf("  on-chain balance: %.8f BTC\n",
              static_cast<double>(balance.outcome.value) / bitcoin::kCoin);
  std::printf("  remaining supply %.8f ckBTC\n",
              static_cast<double>(minter.ledger().total_supply()) / bitcoin::kCoin);

  // 4. Heavy traffic: a settlement wave. 2048 users authorize withdrawals in
  // the same window; the minter submits each round's pending requests as one
  // sign_with_ecdsa_batch call (shared Lagrange coefficients, one batched
  // verification), drawing nonces from the subnet's presignature pool.
  const std::size_t wave_users = 2048;
  const std::size_t round_batch = 128;
  std::printf("\nsettlement wave: %zu withdrawal authorizations, batches of %zu\n", wave_users,
              round_batch);
  std::vector<crypto::ThresholdEcdsaService::SignRequest> wave;
  wave.reserve(wave_users);
  for (std::size_t u = 0; u < wave_users; ++u) {
    std::string account = "user-" + std::to_string(u);
    std::string msg = "withdraw " + std::to_string(1000 + u) + " sat for " + account;
    auto digest = crypto::Sha256::hash(
        util::ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    wave.push_back({digest, crypto::DerivationPath{
                                {'c', 'k', 'b', 't', 'c'},
                                util::Bytes(account.begin(), account.end())}});
  }
  std::vector<crypto::Signature> wave_sigs;
  wave_sigs.reserve(wave_users);
  auto wall0 = std::chrono::steady_clock::now();
  for (std::size_t off = 0; off < wave.size(); off += round_batch) {
    std::size_t count = std::min(round_batch, wave.size() - off);
    std::vector<crypto::ThresholdEcdsaService::SignRequest> batch(
        wave.begin() + static_cast<std::ptrdiff_t>(off),
        wave.begin() + static_cast<std::ptrdiff_t>(off + count));
    auto sigs = subnet.sign_with_ecdsa_batch(batch);
    wave_sigs.insert(wave_sigs.end(), sigs.begin(), sigs.end());
  }
  double wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  std::size_t bad = 0;
  for (std::size_t u = 0; u < wave_users; ++u) {
    if (!crypto::verify(subnet.ecdsa().public_key(wave[u].path), wave[u].digest, wave_sigs[u])) {
      ++bad;
    }
  }
  std::printf("  %zu signatures in %.3f s (%.0f sigs/s), %zu verification failures\n",
              wave_users, wall_s, static_cast<double>(wave_users) / wall_s, bad);

  std::printf("\ntecdsa.* metrics after the wave:\n%s", obs::to_table(metrics).c_str());
  std::printf("=== done ===\n");
  return bad == 0 ? 0 : 1;
}
