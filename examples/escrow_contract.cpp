// Escrow: a buyer and a seller settle a purchase through a smart contract
// that holds the deposit under a threshold key — one of the applications
// the paper's introduction motivates. The arbiter logic runs as canister
// code; neither party (nor any single IC node) can move the funds alone.
//
// Build & run:  cmake --build build && ./build/examples/escrow_contract
// The walkthrough settles one order; the scaled section then runs an escrow
// marketplace — thousands of concurrent orders, each with its own threshold
// key, release authorizations signed through the batched pipeline.
#include <chrono>
#include <cstdio>
#include <memory>

#include "btcnet/harness.h"
#include "contracts/escrow.h"
#include "crypto/sha256.h"

using namespace icbtc;

namespace {

struct Stack {
  util::Simulation sim;
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  std::unique_ptr<btcnet::BitcoinNetworkHarness> bitcoin_net;
  std::unique_ptr<ic::Subnet> subnet;
  std::unique_ptr<canister::BitcoinIntegration> integration;
  std::uint64_t tag = 1;

  Stack() {
    btcnet::BitcoinNetworkConfig btc_config;
    btc_config.num_nodes = 10;
    btc_config.num_miners = 1;
    btc_config.ipv6_fraction = 1.0;
    bitcoin_net = std::make_unique<btcnet::BitcoinNetworkHarness>(sim, params, btc_config, 21);
    sim.run();
    ic::SubnetConfig subnet_config;
    subnet_config.num_nodes = 13;
    subnet = std::make_unique<ic::Subnet>(sim, subnet_config, 22);
    canister::IntegrationConfig config;
    config.adapter.addr_lower_threshold = 3;
    config.adapter.addr_upper_threshold = 8;
    config.adapter.multi_block_below_height = 1 << 30;
    config.canister = canister::CanisterConfig::for_params(params);
    integration = std::make_unique<canister::BitcoinIntegration>(
        *subnet, bitcoin_net->network(), params, config, 23);
    subnet->start();
    integration->start();
  }

  void pay(const std::string& address, bitcoin::Amount amount) {
    auto& node = bitcoin_net->node(0);
    auto decoded = bitcoin::decode_address(address, params.network);
    auto block = chain::build_child_block(
        node.tree(), node.best_tip(),
        static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond + 600),
        bitcoin::script_for_address(*decoded), amount, {}, tag++);
    node.submit_block(block);
    settle();
  }

  void mine(int n) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + 600 * util::kSecond);
      bitcoin_net->miners()[0]->mine_one();
    }
    settle();
  }

  void settle() { sim.run_until(sim.now() + 3 * util::kMinute); }

  double balance_of(const std::string& address) {
    auto result = integration->query_get_balance(address);
    return static_cast<double>(result.outcome.value) / bitcoin::kCoin;
  }
};

}  // namespace

int main() {
  std::printf("=== escrow contract example ===\n\n");
  Stack stack;

  util::Hash160 buyer_hash, seller_hash;
  buyer_hash.data[0] = 0xb0;
  seller_hash.data[0] = 0x50;
  std::string buyer = bitcoin::p2pkh_address(buyer_hash, stack.params.network);
  std::string seller = bitcoin::p2pkh_address(seller_hash, stack.params.network);

  // The contract demands 3 confirmations before treating the deposit as
  // final — the c* of the paper's security analysis (§IV-A).
  contracts::EscrowContract escrow(*stack.integration, "order-1001", buyer, seller,
                                   2 * bitcoin::kCoin, /*required_confirmations=*/3);
  std::printf("Escrow created: 2 BTC, 3 confirmations required\n");
  std::printf("  deposit address: %s (threshold key, no single holder)\n\n",
              escrow.deposit_address().c_str());

  std::printf("[buyer] depositing 2 BTC...\n");
  stack.pay(escrow.deposit_address(), 2 * bitcoin::kCoin);
  std::printf("  state after 1 block:  %s\n", to_string(escrow.refresh()));
  stack.mine(1);
  std::printf("  state after 2 blocks: %s\n", to_string(escrow.refresh()));
  stack.mine(2);
  std::printf("  state after 4 blocks: %s\n\n", to_string(escrow.refresh()));

  std::printf("[seller] ships the goods; [arbiter canister] releases the funds\n");
  auto released = escrow.release();
  std::printf("  release txid: %s (status: %s)\n", released.txid.rpc_hex().c_str(),
              canister::to_string(released.status));
  stack.settle();
  stack.mine(1);

  std::printf("\nFinal balances (via the Bitcoin canister):\n");
  std::printf("  seller: %.8f BTC\n", stack.balance_of(seller));
  std::printf("  buyer:  %.8f BTC\n", stack.balance_of(buyer));
  std::printf("  escrow: %.8f BTC\n", stack.balance_of(escrow.deposit_address()));
  std::printf("  state:  %s\n", to_string(escrow.state()));

  // Scaled: an escrow marketplace. Every order gets its own contract (and so
  // its own derived threshold key); the arbiter then signs one release
  // authorization per order, submitted per consensus round as a batch.
  const std::size_t orders = 2048;
  const std::size_t round_batch = 128;
  std::printf("\nmarketplace: %zu concurrent escrow orders\n", orders);
  auto wall0 = std::chrono::steady_clock::now();
  std::vector<std::unique_ptr<contracts::EscrowContract>> market;
  market.reserve(orders);
  for (std::size_t i = 0; i < orders; ++i) {
    market.push_back(std::make_unique<contracts::EscrowContract>(
        *stack.integration, "order-" + std::to_string(2000 + i), buyer, seller,
        bitcoin::kCoin / 10, /*required_confirmations=*/3));
  }
  double create_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  std::printf("  created (one derived key each) in %.3f s (%.0f contracts/s)\n", create_s,
              static_cast<double>(orders) / create_s);

  std::vector<crypto::ThresholdEcdsaService::SignRequest> authorizations;
  authorizations.reserve(orders);
  for (std::size_t i = 0; i < orders; ++i) {
    std::string msg = "release order-" + std::to_string(2000 + i) + " to " + seller;
    authorizations.push_back(
        {crypto::Sha256::hash(
             util::ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size())),
         market[i]->wallet().path()});
  }
  wall0 = std::chrono::steady_clock::now();
  std::vector<crypto::Signature> sigs;
  sigs.reserve(orders);
  for (std::size_t off = 0; off < authorizations.size(); off += round_batch) {
    std::size_t count = std::min(round_batch, authorizations.size() - off);
    std::vector<crypto::ThresholdEcdsaService::SignRequest> batch(
        authorizations.begin() + static_cast<std::ptrdiff_t>(off),
        authorizations.begin() + static_cast<std::ptrdiff_t>(off + count));
    auto out = stack.subnet->sign_with_ecdsa_batch(batch);
    sigs.insert(sigs.end(), out.begin(), out.end());
  }
  double sign_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  std::size_t bad = 0;
  for (std::size_t i = 0; i < orders; ++i) {
    if (!crypto::verify(market[i]->wallet().public_key(), authorizations[i].digest, sigs[i])) {
      ++bad;
    }
  }
  std::printf("  %zu release authorizations signed in %.3f s (%.0f sigs/s), %zu bad\n", orders,
              sign_s, static_cast<double>(orders) / sign_s, bad);
  std::printf("=== done ===\n");
  return bad == 0 ? 0 : 1;
}
