// Quickstart: bring up the whole simulated stack — a Bitcoin P2P network, an
// IC subnet with one Bitcoin adapter per replica, and the Bitcoin canister —
// then hold and transfer real (simulated) bitcoin from a canister wallet
// whose key exists only as threshold-ECDSA shares.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "btcnet/harness.h"
#include "contracts/btc_wallet.h"

using namespace icbtc;

int main() {
  std::printf("=== icbtc quickstart ===\n\n");

  // 1. A simulated Bitcoin network: 12 nodes, 2 miners, DNS seeds.
  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  btcnet::BitcoinNetworkConfig btc_config;
  btc_config.num_nodes = 12;
  btc_config.num_miners = 2;
  btc_config.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness bitcoin_net(sim, params, btc_config, /*seed=*/7);
  sim.run();
  std::printf("Bitcoin network up: %zu nodes, %zu DNS seeds\n", bitcoin_net.num_nodes(),
              bitcoin_net.network().query_dns_seeds().size());

  // 2. An IC subnet (13 replicas, 4 of them Byzantine — the tolerated max).
  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  subnet_config.num_byzantine = 4;
  ic::Subnet subnet(sim, subnet_config, /*seed=*/11);

  // 3. The Bitcoin integration: per-replica adapters + the Bitcoin canister.
  canister::IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 8;
  config.adapter.multi_block_below_height = 1 << 30;
  config.canister = canister::CanisterConfig::for_params(params);
  canister::BitcoinIntegration integration(subnet, bitcoin_net.network(), params, config,
                                           /*seed=*/13);
  subnet.start();
  integration.start();
  std::printf("IC subnet up: %u replicas (threshold %u), δ=%d, τ=%d\n\n",
              subnet.config().num_nodes, subnet.config().threshold(),
              config.canister.stability_delta, config.canister.sync_slack);

  // 4. A canister-held wallet. Its secret key never exists anywhere: the
  //    address is derived from the subnet's threshold-ECDSA master key.
  contracts::BtcWallet wallet(integration, crypto::DerivationPath{{0xca, 0xfe}});
  std::printf("Canister wallet address: %s\n", wallet.address().c_str());

  // 5. Someone pays the wallet 1 BTC on the Bitcoin network.
  auto& node = bitcoin_net.node(0);
  auto decoded = bitcoin::decode_address(wallet.address(), params.network);
  auto funding = chain::build_child_block(
      node.tree(), node.best_tip(),
      static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond + 600),
      bitcoin::script_for_address(*decoded), bitcoin::kCoin, {}, /*tag=*/1);
  node.submit_block(funding);
  sim.run_until(sim.now() + 3 * util::kMinute);

  auto balance = wallet.balance(/*min_confirmations=*/1);
  std::printf("Wallet balance after funding: %.8f BTC (read via get_balance)\n",
              static_cast<double>(balance.value) / bitcoin::kCoin);

  // 6. The wallet pays a merchant 0.25 BTC. Every input is signed with
  //    sign_with_ecdsa (2f+1 replicas cooperate), then the transaction goes
  //    out through the Bitcoin canister and the adapters.
  util::Hash160 merchant_hash;
  merchant_hash.data[0] = 0x42;
  std::string merchant = bitcoin::p2pkh_address(merchant_hash, params.network);
  auto sent = wallet.send({{merchant, bitcoin::kCoin / 4}});
  std::printf("\nSent 0.25 BTC to %s\n", merchant.c_str());
  std::printf("  txid: %s\n", sent.txid.rpc_hex().c_str());
  std::printf("  fee:  %lld sat, inputs: %zu, threshold signatures: %llu\n",
              static_cast<long long>(sent.fee), sent.inputs_used,
              static_cast<unsigned long long>(wallet.signatures_requested()));

  // 7. A miner picks it up; the canister observes the confirmation.
  sim.run_until(sim.now() + 3 * util::kMinute);
  bitcoin_net.miners()[0]->mine_one();
  sim.run_until(sim.now() + 3 * util::kMinute);

  auto merchant_balance = integration.query_get_balance(merchant);
  std::printf("\nMerchant balance: %.8f BTC (query latency %s)\n",
              static_cast<double>(merchant_balance.outcome.value) / bitcoin::kCoin,
              util::format_time(merchant_balance.latency).c_str());
  auto final_balance = integration.replicated_get_balance(wallet.address());
  std::printf("Wallet balance:   %.8f BTC (replicated latency %s, %.1fM instructions)\n",
              static_cast<double>(final_balance.outcome.value) / bitcoin::kCoin,
              util::format_time(final_balance.latency).c_str(),
              static_cast<double>(final_balance.instructions) / 1e6);

  std::printf("\nCanister state: tip height %d, anchor height %d, %zu stable UTXOs\n",
              integration.canister().tip_height(), integration.canister().anchor_height(),
              integration.canister().utxo_count());
  std::printf("=== done ===\n");
  return 0;
}
