// Fork monitor: visualizes the paper's stability calculus (§II-C, Fig. 3).
// Builds a block tree with competing forks and prints, per block, the two
// depth functions (d_c, d_w) and the confirmation-based stability — showing
// how stability stagnates under a racing fork and goes negative on the
// losing branch, and when the difficulty-based rule lets the anchor advance.
//
// Build & run:  cmake --build build && ./build/examples/fork_monitor
//
// With --trace, every header acceptance becomes a span on a logical clock
// (600 µs per header), fork appearances land in the flight recorder (dumped
// the moment a fork is detected), and the full trace is written as Chrome
// trace-event JSON to fork_monitor_trace.json (ICBTC_CHROME_TRACE_OUT) for
// chrome://tracing / Perfetto.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "bitcoin/address.h"
#include "bitcoin/script.h"
#include "btcnet/node.h"
#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"
#include "crypto/ecdsa.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "parallel/thread_pool.h"

using namespace icbtc;

namespace {

struct TreePrinter {
  const chain::HeaderTree& tree;
  std::map<util::Hash256, std::string> names;
  obs::MetricsRegistry* metrics = nullptr;

  void print() const {
    if (metrics != nullptr) update_metrics();
    std::printf("  %-6s %-7s %-5s %-5s %-10s %s\n", "block", "height", "d_c", "d_w",
                "stability", "note");
    // Order by height, then name.
    for (int h = tree.root().height; h <= tree.max_height(); ++h) {
      for (const auto& hash : tree.blocks_at_height(h)) {
        int stability = tree.confirmation_stability(hash);
        bool on_main = false;
        for (const auto& m : tree.current_chain()) {
          if (m == hash) on_main = true;
        }
        std::printf("  %-6s %-7d %-5d %-5s %-10d %s\n", names.at(hash).c_str(), h,
                    tree.depth_count(hash), tree.depth_work(hash).to_hex().substr(62).c_str(),
                    stability, on_main ? "on current chain" : "fork");
      }
    }
    std::printf("\n");
  }

  /// Refreshes the tree-shape gauges from the current snapshot (the
  /// stability histogram is filled once, at the end, so observations are
  /// not double-counted across prints).
  void update_metrics() const {
    metrics->gauge("monitor.tree_size").set(static_cast<std::int64_t>(tree.size()));
    metrics->gauge("monitor.max_height").set(tree.max_height());
    metrics->gauge("monitor.best_height").set(tree.best_height());
    int forked_heights = 0;
    for (int h = tree.root().height; h <= tree.max_height(); ++h) {
      if (tree.blocks_at_height(h).size() > 1) ++forked_heights;
    }
    metrics->gauge("monitor.forked_heights").set(forked_heights);
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool trace_enabled = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_enabled = true;
  }

  std::printf("=== fork monitor: δ-stability in action (cf. Fig. 3) ===\n\n");

  const auto& params = bitcoin::ChainParams::regtest();
  chain::HeaderTree tree(params, params.genesis_header);
  obs::MetricsRegistry metrics;
  TreePrinter printer{tree, {}, &metrics};
  printer.names[tree.root_hash()] = "g";
  std::uint32_t time = params.genesis_header.time;
  std::int64_t now = time + 1000000;
  std::uint32_t salt = 0;

  // Headers arrive on a logical clock: 600 µs apart (a µs-for-second
  // miniature of Bitcoin's 10-minute block interval), entirely
  // deterministic.
  obs::TracerConfig tracer_config;
  tracer_config.event_capacity = 128;
  obs::Tracer tracer(tracer_config);
  obs::TraceTime logical_now = 0;
  tracer.set_clock([&logical_now] { return logical_now; });
  obs::Tracer* tracer_ptr = trace_enabled ? &tracer : nullptr;

  auto extend = [&](const util::Hash256& parent, const std::string& name) {
    util::Hash256 merkle;
    merkle.data[0] = static_cast<std::uint8_t>(++salt);
    merkle.data[1] = static_cast<std::uint8_t>(salt >> 8);
    time += 600;
    logical_now += 600;
    obs::ScopedSpan span(tracer_ptr, "monitor.accept_header", "chain");
    auto header = chain::build_child_header(tree, parent, time, merkle);
    tree.accept(header, now);
    metrics.counter("monitor.headers_accepted").inc();
    printer.names[header.hash()] = name;
    int height = tree.find(header.hash())->height;
    span.attr("name", name);
    span.attr("height", static_cast<std::int64_t>(height));
    if (tree.blocks_at_height(height).size() > 1) {
      span.attr("fork", "true");
      span.event(obs::Severity::kWarn, "fork_detected",
                 name + " competes at height " + std::to_string(height));
      if (trace_enabled) {
        std::printf("--- fork detected at height %d: flight recorder ---\n%s\n", height,
                    obs::flight_recorder_text(tracer).c_str());
      }
    }
    return header.hash();
  };

  std::printf("Building the main chain m1..m6:\n");
  util::Hash256 tip = tree.root_hash();
  std::vector<util::Hash256> main_chain;
  for (int i = 1; i <= 6; ++i) {
    tip = extend(tip, "m" + std::to_string(i));
    main_chain.push_back(tip);
  }
  printer.print();

  std::printf("A fork f1-f2 appears at height 2 (branching off m1):\n");
  auto f1 = extend(main_chain[0], "f1");
  auto f2 = extend(f1, "f2");
  printer.print();

  std::printf("Note: m2's stability dropped from 5 to d_c(m2)-d_c(f1)=3; the fork\n");
  std::printf("blocks have NEGATIVE stability (they are outrun), as in Fig. 3.\n\n");

  std::printf("The fork races ahead two more blocks (f3, f4):\n");
  auto f3 = extend(f2, "f3");
  extend(f3, "f4");
  printer.print();

  std::printf("Difficulty-based stability (δ=4, reference = anchor work):\n");
  crypto::U256 ref = tree.root().block_work;
  for (const auto& hash : tree.blocks_at_height(2)) {
    std::printf("  %s is difficulty-based 4-stable: %s\n", printer.names[hash].c_str(),
                tree.is_difficulty_stable(hash, 4, ref) ? "yes" : "no");
  }
  std::printf("\nm2 cannot become stable while the fork keeps pace: the margin\n");
  std::printf("condition of Definition II.1 requires d_w(m2) - d_w(f1) >= 4*w.\n\n");

  std::printf("The main chain decisively outruns the fork (m7..m12):\n");
  for (int i = 7; i <= 12; ++i) tip = extend(tip, "m" + std::to_string(i));
  std::printf("  m2 is difficulty-based 4-stable: %s -> the Bitcoin canister would\n",
              tree.is_difficulty_stable(main_chain[1], 4, ref) ? "yes" : "no");
  std::printf("  advance its anchor past m2 and prune the fork (Algorithm 2).\n");

  tree.reroot(main_chain[0]);
  metrics.counter("monitor.reroots").inc();
  tracer.event(obs::Severity::kInfo, "reroot",
               "anchor advanced to height " + std::to_string(tree.root().height));
  std::printf("\nAfter reroot: %zu headers remain, root at height %d, tip at height %d.\n",
              tree.size(), tree.root().height, tree.best_height());

  // Final stability sweep: one observation per surviving block, so the
  // histogram summarizes the end-state distribution (forks pruned by the
  // reroot no longer contribute).
  auto& stability =
      metrics.histogram("monitor.stability", obs::Histogram::exponential_bounds(1.0, 2.0, 8));
  for (int h = tree.root().height; h <= tree.max_height(); ++h) {
    for (const auto& hash : tree.blocks_at_height(h)) {
      stability.observe(tree.confirmation_stability(hash));
    }
  }
  printer.update_metrics();

  // --- The canister's view of the same story: unstable deltas -------------
  // A small Bitcoin canister ingests a fork scenario with full blocks. Every
  // block arrival builds one delta in the unstable index; repeated queries
  // land in the tip-keyed memo. The canister.delta.* rows in the table below
  // show the builds, the memo hit/miss split, and the resident delta bytes
  // (build_us is wall-clock, wired here via set_delta_build_clock — the
  // registry export is only deterministic when that clock stays detached).
  std::printf("\nReplaying a fork scenario through a Bitcoin canister (delta index):\n");
  {
    // A small shared pool so ingestion's parallel txid hashing shows up in
    // the pool.* rows of the table (pool.runs / pool.tasks_executed; both
    // gauges read 0 once the fan-outs drain).
    parallel::set_shared_pool(2);
    parallel::shared_pool()->set_metrics(&metrics);
    canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
    canister.set_metrics(&metrics);
    canister.set_delta_build_clock([] {
      return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                            std::chrono::steady_clock::now().time_since_epoch())
                                            .count());
    });

    chain::HeaderTree feed_tree(params, params.genesis_header);
    util::Hash160 pkh;
    pkh.data[0] = 0x42;
    util::Bytes script = bitcoin::p2pkh_script(pkh);
    std::string address = bitcoin::p2pkh_address(pkh, params.network);
    std::uint32_t block_time = params.genesis_header.time;
    std::uint64_t tag = 1;
    auto feed = [&](const util::Hash256& parent) {
      block_time += 600;
      // A handful of transactions per block, enough for the txid hashing to
      // fan out across the shared pool.
      std::vector<bitcoin::Transaction> txs;
      for (int t = 0; t < 8; ++t) {
        bitcoin::Transaction tx;
        bitcoin::TxIn in;
        in.prevout.txid.data[0] = static_cast<std::uint8_t>(tag);
        in.prevout.txid.data[1] = static_cast<std::uint8_t>(t + 1);
        tx.inputs.push_back(in);
        tx.outputs.push_back(bitcoin::TxOut{1000, script});
        tx.lock_time = static_cast<std::uint32_t>(tag * 100 + static_cast<std::uint64_t>(t));
        txs.push_back(std::move(tx));
      }
      auto block = chain::build_child_block(feed_tree, parent, block_time, script,
                                            50 * bitcoin::kCoin, std::move(txs), tag++);
      feed_tree.accept(block.header, static_cast<std::int64_t>(block_time) + 10000);
      adapter::AdapterResponse response;
      response.blocks.emplace_back(block, block.header);
      canister.process_response(response, static_cast<std::int64_t>(block_time) + 10000);
      return block.hash();
    };

    util::Hash256 c_tip = params.genesis_header.hash();
    std::vector<util::Hash256> spine;
    for (int i = 0; i < 5; ++i) {
      c_tip = feed(c_tip);
      spine.push_back(c_tip);
    }
    feed(feed(spine[1]));  // losing two-block fork: deltas built, then pruned
    for (int i = 0; i < 4; ++i) c_tip = feed(c_tip);

    auto cold = canister.get_balance(address);
    auto hot = canister.get_balance(address);  // memo hit: same tip, same script
    std::printf("  balance of %s: %lld satoshi (cold) / %lld (memoized)\n", address.c_str(),
                static_cast<long long>(cold.value), static_cast<long long>(hot.value));
    std::printf("  unstable blocks: %zu, resident deltas: %llu bytes\n",
                canister.unstable_block_count(),
                static_cast<unsigned long long>(canister.unstable_index().resident_bytes()));
    parallel::shared_pool()->set_metrics(nullptr);
  }
  parallel::set_shared_pool(0);

  // --- Transaction relay + fee market: the relay.* / mempool.* rows -------
  // A three-node line relays a fee ladder by Erlay-style set reconciliation
  // (fanout 0, so sketches are the only announcement channel), with one RBF
  // bump and six-slot mempools that evict the cheapest arrivals. The relay.*
  // and mempool.* exporter rows in the table below come from this traffic;
  // everything runs on the simulated clock, so the counts are identical on
  // every run.
  std::printf("\nRelaying a fee ladder by set reconciliation (3-node line):\n");
  {
    util::Simulation sim;
    btcnet::Network net(sim, util::Rng(31));
    net.set_metrics(&metrics);
    btcnet::NodeOptions options;
    options.tx_relay_mode = btcnet::TxRelayMode::kReconcile;
    options.flood_fanout = 0;
    options.mempool_max_txs = 6;
    btcnet::BitcoinNode alice(net, params, options);
    btcnet::BitcoinNode bob(net, params, options);
    btcnet::BitcoinNode carol(net, params, options);
    for (auto* node : {&alice, &bob, &carol}) node->set_metrics(&metrics);
    net.connect(alice.id(), bob.id());
    net.connect(bob.id(), carol.id());
    sim.run();

    crypto::PrivateKey key = crypto::PrivateKey::from_seed(util::Bytes{7, 8, 9});
    util::Hash160 key_hash = crypto::hash160(key.public_key().compressed());
    util::Bytes lock = bitcoin::p2pkh_script(key_hash);
    auto spend = [&](const bitcoin::OutPoint& from, bitcoin::Amount value) {
      bitcoin::Transaction tx;
      bitcoin::TxIn in;
      in.prevout = from;
      tx.inputs.push_back(in);
      tx.outputs.push_back(bitcoin::TxOut{value, lock});
      auto digest = bitcoin::legacy_sighash(tx, 0, lock);
      tx.inputs[0].script_sig =
          bitcoin::p2pkh_script_sig(key.sign(digest), key.public_key().compressed());
      return tx;
    };

    // Nine coinbases to spend, mined 600 simulated seconds apart so the
    // future-drift rule stays happy.
    std::uint32_t chain_time = params.genesis_header.time;
    std::uint64_t fund_tag = 9000;
    std::vector<bitcoin::OutPoint> outpoints;
    for (int i = 0; i < 9; ++i) {
      sim.run_until(sim.now() + 600 * util::kSecond);
      chain_time += 600;
      auto block = chain::build_child_block(alice.tree(), alice.best_tip(), chain_time, lock,
                                            50 * bitcoin::kCoin, {}, fund_tag++);
      alice.submit_block(block);
      outpoints.push_back(bitcoin::OutPoint{block.transactions[0].txid(), 0});
    }
    sim.run();

    // A nine-rung fee ladder into six-slot mempools: the three cheapest
    // spends fall out the bottom as the cap bites.
    for (std::size_t i = 0; i < outpoints.size(); ++i) {
      bitcoin::Amount fee = static_cast<bitcoin::Amount>(i + 1) * 100000;
      alice.submit_tx(spend(outpoints[i], 50 * bitcoin::kCoin - fee));
    }
    sim.run();

    // RBF: the top rung is bumped past its original fee, displacing the
    // earlier spend in every mempool it already reached.
    alice.submit_tx(spend(outpoints.back(), 50 * bitcoin::kCoin - 1200000));
    sim.run();

    std::printf("  mempools after the ladder: alice %zu, bob %zu, carol %zu (cap 6)\n",
                alice.mempool_size(), bob.mempool_size(), carol.mempool_size());
    std::printf("  fee floor at carol: %llu millisat/vbyte\n",
                static_cast<unsigned long long>(carol.mempool_fee_floor()));
    net.set_metrics(nullptr);
  }

  std::printf("\n--- monitor metrics (obs::to_table) ---\n%s", obs::to_table(metrics).c_str());

  if (trace_enabled) {
    const char* path = std::getenv("ICBTC_CHROME_TRACE_OUT");
    if (path == nullptr || *path == '\0') path = "fork_monitor_trace.json";
    std::string body = obs::to_chrome_trace(tracer);
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "FAIL: cannot write %s\n", path);
      return 1;
    }
    std::fwrite(body.data(), 1, body.size(), out);
    std::fclose(out);
    std::printf("\nwrote %s — open it in chrome://tracing or https://ui.perfetto.dev\n", path);
  }

  std::printf("=== done ===\n");
  return 0;
}
