// Attack lab: walks through the three §IV-A attack scenarios against a live
// stack and shows each defence doing its job — the adapter's validation, the
// δ-stability margin, and the N-set/τ sync gate after downtime — plus a
// fourth scenario: restoring the canister from a stable-memory checkpoint
// after an outage and replaying a fork injection against the restored
// canister and a never-stopped twin.
//
// Build & run:  cmake --build build && ./build/examples/attack_lab
#include <cstdio>

#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "canister/integration.h"
#include "chain/block_builder.h"
#include "persist/checkpoint.h"

using namespace icbtc;

int main() {
  std::printf("=== attack lab: the §IV-A scenarios, live ===\n\n");

  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  btcnet::BitcoinNetworkConfig btc_config;
  btc_config.num_nodes = 12;
  btc_config.num_miners = 1;
  btc_config.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness bitcoin_net(sim, params, btc_config, 61);
  sim.run();

  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  subnet_config.num_byzantine = 4;  // f = 4: the tolerated maximum
  ic::Subnet subnet(sim, subnet_config, 62);
  canister::IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 8;
  config.adapter.multi_block_below_height = 0;  // single-block (production) mode
  config.canister = canister::CanisterConfig::for_params(params);
  canister::BitcoinIntegration integration(subnet, bitcoin_net.network(), params, config, 63);
  subnet.start();
  integration.start();

  auto mine = [&](int n) {
    for (int i = 0; i < n; ++i) {
      sim.run_until(sim.now() + 600 * util::kSecond);
      bitcoin_net.miners()[0]->mine_one();
    }
    sim.run_until(sim.now() + 5 * util::kMinute);
  };

  mine(4);
  std::printf("steady state: canister at height %d, synced=%s, anchors archived=%zu\n\n",
              integration.canister().tip_height(),
              integration.canister().is_synced() ? "yes" : "no",
              integration.canister().archived_headers());

  // --- Scenario 1: a racing fork (Lemma IV.2) --------------------------
  std::printf("--- scenario 1: private fork released onto the network ---\n");
  auto& node = bitcoin_net.node(0);
  auto chain_hashes = node.tree().current_chain();
  btcnet::AdversaryMiner fork1(node, chain_hashes[chain_hashes.size() - 2], 0.3,
                               util::Rng(64));
  std::uint32_t t = static_cast<std::uint32_t>(params.genesis_header.time +
                                               sim.now() / util::kSecond);
  fork1.mine_next(t += 600);  // one-block fork: ties the honest tip's height
  for (const auto& b : fork1.private_blocks()) node.submit_block(b);
  sim.run_until(sim.now() + 10 * util::kMinute);
  auto tip_hash = integration.canister().header_tree().best_tip();
  int stability = integration.canister().header_tree().confirmation_stability(tip_hash);
  std::printf("fork released at tip height %d: the canister sees %zu block(s) there,\n",
              integration.canister().tip_height(),
              integration.canister().header_tree().blocks_at_height(
                  integration.canister().tip_height()).size());
  std::printf("tip stability is %d -> a contract waiting for c*=3 confirmations\n", stability);
  std::printf("simply keeps waiting; the honest chain resolves the race:\n");
  mine(3);
  std::printf("after 3 honest blocks: tip height %d, fork dead (stability of honest tip "
              "chain restored)\n\n",
              integration.canister().tip_height());

  // --- Scenario 2: Byzantine block makers censor updates ---------------
  std::printf("--- scenario 2: byzantine makers (f=4/13) stonewall responses ---\n");
  integration.set_byzantine_response_provider(
      [](const adapter::AdapterRequest&, const ic::RoundInfo&) {
        return adapter::AdapterResponse{};  // serve nothing when chosen
      });
  int before = integration.canister().tip_height();
  mine(3);
  std::printf("3 blocks mined; canister height %d -> %d: honest makers (9/13 of rounds)\n",
              before, integration.canister().tip_height());
  std::printf("keep the canister in sync — censorship only adds latency\n\n");

  // --- Scenario 3: downtime + fork injection (Lemma IV.3) --------------
  std::printf("--- scenario 3: fork injection after canister downtime ---\n");
  integration.set_canister_down(true);
  btcnet::AdversaryMiner fork3(node, integration.canister().header_tree().best_tip(), 0.3,
                               util::Rng(65));
  t = static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond);
  for (int i = 0; i < 3; ++i) fork3.mine_next(t += 600);
  mine(5);  // the honest chain grows during the outage
  std::printf("during downtime: adversary prepared %zu private blocks; honest chain at %d\n",
              fork3.private_blocks().size(), node.best_height());

  std::size_t next_block = 0;
  integration.set_byzantine_response_provider(
      [&](const adapter::AdapterRequest&, const ic::RoundInfo&) {
        adapter::AdapterResponse response;  // one fork block per round, N = {}
        if (next_block < fork3.private_blocks().size()) {
          const auto& b = fork3.private_blocks()[next_block++];
          response.blocks.emplace_back(b, b.header);
        }
        return response;
      });
  integration.set_canister_down(false);
  sim.run_until(sim.now() + 5 * util::kMinute);
  bool on_honest = integration.canister().header_tree().best_tip() == node.best_tip();
  std::printf("recovery: byzantine makers fed %zu fork blocks, but the first honest\n",
              next_block);
  std::printf("maker's N set revealed the true headers -> canister on honest chain: %s,\n",
              on_honest ? "YES" : "no");
  std::printf("synced: %s (Lemma IV.3: success would need %d byzantine makers in a row,\n",
              integration.canister().is_synced() ? "yes" : "no", 3);
  std::printf("probability < 3^-3 = %.3f)\n", 1.0 / 27.0);

  // --- Scenario 4: checkpoint/restore after downtime --------------------
  // The operator checkpoints the canister, the canister goes down, and the
  // state is restored into a differently-sharded deployment (3 shards, the
  // node-map backend instead of the flat arena). A byzantine maker then
  // replays a fork injection against the restored canister and against a
  // never-stopped twin: every observable — UTXO digest, queries, the
  // instruction meter — must stay identical, or the restore changed
  // consensus-visible state.
  std::printf("\n--- scenario 4: post-downtime restore from a stable-memory checkpoint ---\n");
  auto& live = integration.canister();
  live.checkpoint("attack_lab.ckpt");
  std::printf("checkpointed canister at height %d (%zu utxos) to attack_lab.ckpt\n",
              live.tip_height(), live.utxo_count());

  auto restore_config = config.canister;
  restore_config.utxo_shards = 3;
  restore_config.utxo_backend = persist::UtxoBackend::kMap;
  auto restored = canister::BitcoinCanister::restore(params, restore_config, "attack_lab.ckpt");
  auto twin = canister::BitcoinCanister::restore(params, config.canister, "attack_lab.ckpt");
  std::printf("restored at 3 shards + map backend; twin kept the writer's config\n");
  std::printf("digest after restore: %s (writer: %s)\n",
              restored.utxo_digest() == live.utxo_digest() ? "MATCHES writer" : "DIFFERS",
              live.utxo_digest().hex().substr(0, 16).c_str());

  // Replay: a two-block fork off the tip's parent, then three honest blocks,
  // fed identically to both canisters.
  util::Hash160 payee;
  payee.data[0] = 0x42;
  util::Bytes coinbase_script = bitcoin::p2pkh_script(payee);
  std::string payee_addr = bitcoin::p2pkh_address(payee, params.network);
  t = static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond);
  std::uint64_t tag = 0x5c4;
  auto feed_both = [&](const util::Hash256& parent) {
    auto block = chain::build_child_block(twin.header_tree(), parent, t += 600, coinbase_script,
                                          bitcoin::block_subsidy(0), {}, tag++);
    adapter::AdapterResponse response;
    response.blocks.emplace_back(block, block.header);
    restored.process_response(response, static_cast<std::int64_t>(t) + 10000);
    twin.process_response(response, static_cast<std::int64_t>(t) + 10000);
    return block.hash();
  };
  util::Hash256 fork_parent =
      twin.header_tree().find(twin.header_tree().best_tip())->header.prev_hash;
  auto fork_tip = feed_both(fork_parent);
  feed_both(fork_tip);  // fork overtakes by one: both canisters reorg
  for (int i = 0; i < 3; ++i) feed_both(twin.header_tree().best_tip());

  bool digests = restored.utxo_digest() == twin.utxo_digest();
  bool meters = restored.meter().count() == twin.meter().count();
  bool balances = restored.get_balance(payee_addr).value == twin.get_balance(payee_addr).value;
  std::printf("replayed 2 fork + 3 honest blocks through both canisters:\n");
  std::printf("  utxo digest equal: %s, meter totals equal: %s (%llu instructions),\n",
              digests ? "YES" : "no", meters ? "YES" : "no",
              static_cast<unsigned long long>(twin.meter().count()));
  std::printf("  %s balance equal: %s -> the checkpoint is consensus-invisible\n",
              payee_addr.c_str(), balances ? "YES" : "no");

  std::printf("\n=== all four defences held ===\n");
  return (digests && meters && balances) ? 0 : 1;
}
