// Payroll: a treasury canister pays salaries in BTC on a timer — smart
// contract execution triggered by the platform itself (§II-A), impossible on
// Bitcoin alone and one of the paper's motivating applications.
//
// Build & run:  cmake --build build && ./build/examples/payroll_contract
// After the three-person walkthrough, a scaled payday: thousands of
// employees paid by one contract call — a multi-input, thousands-of-outputs
// transaction whose input signatures ride one batched signing pass.
#include <chrono>
#include <cstdio>

#include "btcnet/harness.h"
#include "contracts/payroll.h"

using namespace icbtc;

int main() {
  std::printf("=== payroll contract example ===\n\n");

  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  btcnet::BitcoinNetworkConfig btc_config;
  btc_config.num_nodes = 10;
  btc_config.num_miners = 2;
  btc_config.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness bitcoin_net(sim, params, btc_config, 31);
  sim.run();

  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  ic::Subnet subnet(sim, subnet_config, 32);
  canister::IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 8;
  config.adapter.multi_block_below_height = 1 << 30;
  config.canister = canister::CanisterConfig::for_params(params);
  canister::BitcoinIntegration integration(subnet, bitcoin_net.network(), params, config, 33);
  subnet.start();
  integration.start();

  // Three employees paid in BTC.
  std::vector<contracts::Employee> staff;
  for (int i = 0; i < 3; ++i) {
    util::Hash160 h;
    h.data[0] = static_cast<std::uint8_t>(0xa0 + i);
    staff.push_back(contracts::Employee{
        "employee-" + std::to_string(i),
        bitcoin::p2pkh_address(h, params.network),
        (i + 1) * 5'000'000,  // 0.05, 0.10, 0.15 BTC
    });
  }
  contracts::PayrollContract payroll(integration, "acme-corp", staff, /*min_confirmations=*/1);
  std::printf("Payroll contract for %zu employees, %.8f BTC per cycle\n",
              staff.size(), static_cast<double>(payroll.total_salaries()) / bitcoin::kCoin);
  std::printf("Treasury address: %s\n\n", payroll.treasury_address().c_str());

  // Fund the treasury with 5 BTC.
  auto& node = bitcoin_net.node(0);
  auto decoded = bitcoin::decode_address(payroll.treasury_address(), params.network);
  auto funding = chain::build_child_block(
      node.tree(), node.best_tip(),
      static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond + 600),
      bitcoin::script_for_address(*decoded), 5 * bitcoin::kCoin, {}, 99);
  node.submit_block(funding);
  sim.run_until(sim.now() + 3 * util::kMinute);
  bitcoin_net.miners()[0]->mine_one();
  sim.run_until(sim.now() + 3 * util::kMinute);
  std::printf("Treasury funded: %.8f BTC\n\n",
              static_cast<double>(payroll.treasury_balance().value) / bitcoin::kCoin);

  // Run three pay cycles; between cycles the Bitcoin network keeps mining so
  // each payday's transaction confirms and the change output matures.
  for (int cycle = 1; cycle <= 3; ++cycle) {
    auto record = payroll.run_payday(subnet.round());
    std::printf("Payday %d at round %llu: %s", cycle,
                static_cast<unsigned long long>(record.round),
                record.success ? "paid" : "FAILED");
    if (record.success) {
      std::printf(" %zu employees, txid %s", record.employees_paid,
                  record.txid.rpc_hex().substr(0, 16).c_str());
    }
    std::printf("\n");
    sim.run_until(sim.now() + 3 * util::kMinute);
    bitcoin_net.miners()[0]->mine_one();
    sim.run_until(sim.now() + 3 * util::kMinute);
  }

  std::printf("\nBalances after 3 cycles:\n");
  for (const auto& e : payroll.employees()) {
    auto balance = integration.query_get_balance(e.btc_address);
    std::printf("  %-12s %s  %.8f BTC\n", e.name.c_str(), e.btc_address.c_str(),
                static_cast<double>(balance.outcome.value) / bitcoin::kCoin);
  }
  std::printf("  %-12s %s  %.8f BTC\n", "treasury", payroll.treasury_address().c_str(),
              static_cast<double>(payroll.treasury_balance().value) / bitcoin::kCoin);

  // Scaled: megacorp pays 4096 employees in one payday. The treasury is
  // funded across several UTXOs, so the payout transaction signs multiple
  // inputs (one batched threshold-signing pass) and fans out to thousands
  // of outputs.
  const std::size_t headcount = 4096;
  std::printf("\nmegacorp: %zu employees, one payday\n", headcount);
  std::vector<contracts::Employee> crowd;
  crowd.reserve(headcount);
  for (std::size_t i = 0; i < headcount; ++i) {
    util::Hash160 h;
    h.data[0] = static_cast<std::uint8_t>(i >> 8);
    h.data[1] = static_cast<std::uint8_t>(i & 0xff);
    h.data[2] = 0x77;
    crowd.push_back(contracts::Employee{"emp-" + std::to_string(i),
                                        bitcoin::p2pkh_address(h, params.network),
                                        150'000});  // 0.0015 BTC each
  }
  contracts::PayrollContract megacorp(integration, "megacorp", crowd, /*min_confirmations=*/1);
  auto mega_decoded = bitcoin::decode_address(megacorp.treasury_address(), params.network);
  for (int i = 0; i < 8; ++i) {  // 8 x 1 BTC: the payday must select 7 inputs
    auto block = chain::build_child_block(
        node.tree(), node.best_tip(),
        static_cast<std::uint32_t>(params.genesis_header.time + sim.now() / util::kSecond + 600),
        bitcoin::script_for_address(*mega_decoded), bitcoin::kCoin, {},
        static_cast<std::uint64_t>(200 + i));
    node.submit_block(block);
    sim.run_until(sim.now() + 3 * util::kMinute);
  }
  std::printf("  treasury funded: %.8f BTC across 8 UTXOs\n",
              static_cast<double>(megacorp.treasury_balance().value) / bitcoin::kCoin);

  auto wall0 = std::chrono::steady_clock::now();
  auto mega_record = megacorp.run_payday(subnet.round());
  double payday_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0).count();
  std::printf("  payday: %s, %zu employees, %.4f BTC total, txid %s..., %.3f s wall\n",
              mega_record.success ? "paid" : "FAILED", mega_record.employees_paid,
              static_cast<double>(mega_record.total_paid) / bitcoin::kCoin,
              mega_record.txid.rpc_hex().substr(0, 16).c_str(), payday_s);
  sim.run_until(sim.now() + 3 * util::kMinute);
  bitcoin_net.miners()[0]->mine_one();
  sim.run_until(sim.now() + 3 * util::kMinute);
  std::size_t paid = 0;
  for (std::size_t i = 0; i < headcount; i += 512) {  // spot-check the fan-out
    auto balance = integration.query_get_balance(crowd[i].btc_address);
    if (balance.outcome.value == crowd[i].salary) ++paid;
  }
  std::printf("  spot-check: %zu/8 sampled employees credited on-chain\n", paid);
  std::printf("=== done ===\n");
  return (mega_record.success && paid == 8) ? 0 : 1;
}
