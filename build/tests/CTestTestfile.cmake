# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/bitcoin_test[1]_include.cmake")
include("/root/repo/build/tests/btcnet_test[1]_include.cmake")
include("/root/repo/build/tests/chain_test[1]_include.cmake")
include("/root/repo/build/tests/ic_test[1]_include.cmake")
include("/root/repo/build/tests/adapter_test[1]_include.cmake")
include("/root/repo/build/tests/canister_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
