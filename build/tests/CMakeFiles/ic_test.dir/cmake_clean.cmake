file(REMOVE_RECURSE
  "CMakeFiles/ic_test.dir/ic/subnet_test.cpp.o"
  "CMakeFiles/ic_test.dir/ic/subnet_test.cpp.o.d"
  "ic_test"
  "ic_test.pdb"
  "ic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
