file(REMOVE_RECURSE
  "CMakeFiles/bitcoin_test.dir/bitcoin/address_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/address_test.cpp.o.d"
  "CMakeFiles/bitcoin_test.dir/bitcoin/block_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/block_test.cpp.o.d"
  "CMakeFiles/bitcoin_test.dir/bitcoin/pow_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/pow_test.cpp.o.d"
  "CMakeFiles/bitcoin_test.dir/bitcoin/script_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/script_test.cpp.o.d"
  "CMakeFiles/bitcoin_test.dir/bitcoin/taproot_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/taproot_test.cpp.o.d"
  "CMakeFiles/bitcoin_test.dir/bitcoin/transaction_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/transaction_test.cpp.o.d"
  "CMakeFiles/bitcoin_test.dir/bitcoin/utxo_test.cpp.o"
  "CMakeFiles/bitcoin_test.dir/bitcoin/utxo_test.cpp.o.d"
  "bitcoin_test"
  "bitcoin_test.pdb"
  "bitcoin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitcoin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
