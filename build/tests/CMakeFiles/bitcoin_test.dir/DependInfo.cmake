
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/bitcoin/address_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/address_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/address_test.cpp.o.d"
  "/root/repo/tests/bitcoin/block_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/block_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/block_test.cpp.o.d"
  "/root/repo/tests/bitcoin/pow_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/pow_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/pow_test.cpp.o.d"
  "/root/repo/tests/bitcoin/script_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/script_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/script_test.cpp.o.d"
  "/root/repo/tests/bitcoin/taproot_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/taproot_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/taproot_test.cpp.o.d"
  "/root/repo/tests/bitcoin/transaction_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/transaction_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/transaction_test.cpp.o.d"
  "/root/repo/tests/bitcoin/utxo_test.cpp" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/utxo_test.cpp.o" "gcc" "tests/CMakeFiles/bitcoin_test.dir/bitcoin/utxo_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icbtc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icbtc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
