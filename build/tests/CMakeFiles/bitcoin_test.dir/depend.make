# Empty dependencies file for bitcoin_test.
# This may be replaced when dependencies are built.
