# Empty compiler generated dependencies file for canister_test.
# This may be replaced when dependencies are built.
