file(REMOVE_RECURSE
  "CMakeFiles/canister_test.dir/canister/bitcoin_canister_test.cpp.o"
  "CMakeFiles/canister_test.dir/canister/bitcoin_canister_test.cpp.o.d"
  "CMakeFiles/canister_test.dir/canister/canister_api_test.cpp.o"
  "CMakeFiles/canister_test.dir/canister/canister_api_test.cpp.o.d"
  "CMakeFiles/canister_test.dir/canister/canister_property_test.cpp.o"
  "CMakeFiles/canister_test.dir/canister/canister_property_test.cpp.o.d"
  "CMakeFiles/canister_test.dir/canister/integration_test.cpp.o"
  "CMakeFiles/canister_test.dir/canister/integration_test.cpp.o.d"
  "CMakeFiles/canister_test.dir/canister/persistence_test.cpp.o"
  "CMakeFiles/canister_test.dir/canister/persistence_test.cpp.o.d"
  "CMakeFiles/canister_test.dir/canister/utxo_index_test.cpp.o"
  "CMakeFiles/canister_test.dir/canister/utxo_index_test.cpp.o.d"
  "canister_test"
  "canister_test.pdb"
  "canister_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canister_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
