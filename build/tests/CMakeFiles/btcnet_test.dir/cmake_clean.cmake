file(REMOVE_RECURSE
  "CMakeFiles/btcnet_test.dir/btcnet/miner_test.cpp.o"
  "CMakeFiles/btcnet_test.dir/btcnet/miner_test.cpp.o.d"
  "CMakeFiles/btcnet_test.dir/btcnet/network_test.cpp.o"
  "CMakeFiles/btcnet_test.dir/btcnet/network_test.cpp.o.d"
  "CMakeFiles/btcnet_test.dir/btcnet/node_test.cpp.o"
  "CMakeFiles/btcnet_test.dir/btcnet/node_test.cpp.o.d"
  "btcnet_test"
  "btcnet_test.pdb"
  "btcnet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btcnet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
