# Empty compiler generated dependencies file for btcnet_test.
# This may be replaced when dependencies are built.
