file(REMOVE_RECURSE
  "CMakeFiles/icbtc_canister.dir/bitcoin_canister.cpp.o"
  "CMakeFiles/icbtc_canister.dir/bitcoin_canister.cpp.o.d"
  "CMakeFiles/icbtc_canister.dir/integration.cpp.o"
  "CMakeFiles/icbtc_canister.dir/integration.cpp.o.d"
  "CMakeFiles/icbtc_canister.dir/utxo_index.cpp.o"
  "CMakeFiles/icbtc_canister.dir/utxo_index.cpp.o.d"
  "libicbtc_canister.a"
  "libicbtc_canister.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_canister.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
