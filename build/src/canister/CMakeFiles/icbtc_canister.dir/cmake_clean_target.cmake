file(REMOVE_RECURSE
  "libicbtc_canister.a"
)
