# Empty compiler generated dependencies file for icbtc_canister.
# This may be replaced when dependencies are built.
