# Empty compiler generated dependencies file for icbtc_crypto.
# This may be replaced when dependencies are built.
