file(REMOVE_RECURSE
  "CMakeFiles/icbtc_crypto.dir/ecdsa.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/ecdsa.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/ripemd160.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/ripemd160.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/schnorr.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/secp256k1.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/secp256k1.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/sha256.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/shamir.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/shamir.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/threshold_ecdsa.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/threshold_ecdsa.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/threshold_schnorr.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/threshold_schnorr.cpp.o.d"
  "CMakeFiles/icbtc_crypto.dir/u256.cpp.o"
  "CMakeFiles/icbtc_crypto.dir/u256.cpp.o.d"
  "libicbtc_crypto.a"
  "libicbtc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
