file(REMOVE_RECURSE
  "libicbtc_crypto.a"
)
