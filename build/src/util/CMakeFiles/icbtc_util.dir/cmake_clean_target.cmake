file(REMOVE_RECURSE
  "libicbtc_util.a"
)
