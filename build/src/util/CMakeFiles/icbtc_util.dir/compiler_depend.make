# Empty compiler generated dependencies file for icbtc_util.
# This may be replaced when dependencies are built.
