file(REMOVE_RECURSE
  "CMakeFiles/icbtc_util.dir/byteio.cpp.o"
  "CMakeFiles/icbtc_util.dir/byteio.cpp.o.d"
  "CMakeFiles/icbtc_util.dir/bytes.cpp.o"
  "CMakeFiles/icbtc_util.dir/bytes.cpp.o.d"
  "CMakeFiles/icbtc_util.dir/log.cpp.o"
  "CMakeFiles/icbtc_util.dir/log.cpp.o.d"
  "CMakeFiles/icbtc_util.dir/rng.cpp.o"
  "CMakeFiles/icbtc_util.dir/rng.cpp.o.d"
  "CMakeFiles/icbtc_util.dir/sim.cpp.o"
  "CMakeFiles/icbtc_util.dir/sim.cpp.o.d"
  "libicbtc_util.a"
  "libicbtc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
