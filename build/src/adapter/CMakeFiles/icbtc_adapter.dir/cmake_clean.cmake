file(REMOVE_RECURSE
  "CMakeFiles/icbtc_adapter.dir/adapter.cpp.o"
  "CMakeFiles/icbtc_adapter.dir/adapter.cpp.o.d"
  "libicbtc_adapter.a"
  "libicbtc_adapter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_adapter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
