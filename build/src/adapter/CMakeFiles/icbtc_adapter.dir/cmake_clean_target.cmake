file(REMOVE_RECURSE
  "libicbtc_adapter.a"
)
