# Empty compiler generated dependencies file for icbtc_adapter.
# This may be replaced when dependencies are built.
