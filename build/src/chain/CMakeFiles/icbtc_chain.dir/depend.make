# Empty dependencies file for icbtc_chain.
# This may be replaced when dependencies are built.
