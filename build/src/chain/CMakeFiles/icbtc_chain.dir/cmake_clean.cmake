file(REMOVE_RECURSE
  "CMakeFiles/icbtc_chain.dir/block_builder.cpp.o"
  "CMakeFiles/icbtc_chain.dir/block_builder.cpp.o.d"
  "CMakeFiles/icbtc_chain.dir/header_tree.cpp.o"
  "CMakeFiles/icbtc_chain.dir/header_tree.cpp.o.d"
  "libicbtc_chain.a"
  "libicbtc_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
