
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/block_builder.cpp" "src/chain/CMakeFiles/icbtc_chain.dir/block_builder.cpp.o" "gcc" "src/chain/CMakeFiles/icbtc_chain.dir/block_builder.cpp.o.d"
  "/root/repo/src/chain/header_tree.cpp" "src/chain/CMakeFiles/icbtc_chain.dir/header_tree.cpp.o" "gcc" "src/chain/CMakeFiles/icbtc_chain.dir/header_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icbtc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icbtc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
