file(REMOVE_RECURSE
  "libicbtc_chain.a"
)
