file(REMOVE_RECURSE
  "libicbtc_ic.a"
)
