file(REMOVE_RECURSE
  "CMakeFiles/icbtc_ic.dir/subnet.cpp.o"
  "CMakeFiles/icbtc_ic.dir/subnet.cpp.o.d"
  "libicbtc_ic.a"
  "libicbtc_ic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_ic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
