# Empty compiler generated dependencies file for icbtc_ic.
# This may be replaced when dependencies are built.
