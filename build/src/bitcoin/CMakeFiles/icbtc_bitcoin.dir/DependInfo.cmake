
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bitcoin/address.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/address.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/address.cpp.o.d"
  "/root/repo/src/bitcoin/block.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/block.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/block.cpp.o.d"
  "/root/repo/src/bitcoin/params.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/params.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/params.cpp.o.d"
  "/root/repo/src/bitcoin/pow.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/pow.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/pow.cpp.o.d"
  "/root/repo/src/bitcoin/script.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/script.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/script.cpp.o.d"
  "/root/repo/src/bitcoin/transaction.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/transaction.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/transaction.cpp.o.d"
  "/root/repo/src/bitcoin/utxo.cpp" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/utxo.cpp.o" "gcc" "src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/utxo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/icbtc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icbtc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
