file(REMOVE_RECURSE
  "CMakeFiles/icbtc_bitcoin.dir/address.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/address.cpp.o.d"
  "CMakeFiles/icbtc_bitcoin.dir/block.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/block.cpp.o.d"
  "CMakeFiles/icbtc_bitcoin.dir/params.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/params.cpp.o.d"
  "CMakeFiles/icbtc_bitcoin.dir/pow.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/pow.cpp.o.d"
  "CMakeFiles/icbtc_bitcoin.dir/script.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/script.cpp.o.d"
  "CMakeFiles/icbtc_bitcoin.dir/transaction.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/transaction.cpp.o.d"
  "CMakeFiles/icbtc_bitcoin.dir/utxo.cpp.o"
  "CMakeFiles/icbtc_bitcoin.dir/utxo.cpp.o.d"
  "libicbtc_bitcoin.a"
  "libicbtc_bitcoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_bitcoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
