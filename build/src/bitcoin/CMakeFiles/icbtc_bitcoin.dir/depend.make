# Empty dependencies file for icbtc_bitcoin.
# This may be replaced when dependencies are built.
