file(REMOVE_RECURSE
  "libicbtc_bitcoin.a"
)
