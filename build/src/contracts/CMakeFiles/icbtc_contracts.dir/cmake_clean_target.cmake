file(REMOVE_RECURSE
  "libicbtc_contracts.a"
)
