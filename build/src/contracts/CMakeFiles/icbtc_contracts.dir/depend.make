# Empty dependencies file for icbtc_contracts.
# This may be replaced when dependencies are built.
