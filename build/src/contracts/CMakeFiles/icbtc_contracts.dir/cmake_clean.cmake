file(REMOVE_RECURSE
  "CMakeFiles/icbtc_contracts.dir/btc_wallet.cpp.o"
  "CMakeFiles/icbtc_contracts.dir/btc_wallet.cpp.o.d"
  "CMakeFiles/icbtc_contracts.dir/ckbtc_minter.cpp.o"
  "CMakeFiles/icbtc_contracts.dir/ckbtc_minter.cpp.o.d"
  "CMakeFiles/icbtc_contracts.dir/escrow.cpp.o"
  "CMakeFiles/icbtc_contracts.dir/escrow.cpp.o.d"
  "CMakeFiles/icbtc_contracts.dir/payroll.cpp.o"
  "CMakeFiles/icbtc_contracts.dir/payroll.cpp.o.d"
  "libicbtc_contracts.a"
  "libicbtc_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
