file(REMOVE_RECURSE
  "CMakeFiles/icbtc_btcnet.dir/harness.cpp.o"
  "CMakeFiles/icbtc_btcnet.dir/harness.cpp.o.d"
  "CMakeFiles/icbtc_btcnet.dir/miner.cpp.o"
  "CMakeFiles/icbtc_btcnet.dir/miner.cpp.o.d"
  "CMakeFiles/icbtc_btcnet.dir/network.cpp.o"
  "CMakeFiles/icbtc_btcnet.dir/network.cpp.o.d"
  "CMakeFiles/icbtc_btcnet.dir/node.cpp.o"
  "CMakeFiles/icbtc_btcnet.dir/node.cpp.o.d"
  "libicbtc_btcnet.a"
  "libicbtc_btcnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_btcnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
