# Empty compiler generated dependencies file for icbtc_btcnet.
# This may be replaced when dependencies are built.
