
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btcnet/harness.cpp" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/harness.cpp.o" "gcc" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/harness.cpp.o.d"
  "/root/repo/src/btcnet/miner.cpp" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/miner.cpp.o" "gcc" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/miner.cpp.o.d"
  "/root/repo/src/btcnet/network.cpp" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/network.cpp.o" "gcc" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/network.cpp.o.d"
  "/root/repo/src/btcnet/node.cpp" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/node.cpp.o" "gcc" "src/btcnet/CMakeFiles/icbtc_btcnet.dir/node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/chain/CMakeFiles/icbtc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icbtc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icbtc_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
