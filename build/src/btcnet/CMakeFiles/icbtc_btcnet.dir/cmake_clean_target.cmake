file(REMOVE_RECURSE
  "libicbtc_btcnet.a"
)
