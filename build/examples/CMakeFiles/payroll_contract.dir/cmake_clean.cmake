file(REMOVE_RECURSE
  "CMakeFiles/payroll_contract.dir/payroll_contract.cpp.o"
  "CMakeFiles/payroll_contract.dir/payroll_contract.cpp.o.d"
  "payroll_contract"
  "payroll_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/payroll_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
