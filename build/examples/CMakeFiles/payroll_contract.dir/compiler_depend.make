# Empty compiler generated dependencies file for payroll_contract.
# This may be replaced when dependencies are built.
