file(REMOVE_RECURSE
  "CMakeFiles/fork_monitor.dir/fork_monitor.cpp.o"
  "CMakeFiles/fork_monitor.dir/fork_monitor.cpp.o.d"
  "fork_monitor"
  "fork_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fork_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
