# Empty compiler generated dependencies file for fork_monitor.
# This may be replaced when dependencies are built.
