file(REMOVE_RECURSE
  "CMakeFiles/ckbtc_demo.dir/ckbtc_demo.cpp.o"
  "CMakeFiles/ckbtc_demo.dir/ckbtc_demo.cpp.o.d"
  "ckbtc_demo"
  "ckbtc_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckbtc_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
