# Empty dependencies file for ckbtc_demo.
# This may be replaced when dependencies are built.
