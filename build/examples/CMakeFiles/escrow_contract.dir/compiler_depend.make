# Empty compiler generated dependencies file for escrow_contract.
# This may be replaced when dependencies are built.
