file(REMOVE_RECURSE
  "CMakeFiles/escrow_contract.dir/escrow_contract.cpp.o"
  "CMakeFiles/escrow_contract.dir/escrow_contract.cpp.o.d"
  "escrow_contract"
  "escrow_contract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/escrow_contract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
