# Empty compiler generated dependencies file for bench_security_eclipse.
# This may be replaced when dependencies are built.
