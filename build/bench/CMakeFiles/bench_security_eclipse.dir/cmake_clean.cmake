file(REMOVE_RECURSE
  "CMakeFiles/bench_security_eclipse.dir/bench_security_eclipse.cpp.o"
  "CMakeFiles/bench_security_eclipse.dir/bench_security_eclipse.cpp.o.d"
  "bench_security_eclipse"
  "bench_security_eclipse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_eclipse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
