file(REMOVE_RECURSE
  "libicbtc_bench_support.a"
)
