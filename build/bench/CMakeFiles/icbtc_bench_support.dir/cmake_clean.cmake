file(REMOVE_RECURSE
  "CMakeFiles/icbtc_bench_support.dir/workload.cpp.o"
  "CMakeFiles/icbtc_bench_support.dir/workload.cpp.o.d"
  "libicbtc_bench_support.a"
  "libicbtc_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icbtc_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
