# Empty compiler generated dependencies file for icbtc_bench_support.
# This may be replaced when dependencies are built.
