file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_growth.dir/bench_storage_growth.cpp.o"
  "CMakeFiles/bench_storage_growth.dir/bench_storage_growth.cpp.o.d"
  "bench_storage_growth"
  "bench_storage_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
