# Empty compiler generated dependencies file for bench_security_downtime.
# This may be replaced when dependencies are built.
