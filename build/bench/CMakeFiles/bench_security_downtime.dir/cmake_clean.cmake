file(REMOVE_RECURSE
  "CMakeFiles/bench_security_downtime.dir/bench_security_downtime.cpp.o"
  "CMakeFiles/bench_security_downtime.dir/bench_security_downtime.cpp.o.d"
  "bench_security_downtime"
  "bench_security_downtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_downtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
