file(REMOVE_RECURSE
  "CMakeFiles/bench_security_fork.dir/bench_security_fork.cpp.o"
  "CMakeFiles/bench_security_fork.dir/bench_security_fork.cpp.o.d"
  "bench_security_fork"
  "bench_security_fork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_fork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
