# Empty dependencies file for bench_security_fork.
# This may be replaced when dependencies are built.
