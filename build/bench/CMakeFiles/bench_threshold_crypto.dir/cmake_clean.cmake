file(REMOVE_RECURSE
  "CMakeFiles/bench_threshold_crypto.dir/bench_threshold_crypto.cpp.o"
  "CMakeFiles/bench_threshold_crypto.dir/bench_threshold_crypto.cpp.o.d"
  "bench_threshold_crypto"
  "bench_threshold_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_threshold_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
