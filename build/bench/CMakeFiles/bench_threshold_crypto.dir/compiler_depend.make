# Empty compiler generated dependencies file for bench_threshold_crypto.
# This may be replaced when dependencies are built.
