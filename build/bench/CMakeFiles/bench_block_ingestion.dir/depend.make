# Empty dependencies file for bench_block_ingestion.
# This may be replaced when dependencies are built.
