
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_block_ingestion.cpp" "bench/CMakeFiles/bench_block_ingestion.dir/bench_block_ingestion.cpp.o" "gcc" "bench/CMakeFiles/bench_block_ingestion.dir/bench_block_ingestion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/icbtc_bench_support.dir/DependInfo.cmake"
  "/root/repo/build/src/contracts/CMakeFiles/icbtc_contracts.dir/DependInfo.cmake"
  "/root/repo/build/src/canister/CMakeFiles/icbtc_canister.dir/DependInfo.cmake"
  "/root/repo/build/src/adapter/CMakeFiles/icbtc_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/btcnet/CMakeFiles/icbtc_btcnet.dir/DependInfo.cmake"
  "/root/repo/build/src/ic/CMakeFiles/icbtc_ic.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/icbtc_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/bitcoin/CMakeFiles/icbtc_bitcoin.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/icbtc_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/icbtc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
