file(REMOVE_RECURSE
  "CMakeFiles/bench_block_ingestion.dir/bench_block_ingestion.cpp.o"
  "CMakeFiles/bench_block_ingestion.dir/bench_block_ingestion.cpp.o.d"
  "bench_block_ingestion"
  "bench_block_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
