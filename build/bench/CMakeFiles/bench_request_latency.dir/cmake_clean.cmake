file(REMOVE_RECURSE
  "CMakeFiles/bench_request_latency.dir/bench_request_latency.cpp.o"
  "CMakeFiles/bench_request_latency.dir/bench_request_latency.cpp.o.d"
  "bench_request_latency"
  "bench_request_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_request_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
