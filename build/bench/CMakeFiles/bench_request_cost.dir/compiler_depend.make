# Empty compiler generated dependencies file for bench_request_cost.
# This may be replaced when dependencies are built.
