file(REMOVE_RECURSE
  "CMakeFiles/bench_request_cost.dir/bench_request_cost.cpp.o"
  "CMakeFiles/bench_request_cost.dir/bench_request_cost.cpp.o.d"
  "bench_request_cost"
  "bench_request_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_request_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
