// Adversarial-peer tests: the Bitcoin adapter (and through it the canister)
// must stay correct when connected peers serve garbage — invalid proof of
// work, mismatched blocks, bogus inventories, address-book poisoning. These
// are the §IV-A "flood the canister with invalid data" scenarios; the
// adapter's validation makes them no-ops.
#include <gtest/gtest.h>

#include "adapter/adapter.h"
#include "btcnet/harness.h"
#include "chain/block_builder.h"

namespace icbtc::adapter {
namespace {

using btcnet::Message;
using btcnet::NodeId;

/// A Bitcoin "node" fully controlled by the test: it answers protocol
/// messages with attacker-chosen payloads.
class EvilPeer : public btcnet::Endpoint {
 public:
  EvilPeer(btcnet::Network& network, const bitcoin::ChainParams& params)
      : network_(&network), params_(&params) {
    id_ = network.attach(this, /*ipv6=*/true, /*gossiped=*/true);
  }
  ~EvilPeer() override {
    if (network_->exists(id_)) network_->detach(id_);
  }

  NodeId id() const { return id_; }

  std::vector<bitcoin::BlockHeader> headers_to_serve;
  std::vector<btcnet::NetAddress> addresses_to_serve;
  std::optional<bitcoin::Block> block_to_serve;  // served for ANY getdata

  void deliver(NodeId from, const Message& msg) override {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, btcnet::MsgGetHeaders>) {
            network_->send(id_, from, btcnet::MsgHeaders{headers_to_serve});
          } else if constexpr (std::is_same_v<T, btcnet::MsgGetData>) {
            if (block_to_serve) {
              for (std::size_t i = 0; i < m.block_hashes.size(); ++i) {
                network_->send(id_, from, btcnet::MsgBlock{*block_to_serve});
              }
            }
          } else if constexpr (std::is_same_v<T, btcnet::MsgGetAddr>) {
            network_->send(id_, from, btcnet::MsgAddr{addresses_to_serve});
          }
        },
        msg);
  }

 private:
  btcnet::Network* network_;
  const bitcoin::ChainParams* params_;
  NodeId id_ = btcnet::kInvalidNode;
};

class AdversarialAdapterTest : public ::testing::Test {
 protected:
  AdversarialAdapterTest() : evil_(net_, params_) {
    net_.add_dns_seed(evil_.id());  // the adapter bootstraps from the attacker
    config_.outbound_connections = 2;
    config_.addr_lower_threshold = 1;
    config_.addr_upper_threshold = 4;
    config_.multi_block_below_height = 1 << 30;
  }

  bitcoin::BlockHeader valid_child_of_genesis(std::uint32_t salt) {
    chain::HeaderTree tree(params_, params_.genesis_header);
    util::Hash256 merkle;
    merkle.data[0] = static_cast<std::uint8_t>(salt);
    return chain::build_child_header(tree, tree.root_hash(),
                                     params_.genesis_header.time + 600, merkle);
  }

  util::Simulation sim_;
  btcnet::Network net_{sim_, util::Rng(66)};
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  EvilPeer evil_;
  AdapterConfig config_;
};

TEST_F(AdversarialAdapterTest, InvalidPowHeadersDiscarded) {
  // Headers with correct linkage but failing PoW.
  bitcoin::BlockHeader bad;
  bad.prev_hash = params_.genesis_header.hash();
  bad.time = params_.genesis_header.time + 600;
  bad.bits = params_.pow_limit_bits;
  // Grind the nonce until the hash FAILS the target (nearly immediate).
  while (bitcoin::check_proof_of_work(bad.hash(), bad.bits, params_.pow_limit)) ++bad.nonce;
  evil_.headers_to_serve = {bad};

  BitcoinAdapter adapter(net_, params_, config_, util::Rng(1));
  adapter.start();
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  EXPECT_EQ(adapter.header_tree().size(), 1u);  // still only genesis
}

TEST_F(AdversarialAdapterTest, WrongDifficultyHeadersDiscarded) {
  bitcoin::BlockHeader bad;
  bad.prev_hash = params_.genesis_header.hash();
  bad.time = params_.genesis_header.time + 600;
  bad.bits = 0x207ffffe;  // not the expected bits
  evil_.headers_to_serve = {bad};
  BitcoinAdapter adapter(net_, params_, config_, util::Rng(2));
  adapter.start();
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  EXPECT_EQ(adapter.header_tree().size(), 1u);
}

TEST_F(AdversarialAdapterTest, FutureTimestampHeadersDiscarded) {
  chain::HeaderTree tree(params_, params_.genesis_header);
  util::Hash256 merkle;
  // Valid PoW, but timestamped 1 year ahead of simulated now.
  auto far = chain::build_child_header(tree, tree.root_hash(),
                                       params_.genesis_header.time + 365 * 24 * 3600, merkle);
  evil_.headers_to_serve = {far};
  BitcoinAdapter adapter(net_, params_, config_, util::Rng(3));
  adapter.start();
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  EXPECT_EQ(adapter.header_tree().size(), 1u);
}

TEST_F(AdversarialAdapterTest, MismatchedBlockNotStored) {
  // Serve a valid header but answer getdata with a block whose hash differs.
  auto header = valid_child_of_genesis(1);
  evil_.headers_to_serve = {header};
  bitcoin::Block wrong = bitcoin::genesis_block(params_);
  evil_.block_to_serve = wrong;

  BitcoinAdapter adapter(net_, params_, config_, util::Rng(4));
  adapter.start();
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  adapter.handle_request(request);  // triggers the block fetch
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_TRUE(adapter.header_tree().contains(header.hash()));
  EXPECT_FALSE(adapter.has_block(header.hash()));  // junk rejected
  auto response = adapter.handle_request(request);
  EXPECT_TRUE(response.blocks.empty());
  // The header still shows up in N — the canister learns it lags without
  // trusting the attacker's block.
  ASSERT_EQ(response.next_headers.size(), 1u);
  EXPECT_EQ(response.next_headers[0].hash(), header.hash());
}

TEST_F(AdversarialAdapterTest, MalformedBlockNotStored) {
  auto header = valid_child_of_genesis(2);
  evil_.headers_to_serve = {header};
  bitcoin::Block malformed;
  malformed.header = header;  // right hash commitment, but no transactions
  evil_.block_to_serve = malformed;

  BitcoinAdapter adapter(net_, params_, config_, util::Rng(5));
  adapter.start();
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  adapter.handle_request(request);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_FALSE(adapter.has_block(header.hash()));
}

TEST_F(AdversarialAdapterTest, AddressPoisoningCappedAtThreshold) {
  // The attacker gossips a huge list of addresses (mostly nonexistent).
  for (std::uint32_t i = 0; i < 1000; ++i) {
    evil_.addresses_to_serve.push_back(btcnet::NetAddress{10000 + i, true});
  }
  BitcoinAdapter adapter(net_, params_, config_, util::Rng(6));
  adapter.start();
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  // The book never exceeds t_u, and connecting to ghosts fails harmlessly.
  EXPECT_LE(adapter.known_addresses(), config_.addr_upper_threshold);
  EXPECT_GE(adapter.active_connections(), 1u);  // the evil peer itself
}

TEST_F(AdversarialAdapterTest, HonestPeerOutweighsAttacker) {
  // One honest node with the real chain joins the network; the adapter ends
  // up serving the honest chain even while the attacker feeds garbage.
  btcnet::BitcoinNode honest(net_, params_);
  net_.add_dns_seed(honest.id());
  btcnet::Miner miner(honest, 1.0, util::Rng(7));
  for (int i = 0; i < 5; ++i) {
    sim_.run_until(sim_.now() + 700 * util::kSecond);
    miner.mine_one();
  }
  bitcoin::BlockHeader bad;
  bad.prev_hash = params_.genesis_header.hash();
  bad.bits = 0x207ffffe;
  evil_.headers_to_serve = {bad};

  config_.outbound_connections = 2;
  BitcoinAdapter adapter(net_, params_, config_, util::Rng(8));
  adapter.start();
  sim_.run_until(sim_.now() + 2 * util::kMinute);
  EXPECT_EQ(adapter.header_tree().best_height(), 5);
}

}  // namespace
}  // namespace icbtc::adapter
