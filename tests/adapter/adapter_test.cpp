#include "adapter/adapter.h"

#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "chain/block_builder.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"

namespace icbtc::adapter {
namespace {

using btcnet::BitcoinNetworkConfig;
using btcnet::BitcoinNetworkHarness;
using util::Hash256;

class AdapterTest : public ::testing::Test {
 protected:
  AdapterTest() {
    BitcoinNetworkConfig config;
    config.num_nodes = 10;
    config.connections_per_node = 3;
    config.num_dns_seeds = 2;
    config.num_miners = 2;
    config.ipv6_fraction = 1.0;  // all reachable for most tests
    harness_ = std::make_unique<BitcoinNetworkHarness>(sim_, params_, config, 1234);
    sim_.run();  // settle handshakes

    adapter_config_.outbound_connections = 5;
    adapter_config_.addr_lower_threshold = 3;
    adapter_config_.addr_upper_threshold = 8;
    adapter_config_.multi_block_below_height = 1 << 30;  // multi-block sync
  }

  void mine(int blocks) {
    // Never sim_.run() here: a started adapter's maintenance timer keeps the
    // event queue non-empty forever. Bounded runs only.
    auto* miner = harness_->miners()[0];
    for (int i = 0; i < blocks; ++i) {
      sim_.run_until(sim_.now() + 700 * util::kSecond);
      miner->mine_one();
    }
    sim_.run_until(sim_.now() + 30 * util::kSecond);  // propagate
  }

  util::Simulation sim_;
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  std::unique_ptr<BitcoinNetworkHarness> harness_;
  AdapterConfig adapter_config_;
};

TEST_F(AdapterTest, DiscoveryCollectsAddressesAndConnects) {
  BitcoinAdapter adapter(harness_->network(), params_, adapter_config_, util::Rng(1));
  adapter.start();
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_GE(adapter.known_addresses(), adapter_config_.addr_upper_threshold);
  EXPECT_EQ(adapter.active_connections(), adapter_config_.outbound_connections);
  EXPECT_FALSE(adapter.in_discovery());
}

TEST_F(AdapterTest, ServiceAvailableWithOneConnectionDuringDiscovery) {
  // t_u unreachable (more than the node count): the adapter stays in
  // discovery but serves as long as it has a connection (§III-B).
  adapter_config_.addr_upper_threshold = 1000;
  BitcoinAdapter adapter(harness_->network(), params_, adapter_config_, util::Rng(2));
  adapter.start();
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_TRUE(adapter.in_discovery());
  EXPECT_GT(adapter.active_connections(), 0u);
}

TEST_F(AdapterTest, Ipv6OnlyFilter) {
  // Build a network where most nodes are IPv4-only.
  util::Simulation sim;
  BitcoinNetworkConfig config;
  config.num_nodes = 10;
  config.ipv6_fraction = 0.0;  // nothing reachable
  config.num_dns_seeds = 3;
  BitcoinNetworkHarness v4_harness(sim, params_, config, 77);
  sim.run();
  BitcoinAdapter adapter(v4_harness.network(), params_, adapter_config_, util::Rng(3));
  adapter.start();
  sim.run_until(60 * util::kSecond);
  EXPECT_EQ(adapter.known_addresses(), 0u);
  EXPECT_EQ(adapter.active_connections(), 0u);
}

TEST_F(AdapterTest, HeaderSyncTracksNetwork) {
  mine(15);
  BitcoinAdapter adapter(harness_->network(), params_, adapter_config_, util::Rng(4));
  adapter.start();
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  EXPECT_EQ(adapter.header_tree().best_height(), harness_->node(0).best_height());
}

TEST_F(AdapterTest, HeaderTreeFollowsNewBlocks) {
  BitcoinAdapter adapter(harness_->network(), params_, adapter_config_, util::Rng(5));
  adapter.start();
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  mine(3);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_EQ(adapter.header_tree().best_height(), harness_->node(0).best_height());
}

// ---------------------------------------------------------------------------
// Algorithm 1 semantics.

class Algorithm1Test : public AdapterTest {
 protected:
  Algorithm1Test() {
    adapter_ = std::make_unique<BitcoinAdapter>(harness_->network(), params_, adapter_config_,
                                                util::Rng(6));
    adapter_->start();
    sim_.run_until(sim_.now() + 30 * util::kSecond);
  }

  /// Issues repeated requests (simulating the canister's loop) until the
  /// response is empty or `max_iters` is hit; returns all blocks received.
  std::vector<bitcoin::Block> sync_all(AdapterRequest request, int max_iters = 50) {
    std::vector<bitcoin::Block> received;
    for (int i = 0; i < max_iters; ++i) {
      auto response = adapter_->handle_request(request);
      for (auto& [block, header] : response.blocks) {
        request.processed.push_back(header.hash());
        received.push_back(block);
      }
      if (response.blocks.empty()) {
        // Allow time for background block downloads triggered by the request.
        sim_.run_until(sim_.now() + 10 * util::kSecond);
        auto retry = adapter_->handle_request(request);
        if (retry.blocks.empty() && retry.next_headers.empty()) break;
        for (auto& [block, header] : retry.blocks) {
          request.processed.push_back(header.hash());
          received.push_back(block);
        }
      }
      sim_.run_until(sim_.now() + 5 * util::kSecond);
    }
    return received;
  }

  std::unique_ptr<BitcoinAdapter> adapter_;
};

TEST_F(Algorithm1Test, ServesBlocksExtendingAnchor) {
  mine(8);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto blocks = sync_all(request);
  EXPECT_EQ(blocks.size(), 8u);
  // Blocks arrive in BFS (height) order from the anchor.
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_EQ(blocks[i].header.prev_hash, blocks[i - 1].hash());
  }
}

TEST_F(Algorithm1Test, UnknownAnchorYieldsEmptyResponse) {
  mine(2);
  AdapterRequest request;
  request.anchor.data[0] = 0xee;  // not a known header
  auto response = adapter_->handle_request(request);
  EXPECT_TRUE(response.blocks.empty());
  EXPECT_TRUE(response.next_headers.empty());
}

TEST_F(Algorithm1Test, ProcessedBlocksNotResent) {
  mine(4);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto first = sync_all(request);
  ASSERT_GE(first.size(), 4u);
  // Re-request with everything marked processed: nothing comes back.
  for (const auto& b : first) request.processed.push_back(b.hash());
  auto response = adapter_->handle_request(request);
  EXPECT_TRUE(response.blocks.empty());
}

TEST_F(Algorithm1Test, NextHeadersReportUpcomingBlocks) {
  mine(6);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto response = adapter_->handle_request(request);
  // Whatever was not returned as a block appears in N (tamper-proof sync
  // progress signal, §III-C).
  std::size_t total = response.blocks.size() + response.next_headers.size();
  EXPECT_EQ(total, 6u);
}

TEST_F(Algorithm1Test, MaxHeadersCapRespected) {
  adapter_config_.max_headers = 4;
  BitcoinAdapter capped(harness_->network(), params_, adapter_config_, util::Rng(7));
  capped.start();
  mine(10);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto response = capped.handle_request(request);
  EXPECT_LE(response.next_headers.size(), 4u);
}

TEST_F(Algorithm1Test, SingleBlockModeAboveThreshold) {
  adapter_config_.multi_block_below_height = 0;  // always single-block
  BitcoinAdapter single(harness_->network(), params_, adapter_config_, util::Rng(8));
  single.start();
  mine(5);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto response = single.handle_request(request);
  EXPECT_LE(response.blocks.size(), 1u);
}

TEST_F(Algorithm1Test, ResponseSizeCapRespected) {
  adapter_config_.max_response_bytes = 500;  // tiny: forces few blocks
  BitcoinAdapter small(harness_->network(), params_, adapter_config_, util::Rng(9));
  small.start();
  mine(6);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  // First request only triggers the block downloads; assert on a later one.
  small.handle_request(request);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  auto response = small.handle_request(request);
  // The soft cap admits the block that crosses the limit but nothing after.
  std::size_t bytes = 0;
  for (auto& [block, header] : response.blocks) bytes += block.size();
  EXPECT_LT(response.blocks.size(), 6u);
  EXPECT_GT(response.blocks.size(), 0u);
  EXPECT_LT(bytes, 1000u);
}

TEST_F(Algorithm1Test, TransactionsEnterCacheAndReachNetwork) {
  mine(1);
  sim_.run_until(sim_.now() + 10 * util::kSecond);

  // Build a spend of the mined coinbase? Simpler: an unfunded-but-well-formed
  // transaction reaches mempools only if valid, so check the cache and
  // advertisement machinery with a valid spend below (contracts tests cover
  // the full path). Here: malformed bytes are dropped, valid bytes cached.
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  request.transactions.push_back(util::Bytes{0x00, 0x01});  // undecodable
  adapter_->handle_request(request);
  EXPECT_EQ(adapter_->cached_transactions(), 0u);

  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 1;
  in.prevout.vout = 0;
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{1000, {0x51}});
  request.transactions = {tx.serialize()};
  adapter_->handle_request(request);
  EXPECT_EQ(adapter_->cached_transactions(), 1u);
}

TEST_F(Algorithm1Test, TransactionCacheExpires) {
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 2;
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{1000, {0x51}});
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  request.transactions = {tx.serialize()};
  adapter_->handle_request(request);
  EXPECT_EQ(adapter_->cached_transactions(), 1u);
  sim_.run_until(sim_.now() + 11 * util::kMinute);
  EXPECT_EQ(adapter_->cached_transactions(), 0u);
}

TEST_F(Algorithm1Test, TransactionEarlyDropAfterFullFanout) {
  // All ℓ = 5 connected peers pull the advertised tx within seconds; once
  // ℓ distinct peers have it, the cache may drop it well before the
  // 10-minute expiry.
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 3;
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{1000, {0x51}});
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  request.transactions = {tx.serialize()};
  adapter_->handle_request(request);
  ASSERT_EQ(adapter_->cached_transactions(), 1u);
  ASSERT_EQ(adapter_->active_connections(), adapter_config_.outbound_connections);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  EXPECT_EQ(adapter_->cached_transactions(), 0u);
}

// ---------------------------------------------------------------------------
// Transaction relay eviction (§III-B): a cached tx may only be dropped early
// once ℓ = outbound_connections *distinct* peers have pulled it — not as soon
// as every currently connected peer has (which, with one transient peer,
// would evict minutes before expiry and starve later peers).

bitcoin::Transaction relay_test_tx(std::uint8_t tag) {
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = tag;
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{1000, {0x51}});
  return tx;
}

TEST(TxRelayEvictionTest, SurvivesWhenFewerPeersThanFanoutPulled) {
  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  BitcoinNetworkConfig config;
  config.num_nodes = 2;  // fewer peers than the adapter's fan-out target
  config.connections_per_node = 1;
  config.num_dns_seeds = 1;
  config.num_miners = 1;
  config.ipv6_fraction = 1.0;
  BitcoinNetworkHarness harness(sim, params, config, 4321);
  sim.run();

  AdapterConfig aconfig;
  aconfig.outbound_connections = 5;  // only 2 are reachable
  aconfig.addr_lower_threshold = 1;
  aconfig.addr_upper_threshold = 2;
  BitcoinAdapter adapter(harness.network(), params, aconfig, util::Rng(10));
  adapter.start();
  sim.run_until(sim.now() + 30 * util::kSecond);
  ASSERT_GT(adapter.active_connections(), 0u);
  ASSERT_LT(adapter.active_connections(), aconfig.outbound_connections);

  AdapterRequest request;
  request.anchor = params.genesis_header.hash();
  request.transactions = {relay_test_tx(5).serialize()};
  adapter.handle_request(request);
  ASSERT_EQ(adapter.cached_transactions(), 1u);

  // Both reachable peers pull the tx, but 2 < ℓ: the tx must stay cached
  // for the full expiry window in case more peers appear.
  sim.run_until(sim.now() + 5 * util::kMinute);
  EXPECT_EQ(adapter.cached_transactions(), 1u);
  sim.run_until(sim.now() + 6 * util::kMinute);  // past the 10-minute expiry
  EXPECT_EQ(adapter.cached_transactions(), 0u);
}

TEST(TxRelayEvictionTest, ReachesLaterReachablePeerThenDrops) {
  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  BitcoinNetworkConfig config;
  config.num_nodes = 3;
  config.connections_per_node = 2;
  config.num_dns_seeds = 1;
  config.num_miners = 1;
  config.ipv6_fraction = 1.0;
  BitcoinNetworkHarness harness(sim, params, config, 987);
  sim.run();
  // One node starts out unreachable (partitioned): its link stays up but
  // messages are dropped, as with a mid-connection network outage.
  btcnet::NodeId cut = harness.node(2).id();
  harness.network().set_partitioned(cut, true);

  AdapterConfig aconfig;
  aconfig.outbound_connections = 3;
  aconfig.addr_lower_threshold = 1;
  aconfig.addr_upper_threshold = 3;
  BitcoinAdapter adapter(harness.network(), params, aconfig, util::Rng(11));
  adapter.start();
  sim.run_until(sim.now() + 60 * util::kSecond);

  AdapterRequest request;
  request.anchor = params.genesis_header.hash();
  request.transactions = {relay_test_tx(6).serialize()};
  adapter.handle_request(request);
  ASSERT_EQ(adapter.cached_transactions(), 1u);

  // Only the two reachable peers can pull: fewer than ℓ = 3, so the tx
  // survives (the old connected-peers-only rule would have dropped it here).
  sim.run_until(sim.now() + 2 * util::kMinute);
  ASSERT_EQ(adapter.cached_transactions(), 1u);

  // The partition heals: the advertisement reaches the third peer, it pulls
  // the tx, and with ℓ distinct deliveries the cache finally drops it —
  // still well before the 10-minute expiry.
  harness.network().set_partitioned(cut, false);
  sim.run_until(sim.now() + 90 * util::kSecond);
  EXPECT_EQ(adapter.cached_transactions(), 0u);
}

// ---------------------------------------------------------------------------
// Response limits: the MAX_SIZE soft cap and the multi-block height boundary.

TEST_F(Algorithm1Test, SoftCapStillServesOversizedBlock) {
  adapter_config_.max_response_bytes = 1;  // smaller than any block
  BitcoinAdapter tiny(harness_->network(), params_, adapter_config_, util::Rng(12));
  tiny.start();
  mine(3);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  tiny.handle_request(request);  // triggers the block downloads
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  auto response = tiny.handle_request(request);
  // MAX_SIZE is a soft limit: the block that crosses it is still served,
  // but nothing after it.
  ASSERT_EQ(response.blocks.size(), 1u);
  EXPECT_GT(response.blocks[0].first.size(), adapter_config_.max_response_bytes);
}

TEST_F(Algorithm1Test, MultiBlockBoundaryIsExclusive) {
  mine(6);
  sim_.run_until(sim_.now() + 60 * util::kSecond);
  auto chain = harness_->node(0).tree().current_chain();  // genesis .. tip
  ASSERT_GE(chain.size(), 7u);

  adapter_config_.multi_block_below_height = 2;
  BitcoinAdapter bounded(harness_->network(), params_, adapter_config_, util::Rng(13));
  bounded.start();
  sim_.run_until(sim_.now() + 60 * util::kSecond);

  // Anchor height 1 < 2: multi-block mode.
  AdapterRequest low;
  low.anchor = chain[1];
  bounded.handle_request(low);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  auto low_response = bounded.handle_request(low);
  EXPECT_GT(low_response.blocks.size(), 1u);

  // Anchor height exactly at the threshold: single-block mode (strict <).
  AdapterRequest at;
  at.anchor = chain[2];
  bounded.handle_request(at);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  auto at_response = bounded.handle_request(at);
  EXPECT_EQ(at_response.blocks.size(), 1u);
}

TEST_F(Algorithm1Test, ReconnectsAfterPeerLoss) {
  auto peers = adapter_->connected_peers();
  ASSERT_FALSE(peers.empty());
  for (auto peer : peers) harness_->network().disconnect(adapter_->id(), peer);
  EXPECT_EQ(adapter_->active_connections(), 0u);
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_EQ(adapter_->active_connections(), adapter_config_.outbound_connections);
}

// ---------------------------------------------------------------------------
// Compact block fetch (src/reconcile): opt-in getdata flag, recent-tx pool,
// reconstruction, and the full-block fallback.

class CompactFetchTest : public AdapterTest {
 protected:
  CompactFetchTest() {
    adapter_config_.compact_block_fetch = true;
    adapter_ = std::make_unique<BitcoinAdapter>(harness_->network(), params_, adapter_config_,
                                                util::Rng(14));
    adapter_->set_metrics(&registry_);
    adapter_->start();
    sim_.run_until(sim_.now() + 30 * util::kSecond);
  }

  std::vector<bitcoin::Block> sync_all(AdapterRequest request, int max_iters = 50) {
    std::vector<bitcoin::Block> received;
    for (int i = 0; i < max_iters; ++i) {
      auto response = adapter_->handle_request(request);
      for (auto& [block, header] : response.blocks) {
        request.processed.push_back(header.hash());
        received.push_back(block);
      }
      if (response.blocks.empty()) {
        sim_.run_until(sim_.now() + 10 * util::kSecond);
        auto retry = adapter_->handle_request(request);
        if (retry.blocks.empty() && retry.next_headers.empty()) break;
        for (auto& [block, header] : retry.blocks) {
          request.processed.push_back(header.hash());
          received.push_back(block);
        }
      }
      sim_.run_until(sim_.now() + 5 * util::kSecond);
    }
    return received;
  }

  std::uint64_t counter(const std::string& name) const {
    auto it = registry_.counters().find(name);
    return it == registry_.counters().end() ? 0 : it->second.value();
  }

  obs::MetricsRegistry registry_;
  std::unique_ptr<BitcoinAdapter> adapter_;
};

TEST_F(CompactFetchTest, SyncsViaCompactBlocks) {
  mine(4);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto blocks = sync_all(request);
  EXPECT_EQ(blocks.size(), 4u);
  // Every block arrived as a compact block and reconstructed locally.
  EXPECT_GE(counter("adapter.cmpct.received"), 4u);
  EXPECT_GE(counter("adapter.cmpct.reconstructed"), 4u);
  EXPECT_EQ(counter("adapter.cmpct.fallback.full"), 0u);
}

TEST_F(CompactFetchTest, RecentTxPoolFeedsReconstruction) {
  // Fund a key we control on node 0 and broadcast a spend. With compact
  // fetch enabled, the adapter pulls announced transactions into its
  // recent-tx pool and later reconstructs the block carrying them.
  auto key = crypto::PrivateKey::from_seed(util::Bytes{7, 8, 9});
  auto key_hash = crypto::hash160(key.public_key().compressed());
  auto& node = harness_->node(0);
  std::uint32_t time = static_cast<std::uint32_t>(
      params_.genesis_header.time + sim_.now() / util::kSecond + 60);
  auto fund_block =
      chain::build_child_block(node.tree(), node.best_tip(), time,
                               bitcoin::p2pkh_script(key_hash), 50 * bitcoin::kCoin, {}, 4242);
  ASSERT_TRUE(node.submit_block(fund_block));
  sim_.run_until(sim_.now() + 30 * util::kSecond);

  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint{fund_block.transactions[0].txid(), 0};
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{49 * bitcoin::kCoin, bitcoin::p2pkh_script(key_hash)});
  auto lock = bitcoin::p2pkh_script(key_hash);
  auto digest = bitcoin::legacy_sighash(tx, 0, lock);
  tx.inputs[0].script_sig =
      bitcoin::p2pkh_script_sig(key.sign(digest), key.public_key().compressed());
  ASSERT_TRUE(node.submit_tx(tx));
  sim_.run_until(sim_.now() + 30 * util::kSecond);
  EXPECT_GE(adapter_->recent_tx_pool(), 1u);

  mine(1);
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto blocks = sync_all(request);
  ASSERT_EQ(blocks.size(), 2u);
  bool found = false;
  for (const auto& block : blocks) {
    for (const auto& mined_tx : block.transactions) found |= mined_tx.txid() == tx.txid();
  }
  EXPECT_TRUE(found);
  EXPECT_GE(counter("adapter.cmpct.reconstructed"), 2u);
  EXPECT_EQ(counter("adapter.cmpct.fallback.full"), 0u);
}

TEST_F(CompactFetchTest, ForgedCompactBlockFallsBackToFullFetch) {
  mine(1);
  const bitcoin::Block* tip = harness_->node(0).get_block(harness_->node(0).best_tip());
  ASSERT_NE(tip, nullptr);

  // An attacker serves a compact block with the real header but a tampered
  // coinbase: the Merkle check must reject the reassembly and the adapter
  // must fall back to fetching the full block.
  bitcoin::Block forged = *tip;
  forged.transactions[0].inputs[0].script_sig.push_back(0xff);
  // The attacker serves freshly forged bytes, so the tampered coinbase must
  // not retain the honest tx's cached txid.
  forged.transactions[0].invalidate_txid();

  class Silent : public btcnet::Endpoint {
   public:
    void deliver(btcnet::NodeId, const btcnet::Message&) override {}
  } attacker;
  auto attacker_id = harness_->network().attach(&attacker, true, false);
  harness_->network().connect(attacker_id, adapter_->id());
  harness_->network().send(attacker_id, adapter_->id(),
                           btcnet::MsgCmpctBlock{reconcile::CompactBlockCodec::encode(forged, 8)});
  sim_.run_until(sim_.now() + 10 * util::kSecond);

  EXPECT_GE(counter("adapter.cmpct.fallback.full"), 1u);
  EXPECT_FALSE(adapter_->has_block(tip->hash()));  // the forgery was not stored

  // The honest network still serves the real block on request.
  AdapterRequest request;
  request.anchor = params_.genesis_header.hash();
  auto blocks = sync_all(request);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0].hash(), tip->hash());

  // The attacker endpoint is a stack object that dies before the fixture's
  // adapter; detach it so the network drops its pointer first.
  harness_->network().detach(attacker_id);
}

}  // namespace
}  // namespace icbtc::adapter
