#include "bitcoin/utxo.h"

#include <gtest/gtest.h>

#include "bitcoin/script.h"

namespace icbtc::bitcoin {
namespace {

OutPoint op(std::uint8_t tag, std::uint32_t vout = 0) {
  OutPoint o;
  o.txid.data[0] = tag;
  o.vout = vout;
  return o;
}

TEST(UtxoSetTest, AddFindRemove) {
  UtxoSet set;
  EXPECT_EQ(set.size(), 0u);
  set.add(op(1), UtxoEntry{TxOut{100, {}}, 5, false});
  EXPECT_TRUE(set.contains(op(1)));
  auto found = set.find(op(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->output.value, 100);
  EXPECT_EQ(found->height, 5);
  auto removed = set.remove(op(1));
  ASSERT_TRUE(removed.has_value());
  EXPECT_FALSE(set.contains(op(1)));
  EXPECT_FALSE(set.remove(op(1)).has_value());
}

Block block_with(std::vector<Transaction> txs) {
  Block b;
  Transaction coinbase;
  TxIn cin;
  cin.prevout = OutPoint::null();
  cin.script_sig = {0x42};
  coinbase.inputs.push_back(cin);
  coinbase.outputs.push_back(TxOut{50 * kCoin, {0x51}});
  b.transactions.push_back(coinbase);
  for (auto& tx : txs) b.transactions.push_back(std::move(tx));
  b.header.merkle_root = b.compute_merkle_root();
  return b;
}

TEST(UtxoSetTest, ApplyBlockCreatesCoinbaseOutput) {
  UtxoSet set;
  Block b = block_with({});
  auto undo = set.apply_block(b, 7);
  ASSERT_TRUE(undo.has_value());
  EXPECT_EQ(set.size(), 1u);
  auto entry = set.find(OutPoint{b.transactions[0].txid(), 0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->coinbase);
  EXPECT_EQ(entry->height, 7);
}

TEST(UtxoSetTest, ApplyBlockSpendsInputs) {
  UtxoSet set;
  set.add(op(9), UtxoEntry{TxOut{1000, {}}, 1, false});
  Transaction tx;
  TxIn in;
  in.prevout = op(9);
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{900, {0x52}});
  Block b = block_with({tx});
  auto undo = set.apply_block(b, 2);
  ASSERT_TRUE(undo.has_value());
  EXPECT_FALSE(set.contains(op(9)));
  EXPECT_TRUE(set.contains(OutPoint{tx.txid(), 0}));
  EXPECT_EQ(undo->spent.size(), 1u);
  EXPECT_EQ(undo->created.size(), 2u);  // coinbase + tx output
}

TEST(UtxoSetTest, ApplyBlockRejectsMissingInput) {
  UtxoSet set;
  Transaction tx;
  TxIn in;
  in.prevout = op(9);  // not in the set
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{900, {}});
  Block b = block_with({tx});
  EXPECT_FALSE(set.apply_block(b, 2).has_value());
  EXPECT_EQ(set.size(), 0u);  // untouched
}

TEST(UtxoSetTest, ApplyBlockRejectsIntraBlockDoubleSpend) {
  UtxoSet set;
  set.add(op(9), UtxoEntry{TxOut{1000, {}}, 1, false});
  Transaction tx1, tx2;
  TxIn in;
  in.prevout = op(9);
  tx1.inputs.push_back(in);
  tx1.outputs.push_back(TxOut{1, {}});
  tx2.inputs.push_back(in);
  tx2.outputs.push_back(TxOut{2, {}});
  Block b = block_with({tx1, tx2});
  EXPECT_FALSE(set.apply_block(b, 2).has_value());
  EXPECT_TRUE(set.contains(op(9)));
}

TEST(UtxoSetTest, IntraBlockChainCollapses) {
  // tx2 spends tx1's output within the same block: only tx2's output lands.
  UtxoSet set;
  set.add(op(9), UtxoEntry{TxOut{1000, {}}, 1, false});
  Transaction tx1;
  TxIn in1;
  in1.prevout = op(9);
  tx1.inputs.push_back(in1);
  tx1.outputs.push_back(TxOut{900, {0x01}});
  Transaction tx2;
  TxIn in2;
  in2.prevout = OutPoint{tx1.txid(), 0};
  tx2.inputs.push_back(in2);
  tx2.outputs.push_back(TxOut{800, {0x02}});
  Block b = block_with({tx1, tx2});
  auto undo = set.apply_block(b, 3);
  ASSERT_TRUE(undo.has_value());
  EXPECT_FALSE(set.contains(OutPoint{tx1.txid(), 0}));
  EXPECT_TRUE(set.contains(OutPoint{tx2.txid(), 0}));
}

TEST(UtxoSetTest, OpReturnOutputsNeverEnterSet) {
  UtxoSet set;
  Transaction tx;
  TxIn in;
  in.prevout = op(9);
  tx.inputs.push_back(in);
  set.add(op(9), UtxoEntry{TxOut{10, {}}, 1, false});
  tx.outputs.push_back(TxOut{0, op_return_script(util::Bytes{1, 2})});
  tx.outputs.push_back(TxOut{5, {0x51}});
  Block b = block_with({tx});
  ASSERT_TRUE(set.apply_block(b, 2).has_value());
  EXPECT_FALSE(set.contains(OutPoint{tx.txid(), 0}));
  EXPECT_TRUE(set.contains(OutPoint{tx.txid(), 1}));
}

TEST(UtxoSetTest, UndoRestoresExactState) {
  UtxoSet set;
  set.add(op(9), UtxoEntry{TxOut{1000, {0x09}}, 1, false});
  auto snapshot = set.entries();

  Transaction tx;
  TxIn in;
  in.prevout = op(9);
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{900, {0x53}});
  Block b = block_with({tx});
  auto undo = set.apply_block(b, 2);
  ASSERT_TRUE(undo.has_value());
  EXPECT_NE(set.entries(), snapshot);

  set.undo_block(*undo);
  EXPECT_EQ(set.entries(), snapshot);
}

TEST(UtxoSetTest, TotalValue) {
  UtxoSet set;
  set.add(op(1), UtxoEntry{TxOut{100, {}}, 1, false});
  set.add(op(2), UtxoEntry{TxOut{250, {}}, 2, false});
  EXPECT_EQ(set.total_value(), 350);
}

TEST(UtxoSetTest, MultipleApplyUndoRoundTrips) {
  UtxoSet set;
  std::vector<BlockUndo> undos;
  std::vector<Block> blocks;
  OutPoint prev;
  // Chain of blocks, each spending the previous block's coinbase.
  for (int h = 1; h <= 5; ++h) {
    std::vector<Transaction> txs;
    if (h > 1) {
      Transaction tx;
      TxIn in;
      in.prevout = prev;
      in.script_sig = {static_cast<std::uint8_t>(h)};
      tx.inputs.push_back(in);
      tx.outputs.push_back(TxOut{10 * h, {0x51}});
      txs.push_back(tx);
    }
    Block b = block_with(std::move(txs));
    b.transactions[0].inputs[0].script_sig = {static_cast<std::uint8_t>(h), 0x42};
    b.header.merkle_root = b.compute_merkle_root();
    prev = OutPoint{b.transactions[0].txid(), 0};
    auto undo = set.apply_block(b, h);
    ASSERT_TRUE(undo.has_value()) << h;
    undos.push_back(*undo);
    blocks.push_back(b);
  }
  std::size_t full_size = set.size();
  // Unwind all, should be empty; re-apply, same size.
  for (auto it = undos.rbegin(); it != undos.rend(); ++it) set.undo_block(*it);
  EXPECT_EQ(set.size(), 0u);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    ASSERT_TRUE(set.apply_block(blocks[i], static_cast<int>(i + 1)).has_value());
  }
  EXPECT_EQ(set.size(), full_size);
}

}  // namespace
}  // namespace icbtc::bitcoin
