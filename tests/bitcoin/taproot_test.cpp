// Taproot (key-path) support: P2TR script template, bech32m addresses, the
// simplified taproot sighash, and Schnorr spend verification.
#include <gtest/gtest.h>

#include "bitcoin/address.h"
#include "bitcoin/script.h"
#include "crypto/schnorr.h"

namespace icbtc::bitcoin {
namespace {

crypto::SchnorrKeyPair test_key(std::uint64_t tag) {
  return crypto::SchnorrKeyPair::from_secret(crypto::U256(1000 + tag));
}

TEST(TaprootScriptTest, TemplateShape) {
  auto key = test_key(1);
  auto script = p2tr_script(key.pubkey.bytes());
  EXPECT_EQ(script.size(), 34u);
  EXPECT_TRUE(is_p2tr(script));
  EXPECT_FALSE(is_p2pkh(script));
  EXPECT_FALSE(is_p2wpkh(script));
  EXPECT_FALSE(extract_pubkey_hash(script).has_value());
}

TEST(TaprootScriptTest, NonP2trRejected) {
  util::Hash160 h;
  EXPECT_FALSE(is_p2tr(p2pkh_script(h)));
  EXPECT_FALSE(is_p2tr(util::Bytes{}));
  util::Bytes almost(34, 0);
  almost[0] = OP_1;
  almost[1] = 31;  // wrong push size
  EXPECT_FALSE(is_p2tr(almost));
}

TEST(Bech32mTest, Bip350TaprootVector) {
  // BIP-350 example: v1 program
  // 79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798 encodes
  // to bc1p... with bech32m.
  auto program = util::from_hex(
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  auto addr = segwit_encode("bc", 1, program);
  EXPECT_EQ(addr, "bc1p0xlxvlhemja6c4dqv22uapctqupfhlxm9h8z3k2e72q4k9hcz7vqzk5jj0");
  auto decoded = segwit_decode("bc", addr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, 1);
  EXPECT_EQ(decoded->second, program);
}

TEST(Bech32mTest, V0StillUsesBech32) {
  auto program = util::from_hex("751e76e8199196d454941c45d1b3a323f1433bd6");
  EXPECT_EQ(segwit_encode("bc", 0, program), bech32_encode("bc", program));
}

TEST(Bech32mTest, ChecksumConstantsNotInterchangeable) {
  auto program = util::from_hex(
      "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
  // Encode v1 with the wrong (bech32) constant by faking a v0 encode of the
  // same data and then swapping the version character — decode must fail.
  auto addr = segwit_encode("bc", 1, program);
  // Tamper the version character ('p' = 1) to 'q' (= 0): checksum now wrong
  // for both constants.
  addr[3] = 'q';
  EXPECT_FALSE(segwit_decode("bc", addr).has_value());
}

TEST(TaprootAddressTest, RoundTripAllNetworks) {
  auto key = test_key(2);
  auto key_bytes = key.pubkey.bytes();
  util::Bytes expected_program(key_bytes.data.begin(), key_bytes.data.end());
  for (auto net : {Network::kMainnet, Network::kTestnet, Network::kRegtest}) {
    auto addr = p2tr_address(key_bytes, net);
    auto decoded = decode_address(addr, net);
    ASSERT_TRUE(decoded.has_value()) << addr;
    EXPECT_EQ(decoded->type, AddressType::kP2tr);
    EXPECT_EQ(decoded->program, expected_program);
    EXPECT_EQ(script_for_address(*decoded), p2tr_script(key_bytes));
  }
}

TEST(TaprootAddressTest, MainnetP2trStartsWithBc1p) {
  auto key = test_key(3);
  auto addr = p2tr_address(key.pubkey.bytes(), Network::kMainnet);
  EXPECT_EQ(addr.substr(0, 4), "bc1p");
}

class TaprootSpendTest : public ::testing::Test {
 protected:
  crypto::SchnorrKeyPair key_ = test_key(7);
  util::Bytes lock_script_ = p2tr_script(key_.pubkey.bytes());
  Transaction tx_;

  void SetUp() override {
    TxIn in;
    in.prevout.txid.data[5] = 0x77;
    tx_.inputs.push_back(in);
    tx_.outputs.push_back(TxOut{90, p2tr_script(test_key(8).pubkey.bytes())});
    auto digest = taproot_sighash(tx_, 0, lock_script_);
    auto sig = crypto::schnorr_sign(key_.secret_even_y, digest);
    tx_.inputs[0].script_sig = sig.bytes();
  }
};

TEST_F(TaprootSpendTest, ValidSpendVerifies) {
  EXPECT_TRUE(verify_p2tr_input(tx_, 0, lock_script_));
}

TEST_F(TaprootSpendTest, WrongKeyFails) {
  auto other = p2tr_script(test_key(9).pubkey.bytes());
  EXPECT_FALSE(verify_p2tr_input(tx_, 0, other));
}

TEST_F(TaprootSpendTest, TamperedOutputFails) {
  tx_.outputs[0].value += 1;
  EXPECT_FALSE(verify_p2tr_input(tx_, 0, lock_script_));
}

TEST_F(TaprootSpendTest, TamperedSignatureFails) {
  tx_.inputs[0].script_sig[10] ^= 1;
  EXPECT_FALSE(verify_p2tr_input(tx_, 0, lock_script_));
}

TEST_F(TaprootSpendTest, WrongLengthSignatureFails) {
  tx_.inputs[0].script_sig.pop_back();
  EXPECT_FALSE(verify_p2tr_input(tx_, 0, lock_script_));
}

TEST_F(TaprootSpendTest, NonTaprootLockFails) {
  util::Hash160 h;
  EXPECT_FALSE(verify_p2tr_input(tx_, 0, p2pkh_script(h)));
}

TEST_F(TaprootSpendTest, SighashCommitsToInputIndex) {
  TxIn extra;
  extra.prevout.txid.data[1] = 0x22;
  tx_.inputs.push_back(extra);
  auto h0 = taproot_sighash(tx_, 0, lock_script_);
  auto h1 = taproot_sighash(tx_, 1, lock_script_);
  EXPECT_NE(h0, h1);
  EXPECT_THROW(taproot_sighash(tx_, 5, lock_script_), std::out_of_range);
}

TEST_F(TaprootSpendTest, SighashIgnoresOtherScriptSigs) {
  TxIn extra;
  extra.prevout.txid.data[1] = 0x22;
  tx_.inputs.push_back(extra);
  auto before = taproot_sighash(tx_, 0, lock_script_);
  tx_.inputs[1].script_sig = {1, 2, 3};
  EXPECT_EQ(taproot_sighash(tx_, 0, lock_script_), before);
}

}  // namespace
}  // namespace icbtc::bitcoin
