#include "bitcoin/pow.h"

#include <gtest/gtest.h>

namespace icbtc::bitcoin {
namespace {

TEST(CompactTest, MainnetGenesisBits) {
  // 0x1d00ffff expands to 0x00000000ffff0000...0000.
  auto target = compact_to_target(0x1d00ffff);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->to_hex(),
            "00000000ffff0000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(target_to_compact(*target), 0x1d00ffffu);
}

TEST(CompactTest, RegtestBits) {
  auto target = compact_to_target(0x207fffff);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(target->to_hex(),
            "7fffff0000000000000000000000000000000000000000000000000000000000");
  EXPECT_EQ(target_to_compact(*target), 0x207fffffu);
}

TEST(CompactTest, SmallExponents) {
  EXPECT_EQ(*compact_to_target(0x01003456), U256(0));
  EXPECT_EQ(*compact_to_target(0x01123456), U256(0x12));
  EXPECT_EQ(*compact_to_target(0x02123456), U256(0x1234));
  EXPECT_EQ(*compact_to_target(0x03123456), U256(0x123456));
  EXPECT_EQ(*compact_to_target(0x04123456), U256(0x12345600));
}

TEST(CompactTest, NegativeBitRejected) {
  EXPECT_FALSE(compact_to_target(0x01803456).has_value());
  EXPECT_FALSE(compact_to_target(0x04923456).has_value());
}

TEST(CompactTest, OverflowRejected) {
  // Exponent so large the mantissa shifts out of 256 bits.
  EXPECT_FALSE(compact_to_target(0xff123456).has_value());
  EXPECT_FALSE(compact_to_target(0x21010000).has_value());
}

TEST(CompactTest, RoundTripCanonical) {
  for (std::uint32_t bits : {0x1d00ffffu, 0x207fffffu, 0x1b0404cbu, 0x181bc330u}) {
    auto target = compact_to_target(bits);
    ASSERT_TRUE(target.has_value()) << std::hex << bits;
    EXPECT_EQ(target_to_compact(*target), bits) << std::hex << bits;
  }
}

TEST(CompactTest, CompactAvoidsNegativeMantissa) {
  // A target whose top mantissa byte is >= 0x80 must shift the exponent.
  U256 target = U256::from_hex("00000000800000000000000000000000000000000000000000000000");
  std::uint32_t compact = target_to_compact(target);
  EXPECT_EQ(*compact_to_target(compact), target);
  EXPECT_EQ(compact & 0x00800000, 0u);
}

TEST(WorkTest, EasierTargetMeansLessWork) {
  U256 easy_work = work_from_bits(0x207fffff);
  U256 genesis_work = work_from_bits(0x1d00ffff);
  EXPECT_LT(easy_work, genesis_work);
  // Regtest limit: target ~ 2^255, so expected work is exactly 2.
  EXPECT_EQ(easy_work, U256(2));
  // Mainnet genesis difficulty: 2^256 / (0xffff * 2^208 + 1) = 2^32 / (1-eps)
  // which truncates to 0x100010001.
  EXPECT_EQ(genesis_work, U256(0x100010001ULL));
}

TEST(WorkTest, InvalidBitsHaveZeroWork) {
  EXPECT_EQ(work_from_bits(0x01803456), U256(0));
  EXPECT_EQ(work_from_bits(0xff123456), U256(0));
}

TEST(WorkTest, WorkIsMonotonicInDifficulty) {
  // Doubling difficulty (halving target) doubles work.
  U256 target = *compact_to_target(0x1d00ffff);
  U256 w1 = work_from_target(target);
  U256 w2 = work_from_target(target.shifted_right(1));
  // Allow a tiny rounding slack around the exact factor 2.
  U256 ratio = crypto::udiv(w2, w1);
  EXPECT_EQ(ratio, U256(2));
}

TEST(PowCheckTest, GenesisSatisfiesItsTarget) {
  // The real genesis hash meets 0x1d00ffff.
  util::Hash256 hash;
  auto bytes = util::from_hex("000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f");
  for (int i = 0; i < 32; ++i) hash.data[static_cast<std::size_t>(i)] = bytes[static_cast<std::size_t>(31 - i)];
  U256 pow_limit = *compact_to_target(0x1d00ffff);
  EXPECT_TRUE(check_proof_of_work(hash, 0x1d00ffff, pow_limit));
}

TEST(PowCheckTest, RejectsHashAboveTarget) {
  util::Hash256 high;
  for (auto& b : high.data) b = 0xff;
  EXPECT_FALSE(check_proof_of_work(high, 0x207fffff, *compact_to_target(0x207fffff)));
}

TEST(PowCheckTest, RejectsTargetAbovePowLimit) {
  util::Hash256 zero;  // trivially below any target
  // bits easier than the pow limit must be rejected.
  U256 limit = *compact_to_target(0x1d00ffff);
  EXPECT_FALSE(check_proof_of_work(zero, 0x207fffff, limit));
  EXPECT_TRUE(check_proof_of_work(zero, 0x1d00ffff, limit));
}

TEST(PowCheckTest, RejectsInvalidBits) {
  util::Hash256 zero;
  EXPECT_FALSE(check_proof_of_work(zero, 0x01803456, *compact_to_target(0x207fffff)));
}

TEST(RetargetTest, PerfectTimingKeepsTarget) {
  std::int64_t t = 600 * 2015;
  std::uint32_t bits = next_target(0x1d00ffff, t, t, *compact_to_target(0x207fffff));
  EXPECT_EQ(bits, 0x1d00ffffu);
}

TEST(RetargetTest, FastBlocksRaiseDifficulty) {
  std::int64_t target_span = 600 * 2015;
  std::uint32_t bits =
      next_target(0x1d00ffff, target_span / 2, target_span, *compact_to_target(0x207fffff));
  auto old_target = *compact_to_target(0x1d00ffff);
  auto new_target = *compact_to_target(bits);
  EXPECT_LT(new_target, old_target);  // smaller target == harder
}

TEST(RetargetTest, SlowBlocksLowerDifficulty) {
  std::int64_t target_span = 600 * 2015;
  std::uint32_t bits =
      next_target(0x1c7fffff, target_span * 2, target_span, *compact_to_target(0x207fffff));
  auto old_target = *compact_to_target(0x1c7fffff);
  auto new_target = *compact_to_target(bits);
  EXPECT_GT(new_target, old_target);
}

TEST(RetargetTest, ClampsAtFourX) {
  std::int64_t target_span = 600 * 2015;
  U256 limit = *compact_to_target(0x207fffff);
  // 100x too fast clamps to 4x harder.
  std::uint32_t fast = next_target(0x1c10000 | 0x1c000000, target_span / 100, target_span, limit);
  std::uint32_t quad = next_target(0x1c10000 | 0x1c000000, target_span / 4, target_span, limit);
  EXPECT_EQ(fast, quad);
  // 100x too slow clamps to 4x easier.
  std::uint32_t slow = next_target(0x1b010000, target_span * 100, target_span, limit);
  std::uint32_t quad_slow = next_target(0x1b010000, target_span * 4, target_span, limit);
  EXPECT_EQ(slow, quad_slow);
}

TEST(RetargetTest, NeverExceedsPowLimit) {
  U256 limit = *compact_to_target(0x207fffff);
  std::int64_t target_span = 600 * 2015;
  std::uint32_t bits = next_target(0x207fffff, target_span * 4, target_span, limit);
  auto target = *compact_to_target(bits);
  EXPECT_LE(target, limit);
}

TEST(HashToU256Test, LittleEndianInterpretation) {
  util::Hash256 h;
  h.data[0] = 0x01;  // least significant byte
  EXPECT_EQ(hash_to_u256(h), U256(1));
  util::Hash256 top;
  top.data[31] = 0x80;  // most significant byte
  EXPECT_EQ(hash_to_u256(top).bit_length(), 256);
}

}  // namespace
}  // namespace icbtc::bitcoin
