#include "bitcoin/transaction.h"

#include <gtest/gtest.h>

namespace icbtc::bitcoin {
namespace {

Transaction sample_tx() {
  Transaction tx;
  tx.version = 2;
  TxIn in;
  in.prevout.txid.data[0] = 0xaa;
  in.prevout.vout = 3;
  in.script_sig = {0x01, 0x02, 0x03};
  in.sequence = 0xfffffffe;
  tx.inputs.push_back(in);
  TxOut out;
  out.value = 2 * kCoin;
  out.script_pubkey = {0x51};
  tx.outputs.push_back(out);
  tx.lock_time = 101;
  return tx;
}

TEST(OutPointTest, NullDetection) {
  EXPECT_TRUE(OutPoint::null().is_null());
  OutPoint o;
  o.vout = 0xffffffff;
  EXPECT_TRUE(o.is_null());
  o.txid.data[0] = 1;
  EXPECT_FALSE(o.is_null());
}

TEST(OutPointTest, Ordering) {
  OutPoint a, b;
  a.vout = 1;
  b.vout = 2;
  EXPECT_LT(a, b);
  b = a;
  EXPECT_EQ(a, b);
}

TEST(TransactionTest, SerializeRoundTrip) {
  Transaction tx = sample_tx();
  auto bytes = tx.serialize();
  Transaction parsed = Transaction::parse(bytes);
  EXPECT_EQ(parsed, tx);
}

TEST(TransactionTest, ParseRejectsTrailing) {
  auto bytes = sample_tx().serialize();
  bytes.push_back(0x00);
  EXPECT_THROW(Transaction::parse(bytes), util::DecodeError);
}

TEST(TransactionTest, ParseRejectsTruncation) {
  auto bytes = sample_tx().serialize();
  bytes.pop_back();
  EXPECT_THROW(Transaction::parse(bytes), util::DecodeError);
}

TEST(TransactionTest, TxidIsDeterministicAndSensitive) {
  Transaction tx = sample_tx();
  auto id1 = tx.txid();
  EXPECT_EQ(id1, tx.txid());
  tx.lock_time++;
  tx.invalidate_txid();  // field mutation after hashing requires invalidation
  EXPECT_NE(id1, tx.txid());
}

TEST(TransactionTest, TxidCacheSeededByDeserializeAndAdoptedByCopies) {
  Transaction tx = sample_tx();
  ASSERT_FALSE(tx.txid_cached());

  // Round-tripping through the wire format seeds the cache eagerly.
  Transaction parsed = Transaction::parse(tx.serialize());
  EXPECT_TRUE(parsed.txid_cached());
  EXPECT_EQ(parsed.txid(), tx.txid());
  EXPECT_TRUE(tx.txid_cached());  // txid() filled the lazy cache

  // Copies and moves carry the cached value; the moved-from tx is reset.
  Transaction copy = parsed;
  EXPECT_TRUE(copy.txid_cached());
  EXPECT_EQ(copy.txid(), tx.txid());
  Transaction moved = std::move(parsed);
  EXPECT_TRUE(moved.txid_cached());
  EXPECT_FALSE(parsed.txid_cached());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(moved.txid(), tx.txid());
}

TEST(TransactionTest, TxidCacheCountsOneComputationAcrossRepeatedCalls) {
  Transaction tx = sample_tx();
  auto before = Transaction::txid_computations();
  auto id = tx.txid();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(id, tx.txid());
  Transaction copy = tx;
  EXPECT_EQ(id, copy.txid());
  EXPECT_EQ(Transaction::txid_computations() - before, 1u);
}

TEST(TransactionTest, TxidCacheDisableForcesRecompute) {
  Transaction tx = sample_tx();
  auto id = tx.txid();
  Transaction::set_txid_cache_enabled(false);
  auto before = Transaction::txid_computations();
  EXPECT_EQ(id, tx.txid());
  EXPECT_EQ(id, tx.txid());
  EXPECT_EQ(Transaction::txid_computations() - before, 2u);
  Transaction::set_txid_cache_enabled(true);
}

TEST(TransactionTest, KnownSerializationLayout) {
  // Manually check the byte layout of a minimal transaction.
  Transaction tx;
  tx.version = 1;
  TxIn in;
  in.prevout = OutPoint::null();
  in.script_sig = {};
  tx.inputs.push_back(in);
  TxOut out;
  out.value = 1;
  out.script_pubkey = {};
  tx.outputs.push_back(out);
  tx.lock_time = 0;
  auto bytes = tx.serialize();
  // 4 (version) + 1 (#in) + 36 (outpoint) + 1 (script len) + 4 (sequence)
  // + 1 (#out) + 8 (value) + 1 (script len) + 4 (locktime) = 60.
  EXPECT_EQ(bytes.size(), 60u);
  EXPECT_EQ(bytes[0], 0x01);                 // version LE
  EXPECT_EQ(bytes[4], 0x01);                 // input count
  EXPECT_EQ(bytes[5 + 32], 0xff);            // null vout
  EXPECT_EQ(bytes[bytes.size() - 4], 0x00);  // locktime
}

TEST(TransactionTest, CoinbaseDetection) {
  Transaction cb;
  TxIn in;
  in.prevout = OutPoint::null();
  cb.inputs.push_back(in);
  cb.outputs.push_back(TxOut{50 * kCoin, {}});
  EXPECT_TRUE(cb.is_coinbase());
  EXPECT_FALSE(sample_tx().is_coinbase());
  // Two inputs -> not coinbase even if one is null.
  cb.inputs.push_back(TxIn{});
  EXPECT_FALSE(cb.is_coinbase());
}

TEST(TransactionTest, WellFormedAcceptsSample) {
  EXPECT_TRUE(sample_tx().is_well_formed());
}

TEST(TransactionTest, WellFormedRejectsEmptyInputsOrOutputs) {
  Transaction tx = sample_tx();
  tx.inputs.clear();
  EXPECT_FALSE(tx.is_well_formed());
  tx = sample_tx();
  tx.outputs.clear();
  EXPECT_FALSE(tx.is_well_formed());
}

TEST(TransactionTest, WellFormedRejectsNegativeAndExcessValues) {
  Transaction tx = sample_tx();
  tx.outputs[0].value = -1;
  EXPECT_FALSE(tx.is_well_formed());
  tx.outputs[0].value = kMaxMoney + 1;
  EXPECT_FALSE(tx.is_well_formed());
  // Sum overflow across outputs.
  tx.outputs[0].value = kMaxMoney;
  tx.outputs.push_back(TxOut{kMaxMoney, {}});
  EXPECT_FALSE(tx.is_well_formed());
}

TEST(TransactionTest, WellFormedRejectsDuplicateInputs) {
  Transaction tx = sample_tx();
  tx.inputs.push_back(tx.inputs[0]);
  EXPECT_FALSE(tx.is_well_formed());
}

TEST(TransactionTest, WellFormedRejectsNullPrevoutInNonCoinbase) {
  Transaction tx = sample_tx();
  TxIn null_in;
  null_in.prevout = OutPoint::null();
  tx.inputs.push_back(null_in);
  EXPECT_FALSE(tx.is_well_formed());
}

TEST(TransactionTest, TotalOutputValue) {
  Transaction tx = sample_tx();
  tx.outputs.push_back(TxOut{3, {}});
  EXPECT_EQ(tx.total_output_value(), 2 * kCoin + 3);
}

TEST(AmountTest, SubsidySchedule) {
  EXPECT_EQ(block_subsidy(0), 50 * kCoin);
  EXPECT_EQ(block_subsidy(1), 25 * kCoin);
  EXPECT_EQ(block_subsidy(2), 125 * kCoin / 10);
  EXPECT_EQ(block_subsidy(64), 0);
  EXPECT_EQ(block_subsidy(100), 0);
}

TEST(AmountTest, MoneyRange) {
  EXPECT_TRUE(money_range(0));
  EXPECT_TRUE(money_range(kMaxMoney));
  EXPECT_FALSE(money_range(-1));
  EXPECT_FALSE(money_range(kMaxMoney + 1));
}

}  // namespace
}  // namespace icbtc::bitcoin
