#include "bitcoin/block.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "bitcoin/params.h"
#include "crypto/sha256.h"

namespace icbtc::bitcoin {
namespace {

TEST(BlockHeaderTest, SerializedSizeIs80Bytes) {
  BlockHeader h;
  EXPECT_EQ(h.serialize().size(), 80u);
}

TEST(BlockHeaderTest, RoundTrip) {
  BlockHeader h;
  h.version = 0x20000000;
  h.prev_hash.data[0] = 1;
  h.merkle_root.data[31] = 2;
  h.time = 1700000000;
  h.bits = 0x207fffff;
  h.nonce = 12345;
  auto parsed = BlockHeader::parse(h.serialize());
  EXPECT_EQ(parsed, h);
}

TEST(BlockHeaderTest, RealGenesisHeaderHash) {
  // Deserialize the real Bitcoin genesis header and confirm hash().
  auto raw = util::from_hex(
      "0100000000000000000000000000000000000000000000000000000000000000000000003ba3edfd7a7b12b27a"
      "c72c3e67768f617fc81bc3888a51323a9fb8aa4b1e5e4a29ab5f49ffff001d1dac2b7c");
  BlockHeader h = BlockHeader::parse(raw);
  EXPECT_EQ(h.version, 1);
  EXPECT_EQ(h.time, 1231006505u);
  EXPECT_EQ(h.bits, 0x1d00ffffu);
  EXPECT_EQ(h.nonce, 2083236893u);
  EXPECT_EQ(h.hash().rpc_hex(),
            "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f");
}

TEST(BlockHeaderTest, ParseRejectsWrongSize) {
  util::Bytes bad(79, 0);
  EXPECT_THROW(BlockHeader::parse(bad), util::DecodeError);
  util::Bytes long_buf(81, 0);
  EXPECT_THROW(BlockHeader::parse(long_buf), util::DecodeError);
}

TEST(MerkleTest, EmptyListIsZero) {
  EXPECT_TRUE(merkle_root({}).is_zero());
}

TEST(MerkleTest, SingleTxidIsItsOwnRoot) {
  util::Hash256 id;
  id.data[3] = 7;
  EXPECT_EQ(merkle_root({id}), id);
}

TEST(MerkleTest, TwoLeaves) {
  util::Hash256 a, b;
  a.data[0] = 1;
  b.data[0] = 2;
  util::Bytes concat;
  util::append(concat, a.span());
  util::append(concat, b.span());
  EXPECT_EQ(merkle_root({a, b}), crypto::sha256d(concat));
}

TEST(MerkleTest, OddLeafCountDuplicatesLast) {
  util::Hash256 a, b, c;
  a.data[0] = 1;
  b.data[0] = 2;
  c.data[0] = 3;
  // Level 1: H(a||b), H(c||c); root = H(l||r).
  auto pair_hash = [](const util::Hash256& x, const util::Hash256& y) {
    util::Bytes concat;
    util::append(concat, x.span());
    util::append(concat, y.span());
    return crypto::sha256d(concat);
  };
  auto expected = pair_hash(pair_hash(a, b), pair_hash(c, c));
  EXPECT_EQ(merkle_root({a, b, c}), expected);
}

TEST(MerkleTest, MainnetBlock100000KnownAnswer) {
  // Bitcoin mainnet block 100000 (000000000003ba27aa200b1cecaad478d2b00432346c3f1f3986da1afd33e506)
  // has four transactions; its merkle root is a real-world known answer that
  // also exercises the duplicate-last rule at the second level (4 → 2 → 1).
  auto txid = [](const char* display_hex) {
    // Explorers display txids byte-reversed; internal order flips them back.
    util::Hash256 h = util::Hash256::from_span(util::from_hex(display_hex));
    std::reverse(h.data.begin(), h.data.end());
    return h;
  };
  std::vector<util::Hash256> txids = {
      txid("8c14f0db3df150123e6f3dbbf30f8b955a8249b62ac1d1ff16284aefa3d06d87"),
      txid("fff2525b8931402dd09222c50775608f75787bd2b87e56995a7bdd30f79702c4"),
      txid("6359f0868171b1d194cbee1af2f16ea598ae8fad666d9b012c8ed2b79a236ec4"),
      txid("e9a66845e05d5abc0ad04ec80f774a7e585c6e8db975962d069a522137b80c1d"),
  };
  EXPECT_EQ(merkle_root(txids).rpc_hex(),
            "f3e94742aca4b5ef85488dc37c06c3282295ffec960994b2c0d5ac2a25a95766");
}

TEST(MerkleTest, OddTransactionCountBlockRoundTrip) {
  // A block with an odd (>1) transaction count: compute_merkle_root must
  // agree leaf-by-leaf with the reference pairing, and the block must verify.
  Block b = genesis_block(ChainParams::regtest());
  Transaction t1, t2;
  t1.inputs.push_back(TxIn{OutPoint{b.transactions[0].txid(), 0}, {0x51}, 0xffffffff});
  t1.outputs.push_back(TxOut{1000, {0x51}});
  t2.inputs.push_back(TxIn{OutPoint{t1.txid(), 0}, {0x52}, 0xffffffff});
  t2.outputs.push_back(TxOut{900, {0x52}});
  b.transactions.push_back(t1);
  b.transactions.push_back(t2);
  ASSERT_EQ(b.transactions.size() % 2, 1u);
  auto expected =
      merkle_root({b.transactions[0].txid(), b.transactions[1].txid(), b.transactions[2].txid()});
  EXPECT_EQ(b.compute_merkle_root(), expected);
  b.header.merkle_root = expected;
  EXPECT_TRUE(b.is_well_formed());
}

TEST(MerkleTest, OrderSensitivity) {
  util::Hash256 a, b;
  a.data[0] = 1;
  b.data[0] = 2;
  EXPECT_NE(merkle_root({a, b}), merkle_root({b, a}));
}

Block make_test_block() {
  Block b = genesis_block(ChainParams::regtest());
  return b;
}

TEST(BlockTest, GenesisIsWellFormed) {
  Block b = make_test_block();
  EXPECT_TRUE(b.is_well_formed());
  EXPECT_EQ(b.header.merkle_root, b.compute_merkle_root());
}

TEST(BlockTest, RoundTrip) {
  Block b = make_test_block();
  auto parsed = Block::parse(b.serialize());
  EXPECT_EQ(parsed, b);
  EXPECT_EQ(parsed.hash(), b.hash());
}

TEST(BlockTest, WellFormedRejectsEmptyBlock) {
  Block b;
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, WellFormedRejectsMissingCoinbase) {
  Block b = make_test_block();
  Transaction tx;
  TxIn in;
  in.prevout.txid.data[0] = 9;
  in.prevout.vout = 0;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{1, {}});
  b.transactions[0] = tx;  // replace coinbase with a regular tx
  b.header.merkle_root = b.compute_merkle_root();
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, WellFormedRejectsSecondCoinbase) {
  Block b = make_test_block();
  b.transactions.push_back(b.transactions[0]);  // duplicate coinbase
  b.header.merkle_root = b.compute_merkle_root();
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, WellFormedRejectsMerkleMismatch) {
  Block b = make_test_block();
  b.header.merkle_root.data[0] ^= 1;
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, GenesisDiffersAcrossNetworks) {
  auto mainnet = genesis_block(ChainParams::mainnet());
  auto testnet = genesis_block(ChainParams::testnet());
  auto regtest = genesis_block(ChainParams::regtest());
  EXPECT_NE(mainnet.hash(), testnet.hash());
  EXPECT_NE(mainnet.hash(), regtest.hash());
  EXPECT_NE(testnet.hash(), regtest.hash());
}

TEST(BlockTest, GenesisHeaderMatchesParams) {
  const auto& params = ChainParams::mainnet();
  EXPECT_EQ(genesis_block(params).header, params.genesis_header);
}

}  // namespace
}  // namespace icbtc::bitcoin
