#include "bitcoin/block.h"

#include <gtest/gtest.h>

#include "bitcoin/params.h"
#include "crypto/sha256.h"

namespace icbtc::bitcoin {
namespace {

TEST(BlockHeaderTest, SerializedSizeIs80Bytes) {
  BlockHeader h;
  EXPECT_EQ(h.serialize().size(), 80u);
}

TEST(BlockHeaderTest, RoundTrip) {
  BlockHeader h;
  h.version = 0x20000000;
  h.prev_hash.data[0] = 1;
  h.merkle_root.data[31] = 2;
  h.time = 1700000000;
  h.bits = 0x207fffff;
  h.nonce = 12345;
  auto parsed = BlockHeader::parse(h.serialize());
  EXPECT_EQ(parsed, h);
}

TEST(BlockHeaderTest, RealGenesisHeaderHash) {
  // Deserialize the real Bitcoin genesis header and confirm hash().
  auto raw = util::from_hex(
      "0100000000000000000000000000000000000000000000000000000000000000000000003ba3edfd7a7b12b27a"
      "c72c3e67768f617fc81bc3888a51323a9fb8aa4b1e5e4a29ab5f49ffff001d1dac2b7c");
  BlockHeader h = BlockHeader::parse(raw);
  EXPECT_EQ(h.version, 1);
  EXPECT_EQ(h.time, 1231006505u);
  EXPECT_EQ(h.bits, 0x1d00ffffu);
  EXPECT_EQ(h.nonce, 2083236893u);
  EXPECT_EQ(h.hash().rpc_hex(),
            "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f");
}

TEST(BlockHeaderTest, ParseRejectsWrongSize) {
  util::Bytes bad(79, 0);
  EXPECT_THROW(BlockHeader::parse(bad), util::DecodeError);
  util::Bytes long_buf(81, 0);
  EXPECT_THROW(BlockHeader::parse(long_buf), util::DecodeError);
}

TEST(MerkleTest, EmptyListIsZero) {
  EXPECT_TRUE(merkle_root({}).is_zero());
}

TEST(MerkleTest, SingleTxidIsItsOwnRoot) {
  util::Hash256 id;
  id.data[3] = 7;
  EXPECT_EQ(merkle_root({id}), id);
}

TEST(MerkleTest, TwoLeaves) {
  util::Hash256 a, b;
  a.data[0] = 1;
  b.data[0] = 2;
  util::Bytes concat;
  util::append(concat, a.span());
  util::append(concat, b.span());
  EXPECT_EQ(merkle_root({a, b}), crypto::sha256d(concat));
}

TEST(MerkleTest, OddLeafCountDuplicatesLast) {
  util::Hash256 a, b, c;
  a.data[0] = 1;
  b.data[0] = 2;
  c.data[0] = 3;
  // Level 1: H(a||b), H(c||c); root = H(l||r).
  auto pair_hash = [](const util::Hash256& x, const util::Hash256& y) {
    util::Bytes concat;
    util::append(concat, x.span());
    util::append(concat, y.span());
    return crypto::sha256d(concat);
  };
  auto expected = pair_hash(pair_hash(a, b), pair_hash(c, c));
  EXPECT_EQ(merkle_root({a, b, c}), expected);
}

TEST(MerkleTest, OrderSensitivity) {
  util::Hash256 a, b;
  a.data[0] = 1;
  b.data[0] = 2;
  EXPECT_NE(merkle_root({a, b}), merkle_root({b, a}));
}

Block make_test_block() {
  Block b = genesis_block(ChainParams::regtest());
  return b;
}

TEST(BlockTest, GenesisIsWellFormed) {
  Block b = make_test_block();
  EXPECT_TRUE(b.is_well_formed());
  EXPECT_EQ(b.header.merkle_root, b.compute_merkle_root());
}

TEST(BlockTest, RoundTrip) {
  Block b = make_test_block();
  auto parsed = Block::parse(b.serialize());
  EXPECT_EQ(parsed, b);
  EXPECT_EQ(parsed.hash(), b.hash());
}

TEST(BlockTest, WellFormedRejectsEmptyBlock) {
  Block b;
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, WellFormedRejectsMissingCoinbase) {
  Block b = make_test_block();
  Transaction tx;
  TxIn in;
  in.prevout.txid.data[0] = 9;
  in.prevout.vout = 0;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{1, {}});
  b.transactions[0] = tx;  // replace coinbase with a regular tx
  b.header.merkle_root = b.compute_merkle_root();
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, WellFormedRejectsSecondCoinbase) {
  Block b = make_test_block();
  b.transactions.push_back(b.transactions[0]);  // duplicate coinbase
  b.header.merkle_root = b.compute_merkle_root();
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, WellFormedRejectsMerkleMismatch) {
  Block b = make_test_block();
  b.header.merkle_root.data[0] ^= 1;
  EXPECT_FALSE(b.is_well_formed());
}

TEST(BlockTest, GenesisDiffersAcrossNetworks) {
  auto mainnet = genesis_block(ChainParams::mainnet());
  auto testnet = genesis_block(ChainParams::testnet());
  auto regtest = genesis_block(ChainParams::regtest());
  EXPECT_NE(mainnet.hash(), testnet.hash());
  EXPECT_NE(mainnet.hash(), regtest.hash());
  EXPECT_NE(testnet.hash(), regtest.hash());
}

TEST(BlockTest, GenesisHeaderMatchesParams) {
  const auto& params = ChainParams::mainnet();
  EXPECT_EQ(genesis_block(params).header, params.genesis_header);
}

}  // namespace
}  // namespace icbtc::bitcoin
