#include "bitcoin/script.h"

#include <gtest/gtest.h>

#include "crypto/ripemd160.h"
#include "crypto/sha256.h"

namespace icbtc::bitcoin {
namespace {

crypto::PrivateKey test_key(std::uint8_t tag) {
  return crypto::PrivateKey::from_seed(util::Bytes{tag, 0x42});
}

util::Hash160 key_hash(const crypto::PrivateKey& key) {
  return crypto::hash160(key.public_key().compressed());
}

TEST(ScriptTest, P2pkhTemplate) {
  util::Hash160 h;
  h.data[0] = 0xab;
  auto script = p2pkh_script(h);
  EXPECT_EQ(script.size(), 25u);
  EXPECT_TRUE(is_p2pkh(script));
  EXPECT_FALSE(is_p2wpkh(script));
  auto extracted = extract_pubkey_hash(script);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(*extracted, h);
}

TEST(ScriptTest, P2wpkhTemplate) {
  util::Hash160 h;
  h.data[19] = 0xcd;
  auto script = p2wpkh_script(h);
  EXPECT_EQ(script.size(), 22u);
  EXPECT_TRUE(is_p2wpkh(script));
  EXPECT_FALSE(is_p2pkh(script));
  EXPECT_EQ(*extract_pubkey_hash(script), h);
}

TEST(ScriptTest, OpReturnTemplate) {
  util::Bytes payload = {1, 2, 3};
  auto script = op_return_script(payload);
  EXPECT_TRUE(is_op_return(script));
  EXPECT_FALSE(extract_pubkey_hash(script).has_value());
  util::Bytes huge(80, 0);
  EXPECT_THROW(op_return_script(huge), std::invalid_argument);
}

TEST(ScriptTest, NonStandardScriptsRejected) {
  EXPECT_FALSE(extract_pubkey_hash(util::Bytes{0x51}).has_value());
  EXPECT_FALSE(is_p2pkh(util::Bytes{}));
  EXPECT_FALSE(is_op_return(util::Bytes{}));
}

Transaction make_spend(const OutPoint& prevout, const util::Bytes& dest_script, Amount value) {
  Transaction tx;
  TxIn in;
  in.prevout = prevout;
  tx.inputs.push_back(in);
  tx.outputs.push_back(TxOut{value, dest_script});
  return tx;
}

TEST(SighashTest, DependsOnInputsOutputsAndScript) {
  auto key = test_key(1);
  auto script = p2pkh_script(key_hash(key));
  OutPoint prev;
  prev.txid.data[0] = 1;
  Transaction tx = make_spend(prev, script, 50);

  auto base = legacy_sighash(tx, 0, script);
  Transaction tx2 = tx;
  tx2.outputs[0].value = 51;
  EXPECT_NE(legacy_sighash(tx2, 0, script), base);
  Transaction tx3 = tx;
  tx3.inputs[0].prevout.vout = 1;
  EXPECT_NE(legacy_sighash(tx3, 0, script), base);
  auto other_script = p2pkh_script(key_hash(test_key(2)));
  EXPECT_NE(legacy_sighash(tx, 0, other_script), base);
}

TEST(SighashTest, IgnoresExistingScriptSigs) {
  auto key = test_key(1);
  auto script = p2pkh_script(key_hash(key));
  OutPoint prev;
  Transaction tx = make_spend(prev, script, 50);
  auto base = legacy_sighash(tx, 0, script);
  tx.inputs[0].script_sig = {9, 9, 9};  // must not affect the digest
  EXPECT_EQ(legacy_sighash(tx, 0, script), base);
}

TEST(SighashTest, OutOfRangeIndexThrows) {
  Transaction tx = make_spend(OutPoint{}, {}, 1);
  EXPECT_THROW(legacy_sighash(tx, 1, {}), std::out_of_range);
}

TEST(ScriptSigTest, BuildAndParseRoundTrip) {
  auto key = test_key(3);
  auto digest = crypto::Sha256::hash(util::Bytes{1});
  auto sig = key.sign(digest);
  auto pubkey = key.public_key().compressed();
  auto script_sig = p2pkh_script_sig(sig, pubkey);
  auto parsed = parse_p2pkh_script_sig(script_sig);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, pubkey);
  EXPECT_EQ(parsed->first.back(), kSighashAll);
  auto recovered = crypto::Signature::from_der(
      util::ByteSpan(parsed->first.data(), parsed->first.size() - 1));
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(*recovered, sig);
}

TEST(ScriptSigTest, ParseRejectsMalformed) {
  EXPECT_FALSE(parse_p2pkh_script_sig(util::Bytes{}).has_value());
  EXPECT_FALSE(parse_p2pkh_script_sig(util::Bytes{5, 1, 2}).has_value());
  util::Bytes trailing = {9, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 0xff, 0xee};
  EXPECT_FALSE(parse_p2pkh_script_sig(trailing).has_value());
}

class P2pkhSpendTest : public ::testing::Test {
 protected:
  crypto::PrivateKey key_ = test_key(7);
  util::Bytes lock_script_ = p2pkh_script(key_hash(key_));
  Transaction tx_;

  void SetUp() override {
    OutPoint prev;
    prev.txid.data[5] = 0x77;
    tx_ = make_spend(prev, p2pkh_script(key_hash(test_key(8))), 90);
    auto digest = legacy_sighash(tx_, 0, lock_script_);
    auto sig = key_.sign(digest);
    tx_.inputs[0].script_sig = p2pkh_script_sig(sig, key_.public_key().compressed());
  }
};

TEST_F(P2pkhSpendTest, ValidSpendVerifies) {
  EXPECT_TRUE(verify_p2pkh_input(tx_, 0, lock_script_));
}

TEST_F(P2pkhSpendTest, WrongKeyFails) {
  auto other_script = p2pkh_script(key_hash(test_key(9)));
  EXPECT_FALSE(verify_p2pkh_input(tx_, 0, other_script));
}

TEST_F(P2pkhSpendTest, TamperedOutputFails) {
  tx_.outputs[0].value += 1;
  EXPECT_FALSE(verify_p2pkh_input(tx_, 0, lock_script_));
}

TEST_F(P2pkhSpendTest, TamperedSignatureFails) {
  tx_.inputs[0].script_sig[5] ^= 0x01;
  EXPECT_FALSE(verify_p2pkh_input(tx_, 0, lock_script_));
}

TEST_F(P2pkhSpendTest, EmptyScriptSigFails) {
  tx_.inputs[0].script_sig.clear();
  EXPECT_FALSE(verify_p2pkh_input(tx_, 0, lock_script_));
}

TEST_F(P2pkhSpendTest, NonP2pkhLockScriptFails) {
  EXPECT_FALSE(verify_p2pkh_input(tx_, 0, p2wpkh_script(key_hash(key_))));
}

TEST_F(P2pkhSpendTest, OutOfRangeInputFails) {
  EXPECT_FALSE(verify_p2pkh_input(tx_, 5, lock_script_));
}

}  // namespace
}  // namespace icbtc::bitcoin
