#include "bitcoin/address.h"

#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "crypto/ripemd160.h"

namespace icbtc::bitcoin {
namespace {

TEST(Base58Test, KnownVectors) {
  EXPECT_EQ(base58_encode(util::from_hex("")), "");
  EXPECT_EQ(base58_encode(util::from_hex("61")), "2g");
  EXPECT_EQ(base58_encode(util::from_hex("626262")), "a3gV");
  EXPECT_EQ(base58_encode(util::from_hex("636363")), "aPEr");
  EXPECT_EQ(base58_encode(util::from_hex("73696d706c792061206c6f6e6720737472696e67")),
            "2cFupjhnEsSn59qHXstmK2ffpLv2");
  EXPECT_EQ(base58_encode(util::from_hex("516b6fcd0f")), "ABnLTmg");
  EXPECT_EQ(base58_encode(util::from_hex("572e4794")), "3EFU7m");
  EXPECT_EQ(base58_encode(util::from_hex("10c8511e")), "Rt5zm");
}

TEST(Base58Test, LeadingZeros) {
  EXPECT_EQ(base58_encode(util::from_hex("00000000000000000000")), "1111111111");
  EXPECT_EQ(base58_encode(util::from_hex("00eb15231dfceb60925886b67d065299925915aeb172c06647")),
            "1NS17iag9jJgTHD1VXjvLCEnZuQ3rJDE9L");
}

TEST(Base58Test, DecodeRoundTrip) {
  for (const char* hex : {"", "00", "0001", "ff", "00ff00", "deadbeefcafebabe"}) {
    auto data = util::from_hex(hex);
    auto decoded = base58_decode(base58_encode(data));
    ASSERT_TRUE(decoded.has_value()) << hex;
    EXPECT_EQ(*decoded, data) << hex;
  }
}

TEST(Base58Test, DecodeRejectsInvalidCharacters) {
  EXPECT_FALSE(base58_decode("0OIl").has_value());  // excluded alphabet chars
  EXPECT_FALSE(base58_decode("ab!c").has_value());
}

TEST(Base58CheckTest, RoundTrip) {
  util::Bytes payload(20, 0xab);
  auto addr = base58check_encode(0x00, payload);
  auto decoded = base58check_decode(addr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->first, 0x00);
  EXPECT_EQ(decoded->second, payload);
}

TEST(Base58CheckTest, DetectsCorruption) {
  util::Bytes payload(20, 0xab);
  auto addr = base58check_encode(0x00, payload);
  // Flip one character (guaranteed different valid char).
  addr[5] = (addr[5] == 'z') ? 'y' : 'z';
  EXPECT_FALSE(base58check_decode(addr).has_value());
}

TEST(Base58CheckTest, TooShortRejected) {
  EXPECT_FALSE(base58check_decode("11").has_value());
}

TEST(Base58CheckTest, KnownAddressVector) {
  // hash160 010966776006953d5567439e5e39f86a0d273bee with version 0 encodes
  // to the well-known address 16UwLL9Risc3QfPqBUvKofHmBQ7wMtjvM.
  auto h = util::from_hex("010966776006953d5567439e5e39f86a0d273bee");
  EXPECT_EQ(base58check_encode(0x00, h), "16UwLL9Risc3QfPqBUvKofHmBQ7wMtjvM");
}

TEST(Bech32Test, KnownP2wpkhVector) {
  // BIP-173 example: pubkey hash 751e76e8199196d454941c45d1b3a323f1433bd6
  // encodes to bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4.
  auto program = util::from_hex("751e76e8199196d454941c45d1b3a323f1433bd6");
  EXPECT_EQ(bech32_encode("bc", program), "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4");
}

TEST(Bech32Test, DecodeRoundTrip) {
  auto program = util::from_hex("751e76e8199196d454941c45d1b3a323f1433bd6");
  auto addr = bech32_encode("bcrt", program);
  auto decoded = bech32_decode("bcrt", addr);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, program);
}

TEST(Bech32Test, ChecksumDetectsCorruption) {
  auto program = util::from_hex("751e76e8199196d454941c45d1b3a323f1433bd6");
  auto addr = bech32_encode("bc", program);
  addr[10] = (addr[10] == 'q') ? 'p' : 'q';
  EXPECT_FALSE(bech32_decode("bc", addr).has_value());
}

TEST(Bech32Test, WrongHrpRejected) {
  auto program = util::from_hex("751e76e8199196d454941c45d1b3a323f1433bd6");
  auto addr = bech32_encode("bc", program);
  EXPECT_FALSE(bech32_decode("tb", addr).has_value());
}

TEST(AddressTest, P2pkhRoundTripAllNetworks) {
  util::Hash160 h;
  for (std::size_t i = 0; i < 20; ++i) h.data[i] = static_cast<std::uint8_t>(i * 3);
  for (auto net : {Network::kMainnet, Network::kTestnet, Network::kRegtest}) {
    auto addr = p2pkh_address(h, net);
    auto decoded = decode_address(addr, net);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->type, AddressType::kP2pkh);
    EXPECT_EQ(decoded->hash160(), h);
  }
}

TEST(AddressTest, P2wpkhRoundTripAllNetworks) {
  util::Hash160 h;
  for (std::size_t i = 0; i < 20; ++i) h.data[i] = static_cast<std::uint8_t>(200 - i);
  for (auto net : {Network::kMainnet, Network::kTestnet, Network::kRegtest}) {
    auto addr = p2wpkh_address(h, net);
    auto decoded = decode_address(addr, net);
    ASSERT_TRUE(decoded.has_value()) << addr;
    EXPECT_EQ(decoded->type, AddressType::kP2wpkh);
    EXPECT_EQ(decoded->hash160(), h);
  }
}

TEST(AddressTest, MainnetAddressRejectedOnTestnet) {
  util::Hash160 h;
  h.data[0] = 1;
  auto addr = p2pkh_address(h, Network::kMainnet);
  EXPECT_FALSE(decode_address(addr, Network::kTestnet).has_value());
  auto waddr = p2wpkh_address(h, Network::kMainnet);
  EXPECT_FALSE(decode_address(waddr, Network::kTestnet).has_value());
}

TEST(AddressTest, GarbageRejected) {
  EXPECT_FALSE(decode_address("", Network::kMainnet).has_value());
  EXPECT_FALSE(decode_address("not an address", Network::kMainnet).has_value());
  EXPECT_FALSE(decode_address("bc1qqqqq", Network::kMainnet).has_value());
}

TEST(AddressTest, ScriptForAddressMatchesTemplates) {
  util::Hash160 h;
  h.data[7] = 0x55;
  util::Bytes program(h.data.begin(), h.data.end());
  EXPECT_EQ(script_for_address(DecodedAddress{AddressType::kP2pkh, program}), p2pkh_script(h));
  EXPECT_EQ(script_for_address(DecodedAddress{AddressType::kP2wpkh, program}), p2wpkh_script(h));
}

TEST(AddressTest, MainnetP2pkhStartsWith1) {
  util::Hash160 h;
  auto addr = p2pkh_address(h, Network::kMainnet);
  EXPECT_EQ(addr[0], '1');
}

}  // namespace
}  // namespace icbtc::bitcoin
