#include "btcnet/node.h"

#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "btcnet/miner.h"
#include "crypto/ripemd160.h"

namespace icbtc::btcnet {
namespace {

class NodeTest : public ::testing::Test {
 protected:
  util::Simulation sim_;
  Network net_{sim_, util::Rng(11)};
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  BitcoinNode alice_{net_, params_};
  BitcoinNode bob_{net_, params_};
  Miner alice_miner_{alice_, 1.0, util::Rng(12)};
};

TEST_F(NodeTest, StartsAtGenesis) {
  EXPECT_EQ(alice_.best_height(), 0);
  EXPECT_TRUE(alice_.has_block(alice_.best_tip()));
  EXPECT_EQ(alice_.best_tip(), bitcoin::genesis_block(params_).hash());
  // The genesis coinbase pays to OP_RETURN, so the UTXO set starts empty.
  EXPECT_EQ(alice_.utxos().size(), 0u);
}

TEST_F(NodeTest, MiningExtendsChain) {
  alice_miner_.mine_one();
  alice_miner_.mine_one();
  EXPECT_EQ(alice_.best_height(), 2);
  EXPECT_EQ(alice_miner_.blocks_mined(), 2u);
  // Coinbase outputs enter the UTXO set.
  EXPECT_EQ(alice_.utxos().size(), 2u);
  EXPECT_EQ(alice_.utxos().total_value(), 2 * 50 * bitcoin::kCoin);
}

TEST_F(NodeTest, BlockPropagatesToConnectedPeer) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();  // drain the initial getheaders handshake
  alice_miner_.mine_one();
  sim_.run();
  EXPECT_EQ(bob_.best_height(), 1);
  EXPECT_EQ(bob_.best_tip(), alice_.best_tip());
}

TEST_F(NodeTest, HeaderSyncOnConnect) {
  // Alice mines alone, then Bob connects and catches up.
  for (int i = 0; i < 20; ++i) alice_miner_.mine_one();
  EXPECT_EQ(bob_.best_height(), 0);
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  EXPECT_EQ(bob_.best_height(), 20);
  EXPECT_TRUE(bob_.has_block(alice_.best_tip()));
}

TEST_F(NodeTest, ReorgToHeavierChain) {
  // Bob builds a longer private chain; when connected, Alice reorgs.
  Miner bob_miner(bob_, 1.0, util::Rng(13));
  alice_miner_.mine_one();
  for (int i = 0; i < 3; ++i) bob_miner.mine_one();
  EXPECT_EQ(alice_.best_height(), 1);
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  EXPECT_EQ(alice_.best_height(), 3);
  EXPECT_EQ(alice_.best_tip(), bob_.best_tip());
  EXPECT_GE(alice_.reorg_count(), 1u);
}

TEST_F(NodeTest, UtxoViewFollowsReorg) {
  Miner bob_miner(bob_, 1.0, util::Rng(13));
  alice_miner_.mine_one();
  bitcoin::Amount alice_before = alice_.utxos().total_value();
  EXPECT_EQ(alice_before, 50 * bitcoin::kCoin);
  for (int i = 0; i < 3; ++i) bob_miner.mine_one();
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  // Alice's UTXO view now reflects Bob's chain: 3 coinbases by Bob.
  EXPECT_EQ(alice_.utxos().size(), 3u);
  EXPECT_EQ(alice_.utxos().total_value(), 3 * 50 * bitcoin::kCoin);
}

class SpendTest : public NodeTest {
 protected:
  crypto::PrivateKey key_ = crypto::PrivateKey::from_seed(util::Bytes{1, 2, 3});
  util::Hash160 key_hash_ = crypto::hash160(key_.public_key().compressed());

  /// Mines a block paying the coinbase to our key, returns the outpoint.
  bitcoin::OutPoint fund() {
    const auto& tree = alice_.tree();
    fund_time_ += 600;
    auto block = chain::build_child_block(tree, alice_.best_tip(), fund_time_,
                                          bitcoin::p2pkh_script(key_hash_),
                                          50 * bitcoin::kCoin, {}, next_tag_++);
    EXPECT_TRUE(alice_.submit_block(block));
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  }

  bitcoin::Transaction spend(const bitcoin::OutPoint& from_outpoint, bitcoin::Amount value) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = from_outpoint;
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{value, bitcoin::p2pkh_script(key_hash_)});
    auto lock = bitcoin::p2pkh_script(key_hash_);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key_.sign(digest), key_.public_key().compressed());
    return tx;
  }

  std::uint64_t next_tag_ = 1000;
  std::uint32_t fund_time_ = params_.genesis_header.time;
};

TEST_F(SpendTest, ValidSpendEntersMempool) {
  auto outpoint = fund();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  EXPECT_TRUE(alice_.submit_tx(tx));
  EXPECT_EQ(alice_.mempool_size(), 1u);
  EXPECT_TRUE(alice_.in_mempool(tx.txid()));
}

TEST_F(SpendTest, BadSignatureRejected) {
  auto outpoint = fund();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  tx.inputs[0].script_sig[4] ^= 1;
  EXPECT_FALSE(alice_.submit_tx(tx));
}

TEST_F(SpendTest, OverspendRejected) {
  auto outpoint = fund();
  auto tx = spend(outpoint, 51 * bitcoin::kCoin);  // more than the input
  EXPECT_FALSE(alice_.submit_tx(tx));
}

TEST_F(SpendTest, UnknownInputRejected) {
  bitcoin::OutPoint ghost;
  ghost.txid.data[0] = 0x99;
  auto tx = spend(ghost, 1);
  EXPECT_FALSE(alice_.submit_tx(tx));
}

TEST_F(SpendTest, DoubleSpendRejected) {
  auto outpoint = fund();
  auto tx1 = spend(outpoint, 49 * bitcoin::kCoin);
  // tx2 conflicts with tx1 but pays a *lower* fee, so it is not a valid RBF
  // replacement either (higher-fee replacement is covered in mempool_test).
  auto tx2 = spend(outpoint, 49 * bitcoin::kCoin + bitcoin::kCoin / 2);
  EXPECT_TRUE(alice_.submit_tx(tx1));
  EXPECT_FALSE(alice_.submit_tx(tx2));
  EXPECT_TRUE(alice_.in_mempool(tx1.txid()));
}

TEST_F(SpendTest, MempoolChaining) {
  auto outpoint = fund();
  auto tx1 = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(alice_.submit_tx(tx1));
  // Spend tx1's output while it is still unconfirmed.
  auto tx2 = spend(bitcoin::OutPoint{tx1.txid(), 0}, 48 * bitcoin::kCoin);
  EXPECT_TRUE(alice_.submit_tx(tx2));
  EXPECT_EQ(alice_.mempool_size(), 2u);
}

TEST_F(SpendTest, TxPropagatesAndGetsMined) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  auto outpoint = fund();
  sim_.run();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(bob_.submit_tx(tx));  // broadcast at bob
  sim_.run();
  EXPECT_TRUE(alice_.in_mempool(tx.txid()));  // relayed to alice
  alice_miner_.mine_one();
  sim_.run();
  // Mined: gone from both mempools, output in both UTXO sets.
  EXPECT_EQ(alice_.mempool_size(), 0u);
  EXPECT_EQ(bob_.mempool_size(), 0u);
  EXPECT_TRUE(alice_.utxos().contains(bitcoin::OutPoint{tx.txid(), 0}));
  EXPECT_TRUE(bob_.utxos().contains(bitcoin::OutPoint{tx.txid(), 0}));
}

TEST_F(SpendTest, RelayedTxHashedExactlyOnce) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  auto outpoint = fund();
  sim_.run();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  // From submission at bob through inv/getdata relay into alice's mempool,
  // the tx must be serialized+hashed exactly once; every later consumer
  // (request bookkeeping, mempool keys, relay announcements) reuses the
  // cached txid.
  auto before = bitcoin::Transaction::txid_computations();
  ASSERT_TRUE(bob_.submit_tx(tx));
  sim_.run();
  EXPECT_EQ(bitcoin::Transaction::txid_computations() - before, 1u);
  EXPECT_TRUE(alice_.in_mempool(tx.txid()));
}

TEST_F(SpendTest, MempoolSnapshotPreservesOrder) {
  auto o1 = fund();
  auto o2 = fund();
  auto tx1 = spend(o1, 49 * bitcoin::kCoin);
  auto tx2 = spend(o2, 48 * bitcoin::kCoin);
  ASSERT_TRUE(alice_.submit_tx(tx1));
  ASSERT_TRUE(alice_.submit_tx(tx2));
  auto snapshot = alice_.mempool_snapshot();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0].txid(), tx1.txid());
  EXPECT_EQ(snapshot[1].txid(), tx2.txid());
}

TEST_F(NodeTest, BlockInvNotEchoedToSender) {
  class Recorder : public Endpoint {
   public:
    void deliver(NodeId, const Message& msg) override { received.push_back(msg); }
    std::vector<Message> received;
  } recorder;

  // Carol mines two blocks offline; the recorder feeds them to Alice out of
  // order so the second one takes the orphan path (which used to forget who
  // sent the block and echo the inv back).
  BitcoinNode carol{net_, params_};
  Miner carol_miner{carol, 1.0, util::Rng(14)};
  auto b1 = carol_miner.mine_one();
  auto b2 = carol_miner.mine_one();

  net_.connect(alice_.id(), bob_.id());
  NodeId rid = net_.attach(&recorder, true, false);
  net_.connect(rid, alice_.id());
  sim_.run();
  recorder.received.clear();  // drop handshake traffic

  net_.send(rid, alice_.id(), MsgBlock{b2});
  net_.send(rid, alice_.id(), MsgBlock{b1});
  sim_.run();

  ASSERT_EQ(alice_.best_height(), 2);
  EXPECT_EQ(bob_.best_tip(), alice_.best_tip());  // still relayed onward
  for (const auto& msg : recorder.received) {
    if (const auto* inv = std::get_if<MsgInv>(&msg)) {
      for (const auto& hash : inv->block_hashes) {
        EXPECT_NE(hash, b1.hash());
        EXPECT_NE(hash, b2.hash());
      }
    }
  }
  net_.detach(rid);
}

TEST_F(NodeTest, GetAddrReturnsGossipedAddresses) {
  class Collector : public Endpoint {
   public:
    void deliver(NodeId, const Message& msg) override {
      if (auto* addr = std::get_if<MsgAddr>(&msg)) received = addr->addresses;
    }
    std::vector<NetAddress> received;
  } collector;
  NodeId cid = net_.attach(&collector, true, false);
  net_.connect(cid, alice_.id());
  net_.send(cid, alice_.id(), MsgGetAddr{});
  sim_.run();
  EXPECT_EQ(collector.received.size(), 2u);  // alice and bob are gossiped
  net_.detach(cid);  // the collector dies before the fixture's nodes
}

}  // namespace
}  // namespace icbtc::btcnet
