// Fee-market mempool policy: RBF replacement, size-cap eviction with a fee
// floor, TTL expiry, and the fee-ordered block template.
#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "btcnet/node.h"
#include "chain/block_builder.h"
#include "crypto/ecdsa.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"

namespace icbtc::btcnet {
namespace {

class MempoolTest : public ::testing::Test {
 protected:
  BitcoinNode& make_node(NodeOptions options) {
    node_ = std::make_unique<BitcoinNode>(net_, params_, options);
    node_->set_metrics(&registry_);
    return *node_;
  }

  /// Mines a block paying the coinbase to our key, returns the outpoint.
  bitcoin::OutPoint fund() {
    fund_time_ += 600;
    auto block = chain::build_child_block(node_->tree(), node_->best_tip(), fund_time_,
                                          bitcoin::p2pkh_script(key_hash_),
                                          50 * bitcoin::kCoin, {}, next_tag_++);
    EXPECT_TRUE(node_->submit_block(block));
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  }

  /// One-input spend of `from_outpoint` paying `value` back to our key; the
  /// difference is the fee.
  bitcoin::Transaction spend(const bitcoin::OutPoint& from_outpoint, bitcoin::Amount value) {
    return spend_many({from_outpoint}, value);
  }

  bitcoin::Transaction spend_many(const std::vector<bitcoin::OutPoint>& outpoints,
                                  bitcoin::Amount value) {
    bitcoin::Transaction tx;
    for (const auto& outpoint : outpoints) {
      bitcoin::TxIn in;
      in.prevout = outpoint;
      tx.inputs.push_back(in);
    }
    tx.outputs.push_back(bitcoin::TxOut{value, bitcoin::p2pkh_script(key_hash_)});
    auto lock = bitcoin::p2pkh_script(key_hash_);
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
      auto digest = bitcoin::legacy_sighash(tx, i, lock);
      tx.inputs[i].script_sig =
          bitcoin::p2pkh_script_sig(key_.sign(digest), key_.public_key().compressed());
    }
    return tx;
  }

  std::uint64_t counter(const std::string& name) {
    return registry_.counter(name).value();
  }

  util::Simulation sim_;
  Network net_{sim_, util::Rng(21)};
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  obs::MetricsRegistry registry_;
  std::unique_ptr<BitcoinNode> node_;
  crypto::PrivateKey key_ = crypto::PrivateKey::from_seed(util::Bytes{4, 5, 6});
  util::Hash160 key_hash_ = crypto::hash160(key_.public_key().compressed());
  std::uint64_t next_tag_ = 2000;
  std::uint32_t fund_time_ = params_.genesis_header.time;
};

TEST_F(MempoolTest, FeeAndFeerateExposed) {
  auto& node = make_node({});
  auto outpoint = fund();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx));
  auto info = node.mempool_info(tx.txid());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->fee, bitcoin::kCoin);
  EXPECT_EQ(info->vsize, tx.size());
  EXPECT_EQ(info->feerate_milli,
            static_cast<std::uint64_t>(bitcoin::kCoin) * 1000 / tx.size());
  EXPECT_FALSE(node.mempool_info(outpoint.txid).has_value());  // not in pool
}

TEST_F(MempoolTest, RbfHigherFeerateReplaces) {
  auto& node = make_node({});
  auto outpoint = fund();
  auto tx1 = spend(outpoint, 49 * bitcoin::kCoin);              // fee 1 BTC
  auto tx2 = spend(outpoint, 48 * bitcoin::kCoin);              // fee 2 BTC
  ASSERT_TRUE(node.submit_tx(tx1));
  EXPECT_TRUE(node.submit_tx(tx2));
  EXPECT_FALSE(node.in_mempool(tx1.txid()));
  EXPECT_TRUE(node.in_mempool(tx2.txid()));
  EXPECT_EQ(node.mempool_size(), 1u);
  EXPECT_EQ(counter("mempool.rbf_replaced"), 1u);
}

TEST_F(MempoolTest, RbfDisabledRejectsAnyConflict) {
  NodeOptions options;
  options.replace_by_fee = false;
  auto& node = make_node(options);
  auto outpoint = fund();
  auto tx1 = spend(outpoint, 49 * bitcoin::kCoin);
  auto tx2 = spend(outpoint, 40 * bitcoin::kCoin);  // much higher fee
  ASSERT_TRUE(node.submit_tx(tx1));
  EXPECT_FALSE(node.submit_tx(tx2));
  EXPECT_TRUE(node.in_mempool(tx1.txid()));
}

TEST_F(MempoolTest, RbfReplacementEvictsDescendants) {
  auto& node = make_node({});
  auto outpoint = fund();
  auto tx1 = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx1));
  auto child = spend(bitcoin::OutPoint{tx1.txid(), 0}, 48 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(child));
  // Replaces tx1; the now-parentless child must go with it.
  auto tx2 = spend(outpoint, 46 * bitcoin::kCoin);
  EXPECT_TRUE(node.submit_tx(tx2));
  EXPECT_FALSE(node.in_mempool(tx1.txid()));
  EXPECT_FALSE(node.in_mempool(child.txid()));
  EXPECT_EQ(node.mempool_size(), 1u);
  EXPECT_EQ(counter("mempool.rbf_replaced"), 2u);
}

TEST_F(MempoolTest, RbfRequiresAbsoluteFeeIncrement) {
  NodeOptions options;
  // An extreme incremental rate (~0.192 BTC on a ~192-vbyte tx) so the
  // feerate and absolute-increment rules separate cleanly even though DER
  // signature lengths make vsize vary by a couple of bytes.
  options.min_relay_fee_rate = 100'000'000;
  auto& node = make_node(options);
  auto outpoint = fund();
  auto tx1 = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx1));
  // +0.05 BTC: strictly higher feerate, but far short of the increment.
  auto cheap = spend(outpoint, 49 * bitcoin::kCoin - 5'000'000);
  EXPECT_FALSE(node.submit_tx(cheap));
  EXPECT_TRUE(node.in_mempool(tx1.txid()));
  // +1 BTC clears the increment comfortably.
  auto paid = spend(outpoint, 48 * bitcoin::kCoin);
  EXPECT_TRUE(node.submit_tx(paid));
  EXPECT_FALSE(node.in_mempool(tx1.txid()));
}

TEST_F(MempoolTest, RbfReplacementMayNotSpendConflictOutputs) {
  auto& node = make_node({});
  auto o1 = fund();
  auto o2 = fund();
  auto tx1 = spend(o1, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx1));
  // Conflicts with tx1 on o1 while also spending tx1's own output: it would
  // depend on a transaction it evicts.
  auto tx2 = spend_many({o1, bitcoin::OutPoint{tx1.txid(), 0}}, 40 * bitcoin::kCoin);
  EXPECT_FALSE(node.submit_tx(tx2));
  EXPECT_TRUE(node.in_mempool(tx1.txid()));
  // Sanity: the same shape without the conflict input is fine.
  auto tx3 = spend_many({o2, bitcoin::OutPoint{tx1.txid(), 0}}, 40 * bitcoin::kCoin);
  EXPECT_TRUE(node.submit_tx(tx3));
}

TEST_F(MempoolTest, MinRelayFeeRateGatesAdmission) {
  NodeOptions options;
  options.min_relay_fee_rate = 1'000'000;  // 1000 sat/vbyte
  auto& node = make_node(options);
  auto o1 = fund();
  auto o2 = fund();
  // ~192 vbytes * 1000 sat/vbyte = ~192k sats minimum fee.
  EXPECT_FALSE(node.submit_tx(spend(o1, 50 * bitcoin::kCoin - 100'000)));
  EXPECT_TRUE(node.submit_tx(spend(o2, 50 * bitcoin::kCoin - 1'000'000)));
}

TEST_F(MempoolTest, SizeCapEvictsLowestFeerateSubtree) {
  NodeOptions options;
  options.mempool_max_txs = 2;
  auto& node = make_node(options);
  auto o1 = fund();
  auto o2 = fund();
  auto o3 = fund();
  auto low = spend(o1, 50 * bitcoin::kCoin - 100'000);     // 100k sats fee
  auto mid = spend(o2, 50 * bitcoin::kCoin - 200'000);     // 200k
  auto high = spend(o3, 50 * bitcoin::kCoin - 300'000);    // 300k
  ASSERT_TRUE(node.submit_tx(low));
  ASSERT_TRUE(node.submit_tx(mid));
  EXPECT_EQ(node.mempool_fee_floor(), node.mempool_info(low.txid())->feerate_milli);
  // Third arrival beats the floor: the lowest-feerate entry is evicted.
  EXPECT_TRUE(node.submit_tx(high));
  EXPECT_EQ(node.mempool_size(), 2u);
  EXPECT_FALSE(node.in_mempool(low.txid()));
  EXPECT_EQ(counter("mempool.evicted_sizecap"), 1u);
  // The floor rose; an arrival at or below it is rejected outright.
  auto o4 = fund();
  EXPECT_FALSE(node.submit_tx(spend(o4, 50 * bitcoin::kCoin - 150'000)));
  EXPECT_EQ(node.mempool_size(), 2u);
  EXPECT_TRUE(node.in_mempool(mid.txid()));
  EXPECT_TRUE(node.in_mempool(high.txid()));
}

TEST_F(MempoolTest, TtlExpiresTransactionsWithDescendants) {
  NodeOptions options;
  options.mempool_tx_ttl = 60 * util::kSecond;
  auto& node = make_node(options);
  auto outpoint = fund();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx));
  auto child = spend(bitcoin::OutPoint{tx.txid(), 0}, 48 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(child));
  sim_.run_until(59 * util::kSecond);
  EXPECT_EQ(node.mempool_size(), 2u);
  sim_.run_until(61 * util::kSecond);
  EXPECT_EQ(node.mempool_size(), 0u);
  EXPECT_EQ(counter("mempool.evicted_expired"), 2u);
}

TEST_F(MempoolTest, MinedTransactionDoesNotExpireLater) {
  NodeOptions options;
  options.mempool_tx_ttl = 60 * util::kSecond;
  auto& node = make_node(options);
  auto outpoint = fund();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx));
  // Mine it before the TTL fires; the stale timer must not touch anything.
  fund_time_ += 600;
  auto block = chain::build_child_block(node.tree(), node.best_tip(), fund_time_,
                                        bitcoin::p2pkh_script(key_hash_),
                                        50 * bitcoin::kCoin, {tx}, next_tag_++);
  ASSERT_TRUE(node.submit_block(block));
  EXPECT_EQ(node.mempool_size(), 0u);
  sim_.run_until(61 * util::kSecond);
  EXPECT_EQ(counter("mempool.evicted_expired"), 0u);
  EXPECT_TRUE(node.utxos().contains(bitcoin::OutPoint{tx.txid(), 0}));
}

TEST_F(MempoolTest, TemplateOrdersByFeerateParentsFirst) {
  auto& node = make_node({});
  auto o1 = fund();
  auto o2 = fund();
  auto cheap = spend(o1, 50 * bitcoin::kCoin - 100'000);
  auto rich = spend(o2, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(cheap));
  ASSERT_TRUE(node.submit_tx(rich));
  // A child of `cheap` paying even more than `rich`: it must still follow
  // its parent in the template.
  auto child = spend(bitcoin::OutPoint{cheap.txid(), 0}, 45 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(child));

  auto txs = node.mempool_template();
  ASSERT_EQ(txs.size(), 3u);
  EXPECT_EQ(txs[0].txid(), rich.txid());
  EXPECT_EQ(txs[1].txid(), cheap.txid());
  EXPECT_EQ(txs[2].txid(), child.txid());

  auto capped = node.mempool_template(1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].txid(), rich.txid());
}

TEST_F(MempoolTest, FeeFloorGaugeTracksIndex) {
  auto& node = make_node({});
  EXPECT_EQ(node.mempool_fee_floor(), 0u);
  auto o1 = fund();
  auto tx = spend(o1, 49 * bitcoin::kCoin);
  ASSERT_TRUE(node.submit_tx(tx));
  auto floor = node.mempool_fee_floor();
  EXPECT_EQ(floor, node.mempool_info(tx.txid())->feerate_milli);
  EXPECT_EQ(registry_.gauge("mempool.fee_floor").value(),
            static_cast<std::int64_t>(floor));
}

}  // namespace
}  // namespace icbtc::btcnet
