#include "btcnet/network.h"

#include <gtest/gtest.h>

#include "bitcoin/params.h"

namespace icbtc::btcnet {
namespace {

class RecordingEndpoint : public Endpoint {
 public:
  void deliver(NodeId from, const Message& msg) override {
    received.emplace_back(from, msg);
  }
  void on_connected(NodeId peer) override { connects.push_back(peer); }
  void on_disconnected(NodeId peer) override { disconnects.push_back(peer); }

  std::vector<std::pair<NodeId, Message>> received;
  std::vector<NodeId> connects;
  std::vector<NodeId> disconnects;
};

class NetworkTest : public ::testing::Test {
 protected:
  util::Simulation sim_;
  Network net_{sim_, util::Rng(7)};
  RecordingEndpoint a_, b_, c_;
  NodeId ida_ = net_.attach(&a_);
  NodeId idb_ = net_.attach(&b_);
  NodeId idc_ = net_.attach(&c_, /*ipv6=*/false);
};

TEST_F(NetworkTest, AttachAssignsDistinctIds) {
  EXPECT_NE(ida_, idb_);
  EXPECT_NE(idb_, idc_);
  EXPECT_TRUE(net_.exists(ida_));
  EXPECT_FALSE(net_.exists(9999));
}

TEST_F(NetworkTest, ConnectionLifecycle) {
  EXPECT_TRUE(net_.connect(ida_, idb_));
  EXPECT_TRUE(net_.connected(ida_, idb_));
  EXPECT_TRUE(net_.connected(idb_, ida_));  // symmetric
  EXPECT_FALSE(net_.connect(ida_, idb_));   // already connected
  EXPECT_FALSE(net_.connect(ida_, ida_));   // self-loop
  EXPECT_EQ(a_.connects, std::vector<NodeId>{idb_});
  net_.disconnect(ida_, idb_);
  EXPECT_FALSE(net_.connected(ida_, idb_));
  EXPECT_EQ(a_.disconnects, std::vector<NodeId>{idb_});
}

TEST_F(NetworkTest, MessageDeliveredWithLatency) {
  net_.connect(ida_, idb_);
  net_.send(ida_, idb_, MsgGetAddr{});
  EXPECT_TRUE(b_.received.empty());  // not synchronous
  sim_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].first, ida_);
  EXPECT_TRUE(std::holds_alternative<MsgGetAddr>(b_.received[0].second));
  EXPECT_GT(sim_.now(), 0);
}

TEST_F(NetworkTest, SendWithoutConnectionDropped) {
  net_.send(ida_, idb_, MsgGetAddr{});
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(NetworkTest, DisconnectInFlightDropsMessage) {
  net_.connect(ida_, idb_);
  net_.send(ida_, idb_, MsgGetAddr{});
  net_.disconnect(ida_, idb_);
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
}

TEST_F(NetworkTest, PartitionBlocksCrossTraffic) {
  net_.connect(ida_, idb_);
  net_.set_partitioned(ida_, true);
  net_.send(ida_, idb_, MsgGetAddr{});
  sim_.run();
  EXPECT_TRUE(b_.received.empty());
  // Both sides inside the partition can still talk.
  net_.set_partitioned(idb_, true);
  net_.send(ida_, idb_, MsgGetAddr{});
  sim_.run();
  EXPECT_EQ(b_.received.size(), 1u);
  // Healing restores traffic.
  net_.set_partitioned(ida_, false);
  net_.set_partitioned(idb_, false);
  net_.send(ida_, idb_, MsgGetAddr{});
  sim_.run();
  EXPECT_EQ(b_.received.size(), 2u);
}

TEST_F(NetworkTest, DnsSeeds) {
  EXPECT_TRUE(net_.query_dns_seeds().empty());
  net_.add_dns_seed(ida_);
  net_.add_dns_seed(idc_);
  auto seeds = net_.query_dns_seeds();
  ASSERT_EQ(seeds.size(), 2u);
  EXPECT_EQ(seeds[0].id, ida_);
  EXPECT_TRUE(seeds[0].ipv6);
  EXPECT_EQ(seeds[1].id, idc_);
  EXPECT_FALSE(seeds[1].ipv6);
}

TEST_F(NetworkTest, SampleAddressesRespectsMaxAndGossipFlag) {
  RecordingEndpoint hidden;
  net_.attach(&hidden, true, /*gossiped=*/false);
  util::Rng rng(1);
  auto all = net_.sample_addresses(100, rng);
  EXPECT_EQ(all.size(), 3u);  // a, b, c but not hidden
  auto two = net_.sample_addresses(2, rng);
  EXPECT_EQ(two.size(), 2u);
}

TEST_F(NetworkTest, DetachCleansUp) {
  net_.connect(ida_, idb_);
  net_.add_dns_seed(idb_);
  net_.detach(idb_);
  EXPECT_FALSE(net_.exists(idb_));
  EXPECT_FALSE(net_.connected(ida_, idb_));
  EXPECT_TRUE(net_.query_dns_seeds().empty());
  EXPECT_EQ(a_.disconnects, std::vector<NodeId>{idb_});
}

TEST_F(NetworkTest, PeersOfListsAllLinks) {
  net_.connect(ida_, idb_);
  net_.connect(ida_, idc_);
  auto peers = net_.peers_of(ida_);
  EXPECT_EQ(peers.size(), 2u);
  EXPECT_EQ(net_.peers_of(idb_), std::vector<NodeId>{ida_});
}

TEST_F(NetworkTest, StatsAccumulate) {
  net_.connect(ida_, idb_);
  EXPECT_EQ(net_.message_count(), 0u);
  net_.send(ida_, idb_, MsgGetAddr{});
  net_.send(ida_, idb_, MsgGetAddr{});
  EXPECT_EQ(net_.message_count(), 2u);
  EXPECT_GT(net_.bytes_sent(), 0u);
}

TEST(LatencyModelTest, ScalesWithSize) {
  LatencyModel model;
  model.jitter = 0.0;
  util::Rng rng(3);
  auto small = model.sample(100, rng);
  auto large = model.sample(2 * 1024 * 1024, rng);
  EXPECT_GT(large, small);
  EXPECT_GE(small, model.base * 9 / 10);
}

TEST(LatencyModelTest, JitterBounded) {
  LatencyModel model;
  model.jitter = 0.2;
  util::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    auto t = model.sample(1024, rng);
    double expected = static_cast<double>(model.base + model.per_kilobyte);
    EXPECT_GE(t, static_cast<util::SimTime>(expected * 0.79));
    EXPECT_LE(t, static_cast<util::SimTime>(expected * 1.21));
  }
}

TEST(MessageSizeTest, BlockDominatedBySerializedSize) {
  bitcoin::Block block = bitcoin::genesis_block(bitcoin::ChainParams::regtest());
  EXPECT_EQ(message_size(MsgBlock{block}), 8 + block.size());
  MsgHeaders headers;
  headers.headers.resize(10);
  EXPECT_EQ(message_size(headers), 8u + 810u);
}

}  // namespace
}  // namespace icbtc::btcnet
