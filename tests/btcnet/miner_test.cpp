#include "btcnet/miner.h"

#include <gtest/gtest.h>

#include "btcnet/harness.h"

namespace icbtc::btcnet {
namespace {

TEST(MinerTest, ShareValidation) {
  util::Simulation sim;
  Network net(sim, util::Rng(1));
  BitcoinNode node(net, bitcoin::ChainParams::regtest());
  EXPECT_THROW(Miner(node, 0.0, util::Rng(2)), std::invalid_argument);
  EXPECT_THROW(Miner(node, 1.5, util::Rng(2)), std::invalid_argument);
}

TEST(MinerTest, ScheduledMiningProducesBlocksAtExpectedRate) {
  util::Simulation sim;
  Network net(sim, util::Rng(3));
  BitcoinNode node(net, bitcoin::ChainParams::regtest());
  Miner miner(node, 1.0, util::Rng(4));
  miner.start();
  // Run one simulated day: expect on the order of 144 blocks (600s spacing).
  sim.run_until(util::kDay);
  miner.stop();
  EXPECT_GT(node.best_height(), 100);
  EXPECT_LT(node.best_height(), 200);
}

TEST(MinerTest, StopHaltsProduction) {
  util::Simulation sim;
  Network net(sim, util::Rng(5));
  BitcoinNode node(net, bitcoin::ChainParams::regtest());
  Miner miner(node, 1.0, util::Rng(6));
  miner.start();
  sim.run_until(util::kHour);
  miner.stop();
  int height = node.best_height();
  sim.run_until(2 * util::kDay);
  EXPECT_EQ(node.best_height(), height);
}

TEST(MinerTest, MinedBlocksCarryValidPow) {
  util::Simulation sim;
  Network net(sim, util::Rng(7));
  const auto& params = bitcoin::ChainParams::regtest();
  BitcoinNode node(net, params);
  Miner miner(node, 1.0, util::Rng(8));
  auto block = miner.mine_one();
  EXPECT_TRUE(bitcoin::check_proof_of_work(block.hash(), block.header.bits, params.pow_limit));
  EXPECT_TRUE(block.is_well_formed());
}

TEST(AdversaryMinerTest, BuildsPrivateFork) {
  util::Simulation sim;
  Network net(sim, util::Rng(9));
  const auto& params = bitcoin::ChainParams::regtest();
  BitcoinNode node(net, params);
  Miner miner(node, 1.0, util::Rng(10));
  for (int i = 0; i < 5; ++i) miner.mine_one();

  // Fork off height 2.
  auto chain = node.tree().current_chain();
  AdversaryMiner adversary(node, chain[2], 0.3, util::Rng(11));
  std::uint32_t t = params.genesis_header.time + 10000;
  for (int i = 0; i < 4; ++i) adversary.mine_next(t += 600);

  EXPECT_EQ(adversary.private_blocks().size(), 4u);
  EXPECT_EQ(adversary.tip_height(), 6);  // forked at 2, +4
  // Private blocks are valid blocks (PoW, structure) — the attack model of
  // §IV-A grants the adversary real mining ability.
  for (const auto& b : adversary.private_blocks()) {
    EXPECT_TRUE(b.is_well_formed());
    EXPECT_TRUE(bitcoin::check_proof_of_work(b.hash(), b.header.bits, params.pow_limit));
  }
  // The honest node has never seen them.
  EXPECT_FALSE(node.has_block(adversary.tip()));
}

TEST(AdversaryMinerTest, PrivateHeadersChainCorrectly) {
  util::Simulation sim;
  Network net(sim, util::Rng(12));
  BitcoinNode node(net, bitcoin::ChainParams::regtest());
  Miner miner(node, 1.0, util::Rng(13));
  miner.mine_one();
  AdversaryMiner adversary(node, node.best_tip(), 0.5, util::Rng(14));
  std::uint32_t t = bitcoin::ChainParams::regtest().genesis_header.time + 5000;
  adversary.mine_next(t);
  adversary.mine_next(t + 600);
  auto headers = adversary.private_headers();
  ASSERT_EQ(headers.size(), 2u);
  EXPECT_EQ(headers[0].prev_hash, node.best_tip());
  EXPECT_EQ(headers[1].prev_hash, headers[0].hash());
}

TEST(AdversaryMinerTest, IntervalScalesWithShare) {
  util::Simulation sim;
  Network net(sim, util::Rng(15));
  BitcoinNode node(net, bitcoin::ChainParams::regtest());
  AdversaryMiner weak(node, node.best_tip(), 0.01, util::Rng(16));
  AdversaryMiner strong(node, node.best_tip(), 0.5, util::Rng(17));
  EXPECT_DOUBLE_EQ(weak.expected_block_interval_s(), 60000.0);
  EXPECT_DOUBLE_EQ(strong.expected_block_interval_s(), 1200.0);
  EXPECT_THROW(AdversaryMiner(node, node.best_tip(), 1.0, util::Rng(18)),
               std::invalid_argument);
}

TEST(HarnessTest, NetworkConvergesUnderMining) {
  util::Simulation sim;
  BitcoinNetworkConfig config;
  config.num_nodes = 12;
  config.connections_per_node = 3;
  config.num_miners = 3;
  BitcoinNetworkHarness harness(sim, bitcoin::ChainParams::regtest(), config, 42);
  sim.run();  // initial header handshakes
  harness.start_miners();
  sim.run_until(util::kDay / 4);
  harness.stop_miners();
  sim.run();  // drain in-flight propagation
  EXPECT_GT(harness.max_best_height(), 10);
  EXPECT_TRUE(harness.converged());
}

TEST(HarnessTest, MultipleMinersShareProduction) {
  util::Simulation sim;
  BitcoinNetworkConfig config;
  config.num_nodes = 6;
  config.num_miners = 3;
  BitcoinNetworkHarness harness(sim, bitcoin::ChainParams::regtest(), config, 43);
  sim.run();
  harness.start_miners();
  sim.run_until(util::kDay);
  harness.stop_miners();
  sim.run();
  int total = 0;
  for (auto* m : harness.miners()) {
    EXPECT_GT(m->blocks_mined(), 0u);
    total += static_cast<int>(m->blocks_mined());
  }
  // Together they mine at the full network rate: ~144/day.
  EXPECT_GT(total, 100);
  EXPECT_LT(total, 200);
}

TEST(HarnessTest, DnsSeedsRegistered) {
  util::Simulation sim;
  BitcoinNetworkConfig config;
  config.num_nodes = 5;
  config.num_dns_seeds = 2;
  BitcoinNetworkHarness harness(sim, bitcoin::ChainParams::regtest(), config, 44);
  EXPECT_EQ(harness.network().query_dns_seeds().size(), 2u);
}

}  // namespace
}  // namespace icbtc::btcnet
