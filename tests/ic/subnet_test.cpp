#include "ic/subnet.h"

#include <gtest/gtest.h>

namespace icbtc::ic {
namespace {

TEST(MeterTest, ChargesAccumulate) {
  InstructionMeter meter;
  EXPECT_EQ(meter.count(), 0u);
  meter.charge(10);
  meter.charge(5);
  EXPECT_EQ(meter.count(), 15u);
  meter.reset();
  EXPECT_EQ(meter.count(), 0u);
}

TEST(MeterTest, SegmentsMeasureDeltas) {
  InstructionMeter meter;
  meter.charge(100);
  InstructionMeter::Segment segment(meter);
  meter.charge(42);
  EXPECT_EQ(segment.sample(), 42u);
  meter.charge(8);
  EXPECT_EQ(segment.sample(), 50u);
}

TEST(CostModelTest, UpdateCosts) {
  CycleCostModel model;
  std::uint64_t cycles = model.update_cost_cycles(1'000'000, 100);
  EXPECT_EQ(cycles, model.update_base +
                        static_cast<std::uint64_t>(model.per_instruction * 1'000'000) +
                        model.per_response_byte * 100);
  EXPECT_GT(model.cycles_to_usd(1'000'000'000'000ULL), 1.0);
}

TEST(SubnetConfigTest, ThresholdMath) {
  SubnetConfig config;
  config.num_nodes = 13;
  EXPECT_EQ(config.max_faulty(), 4u);
  EXPECT_EQ(config.threshold(), 9u);
  config.num_nodes = 40;
  EXPECT_EQ(config.max_faulty(), 13u);
  EXPECT_EQ(config.threshold(), 27u);
  config.num_nodes = 4;
  EXPECT_EQ(config.max_faulty(), 1u);
  EXPECT_EQ(config.threshold(), 3u);
}

TEST(SubnetTest, ConstructionValidation) {
  util::Simulation sim;
  SubnetConfig bad;
  bad.num_nodes = 0;
  EXPECT_THROW(Subnet(sim, bad, 1), std::invalid_argument);
  bad.num_nodes = 4;
  bad.num_byzantine = 4;
  EXPECT_THROW(Subnet(sim, bad, 1), std::invalid_argument);
}

TEST(SubnetTest, RoundsAdvance) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 13;
  Subnet subnet(sim, config, 7);
  subnet.start();
  sim.run_until(60 * util::kSecond);
  subnet.stop();
  // ~1s rounds with 15% jitter: expect roughly 52-69 rounds in a minute.
  EXPECT_GT(subnet.round(), 40u);
  EXPECT_LT(subnet.round(), 80u);
}

TEST(SubnetTest, HeartbeatsFireEachRound) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 4;
  Subnet subnet(sim, config, 8);
  std::uint64_t calls = 0;
  std::uint64_t last_round = 0;
  subnet.register_heartbeat([&](const RoundInfo& info) {
    ++calls;
    EXPECT_GT(info.round, last_round);
    last_round = info.round;
    EXPECT_LT(info.block_maker, 4u);
  });
  subnet.start();
  sim.run_until(10 * util::kSecond);
  subnet.stop();
  EXPECT_EQ(calls, subnet.round());
}

TEST(SubnetTest, UnregisterStopsHeartbeat) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 4;
  Subnet subnet(sim, config, 9);
  int calls = 0;
  auto id = subnet.register_heartbeat([&](const RoundInfo&) { ++calls; });
  subnet.start();
  sim.run_until(5 * util::kSecond);
  int at_unregister = calls;
  subnet.unregister_heartbeat(id);
  sim.run_until(10 * util::kSecond);
  subnet.stop();
  EXPECT_EQ(calls, at_unregister);
  EXPECT_GT(calls, 0);
}

TEST(SubnetTest, BlockMakerRotatesUniformly) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 4;
  config.round_jitter = 0.0;
  Subnet subnet(sim, config, 10);
  std::vector<int> maker_counts(4, 0);
  subnet.register_heartbeat([&](const RoundInfo& info) { maker_counts[info.block_maker]++; });
  subnet.start();
  sim.run_until(4000 * util::kSecond);
  subnet.stop();
  int total = 0;
  for (int c : maker_counts) {
    total += c;
    EXPECT_GT(c, 800);  // each of 4 nodes ~1000 of ~4000 rounds
    EXPECT_LT(c, 1200);
  }
  EXPECT_EQ(static_cast<std::uint64_t>(total), subnet.round());
}

TEST(SubnetTest, ByzantineMakerFrequencyMatchesFraction) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 13;
  config.num_byzantine = 4;  // f = 4 of 13
  config.round_jitter = 0.0;
  Subnet subnet(sim, config, 11);
  subnet.start();
  sim.run_until(13000 * util::kSecond);
  subnet.stop();
  double fraction = static_cast<double>(subnet.byzantine_maker_rounds()) /
                    static_cast<double>(subnet.round());
  EXPECT_NEAR(fraction, 4.0 / 13.0, 0.03);
}

TEST(SubnetTest, LatencyModelsMatchPaperBands) {
  util::Simulation sim;
  SubnetConfig config;
  Subnet subnet(sim, config, 12);
  // Replicated calls: min ~7s, p90 <= ~25s (paper: avg < 10s, p90 18s).
  std::vector<util::SimTime> updates;
  for (int i = 0; i < 2000; ++i) updates.push_back(subnet.sample_update_latency(10'000'000));
  std::sort(updates.begin(), updates.end());
  EXPECT_GE(updates.front(), 6 * util::kSecond);
  EXPECT_LE(updates[updates.size() / 2], 14 * util::kSecond);   // median
  EXPECT_LE(updates[updates.size() * 9 / 10], 25 * util::kSecond);  // p90

  // Queries: small requests land in the couple-hundred-ms range.
  std::vector<util::SimTime> queries;
  for (int i = 0; i < 2000; ++i) queries.push_back(subnet.sample_query_latency(10'000'000));
  std::sort(queries.begin(), queries.end());
  EXPECT_GE(queries.front(), 100 * util::kMillisecond);
  EXPECT_LE(queries[queries.size() / 2], 400 * util::kMillisecond);
}

TEST(SubnetTest, QueryLatencyGrowsWithInstructions) {
  util::Simulation sim;
  Subnet subnet(sim, SubnetConfig{}, 13);
  double small = 0, large = 0;
  for (int i = 0; i < 500; ++i) {
    small += static_cast<double>(subnet.sample_query_latency(5'840'000));    // min of Fig. 7
    large += static_cast<double>(subnet.sample_query_latency(476'000'000));  // max of Fig. 7
  }
  EXPECT_GT(large / 500, 2.0 * small / 500);
}

TEST(SubnetTest, SignWithEcdsaProducesValidSignature) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 13;
  config.num_byzantine = 4;
  Subnet subnet(sim, config, 14);
  util::Hash256 digest;
  digest.data[0] = 0x42;
  crypto::DerivationPath path = {{0x01}};
  auto sig = subnet.sign_with_ecdsa(digest, path);
  EXPECT_TRUE(crypto::verify(subnet.ecdsa().public_key(path), digest, sig));
}

TEST(SubnetTest, SigningWorksAtMaximumCorruption) {
  // f = 13 corrupt of n = 40: the 27 honest replicas still meet the 2f+1
  // threshold.
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 40;
  config.num_byzantine = 13;
  Subnet subnet(sim, config, 15);
  util::Hash256 digest;
  digest.data[5] = 0x17;
  auto sig = subnet.sign_with_ecdsa(digest, {});
  EXPECT_TRUE(crypto::verify(subnet.ecdsa().public_key({}), digest, sig));
}

TEST(SubnetTest, SignWithSchnorrProducesValidSignature) {
  util::Simulation sim;
  SubnetConfig config;
  config.num_nodes = 13;
  config.num_byzantine = 4;
  Subnet subnet(sim, config, 16);
  util::Hash256 message;
  message.data[3] = 0x77;
  crypto::SchnorrDerivationPath path = {{0x05}};
  auto sig = subnet.sign_with_schnorr(message, path);
  EXPECT_TRUE(crypto::schnorr_verify(subnet.schnorr().public_key(path), message, sig));
  // ECDSA and Schnorr services are independent keys. (bytes() returns by
  // value: bind it once, or begin/end would come from two distinct
  // temporaries and form a garbage range.)
  auto schnorr_bytes = subnet.schnorr().public_key().bytes();
  EXPECT_NE(subnet.ecdsa().public_key({}).compressed(),
            util::Bytes(schnorr_bytes.data.begin(), schnorr_bytes.data.end()));
}

TEST(SubnetTest, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    util::Simulation sim;
    SubnetConfig config;
    config.num_nodes = 7;
    Subnet subnet(sim, config, seed);
    std::vector<std::uint32_t> makers;
    subnet.register_heartbeat([&](const RoundInfo& info) { makers.push_back(info.block_maker); });
    subnet.start();
    sim.run_until(30 * util::kSecond);
    return makers;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

}  // namespace
}  // namespace icbtc::ic
