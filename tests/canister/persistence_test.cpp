// Canister upgrade persistence: serialize_state / from_snapshot round-trips
// must preserve every observable behaviour — the production canister keeps
// its 100+ GiB state in stable memory across upgrades.
#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"
#include "util/rng.h"

namespace icbtc::canister {
namespace {

struct World {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  CanisterConfig config = CanisterConfig::for_params(params);
  BitcoinCanister canister{params, config};
  chain::HeaderTree tree{params, params.genesis_header};
  util::Rng rng{99};
  util::Hash256 tip = params.genesis_header.hash();
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 1;
  std::vector<std::string> addresses;
  std::vector<util::Bytes> scripts;

  World() {
    for (int i = 0; i < 4; ++i) {
      util::Hash160 h;
      h.data[0] = static_cast<std::uint8_t>(i + 1);
      scripts.push_back(bitcoin::p2pkh_script(h));
      addresses.push_back(bitcoin::p2pkh_address(h, params.network));
    }
  }

  std::vector<bitcoin::Block> history;

  void step(bool with_payments = true) {
    std::vector<bitcoin::Transaction> txs;
    if (with_payments) {
      bitcoin::Transaction tx;
      bitcoin::TxIn in;
      in.prevout.txid = rng.next_hash();
      tx.inputs.push_back(in);
      for (int o = 0; o < 3; ++o) {
        tx.outputs.push_back(bitcoin::TxOut{
            static_cast<bitcoin::Amount>(1000 + rng.next_below(9000)),
            scripts[static_cast<std::size_t>(rng.next_below(scripts.size()))]});
      }
      txs.push_back(std::move(tx));
    }
    time += 600;
    auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                          bitcoin::block_subsidy(0), std::move(txs), tag++);
    tip = block.hash();
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    history.push_back(block);
    feed_to(canister, block);
  }

  void feed_to(BitcoinCanister& target, const bitcoin::Block& block) {
    adapter::AdapterResponse response;
    response.blocks.emplace_back(block, block.header);
    target.process_response(response, static_cast<std::int64_t>(time) + 10000);
  }
};

TEST(PersistenceTest, RoundTripPreservesState) {
  World world;
  for (int i = 0; i < 20; ++i) world.step();
  bitcoin::Transaction pending;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 0x55;
  pending.inputs.push_back(in);
  pending.outputs.push_back(bitcoin::TxOut{100, world.scripts[0]});
  ASSERT_EQ(world.canister.send_transaction(pending.serialize()), Status::kOk);

  auto snapshot = world.canister.serialize_state();
  auto restored = BitcoinCanister::from_snapshot(world.params, world.config, snapshot);

  EXPECT_EQ(restored.anchor_height(), world.canister.anchor_height());
  EXPECT_EQ(restored.anchor_hash(), world.canister.anchor_hash());
  EXPECT_EQ(restored.tip_height(), world.canister.tip_height());
  EXPECT_EQ(restored.utxo_count(), world.canister.utxo_count());
  EXPECT_EQ(restored.unstable_block_count(), world.canister.unstable_block_count());
  EXPECT_EQ(restored.archived_headers(), world.canister.archived_headers());
  EXPECT_EQ(restored.pending_transactions(), world.canister.pending_transactions());
  EXPECT_EQ(restored.is_synced(), world.canister.is_synced());
  EXPECT_EQ(restored.header_tree().best_tip(), world.canister.header_tree().best_tip());

  for (const auto& addr : world.addresses) {
    for (int conf : {0, 2, 5}) {
      EXPECT_EQ(restored.get_balance(addr, conf).value,
                world.canister.get_balance(addr, conf).value)
          << addr << " conf " << conf;
    }
    GetUtxosRequest request;
    request.address = addr;
    auto a = world.canister.get_utxos(request);
    auto b = restored.get_utxos(request);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value.utxos, b.value.utxos);
    EXPECT_EQ(a.value.tip_hash, b.value.tip_hash);
  }
}

TEST(PersistenceTest, RestoredCanisterKeepsIngesting) {
  World world;
  for (int i = 0; i < 12; ++i) world.step();
  auto snapshot = world.canister.serialize_state();
  auto restored = BitcoinCanister::from_snapshot(world.params, world.config, snapshot);

  // Continue the chain, feeding both canisters the same blocks: they must
  // stay in lockstep through anchor advances and UTXO migration.
  for (int i = 0; i < 10; ++i) {
    world.step();
    world.feed_to(restored, world.history.back());
    EXPECT_EQ(restored.tip_height(), world.canister.tip_height());
    EXPECT_EQ(restored.anchor_height(), world.canister.anchor_height());
    EXPECT_EQ(restored.utxo_count(), world.canister.utxo_count());
  }
  for (const auto& addr : world.addresses) {
    EXPECT_EQ(restored.get_balance(addr).value, world.canister.get_balance(addr).value);
  }
}

TEST(PersistenceTest, SnapshotIsDeterministic) {
  World w1, w2;
  for (int i = 0; i < 10; ++i) {
    w1.step();
    w2.step();
  }
  // Same seed, same chain: byte-identical snapshots... except unordered-map
  // iteration order; serialize twice from the same canister instead.
  EXPECT_EQ(w1.canister.serialize_state(), w1.canister.serialize_state());
}

TEST(PersistenceTest, RejectsGarbage) {
  World world;
  world.step();
  auto snapshot = world.canister.serialize_state();

  EXPECT_THROW(BitcoinCanister::from_snapshot(world.params, world.config, util::Bytes{1, 2}),
               util::DecodeError);
  auto bad_magic = snapshot;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(BitcoinCanister::from_snapshot(world.params, world.config, bad_magic),
               util::DecodeError);
  auto truncated = snapshot;
  truncated.resize(truncated.size() / 2);
  EXPECT_THROW(BitcoinCanister::from_snapshot(world.params, world.config, truncated),
               util::DecodeError);
  auto trailing = snapshot;
  trailing.push_back(0);
  EXPECT_THROW(BitcoinCanister::from_snapshot(world.params, world.config, trailing),
               util::DecodeError);
}

TEST(PersistenceTest, SnapshotAfterAnchorAdvance) {
  // δ=6: 15 blocks move the anchor well past genesis; the snapshot then has
  // a non-trivial root, archived headers, and a populated stable set.
  World world;
  for (int i = 0; i < 15; ++i) world.step();
  ASSERT_GT(world.canister.anchor_height(), 0);
  ASSERT_GT(world.canister.utxo_count(), 0u);
  auto restored = BitcoinCanister::from_snapshot(world.params, world.config,
                                                 world.canister.serialize_state());
  EXPECT_EQ(restored.anchor_height(), world.canister.anchor_height());
  EXPECT_EQ(restored.get_block_headers(0).value.headers.size(),
            world.canister.get_block_headers(0).value.headers.size());
}

}  // namespace
}  // namespace icbtc::canister
