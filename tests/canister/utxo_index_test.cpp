#include "canister/utxo_index.h"

#include <gtest/gtest.h>

#include "bitcoin/script.h"

namespace icbtc::canister {
namespace {

bitcoin::OutPoint op(std::uint8_t tag, std::uint32_t vout = 0) {
  bitcoin::OutPoint o;
  o.txid.data[0] = tag;
  o.vout = vout;
  return o;
}

util::Bytes script(std::uint8_t tag) {
  util::Hash160 h;
  h.data[0] = tag;
  return bitcoin::p2pkh_script(h);
}

class UtxoIndexTest : public ::testing::Test {
 protected:
  UtxoIndex index_;
  ic::InstructionMeter meter_;
};

TEST_F(UtxoIndexTest, InsertAndQuery) {
  index_.insert(op(1), bitcoin::TxOut{100, script(1)}, 10, meter_);
  index_.insert(op(2), bitcoin::TxOut{200, script(1)}, 20, meter_);
  index_.insert(op(3), bitcoin::TxOut{300, script(2)}, 15, meter_);

  EXPECT_EQ(index_.size(), 3u);
  EXPECT_EQ(index_.distinct_scripts(), 2u);
  EXPECT_EQ(index_.balance_of_script(script(1), meter_), 300);
  EXPECT_EQ(index_.balance_of_script(script(2), meter_), 300);
  EXPECT_EQ(index_.balance_of_script(script(9), meter_), 0);
}

TEST_F(UtxoIndexTest, UtxosSortedByHeightDescending) {
  index_.insert(op(1), bitcoin::TxOut{1, script(1)}, 10, meter_);
  index_.insert(op(2), bitcoin::TxOut{2, script(1)}, 30, meter_);
  index_.insert(op(3), bitcoin::TxOut{3, script(1)}, 20, meter_);
  auto utxos = index_.utxos_for_script(script(1), meter_);
  ASSERT_EQ(utxos.size(), 3u);
  EXPECT_EQ(utxos[0].height, 30);
  EXPECT_EQ(utxos[1].height, 20);
  EXPECT_EQ(utxos[2].height, 10);
}

TEST_F(UtxoIndexTest, RemoveUpdatesBothIndexes) {
  index_.insert(op(1), bitcoin::TxOut{100, script(1)}, 10, meter_);
  index_.remove(op(1), meter_);
  EXPECT_EQ(index_.size(), 0u);
  EXPECT_EQ(index_.distinct_scripts(), 0u);
  EXPECT_TRUE(index_.utxos_for_script(script(1), meter_).empty());
  EXPECT_FALSE(index_.find(op(1)).has_value());
}

TEST_F(UtxoIndexTest, RemoveMissingOutpointTolerated) {
  // §III-C: transactions are not validated; spends of unknown outputs are
  // charged but ignored.
  auto before = meter_.count();
  index_.remove(op(42), meter_);
  EXPECT_GT(meter_.count(), before);
  EXPECT_EQ(index_.size(), 0u);
}

TEST_F(UtxoIndexTest, OpReturnSkipped) {
  index_.insert(op(1), bitcoin::TxOut{0, bitcoin::op_return_script(util::Bytes{1})}, 5, meter_);
  EXPECT_EQ(index_.size(), 0u);
}

TEST_F(UtxoIndexTest, MeteringMatchesConfiguredCosts) {
  InstructionCosts costs;
  ic::InstructionMeter meter;
  UtxoIndex index(costs);
  index.insert(op(1), bitcoin::TxOut{100, script(1)}, 10, meter);
  EXPECT_EQ(meter.count(), costs.output_insert);
  index.remove(op(1), meter);
  EXPECT_EQ(meter.count(), costs.output_insert + costs.input_remove);
  index.insert(op(2), bitcoin::TxOut{5, script(3)}, 2, meter);
  auto before = meter.count();
  index.utxos_for_script(script(3), meter);
  EXPECT_EQ(meter.count() - before, costs.stable_utxo_read);
}

TEST_F(UtxoIndexTest, MemoryGrowsAndShrinks) {
  EXPECT_EQ(index_.memory_bytes(), 0u);
  index_.insert(op(1), bitcoin::TxOut{100, script(1)}, 10, meter_);
  auto after_one = index_.memory_bytes();
  EXPECT_GT(after_one, 0u);
  index_.insert(op(2), bitcoin::TxOut{100, script(1)}, 10, meter_);
  EXPECT_EQ(index_.memory_bytes(), 2 * after_one);
  index_.remove(op(1), meter_);
  EXPECT_EQ(index_.memory_bytes(), after_one);
}

TEST_F(UtxoIndexTest, FindAndScriptOf) {
  index_.insert(op(7), bitcoin::TxOut{700, script(7)}, 70, meter_);
  auto found = index_.find(op(7));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->value, 700);
  EXPECT_EQ(found->height, 70);
  auto s = index_.script_of(op(7));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(*s, script(7));
  EXPECT_FALSE(index_.script_of(op(8)).has_value());
}

TEST_F(UtxoIndexTest, ApplyBlockChargesSplitCosts) {
  // One spend, two outputs: instructions should be ~1 remove + 2 inserts.
  index_.insert(op(1), bitcoin::TxOut{1000, script(1)}, 1, meter_);
  bitcoin::Block block;
  bitcoin::Transaction coinbase;
  bitcoin::TxIn cin;
  cin.prevout = bitcoin::OutPoint::null();
  coinbase.inputs.push_back(cin);
  coinbase.outputs.push_back(bitcoin::TxOut{50, script(2)});
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout = op(1);
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{999, script(3)});
  block.transactions = {coinbase, tx};

  ic::InstructionMeter meter;
  index_.apply_block(block, 2, meter);
  const auto& costs = index_.costs();
  EXPECT_EQ(meter.count(),
            2 * costs.per_tx_overhead + costs.input_remove + 2 * costs.output_insert);
  EXPECT_EQ(index_.size(), 2u);
}

TEST_F(UtxoIndexTest, SameScriptManyUtxosPaginationOrderStable) {
  for (std::uint8_t i = 0; i < 50; ++i) {
    index_.insert(op(i, i), bitcoin::TxOut{i + 1, script(1)}, 100 - i, meter_);
  }
  auto first = index_.utxos_for_script(script(1), meter_);
  auto second = index_.utxos_for_script(script(1), meter_);
  EXPECT_EQ(first.size(), 50u);
  EXPECT_EQ(first, second);  // deterministic order for pagination
  for (std::size_t i = 1; i < first.size(); ++i) {
    EXPECT_GE(first[i - 1].height, first[i].height);
  }
}

TEST_F(UtxoIndexTest, PagedReadReturnsWindowAndMetersOnlyIt) {
  for (std::uint8_t i = 0; i < 10; ++i) {
    index_.insert(op(i), bitcoin::TxOut{i + 1, script(1)}, 100 - i, meter_);
  }
  auto full = index_.utxos_for_script(script(1), meter_);
  ASSERT_EQ(full.size(), 10u);

  std::vector<StoredUtxo> page;
  auto before = meter_.count();
  std::size_t total = index_.utxos_for_script(script(1), meter_, 3, 4, page);
  EXPECT_EQ(total, 10u);
  ASSERT_EQ(page.size(), 4u);
  // Charged per returned entry, not per entry of the full list.
  EXPECT_EQ(meter_.count() - before, 4 * index_.costs().stable_utxo_read);
  for (std::size_t i = 0; i < page.size(); ++i) {
    EXPECT_EQ(page[i].outpoint, full[3 + i].outpoint);
    EXPECT_EQ(page[i].height, full[3 + i].height);
  }

  // Offset past the end: nothing copied, nothing charged, total still right.
  page.clear();
  before = meter_.count();
  EXPECT_EQ(index_.utxos_for_script(script(1), meter_, 10, 4, page), 10u);
  EXPECT_TRUE(page.empty());
  EXPECT_EQ(meter_.count(), before);
}

TEST_F(UtxoIndexTest, PagedReadAppliesKeepPredicateBeforeRanking) {
  for (std::uint8_t i = 0; i < 6; ++i) {
    index_.insert(op(i), bitcoin::TxOut{i + 1, script(1)}, 10 + i, meter_);
  }
  // Filter out even-tagged outpoints; offsets must index the filtered view.
  auto keep = [](const bitcoin::OutPoint& o) { return o.txid.data[0] % 2 == 1; };
  std::vector<StoredUtxo> page;
  std::size_t total = index_.utxos_for_script_paged(script(1), meter_, 1, 2, page, keep);
  EXPECT_EQ(total, 3u);  // tags 1, 3, 5 survive
  ASSERT_EQ(page.size(), 2u);
  for (const auto& u : page) EXPECT_EQ(u.outpoint.txid.data[0] % 2, 1);
}

TEST_F(UtxoIndexTest, DigestIsOrderInsensitiveAndContentSensitive) {
  UtxoIndex a, b;
  ic::InstructionMeter meter;
  a.insert(op(1), bitcoin::TxOut{100, script(1)}, 10, meter);
  a.insert(op(2), bitcoin::TxOut{200, script(2)}, 20, meter);
  b.insert(op(2), bitcoin::TxOut{200, script(2)}, 20, meter);
  b.insert(op(1), bitcoin::TxOut{100, script(1)}, 10, meter);
  EXPECT_EQ(a.digest(), b.digest());  // insertion order does not matter

  b.remove(op(2), meter);
  EXPECT_NE(a.digest(), b.digest());
  b.insert(op(2), bitcoin::TxOut{201, script(2)}, 20, meter);  // value differs
  EXPECT_NE(a.digest(), b.digest());
}

// Pins the lookup behavior of the word-at-a-time ScriptHash: scripts of every
// tail length (0..40 bytes, covering empty, sub-word, word-aligned, and
// multi-word cases plus realistic P2PKH/P2WSH sizes) must round-trip through
// the script index, and absent scripts must miss.
TEST_F(UtxoIndexTest, ScriptHashLookupBehaviorAcrossLengths) {
  std::vector<util::Bytes> scripts;
  for (std::size_t len = 0; len <= 40; ++len) {
    util::Bytes s(len);
    for (std::size_t i = 0; i < len; ++i) s[i] = static_cast<std::uint8_t>(0xA0 + len + i);
    scripts.push_back(std::move(s));
  }
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    bitcoin::OutPoint o = op(static_cast<std::uint8_t>(i + 1));
    index_.insert(o, bitcoin::TxOut{static_cast<bitcoin::Amount>(100 * (i + 1)), scripts[i]},
                  static_cast<int>(i), meter_);
  }
  EXPECT_EQ(index_.distinct_scripts(), scripts.size());
  for (std::size_t i = 0; i < scripts.size(); ++i) {
    EXPECT_EQ(index_.balance_of_script(scripts[i], meter_),
              static_cast<bitcoin::Amount>(100 * (i + 1)))
        << "length " << i;
    auto utxos = index_.utxos_for_script(scripts[i], meter_);
    ASSERT_EQ(utxos.size(), 1u) << "length " << i;
    EXPECT_EQ(utxos[0].outpoint, op(static_cast<std::uint8_t>(i + 1)));
  }
  // Absent scripts miss, including near-collisions differing only in the
  // final byte of a partial tail word.
  util::Bytes almost = scripts[11];
  almost.back() ^= 0x01;
  EXPECT_EQ(index_.balance_of_script(almost, meter_), 0);
  EXPECT_TRUE(index_.utxos_for_script(almost, meter_).empty());
  EXPECT_EQ(index_.balance_of_script(script(99), meter_), 0);
}

// The hash itself must give equal results for equal bytes regardless of how
// the vector was produced, and (overwhelmingly likely) differ when any single
// byte differs — guarding against a word loop that reads past the tail.
TEST(ScriptHashTest, EqualBytesHashEqualAndTailBytesMatter) {
  ScriptHash h;
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 16u, 23u, 25u, 40u}) {
    util::Bytes a(len, 0x5C);
    util::Bytes b(len, 0x5C);
    EXPECT_EQ(h(a), h(b));
    if (len == 0) continue;
    for (std::size_t i = 0; i < len; ++i) {
      util::Bytes c = a;
      c[i] ^= 0x80;
      EXPECT_NE(h(a), h(c)) << "flipping byte " << i << " of " << len << " ignored";
    }
  }
}

}  // namespace
}  // namespace icbtc::canister
