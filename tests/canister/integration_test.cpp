// End-to-end tests of the full architecture (Fig. 4): simulated Bitcoin
// network -> per-replica adapters -> IC subnet rounds -> Bitcoin canister.
#include "canister/integration.h"

#include <gtest/gtest.h>

#include <set>

#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "crypto/ripemd160.h"

namespace icbtc::canister {
namespace {

using btcnet::BitcoinNetworkConfig;
using btcnet::BitcoinNetworkHarness;

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() {
    BitcoinNetworkConfig btc_config;
    btc_config.num_nodes = 12;
    btc_config.connections_per_node = 3;
    btc_config.num_dns_seeds = 3;
    btc_config.num_miners = 2;
    btc_config.ipv6_fraction = 1.0;
    harness_ = std::make_unique<BitcoinNetworkHarness>(sim_, params_, btc_config, 2024);
    sim_.run();

    ic::SubnetConfig subnet_config;
    subnet_config.num_nodes = 13;
    subnet_ = std::make_unique<ic::Subnet>(sim_, subnet_config, 31337);

    IntegrationConfig config;
    config.adapter.outbound_connections = 5;
    config.adapter.addr_lower_threshold = 3;
    config.adapter.addr_upper_threshold = 8;
    config.adapter.multi_block_below_height = 1 << 30;
    config.canister = CanisterConfig::for_params(params_);  // δ=6, τ=2
    integration_ = std::make_unique<BitcoinIntegration>(*subnet_, harness_->network(), params_,
                                                        config, 555);
  }

  /// Mines `n` blocks spaced ~10 simulated minutes apart while the subnet
  /// and adapters run.
  void mine_and_run(int n) {
    auto* miner = harness_->miners()[0];
    for (int i = 0; i < n; ++i) {
      sim_.run_until(sim_.now() + 600 * util::kSecond);
      miner->mine_one();
    }
    sim_.run_until(sim_.now() + 120 * util::kSecond);  // let everything settle
  }

  util::Simulation sim_;
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  std::unique_ptr<BitcoinNetworkHarness> harness_;
  std::unique_ptr<ic::Subnet> subnet_;
  std::unique_ptr<BitcoinIntegration> integration_;
};

TEST_F(IntegrationTest, CanisterSyncsFromLiveNetwork) {
  subnet_->start();
  integration_->start();
  mine_and_run(10);
  auto& canister = integration_->canister();
  EXPECT_EQ(canister.tip_height(), harness_->node(0).best_height());
  EXPECT_TRUE(canister.is_synced());
  EXPECT_GE(canister.anchor_height(), 10 - params_.stability_delta);
  EXPECT_GT(integration_->requests_made(), 0u);
}

TEST_F(IntegrationTest, CanisterCatchesUpAfterLateStart) {
  // Mine first, start the integration afterwards (initial sync).
  auto* miner = harness_->miners()[0];
  for (int i = 0; i < 20; ++i) {
    sim_.run_until(sim_.now() + 600 * util::kSecond);
    miner->mine_one();
  }
  sim_.run();
  subnet_->start();
  integration_->start();
  sim_.run_until(sim_.now() + 10 * util::kMinute);
  EXPECT_EQ(integration_->canister().tip_height(), 20);
  EXPECT_TRUE(integration_->canister().is_synced());
}

TEST_F(IntegrationTest, BalanceVisibleThroughApi) {
  subnet_->start();
  integration_->start();

  // Mine a block paying a known address via the harness's first node.
  util::Hash160 key_hash;
  key_hash.data[0] = 0xaa;
  auto& node = harness_->node(0);
  auto block = chain::build_child_block(
      node.tree(), node.best_tip(),
      static_cast<std::uint32_t>(params_.genesis_header.time + sim_.now() / util::kSecond + 600),
      bitcoin::p2pkh_script(key_hash), 50 * bitcoin::kCoin, {}, 0xabcd);
  ASSERT_TRUE(node.submit_block(block));
  mine_and_run(2);

  std::string address = bitcoin::p2pkh_address(key_hash, params_.network);
  auto result = integration_->query_get_balance(address);
  ASSERT_TRUE(result.outcome.ok());
  EXPECT_EQ(result.outcome.value, 50 * bitcoin::kCoin);
  EXPECT_GT(result.latency, 0);

  auto replicated = integration_->replicated_get_balance(address);
  ASSERT_TRUE(replicated.outcome.ok());
  EXPECT_EQ(replicated.outcome.value, 50 * bitcoin::kCoin);
  EXPECT_GT(replicated.latency, result.latency);  // consensus dominates
  EXPECT_GT(replicated.cycles, 0u);
}

TEST_F(IntegrationTest, SendTransactionReachesBitcoinNetworkAndGetsMined) {
  subnet_->start();
  integration_->start();

  // Fund a key we control on the Bitcoin side.
  crypto::PrivateKey key = crypto::PrivateKey::from_seed(util::Bytes{9, 9});
  util::Hash160 key_hash = crypto::hash160(key.public_key().compressed());
  auto& node = harness_->node(0);
  auto funding = chain::build_child_block(
      node.tree(), node.best_tip(),
      static_cast<std::uint32_t>(params_.genesis_header.time + sim_.now() / util::kSecond + 600),
      bitcoin::p2pkh_script(key_hash), 50 * bitcoin::kCoin, {}, 0xfeed);
  ASSERT_TRUE(node.submit_block(funding));
  mine_and_run(1);

  // Build a signed spend and submit it through the canister.
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint{funding.transactions[0].txid(), 0};
  tx.inputs.push_back(in);
  util::Hash160 dest;
  dest.data[0] = 0xdd;
  tx.outputs.push_back(bitcoin::TxOut{49 * bitcoin::kCoin, bitcoin::p2pkh_script(dest)});
  auto lock = bitcoin::p2pkh_script(key_hash);
  auto digest = bitcoin::legacy_sighash(tx, 0, lock);
  tx.inputs[0].script_sig =
      bitcoin::p2pkh_script_sig(key.sign(digest), key.public_key().compressed());

  auto submit = integration_->replicated_send_transaction(tx.serialize());
  EXPECT_EQ(submit.outcome, Status::kOk);

  // Let the request loop forward it to an adapter, the adapter advertise it,
  // and the Bitcoin nodes pull it into their mempools.
  sim_.run_until(sim_.now() + 3 * util::kMinute);
  bool in_some_mempool = false;
  for (std::size_t i = 0; i < 12; ++i) {
    if (harness_->node(i).in_mempool(tx.txid())) in_some_mempool = true;
  }
  EXPECT_TRUE(in_some_mempool);

  // A miner includes it; the canister then sees the new output.
  mine_and_run(2);
  std::string dest_address = bitcoin::p2pkh_address(dest, params_.network);
  auto balance = integration_->query_get_balance(dest_address);
  ASSERT_TRUE(balance.outcome.ok());
  EXPECT_EQ(balance.outcome.value, 49 * bitcoin::kCoin);
}

TEST_F(IntegrationTest, ReorgOnBitcoinSideIsTracked) {
  subnet_->start();
  integration_->start();
  mine_and_run(3);
  ASSERT_EQ(integration_->canister().tip_height(), 3);

  // A second miner secretly builds a longer fork from height 1 and releases
  // it: the canister follows the heavier chain.
  auto& node = harness_->node(1);
  auto chain_hashes = node.tree().current_chain();
  btcnet::AdversaryMiner fork_miner(node, chain_hashes[1], 0.5, util::Rng(5));
  std::uint32_t t = static_cast<std::uint32_t>(params_.genesis_header.time +
                                               sim_.now() / util::kSecond);
  for (int i = 0; i < 4; ++i) fork_miner.mine_next(t += 600);
  for (const auto& b : fork_miner.private_blocks()) node.submit_block(b);
  sim_.run_until(sim_.now() + 5 * util::kMinute);

  EXPECT_EQ(integration_->canister().tip_height(), 5);  // 1 + 4
  EXPECT_EQ(integration_->canister().header_tree().best_tip(), fork_miner.tip());
}

TEST_F(IntegrationTest, DowntimeStopsRequests) {
  subnet_->start();
  integration_->start();
  mine_and_run(2);
  integration_->set_canister_down(true);
  auto before = integration_->requests_made();
  mine_and_run(3);
  EXPECT_EQ(integration_->requests_made(), before);
  EXPECT_LT(integration_->canister().tip_height(), harness_->node(0).best_height());
  // Service resumes after recovery.
  integration_->set_canister_down(false);
  sim_.run_until(sim_.now() + 5 * util::kMinute);
  EXPECT_EQ(integration_->canister().tip_height(), harness_->node(0).best_height());
}

TEST_F(IntegrationTest, ByzantineProviderConsultedOnlyForByzantineMakers) {
  // With zero corrupt nodes the provider must never be consulted.
  std::size_t calls = 0;
  integration_->set_byzantine_response_provider(
      [&](const adapter::AdapterRequest&, const ic::RoundInfo&) {
        ++calls;
        return std::nullopt;
      });
  subnet_->start();
  integration_->start();
  mine_and_run(2);
  EXPECT_EQ(calls, 0u);
}

TEST_F(IntegrationTest, ByzantineMakerCanDelayButNotCorrupt) {
  // Rebuild with f = 4 corrupt nodes of 13; Byzantine makers serve empty
  // responses (censorship). Honest makers still sync the canister.
  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  subnet_config.num_byzantine = 4;
  ic::Subnet subnet(sim_, subnet_config, 999);
  IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 8;
  config.adapter.multi_block_below_height = 1 << 30;
  config.canister = CanisterConfig::for_params(params_);
  BitcoinIntegration integration(subnet, harness_->network(), params_, config, 777);
  integration.set_byzantine_response_provider(
      [](const adapter::AdapterRequest&, const ic::RoundInfo&) {
        return adapter::AdapterResponse{};  // stonewall
      });
  subnet.start();
  integration.start();
  auto* miner = harness_->miners()[0];
  for (int i = 0; i < 5; ++i) {
    sim_.run_until(sim_.now() + 600 * util::kSecond);
    miner->mine_one();
  }
  sim_.run_until(sim_.now() + 5 * util::kMinute);
  EXPECT_EQ(integration.canister().tip_height(), 5);
  EXPECT_TRUE(integration.canister().is_synced());
}

TEST_F(IntegrationTest, DowntimeForkInjectionBlockedByHonestMakers) {
  // The Lemma IV.3 scenario end-to-end: during canister downtime an
  // adversary prepares a private fork; on recovery, Byzantine block makers
  // feed it one block per round with N = {}. With honest makers in the
  // rotation, the canister ends up on the honest chain.
  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  subnet_config.num_byzantine = 4;
  ic::Subnet subnet(sim_, subnet_config, 246);
  IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 8;
  config.adapter.multi_block_below_height = 0;  // single-block mode
  config.canister = CanisterConfig::for_params(params_);
  BitcoinIntegration integration(subnet, harness_->network(), params_, config, 247);
  subnet.start();
  integration.start();

  auto* miner = harness_->miners()[0];
  auto mine_now = [&](int n) {
    for (int i = 0; i < n; ++i) {
      sim_.run_until(sim_.now() + 600 * util::kSecond);
      miner->mine_one();
    }
    sim_.run_until(sim_.now() + 3 * util::kMinute);
  };
  mine_now(3);
  ASSERT_EQ(integration.canister().tip_height(), 3);

  // Downtime: the adversary forks off the canister's last-known tip while
  // the honest chain keeps growing.
  integration.set_canister_down(true);
  btcnet::AdversaryMiner fork(harness_->node(0),
                              integration.canister().header_tree().best_tip(), 0.3,
                              util::Rng(14));
  std::uint32_t t = static_cast<std::uint32_t>(params_.genesis_header.time +
                                               sim_.now() / util::kSecond);
  for (int i = 0; i < 4; ++i) fork.mine_next(t += 600);
  mine_now(6);  // honest chain outruns the fork during the outage

  // Recovery: Byzantine makers serve one fork block per round, N = {}.
  std::size_t next_fork_block = 0;
  integration.set_byzantine_response_provider(
      [&](const adapter::AdapterRequest&, const ic::RoundInfo&) {
        adapter::AdapterResponse response;
        if (next_fork_block < fork.private_blocks().size()) {
          const auto& block = fork.private_blocks()[next_fork_block++];
          response.blocks.emplace_back(block, block.header);
        }
        return response;
      });
  integration.set_canister_down(false);
  sim_.run_until(sim_.now() + 5 * util::kMinute);

  // Honest makers reveal the real chain: the canister converges on it, and
  // the adversary's fork never becomes the best chain.
  EXPECT_EQ(integration.canister().header_tree().best_tip(),
            harness_->node(0).best_tip());
  EXPECT_TRUE(integration.canister().is_synced());
  EXPECT_NE(integration.canister().header_tree().best_tip(), fork.tip());
}

TEST_F(IntegrationTest, EveryReplicaRunsItsOwnAdapter) {
  EXPECT_EQ(integration_->num_adapters(), 13u);
  subnet_->start();
  integration_->start();
  sim_.run_until(sim_.now() + 2 * util::kMinute);
  // Adapters pick their peers independently at random.
  std::set<std::vector<btcnet::NodeId>> peer_sets;
  for (std::uint32_t i = 0; i < 13; ++i) {
    peer_sets.insert(integration_->adapter_of(i).connected_peers());
  }
  EXPECT_GT(peer_sets.size(), 1u);
}

}  // namespace
}  // namespace icbtc::canister
