// The unstable-block delta index: unit tests for the filter/delta/memo
// machinery plus the randomized differential test pitting the indexed read
// path against the naive scan (kept as the test oracle). The contract is
// strict: responses AND metered instruction totals must be byte-identical
// across workloads with reorgs across the anchor, pruned forks, and
// unstable-chain gaps.
#include "canister/unstable_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "bitcoin/address.h"
#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "ic/metering.h"
#include "obs/metrics.h"
#include "chain/block_builder.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace icbtc::canister {
namespace {

using bitcoin::Block;
using bitcoin::ChainParams;
using util::Hash256;

// ---------------------------------------------------------------------------
// ScriptFilter

TEST(ScriptFilterTest, NoFalseNegatives) {
  util::Rng rng(11);
  ScriptFilter filter;
  std::vector<std::size_t> hashes;
  for (int i = 0; i < 300; ++i) {
    std::size_t h = rng.next();
    hashes.push_back(h);
    filter.add(h);
  }
  for (std::size_t h : hashes) EXPECT_TRUE(filter.may_contain(h));
}

TEST(ScriptFilterTest, EmptyFilterRejectsEverything) {
  ScriptFilter filter;
  util::Rng rng(12);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(filter.may_contain(rng.next()));
}

// ---------------------------------------------------------------------------
// Delta construction

Block delta_test_block(int n_txs, std::uint64_t seed) {
  util::Rng rng(seed);
  Block block;
  bitcoin::Transaction coinbase;
  coinbase.inputs.push_back(bitcoin::TxIn{bitcoin::OutPoint::null(), {0x51}, 0xffffffff});
  coinbase.outputs.push_back(bitcoin::TxOut{50, {0x6a}});  // OP_RETURN
  block.transactions.push_back(coinbase);
  for (int t = 0; t < n_txs; ++t) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout.txid = rng.next_hash();
    in.prevout.vout = static_cast<std::uint32_t>(rng.next() % 4);
    tx.inputs.push_back(in);
    int n_outs = 1 + static_cast<int>(rng.next() % 4);
    for (int o = 0; o < n_outs; ++o) {
      util::Hash160 h;
      h.data[0] = static_cast<std::uint8_t>(rng.next() % 16);  // few distinct scripts
      tx.outputs.push_back(
          bitcoin::TxOut{static_cast<bitcoin::Amount>(1000 + o), bitcoin::p2pkh_script(h)});
    }
    block.transactions.push_back(tx);
  }
  return block;
}

TEST(UnstableIndexTest, DeltaRecordsAddsAndSpends) {
  Block block = delta_test_block(20, 21);
  UnstableIndex index;
  index.add_block(block.hash(), block, 7, nullptr);

  const BlockDelta* delta = index.delta(block.hash());
  ASSERT_NE(delta, nullptr);
  EXPECT_EQ(delta->height, 7);
  EXPECT_EQ(delta->transactions, block.transactions.size());
  // Coinbase inputs are not spends; every other input is.
  EXPECT_EQ(delta->spent.size(), 20u);
  std::size_t outputs = 0;
  for (const auto& tx : block.transactions) outputs += tx.outputs.size();
  EXPECT_EQ(delta->added_outputs, outputs);  // OP_RETURN included (metering parity)
  for (const auto& [script, utxos] : delta->added) {
    EXPECT_TRUE(delta->filter.may_contain(ScriptHash{}(script)));
    for (const auto& u : utxos) EXPECT_EQ(u.height, 7);
  }
  EXPECT_GT(index.resident_bytes(), 0u);
  index.remove_block(block.hash());
  EXPECT_EQ(index.delta(block.hash()), nullptr);
  EXPECT_EQ(index.resident_bytes(), 0u);
}

TEST(UnstableIndexTest, DeltaConstructionIsPoolInvariant) {
  Block block = delta_test_block(40, 22);
  UnstableIndex serial;
  serial.add_block(block.hash(), block, 3, nullptr);

  parallel::ThreadPool pool(3);
  UnstableIndex pooled;
  pooled.add_block(block.hash(), block, 3, &pool);

  const BlockDelta* a = serial.delta(block.hash());
  const BlockDelta* b = pooled.delta(block.hash());
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->spent, b->spent);
  EXPECT_EQ(a->added_outputs, b->added_outputs);
  ASSERT_EQ(a->added.size(), b->added.size());
  for (const auto& [script, utxos] : a->added) {
    auto it = b->added.find(script);
    ASSERT_NE(it, b->added.end());
    EXPECT_EQ(utxos, it->second);  // vectors in tx order: byte-identical
  }
  EXPECT_EQ(a->resident_bytes, b->resident_bytes);
}

// ---------------------------------------------------------------------------
// Canister-level: memo behavior and invalidation (via canister.delta.*)

class DeltaMemoTest : public ::testing::Test {
 protected:
  DeltaMemoTest()
      : canister_(params_, CanisterConfig::for_params(params_)),
        build_tree_(params_, params_.genesis_header) {
    canister_.set_metrics(&registry_);
  }

  util::Bytes script(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_script(h);
  }

  std::string address(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_address(h, bitcoin::Network::kRegtest);
  }

  void feed_one(std::uint8_t tag) {
    time_ += 600;
    Block b = chain::build_child_block(build_tree_, tip_, time_, script(tag),
                                       50 * bitcoin::kCoin, {}, tag_++);
    tip_ = b.hash();
    build_tree_.accept(b.header, now_s());
    adapter::AdapterResponse response;
    response.blocks.emplace_back(b, b.header);
    canister_.process_response(response, now_s());
  }

  std::int64_t now_s() const { return static_cast<std::int64_t>(time_) + 4000; }

  std::uint64_t hits() { return registry_.counter("canister.delta.memo_hits").value(); }
  std::uint64_t misses() { return registry_.counter("canister.delta.memo_misses").value(); }

  const ChainParams& params_ = ChainParams::regtest();
  obs::MetricsRegistry registry_;
  BitcoinCanister canister_;
  chain::HeaderTree build_tree_;
  Hash256 tip_ = params_.genesis_header.hash();
  std::uint32_t time_ = params_.genesis_header.time;
  std::uint64_t tag_ = 1;
};

TEST_F(DeltaMemoTest, RepeatQueriesHitAndChargeIdentically) {
  for (int i = 0; i < 4; ++i) feed_one(1);
  ASSERT_EQ(registry_.counter("canister.delta.builds").value(), 4u);

  ic::InstructionMeter::Segment first(canister_.meter());
  auto cold = canister_.get_balance(address(1));
  std::uint64_t cold_cost = first.sample();
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(misses(), 1u);
  EXPECT_EQ(hits(), 0u);

  ic::InstructionMeter::Segment second(canister_.meter());
  auto hot = canister_.get_balance(address(1));
  std::uint64_t hot_cost = second.sample();
  ASSERT_TRUE(hot.ok());
  EXPECT_EQ(hot.value, cold.value);
  EXPECT_EQ(hits(), 1u);
  // The metering contract: the memo changes host time only, never the
  // modelled instruction count.
  EXPECT_EQ(hot_cost, cold_cost);
}

TEST_F(DeltaMemoTest, BlockArrivalInvalidatesMemo) {
  for (int i = 0; i < 3; ++i) feed_one(1);
  (void)canister_.get_balance(address(1));
  (void)canister_.get_balance(address(1));
  EXPECT_EQ(hits(), 1u);

  feed_one(1);  // delta mutation: memo flushed
  auto fresh = canister_.get_balance(address(1));
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value, 4 * 50 * bitcoin::kCoin);
  EXPECT_EQ(hits(), 1u);  // no stale hit
  EXPECT_EQ(misses(), 2u);
}

TEST_F(DeltaMemoTest, AnchorAdvanceShrinksIndex) {
  for (int i = 0; i < 10; ++i) feed_one(1);  // δ=6: anchor advances
  EXPECT_GT(canister_.anchor_height(), 0);
  EXPECT_EQ(canister_.unstable_index().size(), canister_.unstable_block_count());
  auto balance = canister_.get_balance(address(1));
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.value, 10 * 50 * bitcoin::kCoin);
}

// ---------------------------------------------------------------------------
// Differential: indexed and sharded-snapshot canisters vs. the serial scan
// oracle across randomized reorg workloads

class DifferentialHarness {
 public:
  explicit DifferentialHarness(std::uint64_t seed)
      : rng_(seed),
        scan_(params_, config(UnstableQueryMode::kScan, 1, false)),
        build_tree_(params_, params_.genesis_header) {
    // Candidates vs. the serial scan oracle: the indexed read path on the
    // unsharded store, then sharded stores with epoch snapshot reads — every
    // response, per-call meter segment, and cumulative total must match the
    // oracle bit-for-bit at every shard count.
    candidates_.push_back(std::make_unique<BitcoinCanister>(
        params_, config(UnstableQueryMode::kIndexed, 1, false)));
    candidates_.push_back(std::make_unique<BitcoinCanister>(
        params_, config(UnstableQueryMode::kIndexed, 4, true)));
    candidates_.push_back(std::make_unique<BitcoinCanister>(
        params_, config(UnstableQueryMode::kIndexed, 16, true)));
    heights_[params_.genesis_header.hash()] = 0;
    by_height_.push_back({params_.genesis_header.hash()});
  }

  static CanisterConfig config(UnstableQueryMode mode, std::size_t shards, bool snapshots) {
    auto c = CanisterConfig::for_params(ChainParams::regtest());
    c.unstable_query_mode = mode;
    c.utxos_per_page = 7;  // force pagination
    c.utxo_shards = shards;
    c.utxo_snapshot_reads = snapshots;
    return c;
  }

  util::Bytes script(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_script(h);
  }

  std::string address(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_address(h, bitcoin::Network::kRegtest);
  }

  /// One random evolution step: extend the best tip, race a fork, or create
  /// and later fill block-data gaps.
  void step() {
    std::uint64_t dice = rng_.next() % 10;
    if (dice < 6) {
      extend_tip();
    } else if (dice < 8) {
      race_fork();
    } else {
      withhold_block();
    }
    if (!withheld_.empty() && rng_.next() % 3 == 0) release_withheld();
  }

  /// Compares every endpoint of every candidate against the scan oracle;
  /// each is queried twice so the memoized (hot) path must also charge
  /// identically.
  void check_equivalence() {
    for (auto& candidate : candidates_) {
      BitcoinCanister& other = *candidate;
      ASSERT_EQ(scan_.is_synced(), other.is_synced());
      ASSERT_EQ(scan_.anchor_height(), other.anchor_height());
      ASSERT_EQ(scan_.tip_height(), other.tip_height());
      ASSERT_EQ(scan_.unstable_block_count(), other.unstable_block_count());
      ASSERT_EQ(scan_.utxo_digest(), other.utxo_digest())
          << "digest diverged at " << other.config().utxo_shards << " shards";
    }

    for (std::uint8_t tag = 1; tag <= kTags; ++tag) {
      int minconf = static_cast<int>(rng_.next() % 9);
      for (int repeat = 0; repeat < 2; ++repeat) {
        compare_balance(tag, minconf);
        compare_utxos(tag, minconf);
      }
    }
    compare_fee_percentiles();
    for (auto& candidate : candidates_) {
      ASSERT_EQ(scan_.meter().count(), candidate->meter().count())
          << "cumulative metered instructions diverged at "
          << candidate->config().utxo_shards << " shards";
    }
  }

  void compare_balance(std::uint8_t tag, int minconf) {
    ic::InstructionMeter::Segment s(scan_.meter());
    auto a = scan_.get_balance(address(tag), minconf);
    std::uint64_t scan_cost = s.sample();
    for (auto& candidate : candidates_) {
      ic::InstructionMeter::Segment i(candidate->meter());
      auto b = candidate->get_balance(address(tag), minconf);
      std::uint64_t candidate_cost = i.sample();
      ASSERT_EQ(a.status, b.status);
      ASSERT_EQ(a.value, b.value);
      ASSERT_EQ(scan_cost, candidate_cost)
          << "get_balance metering diverged at " << candidate->config().utxo_shards << " shards";
    }
  }

  void compare_utxos(std::uint8_t tag, int minconf) {
    std::vector<GetUtxosRequest> requests(candidates_.size() + 1);
    for (auto& request : requests) {
      request.address = address(tag);
      request.min_confirmations = minconf;
    }
    for (int page = 0; page < 64; ++page) {  // bounded pagination walk
      ic::InstructionMeter::Segment s(scan_.meter());
      auto a = scan_.get_utxos(requests[0]);
      std::uint64_t scan_cost = s.sample();
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        BitcoinCanister& other = *candidates_[c];
        ic::InstructionMeter::Segment i(other.meter());
        auto b = other.get_utxos(requests[c + 1]);
        std::uint64_t candidate_cost = i.sample();
        ASSERT_EQ(a.status, b.status);
        ASSERT_EQ(scan_cost, candidate_cost)
            << "get_utxos metering diverged at " << other.config().utxo_shards << " shards";
        if (!a.ok()) continue;
        ASSERT_EQ(a.value.utxos, b.value.utxos);
        ASSERT_EQ(a.value.tip_hash, b.value.tip_hash);
        ASSERT_EQ(a.value.tip_height, b.value.tip_height);
        // Page tokens byte-identical: offsets into the sharded merged view
        // line up with the serial one.
        ASSERT_EQ(a.value.next_page, b.value.next_page)
            << "page token diverged at " << other.config().utxo_shards << " shards";
        if (b.value.next_page) requests[c + 1].page = b.value.next_page;
      }
      if (!a.ok() || !a.value.next_page) return;
      requests[0].page = a.value.next_page;
    }
    FAIL() << "pagination did not terminate";
  }

  void compare_fee_percentiles() {
    ic::InstructionMeter::Segment s(scan_.meter());
    auto a = scan_.get_current_fee_percentiles();
    std::uint64_t scan_cost = s.sample();
    for (auto& candidate : candidates_) {
      ic::InstructionMeter::Segment i(candidate->meter());
      auto b = candidate->get_current_fee_percentiles();
      ASSERT_EQ(a.status, b.status);
      ASSERT_EQ(a.value, b.value);
      ASSERT_EQ(scan_cost, i.sample());
    }
  }

  void send_random_transaction() {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout.txid = rng_.next_hash();
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{1234, script(1)});
    util::Bytes raw = tx.serialize();
    util::Bytes garbage = rng_.next_bytes(1 + rng_.next() % 16);
    Status accepted = scan_.send_transaction(raw);
    Status rejected = scan_.send_transaction(garbage);
    for (auto& candidate : candidates_) {
      ASSERT_EQ(accepted, candidate->send_transaction(raw));
      ASSERT_EQ(scan_.pending_transactions(), candidate->pending_transactions());
      ASSERT_EQ(rejected, candidate->send_transaction(garbage));
    }
  }

  int steps_run() const { return steps_; }

 private:
  static constexpr std::uint8_t kTags = 5;

  Block make_block(const Hash256& parent) {
    std::vector<bitcoin::Transaction> txs;
    int n_txs = static_cast<int>(rng_.next() % 4);
    for (int t = 0; t < n_txs; ++t) {
      bitcoin::Transaction tx;
      bitcoin::TxIn in;
      // Spend a known unstable/stable output half the time (exercises the
      // spent-set filter), a random unknown outpoint otherwise (tolerated).
      if (!created_.empty() && rng_.next() % 2 == 0) {
        in.prevout = created_[rng_.next() % created_.size()];
      } else {
        in.prevout.txid = rng_.next_hash();
      }
      tx.inputs.push_back(in);
      int n_outs = 1 + static_cast<int>(rng_.next() % 3);
      for (int o = 0; o < n_outs; ++o) {
        auto tag = static_cast<std::uint8_t>(1 + rng_.next() % kTags);
        tx.outputs.push_back(
            bitcoin::TxOut{static_cast<bitcoin::Amount>(500 + 10 * o), script(tag)});
      }
      txs.push_back(std::move(tx));
    }
    time_ += 600;
    auto coinbase_tag = static_cast<std::uint8_t>(1 + rng_.next() % kTags);
    Block b = chain::build_child_block(build_tree_, parent, time_, script(coinbase_tag),
                                       50 * bitcoin::kCoin, std::move(txs), tag_++);
    EXPECT_EQ(build_tree_.accept(b.header, now_s()), chain::AcceptResult::kAccepted);
    int height = build_tree_.find(b.hash())->height;
    heights_[b.hash()] = height;
    if (static_cast<std::size_t>(height) >= by_height_.size()) by_height_.resize(height + 1);
    by_height_[height].push_back(b.hash());
    for (const auto& tx : b.transactions) {
      Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
        created_.push_back(bitcoin::OutPoint{txid, v});
      }
    }
    return b;
  }

  void feed(const std::vector<Block>& blocks, const std::vector<bitcoin::BlockHeader>& headers) {
    adapter::AdapterResponse response;
    for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
    response.next_headers = headers;
    auto a = scan_.process_response(response, now_s());
    for (auto& candidate : candidates_) {
      auto b = candidate->process_response(response, now_s());
      ASSERT_EQ(a.blocks_stored, b.blocks_stored);
      ASSERT_EQ(a.headers_appended, b.headers_appended);
      ASSERT_EQ(a.anchors_advanced, b.anchors_advanced);
    }
  }

  void extend_tip() {
    Block b = make_block(tip_);
    tip_ = b.hash();
    feed({b}, {});
    ++steps_;
  }

  void race_fork() {
    // Branch from a random recent height (can cross what will soon be the
    // anchor) and race 1-3 blocks; the canister prunes the losing branch on
    // the next reroot.
    int best = build_tree_.find(tip_) != nullptr ? heights_.at(tip_) : 0;
    int back = 1 + static_cast<int>(rng_.next() % 4);
    int from = std::max(0, best - back);
    const auto& candidates = by_height_[from];
    Hash256 parent = candidates[rng_.next() % candidates.size()];
    int len = 1 + static_cast<int>(rng_.next() % 3);
    std::vector<Block> branch;
    for (int i = 0; i < len; ++i) {
      Block b = make_block(parent);
      parent = b.hash();
      branch.push_back(std::move(b));
    }
    // A longer branch can win: the canisters reorg their current chain.
    if (heights_.at(parent) > heights_.at(tip_)) tip_ = parent;
    feed(branch, {});
    ++steps_;
  }

  void withhold_block() {
    // Header-only delivery: the next block's header enters the tree but its
    // data is withheld — queries must not see past the gap.
    Block gap = make_block(tip_);
    Block after = make_block(gap.hash());
    tip_ = after.hash();
    feed({}, {gap.header, after.header});
    feed({after}, {});  // stored above the gap
    withheld_.push_back(std::move(gap));
    ++steps_;
  }

  void release_withheld() {
    std::vector<Block> blocks = {withheld_.back()};
    withheld_.pop_back();
    feed(blocks, {});
  }

  std::int64_t now_s() const { return static_cast<std::int64_t>(time_) + 4000; }

  const ChainParams& params_ = ChainParams::regtest();  // δ=6, τ=2
  util::Rng rng_;
  BitcoinCanister scan_;
  std::vector<std::unique_ptr<BitcoinCanister>> candidates_;
  chain::HeaderTree build_tree_;
  Hash256 tip_ = ChainParams::regtest().genesis_header.hash();
  std::uint32_t time_ = ChainParams::regtest().genesis_header.time;
  std::uint64_t tag_ = 1;
  int steps_ = 0;
  std::vector<Block> withheld_;
  std::vector<bitcoin::OutPoint> created_;
  std::unordered_map<Hash256, int> heights_;
  std::vector<std::vector<Hash256>> by_height_;
};

TEST(UnstableIndexDifferentialTest, RandomizedReorgWorkloadsMatchScanExactly) {
  for (std::uint64_t seed : {101ULL, 202ULL, 303ULL}) {
    DifferentialHarness h(seed);
    for (int step = 0; step < 45; ++step) {
      h.step();
      if (step % 3 == 0) h.check_equivalence();
      if (step % 7 == 0) h.send_random_transaction();
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "diverged at seed " << seed << " step " << step;
      }
    }
    h.check_equivalence();
    EXPECT_GT(h.steps_run(), 0);
  }
}

}  // namespace
}  // namespace icbtc::canister
