// Sharded stable UTXO store: shard-selection stability (known-answer tests),
// shard-count invariance of digests/queries/metering/pagination, epoch
// snapshot reads under a concurrent writer, and point-op/move semantics.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bitcoin/address.h"
#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "canister/utxo_index.h"
#include "chain/block_builder.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace icbtc::canister {
namespace {

using bitcoin::Block;
using bitcoin::ChainParams;
using util::Hash256;

util::Bytes script(std::uint8_t tag) {
  util::Hash160 h;
  h.data[0] = tag;
  return bitcoin::p2pkh_script(h);
}

// ---------------------------------------------------------------------------
// Shard selection: serialization-stable reduction

TEST(StableShardHashTest, KnownAnswers) {
  // FNV-1a 64 reference values: the function is part of the (future)
  // checkpoint format, so these must never change. A failure here means the
  // shard assignment of every persisted UTXO set silently moved.
  EXPECT_EQ(stable_script_shard_hash(util::Bytes{}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(stable_script_shard_hash(util::Bytes{'a'}), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(stable_script_shard_hash(util::Bytes{'a', 'b', 'c'}), 0xe71fa2190541574bULL);
  EXPECT_EQ(stable_script_shard_hash(util::Bytes{0x00}), 0xaf63bd4c8601b7dfULL);
  EXPECT_EQ(stable_script_shard_hash(util::Bytes{0xff, 0x00, 0xff}), 0xf920341be414d4afULL);
}

TEST(StableShardHashTest, IndependentOfProcessLocalScriptHash) {
  // ScriptHash (the in-memory table hash) is free to change per process;
  // shard ids must come from the stable reduction only.
  for (std::uint8_t tag = 0; tag < 32; ++tag) {
    util::Bytes s = script(tag);
    UtxoIndex index(InstructionCosts{}, UtxoIndex::ShardConfig{16, false});
    EXPECT_EQ(index.shard_of(s), stable_script_shard_hash(s) % 16);
  }
}

// ---------------------------------------------------------------------------
// Shard-count invariance at the UtxoIndex level

/// Deterministic block stream exercising every routing path: inserts across
/// many scripts, spends of prior blocks' outputs (per-shard probe), spends of
/// same-block outputs (block-local routing), spends of unknown outpoints
/// (charged misses), OP_RETURN outputs, and occasional duplicate spends.
std::vector<Block> shard_workload(std::uint64_t seed, int n_blocks) {
  util::Rng rng(seed);
  std::vector<bitcoin::OutPoint> live;
  std::vector<Block> blocks;
  for (int h = 0; h < n_blocks; ++h) {
    Block block;
    bitcoin::Transaction coinbase;
    bitcoin::TxIn cb_in;
    cb_in.prevout = bitcoin::OutPoint::null();
    cb_in.script_sig = rng.next_bytes(4);  // unique txid per block
    coinbase.inputs.push_back(cb_in);
    coinbase.outputs.push_back(
        bitcoin::TxOut{50, script(static_cast<std::uint8_t>(rng.next() % 32))});
    if (rng.next() % 4 == 0) {
      coinbase.outputs.push_back(
          bitcoin::TxOut{0, bitcoin::op_return_script(util::Bytes{0x42})});
    }
    block.transactions.push_back(coinbase);

    std::vector<bitcoin::OutPoint> created_this_block;
    {
      Hash256 txid = block.transactions[0].txid();
      for (std::uint32_t v = 0; v < block.transactions[0].outputs.size(); ++v) {
        created_this_block.push_back(bitcoin::OutPoint{txid, v});
      }
    }
    int n_txs = 2 + static_cast<int>(rng.next() % 6);
    for (int t = 0; t < n_txs; ++t) {
      bitcoin::Transaction tx;
      int n_ins = 1 + static_cast<int>(rng.next() % 3);
      for (int i = 0; i < n_ins; ++i) {
        bitcoin::TxIn in;
        std::uint64_t dice = rng.next() % 10;
        if (dice < 5 && !live.empty()) {
          std::size_t pick = rng.next() % live.size();
          in.prevout = live[pick];
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
        } else if (dice < 7 && !created_this_block.empty()) {
          in.prevout = created_this_block[rng.next() % created_this_block.size()];
        } else {
          in.prevout.txid = rng.next_hash();  // unknown: tolerated miss
        }
        tx.inputs.push_back(in);
      }
      int n_outs = 1 + static_cast<int>(rng.next() % 4);
      for (int o = 0; o < n_outs; ++o) {
        auto tag = static_cast<std::uint8_t>(rng.next() % 32);
        tx.outputs.push_back(
            bitcoin::TxOut{static_cast<bitcoin::Amount>(100 + 7 * o), script(tag)});
      }
      Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
        created_this_block.push_back(bitcoin::OutPoint{txid, v});
      }
      block.transactions.push_back(std::move(tx));
    }
    for (const auto& outpoint : created_this_block) live.push_back(outpoint);
    blocks.push_back(std::move(block));
  }
  return blocks;
}

struct ReplayResult {
  Hash256 digest;
  std::uint64_t metered = 0;
  std::size_t size = 0;
  std::uint64_t memory = 0;
  std::size_t scripts = 0;
  std::vector<std::vector<StoredUtxo>> per_script;
  std::vector<std::uint64_t> per_script_cost;
  std::uint64_t critical_path = 0;
};

ReplayResult replay(const std::vector<Block>& blocks, std::size_t shards, bool snapshots,
                    parallel::ThreadPool* pool) {
  UtxoIndex index(InstructionCosts{}, UtxoIndex::ShardConfig{shards, snapshots});
  ic::InstructionMeter meter;
  ReplayResult result;
  for (std::size_t h = 0; h < blocks.size(); ++h) {
    BlockApplyStats stats =
        index.apply_block(blocks[h], static_cast<int>(h + 1), meter, pool);
    EXPECT_EQ(stats.instructions + (h == 0 ? 0 : result.metered), meter.count());
    result.metered = meter.count();
    result.critical_path += stats.critical_path_instructions;
  }
  result.digest = index.digest();
  result.size = index.size();
  result.memory = index.memory_bytes();
  result.scripts = index.distinct_scripts();
  for (std::uint8_t tag = 0; tag < 32; ++tag) {
    ic::InstructionMeter read_meter;
    result.per_script.push_back(index.utxos_for_script(script(tag), read_meter));
    result.per_script_cost.push_back(read_meter.count());
  }
  return result;
}

TEST(UtxoShardInvarianceTest, DigestQueriesAndMeteringIdenticalAcrossShardCounts) {
  std::vector<Block> blocks = shard_workload(717, 30);
  parallel::ThreadPool pool(3);
  ReplayResult serial = replay(blocks, 1, false, nullptr);
  ASSERT_GT(serial.size, 0u);
  for (std::size_t shards : {1u, 4u, 16u}) {
    for (bool snapshots : {false, true}) {
      for (parallel::ThreadPool* p : {static_cast<parallel::ThreadPool*>(nullptr), &pool}) {
        ReplayResult got = replay(blocks, shards, snapshots, p);
        EXPECT_EQ(got.digest, serial.digest)
            << shards << " shards, snapshots=" << snapshots << ", pool=" << (p != nullptr);
        EXPECT_EQ(got.metered, serial.metered) << shards << " shards";
        EXPECT_EQ(got.size, serial.size);
        EXPECT_EQ(got.memory, serial.memory);
        EXPECT_EQ(got.scripts, serial.scripts);
        EXPECT_EQ(got.per_script, serial.per_script) << shards << " shards";
        EXPECT_EQ(got.per_script_cost, serial.per_script_cost) << shards << " shards";
      }
    }
  }
}

TEST(UtxoShardInvarianceTest, CriticalPathNeverExceedsSerialInstructions) {
  std::vector<Block> blocks = shard_workload(718, 12);
  ReplayResult serial = replay(blocks, 1, false, nullptr);
  ReplayResult sharded = replay(blocks, 8, true, nullptr);
  // At 1 shard the modelled critical path IS the serial cost; with more
  // shards it can only shrink (serial prologue + max shard <= sum).
  EXPECT_EQ(serial.critical_path, serial.metered);
  EXPECT_LT(sharded.critical_path, serial.metered);
  EXPECT_EQ(sharded.metered, serial.metered);
}

TEST(UtxoShardInvarianceTest, MetricsSnapshotsMatchModuloShardGauges) {
  std::vector<Block> blocks = shard_workload(719, 10);
  auto run = [&](std::size_t shards) {
    auto registry = std::make_unique<obs::MetricsRegistry>();
    UtxoIndex index(InstructionCosts{}, UtxoIndex::ShardConfig{shards, true});
    index.set_metrics(registry.get());
    ic::InstructionMeter meter;
    for (std::size_t h = 0; h < blocks.size(); ++h) {
      index.apply_block(blocks[h], static_cast<int>(h + 1), meter, nullptr);
    }
    return registry;
  };
  auto one = run(1);
  auto four = run(4);
  // Counters and logical-size gauges are shard-count-invariant; only the
  // utxo.shard.{count,max_utxos,min_utxos} layout gauges may differ.
  EXPECT_EQ(one->counter("utxo.inserts").value(), four->counter("utxo.inserts").value());
  EXPECT_EQ(one->counter("utxo.removes").value(), four->counter("utxo.removes").value());
  EXPECT_EQ(one->gauge("utxo.size").value(), four->gauge("utxo.size").value());
  EXPECT_EQ(one->gauge("utxo.memory_bytes").value(), four->gauge("utxo.memory_bytes").value());
  EXPECT_EQ(one->gauge("utxo.shard.epoch").value(), four->gauge("utxo.shard.epoch").value());
  EXPECT_EQ(one->gauge("utxo.shard.count").value(), 1);
  EXPECT_EQ(four->gauge("utxo.shard.count").value(), 4);
  EXPECT_EQ(one->gauge("utxo.shard.max_utxos").value(), one->gauge("utxo.size").value());
}

// ---------------------------------------------------------------------------
// Point mutations and value semantics

TEST(UtxoShardPointOpTest, PointOpsMatchSerialSemantics) {
  UtxoIndex serial(InstructionCosts{}, UtxoIndex::ShardConfig{1, false});
  UtxoIndex sharded(InstructionCosts{}, UtxoIndex::ShardConfig{8, true});
  ic::InstructionMeter serial_meter;
  ic::InstructionMeter sharded_meter;
  util::Rng rng(31);
  std::vector<bitcoin::OutPoint> created;
  for (int i = 0; i < 400; ++i) {
    if (rng.next() % 3 != 0 || created.empty()) {
      bitcoin::OutPoint outpoint{rng.next_hash(), static_cast<std::uint32_t>(rng.next() % 3)};
      bitcoin::TxOut out{static_cast<bitcoin::Amount>(1 + rng.next() % 1000),
                         script(static_cast<std::uint8_t>(rng.next() % 24))};
      int height = static_cast<int>(rng.next() % 100);
      serial.insert(outpoint, out, height, serial_meter);
      sharded.insert(outpoint, out, height, sharded_meter);
      created.push_back(outpoint);
    } else {
      std::size_t pick = rng.next() % created.size();
      serial.remove(created[pick], serial_meter);
      sharded.remove(created[pick], sharded_meter);
      created.erase(created.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  // A miss, charged on both.
  bitcoin::OutPoint missing{rng.next_hash(), 0};
  serial.remove(missing, serial_meter);
  sharded.remove(missing, sharded_meter);

  EXPECT_EQ(serial_meter.count(), sharded_meter.count());
  EXPECT_EQ(serial.digest(), sharded.digest());
  EXPECT_EQ(serial.size(), sharded.size());
  for (const auto& outpoint : created) {
    auto a = serial.find(outpoint);
    auto b = sharded.find(outpoint);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
  }
}

TEST(UtxoShardPointOpTest, MovePreservesShardedContents) {
  UtxoIndex index(InstructionCosts{}, UtxoIndex::ShardConfig{4, true});
  ic::InstructionMeter meter;
  for (std::uint8_t tag = 0; tag < 12; ++tag) {
    index.insert(bitcoin::OutPoint{util::Hash256{}, tag}, bitcoin::TxOut{100, script(tag)},
                 5, meter);
  }
  Hash256 digest = index.digest();
  std::uint64_t epoch = index.epoch();

  UtxoIndex moved(std::move(index));
  EXPECT_EQ(moved.digest(), digest);
  EXPECT_EQ(moved.epoch(), epoch);
  EXPECT_EQ(moved.shard_count(), 4u);

  UtxoIndex assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.digest(), digest);
  EXPECT_EQ(assigned.size(), 12u);
  // The moved-from index stays a valid (empty) store.
  EXPECT_EQ(moved.size(), 0u);  // NOLINT(bugprone-use-after-move): contract under test
}

// ---------------------------------------------------------------------------
// Epoch snapshot isolation: queries during ingestion

TEST(UtxoShardSnapshotTest, ReadersSeeConsistentEpochsDuringIngestion) {
  // Writer: each block spends every script's only UTXO and recreates exactly
  // one per script whose value encodes the block height. Readers (their own
  // meters) must therefore always observe exactly one UTXO per script with a
  // plausible height-consistent value — never a mid-block state where a
  // script's UTXO is removed but not yet replaced, and never a torn page.
  constexpr std::uint8_t kScripts = 8;
  constexpr int kBlocks = 60;
  UtxoIndex index(InstructionCosts{}, UtxoIndex::ShardConfig{4, true});
  parallel::ThreadPool pool(2);
  ic::InstructionMeter writer_meter;

  // Height 1: one genesis-style output per script.
  std::vector<bitcoin::OutPoint> current(kScripts);
  {
    Block block;
    bitcoin::Transaction tx;
    tx.inputs.push_back(bitcoin::TxIn{bitcoin::OutPoint::null(), {0x01}, 0xffffffff});
    for (std::uint8_t s = 0; s < kScripts; ++s) {
      tx.outputs.push_back(bitcoin::TxOut{1, script(s)});
    }
    block.transactions.push_back(tx);
    Hash256 txid = block.transactions[0].txid();
    for (std::uint8_t s = 0; s < kScripts; ++s) current[s] = bitcoin::OutPoint{txid, s};
    index.apply_block(block, 1, writer_meter, nullptr);
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<int> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      ic::InstructionMeter reader_meter;
      util::Rng rng(static_cast<std::uint64_t>(1000 + r));
      while (!stop.load(std::memory_order_relaxed)) {
        auto tag = static_cast<std::uint8_t>(rng.next() % kScripts);
        auto utxos = index.utxos_for_script(script(tag), reader_meter);
        if (utxos.size() != 1) {
          violations.fetch_add(1);
        } else if (utxos[0].value != utxos[0].height) {
          // Each epoch's single UTXO carries value == its creation height: a
          // mismatch means the reader saw a torn (mid-epoch) state.
          violations.fetch_add(1);
        }
        bitcoin::Amount balance = index.balance_of_script(script(tag), reader_meter);
        if (balance < 1 || balance > kBlocks + 1) violations.fetch_add(1);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int h = 2; h <= kBlocks; ++h) {
    Block block;
    bitcoin::Transaction tx;
    for (std::uint8_t s = 0; s < kScripts; ++s) {
      tx.inputs.push_back(bitcoin::TxIn{current[s], {}, 0xffffffff});
      tx.outputs.push_back(bitcoin::TxOut{static_cast<bitcoin::Amount>(h), script(s)});
    }
    block.transactions.push_back(tx);
    Hash256 txid = block.transactions[0].txid();
    for (std::uint8_t s = 0; s < kScripts; ++s) {
      current[s] = bitcoin::OutPoint{txid, static_cast<std::uint32_t>(s)};
    }
    index.apply_block(block, h, writer_meter, &pool);
    // Force genuine interleaving on small hosts: wait until the readers have
    // observed at least one state between publications before advancing.
    std::uint64_t seen = reads.load(std::memory_order_relaxed);
    for (int spin = 0; spin < 100000 && reads.load(std::memory_order_relaxed) <= seen;
         ++spin) {
      std::this_thread::yield();
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(index.epoch(), static_cast<std::uint64_t>(kBlocks));
  // Queries served snapshots; final state reflects every block.
  ic::InstructionMeter check;
  for (std::uint8_t s = 0; s < kScripts; ++s) {
    auto utxos = index.utxos_for_script(script(s), check);
    ASSERT_EQ(utxos.size(), 1u);
    EXPECT_EQ(utxos[0].value, kBlocks);
  }
}

// ---------------------------------------------------------------------------
// Canister-level randomized pagination across shard counts

class ShardedPaginationTest : public ::testing::Test {
 protected:
  static CanisterConfig config(std::size_t shards, bool snapshots) {
    auto c = CanisterConfig::for_params(ChainParams::regtest());
    c.utxos_per_page = 5;  // force multi-page walks
    c.utxo_shards = shards;
    c.utxo_snapshot_reads = snapshots;
    return c;
  }

  std::string address(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_address(h, bitcoin::Network::kRegtest);
  }

  util::Bytes pay_script(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_script(h);
  }
};

TEST_F(ShardedPaginationTest, PageSequencesAndTokensByteIdenticalAcrossShardCounts) {
  const ChainParams& params = ChainParams::regtest();
  std::vector<std::unique_ptr<BitcoinCanister>> canisters;
  canisters.push_back(std::make_unique<BitcoinCanister>(params, config(1, false)));
  canisters.push_back(std::make_unique<BitcoinCanister>(params, config(4, true)));
  canisters.push_back(std::make_unique<BitcoinCanister>(params, config(16, true)));

  // A single chain paying a small tag set repeatedly, with extra same-script
  // outputs per block so stable pages span many heights; enough blocks that
  // the anchor advances (δ=6) and most UTXOs are stable.
  util::Rng rng(929);
  chain::HeaderTree build_tree(params, params.genesis_header);
  Hash256 tip = params.genesis_header.hash();
  std::uint32_t time = params.genesis_header.time;
  constexpr std::uint8_t kTags = 3;
  for (int i = 0; i < 24; ++i) {
    time += 600;
    auto tag = static_cast<std::uint8_t>(1 + rng.next() % kTags);
    std::vector<bitcoin::Transaction> txs;
    bitcoin::Transaction extra;
    bitcoin::TxIn in;
    in.prevout.txid = rng.next_hash();
    extra.inputs.push_back(in);
    int n_outs = 1 + static_cast<int>(rng.next() % 3);
    for (int o = 0; o < n_outs; ++o) {
      extra.outputs.push_back(bitcoin::TxOut{
          static_cast<bitcoin::Amount>(100 + o), pay_script(static_cast<std::uint8_t>(
                                                     1 + rng.next() % kTags))});
    }
    txs.push_back(std::move(extra));
    Block b = chain::build_child_block(build_tree, tip, time, pay_script(tag),
                                       50 * bitcoin::kCoin, std::move(txs),
                                       static_cast<std::uint64_t>(i + 1));
    tip = b.hash();
    ASSERT_EQ(build_tree.accept(b.header, static_cast<std::int64_t>(time) + 4000),
              chain::AcceptResult::kAccepted);
    adapter::AdapterResponse response;
    response.blocks.emplace_back(b, b.header);
    for (auto& canister : canisters) {
      canister->process_response(response, static_cast<std::int64_t>(time) + 4000);
    }
  }
  ASSERT_GT(canisters[0]->anchor_height(), 0);

  // Randomized page walks: every page's UTXO list AND its opaque token must
  // be byte-identical across shard counts.
  for (int round = 0; round < 8; ++round) {
    auto tag = static_cast<std::uint8_t>(1 + rng.next() % kTags);
    int minconf = static_cast<int>(rng.next() % 7);
    std::vector<GetUtxosRequest> requests(canisters.size());
    for (auto& request : requests) {
      request.address = address(tag);
      request.min_confirmations = minconf;
    }
    for (int page = 0; page < 64; ++page) {
      auto baseline = canisters[0]->get_utxos(requests[0]);
      for (std::size_t c = 1; c < canisters.size(); ++c) {
        auto got = canisters[c]->get_utxos(requests[c]);
        ASSERT_EQ(baseline.status, got.status);
        if (!baseline.ok()) continue;
        ASSERT_EQ(baseline.value.utxos, got.value.utxos)
            << canisters[c]->config().utxo_shards << " shards, page " << page;
        ASSERT_EQ(baseline.value.tip_hash, got.value.tip_hash);
        ASSERT_EQ(baseline.value.next_page, got.value.next_page)
            << "token diverged at " << canisters[c]->config().utxo_shards << " shards";
        if (got.value.next_page) requests[c].page = got.value.next_page;
      }
      if (!baseline.ok() || !baseline.value.next_page) break;
      requests[0].page = baseline.value.next_page;
    }
  }
}

}  // namespace
}  // namespace icbtc::canister
