// Checkpoint/restore at the canister level: the randomized reorg-heavy
// round-trip property (restore at a different shard count AND a different
// backend must reproduce the writer's digest, query responses, and meter
// total, then stay in lockstep), checkpoint canonicality across writer
// configurations, canister-level corruption KATs, and the pinning tests for
// the arena-accurate `utxo.shard.*` / `canister.delta.*` gauges.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"
#include "obs/metrics.h"
#include "persist/checkpoint.h"
#include "util/rng.h"

namespace icbtc::canister {
namespace {

// Reorg-heavy random chain generator. Unlike the linear persistence-test
// world, blocks are built once and can be fed to any number of canisters in
// identical order — the twin-equality property needs the writer and the
// restored canister to see the same byte stream. Roughly a quarter of steps
// fork off a recent block, and every tenth step mines a two-block branch off
// the best tip's parent, forcing a genuine reorg.
struct ForkChain {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  chain::HeaderTree tree{params, params.genesis_header};
  util::Rng rng;
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 1;
  std::vector<util::Bytes> scripts;
  std::vector<std::string> addresses;
  std::vector<bitcoin::OutPoint> spendable;
  std::vector<util::Hash256> recent{params.genesis_header.hash()};
  std::vector<bitcoin::Block> history;
  int step_no = 0;

  explicit ForkChain(std::uint64_t seed) : rng(seed) {
    for (int i = 0; i < 5; ++i) {
      util::Hash160 h;
      auto bytes = rng.next_bytes(20);
      std::copy(bytes.begin(), bytes.end(), h.data.begin());
      scripts.push_back(bitcoin::p2pkh_script(h));
      addresses.push_back(bitcoin::p2pkh_address(h, params.network));
    }
  }

  bitcoin::Block build_on(const util::Hash256& parent) {
    std::vector<bitcoin::Transaction> txs;
    std::size_t n_tx = 1 + rng.next_below(3);
    for (std::size_t t = 0; t < n_tx; ++t) {
      bitcoin::Transaction tx;
      bitcoin::TxIn in;
      if (!spendable.empty() && rng.chance(0.55)) {
        std::size_t pick = static_cast<std::size_t>(rng.next_below(spendable.size()));
        in.prevout = spendable[pick];
        spendable[pick] = spendable.back();
        spendable.pop_back();
      } else {
        in.prevout.txid = rng.next_hash();
      }
      tx.inputs.push_back(in);
      std::size_t n_out = 1 + rng.next_below(3);
      for (std::size_t o = 0; o < n_out; ++o) {
        tx.outputs.push_back(bitcoin::TxOut{
            static_cast<bitcoin::Amount>(1000 + rng.next_below(50000)),
            scripts[static_cast<std::size_t>(rng.next_below(scripts.size()))]});
      }
      tx.lock_time = static_cast<std::uint32_t>(tag);
      txs.push_back(std::move(tx));
    }
    time += 600;
    auto block = chain::build_child_block(tree, parent, time, scripts[0],
                                          bitcoin::block_subsidy(0), std::move(txs), tag++);
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    for (const auto& tx : block.transactions) {
      util::Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
        if (!bitcoin::is_op_return(tx.outputs[v].script_pubkey)) {
          spendable.push_back(bitcoin::OutPoint{txid, v});
        }
      }
    }
    recent.push_back(block.hash());
    if (recent.size() > 8) recent.erase(recent.begin());
    history.push_back(block);
    return block;
  }

  /// Generates this step's blocks (1 normally, 2 for a forced reorg) and
  /// returns them in feed order.
  std::vector<bitcoin::Block> step() {
    ++step_no;
    std::vector<bitcoin::Block> out;
    if (step_no % 10 == 0 && tree.best_height() >= 2) {
      // Forced reorg: a two-block branch off the best tip's parent overtakes
      // the current chain by one.
      util::Hash256 parent = tree.find(tree.best_tip())->header.prev_hash;
      auto first = build_on(parent);
      auto second = build_on(first.hash());
      out.push_back(std::move(first));
      out.push_back(std::move(second));
    } else if (rng.chance(0.25) && recent.size() > 2) {
      // Stale fork off a recent (usually non-tip) block.
      out.push_back(build_on(recent[rng.next_below(recent.size() - 1)]));
    } else {
      out.push_back(build_on(tree.best_tip()));
    }
    return out;
  }

  void feed(BitcoinCanister& canister, const bitcoin::Block& block) const {
    adapter::AdapterResponse response;
    response.blocks.emplace_back(block, block.header);
    canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
  }

  void run(BitcoinCanister& canister, int steps) {
    for (int i = 0; i < steps; ++i) {
      for (const auto& block : step()) feed(canister, block);
    }
  }
};

void expect_same_views(ForkChain& chain, BitcoinCanister& a, BitcoinCanister& b) {
  EXPECT_EQ(a.utxo_digest(), b.utxo_digest());
  EXPECT_EQ(a.anchor_height(), b.anchor_height());
  EXPECT_EQ(a.anchor_hash(), b.anchor_hash());
  EXPECT_EQ(a.tip_height(), b.tip_height());
  EXPECT_EQ(a.utxo_count(), b.utxo_count());
  EXPECT_EQ(a.unstable_block_count(), b.unstable_block_count());
  EXPECT_EQ(a.archived_headers(), b.archived_headers());
  EXPECT_EQ(a.pending_transactions(), b.pending_transactions());
  EXPECT_EQ(a.header_tree().best_tip(), b.header_tree().best_tip());
  EXPECT_EQ(a.meter().count(), b.meter().count());
  for (const auto& addr : chain.addresses) {
    for (int conf : {0, 2, 6}) {
      EXPECT_EQ(a.get_balance(addr, conf).value, b.get_balance(addr, conf).value)
          << addr << " conf " << conf;
    }
    GetUtxosRequest request;
    request.address = addr;
    auto ra = a.get_utxos(request);
    auto rb = b.get_utxos(request);
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra.value.utxos, rb.value.utxos);
    EXPECT_EQ(ra.value.tip_hash, rb.value.tip_hash);
    EXPECT_EQ(ra.value.tip_height, rb.value.tip_height);
  }
  // Queries charge the meter; identical queries must charge identically.
  EXPECT_EQ(a.meter().count(), b.meter().count());
}

class CheckpointRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointRoundTrip, RestoreMatchesNeverStoppedTwin) {
  ForkChain chain(GetParam());
  CanisterConfig writer_config = CanisterConfig::for_params(chain.params);
  writer_config.utxo_shards = 8;
  BitcoinCanister writer(chain.params, writer_config);
  chain.run(writer, 40);

  bitcoin::Transaction pending;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 0x55;
  pending.inputs.push_back(in);
  pending.outputs.push_back(bitcoin::TxOut{100, chain.scripts[0]});
  ASSERT_EQ(writer.send_transaction(pending.serialize()), Status::kOk);

  util::Bytes checkpoint = writer.write_checkpoint();

  // Restore at a different shard count AND the map backend: the checkpoint
  // is invariant to both, so the restored canister must be observationally
  // identical to the writer that never stopped.
  CanisterConfig restore_config = writer_config;
  restore_config.utxo_shards = 3;
  restore_config.utxo_backend = persist::UtxoBackend::kMap;
  auto restored = BitcoinCanister::from_checkpoint(chain.params, restore_config, checkpoint);
  expect_same_views(chain, writer, restored);

  // Lockstep: both ingest the same reorg-heavy continuation.
  for (int i = 0; i < 15; ++i) {
    for (const auto& block : chain.step()) {
      chain.feed(writer, block);
      chain.feed(restored, block);
    }
  }
  expect_same_views(chain, writer, restored);

  // Second generation: the restored canister's own checkpoint is
  // byte-identical to the writer's despite the different shard count and
  // backend — the stream is a pure function of logical state.
  EXPECT_EQ(writer.write_checkpoint(), restored.write_checkpoint());
}

TEST_P(CheckpointRoundTrip, CheckpointBytesInvariantAcrossWriterConfig) {
  ForkChain chain(GetParam());
  CanisterConfig a_config = CanisterConfig::for_params(chain.params);
  a_config.utxo_shards = 16;
  CanisterConfig b_config = CanisterConfig::for_params(chain.params);
  b_config.utxo_shards = 1;
  b_config.utxo_backend = persist::UtxoBackend::kMap;
  b_config.utxo_snapshot_reads = false;
  BitcoinCanister a(chain.params, a_config);
  BitcoinCanister b(chain.params, b_config);
  for (int i = 0; i < 25; ++i) {
    for (const auto& block : chain.step()) {
      chain.feed(a, block);
      chain.feed(b, block);
    }
  }
  ASSERT_EQ(a.utxo_digest(), b.utxo_digest());
  EXPECT_EQ(a.write_checkpoint(), b.write_checkpoint());
  // And writing twice from the same canister is byte-stable.
  EXPECT_EQ(a.write_checkpoint(), a.write_checkpoint());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointRoundTrip, ::testing::Values(11u, 22u, 33u));

// ---------------------------------------------------------------------------
// Canister-level corruption KATs: every corruption is a typed
// persist::CheckpointError thrown before any canister state exists — there
// is no partially restored canister to observe.

persist::CheckpointError::Code restore_code(const ForkChain& chain, util::ByteSpan file) {
  try {
    auto c = BitcoinCanister::from_checkpoint(chain.params,
                                              CanisterConfig::for_params(chain.params), file);
  } catch (const persist::CheckpointError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected CheckpointError";
  return persist::CheckpointError::Code::kIo;
}

TEST(CheckpointCorruption, CanisterRejectsCorruptStreams) {
  ForkChain chain(7);
  BitcoinCanister writer(chain.params, CanisterConfig::for_params(chain.params));
  chain.run(writer, 15);
  util::Bytes good = writer.write_checkpoint();
  using Code = persist::CheckpointError::Code;

  // Sanity: the pristine stream restores.
  auto restored =
      BitcoinCanister::from_checkpoint(chain.params, CanisterConfig::for_params(chain.params),
                                       good);
  EXPECT_EQ(restored.utxo_digest(), writer.utxo_digest());

  auto bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_EQ(restore_code(chain, bad_magic), Code::kBadMagic);

  auto bad_version = good;
  bad_version[4] += 1;
  EXPECT_EQ(restore_code(chain, bad_version), Code::kBadVersion);

  auto truncated = good;
  truncated.resize(truncated.size() / 2);
  Code code = restore_code(chain, truncated);
  EXPECT_TRUE(code == Code::kTruncated || code == Code::kCrcMismatch) << to_string(code);

  auto flipped = good;
  flipped[good.size() / 2] ^= 0x01;  // somewhere inside a section payload
  EXPECT_EQ(restore_code(chain, flipped), Code::kCrcMismatch);

  auto trailing = good;
  trailing.push_back(0);
  Code trailing_code = restore_code(chain, trailing);
  EXPECT_TRUE(trailing_code == Code::kTrailingBytes || trailing_code == Code::kCrcMismatch ||
              trailing_code == Code::kTruncated)
      << to_string(trailing_code);
}

TEST(CheckpointCorruption, FileRoundTripAndMissingFile) {
  ForkChain chain(9);
  BitcoinCanister writer(chain.params, CanisterConfig::for_params(chain.params));
  chain.run(writer, 12);

  std::string path = ::testing::TempDir() + "canister_roundtrip.ckpt";
  writer.checkpoint(path);
  CanisterConfig restore_config = CanisterConfig::for_params(chain.params);
  restore_config.utxo_shards = 2;
  auto restored = BitcoinCanister::restore(chain.params, restore_config, path);
  EXPECT_EQ(restored.utxo_digest(), writer.utxo_digest());

  // Two checkpoint files of the same state are byte-identical (`cmp` gate).
  std::string path2 = ::testing::TempDir() + "canister_roundtrip2.ckpt";
  writer.checkpoint(path2);
  EXPECT_EQ(persist::read_checkpoint_file(path), persist::read_checkpoint_file(path2));

  try {
    auto c = BitcoinCanister::restore(chain.params, restore_config,
                                      ::testing::TempDir() + "no_such_file.ckpt");
    FAIL() << "expected kIo";
  } catch (const persist::CheckpointError& e) {
    EXPECT_EQ(e.code(), persist::CheckpointError::Code::kIo);
  }
}

// ---------------------------------------------------------------------------
// Gauge pinning: the byte gauges must report the backends' exact accounting,
// not estimates — these tests recompute the ground truth independently and
// require equality, so the gauges can't silently regress.

TEST(CheckpointGauges, ShardByteGaugesMatchExactAccounting) {
  ForkChain chain(13);
  CanisterConfig config = CanisterConfig::for_params(chain.params);
  config.utxo_shards = 4;
  BitcoinCanister canister(chain.params, config);
  obs::MetricsRegistry registry;
  canister.set_metrics(&registry);
  chain.run(canister, 20);
  ASSERT_GT(canister.utxo_count(), 0u);

  std::uint64_t live = canister.stable_utxos().live_bytes();
  std::uint64_t resident = canister.stable_utxos().resident_bytes();
  EXPECT_GT(live, 0u);
  EXPECT_GE(resident, live);
  EXPECT_EQ(registry.gauge("utxo.shard.live_bytes").value(),
            static_cast<std::int64_t>(live));
  EXPECT_EQ(registry.gauge("utxo.shard.resident_bytes").value(),
            static_cast<std::int64_t>(resident));
}

TEST(CheckpointGauges, DeltaResidentGaugeMatchesRecomputedFootprints) {
  ForkChain chain(17);
  BitcoinCanister canister(chain.params, CanisterConfig::for_params(chain.params));
  obs::MetricsRegistry registry;
  canister.set_metrics(&registry);
  chain.run(canister, 20);
  ASSERT_GT(canister.unstable_block_count(), 0u);

  // Recompute every live delta's footprint from its actual container shapes
  // and require exact agreement with the incrementally maintained total.
  std::set<std::string> seen;
  std::uint64_t recomputed = 0;
  std::size_t live_deltas = 0;
  for (const auto& block : chain.history) {
    util::Hash256 hash = block.hash();
    if (!seen.insert(hash.hex()).second) continue;
    const BlockDelta* delta = canister.unstable_index().delta(hash);
    if (delta == nullptr) continue;
    ++live_deltas;
    EXPECT_EQ(delta->resident_bytes, delta_resident_bytes(*delta));
    recomputed += delta_resident_bytes(*delta);
  }
  EXPECT_GT(live_deltas, 0u);
  EXPECT_EQ(canister.unstable_index().resident_bytes(), recomputed);
  EXPECT_EQ(registry.gauge("canister.delta.resident_bytes").value(),
            static_cast<std::int64_t>(recomputed));
}

}  // namespace
}  // namespace icbtc::canister
