// Property tests of the Bitcoin canister over randomly generated chains:
// view consistency between endpoints, pagination completeness, and anchor
// accounting.
#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"
#include "util/rng.h"

namespace icbtc::canister {
namespace {

struct RandomChain {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  CanisterConfig config = CanisterConfig::for_params(params);
  BitcoinCanister canister;
  chain::HeaderTree tree{params, params.genesis_header};
  util::Rng rng;
  util::Hash256 tip = params.genesis_header.hash();
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 1;
  std::vector<util::Bytes> scripts;
  std::vector<std::string> addresses;
  std::vector<bitcoin::OutPoint> spendable;

  static CanisterConfig make_config(const bitcoin::ChainParams& params,
                                    std::size_t utxos_per_page) {
    auto config = CanisterConfig::for_params(params);
    if (utxos_per_page != 0) config.utxos_per_page = utxos_per_page;
    return config;
  }

  explicit RandomChain(std::uint64_t seed, int n_addresses = 6, std::size_t utxos_per_page = 0)
      : config(make_config(params, utxos_per_page)), canister(params, config), rng(seed) {
    for (int i = 0; i < n_addresses; ++i) {
      util::Hash160 h;
      auto bytes = rng.next_bytes(20);
      std::copy(bytes.begin(), bytes.end(), h.data.begin());
      scripts.push_back(bitcoin::p2pkh_script(h));
      addresses.push_back(bitcoin::p2pkh_address(h, params.network));
    }
  }

  void step() {
    std::vector<bitcoin::Transaction> txs;
    std::size_t n_tx = 1 + rng.next_below(4);
    for (std::size_t t = 0; t < n_tx; ++t) {
      bitcoin::Transaction tx;
      bitcoin::TxIn in;
      if (!spendable.empty() && rng.chance(0.6)) {
        std::size_t pick = static_cast<std::size_t>(rng.next_below(spendable.size()));
        in.prevout = spendable[pick];
        spendable[pick] = spendable.back();
        spendable.pop_back();
      } else {
        in.prevout.txid = rng.next_hash();
      }
      tx.inputs.push_back(in);
      std::size_t n_out = 1 + rng.next_below(3);
      for (std::size_t o = 0; o < n_out; ++o) {
        tx.outputs.push_back(bitcoin::TxOut{
            static_cast<bitcoin::Amount>(1000 + rng.next_below(50000)),
            scripts[static_cast<std::size_t>(rng.next_below(scripts.size()))]});
      }
      tx.lock_time = static_cast<std::uint32_t>(tag);
      txs.push_back(std::move(tx));
    }
    time += 600;
    auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                          bitcoin::block_subsidy(0), std::move(txs), tag++);
    tip = block.hash();
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    for (const auto& tx : block.transactions) {
      util::Hash256 txid = tx.txid();
      for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
        if (!bitcoin::is_op_return(tx.outputs[v].script_pubkey)) {
          spendable.push_back(bitcoin::OutPoint{txid, v});
        }
      }
    }
    adapter::AdapterResponse response;
    response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
    canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
  }
};

class CanisterProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CanisterProperty, BalanceEqualsSumOfUtxos) {
  RandomChain c(GetParam());
  for (int i = 0; i < 40; ++i) c.step();
  for (int conf : {0, 1, 3, 6}) {
    for (const auto& addr : c.addresses) {
      auto balance = c.canister.get_balance(addr, conf);
      ASSERT_TRUE(balance.ok());
      GetUtxosRequest request;
      request.address = addr;
      request.min_confirmations = conf;
      bitcoin::Amount sum = 0;
      for (;;) {
        auto page = c.canister.get_utxos(request);
        ASSERT_TRUE(page.ok());
        for (const auto& u : page.value.utxos) sum += u.value;
        if (!page.value.next_page) break;
        request.page = page.value.next_page;
      }
      EXPECT_EQ(balance.value, sum) << addr << " conf " << conf;
    }
  }
}

TEST_P(CanisterProperty, PaginationIsCompleteAndDisjoint) {
  // Two canisters over the same random chain: default pages vs 3-per-page.
  RandomChain full_chain(GetParam());
  RandomChain paged_chain(GetParam(), 6, /*utxos_per_page=*/3);
  for (int i = 0; i < 30; ++i) {
    full_chain.step();
    paged_chain.step();
  }
  ASSERT_EQ(full_chain.addresses, paged_chain.addresses);  // same seed, same world

  for (const auto& addr : full_chain.addresses) {
    GetUtxosRequest request;
    request.address = addr;
    auto full = full_chain.canister.get_utxos(request);
    ASSERT_TRUE(full.ok());

    GetUtxosRequest paged_request;
    paged_request.address = addr;
    std::vector<Utxo> collected;
    for (;;) {
      auto page = paged_chain.canister.get_utxos(paged_request);
      ASSERT_TRUE(page.ok());
      EXPECT_LE(page.value.utxos.size(), 3u);
      collected.insert(collected.end(), page.value.utxos.begin(), page.value.utxos.end());
      if (!page.value.next_page) break;
      paged_request.page = page.value.next_page;
    }
    // Page concatenation equals the single full response, element for
    // element (same canonical order), with no duplicates or gaps.
    EXPECT_EQ(collected, full.value.utxos) << addr;
    std::set<std::pair<std::string, std::uint32_t>> seen;
    int last_height = INT32_MAX;
    for (const auto& u : collected) {
      EXPECT_LE(u.height, last_height);
      last_height = u.height;
      EXPECT_TRUE(seen.insert({u.outpoint.txid.hex(), u.outpoint.vout}).second);
    }
  }
}

TEST_P(CanisterProperty, AnchorAccountingInvariants) {
  RandomChain c(GetParam());
  for (int i = 0; i < 40; ++i) {
    c.step();
    // The anchor trails the tip by at least δ-1 blocks while synced.
    EXPECT_LE(c.canister.anchor_height(), c.canister.tip_height());
    if (c.canister.anchor_height() > 0) {
      EXPECT_GE(c.canister.tip_height() - c.canister.anchor_height(),
                c.config.stability_delta - 1);
    }
    // Unstable block count matches the span above the anchor (linear chain).
    EXPECT_EQ(c.canister.unstable_block_count(),
              static_cast<std::size_t>(c.canister.tip_height() - c.canister.anchor_height()));
    // Archived headers = anchor height (heights 0..anchor-1).
    EXPECT_EQ(c.canister.archived_headers(),
              static_cast<std::size_t>(c.canister.anchor_height()));
    EXPECT_TRUE(c.canister.is_synced());
  }
}

TEST_P(CanisterProperty, CanisterTracksBuilderTree) {
  RandomChain c(GetParam());
  for (int i = 0; i < 25; ++i) c.step();
  EXPECT_EQ(c.canister.tip_height(), c.tree.best_height());
  EXPECT_EQ(c.canister.header_tree().best_tip(), c.tree.best_tip());
}

TEST_P(CanisterProperty, FeePercentilesMonotone) {
  RandomChain c(GetParam());
  for (int i = 0; i < 20; ++i) c.step();
  auto outcome = c.canister.get_current_fee_percentiles();
  ASSERT_TRUE(outcome.ok());
  for (std::size_t i = 1; i < outcome.value.size(); ++i) {
    EXPECT_GE(outcome.value[i], outcome.value[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanisterProperty,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u, 606u));

}  // namespace
}  // namespace icbtc::canister
