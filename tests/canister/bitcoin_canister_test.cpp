#include "canister/bitcoin_canister.h"

#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "chain/block_builder.h"

namespace icbtc::canister {
namespace {

using bitcoin::Block;
using bitcoin::ChainParams;
using util::Hash256;

// Drives the canister with hand-built blocks: a local header tree mirrors
// what the Bitcoin network would produce so Algorithm 2 can be tested in
// isolation (δ = 6, τ = 2 with regtest params).
class CanisterTest : public ::testing::Test {
 protected:
  CanisterTest()
      : canister_(params_, CanisterConfig::for_params(params_)),
        build_tree_(params_, params_.genesis_header) {}

  util::Hash160 addr_hash(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return h;
  }

  std::string address(std::uint8_t tag) {
    return bitcoin::p2pkh_address(addr_hash(tag), bitcoin::Network::kRegtest);
  }

  util::Bytes script(std::uint8_t tag) { return bitcoin::p2pkh_script(addr_hash(tag)); }

  /// Builds a block on `parent` paying the 50-BTC coinbase to `tag`'s
  /// address, with extra transactions.
  Block make_block(const Hash256& parent, std::uint8_t coinbase_tag,
                   std::vector<bitcoin::Transaction> txs = {}) {
    time_ += 600;
    Block b = chain::build_child_block(build_tree_, parent, time_, script(coinbase_tag),
                                       50 * bitcoin::kCoin, std::move(txs), next_tag_++);
    EXPECT_EQ(build_tree_.accept(b.header, now_s()), chain::AcceptResult::kAccepted);
    return b;
  }

  /// Extends the main chain by `n` blocks paying `tag`; returns the blocks.
  std::vector<Block> extend(int n, std::uint8_t tag = 99) {
    std::vector<Block> blocks;
    for (int i = 0; i < n; ++i) {
      Block b = make_block(tip_, tag);
      tip_ = b.hash();
      blocks.push_back(std::move(b));
    }
    return blocks;
  }

  /// Feeds blocks to the canister as one adapter response.
  BitcoinCanister::ProcessResult feed(const std::vector<Block>& blocks) {
    adapter::AdapterResponse response;
    for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
    return canister_.process_response(response, now_s());
  }

  BitcoinCanister::ProcessResult feed_headers(const std::vector<bitcoin::BlockHeader>& headers) {
    adapter::AdapterResponse response;
    response.next_headers = headers;
    return canister_.process_response(response, now_s());
  }

  std::int64_t now_s() const { return static_cast<std::int64_t>(time_) + 4000; }

  const ChainParams& params_ = ChainParams::regtest();  // δ=6, τ=2
  BitcoinCanister canister_;
  chain::HeaderTree build_tree_;
  Hash256 tip_ = params_.genesis_header.hash();
  std::uint32_t time_ = params_.genesis_header.time;
  std::uint64_t next_tag_ = 1;
};

TEST_F(CanisterTest, InitialState) {
  EXPECT_EQ(canister_.anchor_height(), 0);
  EXPECT_EQ(canister_.tip_height(), 0);
  EXPECT_TRUE(canister_.is_synced());
  EXPECT_EQ(canister_.unstable_block_count(), 0u);
  // The synthetic genesis coinbase pays OP_RETURN: stable set empty.
  EXPECT_EQ(canister_.utxo_count(), 0u);
}

TEST_F(CanisterTest, BlocksAccumulateAsUnstable) {
  feed(extend(3));
  EXPECT_EQ(canister_.tip_height(), 3);
  EXPECT_EQ(canister_.anchor_height(), 0);  // below δ=6
  EXPECT_EQ(canister_.unstable_block_count(), 3u);
}

TEST_F(CanisterTest, AnchorAdvancesAtDelta) {
  // With constant difficulty, the block at height 1 becomes δ-stable once
  // d_w covers δ blocks: after 6 blocks anchor=1, after 10 anchor=4.
  feed(extend(6));
  EXPECT_EQ(canister_.anchor_height(), 1);
  feed(extend(4));
  EXPECT_EQ(canister_.anchor_height(), 5);
  EXPECT_EQ(canister_.unstable_block_count(),
            static_cast<std::size_t>(canister_.tip_height() - canister_.anchor_height()));
}

TEST_F(CanisterTest, StableBlocksMigrateToUtxoSet) {
  feed(extend(7, /*tag=*/1));  // anchor reaches height 2
  EXPECT_EQ(canister_.anchor_height(), 2);
  // Heights 1 and 2 migrated: two coinbases in the stable set.
  EXPECT_EQ(canister_.utxo_count(), 2u);
  // Total balance visible = all 7 coinbases (stable + unstable).
  auto balance = canister_.get_balance(address(1));
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.value, 7 * 50 * bitcoin::kCoin);
}

TEST_F(CanisterTest, IngestLogRecordsStableBlocks) {
  feed(extend(8, 1));
  ASSERT_EQ(canister_.ingest_log().size(), 3u);  // anchor 0 -> 3
  for (const auto& stats : canister_.ingest_log()) {
    EXPECT_EQ(stats.transactions, 1u);        // coinbase only
    EXPECT_EQ(stats.outputs_inserted, 1u);
    EXPECT_EQ(stats.inputs_removed, 0u);
    EXPECT_GT(stats.instructions, 0u);
    EXPECT_GT(stats.insert_instructions, 0u);
  }
}

TEST_F(CanisterTest, ArchivedHeadersGrowWithAnchor) {
  std::size_t initial = canister_.archived_headers();  // genesis
  feed(extend(9));
  EXPECT_EQ(canister_.archived_headers(), initial + 4);  // anchors 1..4... advanced to 4
}

TEST_F(CanisterTest, ConfirmationFilter) {
  feed(extend(4, 1));
  // Tip block (height 4) has 1 confirmation; height 1 has 4.
  auto all = canister_.get_balance(address(1), 0);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all.value, 4 * 50 * bitcoin::kCoin);
  auto conf2 = canister_.get_balance(address(1), 2);
  ASSERT_TRUE(conf2.ok());
  EXPECT_EQ(conf2.value, 3 * 50 * bitcoin::kCoin);
  auto conf4 = canister_.get_balance(address(1), 4);
  ASSERT_TRUE(conf4.ok());
  EXPECT_EQ(conf4.value, 1 * 50 * bitcoin::kCoin);
}

TEST_F(CanisterTest, MinConfirmationsAboveDeltaRejected) {
  feed(extend(3));
  auto outcome = canister_.get_balance(address(1), params_.stability_delta + 1);
  EXPECT_EQ(outcome.status, Status::kMinConfirmationsTooLarge);
  GetUtxosRequest request;
  request.address = address(1);
  request.min_confirmations = params_.stability_delta + 1;
  EXPECT_EQ(canister_.get_utxos(request).status, Status::kMinConfirmationsTooLarge);
}

TEST_F(CanisterTest, BadAddressRejected) {
  EXPECT_EQ(canister_.get_balance("garbage").status, Status::kBadAddress);
  // Mainnet address on regtest canister:
  EXPECT_EQ(canister_.get_balance(bitcoin::p2pkh_address(addr_hash(1),
                                                         bitcoin::Network::kMainnet))
                .status,
            Status::kBadAddress);
}

TEST_F(CanisterTest, SyncGateBlocksWhenHeadersOutrunBlocks) {
  auto blocks = extend(6);
  // Deliver only headers: tree grows, no blocks -> out of sync beyond τ=2.
  std::vector<bitcoin::BlockHeader> headers;
  for (const auto& b : blocks) headers.push_back(b.header);
  feed_headers(headers);
  EXPECT_FALSE(canister_.is_synced());
  EXPECT_EQ(canister_.get_balance(address(1)).status, Status::kNotSynced);
  GetUtxosRequest request;
  request.address = address(1);
  EXPECT_EQ(canister_.get_utxos(request).status, Status::kNotSynced);
  // Delivering the blocks restores service.
  feed(blocks);
  EXPECT_TRUE(canister_.is_synced());
  EXPECT_TRUE(canister_.get_balance(address(1)).ok());
}

TEST_F(CanisterTest, SyncGateTolerance) {
  auto blocks = extend(6);
  std::vector<bitcoin::BlockHeader> headers;
  for (const auto& b : blocks) headers.push_back(b.header);
  // Deliver all blocks but the last two: exactly τ=2 behind -> still synced.
  feed(std::vector<Block>(blocks.begin(), blocks.end() - 2));
  feed_headers({headers.end() - 2, headers.end()});
  EXPECT_TRUE(canister_.is_synced());
  // One more header pushes it over.
  auto extra = extend(1);
  feed_headers({extra[0].header});
  EXPECT_FALSE(canister_.is_synced());
}

TEST_F(CanisterTest, SpendMovesBalanceBetweenAddresses) {
  auto funding = extend(1, /*tag=*/1);
  feed(funding);
  // Spend address 1's coinbase to address 2 in the next block.
  bitcoin::Transaction spend;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint{funding[0].transactions[0].txid(), 0};
  spend.inputs.push_back(in);
  spend.outputs.push_back(bitcoin::TxOut{30 * bitcoin::kCoin, script(2)});
  spend.outputs.push_back(bitcoin::TxOut{20 * bitcoin::kCoin, script(1)});  // change
  Block b = make_block(tip_, 99, {spend});
  tip_ = b.hash();
  feed({b});

  EXPECT_EQ(canister_.get_balance(address(1)).value, 20 * bitcoin::kCoin);
  EXPECT_EQ(canister_.get_balance(address(2)).value, 30 * bitcoin::kCoin);
}

TEST_F(CanisterTest, SpendOfStableUtxoVisibleWhileUnstable) {
  // Fund address 1, make the funding block stable, then spend it in an
  // unstable block: the stable UTXO must disappear from responses.
  auto funding = extend(1, 1);
  feed(funding);
  feed(extend(7, 99));  // funding block is now below the anchor
  ASSERT_GE(canister_.anchor_height(), 1);
  EXPECT_EQ(canister_.get_balance(address(1)).value, 50 * bitcoin::kCoin);

  bitcoin::Transaction spend;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint{funding[0].transactions[0].txid(), 0};
  spend.inputs.push_back(in);
  spend.outputs.push_back(bitcoin::TxOut{49 * bitcoin::kCoin, script(2)});
  Block b = make_block(tip_, 99, {spend});
  tip_ = b.hash();
  feed({b});

  EXPECT_EQ(canister_.get_balance(address(1)).value, 0);
  EXPECT_EQ(canister_.get_balance(address(2)).value, 49 * bitcoin::kCoin);
}

TEST_F(CanisterTest, GetUtxosResponseShape) {
  feed(extend(3, 1));
  GetUtxosRequest request;
  request.address = address(1);
  auto outcome = canister_.get_utxos(request);
  ASSERT_TRUE(outcome.ok());
  const auto& response = outcome.value;
  EXPECT_EQ(response.utxos.size(), 3u);
  EXPECT_EQ(response.tip_height, 3);
  EXPECT_EQ(response.tip_hash, tip_);
  EXPECT_FALSE(response.next_page.has_value());
  // Sorted by height descending.
  EXPECT_EQ(response.utxos[0].height, 3);
  EXPECT_EQ(response.utxos[2].height, 1);
  for (const auto& u : response.utxos) EXPECT_EQ(u.value, 50 * bitcoin::kCoin);
}

TEST_F(CanisterTest, GetUtxosWithConfirmationsReportsOlderTip) {
  feed(extend(5, 1));
  GetUtxosRequest request;
  request.address = address(1);
  request.min_confirmations = 3;
  auto outcome = canister_.get_utxos(request);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value.tip_height, 3);  // height 3 has exactly 3 confs
  EXPECT_EQ(outcome.value.utxos.size(), 3u);
}

TEST_F(CanisterTest, Pagination) {
  CanisterConfig config = CanisterConfig::for_params(params_);
  config.utxos_per_page = 2;
  BitcoinCanister paged(params_, config);
  // Fund the same address in 5 blocks.
  auto blocks = extend(5, 1);
  adapter::AdapterResponse response;
  for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
  paged.process_response(response, now_s());

  GetUtxosRequest request;
  request.address = address(1);
  std::vector<Utxo> collected;
  int pages = 0;
  for (;;) {
    auto outcome = paged.get_utxos(request);
    ASSERT_TRUE(outcome.ok());
    ++pages;
    collected.insert(collected.end(), outcome.value.utxos.begin(), outcome.value.utxos.end());
    if (!outcome.value.next_page) break;
    request.page = outcome.value.next_page;
  }
  EXPECT_EQ(pages, 3);
  EXPECT_EQ(collected.size(), 5u);
  for (std::size_t i = 1; i < collected.size(); ++i) {
    EXPECT_GE(collected[i - 1].height, collected[i].height);
  }
}

TEST_F(CanisterTest, PaginationMetersOnlyReturnedStableUtxos) {
  CanisterConfig config = CanisterConfig::for_params(params_);
  config.utxos_per_page = 2;
  BitcoinCanister paged(params_, config);
  // 5 blocks fund address(1); 10 more on top push them below the anchor so
  // the pages are served from the stable index.
  auto blocks = extend(5, 1);
  auto filler = extend(10, 2);
  adapter::AdapterResponse response;
  for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
  for (const auto& b : filler) response.blocks.emplace_back(b, b.header);
  paged.process_response(response, now_s());
  ASSERT_GE(paged.utxo_count(), 5u);

  // Fixed per-request overhead (request charge + unstable-block scans),
  // measured on an address with no UTXOs anywhere.
  GetUtxosRequest empty_request;
  empty_request.address = address(7);
  ic::InstructionMeter::Segment fixed_segment(paged.meter());
  ASSERT_TRUE(paged.get_utxos(empty_request).ok());
  const std::uint64_t fixed = fixed_segment.sample();

  // Each page must charge stable_utxo_read only for the UTXOs it returns,
  // not for the address's full stable list (the pre-pagination behavior).
  GetUtxosRequest request;
  request.address = address(1);
  std::size_t total_entries = 0;
  std::uint64_t total_read_charges = 0;
  int pages = 0;
  for (;;) {
    ic::InstructionMeter::Segment segment(paged.meter());
    auto outcome = paged.get_utxos(request);
    ASSERT_TRUE(outcome.ok());
    const std::uint64_t delta = segment.sample();
    EXPECT_EQ(delta - fixed, outcome.value.utxos.size() * config.costs.stable_utxo_read)
        << "page " << pages;
    total_entries += outcome.value.utxos.size();
    total_read_charges += delta - fixed;
    ++pages;
    if (!outcome.value.next_page) break;
    request.page = outcome.value.next_page;
  }
  EXPECT_EQ(pages, 3);
  EXPECT_EQ(total_entries, 5u);
  // Across the whole walk, every returned UTXO was metered exactly once.
  EXPECT_EQ(total_read_charges, 5u * config.costs.stable_utxo_read);
}

TEST_F(CanisterTest, BadPageRejected) {
  feed(extend(2, 1));
  GetUtxosRequest request;
  request.address = address(1);
  request.page = util::Bytes{1, 2, 3};  // wrong length
  EXPECT_EQ(canister_.get_utxos(request).status, Status::kBadPage);
  util::ByteWriter w;
  w.u64le(999);  // a bare offset is not a valid token (no tip hash)
  request.page = w.data();
  EXPECT_EQ(canister_.get_utxos(request).status, Status::kBadPage);
  // Well-formed token bound to the right tip, but offset beyond the set.
  util::ByteWriter w2;
  w2.bytes(tip_.span());
  w2.u64le(999);
  request.page = w2.data();
  EXPECT_EQ(canister_.get_utxos(request).status, Status::kBadPage);
}

TEST_F(CanisterTest, PageTokenInvalidatedByNewBlock) {
  CanisterConfig config = CanisterConfig::for_params(params_);
  config.utxos_per_page = 2;
  BitcoinCanister paged(params_, config);
  auto blocks = extend(5, 1);
  adapter::AdapterResponse response;
  for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
  paged.process_response(response, now_s());

  GetUtxosRequest request;
  request.address = address(1);
  auto first = paged.get_utxos(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value.next_page.has_value());

  // A block arrives mid-pagination: the considered tip moves, so offsets
  // into the rebuilt UTXO list no longer line up. The stale token must be
  // rejected instead of silently skipping or duplicating UTXOs.
  Block extra = make_block(tip_, 1);
  tip_ = extra.hash();
  adapter::AdapterResponse more;
  more.blocks.emplace_back(extra, extra.header);
  paged.process_response(more, now_s());

  request.page = first.value.next_page;
  EXPECT_EQ(paged.get_utxos(request).status, Status::kBadPage);

  // Restarting from the first page works and binds to the new tip.
  request.page.reset();
  auto restart = paged.get_utxos(request);
  ASSERT_TRUE(restart.ok());
  EXPECT_EQ(restart.value.tip_hash, tip_);
}

TEST_F(CanisterTest, PageTokenInvalidatedByReorg) {
  CanisterConfig config = CanisterConfig::for_params(params_);
  config.utxos_per_page = 1;
  BitcoinCanister paged(params_, config);
  auto blocks = extend(2, 1);
  adapter::AdapterResponse response;
  for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
  paged.process_response(response, now_s());

  GetUtxosRequest request;
  request.address = address(1);
  auto first = paged.get_utxos(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value.next_page.has_value());

  // A heavier fork replaces the tip the token was minted against.
  Hash256 fork_point = blocks[0].hash();
  Block fork1 = make_block(fork_point, 1);
  Block fork2 = make_block(fork1.hash(), 1);
  adapter::AdapterResponse fork_response;
  fork_response.blocks.emplace_back(fork1, fork1.header);
  fork_response.blocks.emplace_back(fork2, fork2.header);
  paged.process_response(fork_response, now_s());

  request.page = first.value.next_page;
  EXPECT_EQ(paged.get_utxos(request).status, Status::kBadPage);
}

TEST_F(CanisterTest, ForkResolutionFollowsHeavierChain) {
  feed(extend(2, 1));
  Hash256 fork_point = tip_;
  // Short fork paying address 3.
  Block fork1 = make_block(fork_point, 3);
  feed({fork1});
  // Main chain continues paying address 1.
  Block main1 = make_block(fork_point, 1);
  Block main2 = make_block(main1.hash(), 1);
  tip_ = main2.hash();
  feed({main1, main2});
  // The heavier chain wins: address 3's fork coinbase is not in the view.
  EXPECT_EQ(canister_.get_balance(address(3)).value, 0);
  EXPECT_EQ(canister_.get_balance(address(1)).value, 4 * 50 * bitcoin::kCoin);
  EXPECT_EQ(canister_.tip_height(), 4);
}

TEST_F(CanisterTest, ReorgAboveAnchorHandledAutomatically) {
  feed(extend(2, 1));
  Hash256 fork_point = tip_;
  Block a1 = make_block(fork_point, 4);
  feed({a1});
  EXPECT_EQ(canister_.get_balance(address(4)).value, 50 * bitcoin::kCoin);
  // A longer fork from the same point displaces a1 (§III-C: reorgs above
  // the anchor are handled automatically).
  Block b1 = make_block(fork_point, 5);
  Block b2 = make_block(b1.hash(), 5);
  tip_ = b2.hash();
  feed({b1, b2});
  EXPECT_EQ(canister_.get_balance(address(4)).value, 0);
  EXPECT_EQ(canister_.get_balance(address(5)).value, 2 * 50 * bitcoin::kCoin);
}

TEST_F(CanisterTest, AnchorAdvancePrunesForks) {
  feed(extend(1, 1));
  Hash256 fork_point = params_.genesis_header.hash();
  Block fork = make_block(fork_point, 6);
  feed({fork});
  EXPECT_EQ(canister_.unstable_block_count(), 2u);
  // Extend main chain until the height-1 block is stable; the fork dies.
  feed(extend(7, 1));
  EXPECT_GE(canister_.anchor_height(), 1);
  EXPECT_FALSE(canister_.header_tree().contains(fork.hash()));
  for (const auto& hash : canister_.header_tree().blocks_at_height(1)) {
    EXPECT_NE(hash, fork.hash());
  }
}

TEST_F(CanisterTest, InvalidBlocksIgnored) {
  auto blocks = extend(2);
  Block bad = blocks[0];
  bad.transactions.push_back(bad.transactions[0]);  // duplicate coinbase
  adapter::AdapterResponse response;
  response.blocks.emplace_back(bad, bad.header);
  auto result = canister_.process_response(response, now_s());
  EXPECT_EQ(result.blocks_stored, 0u);
  EXPECT_EQ(canister_.tip_height(), 0);
}

TEST_F(CanisterTest, MismatchedHeaderBlockPairIgnored) {
  auto blocks = extend(2);
  adapter::AdapterResponse response;
  response.blocks.emplace_back(blocks[0], blocks[1].header);  // mismatch
  auto result = canister_.process_response(response, now_s());
  EXPECT_EQ(result.blocks_stored, 0u);
}

TEST_F(CanisterTest, SendTransactionValidatesSyntaxOnly) {
  EXPECT_EQ(canister_.send_transaction(util::Bytes{0xde, 0xad}), Status::kMalformedTransaction);
  // Well-formed but unfunded transaction is accepted (no validation, §III-C).
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 0x77;
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{1000, script(1)});
  EXPECT_EQ(canister_.send_transaction(tx.serialize()), Status::kOk);
  EXPECT_EQ(canister_.pending_transactions(), 1u);
}

TEST_F(CanisterTest, MakeRequestShape) {
  auto blocks = extend(3);
  feed(blocks);
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout.txid.data[0] = 1;
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{5, script(1)});
  canister_.send_transaction(tx.serialize());

  auto request = canister_.make_request();
  EXPECT_EQ(request.anchor, canister_.anchor_hash());
  EXPECT_EQ(request.processed.size(), 3u);  // A = unstable blocks we hold
  EXPECT_EQ(request.transactions.size(), 1u);
  EXPECT_EQ(canister_.pending_transactions(), 0u);  // drained
}

TEST_F(CanisterTest, MemoryAccountingMoves) {
  auto before = canister_.memory_bytes();
  feed(extend(8, 1));
  EXPECT_GT(canister_.memory_bytes(), before);
  EXPECT_GT(canister_.utxo_count(), 0u);
}

TEST_F(CanisterTest, MeterChargesForReads) {
  feed(extend(3, 1));
  auto before = canister_.meter().count();
  canister_.get_balance(address(1));
  EXPECT_GT(canister_.meter().count(), before);
}

}  // namespace
}  // namespace icbtc::canister
