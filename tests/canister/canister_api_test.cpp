// Tests for the extended canister API: get_current_fee_percentiles and
// get_block_headers.
#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"

namespace icbtc::canister {
namespace {

using bitcoin::Block;
using bitcoin::ChainParams;
using util::Hash256;

class CanisterApiTest : public ::testing::Test {
 protected:
  CanisterApiTest()
      : canister_(params_, CanisterConfig::for_params(params_)),
        build_tree_(params_, params_.genesis_header) {}

  util::Bytes script(std::uint8_t tag) {
    util::Hash160 h;
    h.data[0] = tag;
    return bitcoin::p2pkh_script(h);
  }

  Block make_block(std::vector<bitcoin::Transaction> txs) {
    time_ += 600;
    Block b = chain::build_child_block(build_tree_, tip_, time_, script(99),
                                       50 * bitcoin::kCoin, std::move(txs), next_tag_++);
    EXPECT_EQ(build_tree_.accept(b.header, now_s()), chain::AcceptResult::kAccepted);
    tip_ = b.hash();
    return b;
  }

  void feed(const std::vector<Block>& blocks) {
    adapter::AdapterResponse response;
    for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);
    canister_.process_response(response, now_s());
  }

  /// A funding tx with an unresolvable input (the canister cannot price it).
  bitcoin::Transaction unpriceable_tx(std::uint8_t tag) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout.txid.data[0] = tag;
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{100000, script(tag)});
    return tx;
  }

  std::int64_t now_s() const { return static_cast<std::int64_t>(time_) + 4000; }

  const ChainParams& params_ = ChainParams::regtest();
  BitcoinCanister canister_;
  chain::HeaderTree build_tree_;
  Hash256 tip_ = params_.genesis_header.hash();
  std::uint32_t time_ = params_.genesis_header.time;
  std::uint64_t next_tag_ = 1;
};

TEST_F(CanisterApiTest, FeePercentilesEmptyWithoutFeeData) {
  feed({make_block({}), make_block({})});  // coinbase-only blocks
  auto outcome = canister_.get_current_fee_percentiles();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value.empty());
}

TEST_F(CanisterApiTest, FeePercentilesRequireSync) {
  // Headers-only delivery starting at height 1: the tree outruns the
  // available blocks beyond τ, so the canister refuses to serve.
  adapter::AdapterResponse response;
  for (int i = 0; i < 5; ++i) response.next_headers.push_back(make_block({}).header);
  canister_.process_response(response, now_s());
  EXPECT_EQ(canister_.get_current_fee_percentiles().status, Status::kNotSynced);
  EXPECT_EQ(canister_.get_block_headers(0).status, Status::kNotSynced);
}

TEST_F(CanisterApiTest, FeePercentilesFromResolvableSpends) {
  // Block 1 funds outputs; block 2 spends them with varying fees.
  auto funding1 = unpriceable_tx(1);
  auto funding2 = unpriceable_tx(2);
  feed({make_block({funding1, funding2})});

  auto spend = [&](const bitcoin::Transaction& parent, bitcoin::Amount out_value,
                   std::uint8_t tag) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = bitcoin::OutPoint{parent.txid(), 0};
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{out_value, script(tag)});
    return tx;
  };
  // Fees: 100000-90000 = 10000 and 100000-50000 = 50000.
  feed({make_block({spend(funding1, 90000, 11), spend(funding2, 50000, 12)})});

  auto outcome = canister_.get_current_fee_percentiles();
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value.size(), 101u);
  // Millisat/vbyte: monotone percentiles, spread between the two fee rates.
  EXPECT_LE(outcome.value.front(), outcome.value.back());
  EXPECT_GT(outcome.value.back(), outcome.value.front());
  for (std::size_t i = 1; i < outcome.value.size(); ++i) {
    EXPECT_GE(outcome.value[i], outcome.value[i - 1]);
  }
}

TEST_F(CanisterApiTest, FeePercentilesUseNearestRank) {
  // Two samples with distinct rates. The median's fractional rank is
  // 0.5*(n-1) = 0.5, which nearest-rank rounds UP to the higher sample;
  // truncation would bias it to the lower one.
  auto funding1 = unpriceable_tx(1);
  auto funding2 = unpriceable_tx(2);
  feed({make_block({funding1, funding2})});
  auto spend = [&](const bitcoin::Transaction& parent, bitcoin::Amount out_value,
                   std::uint8_t tag) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = bitcoin::OutPoint{parent.txid(), 0};
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{out_value, script(tag)});
    return tx;
  };
  feed({make_block({spend(funding1, 90000, 11), spend(funding2, 50000, 12)})});

  auto outcome = canister_.get_current_fee_percentiles();
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value.size(), 101u);
  ASSERT_GT(outcome.value[100], outcome.value[0]);  // two distinct rates
  EXPECT_EQ(outcome.value[49], outcome.value[0]);    // rank 0.49 -> lower
  EXPECT_EQ(outcome.value[50], outcome.value[100]);  // rank 0.50 -> upper
  EXPECT_EQ(outcome.value[51], outcome.value[100]);  // rank 0.51 -> upper
}

TEST_F(CanisterApiTest, FeePercentilesSkipUnresolvableTransactions) {
  // A block containing only unpriceable transactions yields no data.
  feed({make_block({unpriceable_tx(3), unpriceable_tx(4)})});
  auto outcome = canister_.get_current_fee_percentiles();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value.empty());
}

TEST_F(CanisterApiTest, FeeWindowLimitsScan) {
  CanisterConfig config = CanisterConfig::for_params(params_);
  config.fee_window_blocks = 1;
  BitcoinCanister narrow(params_, config);
  auto funding = unpriceable_tx(5);
  auto b1 = make_block({funding});
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint{funding.txid(), 0};
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{90000, script(6)});
  auto b2 = make_block({tx});
  auto b3 = make_block({});  // fee tx now outside the 1-block window
  adapter::AdapterResponse response;
  for (const auto& b : {b1, b2, b3}) response.blocks.emplace_back(b, b.header);
  narrow.process_response(response, now_s());
  auto outcome = narrow.get_current_fee_percentiles();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value.empty());
}

TEST_F(CanisterApiTest, BlockHeadersFullRange) {
  std::vector<Block> blocks;
  for (int i = 0; i < 5; ++i) blocks.push_back(make_block({}));
  feed(blocks);
  auto outcome = canister_.get_block_headers(0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value.tip_height, 5);
  ASSERT_EQ(outcome.value.headers.size(), 6u);  // genesis..5
  EXPECT_EQ(outcome.value.headers[0], params_.genesis_header);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(outcome.value.headers[static_cast<std::size_t>(i + 1)], blocks[static_cast<std::size_t>(i)].header);
  }
}

TEST_F(CanisterApiTest, BlockHeadersSubrangeAndRangeChecks) {
  std::vector<Block> blocks;
  for (int i = 0; i < 4; ++i) blocks.push_back(make_block({}));
  feed(blocks);
  auto outcome = canister_.get_block_headers(2, 3);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value.headers.size(), 2u);
  EXPECT_EQ(outcome.value.headers[0], blocks[1].header);

  EXPECT_EQ(canister_.get_block_headers(-1, 2).status, Status::kBadRange);
  EXPECT_EQ(canister_.get_block_headers(3, 2).status, Status::kBadRange);
  EXPECT_EQ(canister_.get_block_headers(0, 99).status, Status::kBadRange);
}

TEST_F(CanisterApiTest, BlockHeadersSpanAnchor) {
  // Push enough blocks that some become stable (δ=6 regtest): the range then
  // crosses archived headers, the anchor, and unstable headers.
  std::vector<Block> blocks;
  for (int i = 0; i < 10; ++i) blocks.push_back(make_block({}));
  feed(blocks);
  ASSERT_GT(canister_.anchor_height(), 0);
  auto outcome = canister_.get_block_headers(0);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value.headers.size(), 11u);
  EXPECT_EQ(outcome.value.headers[0], params_.genesis_header);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(outcome.value.headers[static_cast<std::size_t>(i + 1)],
              blocks[static_cast<std::size_t>(i)].header)
        << "height " << i + 1;
  }
}

}  // namespace
}  // namespace icbtc::canister
