#include "util/byteio.h"

#include <gtest/gtest.h>

namespace icbtc::util {
namespace {

TEST(ByteIoTest, LittleEndianRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16le(0x1234);
  w.u32le(0xdeadbeef);
  w.u64le(0x0123456789abcdefULL);
  w.i32le(-5);
  w.i64le(-123456789012345LL);

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16le(), 0x1234);
  EXPECT_EQ(r.u32le(), 0xdeadbeefu);
  EXPECT_EQ(r.u64le(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i32le(), -5);
  EXPECT_EQ(r.i64le(), -123456789012345LL);
  EXPECT_TRUE(r.done());
}

TEST(ByteIoTest, LittleEndianByteOrder) {
  ByteWriter w;
  w.u32le(0x01020304);
  EXPECT_EQ(to_hex(w.data()), "04030201");
}

TEST(ByteIoTest, ReadPastEndThrows) {
  Bytes buf = {1, 2};
  ByteReader r(buf);
  r.u8();
  r.u8();
  EXPECT_THROW(r.u8(), DecodeError);
}

struct VarintCase {
  std::uint64_t value;
  std::string hex;
};

class VarintTest : public ::testing::TestWithParam<VarintCase> {};

TEST_P(VarintTest, RoundTripsWithCanonicalEncoding) {
  const auto& p = GetParam();
  ByteWriter w;
  w.varint(p.value);
  EXPECT_EQ(to_hex(w.data()), p.hex);
  ByteReader r(w.data());
  EXPECT_EQ(r.varint(), p.value);
  EXPECT_TRUE(r.done());
}

INSTANTIATE_TEST_SUITE_P(
    Canonical, VarintTest,
    ::testing::Values(VarintCase{0, "00"}, VarintCase{1, "01"}, VarintCase{0xfc, "fc"},
                      VarintCase{0xfd, "fdfd00"}, VarintCase{0xffff, "fdffff"},
                      VarintCase{0x10000, "fe00000100"}, VarintCase{0xffffffff, "feffffffff"},
                      VarintCase{0x100000000ULL, "ff0000000001000000"},
                      VarintCase{0xffffffffffffffffULL, "ffffffffffffffffff"}));

TEST(ByteIoTest, VarintRejectsNonCanonical) {
  // 0xfd prefix encoding a value < 0xfd.
  Bytes bad1 = from_hex("fd0100");
  EXPECT_THROW(ByteReader(bad1).varint(), DecodeError);
  // 0xfe prefix encoding a value that fits in 16 bits.
  Bytes bad2 = from_hex("fe00010000");
  EXPECT_THROW(ByteReader(bad2).varint(), DecodeError);
  // 0xff prefix encoding a value that fits in 32 bits.
  Bytes bad3 = from_hex("ff0000000100000000");
  EXPECT_THROW(ByteReader(bad3).varint(), DecodeError);
}

TEST(ByteIoTest, VarBytesRoundTrip) {
  ByteWriter w;
  Bytes payload = {9, 8, 7, 6};
  w.var_bytes(payload);
  ByteReader r(w.data());
  EXPECT_EQ(r.var_bytes(), payload);
}

TEST(ByteIoTest, VarBytesLengthBeyondBufferThrows) {
  // Claims 200 bytes but provides 2.
  Bytes bad = {200, 1, 2};
  ByteReader r(bad);
  EXPECT_THROW(r.var_bytes(), DecodeError);
}

TEST(ByteIoTest, FixedAndHashReads) {
  ByteWriter w;
  Bytes h(32);
  for (int i = 0; i < 32; ++i) h[static_cast<size_t>(i)] = static_cast<std::uint8_t>(i);
  w.bytes(h);
  ByteReader r(w.data());
  Hash256 parsed = r.hash256();
  EXPECT_EQ(parsed.data[0], 0);
  EXPECT_EQ(parsed.data[31], 31);
}

TEST(ByteIoTest, StrWritesRawCharacters) {
  ByteWriter w;
  w.str("abc");
  EXPECT_EQ(to_hex(w.data()), "616263");
}

}  // namespace
}  // namespace icbtc::util
