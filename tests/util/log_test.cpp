#include "util/log.h"

#include <gtest/gtest.h>

namespace icbtc::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kOff); }
};

TEST_F(LogTest, DefaultLevelIsOff) { EXPECT_EQ(log_level(), LogLevel::kOff); }

TEST_F(LogTest, SetAndGetLevel) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST_F(LogTest, FormatProducesPrintfStyleOutput) {
  EXPECT_EQ(detail::format("plain"), "plain");
  EXPECT_EQ(detail::format("%d + %d = %s", 1, 2, "three"), "1 + 2 = three");
  EXPECT_EQ(detail::format("%05u", 42u), "00042");
}

TEST_F(LogTest, SuppressedBelowLevelDoesNotFormat) {
  // Logging below the level must be a no-op (cheap in hot paths); this just
  // exercises the guard branch.
  set_log_level(LogLevel::kError);
  ICBTC_LOG_DEBUG("test", "dropped %d", 1);
  ICBTC_LOG_INFO("test", "dropped %d", 2);
  ICBTC_LOG_WARN("test", "dropped %d", 3);
  SUCCEED();
}

TEST_F(LogTest, EmittedAtOrAboveLevel) {
  set_log_level(LogLevel::kDebug);
  // Writes to stderr; just verify no crash with varied arity.
  ICBTC_LOG_DEBUG("component", "no args");
  ICBTC_LOG_INFO("component", "one: %s", "arg");
  ICBTC_LOG_WARN("component", "two: %d %d", 1, 2);
  SUCCEED();
}

}  // namespace
}  // namespace icbtc::util
