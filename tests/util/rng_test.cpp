#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace icbtc::util {
namespace {

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextRangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.next_range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_THROW(rng.next_range(5, 4), std::invalid_argument);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(13);
  double mean = 600.0;
  double sum = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.next_exponential(mean);
  EXPECT_NEAR(sum / kSamples, mean, mean * 0.05);
  EXPECT_THROW(rng.next_exponential(0.0), std::invalid_argument);
}

TEST(RngTest, NextBytesLengthAndDeterminism) {
  Rng a(5), b(5);
  auto ba = a.next_bytes(37);
  auto bb = b.next_bytes(37);
  EXPECT_EQ(ba.size(), 37u);
  EXPECT_EQ(ba, bb);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(23);
  auto idx = rng.sample_indices(100, 10);
  EXPECT_EQ(idx.size(), 10u);
  std::set<std::size_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 10u);
  for (auto i : idx) EXPECT_LT(i, 100u);
  EXPECT_THROW(rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(29);
  auto idx = rng.sample_indices(5, 5);
  std::sort(idx.begin(), idx.end());
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(31);
  parent_copy.next();  // advance past the fork draw
  EXPECT_NE(child.next(), parent_copy.next());
}

}  // namespace
}  // namespace icbtc::util
