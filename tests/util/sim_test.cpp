#include "util/sim.h"

#include <gtest/gtest.h>

namespace icbtc::util {
namespace {

TEST(SimTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(30 * kSecond, [&] { order.push_back(3); });
  sim.schedule(10 * kSecond, [&] { order.push_back(1); });
  sim.schedule(20 * kSecond, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30 * kSecond);
}

TEST(SimTest, TiesBreakByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(kSecond, [&] { order.push_back(1); });
  sim.schedule(kSecond, [&] { order.push_back(2); });
  sim.schedule(kSecond, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimTest, NestedScheduling) {
  Simulation sim;
  std::vector<SimTime> fire_times;
  sim.schedule(kSecond, [&] {
    fire_times.push_back(sim.now());
    sim.schedule(kSecond, [&] { fire_times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(fire_times.size(), 2u);
  EXPECT_EQ(fire_times[0], kSecond);
  EXPECT_EQ(fire_times[1], 2 * kSecond);
}

TEST(SimTest, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto h = sim.schedule(kSecond, [&] { fired = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(SimTest, CancelInvalidHandleIsSafe) {
  Simulation sim;
  sim.cancel(EventHandle{});
  sim.cancel(EventHandle{999});
  EXPECT_EQ(sim.run(), 0u);
}

TEST(SimTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) sim.schedule(i * kSecond, [&] { ++count; });
  sim.run_until(5 * kSecond);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 5 * kSecond);
  sim.run();
  EXPECT_EQ(count, 10);
}

TEST(SimTest, RunUntilAdvancesClockWhenIdle) {
  Simulation sim;
  sim.run_until(kHour);
  EXPECT_EQ(sim.now(), kHour);
}

TEST(SimTest, NegativeDelayClampsToNow) {
  Simulation sim;
  sim.schedule(10 * kSecond, [&] {
    sim.schedule(-5 * kSecond, [&] { EXPECT_EQ(sim.now(), 10 * kSecond); });
  });
  sim.run();
}

TEST(SimTest, PendingCount) {
  Simulation sim;
  auto h1 = sim.schedule(kSecond, [] {});
  sim.schedule(2 * kSecond, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(h1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_TRUE(sim.empty());
}

TEST(SimTest, MaxEventsLimit) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(i, [&] { ++count; });
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(count, 3);
}

TEST(SimTest, FormatTime) {
  EXPECT_EQ(format_time(0), "00:00:00.000");
  EXPECT_EQ(format_time(kSecond + 500 * kMillisecond), "00:00:01.500");
  EXPECT_EQ(format_time(kDay + 2 * kHour + 3 * kMinute + 4 * kSecond + 5 * kMillisecond),
            "1d 02:03:04.005");
}

TEST(SimTest, DeterministicReplay) {
  auto run_once = [] {
    Simulation sim;
    std::vector<SimTime> log;
    for (int i = 0; i < 50; ++i) {
      sim.schedule((i * 37) % 100 * kMillisecond, [&, i] {
        log.push_back(sim.now() + i);
        if (i % 7 == 0) sim.schedule(3 * kMillisecond, [&] { log.push_back(sim.now()); });
      });
    }
    sim.run();
    return log;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace icbtc::util
