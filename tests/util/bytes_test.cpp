#include "util/bytes.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace icbtc::util {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(BytesTest, EmptyHex) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, FromHexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, FromHexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesTest, AppendConcatenates) {
  Bytes a = {1, 2};
  Bytes b = {3, 4, 5};
  append(a, b);
  EXPECT_EQ(a, (Bytes{1, 2, 3, 4, 5}));
}

TEST(BytesTest, EqualComparesContent) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  Bytes d = {1, 2};
  EXPECT_TRUE(equal(a, b));
  EXPECT_FALSE(equal(a, c));
  EXPECT_FALSE(equal(a, d));
}

TEST(FixedBytesTest, FromSpanValidatesLength) {
  Bytes ok(20, 0xaa);
  EXPECT_NO_THROW(Hash160::from_span(ok));
  Bytes bad(19, 0xaa);
  EXPECT_THROW(Hash160::from_span(bad), std::invalid_argument);
}

TEST(FixedBytesTest, OrderingAndEquality) {
  auto a = FixedBytes<4>::from_span(Bytes{0, 0, 0, 1});
  auto b = FixedBytes<4>::from_span(Bytes{0, 0, 0, 2});
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, a);
}

TEST(FixedBytesTest, IsZero) {
  FixedBytes<8> z;
  EXPECT_TRUE(z.is_zero());
  z.data[7] = 1;
  EXPECT_FALSE(z.is_zero());
}

TEST(Hash256Test, RpcHexIsByteReversed) {
  Hash256 h;
  h.data[0] = 0x01;
  h.data[31] = 0xff;
  std::string rpc = h.rpc_hex();
  EXPECT_EQ(rpc.substr(0, 2), "ff");
  EXPECT_EQ(rpc.substr(62, 2), "01");
  EXPECT_EQ(h.hex().substr(0, 2), "01");
}

TEST(Hash256Test, HashableInUnorderedSet) {
  std::unordered_set<Hash256> set;
  Hash256 a, b;
  b.data[5] = 9;
  set.insert(a);
  set.insert(b);
  set.insert(a);
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace icbtc::util
