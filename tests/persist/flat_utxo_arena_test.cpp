// FlatUtxoArena: the compact per-shard UTXO backing store. Covers the
// open-addressing tables, script interning, canonical chain order,
// tombstone compaction, exact byte accounting, and a randomized
// differential check against the node-map oracle backend.
#include "persist/flat_utxo_arena.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "persist/shard_store.h"
#include "util/rng.h"

namespace icbtc::persist {
namespace {

bitcoin::OutPoint op(std::uint8_t tag, std::uint32_t vout = 0) {
  bitcoin::OutPoint o;
  o.txid.data.fill(tag);
  o.vout = vout;
  return o;
}

util::Bytes script(std::uint8_t tag, std::size_t len = 25) {
  util::Bytes s(len, tag);
  if (!s.empty()) s[0] = 0x76;  // arbitrary leading byte; content is opaque here
  return s;
}

struct Utxo {
  bitcoin::OutPoint outpoint;
  bitcoin::Amount value;
  int height;
};

std::vector<Utxo> collect(const FlatUtxoArena& arena, const util::Bytes& s) {
  std::vector<Utxo> out;
  auto fn = [&](const bitcoin::OutPoint& o, bitcoin::Amount v, int h) {
    out.push_back(Utxo{o, v, h});
  };
  arena.for_each_of_script(s, FlatUtxoArena::UtxoVisitor(fn));
  return out;
}

TEST(FlatUtxoArenaTest, InsertFindErase) {
  FlatUtxoArena arena;
  EXPECT_TRUE(arena.insert(op(1), 500, 10, script(1)));
  EXPECT_EQ(arena.size(), 1u);
  EXPECT_TRUE(arena.contains(op(1)));
  auto found = arena.find(op(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->value, 500);
  EXPECT_EQ(found->height, 10);
  EXPECT_FALSE(arena.find(op(2)).has_value());

  auto erased = arena.erase(op(1));
  ASSERT_TRUE(erased.has_value());
  EXPECT_EQ(erased->value, 500);
  EXPECT_EQ(erased->script_len, 25u);
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_FALSE(arena.contains(op(1)));
  EXPECT_FALSE(arena.erase(op(1)).has_value());
}

TEST(FlatUtxoArenaTest, FirstWriteWinsOnDuplicateOutpoint) {
  FlatUtxoArena arena;
  EXPECT_TRUE(arena.insert(op(1), 100, 5, script(1)));
  EXPECT_FALSE(arena.insert(op(1), 999, 9, script(2)));
  auto found = arena.find(op(1));
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->value, 100);
  EXPECT_EQ(found->height, 5);
  // The losing insert must not have grown the script table either.
  EXPECT_EQ(arena.script_utxo_count(script(2)), 0u);
}

TEST(FlatUtxoArenaTest, ScriptChainCanonicalOrder) {
  // Canonical get_utxos order: height descending, outpoint ascending within
  // a height — regardless of insertion order.
  FlatUtxoArena arena;
  util::Bytes s = script(7);
  arena.insert(op(3), 30, 5, s);
  arena.insert(op(1), 10, 9, s);
  arena.insert(op(2), 20, 5, s);
  arena.insert(op(4), 40, 12, s);

  auto utxos = collect(arena, s);
  ASSERT_EQ(utxos.size(), 4u);
  EXPECT_EQ(utxos[0].height, 12);
  EXPECT_EQ(utxos[1].height, 9);
  EXPECT_EQ(utxos[2].height, 5);
  EXPECT_EQ(utxos[3].height, 5);
  EXPECT_EQ(utxos[2].outpoint, op(2));  // outpoint asc within height 5
  EXPECT_EQ(utxos[3].outpoint, op(3));
  EXPECT_EQ(arena.script_utxo_count(s), 4u);
}

TEST(FlatUtxoArenaTest, ScriptInterning) {
  FlatUtxoArena arena;
  util::Bytes s = script(3, 500);  // large script, shared by many UTXOs
  std::uint64_t before = 0;
  for (std::uint8_t i = 0; i < 50; ++i) {
    arena.insert(op(i), 100, i, s);
    if (i == 0) before = arena.live_bytes();
  }
  EXPECT_EQ(arena.distinct_scripts(), 1u);
  // 49 further entries share the interned bytes: growth per entry must be
  // far below the script length.
  std::uint64_t growth = (arena.live_bytes() - before) / 49;
  EXPECT_LT(growth, 100u);

  util::Bytes out;
  ASSERT_TRUE(arena.script_of(op(7), out));
  EXPECT_EQ(out, s);
}

TEST(FlatUtxoArenaTest, ScriptRecordRetiredWhenChainEmpties) {
  FlatUtxoArena arena;
  arena.insert(op(1), 100, 1, script(1));
  arena.insert(op(2), 200, 2, script(2));
  arena.erase(op(1));
  EXPECT_EQ(arena.distinct_scripts(), 1u);
  EXPECT_EQ(arena.script_utxo_count(script(1)), 0u);
  // Reinserting the same script works after retirement.
  arena.insert(op(3), 300, 3, script(1));
  EXPECT_EQ(arena.distinct_scripts(), 2u);
  EXPECT_EQ(arena.script_utxo_count(script(1)), 1u);
}

TEST(FlatUtxoArenaTest, CompactionPreservesStateAndReclaimsBytes) {
  FlatUtxoArena arena;
  for (int i = 0; i < 5000; ++i) {
    bitcoin::OutPoint o = op(static_cast<std::uint8_t>(i % 251), static_cast<std::uint32_t>(i));
    arena.insert(o, i, i, script(static_cast<std::uint8_t>(i % 17)));
  }
  // Erase 80%: compaction must trigger off the deterministic dead-count
  // thresholds alone.
  for (int i = 0; i < 5000; ++i) {
    if (i % 5 == 0) continue;
    arena.erase(op(static_cast<std::uint8_t>(i % 251), static_cast<std::uint32_t>(i)));
  }
  EXPECT_GT(arena.compactions(), 0u);
  EXPECT_EQ(arena.size(), 1000u);
  for (int i = 0; i < 5000; i += 5) {
    auto found = arena.find(op(static_cast<std::uint8_t>(i % 251), static_cast<std::uint32_t>(i)));
    ASSERT_TRUE(found.has_value()) << i;
    EXPECT_EQ(found->value, i);
  }
  // After an explicit compact the resident capacity must be within a small
  // multiple of the live bytes (tables are pow2-sized, entries exact).
  arena.compact();
  EXPECT_LT(arena.resident_bytes(), 4 * arena.live_bytes());
}

TEST(FlatUtxoArenaTest, DeterministicAcrossIdenticalHistories) {
  // Two arenas fed the same operation sequence must visit in identical
  // order — the checkpoint determinism contract.
  auto run = [] {
    FlatUtxoArena arena;
    util::Rng rng(42);
    for (int i = 0; i < 3000; ++i) {
      auto o = op(static_cast<std::uint8_t>(rng.next_below(256)),
                  static_cast<std::uint32_t>(rng.next_below(64)));
      if (rng.chance(0.35)) {
        arena.erase(o);
      } else {
        arena.insert(o, static_cast<bitcoin::Amount>(rng.next_below(100000)),
                     static_cast<int>(rng.next_below(1000)),
                     script(static_cast<std::uint8_t>(rng.next_below(40))));
      }
    }
    std::vector<std::pair<bitcoin::OutPoint, bitcoin::Amount>> order;
    auto fn = [&](const bitcoin::OutPoint& o, bitcoin::Amount v, int, util::ByteSpan) {
      order.emplace_back(o, v);
    };
    arena.visit(FlatUtxoArena::EntryVisitor(fn));
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(FlatUtxoArenaTest, DifferentialAgainstMapBackend) {
  // Random op soup applied to both backends: every read must agree.
  ArenaShardStore arena;
  MapShardStore map;
  util::Rng rng(7);
  std::vector<bitcoin::OutPoint> pool;
  for (int i = 0; i < 8000; ++i) {
    if (!pool.empty() && rng.chance(0.4)) {
      auto o = pool[rng.next_below(pool.size())];
      auto a = arena.erase(o);
      auto b = map.erase(o);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a) {
        EXPECT_EQ(a->value, b->value);
        EXPECT_EQ(a->script_len, b->script_len);
      }
    } else {
      auto o = op(static_cast<std::uint8_t>(rng.next_below(256)),
                  static_cast<std::uint32_t>(rng.next_below(16)));
      auto v = static_cast<bitcoin::Amount>(rng.next_below(1000000));
      int h = static_cast<int>(rng.next_below(500));
      util::Bytes s = script(static_cast<std::uint8_t>(rng.next_below(64)),
                             10 + rng.next_below(60));
      ASSERT_EQ(arena.insert(o, v, h, s), map.insert(o, v, h, s));
      pool.push_back(o);
    }
  }
  ASSERT_EQ(arena.size(), map.size());
  ASSERT_EQ(arena.distinct_scripts(), map.distinct_scripts());
  for (std::uint8_t tag = 0; tag < 64; ++tag) {
    for (std::size_t len = 10; len < 70; ++len) {
      util::Bytes s = script(tag, len);
      ASSERT_EQ(arena.script_utxo_count(s), map.script_utxo_count(s));
      std::vector<Utxo> a_list, m_list;
      auto fa = [&](const bitcoin::OutPoint& o, bitcoin::Amount v, int h) {
        a_list.push_back(Utxo{o, v, h});
      };
      auto fm = [&](const bitcoin::OutPoint& o, bitcoin::Amount v, int h) {
        m_list.push_back(Utxo{o, v, h});
      };
      arena.for_each_of_script(s, ShardStore::UtxoVisitor(fa));
      map.for_each_of_script(s, ShardStore::UtxoVisitor(fm));
      ASSERT_EQ(a_list.size(), m_list.size());
      for (std::size_t i = 0; i < a_list.size(); ++i) {
        EXPECT_EQ(a_list[i].outpoint, m_list[i].outpoint);
        EXPECT_EQ(a_list[i].value, m_list[i].value);
        EXPECT_EQ(a_list[i].height, m_list[i].height);
      }
    }
  }
}

TEST(FlatUtxoArenaTest, ByteAccountingTracksLiveSet) {
  FlatUtxoArena arena;
  EXPECT_EQ(arena.live_bytes(), 0u);
  arena.insert(op(1), 100, 1, script(1));
  std::uint64_t one = arena.live_bytes();
  EXPECT_GT(one, 0u);
  arena.insert(op(2), 200, 2, script(2));
  std::uint64_t two = arena.live_bytes();
  EXPECT_GT(two, one);
  arena.erase(op(2));
  EXPECT_EQ(arena.live_bytes(), one);
  // Resident capacity is never below live bytes.
  EXPECT_GE(arena.resident_bytes(), arena.live_bytes());
}

TEST(FlatUtxoArenaTest, ArenaBeatsMapResidencyAtScale) {
  // The headline claim: at realistic shape (25-byte scripts, some sharing)
  // the arena holds the same set in a fraction of the map backend's bytes.
  ArenaShardStore arena;
  MapShardStore map;
  util::Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    auto o = op(static_cast<std::uint8_t>(i % 256), static_cast<std::uint32_t>(i / 256));
    util::Bytes s = script(static_cast<std::uint8_t>(rng.next_below(200)), 25);
    arena.insert(o, 1000 + i, i / 10, s);
    map.insert(o, 1000 + i, i / 10, s);
  }
  EXPECT_GE(static_cast<double>(map.resident_bytes()),
            2.0 * static_cast<double>(arena.resident_bytes()));
}

}  // namespace
}  // namespace icbtc::persist
