// Checkpoint envelope codec: canonical bytes, round-trips, and the
// corruption known-answer tests — truncation, flipped CRC bytes, wrong
// magic/version — every one a typed CheckpointError, never UB or a
// partially parsed envelope.
#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include "persist/crc32.h"

namespace icbtc::persist {
namespace {

util::Bytes sample_envelope() {
  CheckpointWriter w;
  auto& a = w.begin_section(1);
  a.u32le(0xdeadbeef);
  a.str("section one");
  auto& b = w.begin_section(5);
  b.u64le(42);
  auto& c = w.begin_section(9);
  c.var_bytes(util::Bytes{1, 2, 3});
  return std::move(w).finish();
}

CheckpointError::Code decode_code(util::ByteSpan file) {
  try {
    CheckpointReader reader(file);
  } catch (const CheckpointError& e) {
    return e.code();
  }
  ADD_FAILURE() << "expected CheckpointError";
  return CheckpointError::Code::kIo;
}

TEST(Crc32Test, KnownAnswers) {
  // IEEE reflected CRC-32 reference vectors.
  EXPECT_EQ(crc32(util::ByteSpan{}), 0x00000000u);
  util::Bytes check{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  util::Bytes hello{'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(crc32(hello), 0x3610A686u);
}

TEST(Crc32Test, Chainable) {
  util::Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  std::uint32_t split = crc32(util::ByteSpan(data.data() + 4, 5),
                              crc32(util::ByteSpan(data.data(), 4)));
  EXPECT_EQ(split, crc32(data));
}

TEST(CheckpointCodecTest, RoundTrip) {
  util::Bytes file = sample_envelope();
  CheckpointReader reader(file);
  EXPECT_EQ(reader.section_count(), 3u);
  EXPECT_TRUE(reader.has_section(1));
  EXPECT_TRUE(reader.has_section(5));
  EXPECT_TRUE(reader.has_section(9));
  EXPECT_FALSE(reader.has_section(2));

  util::ByteReader a = reader.section(1);
  EXPECT_EQ(a.u32le(), 0xdeadbeefu);
  util::ByteReader b = reader.section(5);
  EXPECT_EQ(b.u64le(), 42u);
  util::ByteReader c = reader.section(9);
  EXPECT_EQ(c.var_bytes(), (util::Bytes{1, 2, 3}));
}

TEST(CheckpointCodecTest, CanonicalBytes) {
  // Same logical content → byte-identical envelope (the CI `cmp` gate).
  EXPECT_EQ(sample_envelope(), sample_envelope());
}

TEST(CheckpointCodecTest, EmptyEnvelopeRoundTrips) {
  util::Bytes file = std::move(CheckpointWriter{}).finish();
  CheckpointReader reader(file);
  EXPECT_EQ(reader.section_count(), 0u);
  EXPECT_THROW(reader.section(1), CheckpointError);
}

TEST(CheckpointCodecTest, WriterRejectsNonMonotoneIds) {
  CheckpointWriter w;
  w.begin_section(3);
  EXPECT_THROW(w.begin_section(3), CheckpointError);
  EXPECT_THROW(w.begin_section(2), CheckpointError);
}

// ---------------------------------------------------------------------------
// Corruption KATs

TEST(CheckpointCorruptionTest, BadMagic) {
  util::Bytes file = sample_envelope();
  file[0] ^= 0xff;
  EXPECT_EQ(decode_code(file), CheckpointError::Code::kBadMagic);
}

TEST(CheckpointCorruptionTest, BadVersion) {
  util::Bytes file = sample_envelope();
  file[4] += 1;
  EXPECT_EQ(decode_code(file), CheckpointError::Code::kBadVersion);
}

TEST(CheckpointCorruptionTest, NonzeroFlags) {
  util::Bytes file = sample_envelope();
  file[12] = 1;
  EXPECT_EQ(decode_code(file), CheckpointError::Code::kBadSection);
}

TEST(CheckpointCorruptionTest, TruncatedAtEveryLength) {
  // Cutting the file anywhere must yield a typed error, never UB. (Shorter
  // prefixes usually read as truncation; cutting inside the trailing file
  // CRC can also surface as a CRC mismatch. Both are typed.)
  util::Bytes file = sample_envelope();
  for (std::size_t len = 0; len < file.size(); ++len) {
    util::ByteSpan prefix(file.data(), len);
    CheckpointError::Code code = decode_code(prefix);
    EXPECT_TRUE(code == CheckpointError::Code::kTruncated ||
                code == CheckpointError::Code::kCrcMismatch)
        << "len=" << len << " code=" << to_string(code);
  }
}

TEST(CheckpointCorruptionTest, FlippedSectionCrcByte) {
  util::Bytes file = sample_envelope();
  // First section header starts at 16: id(4) + len(8) then crc at 28.
  file[28] ^= 0x01;
  EXPECT_EQ(decode_code(file), CheckpointError::Code::kCrcMismatch);
}

TEST(CheckpointCorruptionTest, FlippedPayloadByte) {
  util::Bytes file = sample_envelope();
  file[32] ^= 0x40;  // first payload byte of section 1
  EXPECT_EQ(decode_code(file), CheckpointError::Code::kCrcMismatch);
}

TEST(CheckpointCorruptionTest, FlippedFileCrcByte) {
  util::Bytes file = sample_envelope();
  file[file.size() - 1] ^= 0x80;
  EXPECT_EQ(decode_code(file), CheckpointError::Code::kCrcMismatch);
}

TEST(CheckpointCorruptionTest, TrailingBytes) {
  util::Bytes file = sample_envelope();
  file.push_back(0x00);
  CheckpointError::Code code = decode_code(file);
  // The extra byte either trips the envelope walk (trailing) or, because the
  // parser sizes sections against the file end, a bounds/CRC check. Typed
  // either way; the canonical single-byte case is kTrailingBytes.
  EXPECT_TRUE(code == CheckpointError::Code::kTrailingBytes ||
              code == CheckpointError::Code::kCrcMismatch ||
              code == CheckpointError::Code::kTruncated)
      << to_string(code);
}

TEST(CheckpointCorruptionTest, EveryFlippedBitIsTyped) {
  // Exhaustive single-bit-flip sweep: no flip may parse cleanly (the file
  // CRC covers every byte) and none may escape the typed error hierarchy.
  util::Bytes file = sample_envelope();
  for (std::size_t byte = 0; byte < file.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      util::Bytes corrupt = file;
      corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
      bool threw = false;
      try {
        CheckpointReader reader(corrupt);
      } catch (const CheckpointError&) {
        threw = true;
      }
      EXPECT_TRUE(threw) << "byte " << byte << " bit " << bit << " parsed cleanly";
    }
  }
}

TEST(CheckpointCodecTest, FileIoRoundTripAndErrors) {
  util::Bytes file = sample_envelope();
  std::string path = ::testing::TempDir() + "codec_test.ckpt";
  write_checkpoint_file(path, file);
  EXPECT_EQ(read_checkpoint_file(path), file);
  try {
    read_checkpoint_file(::testing::TempDir() + "does_not_exist.ckpt");
    FAIL() << "expected kIo";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.code(), CheckpointError::Code::kIo);
  }
}

}  // namespace
}  // namespace icbtc::persist
