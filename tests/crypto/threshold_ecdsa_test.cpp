#include "crypto/threshold_ecdsa.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace icbtc::crypto {
namespace {

util::Hash256 digest_of(const std::string& s) {
  return Sha256::hash(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

TEST(ThresholdEcdsaTest, DealerSharesReconstructMasterKey) {
  util::Rng rng(1);
  ThresholdEcdsaDealer dealer(3, 5, rng);
  std::vector<Share> shares;
  for (const auto& ks : dealer.key_shares()) shares.push_back(Share{ks.index, ks.x_share});
  shares.resize(3);
  U256 secret = shamir_reconstruct(shares);
  EXPECT_EQ(generator_mul(secret), dealer.master_public_key());
}

TEST(ThresholdEcdsaTest, SignWithExactThreshold) {
  ThresholdEcdsaService service(3, 5, 42);
  auto digest = digest_of("spend 1 BTC");
  Signature sig = service.sign(digest, {});
  EXPECT_TRUE(verify(service.public_key({}), digest, sig));
}

TEST(ThresholdEcdsaTest, SignWithAnySubset) {
  ThresholdEcdsaService service(3, 5, 43);
  auto digest = digest_of("msg");
  for (auto participants : std::vector<std::vector<std::uint32_t>>{
           {1, 2, 3}, {3, 4, 5}, {1, 3, 5}, {2, 4, 5}, {1, 2, 3, 4, 5}}) {
    Signature sig = service.sign(digest, {}, participants);
    EXPECT_TRUE(verify(service.public_key({}), digest, sig));
  }
}

TEST(ThresholdEcdsaTest, TooFewParticipantsThrows) {
  ThresholdEcdsaService service(3, 5, 44);
  EXPECT_THROW(service.sign(digest_of("m"), {}, {1, 2}), std::invalid_argument);
}

TEST(ThresholdEcdsaTest, InvalidParticipantIndicesThrow) {
  ThresholdEcdsaService service(2, 3, 45);
  EXPECT_THROW(service.sign(digest_of("m"), {}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(service.sign(digest_of("m"), {}, {1, 4}), std::invalid_argument);
  EXPECT_THROW(service.sign(digest_of("m"), {}, {2, 2}), std::invalid_argument);
}

TEST(ThresholdEcdsaTest, DerivedKeysDiffer) {
  ThresholdEcdsaService service(2, 3, 46);
  DerivationPath p1 = {{0x01}};
  DerivationPath p2 = {{0x02}};
  auto k0 = service.public_key({});
  auto k1 = service.public_key(p1);
  auto k2 = service.public_key(p2);
  EXPECT_NE(k1, k2);
  EXPECT_NE(k0, k1);
  EXPECT_TRUE(k1.on_curve());
  EXPECT_TRUE(k2.on_curve());
}

TEST(ThresholdEcdsaTest, EmptyPathIsMasterKey) {
  ThresholdEcdsaService service(2, 3, 47);
  EXPECT_EQ(service.public_key({}), service.public_key(DerivationPath{}));
}

TEST(ThresholdEcdsaTest, SignUnderDerivedKey) {
  ThresholdEcdsaService service(3, 4, 48);
  DerivationPath path = {{0xca, 0xfe}, {0x00, 0x01}};
  auto digest = digest_of("derived spend");
  Signature sig = service.sign(digest, path);
  EXPECT_TRUE(verify(service.public_key(path), digest, sig));
  // And not under the master key.
  EXPECT_FALSE(verify(service.public_key({}), digest, sig));
}

TEST(ThresholdEcdsaTest, DerivationIsDeterministic) {
  ThresholdEcdsaService a(2, 3, 49);
  DerivationPath path = {{0x01, 0x02}};
  EXPECT_EQ(a.public_key(path), a.public_key(path));
}

TEST(ThresholdEcdsaTest, PathComponentBoundariesMatter) {
  // {"ab"} and {"a","b"} must derive different keys (length-prefixing).
  ThresholdEcdsaService service(2, 3, 50);
  DerivationPath joined = {{0x61, 0x62}};
  DerivationPath split = {{0x61}, {0x62}};
  EXPECT_NE(service.public_key(joined), service.public_key(split));
}

TEST(ThresholdEcdsaTest, CombineDetectsCorruptPartial) {
  util::Rng rng(51);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  auto [pub, shares] = dealer.deal_presignature(rng);
  auto digest = digest_of("m");
  U256 tweak(0);
  std::vector<PartialSignature> partials = {
      compute_partial_signature(shares[0], pub, tweak, digest),
      compute_partial_signature(shares[1], pub, tweak, digest),
  };
  // Corrupt one partial.
  partials[1].s_share = scalar_ctx().add(partials[1].s_share, U256(1));
  EXPECT_FALSE(
      combine_partial_signatures(partials, pub, dealer.master_public_key(), digest).has_value());
}

TEST(ThresholdEcdsaTest, CombineRejectsDuplicateIndices) {
  util::Rng rng(52);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  auto [pub, shares] = dealer.deal_presignature(rng);
  auto digest = digest_of("m");
  auto p = compute_partial_signature(shares[0], pub, U256(0), digest);
  EXPECT_FALSE(combine_partial_signatures({p, p}, pub, dealer.master_public_key(), digest)
                   .has_value());
}

TEST(ThresholdEcdsaTest, ManualPartialFlowMatchesService) {
  util::Rng rng(53);
  ThresholdEcdsaDealer dealer(3, 5, rng);
  auto [pub, shares] = dealer.deal_presignature(rng);
  auto digest = digest_of("manual");
  std::vector<PartialSignature> partials;
  for (int i : {0, 2, 4}) {
    partials.push_back(compute_partial_signature(shares[static_cast<std::size_t>(i)], pub,
                                                 U256(0), digest));
  }
  auto sig = combine_partial_signatures(partials, pub, dealer.master_public_key(), digest);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(verify(dealer.master_public_key(), digest, *sig));
}

TEST(ThresholdEcdsaTest, PresignatureConsumption) {
  ThresholdEcdsaService service(2, 3, 54);
  EXPECT_EQ(service.presignatures_used(), 0u);
  service.sign(digest_of("a"), {});
  service.sign(digest_of("b"), {});
  EXPECT_EQ(service.presignatures_used(), 2u);
}

TEST(ThresholdEcdsaTest, IcMainnetParameters) {
  // IC subnets run threshold 2f+1 over n=3f+1; a 13-node subnet has f=4,
  // threshold 9.
  ThresholdEcdsaService service(9, 13, 55);
  auto digest = digest_of("ic-sized subnet");
  Signature sig = service.sign(digest, {{0x42}});
  EXPECT_TRUE(verify(service.public_key({{0x42}}), digest, sig));
}

}  // namespace
}  // namespace icbtc::crypto
