#include "crypto/secp256k1.h"

#include <gtest/gtest.h>

namespace icbtc::crypto {
namespace {

TEST(Secp256k1Test, GeneratorOnCurve) {
  EXPECT_TRUE(generator().on_curve());
  EXPECT_FALSE(generator().infinity);
}

TEST(Secp256k1Test, KnownMultiplesOfG) {
  // 2G, from the standard secp256k1 test vectors.
  AffinePoint two_g = generator_mul(U256(2));
  EXPECT_EQ(two_g.x.to_hex(), "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5");
  EXPECT_EQ(two_g.y.to_hex(), "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a");
  // 3G.
  AffinePoint three_g = generator_mul(U256(3));
  EXPECT_EQ(three_g.x.to_hex(),
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9");
  // 7G.
  AffinePoint seven_g = generator_mul(U256(7));
  EXPECT_EQ(seven_g.x.to_hex(),
            "5cbdf0646e5db4eaa398f365f2ea7a0e3d419b7e0330e39ce92bddedcac4f9bc");
}

TEST(Secp256k1Test, LargeScalarVector) {
  // k = 0xAA5E28D6...D1 from the SEC test vector collection.
  U256 k = U256::from_hex("aa5e28d6a97a2479a65527f7290311a3624d4cc0fa1578598ee3c2613bf99522");
  AffinePoint p = generator_mul(k);
  EXPECT_EQ(p.x.to_hex(), "34f9460f0e4f08393d192b3c5133a6ba099aa0ad9fd54ebccfacdfa239ff49c6");
  EXPECT_EQ(p.y.to_hex(), "0b71ea9bd730fd8923f6d25a7a91e7dd7728a960686cb5a901bb419e0f2ca232");
}

TEST(Secp256k1Test, OrderTimesGIsInfinity) {
  AffinePoint p = generator_mul(curve_order());
  EXPECT_TRUE(p.infinity);
}

TEST(Secp256k1Test, GeneratorMulMatchesScalarMul) {
  for (std::uint64_t k : {1ULL, 2ULL, 5ULL, 1000ULL, 123456789ULL}) {
    EXPECT_EQ(generator_mul(U256(k)), scalar_mul(U256(k), generator())) << k;
  }
  U256 big = U256::from_hex("fedcba9876543210fedcba9876543210fedcba9876543210fedcba9876543210");
  EXPECT_EQ(generator_mul(big), scalar_mul(big, generator()));
}

TEST(Secp256k1Test, AdditionAgreesWithScalars) {
  // (a+b)G == aG + bG.
  U256 a(123456), b(654321);
  AffinePoint sum_point = JacobianPoint::from_affine(generator_mul(a))
                              .add_affine(generator_mul(b))
                              .to_affine();
  EXPECT_EQ(sum_point, generator_mul(a + b));
}

TEST(Secp256k1Test, DoublingAgreesWithAddition) {
  AffinePoint g5 = generator_mul(U256(5));
  JacobianPoint j5 = JacobianPoint::from_affine(g5);
  EXPECT_EQ(j5.doubled().to_affine(), generator_mul(U256(10)));
  EXPECT_EQ(j5.add(j5).to_affine(), generator_mul(U256(10)));
}

TEST(Secp256k1Test, AddingInverseYieldsInfinity) {
  AffinePoint p = generator_mul(U256(9));
  AffinePoint neg = AffinePoint::make(p.x, field_ctx().neg(p.y));
  EXPECT_TRUE(neg.on_curve());
  auto sum = JacobianPoint::from_affine(p).add_affine(neg).to_affine();
  EXPECT_TRUE(sum.infinity);
}

TEST(Secp256k1Test, InfinityIsIdentity) {
  JacobianPoint inf = JacobianPoint::infinity_point();
  AffinePoint p = generator_mul(U256(11));
  EXPECT_EQ(inf.add_affine(p).to_affine(), p);
  EXPECT_EQ(JacobianPoint::from_affine(p).add(inf).to_affine(), p);
  EXPECT_TRUE(inf.doubled().is_infinity());
  EXPECT_TRUE(scalar_mul(U256(0), p).infinity);
}

TEST(Secp256k1Test, CompressedRoundTrip) {
  for (std::uint64_t k : {1ULL, 2ULL, 3ULL, 99999ULL}) {
    AffinePoint p = generator_mul(U256(k));
    auto enc = p.compressed();
    ASSERT_EQ(enc.size(), 33u);
    auto parsed = AffinePoint::parse(enc);
    ASSERT_TRUE(parsed.has_value()) << k;
    EXPECT_EQ(*parsed, p);
  }
}

TEST(Secp256k1Test, UncompressedRoundTrip) {
  AffinePoint p = generator_mul(U256(42));
  auto enc = p.uncompressed();
  ASSERT_EQ(enc.size(), 65u);
  auto parsed = AffinePoint::parse(enc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

TEST(Secp256k1Test, GeneratorCompressedEncoding) {
  EXPECT_EQ(util::to_hex(generator().compressed()),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798");
}

TEST(Secp256k1Test, ParseRejectsGarbage) {
  util::Bytes bad(33, 0x02);
  bad[1] = 0xff;  // x beyond any curve point with prefix pattern unlikely
  // Force x >= p to exercise range check.
  for (std::size_t i = 1; i < 33; ++i) bad[i] = 0xff;
  EXPECT_FALSE(AffinePoint::parse(bad).has_value());

  util::Bytes wrong_len(10, 0x02);
  EXPECT_FALSE(AffinePoint::parse(wrong_len).has_value());

  // Uncompressed point not on the curve.
  AffinePoint p = generator_mul(U256(4));
  auto enc = p.uncompressed();
  enc[64] ^= 0x01;
  EXPECT_FALSE(AffinePoint::parse(enc).has_value());
}

TEST(Secp256k1Test, ParseNonResidueFails) {
  // x = 5 has no curve point on secp256k1 (5^3+7 = 132 is a non-residue).
  util::Bytes enc(33, 0x00);
  enc[0] = 0x02;
  enc[32] = 0x05;
  EXPECT_FALSE(AffinePoint::parse(enc).has_value());
}

TEST(Secp256k1Test, DoubleMulMatchesSeparate) {
  U256 u1(777), u2(888);
  AffinePoint p = generator_mul(U256(31337));
  AffinePoint expect = JacobianPoint::from_affine(generator_mul(u1))
                           .add_affine(scalar_mul(u2, p))
                           .to_affine();
  EXPECT_EQ(double_mul(u1, u2, p), expect);
}

class ScalarMulProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalarMulProperty, HomomorphicOverAddition) {
  std::uint64_t seed = GetParam();
  U256 a(seed * 2654435761ULL + 1);
  U256 b(seed * 40503ULL + 7);
  AffinePoint lhs = JacobianPoint::from_affine(generator_mul(a))
                        .add_affine(generator_mul(b))
                        .to_affine();
  AffinePoint rhs = generator_mul(scalar_ctx().add(a, b));
  EXPECT_EQ(lhs, rhs);
  EXPECT_TRUE(lhs.on_curve());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScalarMulProperty, ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace icbtc::crypto
