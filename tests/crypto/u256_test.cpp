#include "crypto/u256.h"

#include <gtest/gtest.h>

#include "crypto/secp256k1.h"

namespace icbtc::crypto {
namespace {

TEST(U256Test, HexRoundTrip) {
  U256 v = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  EXPECT_EQ(v.to_hex(), "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
}

TEST(U256Test, ShortHexIsZeroPadded) {
  U256 v = U256::from_hex("ff");
  EXPECT_EQ(v, U256(255));
  EXPECT_EQ(v.to_hex(), std::string(62, '0') + "ff");
}

TEST(U256Test, ByteOrderBigEndian) {
  U256 v(0x0102030405060708ULL);
  auto be = v.to_be_bytes();
  EXPECT_EQ(be.data[31], 0x08);
  EXPECT_EQ(be.data[24], 0x01);
  EXPECT_EQ(be.data[0], 0x00);
  EXPECT_EQ(U256::from_be_bytes(be.span()), v);
}

TEST(U256Test, Comparison) {
  U256 a(5), b(6);
  U256 big = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  EXPECT_LT(a, b);
  EXPECT_LT(b, big);
  EXPECT_EQ(a, U256(5));
}

TEST(U256Test, AdditionWithCarry) {
  U256 max = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  U256 out;
  EXPECT_EQ(U256::add_with_carry(max, U256(1), out), 1u);
  EXPECT_TRUE(out.is_zero());
  EXPECT_EQ(U256::add_with_carry(U256(2), U256(3), out), 0u);
  EXPECT_EQ(out, U256(5));
}

TEST(U256Test, SubtractionWithBorrow) {
  U256 out;
  EXPECT_EQ(U256::sub_with_borrow(U256(5), U256(3), out), 0u);
  EXPECT_EQ(out, U256(2));
  EXPECT_EQ(U256::sub_with_borrow(U256(3), U256(5), out), 1u);
  // 3 - 5 wraps to 2^256 - 2.
  EXPECT_EQ(out.to_hex(), "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe");
}

TEST(U256Test, LimbCrossingCarry) {
  U256 a = U256::from_hex("000000000000000000000000000000000000000000000000ffffffffffffffff");
  U256 b(1);
  U256 sum = a + b;
  EXPECT_EQ(sum.to_hex(), "0000000000000000000000000000000000000000000000010000000000000000");
}

TEST(U256Test, BitLength) {
  EXPECT_EQ(U256(0).bit_length(), 0);
  EXPECT_EQ(U256(1).bit_length(), 1);
  EXPECT_EQ(U256(255).bit_length(), 8);
  EXPECT_EQ(U256(256).bit_length(), 9);
  EXPECT_EQ(U256::from_hex("8000000000000000000000000000000000000000000000000000000000000000")
                .bit_length(),
            256);
}

TEST(U256Test, BitAccess) {
  U256 v(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.is_odd());
  EXPECT_TRUE(U256(7).is_odd());
}

TEST(U256Test, Shifts) {
  U256 v(1);
  EXPECT_EQ(v.shifted_left(64), U256(0, 1, 0, 0));
  EXPECT_EQ(v.shifted_left(70), U256(0, 64, 0, 0));
  EXPECT_EQ(U256(0, 64, 0, 0).shifted_right(70), U256(1));
  EXPECT_EQ(v.shifted_left(256), U256(0));
  EXPECT_EQ(v.shifted_right(256), U256(0));
  U256 pattern = U256::from_hex("00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff00ff");
  EXPECT_EQ(pattern.shifted_left(8).shifted_right(8), pattern);
}

TEST(U256Test, MulFullSmall) {
  U512 p = mul_full(U256(7), U256(6));
  EXPECT_EQ(p.lo(), U256(42));
  EXPECT_TRUE(p.hi_is_zero());
}

TEST(U256Test, MulFullMaximal) {
  U256 max = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  U512 p = mul_full(max, max);
  // (2^256-1)^2 = 2^512 - 2^257 + 1.
  EXPECT_EQ(p.lo(), U256(1));
  EXPECT_EQ(p.hi().to_hex(),
            "fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffe");
}

TEST(ModCtxTest, RejectsSmallModulus) {
  EXPECT_THROW(ModCtx(U256(97)), std::invalid_argument);
}

TEST(ModCtxTest, FieldArithmeticIdentities) {
  const ModCtx& f = field_ctx();
  U256 a = U256::from_hex("123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
  U256 b = U256::from_hex("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa");
  EXPECT_EQ(f.add(a, f.neg(a)), U256(0));
  EXPECT_EQ(f.sub(a, a), U256(0));
  EXPECT_EQ(f.mul(a, U256(1)), f.reduce(a));
  EXPECT_EQ(f.add(a, b), f.add(b, a));
  EXPECT_EQ(f.mul(a, b), f.mul(b, a));
  // Distributivity.
  EXPECT_EQ(f.mul(a, f.add(b, U256(7))), f.add(f.mul(a, b), f.mul(a, U256(7))));
}

TEST(ModCtxTest, InverseIsInverse) {
  const ModCtx& f = field_ctx();
  U256 a = U256::from_hex("deadbeef00000000000000000000000000000000000000000000000000000001");
  EXPECT_EQ(f.mul(a, f.inv(a)), U256(1));
  EXPECT_THROW(f.inv(U256(0)), std::domain_error);
}

TEST(ModCtxTest, ScalarFieldInverse) {
  const ModCtx& sc = scalar_ctx();
  U256 a(123456789);
  EXPECT_EQ(sc.mul(a, sc.inv(a)), U256(1));
}

TEST(ModCtxTest, ReduceHandlesValuesAboveModulus) {
  const ModCtx& f = field_ctx();
  U256 max = U256::from_hex("ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff");
  // p = 2^256 - 2^32 - 977, so max mod p = 2^32 + 976.
  EXPECT_EQ(f.reduce(max), U256(0x1000003d0ULL));
}

TEST(ModCtxTest, PowMatchesRepeatedMul) {
  const ModCtx& f = field_ctx();
  U256 base(3);
  U256 expect(1);
  for (int i = 0; i < 20; ++i) expect = f.mul(expect, base);
  EXPECT_EQ(f.pow(base, U256(20)), expect);
  EXPECT_EQ(f.pow(base, U256(0)), U256(1));
}

TEST(ModCtxTest, FermatHolds) {
  // a^(p-1) == 1 mod p for prime p.
  const ModCtx& f = field_ctx();
  U256 a(987654321);
  U256 p_minus_1 = f.modulus() - U256(1);
  EXPECT_EQ(f.pow(a, p_minus_1), U256(1));
}

TEST(ModCtxTest, Reduce512KnownProduct) {
  const ModCtx& f = field_ctx();
  // (p-1)^2 mod p == 1.
  U256 p_minus_1 = f.modulus() - U256(1);
  EXPECT_EQ(f.mul(p_minus_1, p_minus_1), U256(1));
  // (p-1)*(p-2) mod p == 2.
  U256 p_minus_2 = f.modulus() - U256(2);
  EXPECT_EQ(f.mul(p_minus_1, p_minus_2), U256(2));
}

}  // namespace
}  // namespace icbtc::crypto
