#include "crypto/ripemd160.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "util/bytes.h"

namespace icbtc::crypto {
namespace {

util::ByteSpan span_of(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

struct Case {
  std::string input;
  std::string digest;
};

class Ripemd160Vectors : public ::testing::TestWithParam<Case> {};

TEST_P(Ripemd160Vectors, MatchesReference) {
  const auto& c = GetParam();
  EXPECT_EQ(ripemd160(span_of(c.input)).hex(), c.digest);
}

// Official RIPEMD-160 test vectors (Dobbertin, Bosselaers, Preneel).
INSTANTIATE_TEST_SUITE_P(
    Reference, Ripemd160Vectors,
    ::testing::Values(
        Case{"", "9c1185a5c5e9fc54612808977ee8f548b2258d31"},
        Case{"a", "0bdc9d2d256b3ee9daae347be6f4dc835a467ffe"},
        Case{"abc", "8eb208f7e05d987a9b044a8e98c6b087f15a0bfc"},
        Case{"message digest", "5d0689ef49d2fae572b881b123a85ffa21595f36"},
        Case{"abcdefghijklmnopqrstuvwxyz", "f71c27109c692c1b56bbdceb5b9d2865b3708dbc"},
        Case{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
             "12a053384a9c0c88e405a06c27dcf49ada62eb2b"},
        Case{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
             "b0e20b6e3116640286ed3a87a5713079b21f5189"}));

TEST(Ripemd160Test, MillionAs) {
  std::string s(1000000, 'a');
  EXPECT_EQ(ripemd160(span_of(s)).hex(), "52783243c1697bdbe16d37f97f68f08325dc1528");
}

TEST(Hash160Test, PubkeyHashVector) {
  // hash160 of the uncompressed genesis coinbase pubkey — spot-checked
  // against Bitcoin Core's output for the Satoshi genesis key.
  auto pubkey = util::from_hex(
      "0450863ad64a87ae8a2fe83c1af1a8403cb53f53e486d8511dad8a04887e5b2352"
      "2cd470243453a299fa9e77237716103abc11a1df38855ed6f2ee187e9c582ba6");
  EXPECT_EQ(util::to_hex(hash160(pubkey).span()), "010966776006953d5567439e5e39f86a0d273bee");
}

TEST(Hash160Test, IsRipemdOfSha256) {
  util::Bytes data = {1, 2, 3};
  auto direct = hash160(data);
  auto composed = ripemd160(Sha256::hash(data).span());
  EXPECT_EQ(direct, composed);
}

}  // namespace
}  // namespace icbtc::crypto
