#include "crypto/shamir.h"

#include <gtest/gtest.h>

#include "crypto/secp256k1.h"

namespace icbtc::crypto {
namespace {

TEST(ShamirTest, SplitAndReconstruct) {
  util::Rng rng(1);
  U256 secret = U256::from_hex("00000000000000000000000000000000000000000000000000000000deadbeef");
  auto shares = shamir_split(secret, 3, 5, rng);
  ASSERT_EQ(shares.size(), 5u);
  // Any 3 shares reconstruct.
  std::vector<Share> subset = {shares[0], shares[2], shares[4]};
  EXPECT_EQ(shamir_reconstruct(subset), secret);
  subset = {shares[1], shares[2], shares[3]};
  EXPECT_EQ(shamir_reconstruct(subset), secret);
  // All shares also reconstruct.
  EXPECT_EQ(shamir_reconstruct(shares), secret);
}

TEST(ShamirTest, FewerThanThresholdGivesWrongSecret) {
  util::Rng rng(2);
  U256 secret(42);
  auto shares = shamir_split(secret, 3, 5, rng);
  // Two shares interpolate a line, not the real polynomial: wrong value
  // (with overwhelming probability over the random coefficients).
  std::vector<Share> subset = {shares[0], shares[1]};
  EXPECT_NE(shamir_reconstruct(subset), secret);
}

TEST(ShamirTest, ThresholdOneIsReplication) {
  util::Rng rng(3);
  U256 secret(7);
  auto shares = shamir_split(secret, 1, 4, rng);
  for (const auto& s : shares) EXPECT_EQ(s.value, secret);
}

TEST(ShamirTest, FullThresholdNeedsAll) {
  util::Rng rng(4);
  U256 secret = U256::from_hex("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef");
  auto shares = shamir_split(secret, 5, 5, rng);
  EXPECT_EQ(shamir_reconstruct(shares), secret);
}

TEST(ShamirTest, ParameterValidation) {
  util::Rng rng(5);
  EXPECT_THROW(shamir_split(U256(1), 0, 3, rng), std::invalid_argument);
  EXPECT_THROW(shamir_split(U256(1), 4, 3, rng), std::invalid_argument);
}

TEST(ShamirTest, ReconstructValidation) {
  util::Rng rng(6);
  auto shares = shamir_split(U256(9), 2, 3, rng);
  EXPECT_THROW(shamir_reconstruct({}), std::invalid_argument);
  std::vector<Share> dup = {shares[0], shares[0]};
  EXPECT_THROW(shamir_reconstruct(dup), std::invalid_argument);
  std::vector<Share> zero_idx = {Share{0, U256(1)}, shares[1]};
  EXPECT_THROW(shamir_reconstruct(zero_idx), std::invalid_argument);
}

TEST(ShamirTest, LagrangeCoefficientsSumToOneOnConstant) {
  // Sharing a constant-zero polynomial: coefficients must interpolate any
  // constant correctly, i.e. sum of lambda_i equals 1.
  std::vector<std::uint32_t> indices = {1, 3, 7, 9};
  const ModCtx& sc = scalar_ctx();
  U256 sum(0);
  for (auto i : indices) sum = sc.add(sum, lagrange_coefficient_at_zero(i, indices));
  EXPECT_EQ(sum, U256(1));
}

TEST(ShamirTest, LagrangeRejectsForeignIndex) {
  std::vector<std::uint32_t> indices = {1, 2};
  EXPECT_THROW(lagrange_coefficient_at_zero(5, indices), std::invalid_argument);
}

TEST(ShamirTest, HomomorphicAddition) {
  // Shamir shares are additively homomorphic — the property the threshold
  // signing protocol relies on.
  util::Rng rng(7);
  const ModCtx& sc = scalar_ctx();
  U256 s1(1111), s2(2222);
  auto sh1 = shamir_split(s1, 3, 5, rng);
  auto sh2 = shamir_split(s2, 3, 5, rng);
  std::vector<Share> sum_shares;
  for (std::size_t i = 0; i < 5; ++i) {
    sum_shares.push_back(Share{sh1[i].index, sc.add(sh1[i].value, sh2[i].value)});
  }
  std::vector<Share> subset = {sum_shares[0], sum_shares[1], sum_shares[2]};
  EXPECT_EQ(shamir_reconstruct(subset), sc.add(s1, s2));
}

class ShamirParamSweep : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(ShamirParamSweep, AnyThresholdSubsetReconstructs) {
  auto [t, n] = GetParam();
  util::Rng rng(100 + t * 13 + n);
  U256 secret = U256::from_hex("5555555555555555555555555555555555555555555555555555555555555555");
  auto shares = shamir_split(secret, t, n, rng);
  // Take a deterministic subset of exactly t shares.
  std::vector<Share> subset(shares.end() - t, shares.end());
  EXPECT_EQ(shamir_reconstruct(subset), secret);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShamirParamSweep,
                         ::testing::Values(std::pair{1u, 1u}, std::pair{1u, 5u}, std::pair{2u, 3u},
                                           std::pair{3u, 4u}, std::pair{5u, 9u},
                                           std::pair{9u, 13u}, std::pair{28u, 40u}));

}  // namespace
}  // namespace icbtc::crypto
