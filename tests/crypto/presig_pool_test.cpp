// Presignature pool + batched signing pipeline tests: determinism across
// pool depths and refill timing, the nonce-safety (single-use) guarantees,
// exhaustion backpressure, and the batched verification primitives.
#include "crypto/presig_pool.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "parallel/thread_pool.h"

namespace icbtc::crypto {
namespace {

util::Hash256 digest_of(const std::string& s) {
  return Sha256::hash(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

ThresholdEcdsaServiceConfig pooled(std::size_t depth, std::size_t watermark = 0) {
  ThresholdEcdsaServiceConfig config;
  config.pool_depth = depth;
  config.pool_low_watermark = watermark;
  return config;
}

// ---------------------------------------------------------------------------
// Determinism: the k-th signature is a pure function of (seed, k) no matter
// how presignatures were dealt — online, prefilled, or refilled mid-stream.
// ---------------------------------------------------------------------------

TEST(PresigPoolTest, SignaturesIdenticalAcrossPoolDepths) {
  constexpr std::uint64_t kSeed = 7001;
  constexpr int kSigns = 12;
  std::vector<std::vector<Signature>> runs;
  for (std::size_t depth : {std::size_t{0}, std::size_t{3}, std::size_t{64}}) {
    ThresholdEcdsaService service(3, 5, kSeed, pooled(depth, depth / 2));
    service.pool().refill();
    std::vector<Signature> sigs;
    for (int i = 0; i < kSigns; ++i) {
      sigs.push_back(service.sign(digest_of("msg " + std::to_string(i)), {{0x01}}));
    }
    runs.push_back(std::move(sigs));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(PresigPoolTest, SignaturesIdenticalAcrossRefillTiming) {
  constexpr std::uint64_t kSeed = 7002;
  constexpr int kSigns = 10;
  // Run A: refill only via the low-watermark hook. Run B: manual refill()
  // after every signature. Run C: never refill (every take falls back to
  // online dealing after the prefill drains).
  std::vector<std::vector<Signature>> runs;
  for (int mode = 0; mode < 3; ++mode) {
    ThresholdEcdsaService service(3, 5, kSeed, pooled(4, mode == 0 ? 2 : 0));
    if (mode != 2) service.pool().refill();
    std::vector<Signature> sigs;
    for (int i = 0; i < kSigns; ++i) {
      sigs.push_back(service.sign(digest_of("msg " + std::to_string(i)), {}));
      if (mode == 1) service.pool().refill();
    }
    runs.push_back(std::move(sigs));
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST(PresigPoolTest, BatchMatchesSerialByteForByte) {
  constexpr std::uint64_t kSeed = 7003;
  constexpr int kSigns = 9;
  std::vector<ThresholdEcdsaService::SignRequest> requests;
  for (int i = 0; i < kSigns; ++i) {
    requests.push_back({digest_of("req " + std::to_string(i)),
                        DerivationPath{{static_cast<std::uint8_t>(i % 3)}}});
  }
  ThresholdEcdsaService serial(3, 5, kSeed, pooled(16));
  serial.pool().refill();
  std::vector<Signature> expect;
  for (const auto& r : requests) expect.push_back(serial.sign(r.digest, r.path));

  ThresholdEcdsaService batched(3, 5, kSeed, pooled(16));
  batched.pool().refill();
  std::vector<Signature> got = batched.sign_batch(requests);
  EXPECT_EQ(got, expect);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_TRUE(verify(batched.public_key(requests[i].path), requests[i].digest, got[i]));
  }
}

TEST(PresigPoolTest, BatchWorksWithSharedThreadPool) {
  parallel::set_shared_pool(3);
  std::vector<ThresholdEcdsaService::SignRequest> requests;
  for (int i = 0; i < 17; ++i) requests.push_back({digest_of("p" + std::to_string(i)), {}});
  ThresholdEcdsaService with_pool(3, 5, 7004, pooled(32));
  with_pool.pool().refill();
  auto sigs_parallel = with_pool.sign_batch(requests);
  parallel::set_shared_pool(0);
  ThresholdEcdsaService without_pool(3, 5, 7004, pooled(32));
  without_pool.pool().refill();
  auto sigs_serial = without_pool.sign_batch(requests);
  EXPECT_EQ(sigs_parallel, sigs_serial);
}

// ---------------------------------------------------------------------------
// Nonce safety: a presignature is consumed exactly once, and two different
// digests never see the same nonce point R.
// ---------------------------------------------------------------------------

TEST(PresigPoolTest, ConsumedPresignatureCannotBeReused) {
  ThresholdEcdsaService service(2, 3, 7010, pooled(4));
  service.pool().refill();
  DealtPresignature presig = service.pool().take();
  Signature first = service.sign_prepared(digest_of("a"), {}, presig, {1, 2});
  EXPECT_TRUE(verify(service.public_key({}), digest_of("a"), first));
  EXPECT_TRUE(presig.consumed);
  EXPECT_THROW(service.sign_prepared(digest_of("b"), {}, presig, {1, 2}), std::logic_error);
  // Even re-signing the same digest must be rejected: the guard is on the
  // presignature, not the message.
  EXPECT_THROW(service.sign_prepared(digest_of("a"), {}, presig, {1, 2}), std::logic_error);
}

TEST(PresigPoolTest, NonceNeverRepeatsAcrossRandomizedRun) {
  // Randomized workload mixing single signs, batches, refills, and
  // exhaustion fallbacks: every take() must yield a fresh seq and a fresh
  // nonce point; the r component must never repeat across distinct digests.
  util::Rng driver(7011);
  ThresholdEcdsaService service(3, 5, 7011, pooled(6, 3));
  service.pool().refill();
  std::set<std::vector<std::uint8_t>> seen_r;
  std::set<std::uint64_t> seen_seq;
  int produced = 0;
  auto note = [&](const Signature& sig) {
    auto r_bytes = sig.r.to_be_bytes();
    EXPECT_TRUE(
        seen_r.insert(std::vector<std::uint8_t>(r_bytes.data.begin(), r_bytes.data.end()))
            .second)
        << "nonce r repeated";
  };
  while (produced < 80) {
    switch (driver.next_below(4)) {
      case 0: {  // direct pool take: seq must be fresh
        DealtPresignature p = service.pool().take();
        EXPECT_TRUE(seen_seq.insert(p.seq).second) << "presignature seq repeated";
        note(service.sign_prepared(digest_of("take " + std::to_string(produced)), {}, p,
                                   {1, 2, 3}));
        ++produced;
        break;
      }
      case 1:
        note(service.sign(digest_of("single " + std::to_string(produced)), {{0x07}}));
        ++produced;
        break;
      case 2: {
        std::vector<ThresholdEcdsaService::SignRequest> requests;
        auto batch = static_cast<int>(driver.next_range(2, 9));
        for (int i = 0; i < batch; ++i) {
          requests.push_back({digest_of("batch " + std::to_string(produced) + ":" +
                                        std::to_string(i)),
                              {}});
        }
        for (const auto& sig : service.sign_batch(requests)) note(sig);
        produced += batch;
        break;
      }
      default:
        service.pool().refill();
        break;
    }
  }
  EXPECT_EQ(seen_r.size(), static_cast<std::size_t>(produced));
}

// ---------------------------------------------------------------------------
// Backpressure: bursts larger than the pool depth drain it, fall back to
// online dealing (the documented policy), refill, and still verify.
// ---------------------------------------------------------------------------

TEST(PresigPoolTest, BurstLargerThanDepthFallsBackToOnlineDealing) {
  constexpr std::size_t kDepth = 4;
  ThresholdEcdsaService service(3, 5, 7020, pooled(kDepth, 2));
  obs::MetricsRegistry metrics;
  service.set_metrics(&metrics);
  service.pool().refill();
  EXPECT_EQ(service.pool().size(), kDepth);

  std::vector<ThresholdEcdsaService::SignRequest> burst;
  for (int i = 0; i < 3 * static_cast<int>(kDepth); ++i) {
    burst.push_back({digest_of("burst " + std::to_string(i)), {}});
  }
  auto sigs = service.sign_batch(burst);
  ASSERT_EQ(sigs.size(), burst.size());
  for (std::size_t i = 0; i < burst.size(); ++i) {
    EXPECT_TRUE(verify(service.public_key({}), burst[i].digest, sigs[i]));
  }
  // The burst exceeded the stock: the overflow dealt online and was counted.
  EXPECT_GE(service.pool().exhaustion_stalls(), burst.size() - kDepth);
  EXPECT_EQ(metrics.counters().at("tecdsa.pool.exhaustion_stalls").value(),
            service.pool().exhaustion_stalls());
  // maybe_refill after the batch restocked the pool past the watermark.
  EXPECT_GT(service.pool().size(), 2u);
  EXPECT_GE(service.pool().refills(), 1u);
  EXPECT_EQ(service.pool().consumed_total(), burst.size());
}

TEST(PresigPoolTest, ConcurrentTakesYieldDistinctPresignatures) {
  // Exercised under TSan in CI: concurrent take() against a small pool, with
  // refills racing the exhaustion fallback.
  parallel::set_shared_pool(3);
  util::Rng rng(7021);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  PresigPoolConfig config;
  config.depth = 8;
  config.low_watermark = 4;
  PresignaturePool pool(dealer, config, rng.fork());
  pool.refill();

  constexpr int kThreads = 4;
  constexpr int kTakesPerThread = 12;
  std::vector<std::vector<std::uint64_t>> seqs(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, &seqs, t] {
      for (int i = 0; i < kTakesPerThread; ++i) {
        DealtPresignature p = pool.take();
        seqs[static_cast<std::size_t>(t)].push_back(p.seq);
        if (p.seq % 5 == 0) pool.maybe_refill();
      }
    });
  }
  for (auto& th : threads) th.join();
  parallel::set_shared_pool(0);

  std::set<std::uint64_t> all;
  for (const auto& per_thread : seqs) {
    for (auto s : per_thread) EXPECT_TRUE(all.insert(s).second) << "seq " << s << " duplicated";
  }
  EXPECT_EQ(all.size(), static_cast<std::size_t>(kThreads * kTakesPerThread));
  EXPECT_EQ(pool.consumed_total(), all.size());
  EXPECT_GE(pool.dealt_total(), all.size());
}

// ---------------------------------------------------------------------------
// combine_partial_signatures_checked: distinct structural errors.
// ---------------------------------------------------------------------------

class CombineCheckedTest : public ::testing::Test {
 protected:
  CombineCheckedTest() : rng_(7030), dealer_(3, 5, rng_) {
    std::tie(pub_, shares_) = dealer_.deal_presignature(rng_);
    digest_ = digest_of("combine");
    for (int i = 0; i < 3; ++i) {
      partials_.push_back(
          compute_partial_signature(shares_[static_cast<std::size_t>(i)], pub_, U256(0),
                                    digest_));
    }
  }

  util::Rng rng_;
  ThresholdEcdsaDealer dealer_;
  Presignature pub_;
  std::vector<PresignatureShare> shares_;
  util::Hash256 digest_;
  std::vector<PartialSignature> partials_;
};

TEST_F(CombineCheckedTest, AcceptsThresholdPartials) {
  auto out = combine_partial_signatures_checked(partials_, pub_, dealer_.master_public_key(),
                                                digest_, 3);
  ASSERT_TRUE(out.ok());
  ASSERT_TRUE(out.signature.has_value());
  EXPECT_TRUE(verify(dealer_.master_public_key(), digest_, *out.signature));
}

TEST_F(CombineCheckedTest, EmptyInputIsNoPartials) {
  auto out = combine_partial_signatures_checked({}, pub_, dealer_.master_public_key(), digest_, 3);
  EXPECT_EQ(out.error, CombineError::kNoPartials);
  EXPECT_FALSE(out.signature.has_value());
}

TEST_F(CombineCheckedTest, ZeroPartyIdIsBadPartyId) {
  auto bad = partials_;
  bad[1].index = 0;
  auto out =
      combine_partial_signatures_checked(bad, pub_, dealer_.master_public_key(), digest_, 3);
  EXPECT_EQ(out.error, CombineError::kBadPartyId);
}

TEST_F(CombineCheckedTest, DuplicatePartyIsDistinctFromBadParty) {
  auto dup = partials_;
  dup[2] = dup[0];
  auto out =
      combine_partial_signatures_checked(dup, pub_, dealer_.master_public_key(), digest_, 3);
  EXPECT_EQ(out.error, CombineError::kDuplicateParty);
}

TEST_F(CombineCheckedTest, FewerThanThresholdIsBelowThreshold) {
  auto few = partials_;
  few.resize(2);
  auto out =
      combine_partial_signatures_checked(few, pub_, dealer_.master_public_key(), digest_, 3);
  EXPECT_EQ(out.error, CombineError::kBelowThreshold);
}

TEST_F(CombineCheckedTest, CorruptPartialIsInvalidSignature) {
  auto corrupt = partials_;
  corrupt[0].s_share = scalar_ctx().add(corrupt[0].s_share, U256(1));
  auto out = combine_partial_signatures_checked(corrupt, pub_, dealer_.master_public_key(),
                                                digest_, 3);
  EXPECT_EQ(out.error, CombineError::kInvalidSignature);
}

TEST_F(CombineCheckedTest, ErrorStringsAreDistinct) {
  std::set<std::string> names;
  for (auto e : {CombineError::kOk, CombineError::kNoPartials, CombineError::kBadPartyId,
                 CombineError::kDuplicateParty, CombineError::kBelowThreshold,
                 CombineError::kInvalidSignature}) {
    EXPECT_TRUE(names.insert(to_string(e)).second);
  }
}

TEST_F(CombineCheckedTest, PrecomputedLambdaMatchesOnTheFly) {
  std::vector<std::uint32_t> indices;
  for (const auto& p : partials_) indices.push_back(p.index);
  auto lambda = lagrange_coefficients_at_zero(indices);
  auto with = combine_partial_signatures_checked(partials_, pub_, dealer_.master_public_key(),
                                                 digest_, 3, &lambda);
  auto without = combine_partial_signatures_checked(partials_, pub_, dealer_.master_public_key(),
                                                    digest_, 3);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(*with.signature, *without.signature);
}

// ---------------------------------------------------------------------------
// Batched verification + multiexp primitives.
// ---------------------------------------------------------------------------

TEST(BatchVerifyTest, AcceptsValidBatchAndFlagsNegatedNonces) {
  util::Rng rng(7040);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  std::vector<BatchVerifyEntry> entries;
  bool saw_negated = false;
  for (int i = 0; i < 12; ++i) {
    auto [pub, shares] = dealer.deal_presignature(rng);
    auto digest = digest_of("bv " + std::to_string(i));
    std::vector<PartialSignature> partials = {
        compute_partial_signature(shares[0], pub, U256(0), digest),
        compute_partial_signature(shares[1], pub, U256(0), digest),
    };
    auto out = combine_partial_signatures_checked(partials, pub, dealer.master_public_key(),
                                                  digest, 2, nullptr, /*verify_result=*/false);
    ASSERT_TRUE(out.ok());
    saw_negated = saw_negated || out.s_negated;
    entries.push_back(BatchVerifyEntry{dealer.master_public_key(), digest, *out.signature,
                                       out.s_negated ? pub.big_r.negated() : pub.big_r});
  }
  // Over 12 signatures the probability that no s was flipped is 2^-12; the
  // negated-R path is all but guaranteed to be exercised.
  EXPECT_TRUE(saw_negated);
  EXPECT_TRUE(batch_verify(entries));
}

TEST(BatchVerifyTest, RejectsSingleCorruptEntry) {
  util::Rng rng(7041);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  std::vector<BatchVerifyEntry> entries;
  for (int i = 0; i < 6; ++i) {
    auto [pub, shares] = dealer.deal_presignature(rng);
    auto digest = digest_of("corrupt " + std::to_string(i));
    std::vector<PartialSignature> partials = {
        compute_partial_signature(shares[0], pub, U256(0), digest),
        compute_partial_signature(shares[1], pub, U256(0), digest),
    };
    auto out = combine_partial_signatures_checked(partials, pub, dealer.master_public_key(),
                                                  digest, 2, nullptr, false);
    ASSERT_TRUE(out.ok());
    entries.push_back(BatchVerifyEntry{dealer.master_public_key(), digest, *out.signature,
                                       out.s_negated ? pub.big_r.negated() : pub.big_r});
  }
  ASSERT_TRUE(batch_verify(entries));
  // Flip one digest: the whole batch must fail.
  entries[3].digest = digest_of("tampered");
  EXPECT_FALSE(batch_verify(entries));
}

TEST(BatchVerifyTest, RejectsMismatchedNoncePoint) {
  util::Rng rng(7042);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  auto [pub, shares] = dealer.deal_presignature(rng);
  auto digest = digest_of("nonce mismatch");
  std::vector<PartialSignature> partials = {
      compute_partial_signature(shares[0], pub, U256(0), digest),
      compute_partial_signature(shares[1], pub, U256(0), digest),
  };
  auto out = combine_partial_signatures_checked(partials, pub, dealer.master_public_key(),
                                                digest, 2, nullptr, false);
  ASSERT_TRUE(out.ok());
  // Claiming the wrong sign of R must be caught by the R.x == r consistency
  // check (the two candidates share x, so this exercises the multiexp).
  BatchVerifyEntry entry{dealer.master_public_key(), digest, *out.signature,
                         out.s_negated ? pub.big_r : pub.big_r.negated()};
  EXPECT_FALSE(batch_verify({entry}));
}

TEST(BatchVerifyTest, EmptyBatchVerifies) { EXPECT_TRUE(batch_verify({})); }

TEST(BatchVerifyTest, TweakedVariantAcceptsDerivedKeysAndRejectsTampering) {
  util::Rng rng(7043);
  ThresholdEcdsaDealer dealer(2, 3, rng);
  std::vector<TweakedBatchVerifyEntry> entries;
  for (int i = 0; i < 8; ++i) {
    DerivationPath path = {{static_cast<std::uint8_t>(i % 3)}};
    U256 tweak = derivation_tweak(dealer.master_public_key(), path);
    AffinePoint derived = derive_public_key(dealer.master_public_key(), path);
    auto [pub, shares] = dealer.deal_presignature(rng);
    auto digest = digest_of("tweaked " + std::to_string(i));
    std::vector<PartialSignature> partials = {
        compute_partial_signature(shares[0], pub, tweak, digest),
        compute_partial_signature(shares[1], pub, tweak, digest),
    };
    auto out = combine_partial_signatures_checked(partials, pub, derived, digest, 2, nullptr,
                                                  /*verify_result=*/false);
    ASSERT_TRUE(out.ok());
    // Cross-check against the generic per-key verifier: the folded equation
    // must accept exactly what verify() accepts.
    ASSERT_TRUE(verify(derived, digest, *out.signature));
    entries.push_back(TweakedBatchVerifyEntry{tweak, digest, *out.signature,
                                              out.s_negated ? pub.big_r.negated() : pub.big_r});
  }
  EXPECT_TRUE(batch_verify_tweaked(dealer.master_public_key(), entries));
  auto tampered = entries;
  tampered[5].digest = digest_of("tweaked tampered");
  EXPECT_FALSE(batch_verify_tweaked(dealer.master_public_key(), tampered));
  auto wrong_tweak = entries;
  wrong_tweak[2].tweak = U256(12345);
  EXPECT_FALSE(batch_verify_tweaked(dealer.master_public_key(), wrong_tweak));
  EXPECT_TRUE(batch_verify_tweaked(dealer.master_public_key(), {}));
}

TEST(MultiMulTest, MatchesNaiveSum) {
  util::Rng rng(7050);
  for (std::size_t n : {std::size_t{1}, std::size_t{2}, std::size_t{7}, std::size_t{40}}) {
    std::vector<U256> scalars;
    std::vector<AffinePoint> points;
    JacobianPoint expect = JacobianPoint::infinity_point();
    for (std::size_t i = 0; i < n; ++i) {
      auto bytes = rng.next_bytes(32);
      U256 s = scalar_ctx().reduce(U256::from_be_bytes(util::ByteSpan(bytes.data(), bytes.size())));
      U256 base(static_cast<std::uint64_t>(i + 2));
      AffinePoint p = generator_mul(base);
      scalars.push_back(s);
      points.push_back(p);
      expect = expect.add(JacobianPoint::from_affine(scalar_mul(s, p)));
    }
    EXPECT_EQ(multi_mul(scalars, points), expect.to_affine()) << "n=" << n;
  }
}

TEST(MultiMulTest, HandlesZeroScalarsAndInfinity) {
  std::vector<U256> scalars = {U256(0), U256(5)};
  std::vector<AffinePoint> points = {generator(), generator()};
  EXPECT_EQ(multi_mul(scalars, points), generator_mul(U256(5)));
  EXPECT_TRUE(multi_mul({}, {}).infinity);
}

}  // namespace
}  // namespace icbtc::crypto
