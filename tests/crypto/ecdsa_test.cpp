#include "crypto/ecdsa.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace icbtc::crypto {
namespace {

util::ByteSpan span_of(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

TEST(EcdsaTest, Rfc6979KnownNonce) {
  // RFC 6979-style vector widely used for secp256k1 (e.g. in python-ecdsa and
  // trezor-crypto): key = 1, message "Satoshi Nakamoto".
  PrivateKey key(U256(1));
  auto digest = Sha256::hash(span_of("Satoshi Nakamoto"));
  U256 k = rfc6979_nonce(key.secret(), digest);
  EXPECT_EQ(k.to_hex(), "8f8a276c19f4149656b280621e358cce24f5f52542772691ee69063b74f15d15");
}

TEST(EcdsaTest, KnownSignatureVector) {
  // Same vector: expected (r, s) for key=1, msg="Satoshi Nakamoto".
  PrivateKey key(U256(1));
  auto digest = Sha256::hash(span_of("Satoshi Nakamoto"));
  Signature sig = key.sign(digest);
  EXPECT_EQ(sig.r.to_hex(), "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8");
  EXPECT_EQ(sig.s.to_hex(), "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5");
}

TEST(EcdsaTest, SignVerifyRoundTrip) {
  PrivateKey key = PrivateKey::from_seed(span_of("test seed"));
  auto digest = Sha256::hash(span_of("a message"));
  Signature sig = key.sign(digest);
  EXPECT_TRUE(verify(key.public_key(), digest, sig));
}

TEST(EcdsaTest, VerifyRejectsWrongMessage) {
  PrivateKey key = PrivateKey::from_seed(span_of("seed"));
  Signature sig = key.sign(Sha256::hash(span_of("msg1")));
  EXPECT_FALSE(verify(key.public_key(), Sha256::hash(span_of("msg2")), sig));
}

TEST(EcdsaTest, VerifyRejectsWrongKey) {
  PrivateKey k1 = PrivateKey::from_seed(span_of("k1"));
  PrivateKey k2 = PrivateKey::from_seed(span_of("k2"));
  auto digest = Sha256::hash(span_of("msg"));
  Signature sig = k1.sign(digest);
  EXPECT_FALSE(verify(k2.public_key(), digest, sig));
}

TEST(EcdsaTest, VerifyRejectsTamperedSignature) {
  PrivateKey key = PrivateKey::from_seed(span_of("k"));
  auto digest = Sha256::hash(span_of("msg"));
  Signature sig = key.sign(digest);
  Signature bad = sig;
  bad.r = scalar_ctx().add(bad.r, U256(1));
  EXPECT_FALSE(verify(key.public_key(), digest, bad));
}

TEST(EcdsaTest, VerifyRejectsHighS) {
  PrivateKey key = PrivateKey::from_seed(span_of("k"));
  auto digest = Sha256::hash(span_of("msg"));
  Signature sig = key.sign(digest);
  Signature high = sig;
  high.s = curve_order() - sig.s;  // mathematically valid but non-canonical
  EXPECT_FALSE(verify(key.public_key(), digest, high));
}

TEST(EcdsaTest, VerifyRejectsZeroAndOverflow) {
  PrivateKey key = PrivateKey::from_seed(span_of("k"));
  auto digest = Sha256::hash(span_of("msg"));
  EXPECT_FALSE(verify(key.public_key(), digest, Signature{U256(0), U256(1)}));
  EXPECT_FALSE(verify(key.public_key(), digest, Signature{U256(1), U256(0)}));
  EXPECT_FALSE(verify(key.public_key(), digest, Signature{curve_order(), U256(1)}));
}

TEST(EcdsaTest, SignaturesAreLowS) {
  for (int i = 0; i < 20; ++i) {
    PrivateKey key = PrivateKey::from_seed(util::Bytes{static_cast<std::uint8_t>(i)});
    auto digest = Sha256::hash(util::Bytes{static_cast<std::uint8_t>(i), 99});
    Signature sig = key.sign(digest);
    EXPECT_LE(sig.s, curve_order().shifted_right(1));
    EXPECT_TRUE(verify(key.public_key(), digest, sig));
  }
}

TEST(EcdsaTest, DeterministicSignatures) {
  PrivateKey key = PrivateKey::from_seed(span_of("det"));
  auto digest = Sha256::hash(span_of("same message"));
  EXPECT_EQ(key.sign(digest), key.sign(digest));
}

TEST(EcdsaTest, CompactRoundTrip) {
  PrivateKey key = PrivateKey::from_seed(span_of("c"));
  Signature sig = key.sign(Sha256::hash(span_of("m")));
  auto enc = sig.compact();
  ASSERT_EQ(enc.size(), 64u);
  auto parsed = Signature::from_compact(enc);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sig);
  EXPECT_FALSE(Signature::from_compact(util::Bytes(63)).has_value());
}

TEST(EcdsaTest, DerRoundTrip) {
  for (int i = 0; i < 10; ++i) {
    PrivateKey key = PrivateKey::from_seed(util::Bytes{static_cast<std::uint8_t>(i), 1});
    Signature sig = key.sign(Sha256::hash(util::Bytes{static_cast<std::uint8_t>(i)}));
    auto der = sig.der();
    auto parsed = Signature::from_der(der);
    ASSERT_TRUE(parsed.has_value()) << i;
    EXPECT_EQ(*parsed, sig);
  }
}

TEST(EcdsaTest, DerRejectsTruncation) {
  PrivateKey key = PrivateKey::from_seed(span_of("d"));
  Signature sig = key.sign(Sha256::hash(span_of("m")));
  auto der = sig.der();
  der.pop_back();
  EXPECT_FALSE(Signature::from_der(der).has_value());
}

TEST(EcdsaTest, DerEncodesSmallIntegersMinimally) {
  // r = 1, s = 1 must encode as 02 01 01 twice.
  Signature sig{U256(1), U256(1)};
  EXPECT_EQ(util::to_hex(sig.der()), "3006020101020101");
}

TEST(EcdsaTest, PrivateKeyRangeChecks) {
  EXPECT_THROW(PrivateKey{U256(0)}, std::invalid_argument);
  EXPECT_THROW(PrivateKey{curve_order()}, std::invalid_argument);
  EXPECT_NO_THROW(PrivateKey{curve_order() - U256(1)});
}

TEST(EcdsaTest, PublicKeyMatchesGeneratorMul) {
  PrivateKey key(U256(12345));
  EXPECT_EQ(key.public_key(), generator_mul(U256(12345)));
}

}  // namespace
}  // namespace icbtc::crypto
