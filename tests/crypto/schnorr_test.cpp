#include "crypto/schnorr.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace icbtc::crypto {
namespace {

util::Hash256 h256(const std::string& hex) {
  util::Hash256 h;
  auto bytes = util::from_hex(hex);
  std::copy(bytes.begin(), bytes.end(), h.data.begin());
  return h;
}

util::FixedBytes<32> fb32(const std::string& hex) {
  return util::FixedBytes<32>::from_hex_str(hex);
}

struct Bip340Vector {
  std::string secret;
  std::string pubkey;
  std::string aux;
  std::string msg;
  std::string sig;
};

class Bip340SignVectors : public ::testing::TestWithParam<Bip340Vector> {};

TEST_P(Bip340SignVectors, SignMatchesReference) {
  const auto& v = GetParam();
  U256 secret = U256::from_hex(v.secret);
  SchnorrKeyPair pair = SchnorrKeyPair::from_secret(secret);
  EXPECT_EQ(pair.pubkey.bytes().hex(), v.pubkey);
  auto sig = schnorr_sign(secret, h256(v.msg), fb32(v.aux));
  EXPECT_EQ(util::to_hex(sig.bytes()), v.sig);
  EXPECT_TRUE(schnorr_verify(pair.pubkey, h256(v.msg), sig));
}

// Official BIP-340 test vectors 0-3.
INSTANTIATE_TEST_SUITE_P(
    Bip340, Bip340SignVectors,
    ::testing::Values(
        Bip340Vector{
            "0000000000000000000000000000000000000000000000000000000000000003",
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
            "0000000000000000000000000000000000000000000000000000000000000000",
            "0000000000000000000000000000000000000000000000000000000000000000",
            "e907831f80848d1069a5371b402410364bdf1c5f8307b0084c55f1ce2dca8215"
            "25f66a4a85ea8b71e482a74f382d2ce5ebeee8fdb2172f477df4900d310536c0"},
        Bip340Vector{
            "b7e151628aed2a6abf7158809cf4f3c762e7160f38b4da56a784d9045190cfef",
            "dff1d77f2a671c5f36183726db2341be58feae1da2deced843240f7b502ba659",
            "0000000000000000000000000000000000000000000000000000000000000001",
            "243f6a8885a308d313198a2e03707344a4093822299f31d0082efa98ec4e6c89",
            "6896bd60eeae296db48a229ff71dfe071bde413e6d43f917dc8dcf8c78de3341"
            "8906d11ac976abccb20b091292bff4ea897efcb639ea871cfa95f6de339e4b0a"},
        Bip340Vector{
            "c90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74020bbea63b14e5c9",
            "dd308afec5777e13121fa72b9cc1b7cc0139715309b086c960e18fd969774eb8",
            "c87aa53824b4d7ae2eb035a2b5bbbccc080e76cdc6d1692c4b0b62d798e6d906",
            "7e2d58d8b3bcdf1abadec7829054f90dda9805aab56c77333024b9d0a508b75c",
            "5831aaeed7b44bb74e5eab94ba9d4294c49bcf2a60728d8b4c200f50dd313c1b"
            "ab745879a5ad954a72c45a91c3a51d3c7adea98d82f8481e0e1e03674a6f3fb7"},
        Bip340Vector{
            "0b432b2677937381aef05bb02a66ecd012773062cf3fa2549e44f58ed2401710",
            "25d1dff95105f5253c4022f628a996ad3a0d95fbf21d468a1b33f8c160d8f517",
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
            "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff",
            "7eb0509757e246f19449885651611cb965ecc1a187dd51b64fda1edc9637d5ec"
            "97582b9cb13db3933705b32ba982af5af25fd78881ebb32771fc5922efc66ea3"}));

TEST(SchnorrTest, VerifyRejectsWrongMessage) {
  U256 secret(12345);
  SchnorrKeyPair pair = SchnorrKeyPair::from_secret(secret);
  auto msg = Sha256::hash(util::Bytes{1});
  auto sig = schnorr_sign(secret, msg);
  EXPECT_TRUE(schnorr_verify(pair.pubkey, msg, sig));
  EXPECT_FALSE(schnorr_verify(pair.pubkey, Sha256::hash(util::Bytes{2}), sig));
}

TEST(SchnorrTest, VerifyRejectsTamperedSignature) {
  U256 secret(777);
  SchnorrKeyPair pair = SchnorrKeyPair::from_secret(secret);
  auto msg = Sha256::hash(util::Bytes{3});
  auto sig = schnorr_sign(secret, msg);
  SchnorrSignature bad = sig;
  bad.s = scalar_ctx().add(bad.s, U256(1));
  EXPECT_FALSE(schnorr_verify(pair.pubkey, msg, bad));
  bad = sig;
  bad.r = field_ctx().add(bad.r, U256(1));
  EXPECT_FALSE(schnorr_verify(pair.pubkey, msg, bad));
}

TEST(SchnorrTest, VerifyRejectsWrongKey) {
  auto msg = Sha256::hash(util::Bytes{4});
  auto sig = schnorr_sign(U256(1111), msg);
  SchnorrKeyPair other = SchnorrKeyPair::from_secret(U256(2222));
  EXPECT_FALSE(schnorr_verify(other.pubkey, msg, sig));
}

TEST(SchnorrTest, VerifyRejectsOutOfRangeComponents) {
  SchnorrKeyPair pair = SchnorrKeyPair::from_secret(U256(5));
  auto msg = Sha256::hash(util::Bytes{5});
  // s >= n.
  EXPECT_FALSE(schnorr_verify(pair.pubkey, msg, SchnorrSignature{U256(1), curve_order()}));
  // r >= p.
  EXPECT_FALSE(
      schnorr_verify(pair.pubkey, msg, SchnorrSignature{field_ctx().modulus(), U256(1)}));
}

TEST(SchnorrTest, XOnlyParseRejectsNonCurvePoints) {
  // x = 5 is not on the curve.
  util::Bytes bad(32, 0);
  bad[31] = 5;
  EXPECT_FALSE(XOnlyPublicKey::parse(bad).has_value());
  EXPECT_FALSE(XOnlyPublicKey::parse(util::Bytes(31, 0)).has_value());
}

TEST(SchnorrTest, SignatureParseRoundTrip) {
  auto sig = schnorr_sign(U256(42), Sha256::hash(util::Bytes{6}));
  auto parsed = SchnorrSignature::parse(sig.bytes());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, sig);
  EXPECT_FALSE(SchnorrSignature::parse(util::Bytes(63)).has_value());
}

TEST(SchnorrTest, KeyPairEvenYNormalization) {
  // d and n-d give the same x-only public key.
  U256 d(987654321);
  auto a = SchnorrKeyPair::from_secret(d);
  auto b = SchnorrKeyPair::from_secret(curve_order() - d);
  EXPECT_EQ(a.pubkey, b.pubkey);
  EXPECT_EQ(a.secret_even_y, b.secret_even_y);
  // The lifted point has even Y.
  auto p = a.pubkey.lift();
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->y.is_odd());
}

TEST(SchnorrTest, KeyPairRangeChecks) {
  EXPECT_THROW(SchnorrKeyPair::from_secret(U256(0)), std::invalid_argument);
  EXPECT_THROW(SchnorrKeyPair::from_secret(curve_order()), std::invalid_argument);
}

TEST(SchnorrTest, TaggedHashMatchesDefinition) {
  // tagged_hash(tag, m) == SHA256(SHA256(tag)||SHA256(tag)||m).
  std::string tag = "BIP0340/challenge";
  util::Bytes msg = {9, 9, 9};
  auto tag_hash = Sha256::hash(
      util::ByteSpan(reinterpret_cast<const std::uint8_t*>(tag.data()), tag.size()));
  Sha256 manual;
  manual.update(tag_hash.span());
  manual.update(tag_hash.span());
  manual.update(msg);
  EXPECT_EQ(tagged_hash(tag, msg), manual.finalize());
}

TEST(SchnorrTest, DifferentAuxGivesDifferentNonceSameValidity) {
  U256 secret(31337);
  auto msg = Sha256::hash(util::Bytes{7});
  util::FixedBytes<32> aux1, aux2;
  aux2.data[0] = 1;
  auto sig1 = schnorr_sign(secret, msg, aux1);
  auto sig2 = schnorr_sign(secret, msg, aux2);
  EXPECT_NE(sig1, sig2);
  auto pub = SchnorrKeyPair::from_secret(secret).pubkey;
  EXPECT_TRUE(schnorr_verify(pub, msg, sig1));
  EXPECT_TRUE(schnorr_verify(pub, msg, sig2));
}

}  // namespace
}  // namespace icbtc::crypto
