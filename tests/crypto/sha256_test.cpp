#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>

namespace icbtc::crypto {
namespace {

using util::Bytes;
using util::from_hex;

util::ByteSpan span_of(const std::string& s) {
  return util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

// Every vector below runs once per dispatchable compression implementation
// (portable, SSE4-unrolled, SHA-NI); unsupported ones are skipped on this
// CPU. This is what "verified bit-identical" means in practice: the same
// NIST and Bitcoin known answers must come out of every code path.
class Sha256ImplTest : public ::testing::TestWithParam<Sha256Impl> {
 protected:
  void SetUp() override {
    if (!set_sha256_impl(GetParam())) {
      GTEST_SKIP() << "CPU does not support " << to_string(GetParam());
    }
    ASSERT_EQ(sha256_active_impl(), GetParam());
  }
  void TearDown() override { set_sha256_impl(sha256_best_impl()); }
};

INSTANTIATE_TEST_SUITE_P(AllImpls, Sha256ImplTest,
                         ::testing::Values(Sha256Impl::kPortable, Sha256Impl::kSse4,
                                           Sha256Impl::kShaNi),
                         [](const ::testing::TestParamInfo<Sha256Impl>& info) {
                           switch (info.param) {
                             case Sha256Impl::kPortable:
                               return std::string("Portable");
                             case Sha256Impl::kSse4:
                               return std::string("Sse4");
                             case Sha256Impl::kShaNi:
                               return std::string("ShaNi");
                           }
                           return std::string("Unknown");
                         });

TEST_P(Sha256ImplTest, NistEmptyString) {
  EXPECT_EQ(Sha256::hash({}).hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST_P(Sha256ImplTest, NistAbc) {
  EXPECT_EQ(Sha256::hash(span_of("abc")).hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_P(Sha256ImplTest, NistTwoBlockMessage) {
  EXPECT_EQ(
      Sha256::hash(span_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")).hex(),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST_P(Sha256ImplTest, NistMillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(span_of(chunk));
  EXPECT_EQ(h.finalize().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST_P(Sha256ImplTest, IncrementalMatchesOneShot) {
  std::string msg = "The quick brown fox jumps over the lazy dog";
  auto oneshot = Sha256::hash(span_of(msg));
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(span_of(msg.substr(0, split)));
    h.update(span_of(msg.substr(split)));
    EXPECT_EQ(h.finalize(), oneshot) << "split at " << split;
  }
}

TEST_P(Sha256ImplTest, ExactBlockBoundary) {
  std::string msg(64, 'x');
  std::string msg2(128, 'x');
  // Known-good values computed with coreutils sha256sum.
  EXPECT_EQ(Sha256::hash(span_of(msg)).hex(),
            "7ce100971f64e7001e8fe5a51973ecdfe1ced42befe7ee8d5fd6219506b5393c");
  EXPECT_EQ(Sha256::hash(span_of(msg2)).hex(),
            "24da1b81d0b16df6428eee73c69fcb2a93c76bc6df706f0c6670fe6bfe800464");
}

TEST_P(Sha256ImplTest, ResetAllowsReuse) {
  Sha256 h;
  h.update(span_of("garbage"));
  h.reset();
  h.update(span_of("abc"));
  EXPECT_EQ(h.finalize().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST_P(Sha256ImplTest, BitcoinGenesisHeaderHash) {
  // The Bitcoin mainnet genesis block header; its double-SHA256 in display
  // order is the famous 000000000019d668... hash.
  Bytes header = from_hex(
      "0100000000000000000000000000000000000000000000000000000000000000000000003ba3edfd7a7b12b27a"
      "c72c3e67768f617fc81bc3888a51323a9fb8aa4b1e5e4a29ab5f49ffff001d1dac2b7c");
  ASSERT_EQ(header.size(), 80u);
  util::Hash256 h = sha256d(header);
  EXPECT_EQ(h.rpc_hex(), "000000000019d6689c085ae165831e934ff763ae46a2a6c172b3f1b60a8ce26f");
}

TEST_P(Sha256ImplTest, HelloDoubleHash) {
  // sha256d("hello") well-known vector.
  EXPECT_EQ(sha256d(span_of("hello")).hex(),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50");
}

TEST_P(Sha256ImplTest, Sha256d64MatchesGenericDoubleHash) {
  // The merkle inner-node fast path must agree with the general sha256d on
  // every 64-byte input.
  std::uint8_t buf[64];
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) buf[i] = static_cast<std::uint8_t>(i * 37 + round * 11);
    EXPECT_EQ(sha256d_64(buf), sha256d(util::ByteSpan(buf, 64))) << "round " << round;
  }
}

TEST_P(Sha256ImplTest, Sha256dLengthSweepMatchesStreaming) {
  // sha256d's copy-free padding path must agree with the reference
  // two-pass construction across the single/double tail-block boundary
  // (55/56/63/64 bytes) and beyond.
  for (std::size_t len : {0u, 1u, 31u, 32u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 200u}) {
    Bytes data(len);
    for (std::size_t i = 0; i < len; ++i) data[i] = static_cast<std::uint8_t>(i ^ (len * 3));
    util::Hash256 expected = Sha256::hash(Sha256::hash(data).span());
    EXPECT_EQ(sha256d(data), expected) << "len " << len;
  }
}

TEST_P(Sha256ImplTest, HmacRfc4231Vectors) {
  Bytes key1(20, 0x0b);
  EXPECT_EQ(hmac_sha256(key1, span_of("Hi There")).hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(hmac_sha256(span_of("Jefe"), span_of("what do ya want for nothing?")).hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
  Bytes key3(131, 0xaa);
  EXPECT_EQ(
      hmac_sha256(key3, span_of("Test Using Larger Than Block-Size Key - Hash Key First")).hex(),
      "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Sha256DispatchTest, BestImplIsSupportedAndActiveByDefault) {
  Sha256Impl best = sha256_best_impl();
  EXPECT_TRUE(set_sha256_impl(best));
  EXPECT_EQ(sha256_active_impl(), best);
  // Portable is always available.
  EXPECT_TRUE(set_sha256_impl(Sha256Impl::kPortable));
  EXPECT_EQ(sha256_active_impl(), Sha256Impl::kPortable);
  set_sha256_impl(best);
}

}  // namespace
}  // namespace icbtc::crypto
