#include "crypto/threshold_schnorr.h"

#include <gtest/gtest.h>

#include "crypto/sha256.h"

namespace icbtc::crypto {
namespace {

util::Hash256 msg_of(const std::string& s) {
  return Sha256::hash(util::ByteSpan(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

TEST(ThresholdSchnorrTest, DealerSharesReconstructKey) {
  util::Rng rng(1);
  ThresholdSchnorrDealer dealer(3, 5, rng);
  std::vector<Share> shares(dealer.key_shares().begin(), dealer.key_shares().begin() + 3);
  U256 secret = shamir_reconstruct(shares);
  auto pair = SchnorrKeyPair::from_secret(secret);
  EXPECT_EQ(pair.pubkey, dealer.public_key());
}

TEST(ThresholdSchnorrTest, SignAndVerify) {
  ThresholdSchnorrService service(3, 5, 42);
  auto msg = msg_of("taproot spend");
  auto sig = service.sign(msg);
  EXPECT_TRUE(schnorr_verify(service.public_key(), msg, sig));
}

TEST(ThresholdSchnorrTest, AnySubsetSigns) {
  ThresholdSchnorrService service(3, 5, 43);
  auto msg = msg_of("m");
  for (auto participants : std::vector<std::vector<std::uint32_t>>{
           {1, 2, 3}, {3, 4, 5}, {1, 3, 5}, {2, 3, 4, 5}}) {
    auto sig = service.sign(msg, {}, participants);
    EXPECT_TRUE(schnorr_verify(service.public_key(), msg, sig));
  }
}

TEST(ThresholdSchnorrTest, ParticipantValidation) {
  ThresholdSchnorrService service(3, 5, 44);
  auto msg = msg_of("m");
  EXPECT_THROW(service.sign(msg, {}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(service.sign(msg, {}, {0, 1, 2}), std::invalid_argument);
  EXPECT_THROW(service.sign(msg, {}, {1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(service.sign(msg, {}, {1, 2, 9}), std::invalid_argument);
}

TEST(ThresholdSchnorrTest, DealerValidation) {
  util::Rng rng(2);
  EXPECT_THROW(ThresholdSchnorrDealer(0, 3, rng), std::invalid_argument);
  EXPECT_THROW(ThresholdSchnorrDealer(4, 3, rng), std::invalid_argument);
}

TEST(ThresholdSchnorrTest, DerivedKeysDifferAndSign) {
  ThresholdSchnorrService service(2, 3, 45);
  SchnorrDerivationPath p1 = {{0x01}};
  SchnorrDerivationPath p2 = {{0x02}};
  EXPECT_NE(service.public_key(p1), service.public_key(p2));
  EXPECT_NE(service.public_key(p1), service.public_key());

  auto msg = msg_of("derived");
  auto sig = service.sign(msg, p1);
  EXPECT_TRUE(schnorr_verify(service.public_key(p1), msg, sig));
  EXPECT_FALSE(schnorr_verify(service.public_key(p2), msg, sig));
  EXPECT_FALSE(schnorr_verify(service.public_key(), msg, sig));
}

TEST(ThresholdSchnorrTest, ManySignaturesUnderManyPaths) {
  // Sweeps parity combinations of derived keys (some tweaked points have odd
  // Y and require share negation).
  ThresholdSchnorrService service(2, 3, 46);
  for (std::uint8_t i = 0; i < 12; ++i) {
    SchnorrDerivationPath path = {{i, static_cast<std::uint8_t>(i * 7)}};
    auto msg = msg_of("m" + std::to_string(i));
    auto sig = service.sign(msg, path);
    EXPECT_TRUE(schnorr_verify(service.public_key(path), msg, sig)) << static_cast<int>(i);
  }
}

TEST(ThresholdSchnorrTest, CorruptPartialDetected) {
  util::Rng rng(47);
  ThresholdSchnorrDealer dealer(2, 3, rng);
  auto [pre, nonce_shares] = dealer.deal_presignature(rng);
  auto msg = msg_of("m");
  std::vector<SchnorrPartialSignature> partials = {
      compute_schnorr_partial(nonce_shares[0], dealer.key_shares()[0], pre,
                              dealer.public_key(), msg),
      compute_schnorr_partial(nonce_shares[1], dealer.key_shares()[1], pre,
                              dealer.public_key(), msg),
  };
  partials[0].s_share = scalar_ctx().add(partials[0].s_share, U256(1));
  EXPECT_FALSE(combine_schnorr_partials(partials, pre, dealer.public_key(), msg).has_value());
}

TEST(ThresholdSchnorrTest, CombineRejectsDuplicatesAndEmpty) {
  util::Rng rng(48);
  ThresholdSchnorrDealer dealer(2, 3, rng);
  auto [pre, nonce_shares] = dealer.deal_presignature(rng);
  auto msg = msg_of("m");
  auto p = compute_schnorr_partial(nonce_shares[0], dealer.key_shares()[0], pre,
                                   dealer.public_key(), msg);
  EXPECT_FALSE(combine_schnorr_partials({p, p}, pre, dealer.public_key(), msg).has_value());
  EXPECT_FALSE(combine_schnorr_partials({}, pre, dealer.public_key(), msg).has_value());
}

TEST(ThresholdSchnorrTest, MismatchedShareIndicesThrow) {
  util::Rng rng(49);
  ThresholdSchnorrDealer dealer(2, 3, rng);
  auto [pre, nonce_shares] = dealer.deal_presignature(rng);
  EXPECT_THROW(compute_schnorr_partial(nonce_shares[0], dealer.key_shares()[1], pre,
                                       dealer.public_key(), msg_of("m")),
               std::invalid_argument);
}

TEST(ThresholdSchnorrTest, IcSubnetParameters) {
  ThresholdSchnorrService service(9, 13, 50);
  auto msg = msg_of("subnet-sized");
  auto sig = service.sign(msg, {{0x42}});
  EXPECT_TRUE(schnorr_verify(service.public_key({{0x42}}), msg, sig));
}

}  // namespace
}  // namespace icbtc::crypto
