#include "reconcile/iblt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "reconcile/murmur.h"
#include "util/byteio.h"

namespace icbtc::reconcile {
namespace {

bitcoin::Transaction make_tx(std::uint64_t tag, std::size_t outputs = 2) {
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  for (std::size_t i = 0; i < 8; ++i) {
    in.prevout.txid.data[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  in.prevout.vout = 0;
  tx.inputs.push_back(in);
  for (std::size_t i = 0; i < outputs; ++i) {
    tx.outputs.push_back(bitcoin::TxOut{static_cast<bitcoin::Amount>(1000 + tag + i),
                                        bitcoin::Bytes{0x76, 0xa9, 0x14}});
  }
  return tx;
}

TEST(MurmurTest, MatchesReferenceVectors) {
  // Published MurmurHash3_x86_32 test vectors.
  EXPECT_EQ(murmur3_32(0, util::ByteSpan{}), 0u);
  EXPECT_EQ(murmur3_32(1, util::ByteSpan{}), 0x514e28b7u);
  const std::uint8_t hello[] = {'h', 'e', 'l', 'l', 'o'};
  EXPECT_EQ(murmur3_32(0, util::ByteSpan(hello, 5)), 0x248bfa47u);
  const std::uint8_t aaaa[] = {0xff, 0xff, 0xff, 0xff};
  EXPECT_EQ(murmur3_32(0, util::ByteSpan(aaaa, 4)), 0x76293b50u);
}

TEST(TxSliceTest, SliceCountCoversLengthPrefix) {
  // size + 4-byte prefix, rounded up to 64-byte slices.
  EXPECT_EQ(slice_count(1), 1u);
  EXPECT_EQ(slice_count(60), 1u);
  EXPECT_EQ(slice_count(61), 2u);
  EXPECT_EQ(slice_count(124), 2u);
  EXPECT_EQ(slice_count(125), 3u);
}

TEST(TxSliceTest, SliceAndReassembleRoundTrip) {
  bitcoin::Transaction tx = make_tx(42, 5);
  auto slices = slice_tx(tx, 0x1234);
  EXPECT_EQ(slices.size(), slice_count(tx.serialize().size()));
  // All slices share the short id and carry ascending fragment indexes.
  std::uint64_t id = short_tx_id(tx.txid(), 0x1234);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].short_id(), id);
    EXPECT_EQ(slices[i].fragment(), i);
  }
  auto back = reassemble_tx(slices);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tx);
}

TEST(TxSliceTest, ReassembleToleratesShuffledFragments) {
  bitcoin::Transaction tx = make_tx(7, 12);
  auto slices = slice_tx(tx, 99);
  ASSERT_GT(slices.size(), 2u);
  std::reverse(slices.begin(), slices.end());
  auto back = reassemble_tx(slices);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, tx);
}

TEST(TxSliceTest, ReassembleRejectsMissingFragment) {
  bitcoin::Transaction tx = make_tx(7, 6);
  auto slices = slice_tx(tx, 99);
  ASSERT_GT(slices.size(), 1u);
  slices.pop_back();
  EXPECT_FALSE(reassemble_tx(slices).has_value());
}

TEST(TxSliceTest, ReassembleRejectsCorruptPadding) {
  bitcoin::Transaction tx = make_tx(8, 1);
  auto slices = slice_tx(tx, 99);
  slices.back().payload[kSliceBytes - 1] ^= 0x01;
  // Either the padding check or the parse fails; never a silent wrong tx.
  auto back = reassemble_tx(slices);
  if (back.has_value()) FAIL() << "corrupt slice reassembled";
}

TEST(TxSliceTest, ShortIdDependsOnSalt) {
  bitcoin::Transaction tx = make_tx(9);
  EXPECT_NE(short_tx_id(tx.txid(), 1), short_tx_id(tx.txid(), 2));
  EXPECT_LE(short_tx_id(tx.txid(), 1), kShortIdMask);
}

TEST(IbltTest, InsertPeelRecoversSlices) {
  Iblt iblt(64, 5);
  std::vector<TxSlice> inserted;
  for (std::uint64_t t = 0; t < 5; ++t) {
    for (const auto& s : slice_tx(make_tx(t), 77)) {
      iblt.insert(s);
      inserted.push_back(s);
    }
  }
  auto result = iblt.peel();
  ASSERT_TRUE(result.complete);
  EXPECT_TRUE(result.removed.empty());
  ASSERT_EQ(result.added.size(), inserted.size());
  auto key = [](const TxSlice& s) { return s.key; };
  std::multiset<std::uint64_t> want, got;
  for (const auto& s : inserted) want.insert(key(s));
  for (const auto& s : result.added) got.insert(key(s));
  EXPECT_EQ(want, got);
}

TEST(IbltTest, InsertEraseLeavesEmpty) {
  Iblt iblt(32, 1);
  auto slices = slice_tx(make_tx(3), 8);
  for (const auto& s : slices) iblt.insert(s);
  EXPECT_FALSE(iblt.empty());
  for (const auto& s : slices) iblt.erase(s);
  EXPECT_TRUE(iblt.empty());
}

TEST(IbltTest, SubtractYieldsSymmetricDifference) {
  Iblt a(96, 3), b(96, 3);
  // Shared items cancel; only the difference remains.
  for (std::uint64_t t = 0; t < 10; ++t) {
    for (const auto& s : slice_tx(make_tx(t), 55)) {
      a.insert(s);
      b.insert(s);
    }
  }
  auto only_a = slice_tx(make_tx(100), 55);
  auto only_b = slice_tx(make_tx(200), 55);
  for (const auto& s : only_a) a.insert(s);
  for (const auto& s : only_b) b.insert(s);

  a.subtract(b);
  auto result = a.peel();
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.added.size(), only_a.size());
  EXPECT_EQ(result.removed.size(), only_b.size());
  auto added = reassemble_all(result.added);
  auto removed = reassemble_all(result.removed);
  ASSERT_EQ(added.size(), 1u);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(added.begin()->second, make_tx(100));
  EXPECT_EQ(removed.begin()->second, make_tx(200));
}

TEST(IbltTest, SubtractRequiresMatchingGeometry) {
  Iblt a(32, 1), b(64, 1), c(32, 2);
  EXPECT_THROW(a.subtract(b), std::invalid_argument);
  EXPECT_THROW(a.subtract(c), std::invalid_argument);
}

TEST(IbltTest, UndersizedSketchFailsDetectably) {
  // Far more slices than cells: peeling cannot complete, and says so.
  Iblt iblt(8, 9);
  for (std::uint64_t t = 0; t < 40; ++t) {
    for (const auto& s : slice_tx(make_tx(t), 33)) iblt.insert(s);
  }
  auto result = iblt.peel();
  EXPECT_FALSE(result.complete);
}

TEST(IbltTest, AdversarialGarbageCellsDoNotDecodeSilently) {
  // A table that was never built by inserts: deserialize bytes with bogus
  // counts/checksums. Peel must refuse to declare success.
  Iblt iblt(16, 0);
  auto slices = slice_tx(make_tx(1), 2);
  iblt.insert(slices[0]);
  util::ByteWriter w;
  iblt.serialize(w);
  util::Bytes wire = std::move(w).take();
  // Corrupt a checksum byte somewhere past the header.
  wire[wire.size() / 2] ^= 0xa5;
  util::ByteReader r(wire);
  Iblt corrupted = Iblt::deserialize(r);
  auto result = corrupted.peel();
  if (result.complete) {
    // If peeling still completed, it must not have invented the slice.
    for (const auto& s : result.added) EXPECT_NE(s, slices[0]);
  }
}

TEST(IbltTest, SerializeRoundTrip) {
  Iblt iblt(24, 0xdead);
  for (const auto& s : slice_tx(make_tx(17, 3), 12)) iblt.insert(s);
  util::ByteWriter w;
  iblt.serialize(w);
  util::Bytes wire = std::move(w).take();
  EXPECT_EQ(wire.size(), iblt.serialized_size());
  util::ByteReader r(wire);
  Iblt back = Iblt::deserialize(r);
  EXPECT_EQ(back, iblt);
}

TEST(IbltTest, DeserializeRejectsImplausibleCellCount) {
  util::ByteWriter w;
  w.u32le(0x7fffffff);  // absurd cell count
  w.u32le(0xbeef);      // salt
  util::Bytes wire = std::move(w).take();
  util::ByteReader r(wire);
  EXPECT_THROW(Iblt::deserialize(r), util::DecodeError);
}

TEST(IbltTest, MinimumCellClamp) {
  Iblt tiny(0, 0);
  EXPECT_GE(tiny.cell_count(), 4u);
  EXPECT_TRUE(tiny.empty());
}

}  // namespace
}  // namespace icbtc::reconcile
