#include "reconcile/recon_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "reconcile/txslice.h"

namespace icbtc::reconcile {
namespace {

util::Hash256 make_txid(std::uint64_t tag) {
  util::Hash256 h{};
  for (std::size_t i = 0; i < 8; ++i) h.data[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  h.data[31] = 0xab;
  return h;
}

TEST(ReconSketchCellsTest, SizesWithSlackAndFloor) {
  EXPECT_EQ(recon_sketch_cells(0), 12u);  // the 2x+12 constant floor
  EXPECT_EQ(recon_sketch_cells(1), 14u);
  EXPECT_EQ(recon_sketch_cells(4), 20u);
  EXPECT_EQ(recon_sketch_cells(10), 32u);
  EXPECT_EQ(recon_sketch_cells(20), 52u);   // last of the 2x+12 segment...
  EXPECT_EQ(recon_sketch_cells(21), 56u);   // ...and the join stays monotonic
  EXPECT_EQ(recon_sketch_cells(100), 179u);  // ~1.55x past the knee
}

TEST(LinkSaltTest, SymmetricPerLink) {
  // Both endpoints must derive the same salt regardless of argument order.
  EXPECT_EQ(link_salt(3, 17, 0xfeed), link_salt(17, 3, 0xfeed));
  EXPECT_EQ(link_salt(0, 1, 0), link_salt(1, 0, 0));
}

TEST(LinkSaltTest, DistinctLinksGetDistinctSalts) {
  std::set<std::uint64_t> salts;
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = a + 1; b < 8; ++b) {
      salts.insert(link_salt(a, b, 0x1234));
    }
  }
  EXPECT_EQ(salts.size(), 28u);  // all 8-choose-2 links differ
  // And the network salt perturbs every link.
  EXPECT_NE(link_salt(1, 2, 0x1234), link_salt(1, 2, 0x1235));
}

TEST(ShortIdSketchTest, InsertEraseRoundTrip) {
  ShortIdSketch sketch(16, 0x5a17);
  EXPECT_TRUE(sketch.empty());
  sketch.insert(0x123456);
  sketch.insert(0xabcdef);
  EXPECT_FALSE(sketch.empty());
  sketch.erase(0x123456);
  sketch.erase(0xabcdef);
  EXPECT_TRUE(sketch.empty());
}

TEST(ShortIdSketchTest, MinimumCellCountEnforced) {
  EXPECT_EQ(ShortIdSketch(0, 1).cell_count(), 8u);
  EXPECT_EQ(ShortIdSketch(3, 1).cell_count(), 8u);
  EXPECT_EQ(ShortIdSketch(20, 1).cell_count(), 20u);
}

TEST(ShortIdSketchTest, WireSizeCountsHeaderAndCells) {
  // 4-byte cell count + cells; the link salt is negotiated at connection
  // time, not resent with every sketch.
  EXPECT_EQ(ShortIdSketch(16, 0).wire_size(), 4u + 16u * kReconCellBytes);
}

TEST(ShortIdSketchTest, SubtractPeelsSymmetricDifference) {
  constexpr std::uint64_t kSalt = 0x1ceb00da;
  ShortIdSketch a(32, kSalt), b(32, kSalt);
  // Shared ids cancel; exclusive ones peel out on the right side.
  for (std::uint64_t id : {1001u, 1002u, 1003u}) {
    a.insert(id);
    b.insert(id);
  }
  a.insert(42);
  a.insert(77);
  b.insert(99);

  a.subtract(b);
  auto peel = a.peel();
  ASSERT_TRUE(peel.complete);
  EXPECT_EQ(peel.a_only, (std::vector<std::uint64_t>{42, 77}));
  EXPECT_EQ(peel.b_only, (std::vector<std::uint64_t>{99}));
}

TEST(ShortIdSketchTest, SubtractRequiresMatchingGeometry) {
  ShortIdSketch a(16, 1), wrong_cells(32, 1), wrong_salt(16, 2);
  EXPECT_THROW(a.subtract(wrong_cells), std::invalid_argument);
  EXPECT_THROW(a.subtract(wrong_salt), std::invalid_argument);
}

TEST(ShortIdSketchTest, UndersizedSketchReportsFailureNotGarbage) {
  constexpr std::uint64_t kSalt = 7;
  ShortIdSketch a(8, kSalt), b(8, kSalt);
  // 64 exclusive ids into 8 cells cannot peel.
  for (std::uint64_t i = 0; i < 64; ++i) a.insert(0x10000 + i);
  a.subtract(b);
  auto peel = a.peel();
  EXPECT_FALSE(peel.complete);
}

// Satellite: pin the peel-decode boundary. recon_sketch_cells(d) must decode
// a symmetric difference of d with high reliability across capacities, and
// the failure mode past the boundary must stay detectable (complete=false),
// never a silently wrong diff.
TEST(ShortIdSketchTest, PeelBoundarySweepAcrossCapacities) {
  int sized_failures = 0;
  for (std::size_t diff : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    for (std::uint64_t trial = 0; trial < 4; ++trial) {
      std::uint64_t salt = link_salt(static_cast<std::uint32_t>(trial),
                                     static_cast<std::uint32_t>(diff), 0xb0a7);
      std::size_t cells = recon_sketch_cells(diff);
      ShortIdSketch a(cells, salt), b(cells, salt);
      std::vector<std::uint64_t> a_ids, b_ids;
      for (std::size_t i = 0; i < diff; ++i) {
        // Half the difference on each side, disjoint id ranges.
        std::uint64_t id = short_tx_id(make_txid(trial * 1000 + i), salt);
        if (i % 2 == 0) {
          a.insert(id);
          a_ids.push_back(id);
        } else {
          b.insert(id);
          b_ids.push_back(id);
        }
      }
      std::sort(a_ids.begin(), a_ids.end());
      std::sort(b_ids.begin(), b_ids.end());
      a.subtract(b);
      auto peel = a.peel();
      if (!peel.complete) {
        ++sized_failures;
        continue;  // detectable failure is acceptable, wrongness is not
      }
      EXPECT_EQ(peel.a_only, a_ids) << "diff=" << diff << " trial=" << trial;
      EXPECT_EQ(peel.b_only, b_ids) << "diff=" << diff << " trial=" << trial;
    }
  }
  // The piecewise sizing (2d+12 up to diff 20, ~1.55x+24 beyond) must make
  // correctly-sized decode failures rare: allow at most one unlucky
  // (diff, trial) combination out of 32.
  EXPECT_LE(sized_failures, 1);
}

// Satellite: past the boundary, bisection must always terminate — each
// parity half holds ~d/2 ids against the same cell count (2x effective
// capacity), and whether a half decodes or not the protocol has a finite
// next step (success or full-inv). Verify halves partition the difference
// exactly when they decode.
TEST(ShortIdSketchTest, BisectionHalvesPartitionTheDifference) {
  for (std::size_t diff : {24u, 48u, 96u, 192u}) {
    std::uint64_t salt = link_salt(5, static_cast<std::uint32_t>(diff), 0xb15ec7);
    // Deliberately undersized whole-set sketch: capacity for diff/8, i.e. a
    // load well past any chance of peeling the whole set.
    std::size_t cells = recon_sketch_cells(diff / 8);
    ReconSet mine(salt);
    std::vector<std::uint64_t> ids;
    for (std::size_t i = 0; i < diff; ++i) {
      util::Hash256 txid = make_txid(0xb15ec7000 + diff * 1000 + i);
      mine.add(txid);
      ids.push_back(short_tx_id(txid, salt));
    }

    ShortIdSketch whole = mine.sketch(cells, 0);
    ShortIdSketch empty_peer(cells, salt);
    whole.subtract(empty_peer);
    ASSERT_FALSE(whole.peel().complete) << "diff=" << diff << " should overflow";

    // The two halves at the same cell count: every id lands in exactly one.
    std::vector<std::uint64_t> recovered;
    for (std::uint8_t part : {std::uint8_t{1}, std::uint8_t{2}}) {
      ShortIdSketch half = mine.sketch(cells, part);
      half.subtract(ShortIdSketch(cells, salt));
      auto peel = half.peel();
      // A half may still overflow (then the protocol full-invs — finite);
      // when it decodes, it must yield exactly the ids of that parity.
      if (!peel.complete) continue;
      for (std::uint64_t id : peel.a_only) {
        EXPECT_TRUE(id_in_part(id, part));
        recovered.push_back(id);
      }
      EXPECT_TRUE(peel.b_only.empty());
    }
    std::sort(recovered.begin(), recovered.end());
    std::sort(ids.begin(), ids.end());
    // No id may be recovered twice and every recovered id is genuine.
    EXPECT_TRUE(std::adjacent_find(recovered.begin(), recovered.end()) == recovered.end());
    EXPECT_TRUE(std::includes(ids.begin(), ids.end(), recovered.begin(), recovered.end()));
  }
}

TEST(IdInPartTest, PartsPartitionByParity) {
  for (std::uint64_t id : {0ull, 1ull, 2ull, 0xffffffffffffull, 0x123456789abull}) {
    EXPECT_TRUE(id_in_part(id, 0));
    EXPECT_EQ(id_in_part(id, 1), (id & 1) == 0);
    EXPECT_EQ(id_in_part(id, 2), (id & 1) == 1);
    EXPECT_NE(id_in_part(id, 1), id_in_part(id, 2));
  }
}

TEST(ReconSetTest, AddRemoveContains) {
  ReconSet set(0xdeadbeef);
  util::Hash256 t1 = make_txid(1), t2 = make_txid(2);
  EXPECT_TRUE(set.add(t1));
  EXPECT_FALSE(set.add(t1));  // duplicate
  EXPECT_TRUE(set.add(t2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(t1));
  EXPECT_TRUE(set.remove(t1));
  EXPECT_FALSE(set.remove(t1));
  EXPECT_FALSE(set.contains(t1));
  EXPECT_TRUE(set.contains(t2));

  const util::Hash256* found = set.find_id(short_tx_id(t2, set.salt()));
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(*found, t2);
}

TEST(ReconSetTest, SnapshotMovesEntriesAndRestoreMerges) {
  ReconSet set(0xcafe);
  util::Hash256 t1 = make_txid(10), t2 = make_txid(20), t3 = make_txid(30);
  set.add(t1);
  set.add(t2);

  auto snapshot = set.take_snapshot();
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(snapshot.size(), 2u);

  // An arrival during the round survives the abort-restore.
  set.add(t3);
  set.restore_snapshot(std::move(snapshot));
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.contains(t1));
  EXPECT_TRUE(set.contains(t2));
  EXPECT_TRUE(set.contains(t3));
}

TEST(ReconSetTest, TxidsSortedByShortId) {
  ReconSet set(0x77);
  for (std::uint64_t tag = 0; tag < 20; ++tag) set.add(make_txid(tag));
  auto txids = set.txids();
  ASSERT_EQ(txids.size(), 20u);
  for (std::size_t i = 1; i < txids.size(); ++i) {
    EXPECT_LT(short_tx_id(txids[i - 1], set.salt()), short_tx_id(txids[i], set.salt()));
  }
}

TEST(RespondToSketchTest, ComputesWantAndHaveAndDrainsSet) {
  constexpr std::uint64_t kSalt = 0x600d;
  ReconSet initiator(kSalt), responder(kSalt);
  util::Hash256 shared = make_txid(100), init_only = make_txid(200),
                resp_only = make_txid(300);
  initiator.add(shared);
  initiator.add(init_only);
  responder.add(shared);
  responder.add(resp_only);

  ShortIdSketch sketch = initiator.sketch(recon_sketch_cells(8), 0);
  auto result = respond_to_sketch(responder, sketch, 0);
  ASSERT_FALSE(result.decode_failed);
  // Responder wants the initiator-exclusive id…
  ASSERT_EQ(result.want.size(), 1u);
  EXPECT_EQ(result.want[0], short_tx_id(init_only, kSalt));
  // …hands back its own exclusive tx to announce…
  ASSERT_EQ(result.have.size(), 1u);
  EXPECT_EQ(result.have[0].second, resp_only);
  // …and the set drains: both the cancelled and the exclusive entry go.
  EXPECT_TRUE(responder.empty());
}

TEST(RespondToSketchTest, FailureLeavesSetUntouched) {
  constexpr std::uint64_t kSalt = 0xbad;
  ReconSet initiator(kSalt), responder(kSalt);
  for (std::uint64_t i = 0; i < 60; ++i) initiator.add(make_txid(500 + i));
  responder.add(make_txid(9999));

  ShortIdSketch sketch = initiator.sketch(8, 0);  // hopelessly undersized
  auto result = respond_to_sketch(responder, sketch, 0);
  EXPECT_TRUE(result.decode_failed);
  EXPECT_TRUE(result.want.empty());
  EXPECT_TRUE(result.have.empty());
  EXPECT_EQ(responder.size(), 1u);
  EXPECT_TRUE(responder.contains(make_txid(9999)));
}

TEST(RespondToSketchTest, PartRespectsParity) {
  constexpr std::uint64_t kSalt = 0x9a9a;
  ReconSet initiator(kSalt), responder(kSalt);
  std::vector<util::Hash256> resp_even, resp_odd;
  for (std::uint64_t i = 0; i < 16; ++i) {
    util::Hash256 txid = make_txid(7000 + i);
    responder.add(txid);
    (short_tx_id(txid, kSalt) & 1 ? resp_odd : resp_even).push_back(txid);
  }
  // Empty initiator sketch for part 1: responder should surface only its
  // even-parity entries and keep the odd ones queued.
  ShortIdSketch sketch = initiator.sketch(recon_sketch_cells(resp_even.size()), 1);
  auto result = respond_to_sketch(responder, sketch, 1);
  ASSERT_FALSE(result.decode_failed);
  EXPECT_EQ(result.have.size(), resp_even.size());
  EXPECT_EQ(responder.size(), resp_odd.size());
  for (const auto& txid : resp_odd) EXPECT_TRUE(responder.contains(txid));
}

TEST(FanoutTest, DeterministicSubsetVariesByTxid) {
  std::vector<std::uint32_t> peers{1, 2, 3, 4, 5, 6, 7, 8};
  auto a1 = select_fanout_peers(make_txid(1), peers, 2, 0xf00);
  auto a2 = select_fanout_peers(make_txid(1), peers, 2, 0xf00);
  EXPECT_EQ(a1, a2);  // same inputs, same answer
  ASSERT_EQ(a1.size(), 2u);
  for (std::uint32_t p : a1) {
    EXPECT_TRUE(std::find(peers.begin(), peers.end(), p) != peers.end());
  }
  // Different transactions must not all flood the same pair.
  std::set<std::vector<std::uint32_t>> subsets;
  for (std::uint64_t tag = 0; tag < 32; ++tag) {
    subsets.insert(select_fanout_peers(make_txid(tag), peers, 2, 0xf00));
  }
  EXPECT_GT(subsets.size(), 4u);
}

TEST(FanoutTest, SmallPeerListPassesThrough) {
  std::vector<std::uint32_t> peers{4, 9};
  EXPECT_EQ(select_fanout_peers(make_txid(5), peers, 3, 1), peers);
  EXPECT_EQ(select_fanout_peers(make_txid(5), {}, 3, 1), std::vector<std::uint32_t>{});
}

TEST(NextReconTickTest, StrictlyAfterNowAndPeriodic) {
  constexpr std::int64_t kInterval = 2'000'000;  // 2 s in µs
  for (std::uint32_t node : {0u, 1u, 7u, 15u, 16u, 255u}) {
    std::int64_t t = 0;
    std::int64_t prev = -1;
    for (int i = 0; i < 5; ++i) {
      std::int64_t tick = next_recon_tick(t, kInterval, node);
      EXPECT_GT(tick, t);
      EXPECT_LE(tick - t, kInterval);
      if (prev >= 0) EXPECT_EQ(tick - prev, kInterval);
      prev = tick;
      t = tick;
    }
  }
}

TEST(NextReconTickTest, NodesAreStaggered) {
  constexpr std::int64_t kInterval = 1'600'000;
  std::set<std::int64_t> ticks;
  for (std::uint32_t node = 0; node < 32; ++node) {
    ticks.insert(next_recon_tick(0, kInterval, node));
  }
  // 32 phase slots at interval/32 spacing: all distinct.
  EXPECT_EQ(ticks.size(), 32u);
  EXPECT_EQ(next_recon_tick(0, kInterval, 0), next_recon_tick(0, kInterval, 32));
}

}  // namespace
}  // namespace icbtc::reconcile
