// Node-level compact block relay: a mining node with relay_mode kCompact
// pushes MsgCmpctBlock to its peers, which reconstruct the block from their
// mempools (src/reconcile), falling back to getblocktxn — and ultimately a
// full getdata — when reconstruction cannot complete.
#include <gtest/gtest.h>

#include "bitcoin/script.h"
#include "btcnet/miner.h"
#include "btcnet/node.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"

namespace icbtc::btcnet {
namespace {

class CompactRelayTest : public ::testing::Test {
 protected:
  CompactRelayTest() {
    alice_.set_metrics(&registry_);
    bob_.set_metrics(&registry_);
    net_.set_metrics(&registry_);
  }

  static NodeOptions compact_options() {
    NodeOptions options;
    options.relay_mode = BlockRelayMode::kCompact;
    return options;
  }

  /// Mines a block paying the coinbase to our key and propagates it.
  bitcoin::OutPoint fund() {
    fund_time_ += 600;
    auto block = chain::build_child_block(alice_.tree(), alice_.best_tip(), fund_time_,
                                          bitcoin::p2pkh_script(key_hash_),
                                          50 * bitcoin::kCoin, {}, next_tag_++);
    EXPECT_TRUE(alice_.submit_block(block));
    // Keep the wall clock in step with the block timestamps so repeated
    // funding never trips the future-drift check.
    sim_.run_until(sim_.now() + 600 * util::kSecond);
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  }

  bitcoin::Transaction spend(const bitcoin::OutPoint& from_outpoint, bitcoin::Amount value,
                             std::size_t outputs = 1) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = from_outpoint;
    tx.inputs.push_back(in);
    for (std::size_t i = 0; i < outputs; ++i) {
      tx.outputs.push_back(bitcoin::TxOut{value / static_cast<bitcoin::Amount>(outputs),
                                          bitcoin::p2pkh_script(key_hash_)});
    }
    auto lock = bitcoin::p2pkh_script(key_hash_);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key_.sign(digest), key_.public_key().compressed());
    return tx;
  }

  std::uint64_t counter(const std::string& name) const {
    auto it = registry_.counters().find(name);
    return it == registry_.counters().end() ? 0 : it->second.value();
  }

  util::Simulation sim_;
  Network net_{sim_, util::Rng(21)};
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  obs::MetricsRegistry registry_;
  BitcoinNode alice_{net_, params_, compact_options()};
  BitcoinNode bob_{net_, params_, compact_options()};
  Miner alice_miner_{alice_, 1.0, util::Rng(22)};
  crypto::PrivateKey key_ = crypto::PrivateKey::from_seed(util::Bytes{4, 5, 6});
  util::Hash160 key_hash_ = crypto::hash160(key_.public_key().compressed());
  std::uint64_t next_tag_ = 5000;
  std::uint32_t fund_time_ = params_.genesis_header.time;
};

TEST_F(CompactRelayTest, ReconstructsFromSyncedMempool) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  // Fund, then relay a batch of spends so both mempools hold them.
  std::vector<bitcoin::OutPoint> coins;
  for (int i = 0; i < 8; ++i) coins.push_back(fund());
  for (const auto& coin : coins) ASSERT_TRUE(alice_.submit_tx(spend(coin, 49 * bitcoin::kCoin)));
  sim_.run();
  ASSERT_EQ(bob_.mempool_size(), 8u);

  std::uint64_t full_blocks_before = counter("net.msg.block");
  auto block = alice_miner_.mine_one();
  ASSERT_EQ(block.transactions.size(), 9u);
  sim_.run();

  // Bob reconstructed the block from its mempool: same chain, no MsgBlock on
  // the wire, at least one successful compact decode.
  EXPECT_EQ(bob_.best_tip(), alice_.best_tip());
  EXPECT_TRUE(bob_.has_block(block.hash()));
  EXPECT_EQ(counter("net.msg.block"), full_blocks_before);
  EXPECT_GE(counter("cmpct.sent"), 1u);
  EXPECT_GE(counter("cmpct.decode_success"), 1u);
  EXPECT_EQ(counter("cmpct.fallback.full"), 0u);
  // Mempools drained the mined transactions.
  EXPECT_EQ(bob_.mempool_size(), 0u);
  EXPECT_EQ(alice_.mempool_size(), 0u);
}

TEST_F(CompactRelayTest, LowOverlapFallsBackToGetBlockTxn) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  std::vector<bitcoin::OutPoint> coins;
  for (int i = 0; i < 20; ++i) coins.push_back(fund());
  // Submit the spends and mine in the same instant: the compact block beats
  // the tx relay to Bob, whose mempool is still empty — far beyond what the
  // default sketch sizing covers.
  for (const auto& coin : coins) ASSERT_TRUE(alice_.submit_tx(spend(coin, 49 * bitcoin::kCoin)));
  auto block = alice_miner_.mine_one();
  ASSERT_EQ(block.transactions.size(), 21u);
  sim_.run();

  EXPECT_EQ(bob_.best_tip(), alice_.best_tip());
  EXPECT_TRUE(bob_.has_block(block.hash()));
  EXPECT_GE(counter("cmpct.peel_failure") + counter("cmpct.fallback.getblocktxn"), 1u);
}

TEST_F(CompactRelayTest, EstimatorGrowsAfterPeelFailure) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  std::vector<bitcoin::OutPoint> coins;
  for (int i = 0; i < 20; ++i) coins.push_back(fund());
  // Baseline after the (trivially decoded) funding blocks dragged Bob's
  // divergence estimate down.
  std::size_t before = bob_.divergence_estimator().estimate();
  for (const auto& coin : coins) ASSERT_TRUE(alice_.submit_tx(spend(coin, 49 * bitcoin::kCoin)));
  alice_miner_.mine_one();
  sim_.run();
  // Bob fed its own (failed or slice-heavy) decode back into the estimator
  // it would size outgoing sketches with.
  EXPECT_GT(bob_.divergence_estimator().estimate(), before);
}

TEST_F(CompactRelayTest, CompactBytesStayWellBelowFullBlockBytes) {
  net_.connect(alice_.id(), bob_.id());
  sim_.run();
  // High overlap: relay many fat transactions first, then mine one block
  // carrying them all. The ratio is measured on that block alone — a fixed
  // sketch dwarfs the tiny coinbase-only funding blocks, but must be a small
  // fraction of a realistically sized block.
  std::vector<bitcoin::OutPoint> coins;
  for (int i = 0; i < 100; ++i) coins.push_back(fund());
  for (const auto& coin : coins) {
    ASSERT_TRUE(alice_.submit_tx(spend(coin, 48 * bitcoin::kCoin, /*outputs=*/4)));
  }
  sim_.run();
  ASSERT_EQ(bob_.mempool_size(), 100u);
  std::uint64_t compact0 = counter("cmpct.bytes.compact");
  std::uint64_t full0 = counter("cmpct.bytes.full_equiv");
  alice_miner_.mine_one();
  sim_.run();
  std::uint64_t compact = counter("cmpct.bytes.compact") - compact0;
  std::uint64_t full_equiv = counter("cmpct.bytes.full_equiv") - full0;
  ASSERT_GT(full_equiv, 0u);
  EXPECT_EQ(counter("cmpct.fallback.full"), 0u);
  // The acceptance target: compact relay at high mempool overlap costs no
  // more than 25% of shipping the block whole.
  EXPECT_LE(compact * 4, full_equiv);
}

TEST_F(CompactRelayTest, ThreeNodeChainPropagatesCompactly) {
  BitcoinNode carol{net_, params_, compact_options()};
  carol.set_metrics(&registry_);
  net_.connect(alice_.id(), bob_.id());
  net_.connect(bob_.id(), carol.id());
  sim_.run();
  std::vector<bitcoin::OutPoint> coins;
  for (int i = 0; i < 5; ++i) coins.push_back(fund());
  for (const auto& coin : coins) ASSERT_TRUE(alice_.submit_tx(spend(coin, 49 * bitcoin::kCoin)));
  sim_.run();
  auto block = alice_miner_.mine_one();
  sim_.run();
  // Bob reconstructed and re-relayed compactly to Carol.
  EXPECT_EQ(bob_.best_tip(), alice_.best_tip());
  EXPECT_EQ(carol.best_tip(), alice_.best_tip());
  EXPECT_TRUE(carol.has_block(block.hash()));
  EXPECT_GE(counter("cmpct.sent"), 2u);
}

}  // namespace
}  // namespace icbtc::btcnet
