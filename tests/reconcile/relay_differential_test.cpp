// Differential test of the two transaction-relay modes: a flooding-only and
// a reconciliation-only network are driven through the same deterministic
// scenario — churn, an RBF replacement, a partition with divergent mempools
// and a reorg across the cut — and must converge to identical mempools,
// identical chains, and identical canister fee percentiles. Reconciliation
// is a bandwidth optimisation; any observable divergence is a bug.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "bitcoin/script.h"
#include "btcnet/node.h"
#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"
#include "crypto/ecdsa.h"
#include "crypto/ripemd160.h"

namespace icbtc::btcnet {
namespace {

constexpr std::size_t kNodes = 5;
// Ring plus a chord; the partition below cuts {3, 4} off from {0, 1, 2}.
constexpr std::pair<std::size_t, std::size_t> kLinks[] = {
    {0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}};

struct WorldResult {
  std::set<util::Hash256> mempool;
  util::Hash256 tip;
  int height = 0;
  std::vector<std::uint64_t> fee_percentiles;
};

class World {
 public:
  explicit World(TxRelayMode mode) : net_(sim_, util::Rng(77)) {
    NodeOptions options;
    options.tx_relay_mode = mode;
    options.flood_fanout = 1;
    for (std::size_t i = 0; i < kNodes; ++i) {
      nodes_.push_back(std::make_unique<BitcoinNode>(net_, params_, options));
    }
    for (auto [a, b] : kLinks) net_.connect(id(a), id(b));
    sim_.run();
  }

  BitcoinNode& node(std::size_t i) { return *nodes_[i]; }
  NodeId id(std::size_t i) { return nodes_[i]->id(); }
  void drain() { sim_.run(); }

  bitcoin::OutPoint fund() {
    auto block = build(node(0), {});
    EXPECT_TRUE(node(0).submit_block(block));
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  }

  bitcoin::Transaction spend(const bitcoin::OutPoint& from_outpoint, bitcoin::Amount value) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = from_outpoint;
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{value, bitcoin::p2pkh_script(key_hash_)});
    auto lock = bitcoin::p2pkh_script(key_hash_);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key_.sign(digest), key_.public_key().compressed());
    return tx;
  }

  /// Mines the node's fee-ordered template on its best tip at the next
  /// deterministic timestamp.
  void mine(std::size_t i) {
    auto block = build(node(i), node(i).mempool_template());
    EXPECT_TRUE(node(i).submit_block(block));
  }

  void partition_island(bool on) {
    net_.set_partitioned(id(3), on);
    net_.set_partitioned(id(4), on);
  }

  void cycle_link(std::size_t a, std::size_t b) {
    net_.disconnect(id(a), id(b));
    net_.connect(id(a), id(b));
  }

  void cycle_all_links() {
    for (auto [a, b] : kLinks) net_.disconnect(id(a), id(b));
    for (auto [a, b] : kLinks) net_.connect(id(a), id(b));
  }

  /// Snapshot of node 0's view plus the canister percentiles over its chain;
  /// asserts every node agrees before reporting.
  WorldResult result() {
    WorldResult out;
    out.tip = node(0).best_tip();
    out.height = node(0).best_height();
    for (const auto& tx : node(0).mempool_snapshot()) out.mempool.insert(tx.txid());
    for (std::size_t i = 1; i < kNodes; ++i) {
      EXPECT_EQ(node(i).best_tip(), out.tip) << "node " << i << " on a different chain";
      std::set<util::Hash256> pool;
      for (const auto& tx : node(i).mempool_snapshot()) pool.insert(tx.txid());
      EXPECT_EQ(pool, out.mempool) << "node " << i << " mempool diverged";
    }

    // Feed node 0's best chain into a fresh canister and read the fee view
    // a contract calling get_current_fee_percentiles would see.
    canister::BitcoinCanister canister(params_, canister::CanisterConfig::for_params(params_));
    std::vector<util::Hash256> chain = node(0).tree().current_chain();
    adapter::AdapterResponse response;
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const bitcoin::Block* block = node(0).get_block(chain[i]);
      EXPECT_NE(block, nullptr);
      response.blocks.emplace_back(*block, block->header);
    }
    canister.process_response(response, static_cast<std::int64_t>(time_) + 4000);
    auto outcome = canister.get_current_fee_percentiles();
    EXPECT_TRUE(outcome.ok());
    out.fee_percentiles = std::move(outcome.value);
    return out;
  }

 private:
  bitcoin::Block build(BitcoinNode& at, std::vector<bitcoin::Transaction> txs) {
    // Keep the simulated clock in step with the header times, or the
    // future-drift rule starts rejecting blocks after ~12 of them.
    sim_.run_until(sim_.now() + 600 * util::kSecond);
    time_ += 600;
    std::uint32_t time = time_;
    std::int64_t mtp = at.tree().median_time_past(at.best_tip());
    if (time <= mtp) time = static_cast<std::uint32_t>(mtp + 1);
    return chain::build_child_block(at.tree(), at.best_tip(), time,
                                    bitcoin::p2pkh_script(key_hash_), 50 * bitcoin::kCoin,
                                    std::move(txs), next_tag_++);
  }

  util::Simulation sim_;
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  Network net_;
  std::vector<std::unique_ptr<BitcoinNode>> nodes_;
  crypto::PrivateKey key_ = crypto::PrivateKey::from_seed(util::Bytes{3, 1, 4});
  util::Hash160 key_hash_ = crypto::hash160(key_.public_key().compressed());
  std::uint32_t time_ = params_.genesis_header.time;
  std::uint64_t next_tag_ = 9000;
};

/// The shared scenario. Every phase ends in a full drain so both relay modes
/// reach quiescence before the next deterministic input.
WorldResult run_scenario(TxRelayMode mode) {
  World world(mode);

  // Funding: 12 coinbase outpoints mined at node 0 and propagated.
  std::vector<bitcoin::OutPoint> outpoints;
  for (int i = 0; i < 12; ++i) outpoints.push_back(world.fund());
  world.drain();

  // Phase 1 — distinct-fee transactions from several origins.
  for (int i = 0; i < 4; ++i) {
    auto tx = world.spend(outpoints[static_cast<std::size_t>(i)],
                          49 * bitcoin::kCoin - i * 10'000);
    EXPECT_TRUE(world.node(static_cast<std::size_t>(i) % kNodes).submit_tx(tx));
  }
  world.drain();

  // Phase 2 — churn: cycle a core link mid-stream; the reconnect resync
  // must not duplicate or lose anything.
  world.cycle_link(1, 2);
  auto tx4 = world.spend(outpoints[4], 49 * bitcoin::kCoin - 40'000);
  EXPECT_TRUE(world.node(2).submit_tx(tx4));
  world.drain();

  // Phase 3 — an RBF replacement racing through the network.
  auto low = world.spend(outpoints[5], 49 * bitcoin::kCoin);
  EXPECT_TRUE(world.node(1).submit_tx(low));
  world.drain();
  auto high = world.spend(outpoints[5], 48 * bitcoin::kCoin);
  EXPECT_TRUE(world.node(2).submit_tx(high));  // conflicts at every node
  world.drain();

  // Phase 4 — partition {3,4} and let the two sides diverge.
  world.partition_island(true);
  for (int i = 0; i < 2; ++i) {
    auto tx = world.spend(outpoints[static_cast<std::size_t>(6 + i)],
                          49 * bitcoin::kCoin - (60 + i) * 1'000);
    EXPECT_TRUE(world.node(static_cast<std::size_t>(i)).submit_tx(tx));  // main side
  }
  for (int i = 0; i < 2; ++i) {
    auto tx = world.spend(outpoints[static_cast<std::size_t>(8 + i)],
                          49 * bitcoin::kCoin - (80 + i) * 1'000);
    EXPECT_TRUE(world.node(static_cast<std::size_t>(3 + i)).submit_tx(tx));  // island
  }
  world.drain();

  // Phase 5 — competing chains: one block on the main side, two on the
  // island. The island chain carries more work and wins after healing.
  world.mine(0);
  world.drain();
  world.mine(3);
  world.drain();
  world.mine(3);
  world.drain();

  // Phase 6 — heal. Links are cycled because a partition drops traffic
  // silently: flooded invs are gone and reconciliation links have parked, so
  // recovery rides the reconnect resync in both modes.
  world.partition_island(false);
  world.cycle_all_links();
  world.drain();

  return world.result();
}

TEST(RelayDifferentialTest, FloodAndReconcileConvergeIdentically) {
  WorldResult flood = run_scenario(TxRelayMode::kFlood);
  WorldResult recon = run_scenario(TxRelayMode::kReconcile);

  // Same chain: the island's heavier fork, identical block-by-block (the
  // fee-ordered template is deterministic, so even the mined bodies match).
  EXPECT_EQ(flood.tip, recon.tip);
  EXPECT_EQ(flood.height, recon.height);
  EXPECT_GE(flood.height, 14);  // 12 funding + 2 island blocks won

  // Same mempool contents...
  EXPECT_EQ(flood.mempool, recon.mempool);
  // ...which include the main side's orphaned transactions (returned by the
  // reorg unless the island blocks confirmed them) and the RBF winner.
  EXPECT_FALSE(flood.mempool.empty());

  // Same fee view for contracts.
  ASSERT_FALSE(flood.fee_percentiles.empty());
  EXPECT_EQ(flood.fee_percentiles, recon.fee_percentiles);
}

}  // namespace
}  // namespace icbtc::btcnet
