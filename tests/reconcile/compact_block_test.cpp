#include "reconcile/compact_block.h"

#include <gtest/gtest.h>

#include "util/byteio.h"

namespace icbtc::reconcile {
namespace {

bitcoin::Transaction make_tx(std::uint64_t tag, std::size_t outputs = 2) {
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  for (std::size_t i = 0; i < 8; ++i) {
    in.prevout.txid.data[i] = static_cast<std::uint8_t>(tag >> (8 * i));
  }
  tx.inputs.push_back(in);
  for (std::size_t i = 0; i < outputs; ++i) {
    tx.outputs.push_back(bitcoin::TxOut{static_cast<bitcoin::Amount>(1000 + tag + i),
                                        bitcoin::Bytes{0x76, 0xa9, 0x14}});
  }
  return tx;
}

bitcoin::Transaction make_coinbase(std::uint64_t tag) {
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint::null();
  in.script_sig = bitcoin::Bytes{static_cast<std::uint8_t>(tag)};
  tx.inputs.push_back(in);
  tx.outputs.push_back(bitcoin::TxOut{50, bitcoin::Bytes{0x6a}});
  return tx;
}

/// A structurally valid block over `n` deterministic transactions. The
/// codec never checks PoW, so the header only needs a correct Merkle root.
bitcoin::Block make_block(std::size_t n, std::uint64_t seed = 0) {
  bitcoin::Block block;
  block.transactions.push_back(make_coinbase(seed + 1));
  for (std::size_t i = 0; i < n; ++i) block.transactions.push_back(make_tx(seed + 10 + i));
  block.header.time = 1234;
  block.header.merkle_root = block.compute_merkle_root();
  return block;
}

std::vector<const bitcoin::Transaction*> pool_of(const bitcoin::Block& block,
                                                 std::size_t skip = 0) {
  std::vector<const bitcoin::Transaction*> pool;
  for (std::size_t i = 1 + skip; i < block.transactions.size(); ++i) {
    pool.push_back(&block.transactions[i]);
  }
  return pool;
}

TEST(CompactBlockTest, EncodeCarriesOrderedShortIds) {
  auto block = make_block(6);
  auto cb = CompactBlockCodec::encode(block, 16);
  EXPECT_EQ(cb.header, block.header);
  EXPECT_EQ(cb.salt, CompactBlockCodec::block_salt(block.hash()));
  EXPECT_EQ(cb.coinbase, block.transactions[0]);
  ASSERT_EQ(cb.short_ids.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(cb.short_ids[i], short_tx_id(block.transactions[i + 1].txid(), cb.salt));
  }
  EXPECT_GE(cb.sketch.cell_count(), sketch_cells(16));
}

TEST(CompactBlockTest, FullPoolDecodesWithoutSketch) {
  auto block = make_block(8);
  auto cb = CompactBlockCodec::encode(block, 4);
  auto decode = CompactBlockCodec::decode(cb, pool_of(block));
  EXPECT_TRUE(decode.complete());
  EXPECT_TRUE(decode.peel_complete);
  EXPECT_EQ(decode.pool_hits, 8u);
  EXPECT_EQ(decode.sketch_decoded, 0u);
  EXPECT_EQ(decode.diff_slices, 0u);
  auto assembled = CompactBlockCodec::assemble(cb, decode);
  ASSERT_TRUE(assembled.has_value());
  EXPECT_EQ(*assembled, block);
}

TEST(CompactBlockTest, SketchRepairsSmallDivergence) {
  // Pool lacks two transactions; an adequately sized sketch supplies them
  // with zero extra round trips.
  auto block = make_block(10);
  auto cb = CompactBlockCodec::encode(block, 16);
  auto decode = CompactBlockCodec::decode(cb, pool_of(block, /*skip=*/2));
  EXPECT_TRUE(decode.complete());
  EXPECT_EQ(decode.pool_hits, 8u);
  EXPECT_EQ(decode.sketch_decoded, 2u);
  EXPECT_GT(decode.diff_slices, 0u);
  auto assembled = CompactBlockCodec::assemble(cb, decode);
  ASSERT_TRUE(assembled.has_value());
  EXPECT_EQ(*assembled, block);
}

TEST(CompactBlockTest, ExtraPoolTransactionsDoNotConfuseDecode) {
  // Receiver mempool holds unrelated transactions on top of the block's.
  auto block = make_block(5);
  auto cb = CompactBlockCodec::encode(block, 8);
  auto pool = pool_of(block);
  std::vector<bitcoin::Transaction> extras;
  for (std::uint64_t t = 0; t < 20; ++t) extras.push_back(make_tx(90000 + t));
  for (const auto& tx : extras) pool.push_back(&tx);
  auto decode = CompactBlockCodec::decode(cb, pool);
  EXPECT_TRUE(decode.complete());
  auto assembled = CompactBlockCodec::assemble(cb, decode);
  ASSERT_TRUE(assembled.has_value());
  EXPECT_EQ(*assembled, block);
}

TEST(CompactBlockTest, UndersizedSketchFailsDetectablyAndFillCompletes) {
  // Empty pool and a sketch sized for almost nothing: the peel must fail
  // loudly, report which positions are unresolved, and a getblocktxn-style
  // fill must complete the block.
  auto block = make_block(20);
  auto cb = CompactBlockCodec::encode(block, 0);
  auto decode = CompactBlockCodec::decode(cb, {});
  EXPECT_FALSE(decode.peel_complete);
  EXPECT_FALSE(decode.complete());
  // The reported divergence must be at least the sketch capacity so the
  // sender's estimator grows past the undersized sketch.
  EXPECT_GE(decode.diff_slices, cb.sketch.cell_count());

  std::vector<bitcoin::Transaction> requested;
  for (std::uint32_t index : decode.missing) {
    requested.push_back(block.transactions[index + 1]);
  }
  ASSERT_TRUE(CompactBlockCodec::fill(decode, requested));
  EXPECT_TRUE(decode.complete());
  auto assembled = CompactBlockCodec::assemble(cb, decode);
  ASSERT_TRUE(assembled.has_value());
  EXPECT_EQ(*assembled, block);
}

TEST(CompactBlockTest, FillRejectsCountMismatch) {
  auto block = make_block(4);
  auto cb = CompactBlockCodec::encode(block, 0);
  auto decode = CompactBlockCodec::decode(cb, {});
  ASSERT_FALSE(decode.missing.empty());
  std::vector<bitcoin::Transaction> wrong(decode.missing.size() + 1, make_tx(1));
  EXPECT_FALSE(CompactBlockCodec::fill(decode, wrong));
  EXPECT_FALSE(decode.complete());
}

TEST(CompactBlockTest, AssembleRejectsWrongTransaction) {
  auto block = make_block(3);
  auto cb = CompactBlockCodec::encode(block, 8);
  auto decode = CompactBlockCodec::decode(cb, pool_of(block));
  ASSERT_TRUE(decode.complete());
  decode.txs[1] = make_tx(555555);  // impostor: Merkle root cannot match
  EXPECT_FALSE(CompactBlockCodec::assemble(cb, decode).has_value());
}

TEST(CompactBlockTest, CoinbaseOnlyBlock) {
  auto block = make_block(0);
  auto cb = CompactBlockCodec::encode(block, 4);
  EXPECT_TRUE(cb.short_ids.empty());
  auto decode = CompactBlockCodec::decode(cb, {});
  EXPECT_TRUE(decode.complete());
  auto assembled = CompactBlockCodec::assemble(cb, decode);
  ASSERT_TRUE(assembled.has_value());
  EXPECT_EQ(*assembled, block);
}

TEST(CompactBlockTest, WireRoundTrip) {
  auto block = make_block(7);
  auto cb = CompactBlockCodec::encode(block, 12);
  util::Bytes wire = cb.serialize();
  util::ByteReader r(wire);
  CompactBlock back = CompactBlock::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(back, cb);
  // wire_size() is what the bandwidth model charges; it must track the real
  // serialization (the 48-bit ids are sent as 6 bytes, not 8).
  EXPECT_EQ(cb.wire_size(), wire.size());
}

TEST(CompactBlockTest, CompactIsSmallerThanFullBlockAtHighOverlap) {
  // Realistically sized transactions (several outputs each), full overlap.
  bitcoin::Block block;
  block.transactions.push_back(make_coinbase(1));
  for (std::size_t i = 0; i < 100; ++i) block.transactions.push_back(make_tx(10 + i, 6));
  block.header.merkle_root = block.compute_merkle_root();
  auto cb = CompactBlockCodec::encode(block, 8);
  EXPECT_LT(cb.wire_size(), block.size() / 4);  // the ≤25% acceptance target
}

TEST(DivergenceEstimatorTest, TracksObservationsWithMargin) {
  DivergenceEstimator est(16.0);
  EXPECT_GT(est.estimate(), 16u);  // margin above the mean
  for (int i = 0; i < 50; ++i) est.observe(0);
  EXPECT_LT(est.mean(), 0.1);
  std::size_t low = est.estimate();
  for (int i = 0; i < 50; ++i) est.observe(200);
  EXPECT_GT(est.mean(), 190.0);
  EXPECT_GT(est.estimate(), low);
  EXPECT_GE(est.estimate(), 200u);
}

TEST(DivergenceEstimatorTest, SketchCellsMonotonic) {
  EXPECT_EQ(sketch_cells(0), 8u);
  std::size_t prev = 0;
  for (std::size_t d = 0; d < 100; d += 7) {
    std::size_t cells = sketch_cells(d);
    EXPECT_GE(cells, d + 4);
    EXPECT_GE(cells, prev);
    prev = cells;
  }
}

}  // namespace
}  // namespace icbtc::reconcile
