// Node-level continuous reconciliation: transactions spread through sketch
// exchange instead of per-peer inv flooding, bisection and full-inv fallbacks
// engage under high divergence, parked links recover, and — the regression
// this file pins — a transaction learned via reconciliation is never
// announced back to the peer it was reconciled with.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "bitcoin/script.h"
#include "btcnet/node.h"
#include "chain/block_builder.h"
#include "crypto/ecdsa.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"

namespace icbtc::btcnet {
namespace {

NodeOptions recon_options(std::size_t fanout = 0) {
  NodeOptions options;
  options.tx_relay_mode = TxRelayMode::kReconcile;
  options.flood_fanout = fanout;
  return options;
}

class ReconRelayTest : public ::testing::Test {
 protected:
  BitcoinNode& add_node(NodeOptions options = recon_options()) {
    nodes_.push_back(std::make_unique<BitcoinNode>(net_, params_, options));
    nodes_.back()->set_metrics(&registry_);
    return *nodes_.back();
  }

  bitcoin::OutPoint fund(BitcoinNode& at) {
    // Keep the simulated clock in step with the header times, or the
    // future-drift rule starts rejecting blocks after ~12 of them.
    sim_.run_until(sim_.now() + 600 * util::kSecond);
    fund_time_ += 600;
    auto block = chain::build_child_block(at.tree(), at.best_tip(), fund_time_,
                                          bitcoin::p2pkh_script(key_hash_),
                                          50 * bitcoin::kCoin, {}, next_tag_++);
    EXPECT_TRUE(at.submit_block(block));
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  }

  bitcoin::Transaction spend(const bitcoin::OutPoint& from_outpoint, bitcoin::Amount value) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = from_outpoint;
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{value, bitcoin::p2pkh_script(key_hash_)});
    auto lock = bitcoin::p2pkh_script(key_hash_);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key_.sign(digest), key_.public_key().compressed());
    return tx;
  }

  std::uint64_t counter(const std::string& name) {
    return registry_.counter(name).value();
  }

  util::Simulation sim_;
  Network net_{sim_, util::Rng(31)};
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  obs::MetricsRegistry registry_;
  std::vector<std::unique_ptr<BitcoinNode>> nodes_;
  crypto::PrivateKey key_ = crypto::PrivateKey::from_seed(util::Bytes{7, 8, 9});
  util::Hash160 key_hash_ = crypto::hash160(key_.public_key().compressed());
  std::uint64_t next_tag_ = 3000;
  std::uint32_t fund_time_ = params_.genesis_header.time;
};

TEST_F(ReconRelayTest, TxPropagatesThroughSketchesAlone) {
  // fanout 0: nothing is inv-flooded, reconciliation is the only channel.
  auto& alice = add_node();
  auto& bob = add_node();
  auto& carol = add_node();
  net_.connect(alice.id(), bob.id());
  net_.connect(bob.id(), carol.id());
  net_.set_metrics(&registry_);
  sim_.run();

  auto outpoint = fund(alice);
  sim_.run();
  std::uint64_t invs_before = counter("net.msg.inv");  // block invs only
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(alice.submit_tx(tx));
  sim_.run();

  EXPECT_TRUE(bob.in_mempool(tx.txid()));
  EXPECT_TRUE(carol.in_mempool(tx.txid()));  // two reconciliation hops
  EXPECT_GE(counter("relay.rounds_completed"), 2u);
  EXPECT_GE(counter("relay.sketches_sent"), 2u);
  EXPECT_EQ(counter("relay.fanout_invs"), 0u);
  // The transaction itself never travelled by inv.
  EXPECT_EQ(counter("net.msg.inv"), invs_before);
  net_.set_metrics(nullptr);
}

TEST_F(ReconRelayTest, ReconciledTxNotReannouncedToSource) {
  // Regression: Bob learns the tx from Alice via reconciliation; it must not
  // be queued for announcement back to Alice (which would cost a useless
  // round and, before the fix, kept links busy forever).
  auto& alice = add_node();
  auto& bob = add_node();
  net_.connect(alice.id(), bob.id());
  sim_.run();

  auto outpoint = fund(alice);
  sim_.run();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(alice.submit_tx(tx));
  EXPECT_EQ(alice.recon_pending(bob.id()), 1u);
  sim_.run();

  ASSERT_TRUE(bob.in_mempool(tx.txid()));
  // Both directions idle: Alice's set drained by the round, and Bob never
  // queued the tx back toward its source.
  EXPECT_EQ(alice.recon_pending(bob.id()), 0u);
  EXPECT_EQ(bob.recon_pending(alice.id()), 0u);
}

TEST_F(ReconRelayTest, FanoutInvAlsoSuppressesReannouncement) {
  // Same regression through the flood half of the hybrid: with fanout 1,
  // Bob gets the inv; he must not queue the tx for reconciliation back.
  auto& alice = add_node(recon_options(1));
  auto& bob = add_node(recon_options(1));
  net_.connect(alice.id(), bob.id());
  sim_.run();

  auto outpoint = fund(alice);
  sim_.run();
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(alice.submit_tx(tx));
  sim_.run();

  ASSERT_TRUE(bob.in_mempool(tx.txid()));
  EXPECT_GE(counter("relay.fanout_invs"), 1u);
  EXPECT_EQ(bob.recon_pending(alice.id()), 0u);
}

TEST_F(ReconRelayTest, HighDivergenceFallsBackToBisectionOrFullInv) {
  auto& alice = add_node();
  auto& bob = add_node();
  net_.connect(alice.id(), bob.id());
  sim_.run();

  // Warm the link on a single transaction so the estimator settles near 1 —
  // a cold link would size its sketch by its own set and shrug off the burst.
  std::vector<bitcoin::OutPoint> outpoints;
  for (int i = 0; i < 61; ++i) outpoints.push_back(fund(alice));
  sim_.run();
  ASSERT_TRUE(alice.submit_tx(spend(outpoints[60], 49 * bitcoin::kCoin)));
  sim_.run();

  // Then 60 distinct-fee transactions in one burst: the sketch sized for the
  // remembered trickle is hopelessly undersized, and the bisection rescue —
  // capped at twice the round's sizing — cannot stretch to 30-id halves
  // either, forcing the full-inv last resort.
  for (int i = 0; i < 60; ++i) {
    auto tx = spend(outpoints[static_cast<std::size_t>(i)],
                    49 * bitcoin::kCoin - (i + 1) * 1000);
    ASSERT_TRUE(alice.submit_tx(tx));
  }
  sim_.run();

  EXPECT_EQ(bob.mempool_size(), 61u);
  EXPECT_GE(counter("relay.diffs_failed"), 1u);
  EXPECT_GE(counter("relay.bisections"), 1u);
  EXPECT_GE(counter("relay.full_inv_fallbacks"), 1u);
  // The estimator learned: later rounds size sketches for the real traffic.
  EXPECT_GT(alice.divergence_estimator().mean(), 0.0);
}

TEST_F(ReconRelayTest, PartitionParksLinkAndReconnectResyncs) {
  auto& alice = add_node();
  auto& bob = add_node();
  net_.connect(alice.id(), bob.id());
  sim_.run();
  auto outpoint = fund(alice);
  sim_.run();

  net_.set_partitioned(bob.id(), true);
  auto tx = spend(outpoint, 49 * bitcoin::kCoin);
  ASSERT_TRUE(alice.submit_tx(tx));
  sim_.run();

  // Three unanswered rounds, then the link parks instead of spinning.
  EXPECT_EQ(counter("relay.round_timeouts"), 3u);
  EXPECT_FALSE(bob.in_mempool(tx.txid()));
  EXPECT_EQ(alice.recon_pending(bob.id()), 1u);  // work preserved

  // Heal by cycling the link: the reconnect resyncs the whole mempool.
  net_.set_partitioned(bob.id(), false);
  net_.disconnect(alice.id(), bob.id());
  net_.connect(alice.id(), bob.id());
  sim_.run();
  EXPECT_TRUE(bob.in_mempool(tx.txid()));
  EXPECT_EQ(alice.recon_pending(bob.id()), 0u);
}

TEST_F(ReconRelayTest, RelayAndMempoolMetricNamesArePinned) {
  // The exporter names are an interface: examples/fork_monitor and the bench
  // harness key on them, so renames must be deliberate.
  add_node();
  net_.set_metrics(&registry_);
  for (const char* name : {
           "relay.sketches_sent", "relay.sketch_bytes", "relay.diffs_decoded",
           "relay.diffs_failed", "relay.bisections", "relay.full_inv_fallbacks",
           "relay.fanout_invs", "relay.rounds_completed", "relay.round_timeouts",
           "mempool.rbf_replaced", "mempool.evicted_expired", "mempool.evicted_sizecap",
           "net.msg.reconsketch", "net.msg.recondiff", "net.msg.reconfinalize",
           "net.bytes.reconsketch", "net.bytes.recondiff", "net.bytes.reconfinalize",
       }) {
    EXPECT_TRUE(registry_.counters().contains(name)) << name;
  }
  EXPECT_TRUE(registry_.gauges().contains("mempool.fee_floor"));
  EXPECT_TRUE(registry_.histograms().contains("relay.sketch_cells"));
  net_.set_metrics(nullptr);
}

}  // namespace
}  // namespace icbtc::btcnet
