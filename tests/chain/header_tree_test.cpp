#include "chain/header_tree.h"

#include <gtest/gtest.h>

#include "chain/block_builder.h"

namespace icbtc::chain {
namespace {

using bitcoin::ChainParams;

class HeaderTreeTest : public ::testing::Test {
 protected:
  const ChainParams& params_ = ChainParams::regtest();
  HeaderTree tree_{params_, params_.genesis_header};
  std::uint32_t time_ = params_.genesis_header.time;
  std::int64_t now_ = params_.genesis_header.time + 1000000;

  /// Extends `parent` with a fresh valid header; `salt` forces distinct
  /// headers for forks at the same height.
  Hash256 extend(const Hash256& parent, std::uint32_t salt = 0) {
    Hash256 merkle;
    merkle.data[0] = static_cast<std::uint8_t>(salt);
    merkle.data[1] = static_cast<std::uint8_t>(salt >> 8);
    time_ += 600;
    auto header = build_child_header(tree_, parent, time_, merkle);
    EXPECT_EQ(tree_.accept(header, now_), AcceptResult::kAccepted);
    return header.hash();
  }

  /// Builds a linear chain of `n` blocks on `parent`, returns all hashes.
  std::vector<Hash256> extend_chain(Hash256 parent, int n, std::uint32_t salt = 0) {
    std::vector<Hash256> out;
    for (int i = 0; i < n; ++i) {
      parent = extend(parent, salt + static_cast<std::uint32_t>(i) * 1000 + 1);
      out.push_back(parent);
    }
    return out;
  }
};

TEST_F(HeaderTreeTest, RootOnlyProperties) {
  EXPECT_EQ(tree_.size(), 1u);
  EXPECT_EQ(tree_.best_tip(), tree_.root_hash());
  EXPECT_EQ(tree_.depth_count(tree_.root_hash()), 1);
  EXPECT_EQ(tree_.max_height(), 0);
  EXPECT_EQ(tree_.current_chain(), std::vector<Hash256>{tree_.root_hash()});
}

TEST_F(HeaderTreeTest, LinearChainAccounting) {
  auto chain = extend_chain(tree_.root_hash(), 5);
  EXPECT_EQ(tree_.size(), 6u);
  EXPECT_EQ(tree_.best_tip(), chain.back());
  EXPECT_EQ(tree_.best_height(), 5);
  EXPECT_EQ(tree_.depth_count(tree_.root_hash()), 6);
  EXPECT_EQ(tree_.depth_count(chain.back()), 1);
  EXPECT_EQ(tree_.current_chain().size(), 6u);
}

TEST_F(HeaderTreeTest, DuplicateRejected) {
  Hash256 merkle;
  time_ += 600;
  auto header = build_child_header(tree_, tree_.root_hash(), time_, merkle);
  EXPECT_EQ(tree_.accept(header, now_), AcceptResult::kAccepted);
  EXPECT_EQ(tree_.accept(header, now_), AcceptResult::kDuplicate);
}

TEST_F(HeaderTreeTest, OrphanRejected) {
  bitcoin::BlockHeader h;
  h.prev_hash.data[0] = 0xde;  // unknown parent
  h.bits = params_.pow_limit_bits;
  h.time = time_ + 600;
  EXPECT_EQ(tree_.accept(h, now_), AcceptResult::kOrphan);
}

TEST_F(HeaderTreeTest, BadPowRejected) {
  Hash256 merkle;
  time_ += 600;
  auto header = build_child_header(tree_, tree_.root_hash(), time_, merkle);
  // Find a nonce that fails the PoW check.
  do {
    header.nonce++;
  } while (bitcoin::check_proof_of_work(header.hash(), header.bits, params_.pow_limit));
  std::string error;
  EXPECT_EQ(tree_.accept(header, now_, &error), AcceptResult::kInvalid);
  EXPECT_EQ(error, "proof of work check failed");
}

TEST_F(HeaderTreeTest, WrongBitsRejected) {
  Hash256 merkle;
  time_ += 600;
  auto header = build_child_header(tree_, tree_.root_hash(), time_, merkle);
  header.bits = 0x1d00ffff;  // not the expected regtest bits
  std::string error;
  EXPECT_EQ(tree_.accept(header, now_, &error), AcceptResult::kInvalid);
  EXPECT_EQ(error, "incorrect difficulty bits");
}

TEST_F(HeaderTreeTest, FutureTimestampRejected) {
  Hash256 merkle;
  auto far_future = static_cast<std::uint32_t>(now_ + params_.max_future_drift_s + 10);
  auto header = build_child_header(tree_, tree_.root_hash(), far_future, merkle);
  std::string error;
  EXPECT_EQ(tree_.accept(header, now_, &error), AcceptResult::kInvalid);
  EXPECT_EQ(error, "timestamp too far in the future");
}

TEST_F(HeaderTreeTest, MedianTimePastEnforced) {
  auto chain = extend_chain(tree_.root_hash(), 11);
  // A child whose timestamp is at or below the median of the last 11 must
  // be rejected.
  auto mtp = tree_.median_time_past(chain.back());
  Hash256 merkle;
  merkle.data[0] = 0xee;
  auto header = build_child_header(tree_, chain.back(), static_cast<std::uint32_t>(mtp), merkle);
  std::string error;
  EXPECT_EQ(tree_.accept(header, now_, &error), AcceptResult::kInvalid);
  EXPECT_EQ(error, "timestamp not after median time past");
}

TEST_F(HeaderTreeTest, ValidationCanBeRelaxed) {
  bitcoin::BlockHeader h;
  h.prev_hash = tree_.root_hash();
  h.bits = 0x1d00ffff;  // wrong bits, bad PoW, stale timestamp
  h.time = 0;
  ValidationOptions lax;
  lax.check_pow = false;
  lax.check_difficulty = false;
  lax.check_timestamp = false;
  EXPECT_EQ(tree_.accept(h, now_, nullptr, lax), AcceptResult::kAccepted);
}

TEST_F(HeaderTreeTest, ForkTracking) {
  auto main_chain = extend_chain(tree_.root_hash(), 3, 0);
  auto fork = extend_chain(tree_.root_hash(), 2, 50000);
  EXPECT_EQ(tree_.tips().size(), 2u);
  EXPECT_EQ(tree_.best_tip(), main_chain.back());  // longer chain wins
  EXPECT_EQ(tree_.blocks_at_height(1).size(), 2u);
  EXPECT_EQ(tree_.blocks_at_height(3).size(), 1u);
  // Extending the fork beyond main flips the best tip.
  auto fork_ext = extend_chain(fork.back(), 2, 60000);
  EXPECT_EQ(tree_.best_tip(), fork_ext.back());
}

TEST_F(HeaderTreeTest, DepthFunctionsOnFork) {
  // root - a1 - a2 - a3
  //      \ b1 - b2
  auto a = extend_chain(tree_.root_hash(), 3, 0);
  auto b = extend_chain(tree_.root_hash(), 2, 50000);
  EXPECT_EQ(tree_.depth_count(a[0]), 3);
  EXPECT_EQ(tree_.depth_count(b[0]), 2);
  EXPECT_EQ(tree_.depth_count(tree_.root_hash()), 4);
  // All regtest blocks carry work 2: d_w = 2 * d_c.
  EXPECT_EQ(tree_.depth_work(a[0]), crypto::U256(6));
  EXPECT_EQ(tree_.depth_work(b[0]), crypto::U256(4));
}

TEST_F(HeaderTreeTest, ConfirmationStabilityLinearChain) {
  auto chain = extend_chain(tree_.root_hash(), 4);
  // No forks: stability equals plain confirmation count.
  EXPECT_EQ(tree_.confirmation_stability(chain[0]), 4);
  EXPECT_EQ(tree_.confirmation_stability(chain[3]), 1);
  EXPECT_EQ(tree_.confirmations(chain[0]), 4);
}

TEST_F(HeaderTreeTest, Figure3StabilityValues) {
  // Reproduces Fig. 3 of the paper: a chain with two forks, checking the
  // confirmation-based stability annotated inside each block.
  //
  //   g - m1 - m2 - m3 - m4 - m5 - m6     (main chain)
  //            \ f1 - f2                  (fork at height 2..3)
  //        \ s1                           (fork at height 2)
  //
  // Main chain: m1..m6; fork A branches off m1; fork B branches off m1? The
  // figure's exact shape: two forks of lengths 2 and 1 competing with the
  // main chain. Stabilities: deep main blocks keep δ = margin over the fork,
  // fork blocks go negative once outrun.
  auto m = extend_chain(tree_.root_hash(), 6, 0);
  auto f = extend_chain(m[0], 2, 50000);   // fork at heights 2-3
  auto s = extend_chain(m[0], 1, 70000);   // single-block fork at height 2

  // d_c: m2 has depth 5 (m2..m6), f1 depth 2, s1 depth 1.
  EXPECT_EQ(tree_.depth_count(m[1]), 5);
  EXPECT_EQ(tree_.depth_count(f[0]), 2);
  EXPECT_EQ(tree_.depth_count(s[0]), 1);

  // m2 competes with f1 and s1 at the same height:
  // stability = min(5, 5-2, 5-1) = 3.
  EXPECT_EQ(tree_.confirmation_stability(m[1]), 3);
  // f1 is outrun: min(2, 2-5, 2-1) = -3 (negative, as in the figure).
  EXPECT_EQ(tree_.confirmation_stability(f[0]), -3);
  EXPECT_EQ(tree_.confirmations(f[0]), 0);
  // m3 competes with f2: min(4, 4-1) = 3.
  EXPECT_EQ(tree_.confirmation_stability(m[2]), 3);
  // m1 has no competitor: stability = its depth = 6.
  EXPECT_EQ(tree_.confirmation_stability(m[0]), 6);
  // Deep main blocks past the forks: stability = depth.
  EXPECT_EQ(tree_.confirmation_stability(m[3]), 3);
  EXPECT_EQ(tree_.confirmation_stability(m[5]), 1);
}

TEST_F(HeaderTreeTest, StabilityCanStagnateWhileDepthGrows) {
  // The paper notes stability may stagnate as depth increases: a competing
  // fork that keeps pace caps the margin.
  auto m = extend_chain(tree_.root_hash(), 2, 0);
  auto f = extend_chain(tree_.root_hash(), 1, 50000);
  int s_before = tree_.confirmation_stability(m[0]);
  // Grow both branches in lockstep.
  auto m_more = extend_chain(m.back(), 3, 1000);
  extend_chain(f.back(), 3, 60000);
  int s_after = tree_.confirmation_stability(m[0]);
  EXPECT_EQ(s_before, s_after);  // depth rose by 3, stability unchanged
  EXPECT_GT(tree_.depth_count(m[0]), 2);
  (void)m_more;
}

TEST_F(HeaderTreeTest, AtMostOneStableBlockPerHeight) {
  auto m = extend_chain(tree_.root_hash(), 5, 0);
  auto f = extend_chain(tree_.root_hash(), 3, 50000);
  for (int h = 1; h <= tree_.max_height(); ++h) {
    int stable_count = 0;
    for (const auto& b : tree_.blocks_at_height(h)) {
      if (tree_.is_confirmation_stable(b, 1)) ++stable_count;
    }
    EXPECT_LE(stable_count, 1) << "height " << h;
  }
  (void)m;
  (void)f;
}

TEST_F(HeaderTreeTest, DeltaStabilityMonotoneInDelta) {
  auto m = extend_chain(tree_.root_hash(), 6, 0);
  extend_chain(tree_.root_hash(), 2, 50000);
  const auto& b = m[1];
  // δ-stable implies δ'-stable for δ' <= δ.
  int stability = tree_.confirmation_stability(b);
  ASSERT_GT(stability, 0);
  for (int delta = 1; delta <= stability; ++delta) {
    EXPECT_TRUE(tree_.is_confirmation_stable(b, delta)) << delta;
  }
  EXPECT_FALSE(tree_.is_confirmation_stable(b, stability + 1));
}

TEST_F(HeaderTreeTest, DifficultyStability) {
  auto m = extend_chain(tree_.root_hash(), 6, 0);
  auto f = extend_chain(tree_.root_hash(), 2, 50000);
  crypto::U256 ref_work = tree_.find(tree_.root_hash())->block_work;  // = 2
  // m1 (d_w = 12) competes with f1 (d_w = 4): margin 8/2 = 4 ref units.
  EXPECT_TRUE(tree_.is_difficulty_stable(m[0], 4, ref_work));
  EXPECT_FALSE(tree_.is_difficulty_stable(m[0], 5, ref_work));
  // m2 (d_w = 10) competes with f2 (d_w = 2): margin 8/2 = 4 ref units.
  EXPECT_TRUE(tree_.is_difficulty_stable(m[1], 4, ref_work));
  EXPECT_FALSE(tree_.is_difficulty_stable(m[1], 5, ref_work));
  // The losing fork is never difficulty-stable.
  EXPECT_FALSE(tree_.is_difficulty_stable(f[0], 1, ref_work));
}

TEST_F(HeaderTreeTest, RerootDiscardsCompetingBranches) {
  auto m = extend_chain(tree_.root_hash(), 4, 0);
  auto f = extend_chain(tree_.root_hash(), 2, 50000);
  EXPECT_EQ(tree_.size(), 7u);
  tree_.reroot(m[0]);
  EXPECT_EQ(tree_.root_hash(), m[0]);
  EXPECT_EQ(tree_.size(), 4u);  // m1..m4
  EXPECT_FALSE(tree_.contains(f[0]));
  EXPECT_FALSE(tree_.contains(f[1]));
  EXPECT_EQ(tree_.best_tip(), m.back());
  // Depths are preserved relative to the new root.
  EXPECT_EQ(tree_.depth_count(m[0]), 4);
}

TEST_F(HeaderTreeTest, RerootValidation) {
  auto m = extend_chain(tree_.root_hash(), 3, 0);
  EXPECT_THROW(tree_.reroot(m[2]), std::invalid_argument);  // not a root child
  Hash256 unknown;
  unknown.data[0] = 0xaa;
  EXPECT_THROW(tree_.reroot(unknown), std::invalid_argument);
}

TEST_F(HeaderTreeTest, RerootRecomputesBestTipFromSurvivors) {
  auto m = extend_chain(tree_.root_hash(), 2, 0);
  auto f = extend_chain(tree_.root_hash(), 5, 50000);
  EXPECT_EQ(tree_.best_tip(), f.back());
  // Keep the shorter branch: best tip must move onto it.
  tree_.reroot(m[0]);
  EXPECT_EQ(tree_.best_tip(), m.back());
  EXPECT_EQ(tree_.max_height(), 2);
}

TEST_F(HeaderTreeTest, ExpectedBitsStableWithoutRetargeting) {
  auto chain = extend_chain(tree_.root_hash(), 3);
  EXPECT_EQ(tree_.expected_bits(chain.back()), params_.pow_limit_bits);
}

TEST_F(HeaderTreeTest, TreeRootedAtNonzeroHeight) {
  // The canister's tree is rooted at the anchor, not genesis.
  auto chain = extend_chain(tree_.root_hash(), 3);
  const auto* anchor = tree_.find(chain[1]);
  HeaderTree anchored(params_, anchor->header, anchor->height,
                      anchor->cumulative_work - anchor->block_work);
  EXPECT_EQ(anchored.root().height, 2);
  EXPECT_EQ(anchored.best_height(), 2);
}

TEST_F(HeaderTreeTest, ConfirmationsNeverNegative) {
  auto m = extend_chain(tree_.root_hash(), 4, 0);
  auto f = extend_chain(tree_.root_hash(), 1, 50000);
  EXPECT_EQ(tree_.confirmations(f[0]), 0);
  EXPECT_GT(tree_.confirmations(m[0]), 0);
}

}  // namespace
}  // namespace icbtc::chain
