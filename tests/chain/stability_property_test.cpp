// Property tests of the stability calculus (Definition II.1) over randomly
// grown block trees.
#include <gtest/gtest.h>

#include "chain/block_builder.h"
#include "util/rng.h"

namespace icbtc::chain {
namespace {

/// Grows a random tree: at each step, extends a uniformly random existing
/// block (biased towards tips to resemble mining).
struct RandomTree {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  HeaderTree tree{params, params.genesis_header};
  util::Rng rng;
  std::vector<util::Hash256> all_blocks{tree.root_hash()};
  std::uint32_t time = params.genesis_header.time;
  std::uint32_t salt = 0;

  explicit RandomTree(std::uint64_t seed, int n_blocks, double fork_probability = 0.25)
      : rng(seed) {
    for (int i = 0; i < n_blocks; ++i) {
      util::Hash256 parent;
      if (rng.next_double() < fork_probability) {
        parent = all_blocks[static_cast<std::size_t>(rng.next_below(all_blocks.size()))];
      } else {
        parent = tree.best_tip();
      }
      util::Hash256 merkle;
      merkle.data[0] = static_cast<std::uint8_t>(++salt);
      merkle.data[1] = static_cast<std::uint8_t>(salt >> 8);
      time += 600;
      auto header = build_child_header(tree, parent, time, merkle);
      auto result = tree.accept(header, static_cast<std::int64_t>(time) + 100000);
      EXPECT_EQ(result, AcceptResult::kAccepted);
      all_blocks.push_back(header.hash());
    }
  }
};

class StabilityProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StabilityProperty, AtMostOneStableBlockPerHeightForEveryDelta) {
  RandomTree t(GetParam(), 60);
  for (int h = 0; h <= t.tree.max_height(); ++h) {
    auto blocks = t.tree.blocks_at_height(h);
    for (int delta : {1, 2, 3, 5, 8}) {
      int stable = 0;
      for (const auto& b : blocks) {
        if (t.tree.is_confirmation_stable(b, delta)) ++stable;
      }
      EXPECT_LE(stable, 1) << "height " << h << " delta " << delta;
    }
  }
}

TEST_P(StabilityProperty, StabilityIsMonotoneInDelta) {
  RandomTree t(GetParam(), 50);
  for (const auto& b : t.all_blocks) {
    int stability = t.tree.confirmation_stability(b);
    for (int delta = 1; delta <= 10; ++delta) {
      EXPECT_EQ(t.tree.is_confirmation_stable(b, delta), delta <= stability)
          << b.hex() << " delta " << delta;
    }
  }
}

TEST_P(StabilityProperty, DepthBoundsStability) {
  // Condition (1) of Definition II.1: δ-stable requires d(b) >= δ.
  RandomTree t(GetParam(), 50);
  for (const auto& b : t.all_blocks) {
    EXPECT_LE(t.tree.confirmation_stability(b), t.tree.depth_count(b));
  }
}

TEST_P(StabilityProperty, CurrentChainIsConsistent) {
  RandomTree t(GetParam(), 60);
  auto chain = t.tree.current_chain();
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front(), t.tree.root_hash());
  EXPECT_EQ(chain.back(), t.tree.best_tip());
  for (std::size_t i = 1; i < chain.size(); ++i) {
    const auto* entry = t.tree.find(chain[i]);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->parent, chain[i - 1]);
    EXPECT_EQ(entry->height, static_cast<int>(i));
  }
}

TEST_P(StabilityProperty, BestTipMaximizesWork) {
  RandomTree t(GetParam(), 60);
  const auto* best = t.tree.find(t.tree.best_tip());
  for (const auto& tip : t.tree.tips()) {
    EXPECT_LE(t.tree.find(tip)->cumulative_work, best->cumulative_work);
  }
}

TEST_P(StabilityProperty, DifficultyStableImpliesMostWorkAtHeight) {
  RandomTree t(GetParam(), 60);
  crypto::U256 ref = t.tree.root().block_work;
  for (const auto& b : t.all_blocks) {
    if (!t.tree.is_difficulty_stable(b, 2, ref)) continue;
    const auto* entry = t.tree.find(b);
    for (const auto& other : t.tree.blocks_at_height(entry->height)) {
      if (other == b) continue;
      EXPECT_LT(t.tree.depth_work(other), t.tree.depth_work(b));
    }
  }
}

TEST_P(StabilityProperty, DepthWorkConsistentWithDepthCount) {
  // Constant difficulty: d_w == w * d_c for every block.
  RandomTree t(GetParam(), 50);
  crypto::U256 w = t.tree.root().block_work;
  for (const auto& b : t.all_blocks) {
    crypto::U256 expected =
        crypto::mul_full(w, crypto::U256(static_cast<std::uint64_t>(t.tree.depth_count(b))))
            .lo();
    EXPECT_EQ(t.tree.depth_work(b), expected);
  }
}

TEST_P(StabilityProperty, RerootPreservesSubtreeMetrics) {
  RandomTree t(GetParam(), 60);
  // Pick the current chain's first block as the new root.
  auto chain = t.tree.current_chain();
  if (chain.size() < 3) return;
  util::Hash256 new_root = chain[1];
  // Record depths of surviving blocks before the reroot.
  std::vector<std::pair<util::Hash256, int>> before;
  for (const auto& b : t.all_blocks) {
    const auto* entry = t.tree.find(b);
    if (entry == nullptr) continue;
    // Survives iff in the subtree of new_root.
    const auto* cur = entry;
    bool survives = false;
    while (cur != nullptr) {
      if (cur->hash == new_root) {
        survives = true;
        break;
      }
      cur = t.tree.find(cur->parent);
    }
    if (survives) before.emplace_back(b, t.tree.depth_count(b));
  }
  t.tree.reroot(new_root);
  for (const auto& [hash, depth] : before) {
    ASSERT_TRUE(t.tree.contains(hash));
    EXPECT_EQ(t.tree.depth_count(hash), depth) << hash.hex();
  }
  EXPECT_EQ(t.tree.root_hash(), new_root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StabilityProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u));

}  // namespace
}  // namespace icbtc::chain
