#include "parallel/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/params.h"

namespace icbtc::parallel {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.run(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, RepeatedRunsAreIndependent) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.run(17, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
    EXPECT_EQ(sum.load(), 16 * 17 / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndOneItemRuns) {
  ThreadPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "must not be called"; });
  std::atomic<int> calls{0};
  pool.run(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ConcurrentSubmittersEachCompleteExactlyOnce) {
  // Two threads submitting overlapping run() calls to the same pool: before
  // submissions were serialized, the second submission clobbered
  // current_/generation_, stranding workers on the overwritten job and
  // letting a submitter return with stragglers still claiming its items.
  // Under TSan this also shakes out any residual data race in the
  // publication protocol.
  ThreadPool pool(3);
  constexpr int kRounds = 200;
  constexpr std::size_t kN = 64;
  std::atomic<int> failures{0};
  auto submitter = [&] {
    for (int round = 0; round < kRounds; ++round) {
      std::vector<std::atomic<int>> counts(kN);
      pool.run(kN, [&](std::size_t i) { counts[i].fetch_add(1); });
      for (std::size_t i = 0; i < kN; ++i) {
        if (counts[i].load() != 1) failures.fetch_add(1);
      }
    }
  };
  std::thread a(submitter);
  std::thread b(submitter);
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(PoolMetricsTest, CountersAndGaugesAreDeterministicAfterRuns) {
  // The pinned contract of ThreadPool::set_metrics: after any number of
  // completed runs, pool.runs counts fan-outs, pool.tasks_executed counts
  // items, and both gauges read exactly 0 (instrument updates are ordered
  // before each item's completion count).
  obs::MetricsRegistry registry;
  ThreadPool pool(3);
  pool.set_metrics(&registry);
  pool.run(8, [](std::size_t) {});
  pool.run(5, [](std::size_t) {});
  pool.run(0, [](std::size_t) {});  // empty fan-out short-circuits: no run counted
  EXPECT_EQ(registry.counter("pool.runs").value(), 2u);
  EXPECT_EQ(registry.counter("pool.tasks_executed").value(), 13u);
  EXPECT_EQ(registry.gauge("pool.queue_depth").value(), 0);
  EXPECT_EQ(registry.gauge("pool.workers_busy").value(), 0);
}

TEST(PoolMetricsTest, GaugesAreLiveDuringAFanOut) {
  obs::MetricsRegistry registry;
  ThreadPool pool(2);
  pool.set_metrics(&registry);
  std::atomic<std::int64_t> max_busy{0};
  std::atomic<std::int64_t> max_depth{0};
  pool.run(64, [&](std::size_t) {
    std::int64_t busy = registry.gauge("pool.workers_busy").value();
    std::int64_t depth = registry.gauge("pool.queue_depth").value();
    std::int64_t prev = max_busy.load();
    while (busy > prev && !max_busy.compare_exchange_weak(prev, busy)) {
    }
    prev = max_depth.load();
    while (depth > prev && !max_depth.compare_exchange_weak(prev, depth)) {
    }
  });
  // The observing task itself is inside fn, so both gauges were >= 1.
  EXPECT_GE(max_busy.load(), 1);
  EXPECT_GE(max_depth.load(), 1);
  EXPECT_EQ(registry.gauge("pool.queue_depth").value(), 0);
  EXPECT_EQ(registry.gauge("pool.workers_busy").value(), 0);
}

TEST(PoolMetricsTest, DetachStopsRecording) {
  obs::MetricsRegistry registry;
  ThreadPool pool(2);
  pool.set_metrics(&registry);
  pool.run(4, [](std::size_t) {});
  pool.set_metrics(nullptr);
  pool.run(4, [](std::size_t) {});
  EXPECT_EQ(registry.counter("pool.runs").value(), 1u);
  EXPECT_EQ(registry.counter("pool.tasks_executed").value(), 4u);
}

TEST(SharedPoolTest, ReplacementDuringFlightIsSafe) {
  // A fan-out holding shared_pool_ref() must survive concurrent
  // set_shared_pool() replacement: the old pool stays alive until the last
  // reference drops (previously reset() could destroy — and join — a pool
  // out from under an in-flight run()).
  set_shared_pool(2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> completed{0};
  std::thread user([&] {
    while (!stop.load()) {
      std::shared_ptr<ThreadPool> pool = shared_pool_ref();
      if (pool == nullptr) continue;
      std::atomic<int> sum{0};
      pool->run(32, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
      ASSERT_EQ(sum.load(), 31 * 32 / 2);
      completed.fetch_add(1);
    }
  });
  for (int i = 0; i < 50; ++i) {
    set_shared_pool(1 + static_cast<std::size_t>(i % 3));
    std::this_thread::yield();
  }
  stop.store(true);
  user.join();
  set_shared_pool(0);
  EXPECT_EQ(shared_pool(), nullptr);
  EXPECT_GT(completed.load(), 0u);
}

TEST(ParallelMapTest, MatchesSerialResultForAnyThreadCount) {
  std::vector<int> items(257);
  std::iota(items.begin(), items.end(), 0);
  auto fn = [](int x) { return x * x + 7; };

  std::vector<int> serial;
  parallel_map(nullptr, items, serial, fn);
  ASSERT_EQ(serial.size(), items.size());

  for (std::size_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    std::vector<int> parallel_out;
    parallel_map(&pool, items, parallel_out, fn);
    EXPECT_EQ(parallel_out, serial) << threads << " threads";
  }
}

TEST(ParallelMapTest, NullPoolRunsSerially) {
  std::vector<int> items = {1, 2, 3};
  std::vector<int> out;
  parallel_map(nullptr, items, out, [](int x) { return x + 1; });
  EXPECT_EQ(out, (std::vector<int>{2, 3, 4}));
}

TEST(SharedPoolTest, DisabledByDefaultAndInstallable) {
  // Serial by default: no pool unless a consumer opts in.
  EXPECT_EQ(shared_pool(), nullptr);
  set_shared_pool(2);
  ASSERT_NE(shared_pool(), nullptr);
  EXPECT_EQ(shared_pool()->worker_count(), 2u);
  set_shared_pool(0);
  EXPECT_EQ(shared_pool(), nullptr);
}

TEST(ParallelHashingTest, BlockTxidsAndMerkleRootMatchSerial) {
  // Deterministic fan-out on the real consumer: a block's txids and merkle
  // root must be byte-identical with and without a pool, whatever the cache
  // state.
  bitcoin::Block block = bitcoin::genesis_block(bitcoin::ChainParams::regtest());
  for (int i = 0; i < 9; ++i) {
    bitcoin::Transaction tx;
    tx.inputs.push_back(bitcoin::TxIn{
        bitcoin::OutPoint{block.transactions.back().txid(), 0}, {0x51}, 0xffffffff});
    tx.outputs.push_back(bitcoin::TxOut{1000 + i, {0x51, static_cast<std::uint8_t>(i)}});
    block.transactions.push_back(tx);
  }

  auto serial_ids = block.txids(nullptr);
  auto serial_root = block.compute_merkle_root(nullptr);

  ThreadPool pool(4);
  // Fresh copies with cold caches so the pool actually computes the hashes.
  bitcoin::Block reparsed = bitcoin::Block::parse(block.serialize());
  for (auto& tx : reparsed.transactions) tx.invalidate_txid();
  EXPECT_EQ(reparsed.txids(&pool), serial_ids);
  EXPECT_EQ(reparsed.compute_merkle_root(&pool), serial_root);
}

}  // namespace
}  // namespace icbtc::parallel
