// End-to-end taproot wallet: a canister holds BTC on a P2TR key-path output
// under the subnet's threshold-Schnorr key and spends it through the
// integration — the second signature scheme the paper's architecture exposes.
#include <gtest/gtest.h>

#include "btcnet/harness.h"
#include "bitcoin/script.h"
#include "contracts/btc_wallet.h"

namespace icbtc::contracts {
namespace {

class TaprootWalletTest : public ::testing::Test {
 protected:
  TaprootWalletTest() {
    btcnet::BitcoinNetworkConfig btc_config;
    btc_config.num_nodes = 10;
    btc_config.num_miners = 1;
    btc_config.ipv6_fraction = 1.0;
    harness_ = std::make_unique<btcnet::BitcoinNetworkHarness>(sim_, params_, btc_config, 888);
    sim_.run();
    ic::SubnetConfig subnet_config;
    subnet_config.num_nodes = 13;
    subnet_config.num_byzantine = 4;
    subnet_ = std::make_unique<ic::Subnet>(sim_, subnet_config, 889);
    canister::IntegrationConfig config;
    config.adapter.addr_lower_threshold = 3;
    config.adapter.addr_upper_threshold = 8;
    config.adapter.multi_block_below_height = 1 << 30;
    config.canister = canister::CanisterConfig::for_params(params_);
    integration_ = std::make_unique<canister::BitcoinIntegration>(
        *subnet_, harness_->network(), params_, config, 890);
    subnet_->start();
    integration_->start();
  }

  void fund(const std::string& address, bitcoin::Amount amount) {
    auto decoded = bitcoin::decode_address(address, params_.network);
    ASSERT_TRUE(decoded.has_value());
    auto& node = harness_->node(0);
    auto block = chain::build_child_block(
        node.tree(), node.best_tip(),
        static_cast<std::uint32_t>(params_.genesis_header.time +
                                   sim_.now() / util::kSecond + 600),
        bitcoin::script_for_address(*decoded), amount, {}, tag_++);
    ASSERT_TRUE(node.submit_block(block));
    settle();
  }

  void mine(int n) {
    for (int i = 0; i < n; ++i) {
      sim_.run_until(sim_.now() + 600 * util::kSecond);
      harness_->miners()[0]->mine_one();
    }
    settle();
  }

  void settle() { sim_.run_until(sim_.now() + 3 * util::kMinute); }

  util::Simulation sim_;
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  std::unique_ptr<btcnet::BitcoinNetworkHarness> harness_;
  std::unique_ptr<ic::Subnet> subnet_;
  std::unique_ptr<canister::BitcoinIntegration> integration_;
  std::uint64_t tag_ = 0x7a9;
};

TEST_F(TaprootWalletTest, AddressIsBech32m) {
  BtcWallet wallet(*integration_, {{0x01}}, WalletType::kP2tr);
  EXPECT_EQ(wallet.address().substr(0, 5), "bcrt1");
  auto decoded = bitcoin::decode_address(wallet.address(), params_.network);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, bitcoin::AddressType::kP2tr);
}

TEST_F(TaprootWalletTest, DistinctFromEcdsaWalletOnSamePath) {
  BtcWallet legacy(*integration_, {{0x02}}, WalletType::kP2pkh);
  BtcWallet taproot(*integration_, {{0x02}}, WalletType::kP2tr);
  EXPECT_NE(legacy.address(), taproot.address());
}

TEST_F(TaprootWalletTest, ReceivesAndSeesBalance) {
  BtcWallet wallet(*integration_, {{0x03}}, WalletType::kP2tr);
  fund(wallet.address(), bitcoin::kCoin);
  auto balance = wallet.balance(1);
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.value, bitcoin::kCoin);
}

TEST_F(TaprootWalletTest, SpendsWithThresholdSchnorrEndToEnd) {
  BtcWallet wallet(*integration_, {{0x04}}, WalletType::kP2tr);
  fund(wallet.address(), bitcoin::kCoin);

  util::Hash160 merchant;
  merchant.data[0] = 0x44;
  std::string merchant_address = bitcoin::p2pkh_address(merchant, params_.network);
  auto sent = wallet.send({{merchant_address, 30'000'000}}, 2, 1);
  ASSERT_TRUE(sent.ok());
  EXPECT_GT(wallet.signatures_requested(), 0u);

  // The Bitcoin network's nodes validate the Schnorr signature in their
  // mempool policy — the spend must actually relay and mine.
  settle();
  mine(1);
  auto merchant_balance = integration_->query_get_balance(merchant_address);
  ASSERT_TRUE(merchant_balance.outcome.ok());
  EXPECT_EQ(merchant_balance.outcome.value, 30'000'000);
  auto change = wallet.balance(0);
  EXPECT_EQ(change.value, bitcoin::kCoin - 30'000'000 - sent.fee);
}

TEST_F(TaprootWalletTest, TaprootToTaprootPayment) {
  BtcWallet alice(*integration_, {{0x05}}, WalletType::kP2tr);
  BtcWallet bob(*integration_, {{0x06}}, WalletType::kP2tr);
  fund(alice.address(), 50'000'000);
  auto sent = alice.send({{bob.address(), 20'000'000}}, 2, 1);
  ASSERT_TRUE(sent.ok());
  settle();
  mine(1);
  EXPECT_EQ(bob.balance(0).value, 20'000'000);
  // Bob can spend what he received (signing works on received P2TR UTXOs).
  auto forward = bob.send({{alice.address(), 10'000'000}}, 2, 0);
  ASSERT_TRUE(forward.ok());
}

TEST_F(TaprootWalletTest, TamperedSchnorrSpendRejectedByNetwork) {
  BtcWallet wallet(*integration_, {{0x07}}, WalletType::kP2tr);
  fund(wallet.address(), bitcoin::kCoin);
  // Build the spend but corrupt the signature before broadcasting directly
  // to a node.
  auto utxos = wallet.utxos(1);
  ASSERT_TRUE(utxos.ok());
  ASSERT_FALSE(utxos.value.empty());
  bitcoin::Transaction tx;
  bitcoin::TxIn in;
  in.prevout = utxos.value[0].outpoint;
  tx.inputs.push_back(in);
  util::Hash160 dest;
  tx.outputs.push_back(bitcoin::TxOut{1'000'000, bitcoin::p2pkh_script(dest)});
  wallet.sign_input(tx, 0);
  tx.inputs[0].script_sig[7] ^= 1;
  EXPECT_FALSE(harness_->node(0).submit_tx(tx));
}

}  // namespace
}  // namespace icbtc::contracts
