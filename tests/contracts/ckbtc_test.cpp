// Tests of the ckBTC-style minter: deposit -> mint, token transfers, and
// burn -> native BTC withdrawal, over the full simulated stack.
#include <gtest/gtest.h>

#include "btcnet/harness.h"
#include "contracts/ckbtc_minter.h"

namespace icbtc::contracts {
namespace {

using btcnet::BitcoinNetworkConfig;
using btcnet::BitcoinNetworkHarness;

TEST(LedgerTest, MintBurnTransfer) {
  Ledger ledger;
  EXPECT_EQ(ledger.balance_of("alice"), 0);
  ledger.mint("alice", 1000);
  EXPECT_EQ(ledger.balance_of("alice"), 1000);
  EXPECT_EQ(ledger.total_supply(), 1000);

  EXPECT_TRUE(ledger.transfer("alice", "bob", 400));
  EXPECT_EQ(ledger.balance_of("alice"), 600);
  EXPECT_EQ(ledger.balance_of("bob"), 400);
  EXPECT_EQ(ledger.total_supply(), 1000);  // transfers conserve supply

  EXPECT_FALSE(ledger.transfer("alice", "bob", 601));
  EXPECT_FALSE(ledger.transfer("carol", "bob", 1));
  EXPECT_FALSE(ledger.transfer("alice", "bob", 0));

  EXPECT_TRUE(ledger.burn("bob", 400));
  EXPECT_EQ(ledger.balance_of("bob"), 0);
  EXPECT_EQ(ledger.total_supply(), 600);
  EXPECT_FALSE(ledger.burn("bob", 1));
  EXPECT_THROW(ledger.mint("x", 0), std::invalid_argument);
  EXPECT_EQ(ledger.transactions(), 3u);  // mint + transfer + burn succeeded
}

class CkBtcTest : public ::testing::Test {
 protected:
  CkBtcTest() {
    BitcoinNetworkConfig btc_config;
    btc_config.num_nodes = 10;
    btc_config.num_miners = 1;
    btc_config.ipv6_fraction = 1.0;
    harness_ = std::make_unique<BitcoinNetworkHarness>(sim_, params_, btc_config, 777);
    sim_.run();

    ic::SubnetConfig subnet_config;
    subnet_config.num_nodes = 13;
    subnet_config.num_byzantine = 4;
    subnet_ = std::make_unique<ic::Subnet>(sim_, subnet_config, 778);

    canister::IntegrationConfig config;
    config.adapter.addr_lower_threshold = 3;
    config.adapter.addr_upper_threshold = 8;
    config.adapter.multi_block_below_height = 1 << 30;
    config.canister = canister::CanisterConfig::for_params(params_);
    integration_ = std::make_unique<canister::BitcoinIntegration>(
        *subnet_, harness_->network(), params_, config, 779);
    subnet_->start();
    integration_->start();
    minter_ = std::make_unique<CkBtcMinter>(*integration_, "ckbtc-test",
                                            /*required_confirmations=*/2);
  }

  void pay(const std::string& address, bitcoin::Amount amount) {
    auto decoded = bitcoin::decode_address(address, params_.network);
    ASSERT_TRUE(decoded.has_value());
    auto& node = harness_->node(0);
    auto block = chain::build_child_block(
        node.tree(), node.best_tip(),
        static_cast<std::uint32_t>(params_.genesis_header.time +
                                   sim_.now() / util::kSecond + 600),
        bitcoin::script_for_address(*decoded), amount, {}, tag_++);
    ASSERT_TRUE(node.submit_block(block));
    settle();
  }

  void mine(int n) {
    for (int i = 0; i < n; ++i) {
      sim_.run_until(sim_.now() + 600 * util::kSecond);
      harness_->miners()[0]->mine_one();
    }
    settle();
  }

  void settle() { sim_.run_until(sim_.now() + 3 * util::kMinute); }

  util::Simulation sim_;
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  std::unique_ptr<BitcoinNetworkHarness> harness_;
  std::unique_ptr<ic::Subnet> subnet_;
  std::unique_ptr<canister::BitcoinIntegration> integration_;
  std::unique_ptr<CkBtcMinter> minter_;
  std::uint64_t tag_ = 0xcb;
};

TEST_F(CkBtcTest, DepositAddressesAreStablePerUserAndDistinct) {
  auto a1 = minter_->deposit_address_for("alice");
  auto a2 = minter_->deposit_address_for("alice");
  auto b = minter_->deposit_address_for("bob");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST_F(CkBtcTest, DepositMintsAfterConfirmations) {
  auto address = minter_->deposit_address_for("alice");
  pay(address, bitcoin::kCoin);
  // One block = one confirmation; c* = 2 not reached yet.
  auto minted = minter_->update_balance("alice");
  ASSERT_TRUE(minted.ok());
  EXPECT_EQ(minted.value, 0);
  EXPECT_EQ(minter_->ledger().balance_of("alice"), 0);

  mine(2);
  minted = minter_->update_balance("alice");
  ASSERT_TRUE(minted.ok());
  EXPECT_EQ(minted.value, bitcoin::kCoin);
  EXPECT_EQ(minter_->ledger().balance_of("alice"), bitcoin::kCoin);
  EXPECT_EQ(minter_->ledger().total_supply(), bitcoin::kCoin);
  EXPECT_EQ(minter_->managed_btc(), bitcoin::kCoin);
}

TEST_F(CkBtcTest, NoDoubleCrediting) {
  auto address = minter_->deposit_address_for("alice");
  pay(address, bitcoin::kCoin);
  mine(2);
  EXPECT_EQ(minter_->update_balance("alice").value, bitcoin::kCoin);
  EXPECT_EQ(minter_->update_balance("alice").value, 0);
  mine(1);
  EXPECT_EQ(minter_->update_balance("alice").value, 0);
  EXPECT_EQ(minter_->ledger().balance_of("alice"), bitcoin::kCoin);
}

TEST_F(CkBtcTest, TokensTransferInstantly) {
  pay(minter_->deposit_address_for("alice"), bitcoin::kCoin);
  mine(2);
  minter_->update_balance("alice");
  // Token transfers need no Bitcoin transaction: the whole point of the
  // integration (§I: fast, cheap Bitcoin-denominated applications).
  EXPECT_TRUE(minter_->ledger().transfer("alice", "bob", 30'000'000));
  EXPECT_EQ(minter_->ledger().balance_of("bob"), 30'000'000);
  EXPECT_EQ(minter_->ledger().balance_of("alice"), 70'000'000);
}

TEST_F(CkBtcTest, RetrieveBtcPaysOutOnChain) {
  pay(minter_->deposit_address_for("alice"), bitcoin::kCoin);
  mine(2);
  minter_->update_balance("alice");

  util::Hash160 dest;
  dest.data[0] = 0x99;
  std::string dest_address = bitcoin::p2pkh_address(dest, params_.network);
  auto result = minter_->retrieve_btc("alice", dest_address, 40'000'000);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.fee, 0);
  EXPECT_EQ(result.amount_sent, 40'000'000 - result.fee);
  // Tokens burned.
  EXPECT_EQ(minter_->ledger().balance_of("alice"), 60'000'000);
  EXPECT_EQ(minter_->ledger().total_supply(), 60'000'000);

  settle();
  mine(1);
  auto balance = integration_->query_get_balance(dest_address);
  ASSERT_TRUE(balance.outcome.ok());
  EXPECT_EQ(balance.outcome.value, result.amount_sent);
}

TEST_F(CkBtcTest, RetrieveRejectsInsufficientTokens) {
  pay(minter_->deposit_address_for("alice"), 10'000'000);
  mine(2);
  minter_->update_balance("alice");
  util::Hash160 dest;
  auto result = minter_->retrieve_btc("alice", bitcoin::p2pkh_address(dest, params_.network),
                                      20'000'000);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(minter_->ledger().balance_of("alice"), 10'000'000);  // unchanged
}

TEST_F(CkBtcTest, RetrieveRejectsBadAddressAndDust) {
  pay(minter_->deposit_address_for("alice"), bitcoin::kCoin);
  mine(2);
  minter_->update_balance("alice");
  EXPECT_FALSE(minter_->retrieve_btc("alice", "garbage", 1'000'000).ok());
  util::Hash160 dest;
  EXPECT_FALSE(
      minter_->retrieve_btc("alice", bitcoin::p2pkh_address(dest, params_.network), 100).ok());
  EXPECT_EQ(minter_->ledger().balance_of("alice"), bitcoin::kCoin);
}

TEST_F(CkBtcTest, WithdrawalsPoolAcrossDepositors) {
  // Alice and Bob deposit; Bob transfers tokens to Carol; Carol withdraws
  // more than either single deposit — the minter spends pooled UTXOs.
  pay(minter_->deposit_address_for("alice"), 30'000'000);
  pay(minter_->deposit_address_for("bob"), 30'000'000);
  mine(2);
  minter_->update_balance("alice");
  minter_->update_balance("bob");
  ASSERT_TRUE(minter_->ledger().transfer("alice", "carol", 30'000'000));
  ASSERT_TRUE(minter_->ledger().transfer("bob", "carol", 30'000'000));

  util::Hash160 dest;
  dest.data[0] = 0xcc;
  std::string dest_address = bitcoin::p2pkh_address(dest, params_.network);
  auto result = minter_->retrieve_btc("carol", dest_address, 50'000'000);
  ASSERT_TRUE(result.ok());
  settle();
  mine(1);
  auto balance = integration_->query_get_balance(dest_address);
  EXPECT_EQ(balance.outcome.value, result.amount_sent);
  EXPECT_EQ(minter_->ledger().balance_of("carol"), 10'000'000);
}

TEST_F(CkBtcTest, SupplyNeverExceedsManagedBtc) {
  pay(minter_->deposit_address_for("alice"), bitcoin::kCoin);
  mine(2);
  minter_->update_balance("alice");
  EXPECT_LE(minter_->ledger().total_supply(), minter_->managed_btc());

  util::Hash160 dest;
  auto result = minter_->retrieve_btc("alice", bitcoin::p2pkh_address(dest, params_.network),
                                      25'000'000);
  ASSERT_TRUE(result.ok());
  // After the withdrawal, remaining supply is still backed by the pool
  // (change output included).
  EXPECT_LE(minter_->ledger().total_supply(), minter_->managed_btc());
}

TEST_F(CkBtcTest, ValidatesConstruction) {
  EXPECT_THROW(CkBtcMinter(*integration_, "x", 0), std::invalid_argument);
}

}  // namespace
}  // namespace icbtc::contracts
