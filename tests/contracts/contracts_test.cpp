// Tests of the smart-contract layer: threshold-ECDSA wallet, escrow, and
// payroll, run against the full simulated stack.
#include <gtest/gtest.h>

#include "btcnet/harness.h"
#include "contracts/btc_wallet.h"
#include "contracts/escrow.h"
#include "contracts/payroll.h"

namespace icbtc::contracts {
namespace {

using btcnet::BitcoinNetworkConfig;
using btcnet::BitcoinNetworkHarness;

class ContractsTest : public ::testing::Test {
 protected:
  ContractsTest() {
    BitcoinNetworkConfig btc_config;
    btc_config.num_nodes = 10;
    btc_config.connections_per_node = 3;
    btc_config.num_dns_seeds = 3;
    btc_config.num_miners = 1;
    btc_config.ipv6_fraction = 1.0;
    harness_ = std::make_unique<BitcoinNetworkHarness>(sim_, params_, btc_config, 4242);
    sim_.run();

    ic::SubnetConfig subnet_config;
    subnet_config.num_nodes = 13;
    subnet_config.num_byzantine = 4;  // worst tolerated corruption
    subnet_ = std::make_unique<ic::Subnet>(sim_, subnet_config, 12345);

    canister::IntegrationConfig config;
    config.adapter.addr_lower_threshold = 3;
    config.adapter.addr_upper_threshold = 8;
    config.adapter.multi_block_below_height = 1 << 30;
    config.canister = canister::CanisterConfig::for_params(params_);
    integration_ = std::make_unique<canister::BitcoinIntegration>(
        *subnet_, harness_->network(), params_, config, 31415);
    subnet_->start();
    integration_->start();
  }

  /// Mines a block paying `amount` to `address` and lets the stack settle.
  void fund_address(const std::string& address, bitcoin::Amount amount) {
    auto decoded = bitcoin::decode_address(address, params_.network);
    ASSERT_TRUE(decoded.has_value());
    auto& node = harness_->node(0);
    auto block = chain::build_child_block(
        node.tree(), node.best_tip(),
        static_cast<std::uint32_t>(params_.genesis_header.time +
                                   sim_.now() / util::kSecond + 600),
        bitcoin::script_for_address(*decoded), amount, {}, next_tag_++);
    ASSERT_TRUE(node.submit_block(block));
    settle();
  }

  void mine(int n) {
    auto* miner = harness_->miners()[0];
    for (int i = 0; i < n; ++i) {
      sim_.run_until(sim_.now() + 600 * util::kSecond);
      miner->mine_one();
    }
    settle();
  }

  void settle() { sim_.run_until(sim_.now() + 3 * util::kMinute); }

  util::Simulation sim_;
  const bitcoin::ChainParams& params_ = bitcoin::ChainParams::regtest();
  std::unique_ptr<BitcoinNetworkHarness> harness_;
  std::unique_ptr<ic::Subnet> subnet_;
  std::unique_ptr<canister::BitcoinIntegration> integration_;
  std::uint64_t next_tag_ = 0xc0ffee;
};

TEST_F(ContractsTest, WalletAddressesAreDistinctPerPath) {
  BtcWallet w1(*integration_, {{0x01}});
  BtcWallet w2(*integration_, {{0x02}});
  EXPECT_NE(w1.address(), w2.address());
  EXPECT_NE(w1.public_key(), w2.public_key());
  // Addresses decode on the right network.
  EXPECT_TRUE(bitcoin::decode_address(w1.address(), params_.network).has_value());
}

TEST_F(ContractsTest, WalletSeesFunding) {
  BtcWallet wallet(*integration_, {{0x03}});
  EXPECT_EQ(wallet.balance(0).value, 0);
  fund_address(wallet.address(), 2 * bitcoin::kCoin);
  auto balance = wallet.balance(0);
  ASSERT_TRUE(balance.ok());
  EXPECT_EQ(balance.value, 2 * bitcoin::kCoin);
  // With 1 confirmation required it is already visible (it is in a block).
  EXPECT_EQ(wallet.balance(1).value, 2 * bitcoin::kCoin);
}

TEST_F(ContractsTest, WalletSpendsEndToEnd) {
  BtcWallet wallet(*integration_, {{0x04}});
  fund_address(wallet.address(), 1 * bitcoin::kCoin);

  util::Hash160 merchant;
  merchant.data[0] = 0x11;
  std::string merchant_address = bitcoin::p2pkh_address(merchant, params_.network);

  auto sent = wallet.send({{merchant_address, 30'000'000}}, 2, 1);
  ASSERT_TRUE(sent.ok());
  EXPECT_GT(sent.fee, 0);
  EXPECT_EQ(sent.inputs_used, 1u);
  EXPECT_GT(wallet.signatures_requested(), 0u);

  // The signed transaction must be valid on the Bitcoin network: relayed,
  // mined, and reflected back in the canister state.
  settle();
  mine(1);
  auto merchant_balance = integration_->query_get_balance(merchant_address);
  ASSERT_TRUE(merchant_balance.outcome.ok());
  EXPECT_EQ(merchant_balance.outcome.value, 30'000'000);
  // Change came back to the wallet.
  auto change = wallet.balance(0);
  ASSERT_TRUE(change.ok());
  EXPECT_EQ(change.value, 1 * bitcoin::kCoin - 30'000'000 - sent.fee);
}

TEST_F(ContractsTest, WalletRejectsOverdraft) {
  BtcWallet wallet(*integration_, {{0x05}});
  fund_address(wallet.address(), 100'000);
  auto sent = wallet.send({{wallet.address(), 10 * bitcoin::kCoin}});
  EXPECT_FALSE(sent.ok());
}

TEST_F(ContractsTest, WalletRejectsBadRecipient) {
  BtcWallet wallet(*integration_, {{0x06}});
  fund_address(wallet.address(), bitcoin::kCoin);
  EXPECT_EQ(wallet.send({{"nonsense", 1000}}).status, canister::Status::kBadAddress);
  EXPECT_EQ(wallet.send({{wallet.address(), -5}}).status, canister::Status::kBadAddress);
}

TEST_F(ContractsTest, WalletConsolidatesMultipleUtxos) {
  BtcWallet wallet(*integration_, {{0x07}});
  fund_address(wallet.address(), 10'000'000);
  fund_address(wallet.address(), 10'000'000);
  fund_address(wallet.address(), 10'000'000);
  auto utxos = wallet.utxos(0);
  ASSERT_TRUE(utxos.ok());
  EXPECT_EQ(utxos.value.size(), 3u);

  util::Hash160 dest;
  dest.data[0] = 0x22;
  auto sent = wallet.send({{bitcoin::p2pkh_address(dest, params_.network), 25'000'000}}, 2, 0);
  ASSERT_TRUE(sent.ok());
  EXPECT_GE(sent.inputs_used, 3u);
}

TEST_F(ContractsTest, EscrowLifecycleRelease) {
  util::Hash160 buyer, seller;
  buyer.data[0] = 0xb1;
  seller.data[0] = 0x51;
  std::string buyer_addr = bitcoin::p2pkh_address(buyer, params_.network);
  std::string seller_addr = bitcoin::p2pkh_address(seller, params_.network);

  EscrowContract escrow(*integration_, "order-42", buyer_addr, seller_addr,
                        bitcoin::kCoin, /*required_confirmations=*/2);
  EXPECT_EQ(escrow.state(), EscrowState::kAwaitingDeposit);
  EXPECT_EQ(escrow.refresh(), EscrowState::kAwaitingDeposit);

  // Buyer deposits; one block is not enough for c*=2 confirmations.
  fund_address(escrow.deposit_address(), bitcoin::kCoin);
  EXPECT_EQ(escrow.refresh(), EscrowState::kAwaitingDeposit);
  mine(2);
  EXPECT_EQ(escrow.refresh(), EscrowState::kFunded);

  auto released = escrow.release();
  ASSERT_TRUE(released.ok());
  EXPECT_EQ(escrow.state(), EscrowState::kReleased);
  settle();
  mine(1);
  auto seller_balance = integration_->query_get_balance(seller_addr);
  ASSERT_TRUE(seller_balance.outcome.ok());
  EXPECT_GT(seller_balance.outcome.value, bitcoin::kCoin - 10'000);
}

TEST_F(ContractsTest, EscrowRefund) {
  util::Hash160 buyer, seller;
  buyer.data[0] = 0xb2;
  seller.data[0] = 0x52;
  std::string buyer_addr = bitcoin::p2pkh_address(buyer, params_.network);
  EscrowContract escrow(*integration_, "order-43", buyer_addr,
                        bitcoin::p2pkh_address(seller, params_.network),
                        bitcoin::kCoin, 1);
  fund_address(escrow.deposit_address(), bitcoin::kCoin);
  mine(1);
  ASSERT_EQ(escrow.refresh(), EscrowState::kFunded);
  auto refunded = escrow.refund();
  ASSERT_TRUE(refunded.ok());
  EXPECT_EQ(escrow.state(), EscrowState::kRefunded);
  settle();
  mine(1);
  auto buyer_balance = integration_->query_get_balance(buyer_addr);
  EXPECT_GT(buyer_balance.outcome.value, bitcoin::kCoin - 10'000);
}

TEST_F(ContractsTest, EscrowRejectsActionsBeforeFunding) {
  util::Hash160 a, b;
  a.data[0] = 1;
  b.data[0] = 2;
  EscrowContract escrow(*integration_, "order-44",
                        bitcoin::p2pkh_address(a, params_.network),
                        bitcoin::p2pkh_address(b, params_.network), bitcoin::kCoin, 1);
  EXPECT_FALSE(escrow.release().ok());
  EXPECT_FALSE(escrow.refund().ok());
  EXPECT_EQ(escrow.state(), EscrowState::kAwaitingDeposit);
  EXPECT_THROW(EscrowContract(*integration_, "bad",
                              bitcoin::p2pkh_address(a, params_.network),
                              bitcoin::p2pkh_address(b, params_.network), 0, 1),
               std::invalid_argument);
}

TEST_F(ContractsTest, PayrollPaysEveryone) {
  std::vector<Employee> staff;
  std::vector<std::string> addresses;
  for (std::uint8_t i = 0; i < 3; ++i) {
    util::Hash160 h;
    h.data[0] = static_cast<std::uint8_t>(0xe0 + i);
    addresses.push_back(bitcoin::p2pkh_address(h, params_.network));
    staff.push_back(Employee{"emp" + std::to_string(i), addresses.back(), 10'000'000});
  }
  PayrollContract payroll(*integration_, "acme", staff, /*min_confirmations=*/1);
  EXPECT_EQ(payroll.total_salaries(), 30'000'000);

  fund_address(payroll.treasury_address(), bitcoin::kCoin);
  mine(1);
  auto record = payroll.run_payday(1);
  ASSERT_TRUE(record.success);
  EXPECT_EQ(record.employees_paid, 3u);
  settle();
  mine(1);
  for (const auto& addr : addresses) {
    auto balance = integration_->query_get_balance(addr);
    ASSERT_TRUE(balance.outcome.ok()) << addr;
    EXPECT_EQ(balance.outcome.value, 10'000'000) << addr;
  }
}

TEST_F(ContractsTest, PayrollFailsGracefullyWhenUnderfunded) {
  PayrollContract payroll(*integration_, "broke",
                          {Employee{"e", bitcoin::p2pkh_address({}, params_.network),
                                    bitcoin::kCoin}},
                          1);
  auto record = payroll.run_payday(1);
  EXPECT_FALSE(record.success);
  ASSERT_EQ(payroll.history().size(), 1u);
  EXPECT_FALSE(payroll.history()[0].success);
}

TEST_F(ContractsTest, PayrollScheduledByTimer) {
  util::Hash160 h;
  h.data[0] = 0xf7;
  std::string addr = bitcoin::p2pkh_address(h, params_.network);
  PayrollContract payroll(*integration_, "timer-co", {Employee{"e", addr, 1'000'000}}, 1);
  fund_address(payroll.treasury_address(), bitcoin::kCoin);
  mine(1);
  payroll.start_schedule(/*period_rounds=*/50);
  sim_.run_until(sim_.now() + 120 * util::kSecond);  // ~2 paydays at 1s rounds
  payroll.stop_schedule();
  EXPECT_GE(payroll.history().size(), 1u);
  std::size_t successes = 0;
  for (const auto& r : payroll.history()) successes += r.success ? 1 : 0;
  EXPECT_GE(successes, 1u);
  EXPECT_THROW(payroll.start_schedule(0), std::invalid_argument);
}

TEST_F(ContractsTest, PayrollValidation) {
  EXPECT_THROW(PayrollContract(*integration_, "x", {}, 1), std::invalid_argument);
  EXPECT_THROW(PayrollContract(*integration_, "x",
                               {Employee{"e", "addr", 0}}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace icbtc::contracts
