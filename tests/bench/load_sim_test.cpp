// Load-generator unit tests: Zipf sampling, seeded schedule determinism,
// queue-sim sanity, and the coordinated-omission regression — an injected
// stall must blow up the open-loop p99 while the closed-loop control arm
// barely notices it.
#include "load_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "workload.h"

namespace icbtc::bench {
namespace {

TEST(ZipfSamplerTest, HotRanksDominate) {
  ZipfSampler zipf(100'000, 0.99);
  util::Rng rng(1);
  std::vector<int> hits(10, 0);
  int in_top10 = 0;
  const int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    std::size_t rank = zipf.sample(rng);
    ASSERT_LT(rank, zipf.size());
    if (rank < 10) {
      ++in_top10;
      ++hits[rank];
    }
  }
  // With s=0.99 over 100k ranks, the top-10 carries roughly a fifth of the
  // mass; rank probabilities must be monotone decreasing.
  EXPECT_GT(in_top10, kSamples / 10);
  EXPECT_GT(hits[0], hits[9]);
}

TEST(ZipfSamplerTest, RejectsEmptyPopulation) {
  EXPECT_THROW(ZipfSampler(0, 0.99), std::invalid_argument);
}

TEST(ScheduleTest, SeededSchedulesAreIdentical) {
  ZipfSampler zipf(1000, 0.99);
  LoadMix mix;
  util::Rng a(77), b(77);
  auto s1 = make_open_loop_schedule(500.0, 2000, mix, zipf, a);
  auto s2 = make_open_loop_schedule(500.0, 2000, mix, zipf, b);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].arrival_us, s2[i].arrival_us);
    EXPECT_EQ(s1[i].endpoint, s2[i].endpoint);
    EXPECT_EQ(s1[i].address, s2[i].address);
  }
}

TEST(ScheduleTest, ArrivalsAreMonotoneAtTheOfferedRate) {
  ZipfSampler zipf(100, 0.99);
  LoadMix mix;
  util::Rng rng(5);
  auto schedule = make_open_loop_schedule(1000.0, 10'000, mix, zipf, rng);
  for (std::size_t i = 1; i < schedule.size(); ++i) {
    EXPECT_GE(schedule[i].arrival_us, schedule[i - 1].arrival_us);
  }
  // Mean inter-arrival gap of a 1000 rps Poisson process is 1000us (within
  // sampling noise at 10k draws).
  double span = schedule.back().arrival_us - schedule.front().arrival_us;
  double mean_gap = span / static_cast<double>(schedule.size() - 1);
  EXPECT_NEAR(mean_gap, 1000.0, 50.0);
}

TEST(ScheduleTest, MixFractionsAreRespected) {
  ZipfSampler zipf(100, 0.99);
  LoadMix mix;
  mix.get_utxos = 0.2;
  mix.get_balance = 0.2;
  mix.send_transaction = 0.6;
  util::Rng rng(9);
  auto schedule = make_open_loop_schedule(100.0, 20'000, mix, zipf, rng);
  std::size_t sends = 0;
  for (const auto& r : schedule) {
    if (r.endpoint == LoadEndpoint::kSendTransaction) ++sends;
  }
  EXPECT_NEAR(static_cast<double>(sends) / static_cast<double>(schedule.size()), 0.6, 0.02);
}

TEST(QueueSimTest, UncontendedLatencyIsServiceTime) {
  // One request per virtual second against 4 servers with 100us service:
  // no queueing, every latency is exactly the service time.
  ZipfSampler zipf(10, 0.99);
  LoadMix mix;
  util::Rng rng(3);
  auto schedule = make_open_loop_schedule(1.0, 50, mix, zipf, rng);
  auto result = simulate_open_loop(schedule, 4, [](const LoadRequest&) { return 100.0; });
  ASSERT_EQ(result.latency_us.size(), 50u);
  for (double l : result.latency_us) EXPECT_DOUBLE_EQ(l, 100.0);
  EXPECT_NEAR(result.achieved_rps, result.offered_rps, result.offered_rps * 0.05);
}

TEST(QueueSimTest, OverloadSaturatesAchievedThroughput) {
  // Offered 2x what one server can do: achieved pins at capacity and
  // latency grows without bound over the run.
  ZipfSampler zipf(10, 0.99);
  LoadMix mix;
  util::Rng rng(4);
  auto schedule = make_open_loop_schedule(2000.0, 4000, mix, zipf, rng);  // 2000 rps offered
  auto result =
      simulate_open_loop(schedule, 1, [](const LoadRequest&) { return 1000.0; });  // 1000 rps cap
  EXPECT_LT(result.achieved_rps, 0.6 * result.offered_rps);
  EXPECT_GT(result.latency_us.back(), result.latency_us.front());
}

TEST(CoordinatedOmissionTest, StallRaisesOpenLoopTailButNotClosedLoop) {
  // The regression the open-loop harness exists for: a 2-second service
  // stall in a 10-second run. Every open-loop arrival during the stall
  // queues and reports seconds of latency; the closed-loop control issues
  // only `clients` requests into the stall and its p99 barely moves.
  ZipfSampler zipf(100, 0.99);
  LoadMix mix;
  util::Rng rng(11);
  const double kRate = 1000.0;
  auto schedule = make_open_loop_schedule(kRate, 10'000, mix, zipf, rng);
  auto service = [](const LoadRequest&) { return 500.0; };  // 4 servers => 50% load
  std::vector<StallWindow> stall{{2'000'000.0, 4'000'000.0}};

  auto open_clean = simulate_open_loop(schedule, 4, service);
  auto open_stalled = simulate_open_loop(schedule, 4, service, stall);
  // 2 clients so the closed-loop run is long enough to cross the stall.
  auto closed_stalled = simulate_closed_loop(schedule, 2, service, stall);

  auto p99 = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return percentile(v, 99);
  };
  double clean_p99 = p99(open_clean.latency_us);
  double open_p99 = p99(open_stalled.latency_us);
  double closed_p99 = p99(closed_stalled.latency_us);

  // ~2000 of 10000 arrivals land inside the stall: the open-loop p99 must
  // report near the full stall duration.
  EXPECT_LT(clean_p99, 5'000.0);
  EXPECT_GT(open_p99, 1'000'000.0);
  // The closed-loop arm understates by orders of magnitude: only its 2
  // in-flight requests ever see the stall.
  EXPECT_LT(closed_p99, 10'000.0);
  EXPECT_GT(open_p99 / closed_p99, 50.0);
}

TEST(QueueSimTest, StallDelaysOnlyRequestsStartingInsideIt) {
  std::vector<LoadRequest> schedule(3);
  schedule[0].arrival_us = 0;
  schedule[1].arrival_us = 1000;
  schedule[2].arrival_us = 10'000;
  std::vector<StallWindow> stall{{500.0, 5000.0}};
  auto result = simulate_open_loop(schedule, 1, [](const LoadRequest&) { return 100.0; }, stall);
  EXPECT_DOUBLE_EQ(result.latency_us[0], 100.0);            // starts before the stall
  EXPECT_DOUBLE_EQ(result.latency_us[1], 5000.0 - 1000.0 + 100.0);  // pushed to stall end
  EXPECT_DOUBLE_EQ(result.latency_us[2], 100.0);            // starts after the stall
}

TEST(QueueSimTest, EmptyScheduleAndBadArgs) {
  auto result = simulate_open_loop({}, 2, [](const LoadRequest&) { return 1.0; });
  EXPECT_EQ(result.requests, 0u);
  EXPECT_TRUE(result.latency_us.empty());
  EXPECT_THROW(
      simulate_open_loop({}, 0, [](const LoadRequest&) { return 1.0; }), std::invalid_argument);
  EXPECT_THROW(
      simulate_closed_loop({}, 0, [](const LoadRequest&) { return 1.0; }), std::invalid_argument);
  ZipfSampler zipf(10, 0.99);
  LoadMix mix;
  util::Rng rng(1);
  EXPECT_THROW(make_open_loop_schedule(0.0, 10, mix, zipf, rng), std::invalid_argument);
}

TEST(EndpointNamesTest, ToString) {
  EXPECT_STREQ(to_string(LoadEndpoint::kGetUtxos), "get_utxos");
  EXPECT_STREQ(to_string(LoadEndpoint::kGetBalance), "get_balance");
  EXPECT_STREQ(to_string(LoadEndpoint::kSendTransaction), "send_transaction");
}

}  // namespace
}  // namespace icbtc::bench
