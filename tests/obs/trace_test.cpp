// Tracer unit tests (span stack, attributes, flight-recorder ring, slow-op
// watchdog, TraceTaskGroup) plus the tracing determinism guarantees: pool
// and serial runs export byte-identical traces, and two identically seeded
// full-stack runs export byte-identical trace and Chrome JSON.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include "adapter/adapter.h"
#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "canister/bitcoin_canister.h"
#include "canister/integration.h"
#include "obs/trace_export.h"
#include "parallel/thread_pool.h"

namespace icbtc::obs {
namespace {

/// A tracer on a manually advanced deterministic clock.
struct ManualClock {
  TraceTime now = 0;

  void install(Tracer& tracer) {
    tracer.set_clock([this] { return now; });
  }
};

TEST(TracerTest, RootSpansStartNewTraces) {
  Tracer tracer;
  SpanContext a = tracer.begin_span("a", "test");
  tracer.end_span(a);
  SpanContext b = tracer.begin_span("b", "test");
  tracer.end_span(b);
  EXPECT_TRUE(a.valid());
  EXPECT_NE(a.trace_id, b.trace_id);
  EXPECT_NE(a.span_id, b.span_id);
  ASSERT_EQ(tracer.finished_spans().size(), 2u);
  EXPECT_EQ(tracer.finished_spans()[0].parent_id, 0u);
}

TEST(TracerTest, ScopedSpanStackGivesImplicitParents) {
  Tracer tracer;
  SpanContext outer_ctx, inner_ctx;
  {
    ScopedSpan outer(&tracer, "outer", "test");
    outer_ctx = outer.context();
    EXPECT_EQ(tracer.current(), outer_ctx);
    {
      ScopedSpan inner(&tracer, "inner", "test");
      inner_ctx = inner.context();
      EXPECT_EQ(tracer.current(), inner_ctx);
    }
    EXPECT_EQ(tracer.current(), outer_ctx);
  }
  EXPECT_FALSE(tracer.current().valid());
  ASSERT_EQ(tracer.finished_spans().size(), 2u);
  // Inner finishes first; it belongs to the outer's trace.
  const SpanRecord& inner = tracer.finished_spans()[0];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.parent_id, outer_ctx.span_id);
  EXPECT_EQ(inner.trace_id, outer_ctx.trace_id);
}

TEST(TracerTest, ExplicitParentCarriesCausalityAcrossEvents) {
  Tracer tracer;
  SpanContext parent = tracer.begin_span("send", "test");
  tracer.end_span(parent);
  // Later (e.g. at message delivery), with an empty stack:
  SpanContext child = tracer.begin_span("deliver", "test", parent);
  tracer.end_span(child);
  EXPECT_EQ(tracer.finished_spans()[1].parent_id, parent.span_id);
  EXPECT_EQ(tracer.finished_spans()[1].trace_id, parent.trace_id);
}

TEST(TracerTest, AttributesRenderDeterministicallyAndLastWriteWins) {
  Tracer tracer;
  ScopedSpan span(&tracer, "s", "test");
  span.attr("height", 42);
  span.attr("bytes", static_cast<std::uint64_t>(7));
  span.attr("ratio", 0.5);
  span.attr("txid", "ab\"cd");
  span.attr("height", 43);  // overwrite, not duplicate
  span.end();
  const auto& attrs = tracer.finished_spans()[0].attrs;
  ASSERT_EQ(attrs.size(), 4u);
  EXPECT_EQ(attrs[0], (std::pair<std::string, std::string>{"height", "43"}));
  EXPECT_EQ(attrs[1], (std::pair<std::string, std::string>{"bytes", "7"}));
  EXPECT_EQ(attrs[2], (std::pair<std::string, std::string>{"ratio", "0.5"}));
  EXPECT_EQ(attrs[3], (std::pair<std::string, std::string>{"txid", "\"ab\\\"cd\""}));
}

TEST(TracerTest, EndAtClampsToStart) {
  Tracer tracer;
  ManualClock clock;
  clock.install(tracer);
  clock.now = 100;
  SpanContext ctx = tracer.begin_span("s", "test");
  tracer.end_span_at(ctx, 50);  // before start: clamped
  EXPECT_EQ(tracer.finished_spans()[0].end, 100);
  EXPECT_EQ(tracer.finished_spans()[0].duration(), 0);
}

TEST(TracerTest, NullTracerScopedSpanIsInert) {
  ScopedSpan span(nullptr, "s", "test");
  EXPECT_FALSE(span.active());
  span.attr("k", 1);
  span.event(Severity::kInfo, "e");
  span.end();  // no crash
}

TEST(TracerTest, MaxSpansCapCountsDrops) {
  TracerConfig config;
  config.max_spans = 2;
  Tracer tracer(config);
  for (int i = 0; i < 5; ++i) {
    tracer.end_span(tracer.begin_span("s", "test"));
  }
  EXPECT_EQ(tracer.finished_spans().size(), 2u);
  EXPECT_EQ(tracer.dropped_spans(), 3u);
}

TEST(FlightRecorderTest, RingKeepsNewestEventsInOrder) {
  TracerConfig config;
  config.event_capacity = 4;
  Tracer tracer(config);
  ManualClock clock;
  clock.install(tracer);
  for (int i = 0; i < 10; ++i) {
    clock.now = i;
    tracer.event(Severity::kInfo, "e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.total_events(), 10u);
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].name, "e" + std::to_string(6 + i));
    EXPECT_EQ(events[i].seq, 6 + i);
  }
}

TEST(FlightRecorderTest, EventsBindToTheCurrentSpan) {
  Tracer tracer;
  ScopedSpan span(&tracer, "s", "test");
  tracer.event(Severity::kWarn, "inside");
  span.end();
  tracer.event(Severity::kError, "outside");
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].span_id, span.context().span_id);
  EXPECT_EQ(events[0].trace_id, span.context().trace_id);
  EXPECT_EQ(events[1].span_id, 0u);
}

TEST(WatchdogTest, SlowSpanEmitsWarnEvent) {
  TracerConfig config;
  config.slow_span_budget = 10;
  Tracer tracer(config);
  ManualClock clock;
  clock.install(tracer);
  SpanContext fast = tracer.begin_span("fast", "test");
  clock.now = 10;
  tracer.end_span(fast);  // duration == budget: not slow
  SpanContext slow = tracer.begin_span("slow_op", "test");
  clock.now = 30;
  tracer.end_span(slow);  // 20us > 10us budget
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "slow_span");
  EXPECT_EQ(events[0].severity, Severity::kWarn);
  EXPECT_EQ(events[0].span_id, slow.span_id);
  EXPECT_NE(events[0].detail.find("slow_op took 20us"), std::string::npos);
}

TEST(WatchdogTest, CategoryBudgetOverridesDefault) {
  TracerConfig config;
  config.slow_span_budget = 1000;
  Tracer tracer(config);
  tracer.set_slow_budget("canister", 5);
  ManualClock clock;
  clock.install(tracer);
  SpanContext a = tracer.begin_span("a", "btcnet");
  clock.now = 100;
  tracer.end_span(a);  // 100us < default 1000us: fine
  SpanContext b = tracer.begin_span("b", "canister");
  clock.now = 200;
  tracer.end_span(b);  // 100us > category 5us: slow
  auto events = tracer.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].span_id, b.span_id);
}

TEST(RequestCostTest, RecordsAccumulateAndExport) {
  Tracer tracer;
  tracer.record_request_cost({"get_utxos", 7, 1234, 56789, 492, 1000000});
  ASSERT_EQ(tracer.request_costs().size(), 1u);
  std::string json = to_trace_json(tracer);
  EXPECT_NE(json.find("\"endpoint\":\"get_utxos\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\":1234"), std::string::npos);
  EXPECT_NE(json.find("\"instructions\":56789"), std::string::npos);
  EXPECT_NE(json.find("\"response_bytes\":492"), std::string::npos);
}

TEST(ExportTest, SpanTreeNestsChildrenUnderParents) {
  Tracer tracer;
  ManualClock clock;
  clock.install(tracer);
  {
    ScopedSpan outer(&tracer, "outer", "test");
    clock.now = 5;
    ScopedSpan inner(&tracer, "inner", "test");
    clock.now = 9;
    inner.end();
    clock.now = 12;
  }
  std::string json = to_trace_json(tracer);
  // inner appears inside outer's children array.
  auto outer_pos = json.find("\"name\":\"outer\"");
  auto inner_pos = json.find("\"name\":\"inner\"");
  ASSERT_NE(outer_pos, std::string::npos);
  ASSERT_NE(inner_pos, std::string::npos);
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(json.find("\"duration_us\":4"), std::string::npos);   // inner
  EXPECT_NE(json.find("\"duration_us\":12"), std::string::npos);  // outer
}

TEST(ExportTest, ChromeTraceHasMetadataCompleteAndInstantEvents) {
  Tracer tracer;
  ManualClock clock;
  clock.install(tracer);
  {
    ScopedSpan span(&tracer, "work", "canister");
    clock.now = 4;
    tracer.event(Severity::kInfo, "mark", "detail");
  }
  std::string json = to_chrome_trace(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread_name metadata
  EXPECT_NE(json.find("\"canister\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete event
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instant event
}

TEST(ExportTest, FlightRecorderTextListsEvents) {
  Tracer tracer;
  EXPECT_EQ(flight_recorder_text(tracer), "(flight recorder empty)\n");
  tracer.event(Severity::kWarn, "fork_detected", "f1 competes at height 2");
  std::string text = flight_recorder_text(tracer);
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("fork_detected"), std::string::npos);
  EXPECT_NE(text.find("f1 competes at height 2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceTaskGroup: spans recorded by pool workers must export byte-identically
// to a serial run — ids, order, and attributes are fixed at submit time.

std::string run_task_group(bool use_pool) {
  Tracer tracer;
  ManualClock clock;
  clock.install(tracer);
  clock.now = 17;
  ScopedSpan root(&tracer, "ingest", "canister");
  TraceTaskGroup group(&tracer, "hash", "parallel", 16);
  parallel::ThreadPool pool(3);
  parallel::parallel_for(use_pool ? &pool : nullptr, 16, [&](std::size_t i) {
    group.record(i, {{"idx", static_cast<std::uint64_t>(i)}, {"work", i * i}});
  });
  group.join();
  root.end();
  return to_trace_json(tracer) + "\n---\n" + to_chrome_trace(tracer);
}

TEST(TraceTaskGroupTest, PoolAndSerialRunsExportIdenticalTraces) {
  std::string serial = run_task_group(false);
  std::string pooled = run_task_group(true);
  EXPECT_EQ(serial, pooled);
  EXPECT_NE(serial.find("hash[0]"), std::string::npos);
  EXPECT_NE(serial.find("hash[15]"), std::string::npos);
}

TEST(TraceTaskGroupTest, TaskSpansInheritTheSubmittersParent) {
  Tracer tracer;
  ScopedSpan root(&tracer, "root", "test");
  {
    TraceTaskGroup group(&tracer, "task", "parallel", 2);
    group.record(0);
    group.record(1);
  }
  root.end();
  ASSERT_EQ(tracer.finished_spans().size(), 3u);
  EXPECT_EQ(tracer.finished_spans()[0].name, "task[0]");
  EXPECT_EQ(tracer.finished_spans()[0].parent_id, root.context().span_id);
  EXPECT_EQ(tracer.finished_spans()[0].trace_id, root.context().trace_id);
}

TEST(TraceTaskGroupTest, UnrecordedSlotsAreOmitted) {
  Tracer tracer;
  {
    TraceTaskGroup group(&tracer, "task", "parallel", 3);
    group.record(1);
  }
  ASSERT_EQ(tracer.finished_spans().size(), 1u);
  EXPECT_EQ(tracer.finished_spans()[0].name, "task[1]");
}

// ---------------------------------------------------------------------------
// Full-stack determinism: network + adapter + canister wired to one tracer on
// simulation time. Identical seeds must export identical bytes — with and
// without the shared thread pool.

std::string run_seeded_trace(std::uint64_t seed, bool with_pool) {
  if (with_pool) parallel::set_shared_pool(4);

  std::string out;
  {
    util::Simulation sim;
    const auto& params = bitcoin::ChainParams::regtest();
    btcnet::BitcoinNetworkConfig config;
    config.num_nodes = 6;
    config.num_miners = 1;
    config.ipv6_fraction = 1.0;
    btcnet::BitcoinNetworkHarness harness(sim, params, config, seed);

    Tracer tracer;
    tracer.set_clock([&sim] { return sim.now(); });
    harness.network().set_tracer(&tracer);
    for (std::size_t i = 0; i < config.num_nodes; ++i) {
      harness.node(i).set_tracer(&tracer);
    }

    sim.run();
    auto* miner = harness.miners()[0];
    for (int i = 0; i < 8; ++i) {
      sim.run_until(sim.now() + 700 * util::kSecond);
      miner->mine_one();
    }
    sim.run();

    adapter::AdapterConfig aconfig;
    aconfig.addr_lower_threshold = 3;
    aconfig.addr_upper_threshold = 5;
    adapter::BitcoinAdapter adapter(harness.network(), params, aconfig, util::Rng(seed + 1));
    adapter.set_tracer(&tracer);
    adapter.start();
    sim.run_until(sim.now() + 60 * util::kSecond);

    canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
    canister.set_tracer(&tracer);
    for (int i = 0; i < 20; ++i) {
      auto request = canister.make_request();
      auto response = adapter.handle_request(request);
      canister.process_response(response,
                                static_cast<std::int64_t>(params.genesis_header.time) +
                                    sim.now() / util::kSecond + 1000000);
      sim.run_until(sim.now() + util::kSecond);
    }
    harness.network().set_tracer(nullptr);
    out = to_trace_json(tracer) + "\n---\n" + to_chrome_trace(tracer);
  }

  if (with_pool) parallel::set_shared_pool(0);
  return out;
}

TEST(TraceDeterminismTest, IdenticalSeededRunsExportIdenticalTraces) {
  std::string a = run_seeded_trace(42, false);
  std::string b = run_seeded_trace(42, false);
  EXPECT_EQ(a, b);
  // Sanity: spans from every layer made it in.
  EXPECT_NE(a.find("net."), std::string::npos);
  EXPECT_NE(a.find("adapter.handle_request"), std::string::npos);
  EXPECT_NE(a.find("canister.process_response"), std::string::npos);
  EXPECT_NE(a.find("canister.ingest_block"), std::string::npos);
  EXPECT_NE(a.find("anchor_advanced"), std::string::npos);
}

TEST(TraceDeterminismTest, SharedPoolDoesNotChangeTheExportedBytes) {
  std::string serial = run_seeded_trace(42, false);
  std::string pooled = run_seeded_trace(42, true);
  // The pooled run routes txid precompute through TraceTaskGroup; the
  // exported spans must not betray which threads did the hashing.
  EXPECT_EQ(serial, pooled);
}

// ---------------------------------------------------------------------------
// Acceptance: one replicated get_utxos through the full integration yields
// one trace record whose span tree binds latency + instructions + bytes.

TEST(RequestTraceTest, ReplicatedGetUtxosProducesOneCostRecordWithSpanTree) {
  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  btcnet::BitcoinNetworkConfig btc_config;
  btc_config.num_nodes = 6;
  btc_config.num_miners = 1;
  btc_config.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness harness(sim, params, btc_config, 2024);
  sim.run();

  ic::Subnet subnet(sim, ic::SubnetConfig{}, 31337);
  canister::IntegrationConfig config;
  config.adapter.addr_lower_threshold = 3;
  config.adapter.addr_upper_threshold = 5;
  config.canister = canister::CanisterConfig::for_params(params);
  canister::BitcoinIntegration integration(subnet, harness.network(), params, config, 555);

  Tracer tracer;
  tracer.set_clock([&sim] { return sim.now(); });
  integration.set_tracer(&tracer);

  subnet.start();
  integration.start();
  auto* miner = harness.miners()[0];
  for (int i = 0; i < 10; ++i) {
    sim.run_until(sim.now() + 600 * util::kSecond);
    miner->mine_one();
  }
  sim.run_until(sim.now() + 120 * util::kSecond);
  ASSERT_TRUE(integration.canister().is_synced());

  std::size_t costs_before = tracer.request_costs().size();
  canister::GetUtxosRequest request;
  request.address = bitcoin::p2pkh_address(util::Hash160{}, bitcoin::Network::kRegtest);
  auto result = integration.replicated_get_utxos(request);
  ASSERT_TRUE(result.outcome.ok());

  // Exactly one new cost record, carrying exactly what the caller observed.
  ASSERT_EQ(tracer.request_costs().size(), costs_before + 1);
  const RequestCostRecord& record = tracer.request_costs().back();
  EXPECT_EQ(record.endpoint, "get_utxos");
  EXPECT_EQ(record.latency_us, result.latency);
  EXPECT_EQ(record.instructions, result.instructions);
  EXPECT_EQ(record.response_bytes, result.response_bytes);
  EXPECT_EQ(record.cycles, result.cycles);
  EXPECT_GT(record.latency_us, 0);
  EXPECT_GT(record.instructions, 0u);
  EXPECT_GT(record.response_bytes, 0u);

  // The record's trace has a span tree: request.get_utxos with the
  // canister.get_utxos execution span nested under it.
  const SpanRecord* root = nullptr;
  const SpanRecord* child = nullptr;
  for (const auto& span : tracer.finished_spans()) {
    if (span.trace_id != record.trace_id) continue;
    if (span.name == "request.get_utxos") root = &span;
    if (span.name == "canister.get_utxos") child = &span;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_EQ(child->parent_id, root->span_id);
  EXPECT_EQ(root->duration(), result.latency);
  // And the root span's attrs bind the same numbers.
  bool saw_latency = false, saw_instructions = false, saw_bytes = false;
  for (const auto& [key, value] : root->attrs) {
    if (key == "latency_us") {
      saw_latency = true;
      EXPECT_EQ(value, std::to_string(result.latency));
    }
    if (key == "instructions") {
      saw_instructions = true;
      EXPECT_EQ(value, std::to_string(result.instructions));
    }
    if (key == "response_bytes") {
      saw_bytes = true;
      EXPECT_EQ(value, std::to_string(result.response_bytes));
    }
  }
  EXPECT_TRUE(saw_latency);
  EXPECT_TRUE(saw_instructions);
  EXPECT_TRUE(saw_bytes);
}

}  // namespace
}  // namespace icbtc::obs
