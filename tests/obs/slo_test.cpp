// LatencyHistogram / SloTracker unit tests: fixed-boundary bucket math,
// quantile determinism, exact merges, window rolls, published metric names,
// and a ThreadPool hammer for the sanitizer builds.
#include "obs/slo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <limits>
#include <vector>

#include "parallel/thread_pool.h"
#include "util/rng.h"

namespace icbtc::obs {
namespace {

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    std::size_t idx = LatencyHistogram::bucket_index(v);
    EXPECT_EQ(idx, static_cast<std::size_t>(v));
    EXPECT_EQ(LatencyHistogram::bucket_lower(idx), v);
    EXPECT_EQ(LatencyHistogram::bucket_upper(idx), v);
  }
}

TEST(LatencyHistogramTest, EveryValueLandsInsideItsBucket) {
  util::Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Exercise every octave: random mantissa at a random bit width.
    std::uint64_t width = rng.next_below(64);
    std::uint64_t v = rng.next() >> width;
    std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kBucketCount);
    EXPECT_GE(v, LatencyHistogram::bucket_lower(idx));
    EXPECT_LE(v, LatencyHistogram::bucket_upper(idx));
  }
}

TEST(LatencyHistogramTest, BucketBoundariesAreContiguousAndSorted) {
  // upper(i) + 1 == lower(i+1) across the whole table: no gaps, no overlap.
  for (std::size_t i = 0; i + 1 < LatencyHistogram::kBucketCount; ++i) {
    ASSERT_EQ(LatencyHistogram::bucket_upper(i) + 1, LatencyHistogram::bucket_lower(i + 1))
        << "discontinuity at bucket " << i;
  }
  EXPECT_EQ(LatencyHistogram::bucket_upper(LatencyHistogram::kBucketCount - 1),
            std::numeric_limits<std::uint64_t>::max());
}

TEST(LatencyHistogramTest, RelativeBucketWidthIsBounded) {
  // The HDR guarantee: bucket width / lower bound <= 2^(1-kSubBits).
  const double kMaxRelative = 1.0 / static_cast<double>(LatencyHistogram::kSubBuckets / 2);
  for (std::size_t i = LatencyHistogram::kSubBuckets; i < LatencyHistogram::kBucketCount; ++i) {
    double lower = static_cast<double>(LatencyHistogram::bucket_lower(i));
    double width = static_cast<double>(LatencyHistogram::bucket_upper(i) -
                                       LatencyHistogram::bucket_lower(i) + 1);
    EXPECT_LE(width / lower, kMaxRelative + 1e-12) << "bucket " << i;
  }
}

TEST(LatencyHistogramTest, SummaryStatistics) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  for (std::uint64_t v : {5u, 10u, 10u, 1000u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1025u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1025.0 / 4.0);
}

TEST(LatencyHistogramTest, ExactQuantilesBelowSubBucketRange) {
  // Values < 64 are bucketed exactly, so quantiles are exact nearest-rank.
  LatencyHistogram h;
  for (std::uint64_t v = 1; v <= 50; ++v) h.record(v);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(0.5), 25u);
  EXPECT_EQ(h.quantile(1.0), 50u);
}

TEST(LatencyHistogramTest, QuantileErrorWithinBucketBound) {
  LatencyHistogram h;
  util::Rng rng(7);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 5000; ++i) {
    std::uint64_t v = 100 + rng.next_below(1'000'000);
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(values.size()));
    if (rank >= values.size()) rank = values.size() - 1;
    double exact = static_cast<double>(values[rank]);
    double est = static_cast<double>(h.quantile(q));
    EXPECT_NEAR(est, exact, exact * 0.04) << "q=" << q;  // ~3.2% bucket width
  }
}

TEST(LatencyHistogramTest, MergeMatchesSingleHistogramOracle) {
  // Two shards fed disjoint halves of one stream must merge into exactly
  // the histogram the combined stream produces — the fixed-boundary
  // contract bench_load's replica fan-in depends on.
  LatencyHistogram a, b, oracle;
  util::Rng rng(99);
  for (int i = 0; i < 4000; ++i) {
    std::uint64_t v = rng.next() >> rng.next_below(60);
    oracle.record(v);
    (i % 2 == 0 ? a : b).record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), oracle.count());
  EXPECT_EQ(a.sum(), oracle.sum());
  EXPECT_EQ(a.min(), oracle.min());
  EXPECT_EQ(a.max(), oracle.max());
  auto ab = a.nonzero_buckets();
  auto ob = oracle.nonzero_buckets();
  ASSERT_EQ(ab.size(), ob.size());
  for (std::size_t i = 0; i < ab.size(); ++i) {
    EXPECT_EQ(ab[i].lower, ob[i].lower);
    EXPECT_EQ(ab[i].count, ob[i].count);
  }
  for (double q : {0.5, 0.9, 0.99, 0.999}) EXPECT_EQ(a.quantile(q), oracle.quantile(q));
}

TEST(LatencyHistogramTest, SelfMergeDoubles) {
  LatencyHistogram h;
  for (std::uint64_t v : {10u, 20u, 30u}) h.record(v);
  h.merge(h);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), 120u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
}

TEST(LatencyHistogramTest, MergeEmptyIsNoOp) {
  LatencyHistogram h, empty;
  h.record(77);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 77u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.min(), 77u);
}

TEST(LatencyHistogramTest, CountAboveThreshold) {
  LatencyHistogram h;
  for (std::uint64_t v : {10u, 20u, 40u, 50000u, 60000u}) h.record(v);
  EXPECT_EQ(h.count_above(40), 2u);   // exact below kSubBuckets
  EXPECT_EQ(h.count_above(100000), 0u);
  EXPECT_EQ(h.count_above(0), 5u);
}

TEST(LatencyHistogramTest, ResetClears) {
  LatencyHistogram h;
  h.record(123);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_TRUE(h.nonzero_buckets().empty());
}

TEST(SloTrackerTest, VerdictAgainstTargets) {
  SloTracker tracker;
  SloTarget target;
  target.p50_us = 100;
  target.p99_us = 1000;
  target.error_budget = 0.1;
  auto& ep = tracker.endpoint("api.read", target);
  for (int i = 0; i < 99; ++i) ep.record(50);
  ep.record(500);  // within p99 target
  SloVerdict v = ep.verdict();
  EXPECT_EQ(v.requests, 100u);
  EXPECT_EQ(v.errors, 0u);
  EXPECT_EQ(v.slow, 0u);
  EXPECT_TRUE(v.p50_ok);
  EXPECT_TRUE(v.p99_ok);
  EXPECT_TRUE(v.ok());

  // Blow the p50 target and the error budget.
  auto& bad = tracker.endpoint("api.write", target);
  for (int i = 0; i < 80; ++i) bad.record(500);
  for (int i = 0; i < 20; ++i) bad.record(5000, /*error=*/true);
  SloVerdict w = bad.verdict();
  EXPECT_EQ(w.errors, 20u);
  EXPECT_EQ(w.slow, 20u);  // the 5000us records exceed the 1000us p99 target
  EXPECT_FALSE(w.p50_ok);
  EXPECT_GT(w.budget_burn, 1.0);
  EXPECT_FALSE(w.ok());
}

TEST(SloTrackerTest, EndpointHandleIsStableAndTargetSticks) {
  SloTracker tracker;
  SloTarget target;
  target.p99_us = 42;
  auto& first = tracker.endpoint("x", target);
  SloTarget other;
  other.p99_us = 9999;
  auto& second = tracker.endpoint("x", other);
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(second.target().p99_us, 42u);  // original registration wins
}

TEST(SloTrackerTest, WindowRollSnapshotsAndResets) {
  SloTracker tracker;
  auto& ep = tracker.endpoint("svc");
  ep.record(100);
  ep.record(200);
  EXPECT_EQ(tracker.windows_completed(), 0u);
  tracker.roll_window();
  EXPECT_EQ(tracker.windows_completed(), 1u);
  auto window = tracker.window_verdicts();
  ASSERT_EQ(window.size(), 1u);
  EXPECT_EQ(window[0].requests, 2u);

  // The next window starts empty, but the cumulative verdict keeps history.
  ep.record(300);
  tracker.roll_window();
  window = tracker.window_verdicts();
  EXPECT_EQ(window[0].requests, 1u);
  auto total = tracker.verdicts();
  ASSERT_EQ(total.size(), 1u);
  EXPECT_EQ(total[0].requests, 3u);
}

TEST(SloTrackerTest, VerdictsAreNameOrdered) {
  SloTracker tracker;
  tracker.record("zeta", 1);
  tracker.record("alpha", 1);
  tracker.record("mid", 1);
  auto verdicts = tracker.verdicts();
  ASSERT_EQ(verdicts.size(), 3u);
  EXPECT_EQ(verdicts[0].endpoint, "alpha");
  EXPECT_EQ(verdicts[1].endpoint, "mid");
  EXPECT_EQ(verdicts[2].endpoint, "zeta");
}

TEST(SloTrackerTest, PublishedMetricNamesArePinned) {
  // The exported gauge names are API: dashboards and the CI artifact diff
  // key on them. This test pins the full set for one endpoint.
  SloTracker tracker;
  auto& ep = tracker.endpoint("canister.get_utxos");
  ep.record(100);
  tracker.roll_window();
  MetricsRegistry registry;
  tracker.publish(registry);
  const char* expected[] = {
      "slo.canister.get_utxos.requests",      "slo.canister.get_utxos.errors",
      "slo.canister.get_utxos.slow",          "slo.canister.get_utxos.p50_us",
      "slo.canister.get_utxos.p99_us",        "slo.canister.get_utxos.p999_us",
      "slo.canister.get_utxos.max_us",        "slo.canister.get_utxos.ok",
      "slo.canister.get_utxos.budget_burn_pct",
  };
  for (const char* name : expected) {
    EXPECT_EQ(registry.gauges().count(name), 1u) << "missing gauge " << name;
  }
  EXPECT_EQ(registry.gauges().count("slo.windows"), 1u);
  EXPECT_EQ(registry.gauges().size(), std::size(expected) + 1);
  EXPECT_EQ(registry.gauges().at("slo.canister.get_utxos.requests").value(), 1);
  EXPECT_EQ(registry.gauges().at("slo.canister.get_utxos.ok").value(), 1);
  EXPECT_EQ(registry.gauges().at("slo.windows").value(), 1);
}

TEST(SloTrackerHammerTest, ParallelRecordingLosesNothing) {
  // TSan target: many pool workers hammer one tracker — handles resolved
  // up front (the hot-path contract) and via the name-resolving record().
  SloTracker tracker;
  auto& fast = tracker.endpoint("hammer.fast");
  constexpr std::size_t kTasks = 64;
  constexpr int kPerTask = 500;
  parallel::ThreadPool pool(4);
  pool.run(kTasks, [&](std::size_t i) {
    for (int j = 0; j < kPerTask; ++j) {
      fast.record(static_cast<std::uint64_t>(i * 131 + static_cast<std::size_t>(j) % 97),
                  /*error=*/j % 100 == 0);
      tracker.record("hammer.slow", 1000 + static_cast<std::uint64_t>(j));
    }
  });
  EXPECT_EQ(fast.requests(), kTasks * kPerTask);
  EXPECT_EQ(fast.errors(), kTasks * (kPerTask / 100));
  EXPECT_EQ(tracker.endpoint("hammer.slow").requests(), kTasks * kPerTask);
  EXPECT_EQ(fast.histogram().count(), kTasks * kPerTask);

  // Concurrent merges into a fan-in histogram while recording continues.
  LatencyHistogram fanin;
  pool.run(kTasks, [&](std::size_t i) {
    if (i % 2 == 0) {
      fanin.merge(tracker.endpoint("hammer.slow").histogram());
    } else {
      tracker.record("hammer.slow", 5);
    }
  });
  EXPECT_GE(fanin.count(), 1u);
}

}  // namespace
}  // namespace icbtc::obs
