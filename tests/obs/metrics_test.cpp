// MetricsRegistry unit tests plus the observability determinism guarantee:
// two identical seeded simulation runs must export byte-identical JSON.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "adapter/adapter.h"
#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "canister/bitcoin_canister.h"
#include "parallel/thread_pool.h"

namespace icbtc::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAddAndNegativeValues) {
  Gauge g;
  EXPECT_EQ(g.value(), 0);
  g.set(10);
  g.add(-25);
  EXPECT_EQ(g.value(), -15);
}

TEST(HistogramTest, SummaryStatistics) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {1.0, 2.0, 5.0, 10.0}) h.observe(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 18.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
}

TEST(HistogramTest, BucketUpperBoundsAreInclusive) {
  Histogram h({1.0, 10.0});
  h.observe(1.0);   // == first bound: belongs to the le=1 bucket
  h.observe(5.0);   // le=10 bucket
  h.observe(10.0);  // == second bound: still le=10
  h.observe(11.0);  // +inf overflow
  ASSERT_EQ(h.bucket_counts().size(), 3u);
  EXPECT_EQ(h.bucket_counts()[0], 1u);
  EXPECT_EQ(h.bucket_counts()[1], 2u);
  EXPECT_EQ(h.bucket_counts()[2], 1u);
}

TEST(HistogramTest, RejectsNonAscendingBounds) {
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({5.0, 2.0}), std::invalid_argument);
}

TEST(HistogramTest, QuantilesClampToObservedRange) {
  Histogram h(Histogram::decade_bounds(1.0, 1000.0));
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  for (int i = 0; i < 100; ++i) h.observe(7.0);
  // All mass at one point: every quantile collapses to it.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 10.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 0.0);
}

TEST(HistogramTest, SingleObservationIsEveryQuantile) {
  Histogram h(Histogram::decade_bounds(1.0, 1000.0));
  h.observe(37.5);
  for (double q : {0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 37.5) << "q=" << q;
  }
}

TEST(HistogramTest, ExtremeQuantilesReturnObservedMinAndMax) {
  Histogram h({1.0, 10.0, 100.0});
  for (double v : {3.0, 7.0, 42.0}) h.observe(v);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 42.0);
  // Out-of-range q clamps rather than extrapolating.
  EXPECT_DOUBLE_EQ(h.quantile(-0.5), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.5), 42.0);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  Histogram h(Histogram::exponential_bounds(1.0, 2.0, 10));
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  double p50 = h.quantile(0.5);
  double p90 = h.quantile(0.9);
  double p99 = h.quantile(0.99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max());
}

TEST(HistogramTest, MergeMatchesSingleHistogramOracle) {
  // Two histograms fed disjoint halves of one stream merge into exactly the
  // histogram a single instance observing the full stream would hold —
  // the fixed-boundary contract that makes sharded collection exact.
  auto bounds = Histogram::decade_bounds(1.0, 1e6);
  Histogram a(bounds), b(bounds), oracle(bounds);
  for (int i = 0; i < 2000; ++i) {
    double v = static_cast<double>((i * 7919) % 1000000) + 0.5;
    oracle.observe(v);
    (i % 2 == 0 ? a : b).observe(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), oracle.count());
  EXPECT_DOUBLE_EQ(a.sum(), oracle.sum());
  EXPECT_DOUBLE_EQ(a.min(), oracle.min());
  EXPECT_DOUBLE_EQ(a.max(), oracle.max());
  EXPECT_EQ(a.bucket_counts(), oracle.bucket_counts());
  for (double q : {0.5, 0.9, 0.99}) EXPECT_DOUBLE_EQ(a.quantile(q), oracle.quantile(q));
}

TEST(HistogramTest, MergeRejectsMismatchedBounds) {
  Histogram a({1.0, 2.0});
  Histogram b({1.0, 3.0});
  b.observe(1.5);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  // A failed merge leaves the target untouched.
  EXPECT_EQ(a.count(), 0u);
}

TEST(HistogramTest, SelfMergeDoublesAndEmptyMergeIsNoOp) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.merge(h);  // snapshot-then-apply: self-merge must not deadlock
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 110.0);
  EXPECT_DOUBLE_EQ(h.min(), 5.0);
  EXPECT_DOUBLE_EQ(h.max(), 50.0);

  Histogram empty({1.0, 10.0, 100.0});
  h.merge(empty);
  EXPECT_EQ(h.count(), 4u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 4u);
  EXPECT_DOUBLE_EQ(empty.min(), 5.0);
}

TEST(HistogramTest, BoundGenerators) {
  EXPECT_EQ(Histogram::decade_bounds(1.0, 100.0),
            (std::vector<double>{1, 2, 5, 10, 20, 50, 100}));
  EXPECT_EQ(Histogram::exponential_bounds(1.0, 2.0, 4), (std::vector<double>{1, 2, 4, 8}));
  EXPECT_THROW(Histogram::decade_bounds(0.0, 10.0), std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 3), std::invalid_argument);
}

TEST(RegistryTest, ReferencesAreStableAcrossInsertions) {
  MetricsRegistry r;
  Counter& c = r.counter("first");
  for (int i = 0; i < 100; ++i) r.counter("extra." + std::to_string(i));
  c.inc(7);
  EXPECT_EQ(r.counter("first").value(), 7u);
}

TEST(RegistryTest, HistogramBoundsFixedOnFirstUse) {
  MetricsRegistry r;
  Histogram& h = r.histogram("h", {1.0, 2.0});
  // Later bounds are ignored: same histogram comes back.
  EXPECT_EQ(&r.histogram("h", {42.0}), &h);
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0}));
  // Default bounds cover the instruction scale.
  Histogram& d = r.histogram("default");
  EXPECT_DOUBLE_EQ(d.bounds().front(), 1e3);
  EXPECT_DOUBLE_EQ(d.bounds().back(), 1e12);
}

TEST(JsonTest, EmptyRegistry) {
  MetricsRegistry r;
  std::string json = to_json(r);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

TEST(JsonTest, ValuesAndSparseBuckets) {
  MetricsRegistry r;
  r.counter("events").inc(3);
  r.gauge("level").set(-2);
  Histogram& h = r.histogram("dist", {1.0, 10.0});
  h.observe(0.5);
  h.observe(100.0);
  std::string json = to_json(r);
  EXPECT_NE(json.find("\"events\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"level\": -2"), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": \"+inf\", \"count\": 1}"), std::string::npos);
  // The empty le=10 bucket is omitted (sparse encoding).
  EXPECT_EQ(json.find("\"le\": 10"), std::string::npos);
}

TEST(JsonTest, EscapesMetricNames) {
  MetricsRegistry r;
  r.counter("we\"ird\\name").inc();
  std::string json = to_json(r);
  EXPECT_NE(json.find("we\\\"ird\\\\name"), std::string::npos);
}

TEST(TableTest, RendersCountersGaugesAndHistograms) {
  MetricsRegistry r;
  r.counter("net.messages").inc(12);
  r.gauge("adapter.peers").set(5);
  r.histogram("lat", {1.0, 10.0}).observe(3.0);
  std::string table = to_table(r);
  EXPECT_NE(table.find("net.messages"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);
  EXPECT_NE(table.find("adapter.peers"), std::string::npos);
  EXPECT_NE(table.find("lat"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Thread safety: metrics are written from pool workers during parallel
// ingestion, so concurrent updates must neither tear nor lose increments.
// Run under `-L sanitize` these double as TSan regression tests.

TEST(ThreadSafetyTest, CountersAndGaugesSurviveConcurrentHammering) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammered");
  Gauge& gauge = registry.gauge("level");
  constexpr std::size_t kTasks = 64;
  constexpr std::uint64_t kIncrementsPerTask = 10000;
  parallel::ThreadPool pool(4);
  parallel::parallel_for(&pool, kTasks, [&](std::size_t) {
    for (std::uint64_t i = 0; i < kIncrementsPerTask; ++i) {
      counter.inc();
      gauge.add(2);
      gauge.add(-1);
    }
  });
  EXPECT_EQ(counter.value(), kTasks * kIncrementsPerTask);
  EXPECT_EQ(gauge.value(), static_cast<std::int64_t>(kTasks * kIncrementsPerTask));
}

TEST(ThreadSafetyTest, HistogramObservationsAreNotLost) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("latency", {1.0, 10.0, 100.0});
  constexpr std::size_t kTasks = 32;
  constexpr int kObservationsPerTask = 2000;
  parallel::ThreadPool pool(4);
  parallel::parallel_for(&pool, kTasks, [&](std::size_t task) {
    for (int i = 0; i < kObservationsPerTask; ++i) {
      h.observe(static_cast<double>(task % 3 == 0 ? 5 : 50));
    }
  });
  EXPECT_EQ(h.count(), kTasks * kObservationsPerTask);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : h.bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, h.count());
}

TEST(ThreadSafetyTest, RegistryCreationRacesResolveToOneMetric) {
  MetricsRegistry registry;
  constexpr std::size_t kTasks = 48;
  parallel::ThreadPool pool(4);
  parallel::parallel_for(&pool, kTasks, [&](std::size_t task) {
    // Everyone races to create the same counter, plus one private each.
    registry.counter("shared").inc();
    registry.counter("private." + std::to_string(task)).inc();
    registry.histogram("shared.h").observe(1.0);
  });
  EXPECT_EQ(registry.counter("shared").value(), kTasks);
  EXPECT_EQ(registry.histogram("shared.h").count(), kTasks);
}

// ---------------------------------------------------------------------------
// Determinism: a full simulated stack (network + adapter + canister), all
// wired to one registry, must export byte-identical JSON for identical seeds.

std::string run_seeded_snapshot(std::uint64_t seed) {
  util::Simulation sim;
  const auto& params = bitcoin::ChainParams::regtest();
  btcnet::BitcoinNetworkConfig config;
  config.num_nodes = 6;
  config.num_miners = 1;
  config.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness harness(sim, params, config, seed);
  MetricsRegistry registry;
  harness.network().set_metrics(&registry);
  sim.run();
  auto* miner = harness.miners()[0];
  for (int i = 0; i < 8; ++i) {
    sim.run_until(sim.now() + 700 * util::kSecond);
    miner->mine_one();
  }
  sim.run();

  adapter::AdapterConfig aconfig;
  aconfig.addr_lower_threshold = 3;
  aconfig.addr_upper_threshold = 5;
  adapter::BitcoinAdapter adapter(harness.network(), params, aconfig, util::Rng(seed + 1));
  adapter.set_metrics(&registry);
  adapter.start();
  sim.run_until(sim.now() + 60 * util::kSecond);

  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  canister.set_metrics(&registry);
  for (int i = 0; i < 20; ++i) {
    auto request = canister.make_request();
    auto response = adapter.handle_request(request);
    canister.process_response(response,
                              static_cast<std::int64_t>(params.genesis_header.time) +
                                  sim.now() / util::kSecond + 1000000);
    sim.run_until(sim.now() + util::kSecond);
  }
  // Exercise the query endpoints so their histograms carry data too.
  canister.get_current_fee_percentiles();
  canister.get_balance(bitcoin::p2pkh_address(util::Hash160{}, bitcoin::Network::kRegtest), 0);
  harness.network().set_metrics(nullptr);
  return to_json(registry);
}

TEST(DeterminismTest, IdenticalSeededRunsExportIdenticalJson) {
  std::string a = run_seeded_snapshot(42);
  std::string b = run_seeded_snapshot(42);
  EXPECT_EQ(a, b);
  // Sanity: the run actually produced metrics in every section.
  EXPECT_NE(a.find("net.messages"), std::string::npos);
  EXPECT_NE(a.find("adapter.peers"), std::string::npos);
  EXPECT_NE(a.find("canister.process_response.calls"), std::string::npos);
}

}  // namespace
}  // namespace icbtc::obs
