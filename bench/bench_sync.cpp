// Algorithm 1 + Algorithm 2 sync throughput, and the design ablations called
// out in DESIGN.md: multi-block vs single-block responses (sync speed vs the
// §IV-A downtime defence) and the MAX_HEADERS cap.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "adapter/adapter.h"
#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "canister/bitcoin_canister.h"
#include "obs/metrics.h"

namespace {

using namespace icbtc;

struct SyncSetup {
  util::Simulation sim;
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  std::unique_ptr<btcnet::BitcoinNetworkHarness> harness;

  explicit SyncSetup(int chain_length, std::uint64_t seed) {
    btcnet::BitcoinNetworkConfig config;
    config.num_nodes = 8;
    config.num_miners = 1;
    config.ipv6_fraction = 1.0;
    harness = std::make_unique<btcnet::BitcoinNetworkHarness>(sim, params, config, seed);
    sim.run();
    auto* miner = harness->miners()[0];
    for (int i = 0; i < chain_length; ++i) {
      sim.run_until(sim.now() + 700 * util::kSecond);
      miner->mine_one();
    }
    sim.run();
  }
};

/// Fully syncs a fresh canister through a fresh adapter; returns the number
/// of request/response iterations used.
struct SyncStats {
  int iterations = 0;
  util::SimTime wall = 0;
  std::size_t blocks = 0;
};

SyncStats sync_canister(SyncSetup& setup, adapter::AdapterConfig adapter_config,
                        int target_height, std::uint64_t seed,
                        obs::MetricsRegistry* metrics = nullptr) {
  adapter::BitcoinAdapter adapter(setup.harness->network(), setup.params, adapter_config,
                                  util::Rng(seed));
  adapter.set_metrics(metrics);
  setup.harness->network().set_metrics(metrics);
  adapter.start();
  setup.sim.run_until(setup.sim.now() + 60 * util::kSecond);  // header sync

  canister::BitcoinCanister canister(setup.params,
                                     canister::CanisterConfig::for_params(setup.params));
  canister.set_metrics(metrics);
  SyncStats stats;
  util::SimTime start = setup.sim.now();
  // Sync is complete once the canister holds the *blocks* to the target
  // height (headers alone arrive much earlier through the N sets).
  auto blocks_height = [&] {
    return canister.anchor_height() + static_cast<int>(canister.unstable_block_count());
  };
  for (int i = 0; i < 10000 && blocks_height() < target_height; ++i) {
    auto request = canister.make_request();
    auto response = adapter.handle_request(request);
    canister.process_response(
        response, static_cast<std::int64_t>(setup.params.genesis_header.time) +
                      setup.sim.now() / util::kSecond + 1000000);
    ++stats.iterations;
    stats.blocks += response.blocks.size();
    // Background block fetches happen between requests (the canister polls
    // periodically; model one second per round-trip).
    setup.sim.run_until(setup.sim.now() + util::kSecond);
  }
  stats.wall = setup.sim.now() - start;
  setup.harness->network().set_metrics(nullptr);
  return stats;
}

/// Dumps a full metrics snapshot: to stdout, and to $ICBTC_METRICS_JSON if
/// set (the machine-readable BENCH_*.json path for downstream tooling).
void emit_metrics_snapshot(const obs::MetricsRegistry& metrics, const char* bench_name) {
  std::string json = obs::to_json(metrics);
  std::printf("--- %s metrics snapshot (obs::to_json) ---\n%s", bench_name, json.c_str());
  if (const char* path = std::getenv("ICBTC_METRICS_JSON"); path != nullptr) {
    if (std::FILE* f = std::fopen(path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("(written to %s)\n", path);
    }
  }
}

void run_sync_table() {
  std::printf("\n--- Algorithm 1/2: initial sync throughput & ablations ---\n");
  const int kChain = 120;
  SyncSetup setup(kChain, 20250101);

  std::printf("%-34s %-12s %-12s %-10s\n", "configuration", "iterations", "sim time",
              "blocks");
  struct Case {
    const char* name;
    std::size_t max_headers;
    int multi_below;
  };
  obs::MetricsRegistry metrics;
  bool first = true;
  for (const Case& c : {Case{"multi-block, MAX_HEADERS=100", 100, 1 << 30},
                        Case{"multi-block, MAX_HEADERS=10", 10, 1 << 30},
                        Case{"single-block (post-checkpoint)", 100, 0},
                        Case{"single-block, MAX_HEADERS=10", 10, 0}}) {
    adapter::AdapterConfig config;
    config.addr_lower_threshold = 3;
    config.addr_upper_threshold = 6;
    config.max_headers = c.max_headers;
    config.multi_block_below_height = c.multi_below;
    // Only the first configuration is instrumented, so the snapshot below is
    // a single clean run rather than a blend of all four ablations.
    auto stats = sync_canister(setup, config, kChain,
                               static_cast<std::uint64_t>(c.max_headers) * 31 +
                                   static_cast<std::uint64_t>(c.multi_below != 0),
                               first ? &metrics : nullptr);
    first = false;
    std::printf("%-34s %-12d %-12s %-10zu\n", c.name, stats.iterations,
                util::format_time(stats.wall).c_str(), stats.blocks);
  }
  std::printf("\nMulti-block responses sync the chain in far fewer consensus rounds;\n");
  std::printf("single-block mode trades sync speed for the Lemma IV.3 defence (one\n");
  std::printf("Byzantine block maker can inject at most one block per round).\n\n");
  emit_metrics_snapshot(metrics, "multi-block MAX_HEADERS=100 sync");
}

void BM_HandleRequest(benchmark::State& state) {
  static SyncSetup setup(60, 7);
  adapter::AdapterConfig config;
  config.addr_lower_threshold = 3;
  config.addr_upper_threshold = 6;
  config.multi_block_below_height = 1 << 30;
  static adapter::BitcoinAdapter adapter(setup.harness->network(), setup.params, config,
                                         util::Rng(8));
  static bool started = [&] {
    adapter.start();
    setup.sim.run_until(setup.sim.now() + 120 * util::kSecond);
    // Warm the block store.
    adapter::AdapterRequest warm;
    warm.anchor = setup.params.genesis_header.hash();
    for (int i = 0; i < 30; ++i) {
      adapter.handle_request(warm);
      setup.sim.run_until(setup.sim.now() + 5 * util::kSecond);
    }
    return true;
  }();
  (void)started;
  adapter::AdapterRequest request;
  request.anchor = setup.params.genesis_header.hash();
  for (auto _ : state) {
    benchmark::DoNotOptimize(adapter.handle_request(request));
  }
}
BENCHMARK(BM_HandleRequest)->Unit(benchmark::kMicrosecond);

void BM_ProcessResponse(benchmark::State& state) {
  // Measures Algorithm 2 on a response of `range` blocks.
  const auto& params = bitcoin::ChainParams::regtest();
  chain::HeaderTree tree(params, params.genesis_header);
  std::uint32_t time = params.genesis_header.time;
  util::Hash256 tip = params.genesis_header.hash();
  std::uint64_t tag = 1;
  std::vector<bitcoin::Block> blocks;
  for (int i = 0; i < state.range(0); ++i) {
    time += 600;
    auto block = chain::build_child_block(tree, tip, time, bitcoin::p2pkh_script({}),
                                          bitcoin::block_subsidy(0), {}, tag++);
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    tip = block.hash();
    blocks.push_back(std::move(block));
  }
  adapter::AdapterResponse response;
  for (const auto& b : blocks) response.blocks.emplace_back(b, b.header);

  for (auto _ : state) {
    canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
    canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
    benchmark::DoNotOptimize(canister.tip_height());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ProcessResponse)->Arg(1)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_sync_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
