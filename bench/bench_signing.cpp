// Threshold-ECDSA signing pipeline bench: per-request online dealing vs the
// offline presignature pool vs pooled + batched signing, at the IC mainnet
// subnet size (t = 9 of n = 13).
//
// Scenarios (identical request streams, identical service seed):
//   online         pool depth 0, derived-key cache off — every sign() deals
//                  its presignature inside the call, recomputes the path
//                  derivation, inverts per-partial Lagrange denominators,
//                  and runs a full per-signature verification. The pre-pool
//                  cost model.
//   pooled         presignatures prefilled offline; sign() only pays the
//                  online phase (partials + combine + verify).
//   pooled_batched sign_batch(): shared Lagrange coefficients (one modular
//                  inversion per batch), pooled partial computation, one
//                  batched multi-scalar verification for the whole batch.
//
// Because every scenario consumes the same deterministic deal sequence, all
// three must produce byte-identical signature transcripts — gated here, along
// with a second seeded run (reproducibility) and a refill-timing variation
// (small pool + watermark refills mid-stream). Every signature is verified
// individually in an untimed pass. The >= 5x pooled_batched-vs-online
// throughput gate is enforced in full mode only (quick mode still reports
// it); verification and determinism gates always apply.
//
// Writes BENCH_signing.json (override with ICBTC_BENCH_OUT).
// ICBTC_BENCH_QUICK=1 shrinks the workload for CI. Exits nonzero when any
// gate fails.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "crypto/presig_pool.h"
#include "crypto/sha256.h"
#include "crypto/threshold_ecdsa.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::crypto;

using bench::quick_mode;

constexpr std::uint32_t kThreshold = 9;
constexpr std::uint32_t kParties = 13;
constexpr std::uint64_t kSeed = 20260807;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

ThresholdEcdsaServiceConfig make_config(std::size_t depth, std::size_t watermark,
                                        bool cache_derived) {
  ThresholdEcdsaServiceConfig config;
  config.pool_depth = depth;
  config.pool_low_watermark = watermark;
  config.cache_derived_keys = cache_derived;
  return config;
}

/// The request stream: distinct digests across a contract-like set of
/// derivation paths (many signatures per path, as wallets produce).
std::vector<ThresholdEcdsaService::SignRequest> make_requests(std::size_t n,
                                                              std::size_t contracts) {
  std::vector<ThresholdEcdsaService::SignRequest> requests;
  requests.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::string msg = "sign request " + std::to_string(i);
    auto digest = Sha256::hash(
        util::ByteSpan(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size()));
    auto contract = i % contracts;
    requests.push_back({digest, DerivationPath{{'c', 'o', 'n', 't', 'r', 'a', 'c', 't'},
                                               {static_cast<std::uint8_t>(contract >> 8),
                                                static_cast<std::uint8_t>(contract & 0xff)}}});
  }
  return requests;
}

util::Hash256 transcript_digest(const std::vector<Signature>& sigs) {
  Sha256 h;
  for (const auto& sig : sigs) {
    util::Bytes compact = sig.compact();
    h.update(util::ByteSpan(compact.data(), compact.size()));
  }
  return h.finalize();
}

struct ScenarioResult {
  std::string name;
  std::size_t signatures = 0;
  double seconds = 0;
  double sigs_per_s = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  std::vector<Signature> sigs;
  util::Hash256 transcript;
};

void finish(ScenarioResult& r, std::vector<double>& latencies_ms) {
  bench::SeriesSummary s = bench::summarize_series(r.name, latencies_ms);
  r.sigs_per_s = static_cast<double>(r.signatures) / r.seconds;
  r.p50_ms = s.p50;
  r.p90_ms = s.p90;
  r.p99_ms = s.p99;
  r.transcript = transcript_digest(r.sigs);
  std::printf("%-16s %6zu sigs  %7.3f s  %8.1f sigs/s  p50 %7.3f ms  p90 %7.3f ms  p99 %7.3f ms\n",
              r.name.c_str(), r.signatures, r.seconds, r.sigs_per_s, r.p50_ms, r.p90_ms,
              r.p99_ms);
}

/// Per-request online dealing (depth 0) or pooled serial signing.
ScenarioResult run_serial(const std::string& name,
                          const std::vector<ThresholdEcdsaService::SignRequest>& requests,
                          const ThresholdEcdsaServiceConfig& config, bool prefill) {
  ThresholdEcdsaService service(kThreshold, kParties, kSeed, config);
  if (prefill) service.pool().refill();  // offline phase, untimed by design
  ScenarioResult r;
  r.name = name;
  r.signatures = requests.size();
  r.sigs.reserve(requests.size());
  std::vector<double> latencies_ms;
  latencies_ms.reserve(requests.size());
  auto start = std::chrono::steady_clock::now();
  for (const auto& req : requests) {
    auto t0 = std::chrono::steady_clock::now();
    r.sigs.push_back(service.sign(req.digest, req.path));
    latencies_ms.push_back(seconds_since(t0) * 1e3);
  }
  r.seconds = seconds_since(start);
  finish(r, latencies_ms);
  return r;
}

/// Pooled + batched signing; latency per signature is the batch latency
/// amortized over its requests (a batch completes as a unit).
ScenarioResult run_batched(const std::string& name,
                           const std::vector<ThresholdEcdsaService::SignRequest>& requests,
                           const ThresholdEcdsaServiceConfig& config, std::size_t batch_size) {
  ThresholdEcdsaService service(kThreshold, kParties, kSeed, config);
  service.pool().refill();
  ScenarioResult r;
  r.name = name;
  r.signatures = requests.size();
  r.sigs.reserve(requests.size());
  std::vector<double> latencies_ms;
  latencies_ms.reserve(requests.size());
  auto start = std::chrono::steady_clock::now();
  for (std::size_t off = 0; off < requests.size(); off += batch_size) {
    std::size_t count = std::min(batch_size, requests.size() - off);
    std::vector<ThresholdEcdsaService::SignRequest> batch(
        requests.begin() + static_cast<std::ptrdiff_t>(off),
        requests.begin() + static_cast<std::ptrdiff_t>(off + count));
    auto t0 = std::chrono::steady_clock::now();
    auto sigs = service.sign_batch(batch);
    double per_sig_ms = seconds_since(t0) * 1e3 / static_cast<double>(count);
    for (auto& sig : sigs) {
      r.sigs.push_back(sig);
      latencies_ms.push_back(per_sig_ms);
    }
  }
  r.seconds = seconds_since(start);
  finish(r, latencies_ms);
  return r;
}

int run() {
  const bool quick = quick_mode();
  // Full mode is the many-thousand-contract workload: 4096 requests spread
  // over 2048 distinct contract derivation paths.
  const std::size_t n_requests = quick ? 96 : 4096;
  const std::size_t n_contracts = quick ? 32 : 2048;
  const std::size_t batch_size = quick ? 16 : 128;
  // One presignature of headroom keeps the pool from hitting the low
  // watermark on the last request, so the post-sign refill (offline work by
  // definition) stays out of the timed region.
  const std::size_t pool_depth = n_requests + 1;
  bool ok = true;

  std::printf("--- threshold-ECDSA signing pipeline, t=%u of n=%u, %zu requests ---\n",
              kThreshold, kParties, n_requests);
  auto requests = make_requests(n_requests, n_contracts);

  // Offline dealing throughput, reported for context (this cost is what the
  // pool moves out of the request path).
  {
    ThresholdEcdsaService service(kThreshold, kParties, kSeed,
                                  make_config(n_requests, 0, true));
    auto start = std::chrono::steady_clock::now();
    service.pool().refill();
    double s = seconds_since(start);
    std::printf("offline dealing: %zu presignatures in %.3f s (%.1f presigs/s)\n", n_requests, s,
                static_cast<double>(n_requests) / s);
  }

  ScenarioResult online =
      run_serial("online", requests, make_config(0, 0, /*cache=*/false), /*prefill=*/false);
  ScenarioResult pooled =
      run_serial("pooled", requests, make_config(pool_depth, 0, true), /*prefill=*/true);
  ScenarioResult batched =
      run_batched("pooled_batched", requests, make_config(pool_depth, 0, true), batch_size);

  double pooled_speedup = pooled.sigs_per_s / online.sigs_per_s;
  double batched_speedup = batched.sigs_per_s / online.sigs_per_s;
  std::printf("speedup vs online: pooled %.2fx, pooled+batched %.2fx (gate: >= 5x, %s)\n",
              pooled_speedup, batched_speedup, quick ? "reported only in quick mode" : "enforced");
  if (!quick && batched_speedup < 5.0) {
    std::fprintf(stderr, "FAIL: pooled+batched speedup %.2fx below the 5x gate\n",
                 batched_speedup);
    ok = false;
  }

  // ---- Verification: every signature, every scenario, untimed ----------
  bool all_verified = true;
  {
    ThresholdEcdsaService reference(kThreshold, kParties, kSeed, make_config(0, 0, true));
    for (const ScenarioResult* r : {&online, &pooled, &batched}) {
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (!verify(reference.public_key(requests[i].path), requests[i].digest, r->sigs[i])) {
          std::fprintf(stderr, "FAIL: %s signature %zu does not verify\n", r->name.c_str(), i);
          all_verified = false;
          ok = false;
        }
      }
    }
    std::printf("verification: %s\n", all_verified ? "all signatures valid" : "FAILURES");
  }

  // ---- Determinism gates ----------------------------------------------
  // (1) All scenarios consume the same deal sequence => identical bytes.
  bool cross_scenario_match =
      online.transcript == pooled.transcript && online.transcript == batched.transcript;
  if (!cross_scenario_match) {
    std::fprintf(stderr, "FAIL: scenario transcripts diverge (pool changed signature bytes)\n");
    ok = false;
  }
  // (2) A second seeded run reproduces the transcript byte-for-byte.
  ScenarioResult rerun =
      run_batched("pooled_batched#2", requests, make_config(pool_depth, 0, true), batch_size);
  bool two_run_match = rerun.transcript == batched.transcript;
  if (!two_run_match) {
    std::fprintf(stderr, "FAIL: repeated seeded run produced different signatures\n");
    ok = false;
  }
  // (3) Refill timing must not matter: small pool, watermark refills
  // mid-stream, exhaustion fallbacks — same bytes.
  ScenarioResult small_pool = run_batched(
      "small_pool", requests, make_config(batch_size / 2, batch_size / 4, true), batch_size);
  bool refill_timing_match = small_pool.transcript == batched.transcript;
  if (!refill_timing_match) {
    std::fprintf(stderr, "FAIL: refill timing changed signature bytes\n");
    ok = false;
  }
  std::printf("determinism: cross-scenario %s, two-run %s, refill-timing %s\n",
              cross_scenario_match ? "ok" : "FAIL", two_run_match ? "ok" : "FAIL",
              refill_timing_match ? "ok" : "FAIL");

  // ---- Exhaustion behaviour -------------------------------------------
  // A burst 4x the pool depth: the overflow falls back to online dealing
  // (the documented backpressure policy), the pool refills afterwards, and
  // everything still verifies.
  const std::size_t exhaustion_depth = quick ? 8 : 32;
  std::uint64_t exhaustion_stalls = 0;
  std::uint64_t exhaustion_refills = 0;
  std::size_t exhaustion_pool_after = 0;
  double exhaustion_seconds = 0;
  bool exhaustion_verified = true;
  {
    ThresholdEcdsaService service(
        kThreshold, kParties, kSeed,
        make_config(exhaustion_depth, exhaustion_depth / 2, true));
    service.pool().refill();
    auto burst = make_requests(4 * exhaustion_depth, n_contracts);
    auto start = std::chrono::steady_clock::now();
    auto sigs = service.sign_batch(burst);
    exhaustion_seconds = seconds_since(start);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      if (!verify(service.public_key(burst[i].path), burst[i].digest, sigs[i])) {
        exhaustion_verified = false;
        ok = false;
      }
    }
    exhaustion_stalls = service.pool().exhaustion_stalls();
    exhaustion_refills = service.pool().refills();
    exhaustion_pool_after = service.pool().size();
    if (exhaustion_stalls == 0) {
      std::fprintf(stderr, "FAIL: exhaustion burst never hit the online-dealing fallback\n");
      ok = false;
    }
    if (exhaustion_pool_after == 0) {
      std::fprintf(stderr, "FAIL: pool did not refill after the burst\n");
      ok = false;
    }
    std::printf(
        "exhaustion: burst %zu vs depth %zu -> %llu online fallbacks, %llu refills, "
        "%zu pooled after, %s\n",
        4 * exhaustion_depth, exhaustion_depth,
        static_cast<unsigned long long>(exhaustion_stalls),
        static_cast<unsigned long long>(exhaustion_refills), exhaustion_pool_after,
        exhaustion_verified ? "all verified" : "VERIFY FAIL");
  }

  // ---- JSON ------------------------------------------------------------
  std::string body;
  char line[512];
  auto appendf = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    body += line;
  };
  appendf("{\n");
  appendf(
      "  \"workload\": {\"requests\": %zu, \"batch_size\": %zu, \"threshold\": %u, "
      "\"parties\": %u, \"quick\": %s},\n",
      n_requests, batch_size, kThreshold, kParties, quick ? "true" : "false");
  appendf("  \"scenarios\": [\n");
  const ScenarioResult* scenarios[] = {&online, &pooled, &batched};
  for (std::size_t i = 0; i < 3; ++i) {
    const ScenarioResult* r = scenarios[i];
    appendf(
        "    {\"name\": \"%s\", \"signatures\": %zu, \"seconds\": %.6f, "
        "\"sigs_per_s\": %.2f, \"p50_ms\": %.4f, \"p90_ms\": %.4f, \"p99_ms\": %.4f}%s\n",
        r->name.c_str(), r->signatures, r->seconds, r->sigs_per_s, r->p50_ms, r->p90_ms,
        r->p99_ms, i + 1 < 3 ? "," : "");
  }
  appendf("  ],\n");
  appendf(
      "  \"speedup_vs_online\": {\"pooled\": %.3f, \"pooled_batched\": %.3f, "
      "\"gate_min_batched\": 5.0, \"gate_enforced\": %s},\n",
      pooled_speedup, batched_speedup, quick ? "false" : "true");
  appendf(
      "  \"exhaustion\": {\"pool_depth\": %zu, \"burst\": %zu, \"seconds\": %.6f, "
      "\"online_fallbacks\": %llu, \"refills\": %llu, \"pooled_after\": %zu, "
      "\"policy\": \"fallback_to_online_dealing\", \"all_verified\": %s},\n",
      exhaustion_depth, 4 * exhaustion_depth, exhaustion_seconds,
      static_cast<unsigned long long>(exhaustion_stalls),
      static_cast<unsigned long long>(exhaustion_refills), exhaustion_pool_after,
      exhaustion_verified ? "true" : "false");
  appendf(
      "  \"determinism\": {\"cross_scenario_match\": %s, \"two_run_match\": %s, "
      "\"refill_timing_match\": %s},\n",
      cross_scenario_match ? "true" : "false", two_run_match ? "true" : "false",
      refill_timing_match ? "true" : "false");
  appendf("  \"all_signatures_verified\": %s,\n", all_verified ? "true" : "false");
  appendf("  \"gates_pass\": %s\n", ok ? "true" : "false");
  appendf("}\n");
  if (!bench::write_file("ICBTC_BENCH_OUT", "BENCH_signing.json", body, "signing bench")) {
    return 1;
  }
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
