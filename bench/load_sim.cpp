#include "load_sim.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace icbtc::bench {

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty population");
  cdf_.resize(n);
  double total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = total;
  }
  for (double& c : cdf_) c /= total;
  cdf_.back() = 1.0;
}

std::size_t ZipfSampler::sample(util::Rng& rng) const {
  double roll = rng.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), roll);
  if (it == cdf_.end()) --it;
  return static_cast<std::size_t>(it - cdf_.begin());
}

const char* to_string(LoadEndpoint endpoint) {
  switch (endpoint) {
    case LoadEndpoint::kGetUtxos:
      return "get_utxos";
    case LoadEndpoint::kGetBalance:
      return "get_balance";
    case LoadEndpoint::kSendTransaction:
      return "send_transaction";
  }
  return "unknown";
}

std::vector<LoadRequest> make_open_loop_schedule(double rate_rps, std::size_t n_requests,
                                                 const LoadMix& mix, const ZipfSampler& zipf,
                                                 util::Rng& rng) {
  if (rate_rps <= 0) throw std::invalid_argument("make_open_loop_schedule: rate must be > 0");
  double mean_gap_us = 1e6 / rate_rps;
  std::vector<LoadRequest> schedule;
  schedule.reserve(n_requests);
  double t = 0;
  for (std::size_t i = 0; i < n_requests; ++i) {
    t += rng.next_exponential(mean_gap_us);
    LoadRequest req;
    req.arrival_us = t;
    double roll = rng.next_double();
    if (roll < mix.get_utxos) {
      req.endpoint = LoadEndpoint::kGetUtxos;
    } else if (roll < mix.get_utxos + mix.get_balance) {
      req.endpoint = LoadEndpoint::kGetBalance;
    } else {
      req.endpoint = LoadEndpoint::kSendTransaction;
    }
    req.address = zipf.sample(rng);
    schedule.push_back(req);
  }
  return schedule;
}

namespace {

/// Pushes a candidate start time past every stall window containing it.
/// Windows are expected sorted by start; a start landing inside one snaps to
/// its end, possibly cascading into the next.
double stall_adjust(double start, const std::vector<StallWindow>& stalls) {
  for (const auto& w : stalls) {
    if (start >= w.start_us && start < w.end_us) start = w.end_us;
  }
  return start;
}

}  // namespace

QueueSimResult simulate_open_loop(const std::vector<LoadRequest>& schedule, std::size_t servers,
                                  const std::function<double(const LoadRequest&)>& service,
                                  const std::vector<StallWindow>& stalls) {
  if (servers == 0) throw std::invalid_argument("simulate_open_loop: need at least one server");
  QueueSimResult result;
  result.requests = schedule.size();
  if (schedule.empty()) return result;
  result.latency_us.reserve(schedule.size());

  std::vector<double> free_at(servers, 0.0);
  double last_completion = 0;
  for (const auto& req : schedule) {
    auto it = std::min_element(free_at.begin(), free_at.end());
    double start = stall_adjust(std::max(req.arrival_us, *it), stalls);
    double completion = start + service(req);
    *it = completion;
    result.latency_us.push_back(completion - req.arrival_us);
    last_completion = std::max(last_completion, completion);
  }

  double first_arrival = schedule.front().arrival_us;
  result.makespan_us = last_completion - first_arrival;
  double span_s = (schedule.back().arrival_us - first_arrival) / 1e6;
  result.offered_rps = span_s > 0 ? static_cast<double>(schedule.size() - 1) / span_s : 0;
  result.achieved_rps =
      result.makespan_us > 0 ? static_cast<double>(schedule.size()) / (result.makespan_us / 1e6)
                             : 0;
  return result;
}

QueueSimResult simulate_closed_loop(const std::vector<LoadRequest>& schedule, std::size_t clients,
                                    const std::function<double(const LoadRequest&)>& service,
                                    const std::vector<StallWindow>& stalls) {
  if (clients == 0) throw std::invalid_argument("simulate_closed_loop: need at least one client");
  QueueSimResult result;
  result.requests = schedule.size();
  if (schedule.empty()) return result;
  result.latency_us.reserve(schedule.size());

  // Each client issues its next request the instant the previous one
  // completes; the request's scheduled arrival is discarded. Latency is
  // measured from the *issue* moment, so queueing that the generator's
  // backpressure prevented from building never shows up — the coordinated
  // omission defect, reproduced deliberately.
  std::vector<double> free_at(clients, 0.0);
  double last_completion = 0;
  for (const auto& req : schedule) {
    auto it = std::min_element(free_at.begin(), free_at.end());
    double issue = *it;
    double start = stall_adjust(issue, stalls);
    double completion = start + service(req);
    *it = completion;
    result.latency_us.push_back(completion - issue);
    last_completion = std::max(last_completion, completion);
  }

  result.makespan_us = last_completion;
  double span_s = (schedule.back().arrival_us - schedule.front().arrival_us) / 1e6;
  result.offered_rps = span_s > 0 ? static_cast<double>(schedule.size() - 1) / span_s : 0;
  result.achieved_rps =
      result.makespan_us > 0 ? static_cast<double>(schedule.size()) / (result.makespan_us / 1e6)
                             : 0;
  return result;
}

}  // namespace icbtc::bench
