// §IV-B cost table: "approximately 35,000 (1,500) requests for balances
// (UTXOs) can be made for 1 U.S. dollar", against an average Bitcoin
// transaction fee of 1-2 USD at the end of 2024.
//
// Uses the same address population as Figure 7 and the IC cycles cost model
// (base fee + per-instruction + per-response-byte, 1T cycles ≈ 1.33 USD).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bitcoin/script.h"
#include "ic/subnet.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

void run_cost_table() {
  std::printf("\n--- §IV-B: cost of replicated requests (requests per USD) ---\n");
  const auto& params = bitcoin::ChainParams::regtest();
  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  util::Simulation sim;
  ic::Subnet subnet(sim, ic::SubnetConfig{}, 99);
  const auto& cost_model = subnet.config().cost_model;

  // Build the paper's address population.
  util::Rng rng(555);
  auto counts = paper_address_skew(1000, rng);
  chain::HeaderTree tree(params, params.genesis_header);
  util::Hash256 tip = params.genesis_header.hash();
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 1;
  std::vector<std::string> addresses;
  std::vector<bitcoin::Transaction> batch;
  auto flush = [&] {
    time += 600;
    auto block = chain::build_child_block(tree, tip, time, bitcoin::p2pkh_script({}),
                                          bitcoin::block_subsidy(0), std::move(batch), tag++);
    batch.clear();
    tip = block.hash();
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    adapter::AdapterResponse response;
    response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
    canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
  };
  for (std::size_t i = 0; i < counts.size(); ++i) {
    util::Hash160 h;
    auto bytes = rng.next_bytes(20);
    std::copy(bytes.begin(), bytes.end(), h.data.begin());
    addresses.push_back(bitcoin::p2pkh_address(h, params.network));
    std::size_t remaining = counts[i];
    while (remaining > 0) {
      bitcoin::Transaction tx;
      bitcoin::TxIn in;
      in.prevout.txid = rng.next_hash();
      tx.inputs.push_back(in);
      std::size_t chunk = std::min<std::size_t>(remaining, 200);
      for (std::size_t k = 0; k < chunk; ++k) {
        tx.outputs.push_back(bitcoin::TxOut{1000, bitcoin::p2pkh_script(h)});
      }
      remaining -= chunk;
      batch.push_back(std::move(tx));
      if (batch.size() >= 20) flush();
    }
  }
  if (!batch.empty()) flush();

  // Measure the average cycle cost of both request types.
  double balance_cycles = 0, utxo_cycles = 0;
  std::size_t n = 0;
  for (const auto& addr : addresses) {
    ic::InstructionMeter::Segment seg_b(canister.meter());
    auto balance = canister.get_balance(addr);
    if (!balance.ok()) continue;
    balance_cycles += static_cast<double>(cost_model.update_cost_cycles(seg_b.sample(), 16));

    canister::GetUtxosRequest request;
    request.address = addr;
    ic::InstructionMeter::Segment seg_u(canister.meter());
    auto utxos = canister.get_utxos(request);
    if (!utxos.ok()) continue;
    std::size_t bytes = 48 * utxos.value.utxos.size() + 44;
    utxo_cycles += static_cast<double>(cost_model.update_cost_cycles(seg_u.sample(), bytes));
    ++n;
  }
  balance_cycles /= static_cast<double>(n);
  utxo_cycles /= static_cast<double>(n);

  double usd_per_balance = cost_model.cycles_to_usd(static_cast<std::uint64_t>(balance_cycles));
  double usd_per_utxos = cost_model.cycles_to_usd(static_cast<std::uint64_t>(utxo_cycles));
  std::printf("%-28s %-16s %-16s %s\n", "request", "avg cycles", "USD/request",
              "requests/USD");
  std::printf("%-28s %-16.3e %-16.2e %.0f\n", "replicated get_balance", balance_cycles,
              usd_per_balance, 1.0 / usd_per_balance);
  std::printf("%-28s %-16.3e %-16.2e %.0f\n", "replicated get_utxos", utxo_cycles,
              usd_per_utxos, 1.0 / usd_per_utxos);
  std::printf("\npaper: ~35,000 balance requests and ~1,500 UTXO requests per USD;\n");
  std::printf("for comparison a single Bitcoin transaction cost 1-2 USD in late 2024.\n\n");
}

void BM_UpdateCostModel(benchmark::State& state) {
  ic::CycleCostModel model;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += model.update_cost_cycles(static_cast<std::uint64_t>(state.range(0)), 512);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_UpdateCostModel)->Arg(5'840'000)->Arg(476'000'000);

}  // namespace

int main(int argc, char** argv) {
  run_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
