// Figure 3 + stability-calculus microbenchmarks.
//
// Regenerates the paper's Fig. 3 (confirmation-based stability annotated on
// a forked block tree) and measures the cost of the HeaderTree operations
// the adapter and canister run on every block arrival.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bitcoin/script.h"
#include "chain/block_builder.h"

namespace {

using namespace icbtc;

struct TreeBuilder {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  chain::HeaderTree tree{params, params.genesis_header};
  std::uint32_t time = params.genesis_header.time;
  std::uint32_t salt = 0;

  util::Hash256 extend(const util::Hash256& parent) {
    util::Hash256 merkle;
    merkle.data[0] = static_cast<std::uint8_t>(++salt);
    merkle.data[1] = static_cast<std::uint8_t>(salt >> 8);
    merkle.data[2] = static_cast<std::uint8_t>(salt >> 16);
    time += 600;
    auto header = chain::build_child_header(tree, parent, time, merkle);
    tree.accept(header, static_cast<std::int64_t>(time) + 100000);
    return header.hash();
  }

  std::vector<util::Hash256> chain_of(const util::Hash256& from, int n) {
    std::vector<util::Hash256> out;
    util::Hash256 tip = from;
    for (int i = 0; i < n; ++i) {
      tip = extend(tip);
      out.push_back(tip);
    }
    return out;
  }
};

void print_figure3() {
  std::printf("\n--- Figure 3: confirmation-based stability on a forked tree ---\n");
  TreeBuilder b;
  auto main_chain = b.chain_of(b.tree.root_hash(), 6);
  auto fork_a = b.chain_of(main_chain[0], 2);  // heights 2-3
  auto fork_b = b.chain_of(main_chain[0], 1);  // height 2

  auto name_of = [&](const util::Hash256& h) -> std::string {
    for (std::size_t i = 0; i < main_chain.size(); ++i) {
      if (main_chain[i] == h) return "m" + std::to_string(i + 1);
    }
    for (std::size_t i = 0; i < fork_a.size(); ++i) {
      if (fork_a[i] == h) return "a" + std::to_string(i + 1);
    }
    if (fork_b[0] == h) return "b1";
    return "g";
  };

  std::printf("%-6s %-7s %-5s %-10s\n", "block", "height", "d_c", "stability");
  for (int h = 0; h <= b.tree.max_height(); ++h) {
    for (const auto& hash : b.tree.blocks_at_height(h)) {
      std::printf("%-6s %-7d %-5d %-10d\n", name_of(hash).c_str(), h, b.tree.depth_count(hash),
                  b.tree.confirmation_stability(hash));
    }
  }
  std::printf("Properties (paper §II-C): at most one δ-stable block per height;\n");
  std::printf("losing-fork stability is negative; stability stagnates under racing forks.\n\n");
}

void BM_HeaderAccept(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TreeBuilder b;
    auto chain = b.chain_of(b.tree.root_hash(), static_cast<int>(state.range(0)) - 1);
    util::Hash256 parent = chain.empty() ? b.tree.root_hash() : chain.back();
    util::Hash256 merkle;
    merkle.data[5] = 0x99;
    b.time += 600;
    auto header = chain::build_child_header(b.tree, parent, b.time, merkle);
    state.ResumeTiming();
    benchmark::DoNotOptimize(b.tree.accept(header, static_cast<std::int64_t>(b.time) + 100000));
  }
}
BENCHMARK(BM_HeaderAccept)->Arg(16)->Arg(64)->Arg(256);

void BM_ConfirmationStability(benchmark::State& state) {
  TreeBuilder b;
  auto chain = b.chain_of(b.tree.root_hash(), static_cast<int>(state.range(0)));
  // A racing fork makes the competitor scan non-trivial.
  b.chain_of(b.tree.root_hash(), static_cast<int>(state.range(0)) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.tree.confirmation_stability(chain[0]));
  }
}
BENCHMARK(BM_ConfirmationStability)->Arg(16)->Arg(64)->Arg(256);

void BM_DifficultyStability(benchmark::State& state) {
  TreeBuilder b;
  auto chain = b.chain_of(b.tree.root_hash(), static_cast<int>(state.range(0)));
  b.chain_of(b.tree.root_hash(), 4);
  crypto::U256 ref = b.tree.root().block_work;
  for (auto _ : state) {
    benchmark::DoNotOptimize(b.tree.is_difficulty_stable(chain[0], 6, ref));
  }
}
BENCHMARK(BM_DifficultyStability)->Arg(16)->Arg(64)->Arg(256);

void BM_Reroot(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    TreeBuilder b;
    auto chain = b.chain_of(b.tree.root_hash(), static_cast<int>(state.range(0)));
    b.chain_of(b.tree.root_hash(), 3);  // fork to prune
    state.ResumeTiming();
    b.tree.reroot(chain[0]);
    benchmark::DoNotOptimize(b.tree.size());
  }
}
BENCHMARK(BM_Reroot)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  print_figure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
