// Lemma IV.3: fork injection after canister downtime.
//
// Setting (§IV-A): while the Bitcoin canister is down, an attacker prepares a
// private fork of length >= c*. After recovery the adapter returns only one
// block per request, and each request's response is supplied by the current
// block maker. Byzantine makers (f of n = 3f+1) feed one private-fork block
// per round claiming there are no further headers (N = {}); the first honest
// maker reveals the true chain's headers, tripping the τ sync gate. The
// attack succeeds only if the first c* block makers are all Byzantine —
// probability < 3^{-c*} (Lemma IV.3).
//
// This bench replays the attack with the real Subnet block-maker rotation
// and the real canister (Algorithm 2 + sync gating) and compares the
// measured success rate with (f/n)^{c*} and the 3^{-c*} bound.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <deque>

#include "canister/bitcoin_canister.h"
#include "bitcoin/script.h"
#include "chain/block_builder.h"
#include "ic/subnet.h"

namespace {

using namespace icbtc;

struct AttackMaterial {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  std::vector<bitcoin::Block> pre_downtime;   // canister is synced to these
  std::vector<bitcoin::Block> honest_ext;     // mined during downtime
  std::vector<bitcoin::Block> attacker_fork;  // private fork from the downtime point
  std::int64_t now = 0;

  explicit AttackMaterial(int c_star, std::uint64_t seed) {
    chain::HeaderTree tree(params, params.genesis_header);
    std::uint32_t time = params.genesis_header.time;
    std::uint64_t tag = seed * 1000;
    auto mine = [&](const util::Hash256& parent, std::uint8_t who) {
      time += 600;
      util::Hash160 h;
      h.data[0] = who;
      auto block = chain::build_child_block(tree, parent, time, bitcoin::p2pkh_script(h),
                                            bitcoin::block_subsidy(0), {}, tag++);
      tree.accept(block.header, static_cast<std::int64_t>(time) + 1000000);
      return block;
    };
    util::Hash256 tip = tree.root_hash();
    for (int i = 0; i < 4; ++i) {
      pre_downtime.push_back(mine(tip, 0));
      tip = pre_downtime.back().hash();
    }
    util::Hash256 downtime_point = tip;
    // Honest chain keeps growing during the outage.
    util::Hash256 honest_tip = downtime_point;
    for (int i = 0; i < c_star + 4; ++i) {
      honest_ext.push_back(mine(honest_tip, 0));
      honest_tip = honest_ext.back().hash();
    }
    // The attacker's private fork (Definition IV.2 bounds its height lead,
    // so c* + 1 blocks is all it can usefully hold).
    util::Hash256 attacker_tip = downtime_point;
    for (int i = 0; i < c_star + 1; ++i) {
      attacker_fork.push_back(mine(attacker_tip, 0xaa));
      attacker_tip = attacker_fork.back().hash();
    }
    now = static_cast<std::int64_t>(time) + 1000000;
  }
};

/// Runs one recovery episode given the byzantine/honest pattern of the next
/// rounds. Returns true if the canister reported the corrupting block with
/// c* confirmations before the sync gate (or honest data) stopped the attack.
bool run_attack(const AttackMaterial& material, const std::deque<bool>& maker_byzantine,
                int c_star) {
  auto config = canister::CanisterConfig::for_params(material.params);
  canister::BitcoinCanister canister(material.params, config);
  // Resync the pre-downtime state.
  adapter::AdapterResponse prefix;
  for (const auto& b : material.pre_downtime) prefix.blocks.emplace_back(b, b.header);
  canister.process_response(prefix, material.now);

  std::size_t attacker_next = 0;
  std::size_t honest_next = 0;
  for (bool byzantine : maker_byzantine) {
    adapter::AdapterResponse response;
    if (byzantine) {
      // One fork block per round, N = {} ("no further headers").
      if (attacker_next < material.attacker_fork.size()) {
        const auto& block = material.attacker_fork[attacker_next++];
        response.blocks.emplace_back(block, block.header);
      }
    } else {
      // An honest adapter serves the true chain: one block plus the upcoming
      // honest headers (the tamper-proof N set).
      if (honest_next < material.honest_ext.size()) {
        const auto& block = material.honest_ext[honest_next++];
        response.blocks.emplace_back(block, block.header);
      }
      for (std::size_t i = honest_next; i < material.honest_ext.size(); ++i) {
        response.next_headers.push_back(material.honest_ext[i].header);
      }
    }
    canister.process_response(response, material.now);

    // The victim contract asks for the corrupting transaction's
    // confirmations; it acts once there are c* of them (and the canister is
    // serving, i.e. synced).
    const auto& corrupting = material.attacker_fork.front();
    if (canister.is_synced() && canister.header_tree().contains(corrupting.hash()) &&
        canister.header_tree().is_confirmation_stable(corrupting.hash(), c_star)) {
      return true;
    }
    if (!byzantine) return false;  // honest data arrived; attack window closed
  }
  return false;
}

void run_lemma_iv3() {
  std::printf("\n--- Lemma IV.3: post-downtime fork injection ---\n");
  std::printf("subnet n=13, f=4 byzantine; adapter in single-block mode\n\n");

  // Generate maker sequences with the real subnet rotation.
  util::Simulation sim;
  ic::SubnetConfig subnet_config;
  subnet_config.num_nodes = 13;
  subnet_config.num_byzantine = 4;
  subnet_config.round_jitter = 0.0;
  ic::Subnet subnet(sim, subnet_config, 424242);
  std::deque<bool> maker_stream;
  subnet.register_heartbeat(
      [&](const ic::RoundInfo& info) { maker_stream.push_back(info.block_maker_byzantine); });
  subnet.start();

  std::printf("%-4s %-10s %-12s %-12s %-12s\n", "c*", "trials", "measured", "(f/n)^c*",
              "3^-c* bound");
  for (int c_star : {1, 2, 3, 4, 6}) {
    AttackMaterial material(c_star, static_cast<std::uint64_t>(c_star));
    const int kTrials = 4000;
    int successes = 0;
    for (int t = 0; t < kTrials; ++t) {
      // Draw enough rounds for one episode.
      while (maker_stream.size() < static_cast<std::size_t>(c_star + 4)) {
        sim.run_until(sim.now() + 10 * util::kSecond);
      }
      std::deque<bool> episode(maker_stream.begin(),
                               maker_stream.begin() + c_star + 4);
      maker_stream.erase(maker_stream.begin(), maker_stream.begin() + c_star + 4);
      if (run_attack(material, episode, c_star)) ++successes;
    }
    double measured = static_cast<double>(successes) / kTrials;
    double exact = std::pow(4.0 / 13.0, c_star);
    double bound = std::pow(3.0, -c_star);
    std::printf("%-4d %-10d %-12.5f %-12.5f %-12.5f\n", c_star, kTrials, measured, exact,
                bound);
  }
  std::printf("\nThe measured success rate matches (f/n)^c* and stays below the\n");
  std::printf("3^{-c*} bound of Lemma IV.3: a single honest block maker defeats the\n");
  std::printf("attack by revealing the true headers (the N set + τ sync gate).\n\n");
}

void BM_AttackEpisode(benchmark::State& state) {
  AttackMaterial material(4, 99);
  std::deque<bool> all_byzantine(8, true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_attack(material, all_byzantine, 4));
  }
}
BENCHMARK(BM_AttackEpisode)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_lemma_iv3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
