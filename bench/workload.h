// Shared workload generation for the benchmark/figure harnesses: synthetic
// blockchains with realistic transaction shapes, address populations with
// the paper's UTXO-count skew, and a direct canister feeder.
#pragma once

#include <string>
#include <vector>

#include "canister/bitcoin_canister.h"
#include "chain/block_builder.h"
#include "util/rng.h"

namespace icbtc::bench {

/// Parameters describing the average block content. Bitcoin mainnet blocks
/// ingest ~2000 inputs and ~2300 outputs (the paper's Fig. 6 block stream);
/// scaled-down versions keep the same shape at lower cost.
struct BlockShape {
  std::size_t transactions = 8;
  std::size_t inputs_per_tx = 3;   // non-coinbase
  std::size_t outputs_per_tx = 3;
  /// Relative spread (uniform +-) applied per block.
  double jitter = 0.3;
};

/// Generates a chain of `n` blocks on top of the canister's current tip and
/// feeds them in order; spends are drawn from previously created outputs so
/// the UTXO set grows by (outputs - inputs) per block like the real chain.
class ChainFeeder {
 public:
  ChainFeeder(canister::BitcoinCanister& canister, std::uint64_t seed);

  /// Advances the chain by one block of the given shape; feeds it to the
  /// canister and returns the number of outputs/inputs it carried.
  struct BlockResult {
    int height = 0;
    std::size_t inputs = 0;
    std::size_t outputs = 0;
  };
  BlockResult step(const BlockShape& shape);

  /// Convenience: run `n` steps.
  void run(int n, const BlockShape& shape) {
    for (int i = 0; i < n; ++i) step(shape);
  }

  /// Registers an output script to use for a fraction of future outputs
  /// (lets benchmarks accumulate UTXOs on known addresses).
  void add_tracked_script(const util::Bytes& script, double weight);

  /// Records every generated block's wire serialization into `tap` (nullptr
  /// detaches). Lets a benchmark generate a workload once and replay the
  /// identical byte stream against differently-configured canisters.
  void set_block_tap(std::vector<util::Bytes>* tap) { tap_ = tap; }

  int height() const { return height_; }
  const chain::HeaderTree& tree() const { return tree_; }

 private:
  util::Bytes random_script();

  canister::BitcoinCanister* canister_;
  util::Rng rng_;
  chain::HeaderTree tree_;
  util::Hash256 tip_;
  int height_ = 0;
  std::uint32_t time_;
  std::uint64_t tag_ = 1;
  // Pool of spendable outpoints created by earlier blocks.
  std::vector<bitcoin::OutPoint> spendable_;
  std::vector<std::pair<util::Bytes, double>> tracked_;
  std::vector<util::Bytes>* tap_ = nullptr;
};

/// The paper's measured UTXO-count skew for its 1000 sampled addresses
/// (§IV-B): 517 with <50 UTXOs, 159 with 50-199, 113 with 200-999, 211 with
/// >= 1000. Returns per-address UTXO counts for `n` addresses.
std::vector<std::size_t> paper_address_skew(std::size_t n, util::Rng& rng);

/// Percentile helper for latency series (expects sorted input).
double percentile(const std::vector<double>& sorted, double p);

// ---------------------------------------------------------------------------
// Shared report plumbing for the bench executables (bench_request_latency,
// bench_signing, bench_load): quick-mode detection, percentile summaries,
// and env-var-redirected artifact writing.
// ---------------------------------------------------------------------------

/// True when ICBTC_BENCH_QUICK is set to anything but "0" — the CI smoke
/// convention shared by every bench.
bool quick_mode();

/// Writes `body` to the path named by env var `env_var` (falling back to
/// `fallback` when unset/empty), logging the destination. Returns false —
/// and prints a FAIL line — when the file cannot be opened.
bool write_file(const char* env_var, const char* fallback, const std::string& body,
                const char* what);

/// Percentile summary of one latency/duration series. Units follow the
/// input series (the benches feed microseconds).
struct SeriesSummary {
  std::string name;
  double min = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;
  std::size_t n = 0;
};

/// Sorts `series` in place and summarizes it with linearly interpolated
/// percentiles (the same estimator as percentile()).
SeriesSummary summarize_series(std::string name, std::vector<double>& series);

/// Prints one " name  min ...s  median ...s  p90 ...s  max ...s" row,
/// interpreting the summary values as microseconds.
void print_series_seconds(const SeriesSummary& s);

}  // namespace icbtc::bench
