// Figure 6: instructions executed for block ingestion.
//
// Left panel: instructions per ingested block over a six-month stream,
// averaging ~21.6e9 on mainnet. Right panel: the split between output
// insertions and input removals (roughly half each). Block contents are
// scaled down 1/10 from mainnet shape (200 inputs / 230 outputs per block)
// and instruction counts scaled back up; the instruction *model* per UTXO
// operation is the paper-calibrated cost in canister::InstructionCosts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

constexpr int kIngestScale = 10;

void run_figure6() {
  const auto& params = bitcoin::ChainParams::regtest();  // δ=6: fast stabilization
  auto config = canister::CanisterConfig::for_params(params);
  canister::BitcoinCanister canister(params, config);
  ChainFeeder feeder(canister, /*seed=*/66);

  // Mainnet shape / 10: ~220 inputs, ~250 outputs per block.
  BlockShape shape;
  shape.transactions = 90;
  shape.inputs_per_tx = 3;
  shape.outputs_per_tx = 3;
  shape.jitter = 0.35;

  // Warm up the spendable pool, then stream "six months" of blocks (scaled
  // count: 1300 blocks sampled from the ~26k real ones).
  feeder.run(40, shape);
  const int kBlocks = 1300;
  feeder.run(kBlocks, shape);

  const auto& log = canister.ingest_log();
  std::printf("\n--- Figure 6 (left): instructions per ingested block ---\n");
  std::printf("(scaled x%d back to mainnet block shape)\n", kIngestScale);
  std::printf("%-8s %-10s %-14s %-10s %-10s\n", "block", "height", "instructions",
              "inputs", "outputs");
  double total = 0;
  double total_insert = 0;
  double total_remove = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& stats = log[i];
    double scaled = static_cast<double>(stats.instructions) * kIngestScale;
    total += scaled;
    total_insert += static_cast<double>(stats.insert_instructions) * kIngestScale;
    total_remove += static_cast<double>(stats.remove_instructions) * kIngestScale;
    ++count;
    if (i % 100 == 0) {
      std::printf("%-8zu %-10d %-14.2fB %-10zu %-10zu\n", i, stats.height, scaled / 1e9,
                  stats.inputs_removed * kIngestScale, stats.outputs_inserted * kIngestScale);
    }
  }
  std::printf("\naverage: %.1fB instructions/block   (paper: ~21.6B)\n",
              total / static_cast<double>(count) / 1e9);

  std::printf("\n--- Figure 6 (right): split of ingestion instructions ---\n");
  std::printf("output insertions: %.1fB avg/block (%.0f%% of mutation work)\n",
              total_insert / static_cast<double>(count) / 1e9,
              100.0 * total_insert / (total_insert + total_remove));
  std::printf("input removals:    %.1fB avg/block (%.0f%% of mutation work)\n",
              total_remove / static_cast<double>(count) / 1e9,
              100.0 * total_remove / (total_insert + total_remove));
  std::printf("(paper: roughly half of the ~20B instructions each)\n\n");
}

void BM_IngestBlock(benchmark::State& state) {
  const auto& params = bitcoin::ChainParams::regtest();
  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  ChainFeeder feeder(canister, 67);
  BlockShape shape;
  shape.transactions = static_cast<std::size_t>(state.range(0));
  shape.inputs_per_tx = 2;
  shape.outputs_per_tx = 3;
  feeder.run(20, shape);
  std::size_t before = canister.ingest_log().size();
  std::uint64_t instructions_before = canister.meter().count();
  for (auto _ : state) {
    feeder.step(shape);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["stable_blocks"] =
      static_cast<double>(canister.ingest_log().size() - before);
  state.counters["instr/iter"] = benchmark::Counter(
      static_cast<double>(canister.meter().count() - instructions_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IngestBlock)->Arg(8)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_figure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
