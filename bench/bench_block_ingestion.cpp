// Figure 6: instructions executed for block ingestion — plus the hashing
// pipeline wall-clock benchmark.
//
// Figure 6 left panel: instructions per ingested block over a six-month
// stream, averaging ~21.6e9 on mainnet. Right panel: the split between
// output insertions and input removals (roughly half each). Block contents
// are scaled down 1/10 from mainnet shape (200 inputs / 230 outputs per
// block) and instruction counts scaled back up; the instruction *model* per
// UTXO operation is the paper-calibrated cost in canister::InstructionCosts.
//
// The hashing pipeline benchmark generates one serialized block stream and
// replays the identical bytes through four canister configurations:
//   baseline    txid cache off, portable SHA-256, no thread pool
//   cached      txid cache on,  portable SHA-256, no thread pool
//   dispatched  txid cache on,  best SHA-256 (SHA-NI/SSE4), no thread pool
//   parallel    txid cache on,  best SHA-256, shared thread pool
// It writes BENCH_ingestion.json (override with ICBTC_BENCH_OUT) with ns/tx
// and blocks/s per mode, and exits nonzero if any mode's UTXO-set digest or
// metrics snapshot diverges from the scalar result. ICBTC_BENCH_QUICK=1
// shrinks the workload and skips Figure 6 / the google-benchmark loops for
// CI smoke runs. A short traced replay additionally writes
// BENCH_ingestion_chrome.json (ICBTC_CHROME_TRACE_OUT) — per-block
// Algorithm 2 ingestion spans viewable in chrome://tracing.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "canister/utxo_index.h"
#include "crypto/sha256.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "parallel/thread_pool.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

constexpr int kIngestScale = 10;

using bench::quick_mode;

void run_figure6() {
  const auto& params = bitcoin::ChainParams::regtest();  // δ=6: fast stabilization
  auto config = canister::CanisterConfig::for_params(params);
  canister::BitcoinCanister canister(params, config);
  ChainFeeder feeder(canister, /*seed=*/66);

  // Mainnet shape / 10: ~220 inputs, ~250 outputs per block.
  BlockShape shape;
  shape.transactions = 90;
  shape.inputs_per_tx = 3;
  shape.outputs_per_tx = 3;
  shape.jitter = 0.35;

  // Warm up the spendable pool, then stream "six months" of blocks (scaled
  // count: 1300 blocks sampled from the ~26k real ones).
  feeder.run(40, shape);
  const int kBlocks = 1300;
  feeder.run(kBlocks, shape);

  const auto& log = canister.ingest_log();
  std::printf("\n--- Figure 6 (left): instructions per ingested block ---\n");
  std::printf("(scaled x%d back to mainnet block shape)\n", kIngestScale);
  std::printf("%-8s %-10s %-14s %-10s %-10s\n", "block", "height", "instructions",
              "inputs", "outputs");
  double total = 0;
  double total_insert = 0;
  double total_remove = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const auto& stats = log[i];
    double scaled = static_cast<double>(stats.instructions) * kIngestScale;
    total += scaled;
    total_insert += static_cast<double>(stats.insert_instructions) * kIngestScale;
    total_remove += static_cast<double>(stats.remove_instructions) * kIngestScale;
    ++count;
    if (i % 100 == 0) {
      std::printf("%-8zu %-10d %-14.2fB %-10zu %-10zu\n", i, stats.height, scaled / 1e9,
                  stats.inputs_removed * kIngestScale, stats.outputs_inserted * kIngestScale);
    }
  }
  std::printf("\naverage: %.1fB instructions/block   (paper: ~21.6B)\n",
              total / static_cast<double>(count) / 1e9);

  std::printf("\n--- Figure 6 (right): split of ingestion instructions ---\n");
  std::printf("output insertions: %.1fB avg/block (%.0f%% of mutation work)\n",
              total_insert / static_cast<double>(count) / 1e9,
              100.0 * total_insert / (total_insert + total_remove));
  std::printf("input removals:    %.1fB avg/block (%.0f%% of mutation work)\n",
              total_remove / static_cast<double>(count) / 1e9,
              100.0 * total_remove / (total_insert + total_remove));
  std::printf("(paper: roughly half of the ~20B instructions each)\n\n");
}

// ---------------------------------------------------------------------------
// Hashing pipeline benchmark
// ---------------------------------------------------------------------------

struct ModeConfig {
  const char* name;
  bool txid_cache;
  crypto::Sha256Impl impl;
  std::size_t pool_threads;  // 0 = serial
};

struct ModeResult {
  std::string name;
  double seconds = 0;
  double ns_per_tx = 0;
  double blocks_per_s = 0;
  std::string utxo_digest;
  std::string metrics_json;
};

/// Replays the serialized block stream through a freshly configured
/// canister, returning the best-of-`reps` wall-clock result plus the final
/// UTXO-set digest and metrics snapshot.
ModeResult replay(const ModeConfig& mode, const std::vector<util::Bytes>& stream,
                  std::size_t total_txs, int reps) {
  ModeResult result;
  result.name = mode.name;
  bitcoin::Transaction::set_txid_cache_enabled(mode.txid_cache);
  if (!crypto::set_sha256_impl(mode.impl)) {
    std::fprintf(stderr, "note: %s unsupported on this CPU, using portable\n",
                 crypto::to_string(mode.impl));
    crypto::set_sha256_impl(crypto::Sha256Impl::kPortable);
  }
  parallel::set_shared_pool(mode.pool_threads);

  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    const auto& params = bitcoin::ChainParams::regtest();
    auto config = canister::CanisterConfig::for_params(params);
    // Scan mode: this comparison isolates hashing work, so skip the delta
    // builds (benched separately in bench_request_latency's modes section).
    config.unstable_query_mode = canister::UnstableQueryMode::kScan;
    canister::BitcoinCanister canister(params, config);
    obs::MetricsRegistry registry;
    canister.set_metrics(&registry);

    auto start = std::chrono::steady_clock::now();
    for (const auto& raw : stream) {
      bitcoin::Block block = bitcoin::Block::parse(raw);
      adapter::AdapterResponse response;
      bitcoin::BlockHeader header = block.header;
      response.blocks.emplace_back(std::move(block), header);
      canister.process_response(response, static_cast<std::int64_t>(header.time) + 10000);
    }
    auto stop = std::chrono::steady_clock::now();
    double seconds = std::chrono::duration<double>(stop - start).count();
    if (rep == 0 || seconds < best) best = seconds;
    if (rep == reps - 1) {
      result.utxo_digest = canister.utxo_digest().hex();
      result.metrics_json = obs::to_json(registry);
    }
  }
  result.seconds = best;
  result.ns_per_tx = best * 1e9 / static_cast<double>(total_txs);
  result.blocks_per_s = static_cast<double>(stream.size()) / best;

  // Restore defaults for whatever runs next.
  bitcoin::Transaction::set_txid_cache_enabled(true);
  crypto::set_sha256_impl(crypto::sha256_best_impl());
  parallel::set_shared_pool(0);
  return result;
}

/// Replays a prefix of the block stream under a tracer whose clock follows
/// the instruction meter (2000 instructions/µs) and writes a Chrome trace of
/// the ingestion spans — the per-block Algorithm 2 view of Fig. 6. Runs with
/// the shared pool installed so the traced parallel txid precompute shows up
/// (and stays byte-identical to a serial replay).
bool write_ingestion_trace(const std::vector<util::Bytes>& stream) {
  const std::size_t n_blocks = std::min<std::size_t>(stream.size(), 40);

  obs::TracerConfig tracer_config;
  tracer_config.event_capacity = 256;
  obs::Tracer tracer(tracer_config);

  const auto& params = bitcoin::ChainParams::regtest();
  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  ic::InstructionMeter& meter = canister.meter();
  tracer.set_clock([&meter] { return static_cast<obs::TraceTime>(meter.count() / 2000); });
  canister.set_tracer(&tracer);
  parallel::set_shared_pool(4);

  for (std::size_t i = 0; i < n_blocks; ++i) {
    bitcoin::Block block = bitcoin::Block::parse(stream[i]);
    adapter::AdapterResponse response;
    bitcoin::BlockHeader header = block.header;
    response.blocks.emplace_back(std::move(block), header);
    canister.process_response(response, static_cast<std::int64_t>(header.time) + 10000);
  }
  parallel::set_shared_pool(0);
  canister.set_tracer(nullptr);

  const char* path = std::getenv("ICBTC_CHROME_TRACE_OUT");
  if (path == nullptr || *path == '\0') path = "BENCH_ingestion_chrome.json";
  std::string body = obs::to_chrome_trace(tracer);
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path);
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  std::printf("wrote %s (chrome trace, %zu blocks)\n", path, n_blocks);
  return true;
}

// ---------------------------------------------------------------------------
// Sharded stable-UTXO ingestion
// ---------------------------------------------------------------------------

struct ShardedResult {
  std::size_t shards = 0;
  double seconds = 0;
  double blocks_per_s = 0;
  std::uint64_t instructions = 0;
  std::uint64_t critical_path = 0;
  std::uint64_t reads_mid_ingestion = 0;
  std::string utxo_digest;
};

/// Replays the parsed block stream straight into a sharded UtxoIndex (the
/// stable-store slice of Algorithm 2) with a 4-thread pool, while a reader
/// thread issues epoch-snapshot queries against live scripts. Reports wall
/// clock plus the modelled shard-parallel latency: on a single-subnet replica
/// the per-shard mutation charges run concurrently, so the modelled cost per
/// block is the serial prologue + max per-shard charge, and the modelled
/// speedup is total instructions / total critical path. Wall clock on small
/// CI hosts shows little change (one core); the instruction model is the
/// figure of merit, consistent with the 2000 instructions/us clock used by
/// the trace exporter.
bool run_sharded_section(std::FILE* out, const std::vector<util::Bytes>& stream) {
  std::vector<bitcoin::Block> blocks;
  blocks.reserve(stream.size());
  for (const auto& raw : stream) blocks.push_back(bitcoin::Block::parse(raw));
  // A handful of live scripts for the mid-ingestion reader.
  std::vector<util::Bytes> probe_scripts;
  for (const auto& tx : blocks.front().transactions) {
    for (const auto& txo : tx.outputs) {
      if (probe_scripts.size() < 8) probe_scripts.push_back(txo.script_pubkey);
    }
  }

  std::printf("\n--- sharded stable-UTXO ingestion (epoch snapshot reads) ---\n");
  std::vector<ShardedResult> results;
  for (std::size_t shards : {1u, 4u, 8u}) {
    canister::UtxoIndex index(canister::InstructionCosts{},
                              canister::UtxoIndex::ShardConfig{shards, true});
    parallel::ThreadPool pool(4);
    ic::InstructionMeter meter;
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0};
    std::thread reader([&] {
      ic::InstructionMeter reader_meter;
      std::size_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        benchmark::DoNotOptimize(
            index.utxos_for_script(probe_scripts[i++ % probe_scripts.size()], reader_meter));
        reads.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::yield();
      }
    });

    ShardedResult r;
    r.shards = shards;
    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      auto stats = index.apply_block(blocks[i], static_cast<int>(i + 1), meter, &pool);
      r.critical_path += stats.critical_path_instructions;
    }
    auto end = std::chrono::steady_clock::now();
    stop.store(true);
    reader.join();

    r.seconds = std::chrono::duration<double>(end - start).count();
    r.blocks_per_s = static_cast<double>(blocks.size()) / r.seconds;
    r.instructions = meter.count();
    r.reads_mid_ingestion = reads.load();
    r.utxo_digest = index.digest().hex();
    std::printf(
        "%zu shard(s): %8.3f s  %8.1f blocks/s  modelled speedup %.2fx  "
        "%llu reads mid-ingestion\n",
        shards, r.seconds, r.blocks_per_s,
        static_cast<double>(r.instructions) / static_cast<double>(r.critical_path),
        static_cast<unsigned long long>(r.reads_mid_ingestion));
    results.push_back(std::move(r));
  }

  // Gates: bit-identical state and metering at every shard count, and the
  // modelled shard-parallel latency must win >=2x at 4+ shards.
  bool ok = true;
  for (const auto& r : results) {
    if (r.utxo_digest != results[0].utxo_digest) {
      std::fprintf(stderr, "FAIL: %zu-shard UTXO digest %s != serial %s\n", r.shards,
                   r.utxo_digest.c_str(), results[0].utxo_digest.c_str());
      ok = false;
    }
    if (r.instructions != results[0].instructions) {
      std::fprintf(stderr, "FAIL: %zu-shard metered %llu instructions != serial %llu\n",
                   r.shards, static_cast<unsigned long long>(r.instructions),
                   static_cast<unsigned long long>(results[0].instructions));
      ok = false;
    }
    double modelled =
        static_cast<double>(r.instructions) / static_cast<double>(r.critical_path);
    if (r.shards >= 4 && modelled < 2.0) {
      std::fprintf(stderr, "FAIL: %zu-shard modelled speedup %.2fx < 2x\n", r.shards,
                   modelled);
      ok = false;
    }
  }

  std::fprintf(out, "  \"sharded\": {\n");
  std::fprintf(out, "    \"pool_threads\": 4, \"snapshot_reads\": true,\n");
  std::fprintf(out, "    \"modes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "      {\"shards\": %zu, \"seconds\": %.6f, \"blocks_per_s\": %.2f, "
                 "\"instructions\": %llu, \"critical_path_instructions\": %llu, "
                 "\"modelled_speedup\": %.3f, \"reads_mid_ingestion\": %llu, "
                 "\"utxo_digest\": \"%s\"}%s\n",
                 r.shards, r.seconds, r.blocks_per_s,
                 static_cast<unsigned long long>(r.instructions),
                 static_cast<unsigned long long>(r.critical_path),
                 static_cast<double>(r.instructions) / static_cast<double>(r.critical_path),
                 static_cast<unsigned long long>(r.reads_mid_ingestion),
                 r.utxo_digest.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "    ],\n");
  std::fprintf(out, "    \"digests_match\": %s\n", ok ? "true" : "false");
  std::fprintf(out, "  },\n");
  return ok;
}

bool run_hashing_pipeline_bench() {
  const bool quick = quick_mode();
  const int warmup = quick ? 10 : 40;
  const int blocks = quick ? 60 : 300;
  const int reps = quick ? 2 : 3;

  BlockShape shape;
  shape.transactions = quick ? 40 : 90;
  shape.inputs_per_tx = 3;
  shape.outputs_per_tx = 3;
  shape.jitter = 0.35;

  // Generate the stream once; every mode replays the identical bytes.
  std::vector<util::Bytes> stream;
  {
    const auto& params = bitcoin::ChainParams::regtest();
    canister::BitcoinCanister generator(params, canister::CanisterConfig::for_params(params));
    ChainFeeder feeder(generator, /*seed=*/68);
    feeder.run(warmup, shape);
    feeder.set_block_tap(&stream);
    feeder.run(blocks, shape);
  }
  std::size_t total_txs = 0;
  for (const auto& raw : stream) total_txs += bitcoin::Block::parse(raw).transactions.size();

  const std::vector<ModeConfig> modes = {
      {"baseline", false, crypto::Sha256Impl::kPortable, 0},
      {"cached", true, crypto::Sha256Impl::kPortable, 0},
      {"dispatched", true, crypto::sha256_best_impl(), 0},
      {"parallel", true, crypto::sha256_best_impl(), 4},
  };
  std::vector<ModeResult> results;
  for (const auto& mode : modes) {
    results.push_back(replay(mode, stream, total_txs, reps));
    const auto& r = results.back();
    std::printf("%-11s %8.3f s   %10.0f ns/tx   %8.1f blocks/s\n", r.name.c_str(), r.seconds,
                r.ns_per_tx, r.blocks_per_s);
  }

  // Correctness gate: every mode must land on the scalar UTXO set and the
  // scalar metrics snapshot, byte for byte.
  bool ok = true;
  for (const auto& r : results) {
    if (r.utxo_digest != results[0].utxo_digest) {
      std::fprintf(stderr, "FAIL: %s UTXO digest %s != baseline %s\n", r.name.c_str(),
                   r.utxo_digest.c_str(), results[0].utxo_digest.c_str());
      ok = false;
    }
    if (r.metrics_json != results[0].metrics_json) {
      std::fprintf(stderr, "FAIL: %s metrics snapshot differs from baseline\n", r.name.c_str());
      ok = false;
    }
  }

  double speedup_cached = results[0].seconds / results[1].seconds;
  double speedup_dispatched = results[0].seconds / results[2].seconds;
  double speedup_parallel = results[0].seconds / results[3].seconds;
  std::printf("speedup vs baseline: cached %.2fx, dispatched %.2fx, parallel %.2fx\n",
              speedup_cached, speedup_dispatched, speedup_parallel);

  const char* out_path = std::getenv("ICBTC_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_ingestion.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"workload\": {\"blocks\": %zu, \"transactions\": %zu, \"quick\": %s},\n",
               stream.size(), total_txs, quick ? "true" : "false");
  std::fprintf(out, "  \"sha256_best_impl\": \"%s\",\n",
               crypto::to_string(crypto::sha256_best_impl()));
  std::fprintf(out, "  \"modes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"seconds\": %.6f, \"ns_per_tx\": %.1f, "
                 "\"blocks_per_s\": %.2f, \"utxo_digest\": \"%s\", \"metrics_digest\": \"%s\"}%s\n",
                 r.name.c_str(), r.seconds, r.ns_per_tx, r.blocks_per_s, r.utxo_digest.c_str(),
                 crypto::sha256d(util::ByteSpan(
                                     reinterpret_cast<const std::uint8_t*>(r.metrics_json.data()),
                                     r.metrics_json.size()))
                     .hex()
                     .c_str(),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"speedup_vs_baseline\": {\"cached\": %.3f, \"dispatched\": %.3f, "
               "\"parallel\": %.3f},\n",
               speedup_cached, speedup_dispatched, speedup_parallel);
  ok &= run_sharded_section(out, stream);
  std::fprintf(out, "  \"digests_match\": %s\n", ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);

  ok &= write_ingestion_trace(stream);
  return ok;
}

void BM_IngestBlock(benchmark::State& state) {
  const auto& params = bitcoin::ChainParams::regtest();
  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  ChainFeeder feeder(canister, 67);
  BlockShape shape;
  shape.transactions = static_cast<std::size_t>(state.range(0));
  shape.inputs_per_tx = 2;
  shape.outputs_per_tx = 3;
  feeder.run(20, shape);
  std::size_t before = canister.ingest_log().size();
  std::uint64_t instructions_before = canister.meter().count();
  for (auto _ : state) {
    feeder.step(shape);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["stable_blocks"] =
      static_cast<double>(canister.ingest_log().size() - before);
  state.counters["instr/iter"] = benchmark::Counter(
      static_cast<double>(canister.meter().count() - instructions_before),
      benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_IngestBlock)->Arg(8)->Arg(80)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bool ok = run_hashing_pipeline_bench();
  if (!quick_mode()) {
    run_figure6();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return ok ? 0 : 1;
}
