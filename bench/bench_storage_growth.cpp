// Figure 5: growth of the UTXO set and the Bitcoin canister's space
// consumption over two years of blocks.
//
// The paper reports the mainnet canister crossing 170M UTXOs and 103 GiB by
// March 2025, growing roughly linearly over the preceding two years. Holding
// 170M UTXOs in RAM is not possible here, so the chain is scaled down by a
// configurable factor while preserving the per-block shape: each simulated
// block creates/spends 1/SCALE of the real counts, and the reported series
// is scaled back up. Linearity — the figure's actual claim — is preserved
// exactly.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

constexpr int kScale = 200;          // 1/200 of mainnet per-block churn
constexpr int kBlocksPerDay = 144;
constexpr int kDays = 730;           // two years

void run_growth(bool print_series) {
  const auto& params = bitcoin::ChainParams::mainnet();  // δ=144, mainnet shape
  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  ChainFeeder feeder(canister, /*seed=*/20250705);

  // Per-block churn at 1/kScale of mainnet: 10 inputs spent, ~11.4 outputs
  // created -> net +1.4 UTXO/block -> ~74k over two years -> scaled x200
  // ≈ +15M/year, matching Fig. 5's slope.
  BlockShape shape;
  shape.transactions = 5;
  shape.inputs_per_tx = 2;
  shape.outputs_per_tx = 2;
  shape.jitter = 0.2;
  BlockShape wide = shape;
  wide.outputs_per_tx = 3;  // alternate shape creates the net surplus

  if (print_series) {
    std::printf("\n--- Figure 5: UTXO set size and canister space consumption ---\n");
    std::printf("(simulated at 1/%d scale, values scaled back to mainnet)\n", kScale);
    std::printf("%-8s %-10s %-16s %-14s\n", "day", "height", "utxos(millions)", "memory(GiB)");
  }

  // Seed the set to the paper's starting point (~140M UTXOs in early 2023):
  // pre-populate with bulk blocks that only create outputs.
  BlockShape seed_shape;
  seed_shape.transactions = 25;
  seed_shape.inputs_per_tx = 1;
  seed_shape.outputs_per_tx = 28;
  seed_shape.jitter = 0.0;
  for (int i = 0; i < 1000; ++i) feeder.step(seed_shape);

  for (int day = 0; day < kDays; ++day) {
    for (int b = 0; b < kBlocksPerDay; ++b) {
      feeder.step((b % 5 < 2) ? wide : shape);
    }
    if (print_series && day % 30 == 0) {
      double utxos_m = static_cast<double>(canister.utxo_count()) * kScale / 1e6;
      double memory_gib = static_cast<double>(canister.memory_bytes()) * kScale /
                          (1024.0 * 1024.0 * 1024.0);
      std::printf("%-8d %-10d %-16.1f %-14.1f\n", day, feeder.height(), utxos_m, memory_gib);
    }
  }
  if (print_series) {
    double utxos_m = static_cast<double>(canister.utxo_count()) * kScale / 1e6;
    double memory_gib =
        static_cast<double>(canister.memory_bytes()) * kScale / (1024.0 * 1024.0 * 1024.0);
    std::printf("%-8d %-10d %-16.1f %-14.1f\n", kDays, feeder.height(), utxos_m, memory_gib);
    std::printf("\nPaper: >170M UTXOs and >103 GiB by end of the two-year window, with\n");
    std::printf("near-linear growth. Check the final row and the constant slope above.\n\n");
  }
}

void BM_BlockFeedThroughput(benchmark::State& state) {
  const auto& params = bitcoin::ChainParams::mainnet();
  canister::BitcoinCanister canister(params, canister::CanisterConfig::for_params(params));
  ChainFeeder feeder(canister, 42);
  BlockShape shape;
  shape.transactions = static_cast<std::size_t>(state.range(0));
  shape.inputs_per_tx = 2;
  shape.outputs_per_tx = 3;
  for (auto _ : state) {
    feeder.step(shape);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["utxos"] = static_cast<double>(canister.utxo_count());
}
BENCHMARK(BM_BlockFeedThroughput)->Arg(5)->Arg(25)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_growth(/*print_series=*/true);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
