// Compact block relay (src/reconcile): bytes on the wire for full-block
// relay vs IBLT-sketch compact relay, at high and low mempool overlap. The
// high-overlap scenario is the acceptance target (compact ≤ 25% of full);
// the low-overlap scenario exercises the getblocktxn/full fallbacks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bitcoin/script.h"
#include "btcnet/miner.h"
#include "btcnet/node.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"
#include "reconcile/compact_block.h"

namespace {

using namespace icbtc;

std::uint64_t counter(const obs::MetricsRegistry& metrics, const std::string& name) {
  auto it = metrics.counters().find(name);
  return it == metrics.counters().end() ? 0 : it->second.value();
}

struct RelayStats {
  std::uint64_t full_bytes = 0;     // bytes of MsgBlock during block relay
  std::uint64_t compact_bytes = 0;  // cmpctblock + getblocktxn + blocktxn + getdata + block
  std::uint64_t decode_success = 0;
  std::uint64_t peel_failure = 0;
  std::uint64_t fallback_getblocktxn = 0;
  std::uint64_t fallback_full = 0;
};

/// Two connected nodes; Alice mines `blocks` blocks of `txs_per_block`
/// four-output spends each. With `high_overlap` the spends propagate to Bob
/// before mining (≥95% mempool overlap); otherwise they are submitted in the
/// same instant as the block, so the compact sketch cannot cover them. Byte
/// counters are measured over the block-relay segments only (the funding
/// blocks and tx gossip are excluded from both modes alike).
RelayStats run_relay(btcnet::BlockRelayMode mode, bool high_overlap, int blocks,
                     int txs_per_block) {
  util::Simulation sim;
  btcnet::Network net{sim, util::Rng(31)};
  const auto& params = bitcoin::ChainParams::regtest();
  obs::MetricsRegistry metrics;
  btcnet::NodeOptions options;
  options.relay_mode = mode;
  btcnet::BitcoinNode alice{net, params, options};
  btcnet::BitcoinNode bob{net, params, options};
  btcnet::Miner miner{alice, 1.0, util::Rng(32)};
  alice.set_metrics(&metrics);
  bob.set_metrics(&metrics);
  net.set_metrics(&metrics);
  net.connect(alice.id(), bob.id());
  sim.run();

  auto key = crypto::PrivateKey::from_seed(util::Bytes{3, 1, 4});
  auto key_hash = crypto::hash160(key.public_key().compressed());
  std::uint32_t fund_time = params.genesis_header.time;
  std::uint64_t tag = 9000;

  auto fund = [&] {
    fund_time += 600;
    auto block = chain::build_child_block(alice.tree(), alice.best_tip(), fund_time,
                                          bitcoin::p2pkh_script(key_hash), 50 * bitcoin::kCoin,
                                          {}, tag++);
    alice.submit_block(block);
    sim.run_until(sim.now() + 600 * util::kSecond);  // stay ahead of future drift
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  };
  auto spend = [&](const bitcoin::OutPoint& coin) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = coin;
    tx.inputs.push_back(in);
    for (int i = 0; i < 4; ++i) {
      tx.outputs.push_back(bitcoin::TxOut{12 * bitcoin::kCoin, bitcoin::p2pkh_script(key_hash)});
    }
    auto lock = bitcoin::p2pkh_script(key_hash);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key.sign(digest), key.public_key().compressed());
    return tx;
  };
  auto relay_bytes = [&] {
    return counter(metrics, "net.bytes.cmpctblock") + counter(metrics, "net.bytes.getblocktxn") +
           counter(metrics, "net.bytes.blocktxn") + counter(metrics, "net.bytes.getdata") +
           counter(metrics, "net.bytes.block");
  };

  RelayStats stats;
  for (int b = 0; b < blocks; ++b) {
    std::vector<bitcoin::OutPoint> coins;
    for (int i = 0; i < txs_per_block; ++i) coins.push_back(fund());
    for (const auto& coin : coins) alice.submit_tx(spend(coin));
    if (high_overlap) sim.run();  // gossip the spends to Bob first

    std::uint64_t full0 = counter(metrics, "net.bytes.block");
    std::uint64_t compact0 = relay_bytes();
    miner.mine_one();
    sim.run();
    stats.full_bytes += counter(metrics, "net.bytes.block") - full0;
    stats.compact_bytes += relay_bytes() - compact0;
  }
  stats.decode_success = counter(metrics, "cmpct.decode_success");
  stats.peel_failure = counter(metrics, "cmpct.peel_failure");
  stats.fallback_getblocktxn = counter(metrics, "cmpct.fallback.getblocktxn");
  stats.fallback_full = counter(metrics, "cmpct.fallback.full");
  return stats;
}

void run_relay_table() {
  std::printf("\n--- compact block relay: bytes on the wire (full vs IBLT sketch) ---\n");
  const int kBlocks = 3;
  const int kTxs = 100;

  std::string json = "{\n  \"bench\": \"relay\",\n  \"blocks\": " + std::to_string(kBlocks) +
                     ",\n  \"txs_per_block\": " + std::to_string(kTxs) +
                     ",\n  \"scenarios\": [\n";
  std::printf("%-14s %-14s %-14s %-8s %-22s\n", "scenario", "full bytes", "compact bytes",
              "ratio", "fallbacks (gbt/full)");
  bool first = true;
  for (bool high_overlap : {true, false}) {
    auto full = run_relay(btcnet::BlockRelayMode::kFull, high_overlap, kBlocks, kTxs);
    auto compact = run_relay(btcnet::BlockRelayMode::kCompact, high_overlap, kBlocks, kTxs);
    double ratio = full.full_bytes == 0
                       ? 0.0
                       : static_cast<double>(compact.compact_bytes) /
                             static_cast<double>(full.full_bytes);
    const char* name = high_overlap ? "high_overlap" : "low_overlap";
    std::printf("%-14s %-14llu %-14llu %-8.3f %llu/%llu\n", name,
                static_cast<unsigned long long>(full.full_bytes),
                static_cast<unsigned long long>(compact.compact_bytes), ratio,
                static_cast<unsigned long long>(compact.fallback_getblocktxn),
                static_cast<unsigned long long>(compact.fallback_full));
    char entry[512];
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"full_bytes\": %llu, \"compact_bytes\": %llu, "
                  "\"compact_over_full\": %.4f, \"decode_success\": %llu, "
                  "\"peel_failure\": %llu, \"fallback_getblocktxn\": %llu, "
                  "\"fallback_full\": %llu}",
                  name, static_cast<unsigned long long>(full.full_bytes),
                  static_cast<unsigned long long>(compact.compact_bytes), ratio,
                  static_cast<unsigned long long>(compact.decode_success),
                  static_cast<unsigned long long>(compact.peel_failure),
                  static_cast<unsigned long long>(compact.fallback_getblocktxn),
                  static_cast<unsigned long long>(compact.fallback_full));
    json += (first ? "" : ",\n");
    json += entry;
    first = false;
  }
  json += "\n  ]\n}\n";
  std::printf("\nAt high overlap the sketch replaces the block body; at low overlap the\n");
  std::printf("peel fails detectably and getblocktxn/blocktxn (or a full getdata) fill in.\n\n");
  std::printf("--- bench_relay JSON report ---\n%s", json.c_str());
  if (const char* path = std::getenv("ICBTC_METRICS_JSON"); path != nullptr) {
    if (std::FILE* f = std::fopen(path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("(written to %s)\n", path);
    }
  }
}

bitcoin::Block make_bench_block(std::size_t txs) {
  bitcoin::Block block;
  bitcoin::Transaction coinbase;
  bitcoin::TxIn cin;
  cin.prevout = bitcoin::OutPoint::null();
  cin.script_sig = bitcoin::Bytes{0x01};
  coinbase.inputs.push_back(cin);
  coinbase.outputs.push_back(bitcoin::TxOut{50 * bitcoin::kCoin, bitcoin::Bytes{0x6a}});
  block.transactions.push_back(coinbase);
  for (std::size_t i = 0; i < txs; ++i) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    for (std::size_t b = 0; b < 8; ++b) {
      in.prevout.txid.data[b] = static_cast<std::uint8_t>((i + 1) >> (8 * b));
    }
    tx.inputs.push_back(in);
    for (int o = 0; o < 4; ++o) {
      tx.outputs.push_back(
          bitcoin::TxOut{static_cast<bitcoin::Amount>(1000 + i), bitcoin::Bytes{0x76, 0xa9}});
    }
    block.transactions.push_back(tx);
  }
  block.header.merkle_root = block.compute_merkle_root();
  return block;
}

void BM_CompactEncode(benchmark::State& state) {
  auto block = make_bench_block(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconcile::CompactBlockCodec::encode(block, 16));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompactEncode)->Arg(16)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_CompactDecode(benchmark::State& state) {
  auto block = make_bench_block(static_cast<std::size_t>(state.range(0)));
  auto cb = reconcile::CompactBlockCodec::encode(block, 16);
  std::vector<const bitcoin::Transaction*> pool;
  for (std::size_t i = 1; i < block.transactions.size(); ++i) {
    pool.push_back(&block.transactions[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconcile::CompactBlockCodec::decode(cb, pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompactDecode)->Arg(16)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_relay_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
