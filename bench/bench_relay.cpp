// Transaction and block relay (src/reconcile): two wire-bandwidth studies.
//
// 1. Compact block relay — bytes for full-block relay vs IBLT-sketch compact
//    relay at high and low mempool overlap (compact ≤ 25% of full is the
//    acceptance target; low overlap exercises the getblocktxn/full fallbacks).
// 2. Continuous mempool reconciliation — announcement bytes for per-peer inv
//    flooding vs Erlay-style sketch reconciliation on a 100-node network
//    under a sustained transaction stream. The acceptance gate is a ≥ 3x
//    announcement-bandwidth reduction; the process exits nonzero (and the CI
//    bench-smoke job fails) if reconciliation misses the gate or either mode
//    fails to converge every node's mempool.
//
// ICBTC_BENCH_QUICK=1 shrinks the transaction stream for CI smoke runs.
// Every number derives from the seeded simulation — two runs of the same
// build produce byte-identical JSON reports.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bitcoin/script.h"
#include "btcnet/miner.h"
#include "btcnet/node.h"
#include "crypto/ripemd160.h"
#include "obs/metrics.h"
#include "reconcile/compact_block.h"

namespace {

using namespace icbtc;

std::uint64_t counter(const obs::MetricsRegistry& metrics, const std::string& name) {
  auto it = metrics.counters().find(name);
  return it == metrics.counters().end() ? 0 : it->second.value();
}

struct RelayStats {
  std::uint64_t full_bytes = 0;     // bytes of MsgBlock during block relay
  std::uint64_t compact_bytes = 0;  // cmpctblock + getblocktxn + blocktxn + getdata + block
  std::uint64_t decode_success = 0;
  std::uint64_t peel_failure = 0;
  std::uint64_t fallback_getblocktxn = 0;
  std::uint64_t fallback_full = 0;
};

/// Two connected nodes; Alice mines `blocks` blocks of `txs_per_block`
/// four-output spends each. With `high_overlap` the spends propagate to Bob
/// before mining (≥95% mempool overlap); otherwise they are submitted in the
/// same instant as the block, so the compact sketch cannot cover them. Byte
/// counters are measured over the block-relay segments only (the funding
/// blocks and tx gossip are excluded from both modes alike).
RelayStats run_relay(btcnet::BlockRelayMode mode, bool high_overlap, int blocks,
                     int txs_per_block) {
  util::Simulation sim;
  btcnet::Network net{sim, util::Rng(31)};
  const auto& params = bitcoin::ChainParams::regtest();
  obs::MetricsRegistry metrics;
  btcnet::NodeOptions options;
  options.relay_mode = mode;
  btcnet::BitcoinNode alice{net, params, options};
  btcnet::BitcoinNode bob{net, params, options};
  btcnet::Miner miner{alice, 1.0, util::Rng(32)};
  alice.set_metrics(&metrics);
  bob.set_metrics(&metrics);
  net.set_metrics(&metrics);
  net.connect(alice.id(), bob.id());
  sim.run();

  auto key = crypto::PrivateKey::from_seed(util::Bytes{3, 1, 4});
  auto key_hash = crypto::hash160(key.public_key().compressed());
  std::uint32_t fund_time = params.genesis_header.time;
  std::uint64_t tag = 9000;

  auto fund = [&] {
    fund_time += 600;
    auto block = chain::build_child_block(alice.tree(), alice.best_tip(), fund_time,
                                          bitcoin::p2pkh_script(key_hash), 50 * bitcoin::kCoin,
                                          {}, tag++);
    alice.submit_block(block);
    sim.run_until(sim.now() + 600 * util::kSecond);  // stay ahead of future drift
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  };
  auto spend = [&](const bitcoin::OutPoint& coin) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = coin;
    tx.inputs.push_back(in);
    for (int i = 0; i < 4; ++i) {
      tx.outputs.push_back(bitcoin::TxOut{12 * bitcoin::kCoin, bitcoin::p2pkh_script(key_hash)});
    }
    auto lock = bitcoin::p2pkh_script(key_hash);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key.sign(digest), key.public_key().compressed());
    return tx;
  };
  auto relay_bytes = [&] {
    return counter(metrics, "net.bytes.cmpctblock") + counter(metrics, "net.bytes.getblocktxn") +
           counter(metrics, "net.bytes.blocktxn") + counter(metrics, "net.bytes.getdata") +
           counter(metrics, "net.bytes.block");
  };

  RelayStats stats;
  for (int b = 0; b < blocks; ++b) {
    std::vector<bitcoin::OutPoint> coins;
    for (int i = 0; i < txs_per_block; ++i) coins.push_back(fund());
    for (const auto& coin : coins) alice.submit_tx(spend(coin));
    if (high_overlap) sim.run();  // gossip the spends to Bob first

    std::uint64_t full0 = counter(metrics, "net.bytes.block");
    std::uint64_t compact0 = relay_bytes();
    miner.mine_one();
    sim.run();
    stats.full_bytes += counter(metrics, "net.bytes.block") - full0;
    stats.compact_bytes += relay_bytes() - compact0;
  }
  stats.decode_success = counter(metrics, "cmpct.decode_success");
  stats.peel_failure = counter(metrics, "cmpct.peel_failure");
  stats.fallback_getblocktxn = counter(metrics, "cmpct.fallback.getblocktxn");
  stats.fallback_full = counter(metrics, "cmpct.fallback.full");
  return stats;
}

/// Returns the `"scenarios"` JSON fragment for the report.
std::string run_relay_table() {
  std::printf("\n--- compact block relay: bytes on the wire (full vs IBLT sketch) ---\n");
  const int kBlocks = 3;
  const int kTxs = 100;

  std::string json = "  \"blocks\": " + std::to_string(kBlocks) +
                     ",\n  \"txs_per_block\": " + std::to_string(kTxs) +
                     ",\n  \"scenarios\": [\n";
  std::printf("%-14s %-14s %-14s %-8s %-22s\n", "scenario", "full bytes", "compact bytes",
              "ratio", "fallbacks (gbt/full)");
  bool first = true;
  for (bool high_overlap : {true, false}) {
    auto full = run_relay(btcnet::BlockRelayMode::kFull, high_overlap, kBlocks, kTxs);
    auto compact = run_relay(btcnet::BlockRelayMode::kCompact, high_overlap, kBlocks, kTxs);
    double ratio = full.full_bytes == 0
                       ? 0.0
                       : static_cast<double>(compact.compact_bytes) /
                             static_cast<double>(full.full_bytes);
    const char* name = high_overlap ? "high_overlap" : "low_overlap";
    std::printf("%-14s %-14llu %-14llu %-8.3f %llu/%llu\n", name,
                static_cast<unsigned long long>(full.full_bytes),
                static_cast<unsigned long long>(compact.compact_bytes), ratio,
                static_cast<unsigned long long>(compact.fallback_getblocktxn),
                static_cast<unsigned long long>(compact.fallback_full));
    char entry[512];
    std::snprintf(entry, sizeof(entry),
                  "    {\"name\": \"%s\", \"full_bytes\": %llu, \"compact_bytes\": %llu, "
                  "\"compact_over_full\": %.4f, \"decode_success\": %llu, "
                  "\"peel_failure\": %llu, \"fallback_getblocktxn\": %llu, "
                  "\"fallback_full\": %llu}",
                  name, static_cast<unsigned long long>(full.full_bytes),
                  static_cast<unsigned long long>(compact.compact_bytes), ratio,
                  static_cast<unsigned long long>(compact.decode_success),
                  static_cast<unsigned long long>(compact.peel_failure),
                  static_cast<unsigned long long>(compact.fallback_getblocktxn),
                  static_cast<unsigned long long>(compact.fallback_full));
    json += (first ? "" : ",\n");
    json += entry;
    first = false;
  }
  json += "\n  ]";
  std::printf("\nAt high overlap the sketch replaces the block body; at low overlap the\n");
  std::printf("peel fails detectably and getblocktxn/blocktxn (or a full getdata) fill in.\n");
  return json;
}

// ---------------------------------------------------------------------------
// Continuous mempool reconciliation: flooding vs Erlay-style sketches.
// ---------------------------------------------------------------------------

struct ContinuousStats {
  std::uint64_t announce_bytes = 0;  // inv + reconsketch + recondiff + reconfinalize
  std::uint64_t announce_msgs = 0;
  std::uint64_t inv_bytes = 0;
  std::uint64_t sketch_bytes = 0;
  std::uint64_t diff_bytes = 0;
  std::uint64_t finalize_bytes = 0;
  std::uint64_t rounds = 0;
  std::uint64_t bisections = 0;
  std::uint64_t full_inv_fallbacks = 0;
  std::uint64_t fanout_invs = 0;
  bool converged = true;
};

/// A 100-node network shaped like the one Erlay assumes — sparse but well
/// connected (a ring with three chord strides gives every node 8 links and a
/// diameter of ~3). `txs` distinct-fee spends are injected in bursts from
/// seeded random origins, several per reconciliation interval, and the run
/// drains to quiescence. Announcement bandwidth is everything spent deciding
/// *which* transactions a peer is missing: inv traffic plus the three
/// reconciliation message types. getdata and tx payload bytes are excluded
/// from both modes alike — both modes move every transaction exactly once.
ContinuousStats run_continuous(btcnet::TxRelayMode mode, int peers, int txs) {
  util::Simulation sim;
  btcnet::Network net{sim, util::Rng(41)};
  const auto& params = bitcoin::ChainParams::regtest();
  obs::MetricsRegistry metrics;
  btcnet::NodeOptions options;
  options.tx_relay_mode = mode;
  // Pure reconciliation, on Erlay's cadence: a fanout inv cascade would cover
  // nearly the whole network by itself (paying flooding's per-announcement
  // price), and a short interval spends a sketch's fixed cost on a handful of
  // transactions. An 8s interval lets each round carry a large batch, which
  // is where sketch amortisation wins.
  options.flood_fanout = 0;
  options.recon_interval = 8 * util::kSecond;
  std::vector<std::unique_ptr<btcnet::BitcoinNode>> nodes;
  nodes.reserve(static_cast<std::size_t>(peers));
  for (int i = 0; i < peers; ++i) {
    nodes.push_back(std::make_unique<btcnet::BitcoinNode>(net, params, options));
    nodes.back()->set_metrics(&metrics);
  }
  net.set_metrics(&metrics);
  for (int i = 0; i < peers; ++i) {
    for (int step : {1, 7, 19, 43}) {
      net.connect(nodes[static_cast<std::size_t>(i)]->id(),
                  nodes[static_cast<std::size_t>((i + step) % peers)]->id());
    }
  }
  sim.run();

  auto key = crypto::PrivateKey::from_seed(util::Bytes{3, 1, 4});
  auto key_hash = crypto::hash160(key.public_key().compressed());
  std::uint32_t fund_time = params.genesis_header.time;
  std::uint64_t tag = 7000;
  auto fund = [&] {
    fund_time += 600;
    auto block = chain::build_child_block(nodes[0]->tree(), nodes[0]->best_tip(), fund_time,
                                          bitcoin::p2pkh_script(key_hash), 50 * bitcoin::kCoin,
                                          {}, tag++);
    nodes[0]->submit_block(block);
    sim.run_until(sim.now() + 600 * util::kSecond);  // stay ahead of future drift
    return bitcoin::OutPoint{block.transactions[0].txid(), 0};
  };
  auto spend = [&](const bitcoin::OutPoint& coin, int i) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout = coin;
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{49 * bitcoin::kCoin - i * 1000,
                                        bitcoin::p2pkh_script(key_hash)});
    auto lock = bitcoin::p2pkh_script(key_hash);
    auto digest = bitcoin::legacy_sighash(tx, 0, lock);
    tx.inputs[0].script_sig =
        bitcoin::p2pkh_script_sig(key.sign(digest), key.public_key().compressed());
    return tx;
  };

  std::vector<bitcoin::OutPoint> coins;
  for (int i = 0; i < txs; ++i) coins.push_back(fund());
  sim.run();

  auto announce_bytes = [&] {
    return counter(metrics, "net.bytes.inv") + counter(metrics, "net.bytes.reconsketch") +
           counter(metrics, "net.bytes.recondiff") + counter(metrics, "net.bytes.reconfinalize");
  };
  auto announce_msgs = [&] {
    return counter(metrics, "net.msg.inv") + counter(metrics, "net.msg.reconsketch") +
           counter(metrics, "net.msg.recondiff") + counter(metrics, "net.msg.reconfinalize");
  };
  // Snapshot after funding: the deltas below exclude block-relay invs.
  std::uint64_t bytes0 = announce_bytes();
  std::uint64_t msgs0 = announce_msgs();
  std::uint64_t inv0 = counter(metrics, "net.bytes.inv");

  util::Rng origins(43);
  std::vector<util::Hash256> txids;
  for (int i = 0; i < txs; ++i) {
    auto tx = spend(coins[static_cast<std::size_t>(i)], i);
    txids.push_back(tx.txid());
    nodes[origins.next_below(static_cast<std::uint64_t>(peers))]->submit_tx(tx);
    // A sustained stream of 16 tx/s: arrivals span several reconciliation
    // intervals, so sketches carry steady batches the divergence estimator
    // can track rather than one untrackable spike, and the per-round fixed
    // costs amortise over dense diffs.
    if ((i + 1) % 4 == 0) sim.run_until(sim.now() + util::kSecond / 4);
  }
  sim.run();

  ContinuousStats stats;
  stats.announce_bytes = announce_bytes() - bytes0;
  stats.announce_msgs = announce_msgs() - msgs0;
  stats.inv_bytes = counter(metrics, "net.bytes.inv") - inv0;
  stats.sketch_bytes = counter(metrics, "net.bytes.reconsketch");
  stats.diff_bytes = counter(metrics, "net.bytes.recondiff");
  stats.finalize_bytes = counter(metrics, "net.bytes.reconfinalize");
  stats.rounds = counter(metrics, "relay.rounds_completed");
  stats.bisections = counter(metrics, "relay.bisections");
  stats.full_inv_fallbacks = counter(metrics, "relay.full_inv_fallbacks");
  stats.fanout_invs = counter(metrics, "relay.fanout_invs");
  for (const auto& node : nodes) {
    for (const auto& txid : txids) {
      if (!node->in_mempool(txid)) stats.converged = false;
    }
  }
  return stats;
}

/// Returns {json fragment, gate passed}.
std::pair<std::string, bool> run_continuous_table() {
  const bool quick = std::getenv("ICBTC_BENCH_QUICK") != nullptr;
  const int kPeers = 100;
  // The gate needs a sustained stream: with too few transactions the fixed
  // per-round sketch cost dominates and neither mode's asymptotic behaviour
  // shows. 128 is past the knee; the full run doubles it.
  const int kTxs = quick ? 256 : 512;
  std::printf("\n--- continuous tx relay: announcement bytes (flood vs reconciliation) ---\n");
  std::printf("peers=%d txs=%d%s\n", kPeers, kTxs, quick ? " (quick)" : "");

  auto flood = run_continuous(btcnet::TxRelayMode::kFlood, kPeers, kTxs);
  auto recon = run_continuous(btcnet::TxRelayMode::kReconcile, kPeers, kTxs);
  double reduction = recon.announce_bytes == 0
                         ? 0.0
                         : static_cast<double>(flood.announce_bytes) /
                               static_cast<double>(recon.announce_bytes);

  std::printf("%-12s %-16s %-16s %-14s\n", "mode", "announce bytes", "announce msgs",
              "bytes per tx");
  std::printf("%-12s %-16llu %-16llu %-14llu\n", "flood",
              static_cast<unsigned long long>(flood.announce_bytes),
              static_cast<unsigned long long>(flood.announce_msgs),
              static_cast<unsigned long long>(flood.announce_bytes / kTxs));
  std::printf("%-12s %-16llu %-16llu %-14llu\n", "reconcile",
              static_cast<unsigned long long>(recon.announce_bytes),
              static_cast<unsigned long long>(recon.announce_msgs),
              static_cast<unsigned long long>(recon.announce_bytes / kTxs));
  std::printf("reduction: %.2fx  (rounds %llu, bisections %llu, full-inv %llu, fanout invs %llu)\n",
              reduction, static_cast<unsigned long long>(recon.rounds),
              static_cast<unsigned long long>(recon.bisections),
              static_cast<unsigned long long>(recon.full_inv_fallbacks),
              static_cast<unsigned long long>(recon.fanout_invs));
  std::printf("reconcile breakdown: inv %llu, sketch %llu, diff %llu, finalize %llu\n",
              static_cast<unsigned long long>(recon.inv_bytes),
              static_cast<unsigned long long>(recon.sketch_bytes),
              static_cast<unsigned long long>(recon.diff_bytes),
              static_cast<unsigned long long>(recon.finalize_bytes));

  char entry[768];
  std::snprintf(entry, sizeof(entry),
                "  \"continuous\": {\"peers\": %d, \"txs\": %d, "
                "\"flood_announce_bytes\": %llu, \"flood_announce_msgs\": %llu, "
                "\"recon_announce_bytes\": %llu, \"recon_announce_msgs\": %llu, "
                "\"flood_over_recon\": %.4f, \"recon_rounds\": %llu, "
                "\"recon_bisections\": %llu, \"recon_full_inv_fallbacks\": %llu, "
                "\"recon_fanout_invs\": %llu, \"flood_converged\": %s, "
                "\"recon_converged\": %s}",
                kPeers, kTxs, static_cast<unsigned long long>(flood.announce_bytes),
                static_cast<unsigned long long>(flood.announce_msgs),
                static_cast<unsigned long long>(recon.announce_bytes),
                static_cast<unsigned long long>(recon.announce_msgs), reduction,
                static_cast<unsigned long long>(recon.rounds),
                static_cast<unsigned long long>(recon.bisections),
                static_cast<unsigned long long>(recon.full_inv_fallbacks),
                static_cast<unsigned long long>(recon.fanout_invs),
                flood.converged ? "true" : "false", recon.converged ? "true" : "false");

  bool pass = true;
  if (!flood.converged || !recon.converged) {
    std::printf("GATE FAILED: a relay mode did not converge every mempool "
                "(flood %s, reconcile %s)\n",
                flood.converged ? "ok" : "diverged", recon.converged ? "ok" : "diverged");
    pass = false;
  }
  if (reduction < 3.0) {
    std::printf("GATE FAILED: announcement-bandwidth reduction %.2fx < 3x\n", reduction);
    pass = false;
  }
  return {std::string(entry), pass};
}

bitcoin::Block make_bench_block(std::size_t txs) {
  bitcoin::Block block;
  bitcoin::Transaction coinbase;
  bitcoin::TxIn cin;
  cin.prevout = bitcoin::OutPoint::null();
  cin.script_sig = bitcoin::Bytes{0x01};
  coinbase.inputs.push_back(cin);
  coinbase.outputs.push_back(bitcoin::TxOut{50 * bitcoin::kCoin, bitcoin::Bytes{0x6a}});
  block.transactions.push_back(coinbase);
  for (std::size_t i = 0; i < txs; ++i) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    for (std::size_t b = 0; b < 8; ++b) {
      in.prevout.txid.data[b] = static_cast<std::uint8_t>((i + 1) >> (8 * b));
    }
    tx.inputs.push_back(in);
    for (int o = 0; o < 4; ++o) {
      tx.outputs.push_back(
          bitcoin::TxOut{static_cast<bitcoin::Amount>(1000 + i), bitcoin::Bytes{0x76, 0xa9}});
    }
    block.transactions.push_back(tx);
  }
  block.header.merkle_root = block.compute_merkle_root();
  return block;
}

void BM_CompactEncode(benchmark::State& state) {
  auto block = make_bench_block(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconcile::CompactBlockCodec::encode(block, 16));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompactEncode)->Arg(16)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_CompactDecode(benchmark::State& state) {
  auto block = make_bench_block(static_cast<std::size_t>(state.range(0)));
  auto cb = reconcile::CompactBlockCodec::encode(block, 16);
  std::vector<const bitcoin::Transaction*> pool;
  for (std::size_t i = 1; i < block.transactions.size(); ++i) {
    pool.push_back(&block.transactions[i]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconcile::CompactBlockCodec::decode(cb, pool));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompactDecode)->Arg(16)->Arg(128)->Arg(1024)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  std::string scenarios = run_relay_table();
  auto [continuous, pass] = run_continuous_table();

  std::string json = "{\n  \"bench\": \"relay\",\n" + scenarios + ",\n" + continuous + "\n}\n";
  std::printf("\n--- bench_relay JSON report ---\n%s", json.c_str());
  if (const char* path = std::getenv("ICBTC_METRICS_JSON"); path != nullptr) {
    if (std::FILE* f = std::fopen(path, "w"); f != nullptr) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("(written to %s)\n", path);
    }
  }
  if (!pass) return 1;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
