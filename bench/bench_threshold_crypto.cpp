// Threshold-signature microbenchmarks: the cost of the cryptographic
// operations behind sign_with_ecdsa / sign_with_schnorr at IC subnet sizes
// (t = 2f+1 of n = 3f+1). The paper treats the protocols as black boxes;
// these benches characterize this library's implementations, including the
// presignature (quadruple) dealing the IC amortizes in the background.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "crypto/sha256.h"
#include "crypto/threshold_ecdsa.h"
#include "crypto/threshold_schnorr.h"

namespace {

using namespace icbtc;
using namespace icbtc::crypto;

util::Hash256 test_digest() { return Sha256::hash(util::Bytes{1, 2, 3}); }

void BM_EcdsaSign(benchmark::State& state) {
  PrivateKey key = PrivateKey::from_seed(util::Bytes{1});
  auto digest = test_digest();
  for (auto _ : state) benchmark::DoNotOptimize(key.sign(digest));
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  PrivateKey key = PrivateKey::from_seed(util::Bytes{1});
  auto digest = test_digest();
  auto sig = key.sign(digest);
  auto pub = key.public_key();
  for (auto _ : state) benchmark::DoNotOptimize(verify(pub, digest, sig));
}
BENCHMARK(BM_EcdsaVerify);

void BM_SchnorrSign(benchmark::State& state) {
  U256 secret(123456789);
  auto digest = test_digest();
  for (auto _ : state) benchmark::DoNotOptimize(schnorr_sign(secret, digest));
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  U256 secret(123456789);
  auto digest = test_digest();
  auto sig = schnorr_sign(secret, digest);
  auto pub = SchnorrKeyPair::from_secret(secret).pubkey;
  for (auto _ : state) benchmark::DoNotOptimize(schnorr_verify(pub, digest, sig));
}
BENCHMARK(BM_SchnorrVerify);

// Threshold signing end-to-end (deal presignature + partials + combine) at
// subnet sizes 13 and 40.
void BM_ThresholdEcdsaSign(benchmark::State& state) {
  std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t t = 2 * ((n - 1) / 3) + 1;
  ThresholdEcdsaService service(t, n, 42);
  auto digest = test_digest();
  for (auto _ : state) benchmark::DoNotOptimize(service.sign(digest, {}));
  state.counters["threshold"] = t;
}
BENCHMARK(BM_ThresholdEcdsaSign)->Arg(13)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_ThresholdSchnorrSign(benchmark::State& state) {
  std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t t = 2 * ((n - 1) / 3) + 1;
  ThresholdSchnorrService service(t, n, 42);
  auto digest = test_digest();
  for (auto _ : state) benchmark::DoNotOptimize(service.sign(digest));
  state.counters["threshold"] = t;
}
BENCHMARK(BM_ThresholdSchnorrSign)->Arg(13)->Arg(40)->Unit(benchmark::kMillisecond);

// Presignature dealing alone (the background "quadruple" work).
void BM_EcdsaPresignature(benchmark::State& state) {
  std::uint32_t n = static_cast<std::uint32_t>(state.range(0));
  std::uint32_t t = 2 * ((n - 1) / 3) + 1;
  util::Rng rng(7);
  ThresholdEcdsaDealer dealer(t, n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(dealer.deal_presignature(rng));
}
BENCHMARK(BM_EcdsaPresignature)->Arg(13)->Arg(40)->Unit(benchmark::kMillisecond);

// Partial-signature computation (per-replica cost) and combination.
void BM_PartialSignatureAndCombine(benchmark::State& state) {
  util::Rng rng(8);
  ThresholdEcdsaDealer dealer(9, 13, rng);
  auto digest = test_digest();
  for (auto _ : state) {
    auto [pre, shares] = dealer.deal_presignature(rng);
    std::vector<PartialSignature> partials;
    for (std::uint32_t i = 0; i < 9; ++i) {
      partials.push_back(compute_partial_signature(shares[i], pre, U256(0), digest));
    }
    benchmark::DoNotOptimize(
        combine_partial_signatures(partials, pre, dealer.master_public_key(), digest));
  }
}
BENCHMARK(BM_PartialSignatureAndCombine)->Unit(benchmark::kMillisecond);

void BM_DerivedKey(benchmark::State& state) {
  ThresholdEcdsaService service(9, 13, 9);
  std::uint8_t i = 0;
  for (auto _ : state) {
    DerivationPath path = {{++i, 0x01}};
    benchmark::DoNotOptimize(service.public_key(path));
  }
}
BENCHMARK(BM_DerivedKey);

}  // namespace

int main(int argc, char** argv) {
  std::printf("\n--- Threshold-signature costs at IC subnet sizes (t = 2f+1 of n) ---\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
