// Stable-memory persistence bench: the flat UTXO arena vs the node-map
// backend at scale, and the checkpoint/restore subsystem's wall-clock cost.
//
// Section 1 loads 1M+ synthetic UTXOs (quick mode: ~150k) with a realistic
// script-reuse profile into a UtxoIndex per backend and reports resident
// bytes/UTXO and ingest throughput. Gate: the map backend must hold the same
// set in >= 2x the arena's resident bytes — the subsystem's headline claim.
//
// Section 2 grows a real canister to the target UTXO count, times
// write_checkpoint / from_checkpoint, restores at a different shard count
// and backend (digest + meter equality gated), and writes the checkpoint to
// two files whose byte identity is gated here and `cmp`-ed again by CI.
//
// Writes BENCH_checkpoint.json (override with ICBTC_BENCH_OUT) plus
// BENCH_checkpoint_a.ckpt / BENCH_checkpoint_b.ckpt next to it.
// ICBTC_BENCH_QUICK=1 shrinks the workload for CI. Exits nonzero when any
// gate fails.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bitcoin/script.h"
#include "canister/bitcoin_canister.h"
#include "persist/checkpoint.h"
#include "util/rng.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

using bench::quick_mode;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct LoadResult {
  std::string backend;
  double seconds = 0;
  double utxos_per_s = 0;
  std::uint64_t live_bytes = 0;
  std::uint64_t resident_bytes = 0;
  double bytes_per_utxo = 0;
};

/// Loads `n` synthetic UTXOs (25-byte p2pkh scripts, a quarter as many
/// distinct addresses as UTXOs — realistic reuse) through the bulk-restore
/// path and reports the backend's exact byte accounting.
LoadResult load_synthetic(persist::UtxoBackend backend, std::size_t n) {
  canister::UtxoIndex index(
      canister::InstructionCosts{},
      canister::UtxoIndex::ShardConfig{8, /*snapshot_reads=*/true, backend});

  // Pre-generate the workload so the timer sees only the index.
  std::size_t n_scripts = n / 4;
  std::vector<util::Bytes> scripts;
  scripts.reserve(n_scripts);
  util::Rng rng(20260807);
  for (std::size_t i = 0; i < n_scripts; ++i) {
    util::Hash160 h;
    auto bytes = rng.next_bytes(20);
    std::copy(bytes.begin(), bytes.end(), h.data.begin());
    scripts.push_back(bitcoin::p2pkh_script(h));
  }

  auto start = std::chrono::steady_clock::now();
  bitcoin::OutPoint outpoint;
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic unique outpoints without hashing: counter-filled txid.
    std::memcpy(outpoint.txid.data.data(), &i, sizeof(i));
    outpoint.txid.data[31] = static_cast<std::uint8_t>(i >> 56 | 1);
    outpoint.vout = static_cast<std::uint32_t>(i & 3);
    index.load_entry(outpoint, static_cast<bitcoin::Amount>(546 + (i % 100000)),
                     static_cast<int>(i / 2300), scripts[i % n_scripts]);
  }
  index.finish_load();

  LoadResult r;
  r.backend = persist::to_string(backend);
  r.seconds = seconds_since(start);
  r.utxos_per_s = static_cast<double>(n) / r.seconds;
  r.live_bytes = index.live_bytes();
  r.resident_bytes = index.resident_bytes();
  r.bytes_per_utxo = static_cast<double>(r.resident_bytes) / static_cast<double>(n);
  std::printf("%-6s load %9zu utxos  %7.3f s  %10.0f utxos/s  %6.1f resident B/utxo\n",
              r.backend.c_str(), n, r.seconds, r.utxos_per_s, r.bytes_per_utxo);
  return r;
}

int run() {
  const bool quick = quick_mode();
  const std::size_t n_utxos = quick ? 150'000 : 1'100'000;
  bool ok = true;

  std::printf("--- flat arena vs node-map backend, %zu synthetic UTXOs ---\n", n_utxos);
  LoadResult arena = load_synthetic(persist::UtxoBackend::kArena, n_utxos);
  LoadResult map = load_synthetic(persist::UtxoBackend::kMap, n_utxos);
  double residency_ratio =
      static_cast<double>(map.resident_bytes) / static_cast<double>(arena.resident_bytes);
  std::printf("map/arena resident ratio: %.2fx (gate: >= 2.0x)\n", residency_ratio);
  if (residency_ratio < 2.0) {
    std::fprintf(stderr, "FAIL: residency ratio %.2fx below the 2x gate\n", residency_ratio);
    ok = false;
  }

  // ---- Section 2: canister-level checkpoint / restore -----------------
  std::printf("--- canister checkpoint/restore ---\n");
  const auto& params = bitcoin::ChainParams::regtest();
  canister::CanisterConfig config = canister::CanisterConfig::for_params(params);
  config.utxo_shards = 8;
  canister::BitcoinCanister canister(params, config);
  ChainFeeder feeder(canister, /*seed=*/20250807);
  BlockShape shape;
  shape.transactions = 25;
  shape.inputs_per_tx = 1;
  shape.outputs_per_tx = 28;
  shape.jitter = 0.0;
  auto grow_start = std::chrono::steady_clock::now();
  while (canister.utxo_count() < n_utxos) feeder.step(shape);
  double grow_s = seconds_since(grow_start);
  std::printf("grew canister to %zu utxos over %d blocks in %.2f s\n", canister.utxo_count(),
              feeder.height(), grow_s);

  auto write_start = std::chrono::steady_clock::now();
  util::Bytes checkpoint = canister.write_checkpoint();
  double write_s = seconds_since(write_start);

  canister::CanisterConfig restore_config = config;
  restore_config.utxo_shards = 3;
  restore_config.utxo_backend = persist::UtxoBackend::kMap;
  auto restore_start = std::chrono::steady_clock::now();
  auto restored = canister::BitcoinCanister::from_checkpoint(params, restore_config, checkpoint);
  double restore_s = seconds_since(restore_start);
  std::printf("checkpoint %.1f MiB  write %.3f s  restore(3 shards, map) %.3f s\n",
              static_cast<double>(checkpoint.size()) / (1024.0 * 1024.0), write_s, restore_s);

  if (restored.utxo_digest() != canister.utxo_digest()) {
    std::fprintf(stderr, "FAIL: restored UTXO digest differs from writer\n");
    ok = false;
  }
  if (restored.meter().count() != canister.meter().count()) {
    std::fprintf(stderr, "FAIL: restored meter total differs from writer\n");
    ok = false;
  }

  // Byte-identity gate: two checkpoint files of the same state must be
  // identical (CI `cmp`s the same pair again).
  canister.checkpoint("BENCH_checkpoint_a.ckpt");
  canister.checkpoint("BENCH_checkpoint_b.ckpt");
  if (persist::read_checkpoint_file("BENCH_checkpoint_a.ckpt") !=
      persist::read_checkpoint_file("BENCH_checkpoint_b.ckpt")) {
    std::fprintf(stderr, "FAIL: repeated checkpoints are not byte-identical\n");
    ok = false;
  }

  const char* out_path = std::getenv("ICBTC_BENCH_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_checkpoint.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"workload\": {\"synthetic_utxos\": %zu, \"quick\": %s},\n", n_utxos,
               quick ? "true" : "false");
  std::fprintf(out, "  \"backends\": [\n");
  for (const LoadResult* r : {&arena, &map}) {
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"load_seconds\": %.6f, \"utxos_per_s\": %.0f, "
                 "\"live_bytes\": %llu, \"resident_bytes\": %llu, \"bytes_per_utxo\": %.2f}%s\n",
                 r->backend.c_str(), r->seconds, r->utxos_per_s,
                 static_cast<unsigned long long>(r->live_bytes),
                 static_cast<unsigned long long>(r->resident_bytes), r->bytes_per_utxo,
                 r == &arena ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"residency_ratio_map_over_arena\": %.3f,\n", residency_ratio);
  std::fprintf(out,
               "  \"checkpoint\": {\"canister_utxos\": %zu, \"bytes\": %zu, "
               "\"write_seconds\": %.6f, \"restore_seconds\": %.6f, "
               "\"restore_shards\": 3, \"restore_backend\": \"map\", "
               "\"digest_match\": %s, \"meter_match\": %s},\n",
               canister.utxo_count(), checkpoint.size(), write_s, restore_s,
               restored.utxo_digest() == canister.utxo_digest() ? "true" : "false",
               restored.meter().count() == canister.meter().count() ? "true" : "false");
  std::fprintf(out, "  \"gates_pass\": %s\n", ok ? "true" : "false");
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
