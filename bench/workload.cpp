#include "workload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bitcoin/script.h"

namespace icbtc::bench {

ChainFeeder::ChainFeeder(canister::BitcoinCanister& canister, std::uint64_t seed)
    : canister_(&canister),
      rng_(seed),
      tree_(canister.params(), canister.params().genesis_header),
      tip_(canister.params().genesis_header.hash()),
      time_(canister.params().genesis_header.time) {}

void ChainFeeder::add_tracked_script(const util::Bytes& script, double weight) {
  tracked_.emplace_back(script, weight);
}

util::Bytes ChainFeeder::random_script() {
  double roll = rng_.next_double();
  for (const auto& [script, weight] : tracked_) {
    if (roll < weight) return script;
    roll -= weight;
  }
  util::Hash160 h;
  auto bytes = rng_.next_bytes(20);
  std::copy(bytes.begin(), bytes.end(), h.data.begin());
  return bitcoin::p2pkh_script(h);
}

ChainFeeder::BlockResult ChainFeeder::step(const BlockShape& shape) {
  auto jittered = [&](std::size_t base) -> std::size_t {
    if (base == 0) return 0;
    double factor = 1.0 + shape.jitter * (2.0 * rng_.next_double() - 1.0);
    return std::max<std::size_t>(1, static_cast<std::size_t>(static_cast<double>(base) * factor));
  };

  BlockResult result;
  std::size_t n_tx = jittered(shape.transactions);
  std::vector<bitcoin::Transaction> txs;
  txs.reserve(n_tx);
  for (std::size_t t = 0; t < n_tx; ++t) {
    bitcoin::Transaction tx;
    std::size_t n_in = jittered(shape.inputs_per_tx);
    for (std::size_t i = 0; i < n_in && !spendable_.empty(); ++i) {
      std::size_t pick = static_cast<std::size_t>(rng_.next_below(spendable_.size()));
      bitcoin::TxIn in;
      in.prevout = spendable_[pick];
      spendable_[pick] = spendable_.back();
      spendable_.pop_back();
      tx.inputs.push_back(in);
      ++result.inputs;
    }
    if (tx.inputs.empty()) {
      // Nothing spendable yet: synthesize an input from an old txid. The
      // canister does not validate transactions (§III-C), so this mirrors
      // real ingestion cost even on a young chain.
      bitcoin::TxIn in;
      in.prevout.txid = rng_.next_hash();
      in.prevout.vout = 0;
      tx.inputs.push_back(in);
      ++result.inputs;
    }
    std::size_t n_out = jittered(shape.outputs_per_tx);
    for (std::size_t o = 0; o < n_out; ++o) {
      tx.outputs.push_back(
          bitcoin::TxOut{static_cast<bitcoin::Amount>(1000 + rng_.next_below(100000)),
                         random_script()});
      ++result.outputs;
    }
    // Unique-ify the txid via locktime in case shapes collide.
    tx.lock_time = static_cast<std::uint32_t>(tag_);
    txs.push_back(std::move(tx));
  }

  time_ += 600;
  bitcoin::Block block = chain::build_child_block(
      tree_, tip_, time_, bitcoin::p2pkh_script(util::Hash160{}), bitcoin::block_subsidy(0),
      std::move(txs), tag_++);
  tip_ = block.hash();
  ++height_;
  result.height = height_;
  if (tree_.accept(block.header, static_cast<std::int64_t>(time_) + 10000) !=
      chain::AcceptResult::kAccepted) {
    throw std::logic_error("ChainFeeder: generated block rejected by builder tree");
  }

  // Remember this block's outputs as future spendables.
  for (const auto& tx : block.transactions) {
    util::Hash256 txid = tx.txid();
    for (std::uint32_t v = 0; v < tx.outputs.size(); ++v) {
      spendable_.push_back(bitcoin::OutPoint{txid, v});
    }
  }
  // Cap the pool so memory stays bounded on long runs.
  if (spendable_.size() > 300000) {
    spendable_.erase(spendable_.begin(),
                     spendable_.begin() + static_cast<std::ptrdiff_t>(spendable_.size() / 2));
  }

  if (tap_ != nullptr) tap_->push_back(block.serialize());

  adapter::AdapterResponse response;
  response.blocks.emplace_back(std::move(block), tree_.find(tip_)->header);
  canister_->process_response(response, static_cast<std::int64_t>(time_) + 10000);
  return result;
}

std::vector<std::size_t> paper_address_skew(std::size_t n, util::Rng& rng) {
  std::vector<std::size_t> counts;
  counts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double roll = rng.next_double();
    if (roll < 0.517) {
      counts.push_back(1 + rng.next_below(49));       // < 50
    } else if (roll < 0.517 + 0.159) {
      counts.push_back(50 + rng.next_below(150));     // 50-199
    } else if (roll < 0.517 + 0.159 + 0.113) {
      counts.push_back(200 + rng.next_below(800));    // 200-999
    } else {
      counts.push_back(1000 + rng.next_below(500));  // >= 1000
    }
  }
  return counts;
}

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  std::size_t lo = static_cast<std::size_t>(rank);
  std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

bool quick_mode() {
  const char* quick = std::getenv("ICBTC_BENCH_QUICK");
  return quick != nullptr && std::strcmp(quick, "0") != 0;
}

bool write_file(const char* env_var, const char* fallback, const std::string& body,
                const char* what) {
  const char* path = std::getenv(env_var);
  if (path == nullptr || *path == '\0') path = fallback;
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s (%s)\n", path, what);
    return false;
  }
  std::fwrite(body.data(), 1, body.size(), out);
  std::fclose(out);
  std::printf("wrote %s (%s)\n", path, what);
  return true;
}

SeriesSummary summarize_series(std::string name, std::vector<double>& series) {
  std::sort(series.begin(), series.end());
  SeriesSummary s;
  s.name = std::move(name);
  s.n = series.size();
  if (!series.empty()) {
    s.min = percentile(series, 0);
    s.p50 = percentile(series, 50);
    s.p90 = percentile(series, 90);
    s.p99 = percentile(series, 99);
    s.max = percentile(series, 100);
  }
  return s;
}

void print_series_seconds(const SeriesSummary& s) {
  std::printf("  %-28s min %7.3fs  median %7.3fs  p90 %7.3fs  max %7.3fs\n", s.name.c_str(),
              s.min / 1e6, s.p50 / 1e6, s.p90 / 1e6, s.max / 1e6);
}

}  // namespace icbtc::bench
