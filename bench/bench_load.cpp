// Million-user open-loop load harness: drives the SLO observability layer
// (src/obs/slo) with the paper's three public endpoints over a synthetic
// address population with a Zipfian hot set, sweeping offered rate to find
// the saturation throughput.
//
// Pipeline:
//   1. Warm-up: a real btcnet harness + ic::Subnet + BitcoinIntegration runs
//      the consensus round loop for a few virtual minutes so the
//      "adapter.handle_request" and "ic.round_dispatch" SLO endpoints see
//      their production traffic shape.
//   2. Population: a direct canister is dealt `population` distinct
//      addresses — a hot set with the paper's UTXO-count skew plus a long
//      one-UTXO cold tail — through synthetic blocks, ingested with the
//      shared thread pool attached to the metrics registry (pool.*).
//   3. Service model: per-(endpoint, address) service times are the
//      canister's metered instructions at 2e9/s plus a fixed dispatch
//      overhead, measured once and memoized — deterministic by construction.
//   4. Sweep: seeded open-loop Poisson schedules (coordinated omission
//      impossible by construction) at rising fractions of the estimated
//      capacity run through a virtual-time multi-server FIFO queue (one
//      server per replica); the highest point that is non-saturated AND
//      inside the p99 target (SLO-constrained capacity) becomes the
//      operating point whose latencies feed the "load.<endpoint>" SLO
//      endpoints. A closed-loop control arm at the over-capacity point
//      demonstrates how coordinated omission understates p99.
//   5. Report: BENCH_load.json (ICBTC_BENCH_OUT) and a full metrics
//      snapshot incl. slo.* gauges (ICBTC_METRICS_JSON, default
//      BENCH_load_metrics.json). Both are byte-identical across runs —
//      nothing wall-clock-dependent is written to either artifact.
//
// The SLO-tracker overhead gate (<5% throughput delta on vs. off) runs in
// full mode only and reports to stdout + exit code, never into the JSON.
// ICBTC_BENCH_QUICK=1 shrinks the population for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "bitcoin/script.h"
#include "btcnet/harness.h"
#include "canister/integration.h"
#include "ic/subnet.h"
#include "load_sim.h"
#include "obs/slo.h"
#include "parallel/thread_pool.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

/// The IC execution layer's deterministic-time model: 2e9 instructions/s.
constexpr double kInstructionsPerUs = 2000.0;
/// Fixed per-request dispatch overhead (network + scheduling) added on top
/// of the metered execution time; keeps tiny queries from implying absurd
/// capacity. Matches the order of the subnet's query scheduling slice.
constexpr double kDispatchOverheadUs = 30.0;

struct LoadParams {
  std::size_t population = 0;  // distinct addresses (hot + cold)
  std::size_t hot = 0;         // hot set with the paper's UTXO-count skew
  std::size_t requests_per_point = 0;
  std::size_t servers = 0;  // query-serving replicas
  std::uint64_t seed = 0;
  bool quick = false;
};

// ---------------------------------------------------------------------------
// Phase 1: warm-up — populate the adapter/subnet SLO endpoints with the
// production traffic shape (consensus rounds pulling blocks from btcnet).
// ---------------------------------------------------------------------------

void run_warmup(obs::MetricsRegistry& registry, obs::SloTracker& slo, std::uint64_t seed) {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  util::Simulation sim;
  btcnet::BitcoinNetworkConfig netcfg;
  netcfg.num_nodes = 8;
  netcfg.num_miners = 1;
  netcfg.ipv6_fraction = 1.0;
  btcnet::BitcoinNetworkHarness harness(sim, params, netcfg, seed);
  sim.run();
  auto* miner = harness.miners()[0];
  for (int i = 0; i < 12; ++i) {
    sim.run_until(sim.now() + 700 * util::kSecond);
    miner->mine_one();
  }
  sim.run();

  ic::Subnet subnet(sim, ic::SubnetConfig{}, seed + 1);
  canister::IntegrationConfig icfg;
  icfg.canister = canister::CanisterConfig::for_params(params);
  canister::BitcoinIntegration integration(subnet, harness.network(), params, icfg, seed + 2);
  subnet.set_metrics(&registry);
  subnet.set_slo(&slo);
  integration.canister().set_metrics(&registry);
  for (std::size_t i = 0; i < integration.num_adapters(); ++i) {
    integration.adapter_of(static_cast<std::uint32_t>(i)).set_metrics(&registry);
  }
  integration.set_slo(&slo);
  subnet.start();
  integration.start();
  sim.run_until(sim.now() + 180 * util::kSecond);
  integration.stop();
  subnet.stop();
  std::printf("warm-up: %llu consensus rounds, canister height %d\n",
              static_cast<unsigned long long>(subnet.round()),
              integration.canister().tip_height());
}

// ---------------------------------------------------------------------------
// Phase 2: population — one canister holding `population` distinct
// addresses: `hot` with the paper's skew, the rest with one UTXO each.
// ---------------------------------------------------------------------------

struct Population {
  std::unique_ptr<canister::BitcoinCanister> canister;
  std::vector<std::string> addresses;  // hot ranks first, then the cold tail
  std::size_t hot = 0;
  std::size_t utxos_dealt = 0;
};

Population build_population(const LoadParams& p) {
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  auto config = canister::CanisterConfig::for_params(params);
  config.stability_delta = 12;  // blocks stabilize while dealing continues
  Population pop;
  pop.canister = std::make_unique<canister::BitcoinCanister>(params, config);
  pop.hot = p.hot;
  auto& canister = *pop.canister;

  util::Rng rng(p.seed + 100);
  auto hot_counts = paper_address_skew(p.hot, rng);

  pop.addresses.reserve(p.population);
  std::vector<util::Bytes> scripts;
  scripts.reserve(p.population);
  for (std::size_t i = 0; i < p.population; ++i) {
    util::Hash160 h;
    auto hash = rng.next_hash();
    std::copy(hash.data.begin(), hash.data.begin() + 20, h.data.begin());
    scripts.push_back(bitcoin::p2pkh_script(h));
    pop.addresses.push_back(bitcoin::p2pkh_address(h, params.network));
  }

  // Deal through synthetic blocks: big transactions, big blocks — the cost
  // that matters here is the UTXO-set population, not block realism.
  chain::HeaderTree tree(params, params.genesis_header);
  util::Hash256 tip = params.genesis_header.hash();
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 707000;
  std::vector<bitcoin::Transaction> batch;
  bitcoin::Transaction tx;
  auto flush_block = [&] {
    if (!batch.empty()) {
      time += 600;
      auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                            bitcoin::block_subsidy(0), std::move(batch), tag++);
      batch.clear();
      tip = block.hash();
      tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
      adapter::AdapterResponse response;
      response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
      canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
    }
  };
  auto emit_output = [&](std::size_t addr) {
    if (tx.inputs.empty()) {
      bitcoin::TxIn in;
      in.prevout.txid = rng.next_hash();  // unvalidated input (§III-C)
      tx.inputs.push_back(in);
    }
    tx.outputs.push_back(bitcoin::TxOut{1000, scripts[addr]});
    ++pop.utxos_dealt;
    if (tx.outputs.size() >= 200) {
      batch.push_back(std::move(tx));
      tx = bitcoin::Transaction{};
      if (batch.size() >= 25) flush_block();
    }
  };
  for (std::size_t a = 0; a < p.hot; ++a) {
    for (std::size_t u = 0; u < hot_counts[a]; ++u) emit_output(a);
  }
  for (std::size_t a = p.hot; a < p.population; ++a) emit_output(a);
  if (!tx.outputs.empty()) batch.push_back(std::move(tx));
  flush_block();
  // Pad past the stability window so the whole population is stable.
  for (int i = 0; i < config.stability_delta + 2; ++i) {
    time += 600;
    auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                          bitcoin::block_subsidy(0), {}, tag++);
    tip = block.hash();
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    adapter::AdapterResponse response;
    response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
    canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
  }
  return pop;
}

// ---------------------------------------------------------------------------
// Phase 3: deterministic per-(endpoint, address) service-time model.
// ---------------------------------------------------------------------------

struct ServiceModel {
  canister::BitcoinCanister* canister = nullptr;
  const std::vector<std::string>* addresses = nullptr;
  util::Bytes raw_tx;
  std::vector<double> utxos_us;    // -1 = not yet measured
  std::vector<double> balance_us;  // -1 = not yet measured
  double send_us = -1.0;
  std::uint64_t measurements = 0;

  explicit ServiceModel(canister::BitcoinCanister& c, const std::vector<std::string>& addrs)
      : canister(&c),
        addresses(&addrs),
        utxos_us(addrs.size(), -1.0),
        balance_us(addrs.size(), -1.0) {
    bitcoin::Transaction tx;
    bitcoin::TxIn in;
    in.prevout.txid = util::Hash256{};
    tx.inputs.push_back(in);
    tx.outputs.push_back(bitcoin::TxOut{1000, bitcoin::p2pkh_script(util::Hash160{})});
    raw_tx = tx.serialize();
  }

  double measure(const std::function<void()>& call) {
    ic::InstructionMeter::Segment segment(canister->meter());
    call();
    ++measurements;
    return static_cast<double>(segment.sample()) / kInstructionsPerUs;
  }

  double operator()(const LoadRequest& req) {
    switch (req.endpoint) {
      case LoadEndpoint::kGetUtxos:
        if (utxos_us[req.address] < 0) {
          utxos_us[req.address] = measure([&] {
            canister::GetUtxosRequest r;
            r.address = (*addresses)[req.address];
            canister->get_utxos(r);
          });
        }
        return kDispatchOverheadUs + utxos_us[req.address];
      case LoadEndpoint::kGetBalance:
        if (balance_us[req.address] < 0) {
          balance_us[req.address] =
              measure([&] { canister->get_balance((*addresses)[req.address]); });
        }
        return kDispatchOverheadUs + balance_us[req.address];
      case LoadEndpoint::kSendTransaction:
        if (send_us < 0) {
          send_us = measure([&] { canister->send_transaction(raw_tx); });
        }
        return kDispatchOverheadUs + send_us;
    }
    return kDispatchOverheadUs;
  }
};

// ---------------------------------------------------------------------------
// Phase 4: rate sweep.
// ---------------------------------------------------------------------------

struct Tail {
  double p50 = 0, p99 = 0, p999 = 0, max = 0;
  std::size_t n = 0;
};

Tail tail_of(std::vector<double>& series) {
  std::sort(series.begin(), series.end());
  Tail t;
  t.n = series.size();
  if (!series.empty()) {
    t.p50 = percentile(series, 50);
    t.p99 = percentile(series, 99);
    t.p999 = percentile(series, 99.9);
    t.max = series.back();
  }
  return t;
}

struct SweepPoint {
  double target_rps = 0;
  double offered_rps = 0;
  double achieved_rps = 0;
  Tail tail;
  bool saturated = false;
};

// ---------------------------------------------------------------------------
// SLO-tracker overhead gate: wall-clock only, never in the JSON artifacts.
// ---------------------------------------------------------------------------

bool run_overhead_gate(canister::BitcoinCanister& canister,
                       const std::vector<std::string>& addresses, std::size_t hot) {
  const std::size_t kCalls = 60'000;
  auto run_once = [&](obs::SloTracker* tracker) {
    canister.set_slo(tracker);
    auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < kCalls; ++i) {
      canister.get_balance(addresses[i % hot]);
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };
  obs::SloTracker gate_tracker;
  // One untimed pass per arm warms the caches; the arms then interleave
  // (off/on per rep) so machine drift cannot bias one arm, and best-of-5
  // minima filter scheduling noise from each.
  run_once(nullptr);
  run_once(&gate_tracker);
  double off = 1e300, on = 1e300;
  for (int rep = 0; rep < 5; ++rep) {
    off = std::min(off, run_once(nullptr));
    on = std::min(on, run_once(&gate_tracker));
  }
  canister.set_slo(nullptr);
  double delta_pct = (on - off) / off * 100.0;
  std::printf("slo overhead gate: off %.3fs on %.3fs delta %+.2f%% (gate < 5%%): %s\n", off, on,
              delta_pct, delta_pct < 5.0 ? "OK" : "FAIL");
  return delta_pct < 5.0;
}

int run() {
  LoadParams p;
  p.quick = quick_mode();
  p.population = p.quick ? 20'000 : 1'000'000;
  p.hot = p.quick ? 256 : 2048;
  p.requests_per_point = p.quick ? 6'000 : 150'000;
  p.servers = ic::SubnetConfig{}.num_nodes;
  p.seed = 20250807;

  std::printf("=== bench_load: open-loop SLO load harness%s ===\n",
              p.quick ? " (quick)" : "");
  std::printf("population %zu addresses (%zu hot, Zipf s=0.99), %zu requests/point, %zu replicas\n\n",
              p.population, p.hot, p.requests_per_point, p.servers);

  obs::MetricsRegistry registry;
  obs::SloTracker slo;

  run_warmup(registry, slo, p.seed);

  parallel::set_shared_pool(3);
  parallel::shared_pool()->set_metrics(&registry);

  auto deal_start = std::chrono::steady_clock::now();
  Population pop = build_population(p);
  double deal_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - deal_start).count();
  std::printf("population: %zu UTXOs dealt across %zu addresses (%.1fs host, %zu stable)\n",
              pop.utxos_dealt, pop.addresses.size(), deal_s, pop.canister->utxo_count());

  auto& canister = *pop.canister;
  canister.set_metrics(&registry);
  canister.set_slo(&slo);

  // Deterministic service model + capacity estimate from a probe schedule.
  ServiceModel service(canister, pop.addresses);
  ZipfSampler zipf(p.population, 0.99);
  LoadMix mix;
  util::Rng probe_rng(p.seed + 200);
  auto probe = make_open_loop_schedule(1000.0, std::min<std::size_t>(p.requests_per_point, 20'000),
                                       mix, zipf, probe_rng);
  double probe_sum = 0;
  for (const auto& req : probe) probe_sum += service(req);
  double mean_service_us = probe_sum / static_cast<double>(probe.size());
  double capacity_rps = static_cast<double>(p.servers) / mean_service_us * 1e6;
  std::printf("service model: mean %.1fus/request -> estimated capacity %.0f rps (%zu replicas)\n\n",
              mean_service_us, capacity_rps, p.servers);

  constexpr double kSweep[] = {0.3, 0.5, 0.7, 0.85, 1.0, 1.15};
  std::vector<SweepPoint> sweep;
  std::vector<LoadRequest> last_schedule;
  std::vector<double> last_latencies;
  std::printf("%-12s %-12s %-12s %10s %10s %10s %10s  %s\n", "target rps", "offered rps",
              "achieved", "p50 us", "p99 us", "p99.9 us", "max us", "state");
  for (std::size_t i = 0; i < std::size(kSweep); ++i) {
    double rate = capacity_rps * kSweep[i];
    util::Rng rng(p.seed * 1000003 + i);
    auto schedule = make_open_loop_schedule(rate, p.requests_per_point, mix, zipf, rng);
    auto result = simulate_open_loop(schedule, p.servers,
                                     [&](const LoadRequest& r) { return service(r); });
    SweepPoint point;
    point.target_rps = rate;
    point.offered_rps = result.offered_rps;
    point.achieved_rps = result.achieved_rps;
    point.saturated = result.achieved_rps < 0.95 * result.offered_rps;
    std::vector<double> latencies = result.latency_us;
    point.tail = tail_of(latencies);
    std::printf("%-12.0f %-12.0f %-12.0f %10.1f %10.1f %10.1f %10.1f  %s\n", point.target_rps,
                point.offered_rps, point.achieved_rps, point.tail.p50, point.tail.p99,
                point.tail.p999, point.tail.max, point.saturated ? "SATURATED" : "ok");
    sweep.push_back(point);
    last_schedule = std::move(schedule);
    last_latencies = std::move(result.latency_us);
  }

  // Targets sized to the service profile: a hot get_utxos page alone costs
  // ~150ms of modelled execution, so sub-100ms tail targets could never
  // hold; these bound the *queueing* the operating point may add on top.
  obs::SloTarget query_target;
  query_target.p50_us = 200'000;
  query_target.p99_us = 1'000'000;
  query_target.p999_us = 2'000'000;
  query_target.error_budget = 0.01;

  // Saturation throughput is the queue-theoretic ceiling; the operating
  // point is SLO-constrained capacity — the highest swept rate that is both
  // non-saturated and inside the p99 target. At the raw knee (~1.0x
  // capacity) an open-loop M/G/k queue already holds seconds of backlog, so
  // "non-saturated" alone would pick a point no operator would run at.
  double saturation_rps = 0;
  std::size_t operating_idx = 0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    saturation_rps = std::max(saturation_rps, sweep[i].achieved_rps);
    if (!sweep[i].saturated &&
        sweep[i].tail.p99 <= static_cast<double>(query_target.p99_us)) {
      operating_idx = i;
    }
  }
  std::printf("\nsaturation throughput: %.0f rps; slo-constrained operating point: "
              "%.0f rps offered\n",
              saturation_rps, sweep[operating_idx].offered_rps);

  // Re-run the operating point to split latencies per endpoint and feed the
  // load.* SLO endpoints (cached service times make this cheap).
  util::Rng op_rng(p.seed * 1000003 + operating_idx);
  auto op_schedule = make_open_loop_schedule(capacity_rps * kSweep[operating_idx],
                                             p.requests_per_point, mix, zipf, op_rng);
  auto op_result = simulate_open_loop(op_schedule, p.servers,
                                      [&](const LoadRequest& r) { return service(r); });
  obs::SloTracker::Endpoint* load_eps[kNumLoadEndpoints] = {
      &slo.endpoint("load.get_utxos", query_target),
      &slo.endpoint("load.get_balance", query_target),
      &slo.endpoint("load.send_transaction", query_target),
  };
  std::vector<double> by_endpoint[kNumLoadEndpoints];
  for (std::size_t i = 0; i < op_schedule.size(); ++i) {
    std::size_t e = static_cast<std::size_t>(op_schedule[i].endpoint);
    by_endpoint[e].push_back(op_result.latency_us[i]);
    load_eps[e]->record(static_cast<std::uint64_t>(std::llround(op_result.latency_us[i])));
  }
  slo.roll_window();

  Tail op_tails[kNumLoadEndpoints];
  for (std::size_t e = 0; e < kNumLoadEndpoints; ++e) op_tails[e] = tail_of(by_endpoint[e]);

  // Coordinated-omission demonstration at the over-capacity point: the
  // closed-loop control's own backpressure hides the queueing the open-loop
  // measurement correctly reports.
  auto closed = simulate_closed_loop(last_schedule, p.servers,
                                     [&](const LoadRequest& r) { return service(r); });
  Tail open_tail = tail_of(last_latencies);
  std::vector<double> closed_lat = closed.latency_us;
  Tail closed_tail = tail_of(closed_lat);
  double understatement =
      closed_tail.p99 > 0 ? open_tail.p99 / closed_tail.p99 : 0;
  std::printf("\ncoordinated omission (at %.0f rps offered): open-loop p99 %.1fus vs "
              "closed-loop p99 %.1fus (understated %.1fx)\n",
              sweep.back().offered_rps, open_tail.p99, closed_tail.p99, understatement);

  // SLO verdicts over everything the tracker saw: warm-up adapter/subnet
  // endpoints, canister endpoints, and the load.* operating point.
  std::printf("\n%-26s %10s %8s %10s %10s %10s  %s\n", "slo endpoint", "requests", "errors",
              "p50 us", "p99 us", "p99.9 us", "verdict");
  auto verdicts = slo.verdicts();
  for (const auto& v : verdicts) {
    std::printf("%-26s %10llu %8llu %10llu %10llu %10llu  %s\n", v.endpoint.c_str(),
                static_cast<unsigned long long>(v.requests),
                static_cast<unsigned long long>(v.errors),
                static_cast<unsigned long long>(v.p50_us),
                static_cast<unsigned long long>(v.p99_us),
                static_cast<unsigned long long>(v.p999_us), v.ok() ? "ok" : "VIOLATED");
  }

  // Pool instrumentation (satellite of the same PR): surfaced here and in
  // the metrics snapshot.
  std::printf("\npool: runs %llu, tasks_executed %llu, queue_depth %lld, workers_busy %lld\n",
              static_cast<unsigned long long>(registry.counter("pool.runs").value()),
              static_cast<unsigned long long>(registry.counter("pool.tasks_executed").value()),
              static_cast<long long>(registry.gauge("pool.queue_depth").value()),
              static_cast<long long>(registry.gauge("pool.workers_busy").value()));

  // ---- Artifacts: all numbers below are deterministic across runs. ----
  std::string body;
  char line[512];
  auto appendf = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof(line), fmt, args...);
    body += line;
  };
  appendf("{\n");
  appendf("  \"bench\": \"load\",\n");
  appendf("  \"workload\": {\"addresses\": %zu, \"hot\": %zu, \"zipf_s\": 0.99, "
          "\"requests_per_point\": %zu, \"servers\": %zu, \"utxos_dealt\": %zu, "
          "\"quick\": %s},\n",
          p.population, p.hot, p.requests_per_point, p.servers, pop.utxos_dealt,
          p.quick ? "true" : "false");
  appendf("  \"service_model\": {\"mean_service_us\": %.3f, \"capacity_estimate_rps\": %.1f, "
          "\"dispatch_overhead_us\": %.1f},\n",
          mean_service_us, capacity_rps, kDispatchOverheadUs);
  appendf("  \"sweep\": [\n");
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& s = sweep[i];
    appendf("    {\"target_rps\": %.1f, \"offered_rps\": %.1f, \"achieved_rps\": %.1f, "
            "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f, \"max_us\": %.1f, "
            "\"saturated\": %s}%s\n",
            s.target_rps, s.offered_rps, s.achieved_rps, s.tail.p50, s.tail.p99, s.tail.p999,
            s.tail.max, s.saturated ? "true" : "false", i + 1 < sweep.size() ? "," : "");
  }
  appendf("  ],\n");
  appendf("  \"saturation_rps\": %.1f,\n", saturation_rps);
  appendf("  \"operating_point\": {\"offered_rps\": %.1f, \"slo_constrained\": true, "
          "\"endpoints\": [\n",
          sweep[operating_idx].offered_rps);
  for (std::size_t e = 0; e < kNumLoadEndpoints; ++e) {
    appendf("    {\"endpoint\": \"%s\", \"requests\": %zu, \"p50_us\": %.1f, \"p99_us\": %.1f, "
            "\"p999_us\": %.1f, \"max_us\": %.1f}%s\n",
            to_string(static_cast<LoadEndpoint>(e)), op_tails[e].n, op_tails[e].p50,
            op_tails[e].p99, op_tails[e].p999, op_tails[e].max,
            e + 1 < kNumLoadEndpoints ? "," : "");
  }
  appendf("  ]},\n");
  appendf("  \"coordinated_omission\": {\"offered_rps\": %.1f, \"open_loop_p99_us\": %.1f, "
          "\"closed_loop_p99_us\": %.1f, \"understatement_factor\": %.2f},\n",
          sweep.back().offered_rps, open_tail.p99, closed_tail.p99, understatement);
  appendf("  \"slo\": [\n");
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const auto& v = verdicts[i];
    appendf("    {\"endpoint\": \"%s\", \"requests\": %llu, \"errors\": %llu, "
            "\"p50_us\": %llu, \"p99_us\": %llu, \"p999_us\": %llu, \"max_us\": %llu, "
            "\"budget_burn\": %.4f, \"ok\": %s}%s\n",
            v.endpoint.c_str(), static_cast<unsigned long long>(v.requests),
            static_cast<unsigned long long>(v.errors), static_cast<unsigned long long>(v.p50_us),
            static_cast<unsigned long long>(v.p99_us),
            static_cast<unsigned long long>(v.p999_us),
            static_cast<unsigned long long>(v.max_us), v.budget_burn,
            v.ok() ? "true" : "false", i + 1 < verdicts.size() ? "," : "");
  }
  appendf("  ],\n");
  appendf("  \"pool\": {\"runs\": %llu, \"tasks_executed\": %llu},\n",
          static_cast<unsigned long long>(registry.counter("pool.runs").value()),
          static_cast<unsigned long long>(registry.counter("pool.tasks_executed").value()));
  appendf("  \"deterministic\": true\n");
  appendf("}\n");

  bool ok = true;
  if (!write_file("ICBTC_BENCH_OUT", "BENCH_load.json", body, "load bench")) ok = false;

  slo.publish(registry);
  std::string metrics_json = obs::to_json(registry);
  if (!write_file("ICBTC_METRICS_JSON", "BENCH_load_metrics.json", metrics_json,
                  "load metrics snapshot")) {
    ok = false;
  }

  // Wall-clock gate last: its numbers go to stdout + exit code only, so the
  // artifacts above stay byte-identical across runs.
  if (p.quick) {
    std::printf("slo overhead gate: skipped (quick mode)\n");
  } else if (!run_overhead_gate(canister, pop.addresses, p.hot)) {
    ok = false;
  }

  parallel::shared_pool()->set_metrics(nullptr);
  parallel::set_shared_pool(0);
  return ok ? 0 : 1;
}

}  // namespace

int main() { return run(); }
