// Lemma IV.1 / Definition IV.1: eclipse resistance of the Bitcoin adapters.
//
// Each of the n adapters connects to ℓ uniformly random Bitcoin nodes; an
// adapter is eclipsed if all its peers are corrupt. The lemma claims the
// probability that ANY adapter is eclipsed is ~1 - e^{-n φ^ℓ} ≈ 0 when
// φ ≪ n^{-1/ℓ}. This bench runs Monte-Carlo trials with the real adapter
// connection logic on a simulated Bitcoin network, alongside the analytic
// model, for the paper's parameters (n=13, ℓ=5 → requirement φ ≪ 0.6).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "adapter/adapter.h"
#include "btcnet/harness.h"

namespace {

using namespace icbtc;

/// Analytic eclipse probability: 1 - (1 - φ^ℓ)^n.
double analytic_eclipse(double phi, std::size_t ell, std::size_t n) {
  return 1.0 - std::pow(1.0 - std::pow(phi, static_cast<double>(ell)),
                        static_cast<double>(n));
}

/// Fast Monte-Carlo on the connection model (uniform peer choice).
double model_eclipse(double phi, std::size_t ell, std::size_t n, std::size_t trials,
                     util::Rng& rng) {
  std::size_t eclipsed = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    bool any = false;
    for (std::size_t a = 0; a < n && !any; ++a) {
      bool all_corrupt = true;
      for (std::size_t k = 0; k < ell; ++k) {
        if (rng.next_double() >= phi) {
          all_corrupt = false;
          break;
        }
      }
      any = all_corrupt;
    }
    if (any) ++eclipsed;
  }
  return static_cast<double>(eclipsed) / static_cast<double>(trials);
}

/// Full-stack check: real adapters discovering and connecting on a simulated
/// Bitcoin network with a corrupt fraction φ. Returns the fraction of trials
/// in which some adapter ended up with only corrupt peers.
double stack_eclipse(double phi, std::size_t ell, std::size_t n, std::size_t trials,
                     std::uint64_t seed) {
  std::size_t eclipsed_trials = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    util::Simulation sim;
    const auto& params = bitcoin::ChainParams::regtest();
    btcnet::BitcoinNetworkConfig config;
    config.num_nodes = 60;
    config.connections_per_node = 3;
    config.num_dns_seeds = 4;
    config.num_miners = 0;
    config.ipv6_fraction = 1.0;
    btcnet::BitcoinNetworkHarness harness(sim, params, config, seed + t);
    sim.run();
    util::Rng rng(seed * 31 + t);
    // Mark a random φ-fraction of nodes corrupt.
    std::vector<bool> corrupt(config.num_nodes, false);
    for (std::size_t i = 0; i < config.num_nodes; ++i) corrupt[i] = rng.next_double() < phi;

    adapter::AdapterConfig adapter_config;
    adapter_config.outbound_connections = ell;
    adapter_config.addr_lower_threshold = 10;
    adapter_config.addr_upper_threshold = 40;
    std::vector<std::unique_ptr<adapter::BitcoinAdapter>> adapters;
    for (std::size_t a = 0; a < n; ++a) {
      adapters.push_back(std::make_unique<adapter::BitcoinAdapter>(
          harness.network(), params, adapter_config, rng.fork()));
      adapters.back()->start();
    }
    sim.run_until(sim.now() + 60 * util::kSecond);

    bool any_eclipsed = false;
    for (const auto& adapter : adapters) {
      auto peers = adapter->connected_peers();
      if (peers.empty()) continue;
      bool all_corrupt = true;
      for (auto peer : peers) {
        // Node ids are assigned 1..num_nodes in creation order.
        if (!corrupt[peer - 1]) all_corrupt = false;
      }
      if (all_corrupt) any_eclipsed = true;
    }
    if (any_eclipsed) ++eclipsed_trials;
  }
  return static_cast<double>(eclipsed_trials) / static_cast<double>(trials);
}

void run_lemma_iv1() {
  std::printf("\n--- Lemma IV.1: eclipse probability of the Bitcoin integration ---\n");
  std::printf("Definition IV.1 requirement: φ ≪ n^(-1/ℓ)");
  std::printf("  (n=13, ℓ=5 → φ ≪ %.2f)\n\n", std::pow(13.0, -0.2));

  util::Rng rng(2718);
  std::printf("%-6s %-4s %-6s %-14s %-14s %-14s\n", "n", "ℓ", "φ", "analytic",
              "model MC", "full stack");
  struct Case {
    std::size_t n, ell;
    double phi;
  };
  for (const Case& c : {Case{13, 5, 0.1}, Case{13, 5, 0.3}, Case{13, 5, 0.5},
                        Case{13, 5, 0.7}, Case{13, 3, 0.3}, Case{13, 8, 0.5},
                        Case{40, 5, 0.3}, Case{40, 5, 0.5}}) {
    double analytic = analytic_eclipse(c.phi, c.ell, c.n);
    double model = model_eclipse(c.phi, c.ell, c.n, 20000, rng);
    double stack = stack_eclipse(c.phi, c.ell, c.n, 20, 1000 + c.n * 17 + c.ell);
    std::printf("%-6zu %-4zu %-6.2f %-14.4g %-14.4g %-14.4g\n", c.n, c.ell, c.phi, analytic,
                model, stack);
  }
  std::printf("\nAs the lemma states: for φ below the n^(-1/ℓ) bound the probability\n");
  std::printf("vanishes; it only becomes material once φ approaches/exceeds the bound.\n\n");
}

void BM_ModelEclipseTrial(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model_eclipse(0.3, 5, 13, 100, rng));
  }
}
BENCHMARK(BM_ModelEclipseTrial);

}  // namespace

int main(int argc, char** argv) {
  run_lemma_iv1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
