// Figure 7: response time and instruction cost of get_balance / get_utxos.
//
// Reproduces the paper's mainnet experiment: 1000 addresses with the
// measured UTXO-count skew (517 <50, 159 50-199, 113 200-999, 211 >=1000),
// replicated and query calls for both endpoints, and the instruction count
// vs. response size for replicated UTXO requests, including the
// stable/unstable bifurcation.
//
// Every measured call runs under a tracer whose clock is derived from the
// canister's instruction meter (1 µs per 2000 instructions), so each call
// yields one RequestCostRecord — a Fig. 7 data point binding latency,
// instructions, and response bytes. The run writes:
//   BENCH_latency.json         summary percentiles   (ICBTC_BENCH_OUT)
//   BENCH_latency_trace.json   deterministic traces  (ICBTC_TRACE_OUT)
//   BENCH_latency_chrome.json  chrome://tracing view (ICBTC_CHROME_TRACE_OUT)
// ICBTC_BENCH_QUICK=1 shrinks the address population and skips the
// google-benchmark loops for CI smoke runs; the trace exports are
// byte-identical across identically configured runs.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bitcoin/script.h"
#include "ic/subnet.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

using bench::quick_mode;
using bench::write_file;

struct Fixture {
  static canister::CanisterConfig fixture_config(const bitcoin::ChainParams& params) {
    auto config = canister::CanisterConfig::for_params(params);
    // A deeper unstable window (closer to the mainnet δ=144 regime, scaled)
    // keeps the late-dealt addresses unstable for the Fig. 7 bifurcation.
    config.stability_delta = 40;
    return config;
  }

  util::Simulation sim;
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  canister::BitcoinCanister canister{params, fixture_config(params)};
  ic::Subnet subnet{sim, ic::SubnetConfig{}, 4242};
  std::vector<std::string> addresses;
  std::vector<std::size_t> expected_counts;
  util::Rng rng{777};

  explicit Fixture(std::size_t n_addresses, bool include_unstable = true) {
    ChainFeeder feeder(canister, 778);
    auto counts = paper_address_skew(n_addresses, rng);

    // Register every address and pour its UTXOs in through synthetic blocks:
    // each block pays a batch of outputs to the tracked addresses.
    std::vector<util::Bytes> scripts;
    for (std::size_t i = 0; i < n_addresses; ++i) {
      util::Hash160 h;
      auto bytes = rng.next_bytes(20);
      std::copy(bytes.begin(), bytes.end(), h.data.begin());
      scripts.push_back(bitcoin::p2pkh_script(h));
      addresses.push_back(bitcoin::p2pkh_address(h, params.network));
      expected_counts.push_back(counts[i]);
    }

    // Deal the UTXOs: blocks of direct payments (not via ChainFeeder's
    // random scripts, so counts are exact).
    chain::HeaderTree tree(params, params.genesis_header);
    util::Hash256 tip = params.genesis_header.hash();
    std::uint32_t time = params.genesis_header.time;
    std::uint64_t tag = 909000;
    std::size_t addr_idx = 0, dealt = 0;
    std::vector<bitcoin::Transaction> batch;
    int height = 0;
    auto flush = [&](bool more_to_come) {
      if (batch.empty() && more_to_come) return;
      time += 600;
      auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                            bitcoin::block_subsidy(0), std::move(batch), tag++);
      batch.clear();
      tip = block.hash();
      ++height;
      tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
      adapter::AdapterResponse response;
      response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
      canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
    };
    auto deal_until = [&](std::size_t limit) {
      while (addr_idx < limit) {
        bitcoin::Transaction tx;
        bitcoin::TxIn in;
        in.prevout.txid = rng.next_hash();  // unvalidated input (§III-C)
        tx.inputs.push_back(in);
        std::size_t want = expected_counts[addr_idx] - dealt;
        std::size_t chunk = std::min<std::size_t>(want, 200);
        for (std::size_t i = 0; i < chunk; ++i) {
          tx.outputs.push_back(bitcoin::TxOut{1000, scripts[addr_idx]});
        }
        dealt += chunk;
        if (dealt == expected_counts[addr_idx]) {
          ++addr_idx;
          dealt = 0;
        }
        batch.push_back(std::move(tx));
        if (batch.size() >= 20) flush(true);
      }
      flush(false);
    };
    auto pad_blocks = [&](int count) {
      for (int i = 0; i < count; ++i) {
        time += 600;
        auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                              bitcoin::block_subsidy(0), {}, tag++);
        tip = block.hash();
        tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
        adapter::AdapterResponse response;
        response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
        canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
      }
    };

    if (include_unstable) {
      // First 4/5 of the population migrates into the stable set; the last
      // 1/5 is dealt right at the tip so its UTXOs live in unstable blocks —
      // the two branches of Fig. 7's bifurcation.
      deal_until(n_addresses * 4 / 5);
      pad_blocks(canister.config().stability_delta + 2);
      deal_until(n_addresses);
      pad_blocks(1);
    } else {
      deal_until(n_addresses);
      pad_blocks(canister.config().stability_delta + 2);
    }
  }
};

struct Figure7Result {
  std::size_t addresses = 0;
  std::vector<bench::SeriesSummary> series;
  std::uint64_t min_instructions = 0;
  std::uint64_t max_instructions = 0;
  std::size_t requests_traced = 0;
  bool ok = true;
};

Figure7Result run_figure7() {
  const bool quick = quick_mode();
  const std::size_t n_addresses = quick ? 150 : 1000;

  std::printf("\n--- Figure 7: request latency and instruction cost ---\n");
  Fixture fx(n_addresses);
  std::printf("address population: %zu with the paper's UTXO-count skew%s\n\n", n_addresses,
              quick ? " (quick mode)" : "");

  // The tracer clock advances with the canister's instruction meter: 2000
  // instructions per microsecond — the IC's 2e9 instructions/s execution
  // rate. Everything downstream of it is deterministic.
  obs::TracerConfig tracer_config;
  tracer_config.event_capacity = 512;
  obs::Tracer tracer(tracer_config);
  ic::InstructionMeter& meter = fx.canister.meter();
  tracer.set_clock([&meter] { return static_cast<obs::TraceTime>(meter.count() / 2000); });
  fx.canister.set_tracer(&tracer);

  std::vector<double> rep_balance, rep_utxos, q_balance, q_utxos;
  struct UtxoCost {
    std::size_t response_utxos;
    std::uint64_t instructions;
    bool unstable_heavy;
  };
  std::vector<UtxoCost> utxo_costs;

  const auto& cost_model = fx.subnet.config().cost_model;
  for (std::size_t i = 0; i < fx.addresses.size(); ++i) {
    const auto& addr = fx.addresses[i];
    // Replicated + query get_balance. The root request span is ended at the
    // replicated latency; the nested canister.get_balance span ends at the
    // pure execution latency.
    {
      obs::ScopedSpan span(&tracer, "request.get_balance", "request");
      span.attr("kind", "replicated");
      ic::InstructionMeter::Segment segment(fx.canister.meter());
      auto balance = fx.canister.get_balance(addr);
      std::uint64_t instr = segment.sample();
      if (!balance.ok()) continue;
      util::SimTime latency = fx.subnet.sample_update_latency(instr);
      rep_balance.push_back(static_cast<double>(latency));
      q_balance.push_back(static_cast<double>(fx.subnet.sample_query_latency(instr)));
      span.attr("latency_us", latency);
      span.attr("instructions", instr);
      span.attr("response_bytes", static_cast<std::uint64_t>(16));
      tracer.record_request_cost(obs::RequestCostRecord{
          "get_balance", span.context().trace_id, latency, instr, 16,
          cost_model.update_cost_cycles(instr, 16)});
      span.end_at(span.start() + latency);
    }

    // Replicated + query get_utxos (first page).
    obs::ScopedSpan span(&tracer, "request.get_utxos", "request");
    span.attr("kind", "replicated");
    canister::GetUtxosRequest request;
    request.address = addr;
    ic::InstructionMeter::Segment segment(fx.canister.meter());
    auto utxos = fx.canister.get_utxos(request);
    std::uint64_t instr = segment.sample();
    if (!utxos.ok()) continue;
    util::SimTime latency = fx.subnet.sample_update_latency(instr);
    rep_utxos.push_back(static_cast<double>(latency));
    q_utxos.push_back(static_cast<double>(fx.subnet.sample_query_latency(instr)));

    std::size_t n = utxos.value.utxos.size();
    std::size_t response_bytes = 48 * n + 44;
    span.attr("latency_us", latency);
    span.attr("instructions", instr);
    span.attr("response_bytes", static_cast<std::uint64_t>(response_bytes));
    span.attr("utxos", static_cast<std::uint64_t>(n));
    tracer.record_request_cost(obs::RequestCostRecord{
        "get_utxos", span.context().trace_id, latency, instr,
        static_cast<std::uint64_t>(response_bytes),
        cost_model.update_cost_cycles(instr, response_bytes)});
    span.end_at(span.start() + latency);

    std::size_t unstable = 0;
    for (const auto& u : utxos.value.utxos) {
      if (u.height > fx.canister.anchor_height()) ++unstable;
    }
    utxo_costs.push_back(UtxoCost{n, instr, unstable * 2 > n});
  }
  fx.canister.set_tracer(nullptr);

  Figure7Result result;
  result.addresses = n_addresses;
  result.requests_traced = tracer.request_costs().size();

  std::printf("Left/centre panels — latency (replicated goes through consensus):\n");
  result.series.push_back(bench::summarize_series("replicated get_balance", rep_balance));
  result.series.push_back(bench::summarize_series("replicated get_utxos", rep_utxos));
  result.series.push_back(bench::summarize_series("query get_balance", q_balance));
  result.series.push_back(bench::summarize_series("query get_utxos", q_utxos));
  for (const auto& s : result.series) bench::print_series_seconds(s);
  std::printf("  (paper: replicated avg <10s / p90 18s; query medians 220ms & 310ms)\n\n");

  std::printf("Right panel — instructions for replicated UTXO requests vs response size:\n");
  std::printf("  %-16s %-22s %-22s\n", "response UTXOs", "stable-heavy (instr)",
              "unstable-heavy (instr)");
  for (std::size_t bucket_lo : {0ULL, 50ULL, 200ULL, 1000ULL}) {
    std::size_t bucket_hi = bucket_lo == 0 ? 50 : bucket_lo == 50 ? 200
                            : bucket_lo == 200 ? 1000 : SIZE_MAX;
    double stable_sum = 0, unstable_sum = 0;
    std::size_t stable_n = 0, unstable_n = 0;
    for (const auto& c : utxo_costs) {
      if (c.response_utxos < bucket_lo || c.response_utxos >= bucket_hi) continue;
      if (c.unstable_heavy) {
        unstable_sum += static_cast<double>(c.instructions);
        ++unstable_n;
      } else {
        stable_sum += static_cast<double>(c.instructions);
        ++stable_n;
      }
    }
    std::printf("  [%5zu,%5s) %14.2fM (n=%-4zu) %14.2fM (n=%-4zu)\n", bucket_lo,
                bucket_hi == SIZE_MAX ? "inf" : std::to_string(bucket_hi).c_str(),
                stable_n ? stable_sum / stable_n / 1e6 : 0.0, stable_n,
                unstable_n ? unstable_sum / unstable_n / 1e6 : 0.0, unstable_n);
  }
  auto [min_it, max_it] = std::minmax_element(
      utxo_costs.begin(), utxo_costs.end(),
      [](const UtxoCost& a, const UtxoCost& b) { return a.instructions < b.instructions; });
  result.min_instructions = min_it->instructions;
  result.max_instructions = max_it->instructions;
  std::printf("  range: %.2e .. %.2e instructions (paper: 5.84e6 .. 4.76e8)\n",
              static_cast<double>(result.min_instructions),
              static_cast<double>(result.max_instructions));
  std::printf("  bifurcation: unstable UTXOs are cheaper to fetch than stable-set UTXOs\n\n");

  result.ok &= write_file("ICBTC_TRACE_OUT", "BENCH_latency_trace.json",
                          obs::to_trace_json(tracer), "trace records");
  result.ok &= write_file("ICBTC_CHROME_TRACE_OUT", "BENCH_latency_chrome.json",
                          obs::to_chrome_trace(tracer), "chrome trace");
  return result;
}

bool write_bench_json(const Figure7Result& r) {
  const char* out_path = std::getenv("ICBTC_BENCH_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_latency.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
    return false;
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"workload\": {\"addresses\": %zu, \"quick\": %s},\n", r.addresses,
               quick_mode() ? "true" : "false");
  std::fprintf(out, "  \"requests_traced\": %zu,\n", r.requests_traced);
  std::fprintf(out, "  \"series\": [\n");
  for (std::size_t i = 0; i < r.series.size(); ++i) {
    const auto& s = r.series[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"n\": %zu, \"min_s\": %.6f, \"median_s\": %.6f, "
                 "\"p90_s\": %.6f, \"max_s\": %.6f}%s\n",
                 s.name.c_str(), s.n, s.min / 1e6, s.p50 / 1e6, s.p90 / 1e6, s.max / 1e6,
                 i + 1 < r.series.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n");
  std::fprintf(out, "  \"utxo_request_instructions\": {\"min\": %llu, \"max\": %llu}\n",
               static_cast<unsigned long long>(r.min_instructions),
               static_cast<unsigned long long>(r.max_instructions));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return true;
}

// --- Scan vs. indexed unstable reads -------------------------------------
//
// The delta index (src/canister/unstable_index.h) replaces the per-request
// unstable-chain scan with chain-ordered delta lookups. The contract: host
// wall-clock drops, responses and metered instruction counts are identical.
// This section replays one deep-unstable workload (δ-deep unstable chain,
// mainnet shape: 144 blocks) into a scan-mode and an indexed-mode canister,
// digests every response and meter sample, fails on any divergence, and
// writes BENCH_requests.json with the scan baseline column retained.

std::uint64_t mix64(std::uint64_t h, std::uint64_t v) {
  h ^= (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  return h * 0xff51afd7ed558ccdULL;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

struct ModesWorkload {
  std::vector<adapter::AdapterResponse> responses;  // identical bytes for both modes
  std::vector<std::string> addresses;
  std::int64_t now_s = 0;
  std::size_t unstable_blocks = 0;
  std::size_t total_outputs = 0;
  int stability_delta = 0;
};

/// A deep-unstable workload: every dealt block stays below δ of the tip, so
/// each request's view is assembled from the full unstable chain. Tracked
/// addresses follow the paper's UTXO-count skew (the >=1000 bucket forces
/// multi-page get_utxos chains); background transactions pay untracked
/// scripts so the scan path has realistic non-matching work, and some spend
/// earlier outputs to exercise the spent-outpoint filtering.
ModesWorkload build_modes_workload(bool quick) {
  ModesWorkload w;
  w.unstable_blocks = quick ? 24 : 144;
  w.stability_delta = static_cast<int>(w.unstable_blocks);  // nothing stabilizes
  const std::size_t n_addresses = quick ? 40 : 200;
  const std::size_t background_txs = quick ? 4 : 8;
  const std::size_t background_outputs = quick ? 25 : 60;

  util::Rng rng(4242);
  const auto& params = bitcoin::ChainParams::regtest();
  chain::HeaderTree tree(params, params.genesis_header);
  util::Hash256 tip = params.genesis_header.hash();
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 515000;

  auto counts = paper_address_skew(n_addresses, rng);
  std::vector<util::Bytes> scripts;
  for (std::size_t i = 0; i < n_addresses; ++i) {
    util::Hash160 h;
    auto bytes = rng.next_bytes(20);
    std::copy(bytes.begin(), bytes.end(), h.data.begin());
    scripts.push_back(bitcoin::p2pkh_script(h));
    w.addresses.push_back(bitcoin::p2pkh_address(h, params.network));
  }

  std::vector<std::size_t> remaining = counts;
  std::vector<bitcoin::OutPoint> spendable;
  for (std::size_t b = 0; b < w.unstable_blocks; ++b) {
    std::vector<bitcoin::Transaction> txs;
    // Tracked payments: spread every address's quota evenly across blocks.
    bitcoin::Transaction tracked;
    bitcoin::TxIn in;
    in.prevout.txid = rng.next_hash();
    tracked.inputs.push_back(in);
    for (std::size_t a = 0; a < n_addresses; ++a) {
      std::size_t blocks_left = w.unstable_blocks - b;
      std::size_t chunk = (remaining[a] + blocks_left - 1) / blocks_left;
      chunk = std::min(chunk, remaining[a]);
      for (std::size_t i = 0; i < chunk; ++i) {
        tracked.outputs.push_back(bitcoin::TxOut{1000, scripts[a]});
      }
      remaining[a] -= chunk;
    }
    if (!tracked.outputs.empty()) txs.push_back(std::move(tracked));
    // Background noise, occasionally spending earlier unstable outputs.
    for (std::size_t t = 0; t < background_txs; ++t) {
      bitcoin::Transaction tx;
      bitcoin::TxIn bg_in;
      if (!spendable.empty() && rng.chance(0.5)) {
        bg_in.prevout = spendable[rng.next_below(spendable.size())];
      } else {
        bg_in.prevout.txid = rng.next_hash();
      }
      tx.inputs.push_back(bg_in);
      for (std::size_t o = 0; o < background_outputs; ++o) {
        util::Hash160 h;
        auto bytes = rng.next_bytes(20);
        std::copy(bytes.begin(), bytes.end(), h.data.begin());
        tx.outputs.push_back(bitcoin::TxOut{900, bitcoin::p2pkh_script(h)});
      }
      txs.push_back(std::move(tx));
    }
    time += 600;
    auto block =
        chain::build_child_block(tree, tip, time, scripts[0], bitcoin::block_subsidy(0),
                                 std::move(txs), tag++);
    tip = block.hash();
    tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
    for (const auto& tx : block.transactions) {
      util::Hash256 txid = tx.txid();
      w.total_outputs += tx.outputs.size();
      for (std::uint32_t v = 0; v < tx.outputs.size() && v < 4; ++v) {
        spendable.push_back(bitcoin::OutPoint{txid, v});
      }
    }
    adapter::AdapterResponse response;
    response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
    w.responses.push_back(std::move(response));
  }
  w.now_s = static_cast<std::int64_t>(time) + 10000;
  return w;
}

struct ModeRun {
  double ingest_us = 0;
  double utxos_us = 0, utxos_hot_us = 0;
  double balance_us = 0, balance_hot_us = 0;
  std::vector<std::uint64_t> probes;  // response digest + instruction count per request
  std::uint64_t meter_total = 0;
  std::uint64_t memo_hits = 0, memo_misses = 0;
  std::uint64_t delta_builds = 0, resident_bytes = 0;
};

ModeRun run_mode(const ModesWorkload& w, canister::UnstableQueryMode mode) {
  const auto& params = bitcoin::ChainParams::regtest();
  auto config = canister::CanisterConfig::for_params(params);
  config.stability_delta = w.stability_delta;
  config.unstable_query_mode = mode;
  canister::BitcoinCanister canister(params, config);
  obs::MetricsRegistry registry;
  canister.set_metrics(&registry);
  canister.set_delta_build_clock(now_us);

  ModeRun run;
  std::uint64_t t0 = now_us();
  for (const auto& response : w.responses) canister.process_response(response, w.now_s);
  run.ingest_us = static_cast<double>(now_us() - t0);

  auto probe_utxos = [&](double& bucket) {
    std::uint64_t start = now_us();
    for (const auto& addr : w.addresses) {
      canister::GetUtxosRequest request;
      request.address = addr;
      for (;;) {
        ic::InstructionMeter::Segment segment(canister.meter());
        auto outcome = canister.get_utxos(request);
        std::uint64_t digest = mix64(0, static_cast<std::uint64_t>(outcome.status));
        digest = mix64(digest, segment.sample());
        if (outcome.ok()) {
          digest = mix64(digest, static_cast<std::uint64_t>(outcome.value.tip_height));
          for (const auto& u : outcome.value.utxos) {
            digest = mix64(digest, u.outpoint.txid.data[0] |
                                       static_cast<std::uint64_t>(u.outpoint.vout) << 8);
            digest = mix64(digest, static_cast<std::uint64_t>(u.value));
            digest = mix64(digest, static_cast<std::uint64_t>(u.height));
          }
        }
        run.probes.push_back(digest);
        if (!outcome.ok() || !outcome.value.next_page) break;
        request.page = outcome.value.next_page;
      }
    }
    bucket = static_cast<double>(now_us() - start);
  };
  auto probe_balance = [&](double& bucket) {
    std::uint64_t start = now_us();
    for (const auto& addr : w.addresses) {
      ic::InstructionMeter::Segment segment(canister.meter());
      auto outcome = canister.get_balance(addr);
      std::uint64_t digest = mix64(0, static_cast<std::uint64_t>(outcome.status));
      digest = mix64(digest, segment.sample());
      digest = mix64(digest, static_cast<std::uint64_t>(outcome.value));
      run.probes.push_back(digest);
    }
    bucket = static_cast<double>(now_us() - start);
  };

  probe_utxos(run.utxos_us);
  probe_utxos(run.utxos_hot_us);  // indexed mode: memoized views
  probe_balance(run.balance_us);
  probe_balance(run.balance_hot_us);

  run.meter_total = canister.meter().count();
  run.memo_hits = registry.counter("canister.delta.memo_hits").value();
  run.memo_misses = registry.counter("canister.delta.memo_misses").value();
  run.delta_builds = registry.counter("canister.delta.builds").value();
  run.resident_bytes = canister.unstable_index().resident_bytes();
  return run;
}

struct RequestModesResult {
  ModesWorkload workload;  // responses cleared before storing
  ModeRun scan;
  ModeRun indexed;
  std::size_t divergent = 0;
  bool ok = true;
};

RequestModesResult run_request_modes() {
  const bool quick = quick_mode();
  std::printf("\n--- Scan vs. indexed unstable reads (deep-unstable workload) ---\n");
  RequestModesResult r;
  ModesWorkload w = build_modes_workload(quick);
  std::printf("workload: %zu addresses, %zu unstable blocks, %zu outputs%s\n", w.addresses.size(),
              w.unstable_blocks, w.total_outputs, quick ? " (quick mode)" : "");

  r.scan = run_mode(w, canister::UnstableQueryMode::kScan);
  r.indexed = run_mode(w, canister::UnstableQueryMode::kIndexed);

  if (r.scan.probes.size() != r.indexed.probes.size()) {
    r.divergent = SIZE_MAX;
  } else {
    for (std::size_t i = 0; i < r.scan.probes.size(); ++i) {
      if (r.scan.probes[i] != r.indexed.probes[i]) ++r.divergent;
    }
  }
  if (r.scan.meter_total != r.indexed.meter_total) r.divergent += 1;
  if (r.divergent != 0) {
    std::fprintf(stderr,
                 "FAIL: scan and indexed modes diverged (%zu mismatching request "
                 "digests/meter totals) — responses and metering must be identical\n",
                 r.divergent);
    r.ok = false;
  }

  auto speedup = [](double scan, double indexed) { return indexed > 0 ? scan / indexed : 0.0; };
  std::printf("  %-22s %12s %12s %9s\n", "series", "scan (ms)", "indexed (ms)", "speedup");
  auto row = [&](const char* name, double s, double i) {
    std::printf("  %-22s %12.2f %12.2f %8.1fx\n", name, s / 1e3, i / 1e3, speedup(s, i));
  };
  row("get_utxos cold", r.scan.utxos_us, r.indexed.utxos_us);
  row("get_utxos hot", r.scan.utxos_hot_us, r.indexed.utxos_hot_us);
  row("get_balance cold", r.scan.balance_us, r.indexed.balance_us);
  row("get_balance hot", r.scan.balance_hot_us, r.indexed.balance_hot_us);
  std::printf("  ingest overhead: scan %.2fms, indexed %.2fms (delta builds: %llu)\n",
              r.scan.ingest_us / 1e3, r.indexed.ingest_us / 1e3,
              static_cast<unsigned long long>(r.indexed.delta_builds));
  std::printf("  indexed memo: %llu hits / %llu misses; resident deltas: %.1f MiB\n",
              static_cast<unsigned long long>(r.indexed.memo_hits),
              static_cast<unsigned long long>(r.indexed.memo_misses),
              static_cast<double>(r.indexed.resident_bytes) / (1024.0 * 1024.0));
  std::printf("  metering: scan %llu == indexed %llu instructions (%s)\n",
              static_cast<unsigned long long>(r.scan.meter_total),
              static_cast<unsigned long long>(r.indexed.meter_total),
              r.scan.meter_total == r.indexed.meter_total ? "identical" : "DIVERGED");

  w.responses.clear();  // keep only the metadata for the JSON report
  r.workload = std::move(w);
  return r;
}

bool write_requests_json(const RequestModesResult& r) {
  const char* out_path = std::getenv("ICBTC_BENCH_REQUESTS_OUT");
  if (out_path == nullptr || *out_path == '\0') out_path = "BENCH_requests.json";
  std::FILE* out = std::fopen(out_path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
    return false;
  }
  auto mode_json = [&](const char* name, const ModeRun& m, bool last) {
    std::fprintf(out,
                 "    \"%s\": {\"ingest_ms\": %.3f, \"get_utxos_ms\": %.3f, "
                 "\"get_utxos_hot_ms\": %.3f, \"get_balance_ms\": %.3f, "
                 "\"get_balance_hot_ms\": %.3f, \"metered_instructions\": %llu}%s\n",
                 name, m.ingest_us / 1e3, m.utxos_us / 1e3, m.utxos_hot_us / 1e3,
                 m.balance_us / 1e3, m.balance_hot_us / 1e3,
                 static_cast<unsigned long long>(m.meter_total), last ? "" : ",");
  };
  std::fprintf(out, "{\n");
  std::fprintf(out,
               "  \"workload\": {\"addresses\": %zu, \"unstable_blocks\": %zu, "
               "\"total_outputs\": %zu, \"quick\": %s},\n",
               r.workload.addresses.size(), r.workload.unstable_blocks, r.workload.total_outputs,
               quick_mode() ? "true" : "false");
  std::fprintf(out, "  \"divergent_requests\": %zu,\n", r.divergent);
  std::fprintf(out, "  \"modes\": {\n");
  mode_json("scan", r.scan, false);
  mode_json("indexed", r.indexed, true);
  std::fprintf(out, "  },\n");
  std::fprintf(out,
               "  \"speedup\": {\"get_utxos\": %.2f, \"get_utxos_hot\": %.2f, "
               "\"get_balance\": %.2f, \"get_balance_hot\": %.2f},\n",
               r.indexed.utxos_us > 0 ? r.scan.utxos_us / r.indexed.utxos_us : 0.0,
               r.indexed.utxos_hot_us > 0 ? r.scan.utxos_hot_us / r.indexed.utxos_hot_us : 0.0,
               r.indexed.balance_us > 0 ? r.scan.balance_us / r.indexed.balance_us : 0.0,
               r.indexed.balance_hot_us > 0 ? r.scan.balance_hot_us / r.indexed.balance_hot_us
                                            : 0.0);
  std::fprintf(out,
               "  \"delta_index\": {\"builds\": %llu, \"memo_hits\": %llu, "
               "\"memo_misses\": %llu, \"resident_bytes\": %llu}\n",
               static_cast<unsigned long long>(r.indexed.delta_builds),
               static_cast<unsigned long long>(r.indexed.memo_hits),
               static_cast<unsigned long long>(r.indexed.memo_misses),
               static_cast<unsigned long long>(r.indexed.resident_bytes));
  std::fprintf(out, "}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path);
  return true;
}

void BM_GetBalance(benchmark::State& state) {
  static Fixture fx(200);
  std::size_t i = 0;
  for (auto _ : state) {
    auto outcome = fx.canister.get_balance(fx.addresses[i++ % fx.addresses.size()]);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_GetBalance);

void BM_GetUtxosFirstPage(benchmark::State& state) {
  static Fixture fx(200);
  std::size_t i = 0;
  for (auto _ : state) {
    canister::GetUtxosRequest request;
    request.address = fx.addresses[i++ % fx.addresses.size()];
    auto outcome = fx.canister.get_utxos(request);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_GetUtxosFirstPage);

}  // namespace

int main(int argc, char** argv) {
  Figure7Result result = run_figure7();
  bool ok = result.ok && write_bench_json(result);
  RequestModesResult modes = run_request_modes();
  ok = ok && modes.ok && write_requests_json(modes);
  if (!quick_mode()) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  return ok ? 0 : 1;
}
