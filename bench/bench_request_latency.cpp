// Figure 7: response time and instruction cost of get_balance / get_utxos.
//
// Reproduces the paper's mainnet experiment: 1000 addresses with the
// measured UTXO-count skew (517 <50, 159 50-199, 113 200-999, 211 >=1000),
// replicated and query calls for both endpoints, and the instruction count
// vs. response size for replicated UTXO requests, including the
// stable/unstable bifurcation.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bitcoin/script.h"
#include "ic/subnet.h"
#include "workload.h"

namespace {

using namespace icbtc;
using namespace icbtc::bench;

struct Fixture {
  static canister::CanisterConfig fixture_config(const bitcoin::ChainParams& params) {
    auto config = canister::CanisterConfig::for_params(params);
    // A deeper unstable window (closer to the mainnet δ=144 regime, scaled)
    // keeps the late-dealt addresses unstable for the Fig. 7 bifurcation.
    config.stability_delta = 40;
    return config;
  }

  util::Simulation sim;
  const bitcoin::ChainParams& params = bitcoin::ChainParams::regtest();
  canister::BitcoinCanister canister{params, fixture_config(params)};
  ic::Subnet subnet{sim, ic::SubnetConfig{}, 4242};
  std::vector<std::string> addresses;
  std::vector<std::size_t> expected_counts;
  util::Rng rng{777};

  explicit Fixture(std::size_t n_addresses, bool include_unstable = true) {
    ChainFeeder feeder(canister, 778);
    auto counts = paper_address_skew(n_addresses, rng);

    // Register every address and pour its UTXOs in through synthetic blocks:
    // each block pays a batch of outputs to the tracked addresses.
    std::vector<util::Bytes> scripts;
    for (std::size_t i = 0; i < n_addresses; ++i) {
      util::Hash160 h;
      auto bytes = rng.next_bytes(20);
      std::copy(bytes.begin(), bytes.end(), h.data.begin());
      scripts.push_back(bitcoin::p2pkh_script(h));
      addresses.push_back(bitcoin::p2pkh_address(h, params.network));
      expected_counts.push_back(counts[i]);
    }

    // Deal the UTXOs: blocks of direct payments (not via ChainFeeder's
    // random scripts, so counts are exact).
    chain::HeaderTree tree(params, params.genesis_header);
    util::Hash256 tip = params.genesis_header.hash();
    std::uint32_t time = params.genesis_header.time;
    std::uint64_t tag = 909000;
    std::size_t addr_idx = 0, dealt = 0;
    std::vector<bitcoin::Transaction> batch;
    int height = 0;
    auto flush = [&](bool more_to_come) {
      if (batch.empty() && more_to_come) return;
      time += 600;
      auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                            bitcoin::block_subsidy(0), std::move(batch), tag++);
      batch.clear();
      tip = block.hash();
      ++height;
      tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
      adapter::AdapterResponse response;
      response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
      canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
    };
    auto deal_until = [&](std::size_t limit) {
      while (addr_idx < limit) {
        bitcoin::Transaction tx;
        bitcoin::TxIn in;
        in.prevout.txid = rng.next_hash();  // unvalidated input (§III-C)
        tx.inputs.push_back(in);
        std::size_t want = expected_counts[addr_idx] - dealt;
        std::size_t chunk = std::min<std::size_t>(want, 200);
        for (std::size_t i = 0; i < chunk; ++i) {
          tx.outputs.push_back(bitcoin::TxOut{1000, scripts[addr_idx]});
        }
        dealt += chunk;
        if (dealt == expected_counts[addr_idx]) {
          ++addr_idx;
          dealt = 0;
        }
        batch.push_back(std::move(tx));
        if (batch.size() >= 20) flush(true);
      }
      flush(false);
    };
    auto pad_blocks = [&](int count) {
      for (int i = 0; i < count; ++i) {
        time += 600;
        auto block = chain::build_child_block(tree, tip, time, scripts[0],
                                              bitcoin::block_subsidy(0), {}, tag++);
        tip = block.hash();
        tree.accept(block.header, static_cast<std::int64_t>(time) + 10000);
        adapter::AdapterResponse response;
        response.blocks.emplace_back(std::move(block), tree.find(tip)->header);
        canister.process_response(response, static_cast<std::int64_t>(time) + 10000);
      }
    };

    if (include_unstable) {
      // First 4/5 of the population migrates into the stable set; the last
      // 1/5 is dealt right at the tip so its UTXOs live in unstable blocks —
      // the two branches of Fig. 7's bifurcation.
      deal_until(n_addresses * 4 / 5);
      pad_blocks(canister.config().stability_delta + 2);
      deal_until(n_addresses);
      pad_blocks(1);
    } else {
      deal_until(n_addresses);
      pad_blocks(canister.config().stability_delta + 2);
    }
  }
};

void print_percentiles(const char* label, std::vector<double>& series) {
  std::sort(series.begin(), series.end());
  std::printf("  %-28s min %7.3fs  median %7.3fs  p90 %7.3fs  max %7.3fs\n", label,
              percentile(series, 0) / 1e6, percentile(series, 50) / 1e6,
              percentile(series, 90) / 1e6, percentile(series, 100) / 1e6);
}

void run_figure7() {
  std::printf("\n--- Figure 7: request latency and instruction cost ---\n");
  Fixture fx(1000);
  std::printf("address population: 1000 with the paper's UTXO-count skew\n\n");

  std::vector<double> rep_balance, rep_utxos, q_balance, q_utxos;
  struct UtxoCost {
    std::size_t response_utxos;
    std::uint64_t instructions;
    bool unstable_heavy;
  };
  std::vector<UtxoCost> utxo_costs;

  for (std::size_t i = 0; i < fx.addresses.size(); ++i) {
    const auto& addr = fx.addresses[i];
    // Replicated + query get_balance.
    ic::InstructionMeter::Segment seg_b(fx.canister.meter());
    auto balance = fx.canister.get_balance(addr);
    std::uint64_t instr_b = seg_b.sample();
    if (!balance.ok()) continue;
    rep_balance.push_back(static_cast<double>(fx.subnet.sample_update_latency(instr_b)));
    q_balance.push_back(static_cast<double>(fx.subnet.sample_query_latency(instr_b)));

    // Replicated + query get_utxos (first page).
    canister::GetUtxosRequest request;
    request.address = addr;
    ic::InstructionMeter::Segment seg_u(fx.canister.meter());
    auto utxos = fx.canister.get_utxos(request);
    std::uint64_t instr_u = seg_u.sample();
    if (!utxos.ok()) continue;
    rep_utxos.push_back(static_cast<double>(fx.subnet.sample_update_latency(instr_u)));
    q_utxos.push_back(static_cast<double>(fx.subnet.sample_query_latency(instr_u)));

    std::size_t n = utxos.value.utxos.size();
    std::size_t unstable = 0;
    for (const auto& u : utxos.value.utxos) {
      if (u.height > fx.canister.anchor_height()) ++unstable;
    }
    utxo_costs.push_back(UtxoCost{n, instr_u, unstable * 2 > n});
  }

  std::printf("Left/centre panels — latency (replicated goes through consensus):\n");
  print_percentiles("replicated get_balance", rep_balance);
  print_percentiles("replicated get_utxos", rep_utxos);
  print_percentiles("query get_balance", q_balance);
  print_percentiles("query get_utxos", q_utxos);
  std::printf("  (paper: replicated avg <10s / p90 18s; query medians 220ms & 310ms)\n\n");

  std::printf("Right panel — instructions for replicated UTXO requests vs response size:\n");
  std::printf("  %-16s %-22s %-22s\n", "response UTXOs", "stable-heavy (instr)",
              "unstable-heavy (instr)");
  for (std::size_t bucket_lo : {0ULL, 50ULL, 200ULL, 1000ULL}) {
    std::size_t bucket_hi = bucket_lo == 0 ? 50 : bucket_lo == 50 ? 200
                            : bucket_lo == 200 ? 1000 : SIZE_MAX;
    double stable_sum = 0, unstable_sum = 0;
    std::size_t stable_n = 0, unstable_n = 0;
    for (const auto& c : utxo_costs) {
      if (c.response_utxos < bucket_lo || c.response_utxos >= bucket_hi) continue;
      if (c.unstable_heavy) {
        unstable_sum += static_cast<double>(c.instructions);
        ++unstable_n;
      } else {
        stable_sum += static_cast<double>(c.instructions);
        ++stable_n;
      }
    }
    std::printf("  [%5zu,%5s) %14.2fM (n=%-4zu) %14.2fM (n=%-4zu)\n", bucket_lo,
                bucket_hi == SIZE_MAX ? "inf" : std::to_string(bucket_hi).c_str(),
                stable_n ? stable_sum / stable_n / 1e6 : 0.0, stable_n,
                unstable_n ? unstable_sum / unstable_n / 1e6 : 0.0, unstable_n);
  }
  auto [min_it, max_it] = std::minmax_element(
      utxo_costs.begin(), utxo_costs.end(),
      [](const UtxoCost& a, const UtxoCost& b) { return a.instructions < b.instructions; });
  std::printf("  range: %.2e .. %.2e instructions (paper: 5.84e6 .. 4.76e8)\n",
              static_cast<double>(min_it->instructions),
              static_cast<double>(max_it->instructions));
  std::printf("  bifurcation: unstable UTXOs are cheaper to fetch than stable-set UTXOs\n\n");
}

void BM_GetBalance(benchmark::State& state) {
  static Fixture fx(200);
  std::size_t i = 0;
  for (auto _ : state) {
    auto outcome = fx.canister.get_balance(fx.addresses[i++ % fx.addresses.size()]);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_GetBalance);

void BM_GetUtxosFirstPage(benchmark::State& state) {
  static Fixture fx(200);
  std::size_t i = 0;
  for (auto _ : state) {
    canister::GetUtxosRequest request;
    request.address = fx.addresses[i++ % fx.addresses.size()];
    auto outcome = fx.canister.get_utxos(request);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_GetUtxosFirstPage);

}  // namespace

int main(int argc, char** argv) {
  run_figure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
