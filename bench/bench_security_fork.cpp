// Lemma IV.2 / Definition IV.2: state corruption through a private fork.
//
// An attacker with hash share φ mines a private fork containing a corrupting
// transaction and feeds every block to the Bitcoin canister (the lemma grants
// the attacker that power). The canister only reports the transaction once
// its block is confirmation-based c*-stable. This bench races the attacker
// against the honest network for a sweep of (φ, c*) and reports the success
// probability, next to the classical (φ/(1-φ))^c* catch-up bound — showing
// how quickly the probability vanishes, and that the anchor (difficulty-based
// δ-stability) never lands on the attacker's fork.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "canister/bitcoin_canister.h"
#include "bitcoin/script.h"
#include "chain/block_builder.h"

namespace {

using namespace icbtc;

struct RaceResult {
  bool corrupted = false;
  bool anchor_on_fork = false;
  int blocks_mined = 0;
};

/// One race: honest miners and the attacker extend from a common fork point;
/// every block goes straight to the canister. The attacker wins if the
/// canister ever reports its first fork block as c*-stable.
RaceResult run_race(double phi, int c_star, std::uint64_t seed) {
  const auto& params = bitcoin::ChainParams::regtest();
  auto config = canister::CanisterConfig::for_params(params);
  config.stability_delta = 6;
  canister::BitcoinCanister canister(params, config);
  chain::HeaderTree build_tree(params, params.genesis_header);
  util::Rng rng(seed);
  std::uint32_t time = params.genesis_header.time;
  std::uint64_t tag = 1;

  auto mine_on = [&](const util::Hash256& parent, std::uint8_t who) {
    time += 600;
    util::Hash160 h;
    h.data[0] = who;
    auto block = chain::build_child_block(build_tree, parent, time, bitcoin::p2pkh_script(h),
                                          bitcoin::block_subsidy(0), {}, tag++);
    build_tree.accept(block.header, static_cast<std::int64_t>(time) + 100000);
    adapter::AdapterResponse response;
    response.blocks.emplace_back(block, block.header);
    canister.process_response(response, static_cast<std::int64_t>(time) + 100000);
    return block.hash();
  };

  // Common prefix of 2 blocks.
  util::Hash256 honest_tip = mine_on(build_tree.root_hash(), 0);
  honest_tip = mine_on(honest_tip, 0);
  util::Hash256 fork_point = honest_tip;

  util::Hash256 attacker_tip = fork_point;
  util::Hash256 corrupting_block;  // first attacker block: carries the double spend
  bool have_fork = false;

  RaceResult result;
  constexpr int kGiveUpLead = 12;
  constexpr int kMaxBlocks = 120;
  for (int i = 0; i < kMaxBlocks; ++i) {
    bool attacker_finds = rng.next_double() < phi;
    if (attacker_finds) {
      attacker_tip = mine_on(attacker_tip, 0xaa);
      if (!have_fork) {
        corrupting_block = attacker_tip;
        have_fork = true;
      }
    } else {
      honest_tip = mine_on(honest_tip, 0);
    }
    ++result.blocks_mined;

    if (have_fork &&
        canister.header_tree().contains(corrupting_block) &&
        canister.header_tree().is_confirmation_stable(corrupting_block, c_star)) {
      result.corrupted = true;
      break;
    }
    // Attacker abandons a hopeless race.
    const auto* h = canister.header_tree().find(honest_tip);
    const auto* a = canister.header_tree().find(attacker_tip);
    if (h != nullptr && a != nullptr && h->height - a->height >= kGiveUpLead) break;
  }
  // Did the anchor ever advance onto the fork? (It must not: difficulty-based
  // stability requires dominance by δ over the competitor.)
  if (have_fork && canister.header_tree().contains(corrupting_block)) {
    const auto* entry = canister.header_tree().find(corrupting_block);
    result.anchor_on_fork =
        entry != nullptr && canister.anchor_hash() == corrupting_block;
  }
  return result;
}

void run_lemma_iv2() {
  std::printf("\n--- Lemma IV.2: private-fork state corruption vs (φ, c*) ---\n");
  std::printf("%-6s %-4s %-12s %-14s %-12s\n", "φ", "c*", "measured", "(φ/(1-φ))^c*",
              "anchor-on-fork");
  const int kTrials = 400;
  for (double phi : {0.1, 0.2, 0.3, 0.4}) {
    for (int c_star : {1, 2, 4, 6}) {
      int corrupted = 0;
      int anchor_hits = 0;
      for (int t = 0; t < kTrials; ++t) {
        auto result =
            run_race(phi, c_star, static_cast<std::uint64_t>(t) * 7919 +
                                      static_cast<std::uint64_t>(phi * 1000) * 104729 +
                                      static_cast<std::uint64_t>(c_star));
        corrupted += result.corrupted ? 1 : 0;
        anchor_hits += result.anchor_on_fork ? 1 : 0;
      }
      double ratio = phi / (1.0 - phi);
      std::printf("%-6.1f %-4d %-12.4f %-14.4f %-12d\n", phi, c_star,
                  static_cast<double>(corrupted) / kTrials, std::pow(ratio, c_star),
                  anchor_hits);
    }
  }
  std::printf("\nThe measured corruption probability tracks the classical catch-up\n");
  std::printf("bound and decays geometrically in c*; requiring more confirmations\n");
  std::printf("for critical actions makes the attack vanish (Lemma IV.2). The anchor\n");
  std::printf("reaches the attacker's fork only in the rare races where the attacker\n");
  std::printf("genuinely out-mined the network by δ blocks — exactly the power that\n");
  std::printf("Definition IV.2 assumes away (such an attacker could double-spend any\n");
  std::printf("Bitcoin service, not just the canister).\n\n");
}

void BM_RaceTrial(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_race(0.3, 4, seed++));
  }
}
BENCHMARK(BM_RaceTrial)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_lemma_iv2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
