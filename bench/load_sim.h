// Open-loop load generation and virtual-time queue simulation for
// bench_load: Zipfian address sampling, seeded Poisson arrival schedules,
// and a deterministic multi-server FIFO queue that turns per-request
// service times into end-to-end latencies.
//
// Coordinated omission is avoided *by construction*: the arrival schedule
// is generated up front from a seeded RNG and never consults completions,
// so a slow server cannot suppress the arrivals that would have piled up
// behind it — exactly the failure mode of closed-loop load generators,
// which simulate_closed_loop() reproduces as the control arm.
//
// Everything here runs in virtual time (double microseconds) off seeded
// RNGs; two identically seeded runs produce bit-identical schedules,
// latencies, and therefore reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"

namespace icbtc::bench {

/// Zipfian rank sampler over [0, n): P(rank = i) ∝ 1/(i+1)^s. The CDF is
/// precomputed once; sample() is a binary search, so sampling order cannot
/// perturb the distribution. s ≈ 0.99 is the classic web/YCSB hot-set skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  std::size_t sample(util::Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i), cdf_.back() == 1
};

/// The three traffic classes of the paper's workload.
enum class LoadEndpoint { kGetUtxos = 0, kGetBalance = 1, kSendTransaction = 2 };
constexpr std::size_t kNumLoadEndpoints = 3;
const char* to_string(LoadEndpoint endpoint);

/// Traffic mix (fractions; anything left over goes to send_transaction).
struct LoadMix {
  double get_utxos = 0.45;
  double get_balance = 0.45;
  double send_transaction = 0.10;
};

struct LoadRequest {
  double arrival_us = 0;
  LoadEndpoint endpoint = LoadEndpoint::kGetUtxos;
  std::size_t address = 0;  // rank into the address population
};

/// Generates `n_requests` open-loop arrivals at `rate_rps`: exponential
/// (Poisson-process) inter-arrival gaps, endpoint drawn from `mix`, address
/// drawn from `zipf`. The schedule is complete before any request is
/// "served" — arrivals are independent of completions by construction.
std::vector<LoadRequest> make_open_loop_schedule(double rate_rps, std::size_t n_requests,
                                                 const LoadMix& mix, const ZipfSampler& zipf,
                                                 util::Rng& rng);

/// A service outage: no request may *start* inside [start_us, end_us) —
/// in-flight requests finish, queued ones wait for the window to close.
struct StallWindow {
  double start_us = 0;
  double end_us = 0;
};

struct QueueSimResult {
  std::vector<double> latency_us;  // per request, schedule order
  double makespan_us = 0;          // last completion - first arrival/issue
  double offered_rps = 0;
  double achieved_rps = 0;  // completed / makespan
  std::size_t requests = 0;
};

/// Virtual-time FIFO queue over `servers` identical servers: requests are
/// taken in arrival order, each starts on the earliest-free server at
/// max(arrival, server_free) (pushed past any stall window), and its
/// latency is completion - arrival — queueing delay included. This is the
/// open-loop measurement: a stall makes every queued arrival's latency
/// grow, exactly as real clients would experience it.
QueueSimResult simulate_open_loop(const std::vector<LoadRequest>& schedule, std::size_t servers,
                                  const std::function<double(const LoadRequest&)>& service,
                                  const std::vector<StallWindow>& stalls = {});

/// Closed-loop control arm: `clients` issue the same requests back-to-back,
/// each new request leaving only when the previous one returned. Arrival
/// times in `schedule` are ignored — that is the point: the generator's
/// own backpressure hides queueing, so an injected stall delays only the
/// `clients` requests in flight and the reported p99 barely moves. Use it
/// to demonstrate coordinated omission, never to measure.
QueueSimResult simulate_closed_loop(const std::vector<LoadRequest>& schedule, std::size_t clients,
                                    const std::function<double(const LoadRequest&)>& service,
                                    const std::vector<StallWindow>& stalls = {});

}  // namespace icbtc::bench
