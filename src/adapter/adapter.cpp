#include "adapter/adapter.h"

#include <algorithm>

#include "util/log.h"

namespace icbtc::adapter {

using btcnet::Message;
using btcnet::MsgAddr;
using btcnet::MsgBlock;
using btcnet::MsgGetData;
using btcnet::MsgGetHeaders;
using btcnet::MsgHeaders;
using btcnet::MsgInv;
using btcnet::MsgTx;
using btcnet::NodeId;
using util::Hash256;

AdapterConfig AdapterConfig::for_params(const bitcoin::ChainParams& params) {
  AdapterConfig c;
  c.outbound_connections = params.outbound_connections;
  c.addr_lower_threshold = params.addr_lower_threshold;
  c.addr_upper_threshold = params.addr_upper_threshold;
  return c;
}

BitcoinAdapter::BitcoinAdapter(btcnet::Network& network, const bitcoin::ChainParams& params,
                               AdapterConfig config, util::Rng rng)
    : network_(&network),
      params_(&params),
      config_(config),
      rng_(std::move(rng)),
      tree_(params, params.genesis_header) {
  // The adapter is a client; it is not advertised in addr gossip.
  id_ = network.attach(this, /*ipv6=*/true, /*gossiped=*/false);
}

BitcoinAdapter::~BitcoinAdapter() {
  if (network_->exists(id_)) network_->detach(id_);
}

void BitcoinAdapter::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.peers = &registry->gauge("adapter.peers");
  metrics_.header_height = &registry->gauge("adapter.header_height");
  metrics_.headers_accepted = &registry->counter("adapter.headers_accepted");
  metrics_.blocks_received = &registry->counter("adapter.blocks_received");
  metrics_.blocks_stored = &registry->gauge("adapter.blocks_stored");
  metrics_.block_requests = &registry->counter("adapter.block_requests");
  metrics_.block_request_retries = &registry->counter("adapter.block_request_retries");
  metrics_.pending_block_requests = &registry->gauge("adapter.pending_block_requests");
  metrics_.requests_handled = &registry->counter("adapter.requests_handled");
  metrics_.tx_cache_size = &registry->gauge("adapter.tx_cache.size");
  metrics_.tx_cached = &registry->counter("adapter.tx_cache.added");
  metrics_.tx_delivered = &registry->counter("adapter.tx_cache.delivered");
  metrics_.tx_evicted_expired = &registry->counter("adapter.tx_cache.evicted_expired");
  metrics_.tx_evicted_delivered = &registry->counter("adapter.tx_cache.evicted_delivered");
  metrics_.recent_tx_pool = &registry->gauge("adapter.recent_tx_pool");
  metrics_.recon_sketches_answered = &registry->counter("adapter.recon.sketches_answered");
  metrics_.recon_txs_learned = &registry->counter("adapter.recon.txs_learned");
  metrics_.cmpct_received = &registry->counter("adapter.cmpct.received");
  metrics_.cmpct_reconstructed = &registry->counter("adapter.cmpct.reconstructed");
  metrics_.cmpct_fallback_getblocktxn = &registry->counter("adapter.cmpct.fallback.getblocktxn");
  metrics_.cmpct_fallback_full = &registry->counter("adapter.cmpct.fallback.full");
  metrics_.peers->set(static_cast<std::int64_t>(connections_.size()));
  metrics_.header_height->set(tree_.best_height());
  metrics_.blocks_stored->set(static_cast<std::int64_t>(blocks_.size()));
  metrics_.tx_cache_size->set(static_cast<std::int64_t>(tx_cache_.size()));
  metrics_.pending_block_requests->set(static_cast<std::int64_t>(pending_blocks_.size()));
}

void BitcoinAdapter::set_slo(obs::SloTracker* slo) {
  slo_requests_ = slo == nullptr ? nullptr : &slo->endpoint("adapter.handle_request");
}

std::int64_t BitcoinAdapter::now_s() const {
  return static_cast<std::int64_t>(params_->genesis_header.time) +
         network_->sim().now() / util::kSecond;
}

void BitcoinAdapter::start() {
  if (running_) return;
  running_ = true;
  discovering_ = true;
  // Bootstrap the address book from the DNS seeds (hard-coded list, §III-B).
  for (const auto& seed : network_->query_dns_seeds()) {
    if (seed.ipv6 && known_address_ids_.insert(seed.id).second) {
      address_book_.push_back(seed);
    }
  }
  maintain();
}

void BitcoinAdapter::stop() {
  running_ = false;
  network_->sim().cancel(maintenance_timer_);
  maintenance_timer_ = {};
}

void BitcoinAdapter::maintain() {
  if (!running_) return;

  // Discovery: keep requesting addresses until the upper threshold t_u is
  // reached; re-enter discovery if the book shrinks below t_l.
  if (address_book_.size() >= config_.addr_upper_threshold) {
    discovering_ = false;
  } else if (address_book_.size() < config_.addr_lower_threshold) {
    discovering_ = true;
  }
  if (discovering_) request_addresses();

  open_connections();
  expire_transactions();
  advertise_transactions();

  // Retry stale block requests.
  for (auto& [hash, pending] : pending_blocks_) {
    if (pending.last_request >= 0 &&
        network_->sim().now() - pending.last_request < config_.block_request_retry) {
      continue;
    }
    auto peer = random_peer();
    if (!peer) break;
    if (pending.last_request >= 0) {
      if (metrics_.block_request_retries != nullptr) metrics_.block_request_retries->inc();
      if (tracer_ != nullptr) {
        tracer_->event(obs::Severity::kWarn, "adapter.block_request_retry",
                       "unanswered for " +
                           std::to_string(network_->sim().now() - pending.last_request) + "us");
      }
    }
    pending.last_request = network_->sim().now();
    pending.asked = *peer;
    network_->send(id_, *peer, MsgGetData{{hash}, {}, config_.compact_block_fetch});
  }

  maintenance_timer_ =
      network_->sim().schedule(config_.maintenance_interval, [this] { maintain(); });
}

void BitcoinAdapter::request_addresses() {
  // Ask connected peers; bootstrap connections to seeds if we have none.
  if (connections_.empty()) {
    for (const auto& seed : address_book_) {
      if (connections_.size() >= config_.outbound_connections) break;
      if (network_->connect(id_, seed.id)) {
        connections_.insert(seed.id);
        sync_headers(seed.id);
      }
    }
    if (metrics_.peers != nullptr) metrics_.peers->set(static_cast<std::int64_t>(connections_.size()));
  }
  for (NodeId peer : connections_) network_->send(id_, peer, btcnet::MsgGetAddr{});
}

void BitcoinAdapter::open_connections() {
  // Maintain ℓ connections to uniformly random known addresses.
  std::size_t attempts = 0;
  while (connections_.size() < config_.outbound_connections && !address_book_.empty() &&
         attempts < 4 * config_.outbound_connections) {
    ++attempts;
    const auto& candidate =
        address_book_[static_cast<std::size_t>(rng_.next_below(address_book_.size()))];
    if (connections_.contains(candidate.id)) continue;
    if (!network_->exists(candidate.id)) continue;
    if (network_->connect(id_, candidate.id)) {
      connections_.insert(candidate.id);
      sync_headers(candidate.id);
    }
  }
  if (metrics_.peers != nullptr) metrics_.peers->set(static_cast<std::int64_t>(connections_.size()));
}

void BitcoinAdapter::on_disconnected(NodeId peer) {
  connections_.erase(peer);
  recon_sets_.erase(peer);
  if (metrics_.peers != nullptr) metrics_.peers->set(static_cast<std::int64_t>(connections_.size()));
}

std::optional<NodeId> BitcoinAdapter::random_peer() {
  if (connections_.empty()) return std::nullopt;
  std::vector<NodeId> peers(connections_.begin(), connections_.end());
  std::sort(peers.begin(), peers.end());
  return peers[static_cast<std::size_t>(rng_.next_below(peers.size()))];
}

std::vector<btcnet::NodeId> BitcoinAdapter::connected_peers() const {
  std::vector<NodeId> peers(connections_.begin(), connections_.end());
  std::sort(peers.begin(), peers.end());
  return peers;
}

std::vector<Hash256> BitcoinAdapter::build_locator() const {
  // Locator along the most-work chain of the adapter's tree.
  std::vector<Hash256> chain = tree_.current_chain();
  std::vector<Hash256> locator;
  std::size_t step = 1;
  std::size_t i = chain.size();
  while (i > 0) {
    --i;
    locator.push_back(chain[i]);
    if (locator.size() > 10) step *= 2;
    if (i < step) break;
    i -= step - 1;
  }
  if (locator.empty() || locator.back() != chain.front()) locator.push_back(chain.front());
  return locator;
}

void BitcoinAdapter::sync_headers(NodeId peer) {
  network_->send(id_, peer, MsgGetHeaders{build_locator(), Hash256{}});
}

void BitcoinAdapter::deliver(NodeId from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MsgHeaders>) {
          handle_headers(from, m);
        } else if constexpr (std::is_same_v<T, MsgInv>) {
          handle_inv(from, m);
        } else if constexpr (std::is_same_v<T, MsgBlock>) {
          handle_block(m);
        } else if constexpr (std::is_same_v<T, MsgGetData>) {
          handle_get_data(from, m);
        } else if constexpr (std::is_same_v<T, MsgAddr>) {
          handle_addr(m);
        } else if constexpr (std::is_same_v<T, MsgTx>) {
          handle_tx(m);
        } else if constexpr (std::is_same_v<T, btcnet::MsgCmpctBlock>) {
          handle_cmpct_block(from, m);
        } else if constexpr (std::is_same_v<T, btcnet::MsgBlockTxn>) {
          handle_block_txn(from, m);
        } else if constexpr (std::is_same_v<T, btcnet::MsgReconSketch>) {
          handle_recon_sketch(from, m);
        } else if constexpr (std::is_same_v<T, btcnet::MsgReconFinalize>) {
          handle_recon_finalize(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetHeaders>) {
          // The adapter is a leech: it does not serve headers.
        }
      },
      msg);
}

void BitcoinAdapter::handle_addr(const MsgAddr& msg) {
  for (const auto& addr : msg.addresses) {
    if (address_book_.size() >= config_.addr_upper_threshold) break;
    // IC nodes only have IPv6 connectivity (§III-B).
    if (!addr.ipv6 || addr.id == id_) continue;
    if (known_address_ids_.insert(addr.id).second) address_book_.push_back(addr);
  }
}

void BitcoinAdapter::handle_headers(NodeId from, const MsgHeaders& msg) {
  // The adapter validates every header (well-formedness, prev link, correct
  // difficulty bits, PoW, timestamp) and stores any valid header — possibly
  // several per height. Fork resolution is the canister's job.
  for (const auto& header : msg.headers) {
    auto result = tree_.accept(header, now_s());
    if (result == chain::AcceptResult::kInvalid) break;  // discard the rest
    if (result == chain::AcceptResult::kOrphan) {
      sync_headers(from);  // we lag this peer; restart from a locator
      return;
    }
    if (result == chain::AcceptResult::kAccepted && metrics_.headers_accepted != nullptr) {
      metrics_.headers_accepted->inc();
      metrics_.header_height->set(tree_.best_height());
    }
  }
  if (msg.headers.size() == btcnet::kMaxHeadersPerMsg) sync_headers(from);
}

void BitcoinAdapter::handle_inv(NodeId from, const MsgInv& msg) {
  for (const auto& hash : msg.block_hashes) {
    if (!tree_.contains(hash)) {
      sync_headers(from);  // learn the header (and any ancestors) first
      break;
    }
  }
  // Transaction inventory only matters for compact block fetch: the adapter
  // then maintains a pool of recently relayed transactions to reconstruct
  // compact blocks from. Otherwise it only pushes canister transactions out.
  // Either way, the announcer holds these: drop them from its pending set.
  if (config_.recon_relay) {
    auto set = recon_sets_.find(from);
    if (set != recon_sets_.end()) {
      for (const auto& txid : msg.tx_ids) set->second.remove(txid);
    }
  }
  if (!config_.compact_block_fetch) return;
  MsgGetData request;
  for (const auto& txid : msg.tx_ids) observe_tx_announcement(from, txid, request);
  if (!request.tx_ids.empty()) network_->send(id_, from, std::move(request));
}

void BitcoinAdapter::observe_tx_announcement(NodeId from, const Hash256& txid,
                                             MsgGetData& request) {
  (void)from;
  if (recent_txs_.contains(txid) || tx_cache_.contains(txid) || requested_txs_.contains(txid)) {
    return;
  }
  requested_txs_.insert(txid);
  request.tx_ids.push_back(txid);
}

reconcile::ReconSet& BitcoinAdapter::recon_set(NodeId peer) {
  auto it = recon_sets_.find(peer);
  if (it == recon_sets_.end()) {
    it = recon_sets_
             .emplace(peer,
                      reconcile::ReconSet(reconcile::link_salt(id_, peer, config_.relay_salt)))
             .first;
  }
  return it->second;
}

void BitcoinAdapter::handle_recon_sketch(NodeId from, const btcnet::MsgReconSketch& msg) {
  // Passive responder: answer with our pending set for this link (canister
  // transactions when recon_relay is on, empty otherwise — an empty set
  // still decodes the initiator's side, which is what keeps node rounds
  // from timing out against an adapter peer).
  reconcile::ReconSet& set = recon_set(from);
  std::size_t mine_before = set.part_size(msg.part);
  reconcile::ReconDiffResult result = reconcile::respond_to_sketch(set, msg.sketch, msg.part);
  btcnet::MsgReconDiff reply{msg.round, msg.part, result.decode_failed,
                             static_cast<std::uint32_t>(mine_before),
                             0,
                             {},
                             {}};
  std::vector<const bitcoin::Transaction*> push;
  if (!result.decode_failed) {
    reply.want = std::move(result.want);
    for (const auto& [short_id, txid] : result.have) {
      // The decoded sketch proves the peer lacks this transaction: push the
      // body outright instead of announcing the txid for a getdata pull.
      auto cached = tx_cache_.find(txid);
      if (cached != tx_cache_.end()) {
        ++reply.have_count;
        push.push_back(&cached->second.tx);
        if (cached->second.delivered_to.insert(from).second &&
            metrics_.tx_delivered != nullptr) {
          metrics_.tx_delivered->inc();
        }
      } else {
        reply.have_txs.push_back(txid);  // evicted from the cache mid-round
      }
    }
  }
  if (metrics_.recon_sketches_answered != nullptr) metrics_.recon_sketches_answered->inc();
  network_->send(id_, from, std::move(reply));
  for (const bitcoin::Transaction* tx : push) network_->send(id_, from, btcnet::MsgTx{*tx});
}

void BitcoinAdapter::handle_recon_finalize(NodeId from, const btcnet::MsgReconFinalize& msg) {
  // The initiator's exclusive transactions: pull them into the recent pool
  // (the reconciliation-era replacement for learning the mempool via
  // flooded invs).
  if (config_.recon_relay) {
    auto set = recon_sets_.find(from);
    if (set != recon_sets_.end()) {
      for (const auto& txid : msg.tx_ids) set->second.remove(txid);
    }
  }
  if (!config_.compact_block_fetch) return;
  MsgGetData request;
  for (const auto& txid : msg.tx_ids) observe_tx_announcement(from, txid, request);
  if (metrics_.recon_txs_learned != nullptr) {
    metrics_.recon_txs_learned->inc(request.tx_ids.size());
  }
  if (!request.tx_ids.empty()) network_->send(id_, from, std::move(request));
}

void BitcoinAdapter::handle_tx(const btcnet::MsgTx& msg) {
  Hash256 txid = msg.tx.txid();
  requested_txs_.erase(txid);
  if (!config_.compact_block_fetch || !msg.tx.is_well_formed()) return;
  recent_txs_.emplace(txid,
                      RecentTx{msg.tx, network_->sim().now() + config_.recent_tx_expiry});
  if (metrics_.recent_tx_pool != nullptr) {
    metrics_.recent_tx_pool->set(static_cast<std::int64_t>(recent_txs_.size()));
  }
}

void BitcoinAdapter::handle_block(const MsgBlock& msg) {
  Hash256 hash = msg.block.hash();
  if (!pending_blocks_.contains(hash) && blocks_.contains(hash)) return;
  if (!msg.block.is_well_formed()) return;
  // The header must be known and valid; unknown headers were requested via
  // sync, so simply drop blocks that do not fit the tree yet.
  if (!tree_.contains(hash)) return;
  store_block(msg.block);
}

void BitcoinAdapter::store_block(const bitcoin::Block& block) {
  Hash256 hash = block.hash();
  blocks_.emplace(hash, block);
  pending_blocks_.erase(hash);
  pending_compact_.erase(hash);
  if (metrics_.blocks_received != nullptr) {
    metrics_.blocks_received->inc();
    metrics_.blocks_stored->set(static_cast<std::int64_t>(blocks_.size()));
    metrics_.pending_block_requests->set(static_cast<std::int64_t>(pending_blocks_.size()));
  }
}

void BitcoinAdapter::fetch_full_block(const Hash256& hash, NodeId peer) {
  pending_compact_.erase(hash);
  if (tracer_ != nullptr) {
    tracer_->event(obs::Severity::kWarn, "adapter.cmpct_fallback_full",
                   "compact reconstruction failed; re-requesting full block");
  }
  if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
  // Keep the pending entry hot so the retry loop does not immediately fire a
  // second (compact) request alongside this explicit full one.
  auto pending = pending_blocks_.find(hash);
  if (pending != pending_blocks_.end()) {
    pending->second.last_request = network_->sim().now();
    pending->second.asked = peer;
  }
  network_->send(id_, peer, MsgGetData{{hash}, {}, /*compact_blocks=*/false});
}

void BitcoinAdapter::handle_cmpct_block(NodeId from, const btcnet::MsgCmpctBlock& msg) {
  const reconcile::CompactBlock& cb = msg.compact;
  Hash256 hash = cb.header.hash();
  if (metrics_.cmpct_received != nullptr) metrics_.cmpct_received->inc();
  if (blocks_.contains(hash) || pending_compact_.contains(hash)) return;
  // The header must fit the tree, as with full blocks. It may not have
  // arrived through header sync yet, so try to connect it directly and fall
  // back to a locator round; the pending-block retry loop re-requests the
  // block once the ancestry is known.
  if (!tree_.contains(hash)) {
    auto result = tree_.accept(cb.header, now_s());
    if (result == chain::AcceptResult::kInvalid) return;
    if (result == chain::AcceptResult::kOrphan) {
      sync_headers(from);
      return;
    }
    if (metrics_.headers_accepted != nullptr) {
      metrics_.headers_accepted->inc();
      metrics_.header_height->set(tree_.best_height());
    }
  }

  std::vector<const bitcoin::Transaction*> pool;
  pool.reserve(recent_txs_.size() + tx_cache_.size());
  for (const auto& [txid, recent] : recent_txs_) pool.push_back(&recent.tx);
  for (const auto& [txid, cached] : tx_cache_) pool.push_back(&cached.tx);
  obs::ScopedSpan span(tracer_, "adapter.cmpct_decode", "reconcile");
  span.attr("sketch_cells", static_cast<std::uint64_t>(cb.sketch.cell_count()));
  span.attr("pool", static_cast<std::uint64_t>(pool.size()));
  auto decode = reconcile::CompactBlockCodec::decode(cb, pool);

  if (decode.complete()) {
    auto block = reconcile::CompactBlockCodec::assemble(cb, decode);
    if (block && block->is_well_formed()) {
      span.attr("outcome", "reconstructed");
      if (metrics_.cmpct_reconstructed != nullptr) metrics_.cmpct_reconstructed->inc();
      store_block(*block);
    } else {
      span.attr("outcome", "fallback_full");
      fetch_full_block(hash, from);
    }
    return;
  }
  span.attr("outcome", "getblocktxn");
  span.attr("missing", static_cast<std::uint64_t>(decode.missing.size()));
  if (metrics_.cmpct_fallback_getblocktxn != nullptr) {
    metrics_.cmpct_fallback_getblocktxn->inc();
  }
  btcnet::MsgGetBlockTxn request{hash, decode.missing};
  pending_compact_.emplace(hash, PendingCompact{cb, std::move(decode), from});
  network_->send(id_, from, std::move(request));
}

void BitcoinAdapter::handle_block_txn(NodeId from, const btcnet::MsgBlockTxn& msg) {
  auto it = pending_compact_.find(msg.block_hash);
  if (it == pending_compact_.end()) return;
  if (!reconcile::CompactBlockCodec::fill(it->second.decode, msg.transactions)) {
    fetch_full_block(msg.block_hash, from);
    return;
  }
  auto block = reconcile::CompactBlockCodec::assemble(it->second.compact, it->second.decode);
  if (block && block->is_well_formed()) {
    if (metrics_.cmpct_reconstructed != nullptr) metrics_.cmpct_reconstructed->inc();
    store_block(*block);
    return;
  }
  fetch_full_block(msg.block_hash, from);
}

void BitcoinAdapter::handle_get_data(NodeId from, const MsgGetData& msg) {
  // Peers may request transactions we advertised.
  for (const auto& txid : msg.tx_ids) {
    auto it = tx_cache_.find(txid);
    if (it != tx_cache_.end()) {
      network_->send(id_, from, MsgTx{it->second.tx});
      if (it->second.delivered_to.insert(from).second && metrics_.tx_delivered != nullptr) {
        metrics_.tx_delivered->inc();
      }
    }
  }
}

void BitcoinAdapter::request_block(const Hash256& hash) {
  if (blocks_.contains(hash) || pending_blocks_.contains(hash)) return;
  if (metrics_.block_requests != nullptr) metrics_.block_requests->inc();
  PendingBlock pending;
  auto peer = random_peer();
  if (peer) {
    pending.last_request = network_->sim().now();
    pending.asked = *peer;
    network_->send(id_, *peer, MsgGetData{{hash}, {}, config_.compact_block_fetch});
  }
  pending_blocks_.emplace(hash, pending);
  if (metrics_.pending_block_requests != nullptr) {
    metrics_.pending_block_requests->set(static_cast<std::int64_t>(pending_blocks_.size()));
  }
}

void BitcoinAdapter::advertise_transactions() {
  for (auto& [txid, cached] : tx_cache_) {
    for (NodeId peer : connections_) {
      if (cached.delivered_to.contains(peer)) continue;
      if (config_.recon_relay) {
        // Queue for the next sketch the peer initiates: the tx shows up as
        // a `have` entry in our diff and the body is pushed outright.
        recon_set(peer).add(txid);
      } else {
        network_->send(id_, peer, MsgInv{{}, {txid}});
      }
    }
  }
}

void BitcoinAdapter::expire_transactions() {
  util::SimTime now = network_->sim().now();
  std::erase_if(tx_cache_, [&](const auto& entry) {
    const CachedTx& cached = entry.second;
    // Drop when expired, or once enough *distinct* peers have pulled it.
    // Early-dropping as soon as every currently connected peer had it is
    // wrong: with a single transient peer the tx would be evicted minutes
    // before its 10-minute expiry (§III-B) and never reach later peers.
    // ℓ distinct deliveries match the intended full-fan-out condition.
    if (cached.expires <= now) {
      if (metrics_.tx_evicted_expired != nullptr) metrics_.tx_evicted_expired->inc();
      return true;
    }
    if (cached.delivered_to.size() >= config_.outbound_connections) {
      if (metrics_.tx_evicted_delivered != nullptr) metrics_.tx_evicted_delivered->inc();
      return true;
    }
    return false;
  });
  if (metrics_.tx_cache_size != nullptr) {
    metrics_.tx_cache_size->set(static_cast<std::int64_t>(tx_cache_.size()));
  }
  std::erase_if(recent_txs_, [&](const auto& entry) { return entry.second.expires <= now; });
  if (metrics_.recent_tx_pool != nullptr) {
    metrics_.recent_tx_pool->set(static_cast<std::int64_t>(recent_txs_.size()));
  }
}

AdapterResponse BitcoinAdapter::handle_request(const AdapterRequest& request) {
  obs::ScopedSpan span(tracer_, "adapter.handle_request", "adapter");
  span.attr("adapter", static_cast<std::uint64_t>(id_));
  span.attr("txs_in", static_cast<std::uint64_t>(request.transactions.size()));
  span.attr("processed_in", static_cast<std::uint64_t>(request.processed.size()));
  if (metrics_.requests_handled != nullptr) metrics_.requests_handled->inc();
  // Lines 1-3: cache the outbound transactions; they are advertised
  // asynchronously by the maintenance loop.
  for (const auto& raw : request.transactions) {
    try {
      bitcoin::Transaction tx = bitcoin::Transaction::parse(raw);
      Hash256 txid = tx.txid();
      if (!tx_cache_.contains(txid)) {
        tx_cache_.emplace(txid, CachedTx{std::move(tx),
                                         network_->sim().now() + config_.tx_cache_expiry,
                                         {}});
        if (metrics_.tx_cached != nullptr) {
          metrics_.tx_cached->inc();
          metrics_.tx_cache_size->set(static_cast<std::int64_t>(tx_cache_.size()));
        }
      }
    } catch (const util::DecodeError&) {
      // Undecodable bytes never reach the Bitcoin network.
    }
  }
  advertise_transactions();

  AdapterResponse response;
  const auto* anchor_entry = tree_.find(request.anchor);
  if (anchor_entry == nullptr) {
    span.attr("outcome", "unknown_anchor");
    span.event(obs::Severity::kWarn, "adapter.unknown_anchor");
    // Still a served round-trip: count it against the SLO as an error.
    if (slo_requests_ != nullptr) slo_requests_->record(20, /*error=*/true);
    return response;  // unknown anchor: nothing to serve
  }

  std::unordered_set<Hash256> in_a(request.processed.begin(), request.processed.end());
  in_a.insert(request.anchor);  // β* counts as processed
  std::unordered_set<Hash256> in_b;

  // The canister has blocks for everything in A; the adapter can free them.
  for (const auto& hash : request.processed) blocks_.erase(hash);

  bool multi_block = anchor_entry->height < config_.multi_block_below_height;
  std::size_t max_blocks = multi_block ? SIZE_MAX : 1;
  std::size_t total_bytes = 0;

  // Lines 4-16: BFS over the header tree starting at β*.
  std::deque<Hash256> queue;
  queue.push_back(request.anchor);
  while (!queue.empty() && response.next_headers.size() < config_.max_headers) {
    Hash256 cur = queue.front();
    queue.pop_front();
    const auto* entry = tree_.find(cur);
    if (entry == nullptr) continue;

    bool cur_in_a = in_a.contains(cur);
    if (!cur_in_a && (in_a.contains(entry->parent) || in_b.contains(entry->parent))) {
      auto block_it = blocks_.find(cur);
      if (block_it == blocks_.end()) {
        request_block(cur);  // served in a future response
      } else if (total_bytes < config_.max_response_bytes &&
                 response.blocks.size() < max_blocks) {
        // MAX_SIZE is a soft limit: an oversized block is still added.
        total_bytes += block_it->second.size();
        response.blocks.emplace_back(block_it->second, entry->header);
        in_b.insert(cur);
      }
    }
    if (!cur_in_a && !in_b.contains(cur)) {
      response.next_headers.push_back(entry->header);
      // Prefetch upcoming blocks so future requests can serve them in bulk
      // ("requested asynchronously so that the block may be served in the
      // response to a future request", §III-B).
      request_block(cur);
    }
    for (const auto& child : entry->children) queue.push_back(child);
  }
  span.attr("blocks", static_cast<std::uint64_t>(response.blocks.size()));
  span.attr("headers", static_cast<std::uint64_t>(response.next_headers.size()));
  span.attr("bytes", static_cast<std::uint64_t>(total_bytes));
  if (slo_requests_ != nullptr) {
    // Modelled serving latency: 20 µs fixed dispatch cost, 1 µs per 256
    // bytes of block payload copied out, 2 µs per upcoming header walked.
    // Deterministic by construction (no wall clock).
    std::uint64_t latency_us = 20 + static_cast<std::uint64_t>(total_bytes) / 256 +
                               2 * static_cast<std::uint64_t>(response.next_headers.size());
    slo_requests_->record(latency_us);
  }
  return response;
}

}  // namespace icbtc::adapter
