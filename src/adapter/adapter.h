// The Bitcoin adapter (§III-B): the per-IC-node process that connects the IC
// to the Bitcoin P2P network without intermediaries.
//
// It is an SPV-style client: it discovers peers through DNS seeds and addr
// gossip (thresholds t_l/t_u), keeps ℓ random outbound connections, syncs
// and validates the full block-header tree (storing *all* valid headers —
// fork resolution is deliberately left to the Bitcoin canister), fetches
// blocks on demand, relays outbound transactions from a 10-minute expiring
// cache, and answers the Bitcoin canister's requests per Algorithm 1.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "btcnet/network.h"
#include "chain/header_tree.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "reconcile/compact_block.h"
#include "reconcile/recon_set.h"

namespace icbtc::adapter {

struct AdapterConfig {
  /// ℓ: outbound connections to maintain (5 on mainnet).
  std::size_t outbound_connections = 5;
  /// t_l / t_u: address-book thresholds (500/2000 mainnet, 100/1000 testnet,
  /// 1/1 regtest).
  std::size_t addr_lower_threshold = 500;
  std::size_t addr_upper_threshold = 2000;
  /// MAX_HEADERS: cap on the upcoming-header set N per response.
  std::size_t max_headers = 100;
  /// MAX_SIZE: soft cap on total block bytes per response (2 MiB).
  std::size_t max_response_bytes = 2 * 1024 * 1024;
  /// Height above which only a single block is returned per request
  /// (multi-block responses speed up initial sync; single-block responses
  /// are required for the §IV-A downtime defence). The production adapter
  /// hardcodes a mainnet height; harnesses set it per experiment.
  int multi_block_below_height = 0;
  /// Outbound transactions expire from the cache after this long.
  util::SimTime tx_cache_expiry = 10 * util::kMinute;
  /// Fetch blocks as compact blocks (header + short ids + IBLT sketch, see
  /// src/reconcile), reconstructed from a pool of recently relayed
  /// transactions the adapter starts tracking when this is on. Falls back to
  /// full blocks when reconstruction fails.
  bool compact_block_fetch = false;
  /// Recently observed transactions are kept this long for reconstruction.
  util::SimTime recent_tx_expiry = 10 * util::kMinute;
  /// Retry interval for unanswered block requests.
  util::SimTime block_request_retry = 5 * util::kSecond;
  /// Period of the address/connection maintenance timer.
  util::SimTime maintenance_interval = 2 * util::kSecond;
  /// Network-wide relay seed; must match the nodes' NodeOptions::relay_salt
  /// so both ends of a link derive the same short-id space. The adapter
  /// always *answers* reconciliation sketches (it is a passive responder —
  /// it never runs a cadence of its own).
  std::uint64_t relay_salt = 0x69636274u;
  /// Queue outbound (canister) transactions into the per-peer
  /// reconciliation sets instead of periodically inv-flooding them; they
  /// then ride out as `have` entries of the next sketch a peer sends.
  bool recon_relay = false;

  static AdapterConfig for_params(const bitcoin::ChainParams& params);
};

/// The canister->adapter request of Algorithm 1: the anchor β*, the set A of
/// header hashes whose blocks the canister already has, and outbound
/// transactions T.
struct AdapterRequest {
  util::Hash256 anchor;
  std::vector<util::Hash256> processed;  // A
  std::vector<util::Bytes> transactions;  // raw serialized txs (T)
};

/// The adapter's response: blocks B (with their headers) extending the
/// canister's tree, and upcoming headers N the canister lacks blocks for.
struct AdapterResponse {
  std::vector<std::pair<bitcoin::Block, bitcoin::BlockHeader>> blocks;  // B
  std::vector<bitcoin::BlockHeader> next_headers;                       // N
};

class BitcoinAdapter : public btcnet::Endpoint {
 public:
  BitcoinAdapter(btcnet::Network& network, const bitcoin::ChainParams& params,
                 AdapterConfig config, util::Rng rng);
  ~BitcoinAdapter() override;

  BitcoinAdapter(const BitcoinAdapter&) = delete;
  BitcoinAdapter& operator=(const BitcoinAdapter&) = delete;

  btcnet::NodeId id() const { return id_; }
  const AdapterConfig& config() const { return config_; }

  /// Starts discovery, connection maintenance, and header sync.
  void start();
  void stop();

  /// Algorithm 1. Also ingests the request's transactions into the tx cache
  /// and prunes delivered blocks from the local block store.
  AdapterResponse handle_request(const AdapterRequest& request);

  /// Attaches a metrics registry (nullptr detaches): peer connections,
  /// header-sync progress, block-request retries, tx-cache size/evictions.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches): an "adapter.handle_request" span
  /// per Algorithm 1 round-trip, compact-decode spans with their outcome,
  /// and flight-recorder events for block-request retries and full-block
  /// fallbacks.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches an SLO tracker (nullptr detaches): each Algorithm 1 round-trip
  /// records a deterministic modelled serving latency (µs; a base cost plus
  /// per-byte and per-header terms — a model of adapter-side work, not a
  /// wall-clock measurement, so exports stay byte-identical across runs)
  /// into the tracker's "adapter.handle_request" endpoint.
  void set_slo(obs::SloTracker* slo);

  // Introspection.
  const chain::HeaderTree& header_tree() const { return tree_; }
  std::size_t known_addresses() const { return address_book_.size(); }
  std::size_t active_connections() const { return connections_.size(); }
  std::vector<btcnet::NodeId> connected_peers() const;
  bool has_block(const util::Hash256& hash) const { return blocks_.contains(hash); }
  std::size_t cached_transactions() const { return tx_cache_.size(); }
  std::size_t recent_tx_pool() const { return recent_txs_.size(); }
  std::size_t blocks_stored() const { return blocks_.size(); }
  bool in_discovery() const { return discovering_; }

  // btcnet::Endpoint interface.
  void deliver(btcnet::NodeId from, const btcnet::Message& msg) override;
  void on_disconnected(btcnet::NodeId peer) override;

 private:
  void maintain();  // periodic: connections, addresses, retries, expiry
  void request_addresses();
  void open_connections();
  void sync_headers(btcnet::NodeId peer);
  std::vector<util::Hash256> build_locator() const;
  void handle_headers(btcnet::NodeId from, const btcnet::MsgHeaders& msg);
  void handle_inv(btcnet::NodeId from, const btcnet::MsgInv& msg);
  void handle_block(const btcnet::MsgBlock& msg);
  void handle_get_data(btcnet::NodeId from, const btcnet::MsgGetData& msg);
  void handle_addr(const btcnet::MsgAddr& msg);
  void handle_tx(const btcnet::MsgTx& msg);
  void handle_cmpct_block(btcnet::NodeId from, const btcnet::MsgCmpctBlock& msg);
  void handle_block_txn(btcnet::NodeId from, const btcnet::MsgBlockTxn& msg);
  void handle_recon_sketch(btcnet::NodeId from, const btcnet::MsgReconSketch& msg);
  void handle_recon_finalize(btcnet::NodeId from, const btcnet::MsgReconFinalize& msg);
  /// Requests an unknown transaction into the recent pool (compact fetch /
  /// reconciliation observation path).
  void observe_tx_announcement(btcnet::NodeId from, const util::Hash256& txid,
                               btcnet::MsgGetData& request);
  reconcile::ReconSet& recon_set(btcnet::NodeId peer);
  /// Stores a fully validated block and clears its pending-request entry.
  void store_block(const bitcoin::Block& block);
  /// Re-requests `hash` as a full block after compact reconstruction failed.
  void fetch_full_block(const util::Hash256& hash, btcnet::NodeId peer);
  void request_block(const util::Hash256& hash);
  void advertise_transactions();
  void expire_transactions();
  std::int64_t now_s() const;
  std::optional<btcnet::NodeId> random_peer();

  btcnet::Network* network_;
  const bitcoin::ChainParams* params_;
  AdapterConfig config_;
  util::Rng rng_;
  btcnet::NodeId id_ = btcnet::kInvalidNode;

  bool running_ = false;
  bool discovering_ = true;
  util::EventHandle maintenance_timer_{};

  // Address book (discovered, not yet necessarily connected). Only IPv6
  // addresses are usable (§III-B).
  std::vector<btcnet::NetAddress> address_book_;
  std::unordered_set<btcnet::NodeId> known_address_ids_;
  std::unordered_set<btcnet::NodeId> connections_;

  // Header tree B_a (all valid headers, forks included) and block store B_a.
  chain::HeaderTree tree_;
  std::unordered_map<util::Hash256, bitcoin::Block> blocks_;

  struct PendingBlock {
    util::SimTime last_request = -1;
    btcnet::NodeId asked = btcnet::kInvalidNode;
  };
  std::unordered_map<util::Hash256, PendingBlock> pending_blocks_;

  struct CachedTx {
    bitcoin::Transaction tx;
    util::SimTime expires;
    /// Every peer that ever pulled this tx, including since-disconnected
    /// ones: eviction counts distinct deliveries, not current connections.
    std::unordered_set<btcnet::NodeId> delivered_to;
  };
  std::unordered_map<util::Hash256, CachedTx> tx_cache_;

  // Compact block fetch (config_.compact_block_fetch): recently relayed
  // transactions pulled from peer invs, used as the reconstruction pool.
  struct RecentTx {
    bitcoin::Transaction tx;
    util::SimTime expires;
  };
  std::unordered_map<util::Hash256, RecentTx> recent_txs_;
  std::unordered_set<util::Hash256> requested_txs_;

  /// Per-peer reconciliation sets (the transactions this adapter holds and
  /// the peer may lack), answered against incoming sketches. std::map keeps
  /// responses deterministic.
  std::map<btcnet::NodeId, reconcile::ReconSet> recon_sets_;

  // Compact blocks waiting for a getblocktxn answer.
  struct PendingCompact {
    reconcile::CompactBlock compact;
    reconcile::CompactBlockCodec::Decode decode;
    btcnet::NodeId from = btcnet::kInvalidNode;
  };
  std::unordered_map<util::Hash256, PendingCompact> pending_compact_;

  // Optional observability hooks; all nullptr when no registry is attached.
  struct Metrics {
    obs::Gauge* peers = nullptr;
    obs::Gauge* header_height = nullptr;
    obs::Counter* headers_accepted = nullptr;
    obs::Counter* blocks_received = nullptr;
    obs::Gauge* blocks_stored = nullptr;
    obs::Counter* block_requests = nullptr;
    obs::Counter* block_request_retries = nullptr;
    /// Saturation signal: blocks requested from peers but not yet stored.
    obs::Gauge* pending_block_requests = nullptr;
    obs::Counter* requests_handled = nullptr;
    obs::Gauge* tx_cache_size = nullptr;
    obs::Counter* tx_cached = nullptr;
    obs::Counter* tx_delivered = nullptr;
    obs::Counter* tx_evicted_expired = nullptr;
    obs::Counter* tx_evicted_delivered = nullptr;
    obs::Gauge* recent_tx_pool = nullptr;
    obs::Counter* cmpct_received = nullptr;
    obs::Counter* cmpct_reconstructed = nullptr;
    obs::Counter* cmpct_fallback_getblocktxn = nullptr;
    obs::Counter* cmpct_fallback_full = nullptr;
    obs::Counter* recon_sketches_answered = nullptr;
    obs::Counter* recon_txs_learned = nullptr;
  };
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
  obs::SloTracker::Endpoint* slo_requests_ = nullptr;
};

}  // namespace icbtc::adapter
