#include "chain/header_tree.h"

#include <algorithm>
#include <deque>

namespace icbtc::chain {

const char* to_string(AcceptResult r) {
  switch (r) {
    case AcceptResult::kAccepted: return "accepted";
    case AcceptResult::kDuplicate: return "duplicate";
    case AcceptResult::kOrphan: return "orphan";
    case AcceptResult::kInvalid: return "invalid";
  }
  return "?";
}

HeaderTree::HeaderTree(const bitcoin::ChainParams& params, const BlockHeader& root,
                       int root_height, const U256& root_prev_work)
    : params_(&params) {
  Entry e;
  e.header = root;
  e.hash = root.hash();
  e.height = root_height;
  e.block_work = bitcoin::work_from_bits(root.bits);
  e.cumulative_work = root_prev_work + e.block_work;
  e.parent = root.prev_hash;
  root_ = e.hash;
  best_tip_ = e.hash;
  max_height_ = root_height;
  by_height_[root_height].push_back(e.hash);
  tips_.insert(e.hash);
  entries_.emplace(e.hash, std::move(e));
}

const HeaderTree::Entry* HeaderTree::find(const Hash256& hash) const {
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

std::int64_t HeaderTree::median_time_past(const Hash256& hash) const {
  std::vector<std::uint32_t> times;
  times.reserve(static_cast<std::size_t>(params_->median_time_span));
  const Entry* cur = find(hash);
  while (cur != nullptr && times.size() < static_cast<std::size_t>(params_->median_time_span)) {
    times.push_back(cur->header.time);
    if (cur->hash == root_) break;
    cur = find(cur->parent);
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

std::uint32_t HeaderTree::expected_bits(const Hash256& parent_hash) const {
  const Entry* parent = find(parent_hash);
  if (parent == nullptr) return params_->pow_limit_bits;
  if (!params_->retargeting_enabled) return params_->pow_limit_bits;

  int next_height = parent->height + 1;
  if (next_height % params_->retarget_interval != 0) return parent->header.bits;

  // Walk back to the first block of the closing period.
  const Entry* first = parent;
  for (int i = 0; i < params_->retarget_interval - 1 && first->hash != root_; ++i) {
    const Entry* up = find(first->parent);
    if (up == nullptr) break;
    first = up;
  }
  std::int64_t actual = static_cast<std::int64_t>(parent->header.time) -
                        static_cast<std::int64_t>(first->header.time);
  std::int64_t target_timespan =
      params_->target_spacing_s * (params_->retarget_interval - 1);
  return bitcoin::next_target(parent->header.bits, actual, target_timespan, params_->pow_limit);
}

AcceptResult HeaderTree::validate(const BlockHeader& header, std::int64_t now_s,
                                  std::string* error, const ValidationOptions& opts) const {
  auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return AcceptResult::kInvalid;
  };

  Hash256 hash = header.hash();
  if (entries_.contains(hash)) return AcceptResult::kDuplicate;
  const Entry* parent = find(header.prev_hash);
  if (parent == nullptr) return AcceptResult::kOrphan;

  if (opts.check_difficulty) {
    std::uint32_t expected = expected_bits(header.prev_hash);
    if (header.bits != expected) return fail("incorrect difficulty bits");
  }
  if (opts.check_pow) {
    if (!bitcoin::check_proof_of_work(hash, header.bits, params_->pow_limit)) {
      return fail("proof of work check failed");
    }
  }
  if (opts.check_timestamp) {
    if (static_cast<std::int64_t>(header.time) <= median_time_past(header.prev_hash)) {
      return fail("timestamp not after median time past");
    }
    if (static_cast<std::int64_t>(header.time) > now_s + params_->max_future_drift_s) {
      return fail("timestamp too far in the future");
    }
  }
  return AcceptResult::kAccepted;
}

AcceptResult HeaderTree::accept(const BlockHeader& header, std::int64_t now_s, std::string* error,
                                const ValidationOptions& opts) {
  AcceptResult result = validate(header, now_s, error, opts);
  if (result != AcceptResult::kAccepted) return result;
  insert_unchecked(header);
  return AcceptResult::kAccepted;
}

void HeaderTree::insert_unchecked(const BlockHeader& header) {
  Entry& parent = entries_.at(header.prev_hash);
  Entry e;
  e.header = header;
  e.hash = header.hash();
  e.height = parent.height + 1;
  e.block_work = bitcoin::work_from_bits(header.bits);
  e.cumulative_work = parent.cumulative_work + e.block_work;
  e.parent = parent.hash;
  parent.children.push_back(e.hash);
  tips_.erase(parent.hash);
  tips_.insert(e.hash);
  by_height_[e.height].push_back(e.hash);
  max_height_ = std::max(max_height_, e.height);
  // First-seen wins ties: only strictly more work displaces the best tip.
  const Entry& best = entries_.at(best_tip_);
  if (e.cumulative_work > best.cumulative_work) best_tip_ = e.hash;
  entries_.emplace(e.hash, std::move(e));
}

std::vector<Hash256> HeaderTree::current_chain() const {
  std::vector<Hash256> chain;
  Hash256 cur = best_tip_;
  for (;;) {
    chain.push_back(cur);
    if (cur == root_) break;
    cur = entries_.at(cur).parent;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

std::vector<Hash256> HeaderTree::blocks_at_height(int height) const {
  auto it = by_height_.find(height);
  return it == by_height_.end() ? std::vector<Hash256>{} : it->second;
}

bool HeaderTree::is_ancestor_of(const Entry& ancestor, const Entry& node) const {
  const Entry* cur = &node;
  while (cur->height > ancestor.height) {
    auto it = entries_.find(cur->parent);
    if (it == entries_.end()) return false;
    cur = &it->second;
  }
  return cur->hash == ancestor.hash;
}

std::vector<const HeaderTree::Entry*> HeaderTree::subtree_tips(const Hash256& hash) const {
  std::vector<const Entry*> out;
  const Entry* base = find(hash);
  if (base == nullptr) return out;
  for (const auto& tip_hash : tips_) {
    const Entry& tip = entries_.at(tip_hash);
    if (is_ancestor_of(*base, tip)) out.push_back(&tip);
  }
  return out;
}

int HeaderTree::depth_count(const Hash256& hash) const {
  const Entry* base = find(hash);
  if (base == nullptr) return 0;
  int best = 0;
  for (const Entry* tip : subtree_tips(hash)) {
    best = std::max(best, tip->height - base->height + 1);
  }
  return best;
}

U256 HeaderTree::depth_work(const Hash256& hash) const {
  const Entry* base = find(hash);
  if (base == nullptr) return U256(0);
  const Entry* parent = find(base->parent);
  U256 below = (parent != nullptr) ? parent->cumulative_work
                                   : base->cumulative_work - base->block_work;
  U256 best(0);
  for (const Entry* tip : subtree_tips(hash)) {
    U256 depth = tip->cumulative_work - below;
    if (depth > best) best = depth;
  }
  return best;
}

int HeaderTree::confirmation_stability(const Hash256& hash) const {
  const Entry* base = find(hash);
  if (base == nullptr) return 0;
  int own_depth = depth_count(hash);
  int stability = own_depth;  // condition (1): d(b) >= δ
  for (const auto& other : blocks_at_height(base->height)) {
    if (other == hash) continue;
    stability = std::min(stability, own_depth - depth_count(other));  // condition (2)
  }
  return stability;
}

bool HeaderTree::is_confirmation_stable(const Hash256& hash, int delta) const {
  if (delta <= 0) return contains(hash);
  return confirmation_stability(hash) >= delta;
}

int HeaderTree::confirmations(const Hash256& hash) const {
  return std::max(0, confirmation_stability(hash));
}

bool HeaderTree::is_difficulty_stable(const Hash256& hash, int delta,
                                      const U256& reference_work) const {
  const Entry* base = find(hash);
  if (base == nullptr) return false;
  // threshold = δ * w(b*); reference work is far below 2^248 so this cannot
  // overflow in any realistic configuration.
  U256 threshold = crypto::mul_full(reference_work, U256(static_cast<std::uint64_t>(delta))).lo();
  U256 own = depth_work(hash);
  if (own < threshold) return false;
  for (const auto& other : blocks_at_height(base->height)) {
    if (other == hash) continue;
    U256 other_depth = depth_work(other);
    if (own < other_depth) return false;
    if (own - other_depth < threshold) return false;
  }
  return true;
}

void HeaderTree::reroot(const Hash256& keep) {
  const Entry* new_root = find(keep);
  if (new_root == nullptr) throw std::invalid_argument("reroot: unknown header");
  if (new_root->parent != root_) {
    throw std::invalid_argument("reroot: new root must be a child of the current root");
  }

  // Delete everything not in the subtree of `keep` (the old root and all
  // competing branches).
  std::deque<Hash256> to_delete;
  const Entry& old_root = entries_.at(root_);
  for (const auto& child : old_root.children) {
    if (child != keep) to_delete.push_back(child);
  }
  to_delete.push_back(root_);
  while (!to_delete.empty()) {
    Hash256 h = to_delete.front();
    to_delete.pop_front();
    auto it = entries_.find(h);
    if (it == entries_.end()) continue;
    for (const auto& child : it->second.children) {
      if (h == root_ && child == keep) continue;
      to_delete.push_back(child);
    }
    auto& at_height = by_height_[it->second.height];
    std::erase(at_height, h);
    if (at_height.empty()) by_height_.erase(it->second.height);
    tips_.erase(h);
    entries_.erase(it);
  }
  root_ = keep;
  entries_.at(root_).parent = Hash256{};

  // max height and best tip may have lived on a deleted branch.
  max_height_ = 0;
  for (const auto& [height, hashes] : by_height_) {
    if (!hashes.empty()) max_height_ = std::max(max_height_, height);
  }
  recompute_best_tip();
}

void HeaderTree::recompute_best_tip() {
  // Deterministic scan: highest cumulative work; ties broken by hash to stay
  // stable across container iteration orders.
  const Entry* best = nullptr;
  for (const auto& tip_hash : tips_) {
    const Entry& e = entries_.at(tip_hash);
    if (best == nullptr || e.cumulative_work > best->cumulative_work ||
        (e.cumulative_work == best->cumulative_work && e.hash < best->hash)) {
      best = &e;
    }
  }
  best_tip_ = best != nullptr ? best->hash : root_;
}

}  // namespace icbtc::chain
