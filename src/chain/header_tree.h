// The block-header tree and the paper's stability calculus (§II-B, §II-C).
//
// Headers form a tree rooted at a trusted block (genesis, or the Bitcoin
// canister's anchor). Two depth functions are provided:
//   d_c (cost 1 per block)      — confirmation counting,
//   d_w (cost = block work)     — difficulty weighting,
// and δ-stability follows Definition II.1: a block b is δ-stable iff
//   (1) d(b) >= δ and (2) for every other block b' at the same height,
//   d(b) - d(b') >= δ.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bitcoin/block.h"
#include "bitcoin/params.h"
#include "bitcoin/pow.h"

namespace icbtc::chain {

using bitcoin::BlockHeader;
using crypto::U256;
using util::Hash256;

/// Result of offering a header to the tree.
enum class AcceptResult {
  kAccepted,
  kDuplicate,  // already known
  kOrphan,     // parent unknown (also: below the tree root)
  kInvalid,    // failed validation
};

const char* to_string(AcceptResult r);

/// Validation configuration. The adapter and the canister run the same checks
/// (§III-B / §III-C): well-formedness, parent linkage, correct difficulty
/// bits, proof of work, and timestamp sanity.
struct ValidationOptions {
  bool check_pow = true;
  bool check_difficulty = true;
  bool check_timestamp = true;
};

class HeaderTree {
 public:
  struct Entry {
    BlockHeader header;
    Hash256 hash;
    int height = 0;
    U256 block_work;             // w(b)
    U256 cumulative_work;        // Σ w over root..b
    Hash256 parent;
    std::vector<Hash256> children;
  };

  /// Creates a tree rooted at `root` (trusted; not validated) at the given
  /// height with the given cumulative work below it.
  HeaderTree(const bitcoin::ChainParams& params, const BlockHeader& root, int root_height = 0,
             const U256& root_prev_work = U256(0));

  const bitcoin::ChainParams& params() const { return *params_; }

  /// Offers a header. `now_s` is the current wall-clock used for the
  /// future-drift check. On kInvalid, `error` (if non-null) says why.
  AcceptResult accept(const BlockHeader& header, std::int64_t now_s, std::string* error = nullptr,
                      const ValidationOptions& opts = {});

  /// Validates a header against the tree without inserting. Returns
  /// kAccepted if it would be accepted.
  AcceptResult validate(const BlockHeader& header, std::int64_t now_s,
                        std::string* error = nullptr, const ValidationOptions& opts = {}) const;

  bool contains(const Hash256& hash) const { return entries_.contains(hash); }
  const Entry* find(const Hash256& hash) const;
  const Entry& root() const { return entries_.at(root_); }
  Hash256 root_hash() const { return root_; }
  std::size_t size() const { return entries_.size(); }

  /// All leaf blocks.
  std::vector<Hash256> tips() const { return std::vector<Hash256>(tips_.begin(), tips_.end()); }

  /// The tip of the current blockchain: maximizes cumulative work
  /// (first-seen wins ties, as in Bitcoin Core).
  Hash256 best_tip() const { return best_tip_; }
  int best_height() const { return entries_.at(best_tip_).height; }
  int max_height() const { return max_height_; }

  /// The current blockchain from the root to the best tip (inclusive).
  std::vector<Hash256> current_chain() const;

  /// Hashes of all blocks at the given height.
  std::vector<Hash256> blocks_at_height(int height) const;

  /// d_c(b): maximum number of blocks on any path from b to a tip in its
  /// subtree (>= 1: b itself counts).
  int depth_count(const Hash256& hash) const;

  /// d_w(b): maximum cumulative work from b to any tip in its subtree.
  U256 depth_work(const Hash256& hash) const;

  /// Confirmation-based stability of b: the largest δ for which b is
  /// δ-stable under d_c — min(d_c(b), min over competitors of
  /// d_c(b) - d_c(b')). Negative when a competing branch is deeper
  /// (cf. Fig. 3). INT_MIN is never returned; values are small.
  int confirmation_stability(const Hash256& hash) const;

  /// True iff b is confirmation-based δ-stable (δ >= 1).
  bool is_confirmation_stable(const Hash256& hash, int delta) const;

  /// True iff b is difficulty-based δ-stable with respect to reference work
  /// w*: d_w(b) >= δ*w* and every competitor trails by at least δ*w*
  /// (§II-C: d_w(b)/w(b*) >= δ).
  bool is_difficulty_stable(const Hash256& hash, int delta, const U256& reference_work) const;

  /// Number of confirmations of the block per the paper's definition: the
  /// confirmation-based stability of its block (clamped at 0).
  int confirmations(const Hash256& hash) const;

  /// Removes every header at the root's children level except `keep`, along
  /// with their subtrees, then re-roots the tree at `keep`. This is the
  /// canister's anchor advance: the new anchor becomes the trusted root and
  /// competing stale forks are discarded.
  void reroot(const Hash256& keep);

  /// Expected compact bits for a child of `parent_hash` at time `time`.
  std::uint32_t expected_bits(const Hash256& parent_hash) const;

  /// Median time past over the last `median_time_span` ancestors of `hash`
  /// (inclusive).
  std::int64_t median_time_past(const Hash256& hash) const;

 private:
  void insert_unchecked(const BlockHeader& header);
  void recompute_best_tip();
  /// Collects the tips lying in the subtree of `hash`.
  std::vector<const Entry*> subtree_tips(const Hash256& hash) const;
  bool is_ancestor_of(const Entry& ancestor, const Entry& node) const;

  const bitcoin::ChainParams* params_;
  std::unordered_map<Hash256, Entry> entries_;
  std::unordered_map<int, std::vector<Hash256>> by_height_;
  std::unordered_set<Hash256> tips_;
  Hash256 root_;
  Hash256 best_tip_;
  int max_height_ = 0;
};

}  // namespace icbtc::chain
