// Helpers to construct valid child blocks/headers on a HeaderTree: used by
// the simulated miners, tests, and benchmark workload generators.
#pragma once

#include <vector>

#include "bitcoin/params.h"
#include "chain/header_tree.h"

namespace icbtc::chain {

/// Builds a header extending `parent` in `tree` with the expected difficulty
/// bits, the given timestamp, and a nonce ground until the proof of work is
/// met (cheap under the simulation's pow limit).
bitcoin::BlockHeader build_child_header(const HeaderTree& tree, const Hash256& parent,
                                        std::uint32_t time, const Hash256& merkle_root);

/// Grinds the nonce of `header` until it meets its own target.
void grind_pow(bitcoin::BlockHeader& header, const crypto::U256& pow_limit);

/// Builds a full block extending `parent`: a coinbase paying `subsidy` to the
/// given script plus the supplied transactions, with a valid Merkle root and
/// proof of work. `coinbase_tag` makes coinbases unique across heights.
bitcoin::Block build_child_block(const HeaderTree& tree, const Hash256& parent,
                                 std::uint32_t time, const util::Bytes& coinbase_script,
                                 bitcoin::Amount subsidy,
                                 std::vector<bitcoin::Transaction> transactions,
                                 std::uint64_t coinbase_tag);

}  // namespace icbtc::chain
