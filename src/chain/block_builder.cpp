#include "chain/block_builder.h"

#include <stdexcept>

namespace icbtc::chain {

void grind_pow(bitcoin::BlockHeader& header, const crypto::U256& pow_limit) {
  for (std::uint64_t nonce = 0; nonce <= 0xffffffffULL; ++nonce) {
    header.nonce = static_cast<std::uint32_t>(nonce);
    if (bitcoin::check_proof_of_work(header.hash(), header.bits, pow_limit)) return;
  }
  throw std::runtime_error("grind_pow: nonce space exhausted (target too hard for simulation)");
}

bitcoin::BlockHeader build_child_header(const HeaderTree& tree, const Hash256& parent,
                                        std::uint32_t time, const Hash256& merkle_root) {
  const HeaderTree::Entry* p = tree.find(parent);
  if (p == nullptr) throw std::invalid_argument("build_child_header: unknown parent");
  bitcoin::BlockHeader h;
  h.version = 4;
  h.prev_hash = parent;
  h.merkle_root = merkle_root;
  h.time = time;
  h.bits = tree.expected_bits(parent);
  grind_pow(h, tree.params().pow_limit);
  return h;
}

bitcoin::Block build_child_block(const HeaderTree& tree, const Hash256& parent,
                                 std::uint32_t time, const util::Bytes& coinbase_script,
                                 bitcoin::Amount subsidy,
                                 std::vector<bitcoin::Transaction> transactions,
                                 std::uint64_t coinbase_tag) {
  bitcoin::Block block;
  bitcoin::Transaction coinbase;
  coinbase.version = 1;
  bitcoin::TxIn in;
  in.prevout = bitcoin::OutPoint::null();
  // The tag makes the coinbase (and so the txid) unique per block, mirroring
  // Bitcoin's height-in-coinbase rule (BIP 34).
  util::ByteWriter tag;
  tag.u64le(coinbase_tag);
  in.script_sig = tag.data();
  coinbase.inputs.push_back(std::move(in));
  bitcoin::TxOut out;
  out.value = subsidy;
  out.script_pubkey = coinbase_script;
  coinbase.outputs.push_back(std::move(out));

  block.transactions.push_back(std::move(coinbase));
  for (auto& tx : transactions) block.transactions.push_back(std::move(tx));

  block.header = build_child_header(tree, parent, time, Hash256{});
  block.header.merkle_root = block.compute_merkle_root();
  grind_pow(block.header, tree.params().pow_limit);
  return block;
}

}  // namespace icbtc::chain
