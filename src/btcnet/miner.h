// Simulated miners: an honest miner attached to a full node (Poisson block
// production, mempool inclusion) and an adversary that builds a private fork
// at a configurable share of the network hash rate (the attacker of §IV-A).
#pragma once

#include <memory>
#include <vector>

#include "btcnet/node.h"
#include "chain/block_builder.h"

namespace icbtc::btcnet {

class Miner {
 public:
  /// `hashrate_share` in (0, 1]: the fraction of the network's hash power
  /// this miner commands; its expected block interval is
  /// target_spacing / share.
  Miner(BitcoinNode& node, double hashrate_share, util::Rng rng);

  void start();
  void stop();
  bool running() const { return running_; }

  std::size_t blocks_mined() const { return blocks_mined_; }
  const util::Bytes& coinbase_script() const { return coinbase_script_; }

  /// Mines one block immediately on the node's best tip (test helper).
  bitcoin::Block mine_one();

 private:
  void schedule_next();
  void on_block_found();

  BitcoinNode* node_;
  double share_;
  util::Rng rng_;
  util::Bytes coinbase_script_;
  util::EventHandle pending_{};
  bool running_ = false;
  std::size_t blocks_mined_ = 0;
  std::uint64_t coinbase_counter_ = 0;
};

/// An adversary mining a private fork. It snapshots the honest chain at a
/// fork point and extends it privately; the produced blocks/headers can then
/// be injected into adapters or the canister by attack harnesses.
class AdversaryMiner {
 public:
  /// Forks the private chain off `fork_point` (which must exist in
  /// `honest_view`'s tree with its block available).
  AdversaryMiner(const BitcoinNode& honest_view, const util::Hash256& fork_point,
                 double hashrate_share, util::Rng rng);

  /// Mines the next private block deterministically (no scheduling); returns
  /// it. `time` is the claimed block timestamp.
  const bitcoin::Block& mine_next(std::uint32_t time);

  /// Expected seconds to find each block at this adversary's hash share.
  double expected_block_interval_s() const;

  /// Samples the time to mine the next block (exponential).
  double sample_block_interval_s(util::Rng& rng) const;

  const std::vector<bitcoin::Block>& private_blocks() const { return private_blocks_; }
  std::vector<bitcoin::BlockHeader> private_headers() const;
  const chain::HeaderTree& tree() const { return tree_; }
  util::Hash256 tip() const { return tip_; }
  int tip_height() const { return tree_.find(tip_)->height; }

 private:
  const bitcoin::ChainParams* params_;
  double share_;
  util::Rng rng_;
  chain::HeaderTree tree_;  // rooted at the fork point
  util::Hash256 tip_;
  std::vector<bitcoin::Block> private_blocks_;
  std::uint64_t coinbase_counter_ = 0;
};

}  // namespace icbtc::btcnet
