#include "btcnet/harness.h"

namespace icbtc::btcnet {

BitcoinNetworkHarness::BitcoinNetworkHarness(util::Simulation& sim,
                                             const bitcoin::ChainParams& params,
                                             BitcoinNetworkConfig config, std::uint64_t seed)
    : network_(sim, util::Rng(seed)), params_(&params), rng_(seed ^ 0x9e3779b97f4a7c15ULL) {
  if (config.num_nodes == 0) throw std::invalid_argument("harness: need at least one node");

  nodes_.reserve(config.num_nodes);
  for (std::size_t i = 0; i < config.num_nodes; ++i) {
    bool ipv6 = rng_.next_double() < config.ipv6_fraction;
    nodes_.push_back(std::make_unique<BitcoinNode>(network_, params, config.node_options, ipv6));
  }

  // Topology: each node opens `connections_per_node` outbound links to
  // random distinct peers (duplicate links collapse, as in Bitcoin).
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::size_t want = std::min(config.connections_per_node, nodes_.size() - 1);
    std::size_t attempts = 0;
    std::size_t made = 0;
    while (made < want && attempts < want * 10) {
      ++attempts;
      std::size_t j = static_cast<std::size_t>(rng_.next_below(nodes_.size()));
      if (j == i) continue;
      if (network_.connect(nodes_[i]->id(), nodes_[j]->id())) ++made;
    }
  }

  for (std::size_t i = 0; i < std::min(config.num_dns_seeds, nodes_.size()); ++i) {
    network_.add_dns_seed(nodes_[i]->id());
  }

  // Miners attach to the first `num_miners` nodes with equal hash shares.
  std::size_t n_miners = std::min(config.num_miners, nodes_.size());
  double share = n_miners > 0 ? 1.0 / static_cast<double>(n_miners) : 0.0;
  for (std::size_t i = 0; i < n_miners; ++i) {
    miners_.push_back(std::make_unique<Miner>(*nodes_[i], share, rng_.fork()));
  }
}

std::vector<Miner*> BitcoinNetworkHarness::miners() {
  std::vector<Miner*> out;
  out.reserve(miners_.size());
  for (auto& m : miners_) out.push_back(m.get());
  return out;
}

void BitcoinNetworkHarness::start_miners() {
  for (auto& m : miners_) m->start();
}

void BitcoinNetworkHarness::stop_miners() {
  for (auto& m : miners_) m->stop();
}

int BitcoinNetworkHarness::max_best_height() const {
  int best = 0;
  for (const auto& n : nodes_) best = std::max(best, n->best_height());
  return best;
}

bool BitcoinNetworkHarness::converged() const {
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    if (nodes_[i]->best_tip() != nodes_[0]->best_tip()) return false;
  }
  return true;
}

bool BitcoinNetworkHarness::broadcast_tx(const bitcoin::Transaction& tx) {
  std::size_t i = static_cast<std::size_t>(rng_.next_below(nodes_.size()));
  return nodes_[i]->submit_tx(tx);
}

}  // namespace icbtc::btcnet
