// Protocol-level messages exchanged on the simulated Bitcoin P2P network.
// These model the subset of the Bitcoin wire protocol the integration needs:
// inventory announcement, header sync, block/tx download, and address gossip.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "bitcoin/block.h"

namespace icbtc::btcnet {

/// Identifies an endpoint on the simulated network (node, adapter, ...).
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffff;

/// A network address record as gossiped via addr messages. The IPv6 flag
/// models the constraint that IC nodes only reach IPv6 Bitcoin peers (§III-B).
struct NetAddress {
  NodeId id = kInvalidNode;
  bool ipv6 = true;

  bool operator==(const NetAddress&) const = default;
};

struct MsgInv {
  std::vector<util::Hash256> block_hashes;
  std::vector<util::Hash256> tx_ids;
};

/// getheaders: block locator (newest first) plus optional stop hash.
struct MsgGetHeaders {
  std::vector<util::Hash256> locator;
  util::Hash256 stop;  // zero = as many as allowed
};

struct MsgHeaders {
  std::vector<bitcoin::BlockHeader> headers;
};

struct MsgGetData {
  std::vector<util::Hash256> block_hashes;
  std::vector<util::Hash256> tx_ids;
};

struct MsgBlock {
  bitcoin::Block block;
};

struct MsgNotFound {
  std::vector<util::Hash256> block_hashes;
};

struct MsgTx {
  bitcoin::Transaction tx;
};

struct MsgGetAddr {};

struct MsgAddr {
  std::vector<NetAddress> addresses;
};

using Message = std::variant<MsgInv, MsgGetHeaders, MsgHeaders, MsgGetData, MsgBlock, MsgNotFound,
                             MsgTx, MsgGetAddr, MsgAddr>;

/// Maximum headers per headers message, as in Bitcoin.
constexpr std::size_t kMaxHeadersPerMsg = 2000;

/// Approximate serialized size of a message, used for the latency model.
std::size_t message_size(const Message& msg);

}  // namespace icbtc::btcnet
