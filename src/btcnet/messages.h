// Protocol-level messages exchanged on the simulated Bitcoin P2P network.
// These model the subset of the Bitcoin wire protocol the integration needs:
// inventory announcement, header sync, block/tx download, and address gossip.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "bitcoin/block.h"
#include "reconcile/compact_block.h"

namespace icbtc::btcnet {

/// Identifies an endpoint on the simulated network (node, adapter, ...).
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffff;

/// A network address record as gossiped via addr messages. The IPv6 flag
/// models the constraint that IC nodes only reach IPv6 Bitcoin peers (§III-B).
struct NetAddress {
  NodeId id = kInvalidNode;
  bool ipv6 = true;

  bool operator==(const NetAddress&) const = default;
};

struct MsgInv {
  std::vector<util::Hash256> block_hashes;
  std::vector<util::Hash256> tx_ids;
};

/// getheaders: block locator (newest first) plus optional stop hash.
struct MsgGetHeaders {
  std::vector<util::Hash256> locator;
  util::Hash256 stop;  // zero = as many as allowed
};

struct MsgHeaders {
  std::vector<bitcoin::BlockHeader> headers;
};

struct MsgGetData {
  std::vector<util::Hash256> block_hashes;
  std::vector<util::Hash256> tx_ids;
  /// When set, the peer answers block requests with MsgCmpctBlock instead of
  /// MsgBlock (the adapter's opt-in compact block fetch).
  bool compact_blocks = false;
};

struct MsgBlock {
  bitcoin::Block block;
};

struct MsgNotFound {
  std::vector<util::Hash256> block_hashes;
};

struct MsgTx {
  bitcoin::Transaction tx;
};

struct MsgGetAddr {};

struct MsgAddr {
  std::vector<NetAddress> addresses;
};

/// Compact block announcement (BIP152-style high-bandwidth push, with an
/// IBLT sketch instead of prefilled transactions; see src/reconcile).
struct MsgCmpctBlock {
  reconcile::CompactBlock compact;
};

/// Request for the transactions at the given positions of a compact block's
/// short-id list (0-based, coinbase excluded) after reconstruction failed.
struct MsgGetBlockTxn {
  util::Hash256 block_hash;
  std::vector<std::uint32_t> indexes;
};

/// Response to MsgGetBlockTxn: the requested transactions, in index order.
struct MsgBlockTxn {
  util::Hash256 block_hash;
  std::vector<bitcoin::Transaction> transactions;
};

using Message = std::variant<MsgInv, MsgGetHeaders, MsgHeaders, MsgGetData, MsgBlock, MsgNotFound,
                             MsgTx, MsgGetAddr, MsgAddr, MsgCmpctBlock, MsgGetBlockTxn,
                             MsgBlockTxn>;

/// Maximum headers per headers message, as in Bitcoin.
constexpr std::size_t kMaxHeadersPerMsg = 2000;

/// Approximate serialized size of a message, used for the latency model.
std::size_t message_size(const Message& msg);

}  // namespace icbtc::btcnet
