// Protocol-level messages exchanged on the simulated Bitcoin P2P network.
// These model the subset of the Bitcoin wire protocol the integration needs:
// inventory announcement, header sync, block/tx download, and address gossip.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "bitcoin/block.h"
#include "reconcile/compact_block.h"
#include "reconcile/recon_set.h"

namespace icbtc::btcnet {

/// Identifies an endpoint on the simulated network (node, adapter, ...).
using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xffffffff;

/// A network address record as gossiped via addr messages. The IPv6 flag
/// models the constraint that IC nodes only reach IPv6 Bitcoin peers (§III-B).
struct NetAddress {
  NodeId id = kInvalidNode;
  bool ipv6 = true;

  bool operator==(const NetAddress&) const = default;
};

struct MsgInv {
  std::vector<util::Hash256> block_hashes;
  std::vector<util::Hash256> tx_ids;
};

/// getheaders: block locator (newest first) plus optional stop hash.
struct MsgGetHeaders {
  std::vector<util::Hash256> locator;
  util::Hash256 stop;  // zero = as many as allowed
};

struct MsgHeaders {
  std::vector<bitcoin::BlockHeader> headers;
};

struct MsgGetData {
  std::vector<util::Hash256> block_hashes;
  std::vector<util::Hash256> tx_ids;
  /// When set, the peer answers block requests with MsgCmpctBlock instead of
  /// MsgBlock (the adapter's opt-in compact block fetch).
  bool compact_blocks = false;
};

struct MsgBlock {
  bitcoin::Block block;
};

struct MsgNotFound {
  std::vector<util::Hash256> block_hashes;
  /// Requested transactions the peer no longer has (evicted, replaced, or
  /// confirmed since the announcement); the requester clears its pending
  /// state instead of waiting forever.
  std::vector<util::Hash256> tx_ids;
};

struct MsgTx {
  bitcoin::Transaction tx;
};

struct MsgGetAddr {};

struct MsgAddr {
  std::vector<NetAddress> addresses;
};

/// Compact block announcement (BIP152-style high-bandwidth push, with an
/// IBLT sketch instead of prefilled transactions; see src/reconcile).
struct MsgCmpctBlock {
  reconcile::CompactBlock compact;
};

/// Request for the transactions at the given positions of a compact block's
/// short-id list (0-based, coinbase excluded) after reconstruction failed.
struct MsgGetBlockTxn {
  util::Hash256 block_hash;
  std::vector<std::uint32_t> indexes;
};

/// Response to MsgGetBlockTxn: the requested transactions, in index order.
struct MsgBlockTxn {
  util::Hash256 block_hash;
  std::vector<bitcoin::Transaction> transactions;
};

/// Opens one transaction-reconciliation round (Erlay-style): a sketch of the
/// initiator's pending-announcement set for this link. `part` 0 is the whole
/// set; parts 1/2 are the parity halves sent after a failed part-0 decode
/// (bisection doubles effective capacity at the same cell count).
struct MsgReconSketch {
  std::uint32_t round = 0;
  std::uint8_t part = 0;
  /// Initiator's set size for this part (feeds the responder's divergence
  /// estimator).
  std::uint32_t set_size = 0;
  reconcile::ShortIdSketch sketch;
};

/// Responder's answer to a sketch: on successful peel, the short ids the
/// responder lacks (`want`); on decode failure only the flag, and the
/// initiator bisects or gives up. Responder-only transactions are pushed
/// directly as MsgTx alongside this message — the decoded sketch proves the
/// initiator lacks them, so no announcement handshake is needed and the push
/// can never duplicate a payload the way blind tx-flooding would.
struct MsgReconDiff {
  std::uint32_t round = 0;
  std::uint8_t part = 0;
  bool decode_failed = false;
  /// Responder's set size for this part (feeds the initiator's estimator).
  std::uint32_t set_size = 0;
  /// How many responder-only transactions were pushed alongside this diff
  /// (feeds the initiator's estimator; the bodies travel as MsgTx).
  std::uint32_t have_count = 0;
  std::vector<std::uint64_t> want;
  /// Fallback announcements for responder-only transactions whose bodies
  /// were no longer available to push (e.g. mined out of the mempool
  /// mid-round); the initiator fetches these with getdata.
  std::vector<util::Hash256> have_txs;
};

/// Abandons the sketch path for a round after both bisection halves failed
/// to decode: `tx_ids` is the initiator's entire pending set, and the
/// responder answers by announcing its own full pending set back as a plain
/// inv. (The successful path needs no closing message: wants are resolved by
/// direct MsgTx pushes.)
struct MsgReconFinalize {
  std::uint32_t round = 0;
  bool full_inv = false;
  std::vector<util::Hash256> tx_ids;
};

using Message = std::variant<MsgInv, MsgGetHeaders, MsgHeaders, MsgGetData, MsgBlock, MsgNotFound,
                             MsgTx, MsgGetAddr, MsgAddr, MsgCmpctBlock, MsgGetBlockTxn,
                             MsgBlockTxn, MsgReconSketch, MsgReconDiff, MsgReconFinalize>;

/// Maximum headers per headers message, as in Bitcoin.
constexpr std::size_t kMaxHeadersPerMsg = 2000;

/// Approximate serialized size of a message, used for the latency model.
std::size_t message_size(const Message& msg);

}  // namespace icbtc::btcnet
