#include "btcnet/node.h"

#include <algorithm>

#include "bitcoin/script.h"
#include "util/log.h"

namespace icbtc::btcnet {

using bitcoin::Block;
using bitcoin::OutPoint;
using bitcoin::Transaction;
using util::Hash256;

BitcoinNode::BitcoinNode(Network& network, const bitcoin::ChainParams& params,
                         NodeOptions options, bool ipv6)
    : network_(&network),
      params_(&params),
      options_(options),
      tree_(params, params.genesis_header) {
  Block genesis = bitcoin::genesis_block(params);
  active_tip_ = genesis.hash();
  auto undo = utxos_.apply_block(genesis, 0);
  blocks_.emplace(genesis.hash(), std::move(genesis));
  (void)undo;  // genesis is never rolled back
  id_ = network.attach(this, ipv6, /*gossiped=*/true);
}

BitcoinNode::~BitcoinNode() {
  if (network_->exists(id_)) network_->detach(id_);
}

const Block* BitcoinNode::get_block(const Hash256& hash) const {
  auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : &it->second;
}

std::vector<Transaction> BitcoinNode::mempool_snapshot() const {
  std::vector<const MempoolEntry*> entries;
  entries.reserve(mempool_.size());
  for (const auto& [txid, entry] : mempool_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const MempoolEntry* a, const MempoolEntry* b) { return a->sequence < b->sequence; });
  std::vector<Transaction> out;
  out.reserve(entries.size());
  for (const auto* e : entries) out.push_back(e->tx);
  return out;
}

std::int64_t BitcoinNode::now_s() const {
  return static_cast<std::int64_t>(params_->genesis_header.time) +
         network_->sim().now() / util::kSecond;
}

bool BitcoinNode::submit_block(const Block& block) { return accept_block(block, kInvalidNode); }

bool BitcoinNode::submit_tx(const Transaction& tx) { return accept_tx(tx, kInvalidNode); }

void BitcoinNode::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.mempool_size = &registry->gauge("node.mempool.size");
  metrics_.mempool_admitted = &registry->counter("node.mempool.admitted");
  metrics_.mempool_rejected = &registry->counter("node.mempool.rejected");
  metrics_.mempool_evicted_block = &registry->counter("node.mempool.evicted_block");
  metrics_.mempool_evicted_conflict = &registry->counter("node.mempool.evicted_conflict");
  metrics_.orphan_blocks = &registry->counter("node.orphan_blocks");
  metrics_.cmpct_sent = &registry->counter("cmpct.sent");
  metrics_.cmpct_received = &registry->counter("cmpct.received");
  metrics_.cmpct_decode_success = &registry->counter("cmpct.decode_success");
  metrics_.cmpct_peel_failure = &registry->counter("cmpct.peel_failure");
  metrics_.cmpct_fallback_getblocktxn = &registry->counter("cmpct.fallback.getblocktxn");
  metrics_.cmpct_fallback_full = &registry->counter("cmpct.fallback.full");
  metrics_.cmpct_bytes_sketch = &registry->counter("cmpct.bytes.compact");
  metrics_.cmpct_bytes_full_equiv = &registry->counter("cmpct.bytes.full_equiv");
  metrics_.cmpct_sketch_cells =
      &registry->histogram("cmpct.sketch_cells", obs::Histogram::decade_bounds(1, 100000));
}

void BitcoinNode::deliver(NodeId from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MsgInv>) {
          handle_inv(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetHeaders>) {
          handle_get_headers(from, m);
        } else if constexpr (std::is_same_v<T, MsgHeaders>) {
          handle_headers(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetData>) {
          handle_get_data(from, m);
        } else if constexpr (std::is_same_v<T, MsgBlock>) {
          handle_block(from, m);
        } else if constexpr (std::is_same_v<T, MsgTx>) {
          handle_tx(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetAddr>) {
          handle_get_addr(from);
        } else if constexpr (std::is_same_v<T, MsgAddr>) {
          handle_addr(from, m);
        } else if constexpr (std::is_same_v<T, MsgCmpctBlock>) {
          handle_cmpct_block(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetBlockTxn>) {
          handle_get_block_txn(from, m);
        } else if constexpr (std::is_same_v<T, MsgBlockTxn>) {
          handle_block_txn(from, m);
        } else if constexpr (std::is_same_v<T, MsgNotFound>) {
          // Nothing to do: the request simply stays unanswered.
        }
      },
      msg);
}

void BitcoinNode::on_connected(NodeId peer) {
  // Start header sync with the new peer.
  network_->send(id_, peer, MsgGetHeaders{build_locator(), Hash256{}});
}

std::vector<Hash256> BitcoinNode::build_locator() const {
  // Standard exponentially-spaced locator along the best chain.
  std::vector<Hash256> chain = tree_.current_chain();
  std::vector<Hash256> locator;
  std::size_t step = 1;
  std::size_t i = chain.size();
  while (i > 0) {
    --i;
    locator.push_back(chain[i]);
    if (locator.size() > 10) step *= 2;
    if (i < step) break;
    i -= step - 1;
  }
  if (locator.empty() || locator.back() != chain.front()) locator.push_back(chain.front());
  return locator;
}

void BitcoinNode::handle_inv(NodeId from, const MsgInv& msg) {
  MsgGetData request;
  for (const auto& hash : msg.block_hashes) {
    if (blocks_.contains(hash)) continue;
    announced_by_[hash].insert(from);
    if (requested_blocks_.contains(hash) || pending_compact_.contains(hash)) continue;
    requested_blocks_.insert(hash);
    request.block_hashes.push_back(hash);
  }
  for (const auto& txid : msg.tx_ids) {
    if (mempool_.contains(txid)) continue;
    announced_by_[txid].insert(from);
    if (requested_txs_.contains(txid)) continue;
    requested_txs_.insert(txid);
    request.tx_ids.push_back(txid);
  }
  if (!request.block_hashes.empty() || !request.tx_ids.empty()) {
    network_->send(id_, from, std::move(request));
  }
}

void BitcoinNode::handle_get_headers(NodeId from, const MsgGetHeaders& msg) {
  // Find the fork point: first locator entry we know on our best chain.
  std::vector<Hash256> chain = tree_.current_chain();
  std::unordered_map<Hash256, std::size_t> position;
  position.reserve(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) position[chain[i]] = i;

  std::size_t start = 0;  // default: from the root
  for (const auto& hash : msg.locator) {
    auto it = position.find(hash);
    if (it != position.end()) {
      start = it->second + 1;
      break;
    }
  }
  MsgHeaders response;
  for (std::size_t i = start; i < chain.size() && response.headers.size() < kMaxHeadersPerMsg;
       ++i) {
    response.headers.push_back(tree_.find(chain[i])->header);
    if (!msg.stop.is_zero() && chain[i] == msg.stop) break;
  }
  network_->send(id_, from, std::move(response));
}

void BitcoinNode::handle_headers(NodeId from, const MsgHeaders& msg) {
  MsgGetData request;
  for (const auto& header : msg.headers) {
    auto result = tree_.accept(header, now_s());
    if (result == chain::AcceptResult::kInvalid) break;  // stop at garbage
    if (result == chain::AcceptResult::kOrphan) {
      // We are behind this peer by more than one batch: restart sync.
      network_->send(id_, from, MsgGetHeaders{build_locator(), Hash256{}});
      return;
    }
    Hash256 hash = header.hash();
    if (!blocks_.contains(hash) && !requested_blocks_.contains(hash) &&
        !pending_compact_.contains(hash) && request.block_hashes.size() < options_.max_inv) {
      requested_blocks_.insert(hash);
      request.block_hashes.push_back(hash);
    }
  }
  if (!request.block_hashes.empty()) network_->send(id_, from, std::move(request));
  if (msg.headers.size() == kMaxHeadersPerMsg) {
    network_->send(id_, from, MsgGetHeaders{build_locator(), Hash256{}});
  }
}

void BitcoinNode::handle_get_data(NodeId from, const MsgGetData& msg) {
  MsgNotFound missing;
  for (const auto& hash : msg.block_hashes) {
    auto it = blocks_.find(hash);
    if (it == blocks_.end()) {
      missing.block_hashes.push_back(hash);
      continue;
    }
    if (msg.compact_blocks) {
      MsgCmpctBlock compact = make_compact(it->second);
      if (metrics_.cmpct_sent != nullptr) {
        metrics_.cmpct_sent->inc();
        metrics_.cmpct_bytes_sketch->inc(compact.compact.wire_size());
        metrics_.cmpct_bytes_full_equiv->inc(it->second.size());
      }
      network_->send(id_, from, std::move(compact));
    } else {
      network_->send(id_, from, MsgBlock{it->second});
    }
  }
  for (const auto& txid : msg.tx_ids) {
    auto it = mempool_.find(txid);
    if (it != mempool_.end()) network_->send(id_, from, MsgTx{it->second.tx});
  }
  if (!missing.block_hashes.empty()) network_->send(id_, from, std::move(missing));
}

void BitcoinNode::handle_block(NodeId from, const MsgBlock& msg) {
  requested_blocks_.erase(msg.block.hash());
  accept_block(msg.block, from);
}

void BitcoinNode::handle_tx(NodeId from, const MsgTx& msg) {
  // Single txid computation per received tx: this call seeds msg.tx's cache,
  // so accept_tx — and the mempool/relay copies made downstream — reuse the
  // hash instead of reserializing.
  const Hash256 txid = msg.tx.txid();
  requested_txs_.erase(txid);
  accept_tx(msg.tx, from);
}

void BitcoinNode::handle_get_addr(NodeId from) {
  auto addresses = network_->sample_addresses(options_.max_addr_response, network_->rng());
  network_->send(id_, from, MsgAddr{std::move(addresses)});
}

void BitcoinNode::handle_addr(NodeId, const MsgAddr&) {
  // Full nodes rely on the registry for connectivity in this simulation;
  // address books are only modelled in the Bitcoin adapter (§III-B).
}

MsgCmpctBlock BitcoinNode::make_compact(const Block& block) {
  MsgCmpctBlock msg{reconcile::CompactBlockCodec::encode(block, estimator_.estimate())};
  if (metrics_.cmpct_sketch_cells != nullptr) {
    metrics_.cmpct_sketch_cells->observe(static_cast<double>(msg.compact.sketch.cell_count()));
  }
  return msg;
}

void BitcoinNode::handle_cmpct_block(NodeId from, const MsgCmpctBlock& msg) {
  const reconcile::CompactBlock& cb = msg.compact;
  Hash256 hash = cb.header.hash();
  if (metrics_.cmpct_received != nullptr) metrics_.cmpct_received->inc();
  if (blocks_.contains(hash) || pending_compact_.contains(hash)) return;
  requested_blocks_.erase(hash);  // supersedes any earlier inv-triggered getdata
  announced_by_[hash].insert(from);

  std::vector<const Transaction*> pool;
  pool.reserve(mempool_.size());
  for (const auto& [txid, entry] : mempool_) pool.push_back(&entry.tx);
  obs::ScopedSpan span(tracer_, "cmpct.decode", "reconcile");
  span.attr("node", static_cast<std::uint64_t>(id_));
  span.attr("sketch_cells", static_cast<std::uint64_t>(cb.sketch.cell_count()));
  span.attr("mempool", static_cast<std::uint64_t>(pool.size()));
  auto decode = reconcile::CompactBlockCodec::decode(cb, pool);
  estimator_.observe(decode.diff_slices);
  if (metrics_.cmpct_decode_success != nullptr) {
    if (decode.peel_complete) {
      metrics_.cmpct_decode_success->inc();
    } else {
      metrics_.cmpct_peel_failure->inc();
    }
  }

  if (decode.complete()) {
    auto block = reconcile::CompactBlockCodec::assemble(cb, decode);
    if (block) {
      span.attr("outcome", "reconstructed");
      accept_block(*block, from);
      return;
    }
    // Merkle mismatch (short-id collision picked a wrong transaction): only
    // the full block can resolve it.
    span.attr("outcome", "fallback_full");
    span.event(obs::Severity::kWarn, "cmpct.merkle_mismatch", "falling back to full block");
    if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
    requested_blocks_.insert(hash);
    network_->send(id_, from, MsgGetData{{hash}, {}});
    return;
  }

  // Some positions are unresolved: ask the announcer for exactly those.
  span.attr("outcome", "getblocktxn");
  span.attr("missing", static_cast<std::uint64_t>(decode.missing.size()));
  if (metrics_.cmpct_fallback_getblocktxn != nullptr) metrics_.cmpct_fallback_getblocktxn->inc();
  MsgGetBlockTxn request{hash, decode.missing};
  pending_compact_.emplace(hash, PendingCompact{cb, std::move(decode), from});
  network_->send(id_, from, std::move(request));
}

void BitcoinNode::handle_get_block_txn(NodeId from, const MsgGetBlockTxn& msg) {
  auto it = blocks_.find(msg.block_hash);
  if (it == blocks_.end()) {
    network_->send(id_, from, MsgNotFound{{msg.block_hash}});
    return;
  }
  MsgBlockTxn response{msg.block_hash, {}};
  response.transactions.reserve(msg.indexes.size());
  for (std::uint32_t index : msg.indexes) {
    std::size_t pos = static_cast<std::size_t>(index) + 1;  // index 0 = first non-coinbase
    if (pos >= it->second.transactions.size()) {
      network_->send(id_, from, MsgNotFound{{msg.block_hash}});
      return;
    }
    response.transactions.push_back(it->second.transactions[pos]);
  }
  network_->send(id_, from, std::move(response));
}

void BitcoinNode::handle_block_txn(NodeId from, const MsgBlockTxn& msg) {
  auto it = pending_compact_.find(msg.block_hash);
  if (it == pending_compact_.end()) return;
  if (!reconcile::CompactBlockCodec::fill(it->second.decode, msg.transactions)) {
    pending_compact_.erase(it);
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "cmpct.fill_failed", "falling back to full block");
    }
    if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
    requested_blocks_.insert(msg.block_hash);
    network_->send(id_, from, MsgGetData{{msg.block_hash}, {}});
    return;
  }
  finish_compact(msg.block_hash);
}

void BitcoinNode::finish_compact(const Hash256& hash) {
  auto it = pending_compact_.find(hash);
  if (it == pending_compact_.end()) return;
  NodeId from = it->second.from;
  std::optional<Block> block;
  if (it->second.decode.complete()) {
    block = reconcile::CompactBlockCodec::assemble(it->second.compact, it->second.decode);
  }
  pending_compact_.erase(it);
  if (block) {
    accept_block(*block, from);
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->event(obs::Severity::kWarn, "cmpct.assemble_failed", "falling back to full block");
  }
  if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
  requested_blocks_.insert(hash);
  network_->send(id_, from, MsgGetData{{hash}, {}});
}

bool BitcoinNode::accept_block(const Block& block, NodeId from) {
  Hash256 hash = block.hash();
  if (blocks_.contains(hash)) return false;
  if (!block.is_well_formed()) return false;

  auto result = tree_.accept(block.header, now_s());
  if (result == chain::AcceptResult::kOrphan) {
    // Remember the sender so the eventual connect does not echo the
    // announcement back to it.
    orphans_[block.header.prev_hash].push_back(OrphanBlock{block, from});
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "node.orphan_block",
                     "node " + std::to_string(id_) + " missing parent");
    }
    if (metrics_.orphan_blocks != nullptr) metrics_.orphan_blocks->inc();
    // Learn the missing ancestry.
    if (from != kInvalidNode) {
      network_->send(id_, from, MsgGetHeaders{build_locator(), Hash256{}});
    }
    return false;
  }
  if (result == chain::AcceptResult::kInvalid) {
    announced_by_.erase(hash);
    return false;
  }
  // kAccepted or kDuplicate (header known, block was missing): store it.
  blocks_.emplace(hash, block);
  ++blocks_accepted_;

  update_active_chain();
  relay_block_inv(hash, from);
  try_connect_orphans();
  return true;
}

void BitcoinNode::try_connect_orphans() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (tree_.contains(it->first)) {
        auto pending = std::move(it->second);
        it = orphans_.erase(it);
        for (const auto& orphan : pending) accept_block(orphan.block, orphan.from);
        progress = true;
        break;  // iterator invalidated by recursion; restart scan
      }
      ++it;
    }
  }
}

void BitcoinNode::update_active_chain() {
  Hash256 best = tree_.best_tip();
  if (best == active_tip_) return;

  std::vector<Hash256> target_chain = tree_.current_chain();
  std::unordered_set<Hash256> on_target(target_chain.begin(), target_chain.end());

  // Roll back until the active tip lies on the target chain.
  bool rolled_back = false;
  while (!on_target.contains(active_tip_) && !undo_stack_.empty()) {
    auto& [hash, undo] = undo_stack_.back();
    utxos_.undo_block(undo);
    // Return the block's non-coinbase transactions to the mempool.
    auto it = blocks_.find(hash);
    if (it != blocks_.end()) {
      for (const auto& tx : it->second.transactions) {
        if (!tx.is_coinbase()) accept_tx(tx, kInvalidNode);
      }
    }
    const auto* entry = tree_.find(hash);
    active_tip_ = entry != nullptr ? entry->parent : Hash256{};
    undo_stack_.pop_back();
    rolled_back = true;
  }
  if (rolled_back) {
    ++reorg_count_;
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "node.reorg",
                     "node " + std::to_string(id_) + " switched best chain");
    }
  }

  // Walk forward from the fork point.
  const auto* active_entry = tree_.find(active_tip_);
  if (active_entry == nullptr) return;
  std::size_t idx = static_cast<std::size_t>(active_entry->height - tree_.root().height);
  for (std::size_t i = idx + 1; i < target_chain.size(); ++i) {
    auto it = blocks_.find(target_chain[i]);
    if (it == blocks_.end()) break;  // block not yet downloaded
    int height = tree_.find(target_chain[i])->height;
    auto undo = utxos_.apply_block(it->second, height);
    if (!undo) break;  // invalid spend; leave the view at the last good block
    undo_stack_.emplace_back(target_chain[i], std::move(*undo));
    active_tip_ = target_chain[i];
    // Evict included transactions (and anything now conflicting) from the
    // mempool.
    for (const auto& tx : it->second.transactions) {
      Hash256 txid = tx.txid();
      auto mem = mempool_.find(txid);
      if (mem != mempool_.end()) {
        for (const auto& in : mem->second.tx.inputs) mempool_spends_.erase(in.prevout);
        mempool_.erase(mem);
        if (metrics_.mempool_evicted_block != nullptr) metrics_.mempool_evicted_block->inc();
      }
      for (const auto& in : tx.inputs) {
        auto spender = mempool_spends_.find(in.prevout);
        if (spender != mempool_spends_.end() && spender->second != txid) {
          auto conflict = mempool_.find(spender->second);
          if (conflict != mempool_.end()) {
            for (const auto& cin : conflict->second.tx.inputs) {
              mempool_spends_.erase(cin.prevout);
            }
            mempool_.erase(conflict);
            if (metrics_.mempool_evicted_conflict != nullptr) {
              metrics_.mempool_evicted_conflict->inc();
            }
          }
        }
      }
    }
  }
  if (metrics_.mempool_size != nullptr) {
    metrics_.mempool_size->set(static_cast<std::int64_t>(mempool_.size()));
  }
  // Cap undo history to bound memory; deep reorgs past this are not
  // supported (Bitcoin Core behaves similarly with its pruning depth).
  constexpr std::size_t kMaxUndoDepth = 1000;
  if (undo_stack_.size() > kMaxUndoDepth) {
    undo_stack_.erase(undo_stack_.begin(),
                      undo_stack_.begin() +
                          static_cast<std::ptrdiff_t>(undo_stack_.size() - kMaxUndoDepth));
  }
}

bool BitcoinNode::accept_tx(const Transaction& tx, NodeId from) {
  Hash256 txid = tx.txid();
  if (mempool_.contains(txid)) return false;
  auto reject = [this, &txid] {
    if (metrics_.mempool_rejected != nullptr) metrics_.mempool_rejected->inc();
    announced_by_.erase(txid);
    return false;
  };
  if (!tx.is_well_formed() || tx.is_coinbase()) return reject();

  // Each input must be unspent (in the UTXO view or an in-mempool output)
  // and not double-spend the mempool.
  bitcoin::Amount in_value = 0;
  bool value_known = true;
  for (const auto& in : tx.inputs) {
    if (mempool_spends_.contains(in.prevout)) return reject();
    auto entry = utxos_.find(in.prevout);
    if (entry) {
      in_value += entry->output.value;
      if (options_.verify_scripts) {
        std::size_t index = static_cast<std::size_t>(&in - tx.inputs.data());
        if (bitcoin::is_p2pkh(entry->output.script_pubkey)) {
          if (!bitcoin::verify_p2pkh_input(tx, index, entry->output.script_pubkey)) {
            return reject();
          }
        } else if (bitcoin::is_p2tr(entry->output.script_pubkey)) {
          if (!bitcoin::verify_p2tr_input(tx, index, entry->output.script_pubkey)) {
            return reject();
          }
        }
      }
      continue;
    }
    // Maybe spending an in-mempool parent.
    auto parent = mempool_.find(in.prevout.txid);
    if (parent != mempool_.end() && in.prevout.vout < parent->second.tx.outputs.size()) {
      in_value += parent->second.tx.outputs[in.prevout.vout].value;
      continue;
    }
    value_known = false;
    break;
  }
  if (!value_known) return reject();
  if (in_value < tx.total_output_value()) return reject();

  for (const auto& in : tx.inputs) mempool_spends_[in.prevout] = txid;
  mempool_[txid] = MempoolEntry{tx, mempool_sequence_++};
  if (metrics_.mempool_admitted != nullptr) {
    metrics_.mempool_admitted->inc();
    metrics_.mempool_size->set(static_cast<std::int64_t>(mempool_.size()));
  }
  relay_tx_inv(txid, from);
  return true;
}

void BitcoinNode::relay_block_inv(const Hash256& hash, NodeId except) {
  auto skip = announced_by_.find(hash);
  std::optional<MsgCmpctBlock> compact;
  for (NodeId peer : network_->peers_of(id_)) {
    if (peer == except) continue;
    if (skip != announced_by_.end() && skip->second.contains(peer)) continue;
    if (options_.relay_mode == BlockRelayMode::kCompact) {
      if (!compact) compact = make_compact(blocks_.at(hash));
      if (metrics_.cmpct_sent != nullptr) {
        metrics_.cmpct_sent->inc();
        metrics_.cmpct_bytes_sketch->inc(compact->compact.wire_size());
        metrics_.cmpct_bytes_full_equiv->inc(blocks_.at(hash).size());
      }
      network_->send(id_, peer, *compact);
    } else {
      network_->send(id_, peer, MsgInv{{hash}, {}});
    }
  }
  announced_by_.erase(hash);
}

void BitcoinNode::relay_tx_inv(const Hash256& txid, NodeId except) {
  auto skip = announced_by_.find(txid);
  for (NodeId peer : network_->peers_of(id_)) {
    if (peer == except) continue;
    if (skip != announced_by_.end() && skip->second.contains(peer)) continue;
    network_->send(id_, peer, MsgInv{{}, {txid}});
  }
  announced_by_.erase(txid);
}

}  // namespace icbtc::btcnet
