#include "btcnet/node.h"

#include <algorithm>
#include <cmath>

#include "bitcoin/script.h"
#include "util/log.h"

namespace icbtc::btcnet {

using bitcoin::Block;
using bitcoin::OutPoint;
using bitcoin::Transaction;
using util::Hash256;

BitcoinNode::BitcoinNode(Network& network, const bitcoin::ChainParams& params,
                         NodeOptions options, bool ipv6)
    : network_(&network),
      params_(&params),
      options_(options),
      tree_(params, params.genesis_header) {
  Block genesis = bitcoin::genesis_block(params);
  active_tip_ = genesis.hash();
  auto undo = utxos_.apply_block(genesis, 0);
  blocks_.emplace(genesis.hash(), std::move(genesis));
  (void)undo;  // genesis is never rolled back
  id_ = network.attach(this, ipv6, /*gossiped=*/true);
}

BitcoinNode::~BitcoinNode() {
  // Cancel everything that captured `this` before the network forgets us.
  auto& sim = network_->sim();
  sim.cancel(recon_tick_);
  for (auto& [peer, link] : recon_links_) sim.cancel(link.timeout);
  for (auto& [txid, entry] : mempool_) sim.cancel(entry.expiry);
  if (network_->exists(id_)) network_->detach(id_);
}

const Block* BitcoinNode::get_block(const Hash256& hash) const {
  auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : &it->second;
}

std::vector<Transaction> BitcoinNode::mempool_snapshot() const {
  std::vector<const MempoolEntry*> entries;
  entries.reserve(mempool_.size());
  for (const auto& [txid, entry] : mempool_) entries.push_back(&entry);
  std::sort(entries.begin(), entries.end(),
            [](const MempoolEntry* a, const MempoolEntry* b) { return a->sequence < b->sequence; });
  std::vector<Transaction> out;
  out.reserve(entries.size());
  for (const auto* e : entries) out.push_back(e->tx);
  return out;
}

std::int64_t BitcoinNode::now_s() const {
  return static_cast<std::int64_t>(params_->genesis_header.time) +
         network_->sim().now() / util::kSecond;
}

bool BitcoinNode::submit_block(const Block& block) { return accept_block(block, kInvalidNode); }

bool BitcoinNode::submit_tx(const Transaction& tx) { return accept_tx(tx, kInvalidNode); }

void BitcoinNode::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.mempool_size = &registry->gauge("node.mempool.size");
  metrics_.mempool_admitted = &registry->counter("node.mempool.admitted");
  metrics_.mempool_rejected = &registry->counter("node.mempool.rejected");
  metrics_.mempool_evicted_block = &registry->counter("node.mempool.evicted_block");
  metrics_.mempool_evicted_conflict = &registry->counter("node.mempool.evicted_conflict");
  metrics_.orphan_blocks = &registry->counter("node.orphan_blocks");
  metrics_.cmpct_sent = &registry->counter("cmpct.sent");
  metrics_.cmpct_received = &registry->counter("cmpct.received");
  metrics_.cmpct_decode_success = &registry->counter("cmpct.decode_success");
  metrics_.cmpct_peel_failure = &registry->counter("cmpct.peel_failure");
  metrics_.cmpct_fallback_getblocktxn = &registry->counter("cmpct.fallback.getblocktxn");
  metrics_.cmpct_fallback_full = &registry->counter("cmpct.fallback.full");
  metrics_.cmpct_bytes_sketch = &registry->counter("cmpct.bytes.compact");
  metrics_.cmpct_bytes_full_equiv = &registry->counter("cmpct.bytes.full_equiv");
  metrics_.cmpct_sketch_cells =
      &registry->histogram("cmpct.sketch_cells", obs::Histogram::decade_bounds(1, 100000));
  metrics_.relay_sketches_sent = &registry->counter("relay.sketches_sent");
  metrics_.relay_sketch_bytes = &registry->counter("relay.sketch_bytes");
  metrics_.relay_diffs_decoded = &registry->counter("relay.diffs_decoded");
  metrics_.relay_diffs_failed = &registry->counter("relay.diffs_failed");
  metrics_.relay_bisections = &registry->counter("relay.bisections");
  metrics_.relay_full_inv = &registry->counter("relay.full_inv_fallbacks");
  metrics_.relay_fanout_invs = &registry->counter("relay.fanout_invs");
  metrics_.relay_rounds = &registry->counter("relay.rounds_completed");
  metrics_.relay_round_timeouts = &registry->counter("relay.round_timeouts");
  metrics_.relay_sketch_cells =
      &registry->histogram("relay.sketch_cells", obs::Histogram::decade_bounds(1, 100000));
  metrics_.mempool_rbf_replaced = &registry->counter("mempool.rbf_replaced");
  metrics_.mempool_evicted_expired = &registry->counter("mempool.evicted_expired");
  metrics_.mempool_evicted_sizecap = &registry->counter("mempool.evicted_sizecap");
  metrics_.mempool_fee_floor = &registry->gauge("mempool.fee_floor");
}

void BitcoinNode::deliver(NodeId from, const Message& msg) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, MsgInv>) {
          handle_inv(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetHeaders>) {
          handle_get_headers(from, m);
        } else if constexpr (std::is_same_v<T, MsgHeaders>) {
          handle_headers(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetData>) {
          handle_get_data(from, m);
        } else if constexpr (std::is_same_v<T, MsgBlock>) {
          handle_block(from, m);
        } else if constexpr (std::is_same_v<T, MsgTx>) {
          handle_tx(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetAddr>) {
          handle_get_addr(from);
        } else if constexpr (std::is_same_v<T, MsgAddr>) {
          handle_addr(from, m);
        } else if constexpr (std::is_same_v<T, MsgCmpctBlock>) {
          handle_cmpct_block(from, m);
        } else if constexpr (std::is_same_v<T, MsgGetBlockTxn>) {
          handle_get_block_txn(from, m);
        } else if constexpr (std::is_same_v<T, MsgBlockTxn>) {
          handle_block_txn(from, m);
        } else if constexpr (std::is_same_v<T, MsgReconSketch>) {
          handle_recon_sketch(from, m);
        } else if constexpr (std::is_same_v<T, MsgReconDiff>) {
          handle_recon_diff(from, m);
        } else if constexpr (std::is_same_v<T, MsgReconFinalize>) {
          handle_recon_finalize(from, m);
        } else if constexpr (std::is_same_v<T, MsgNotFound>) {
          handle_not_found(from, m);
        }
      },
      msg);
}

void BitcoinNode::on_connected(NodeId peer) {
  // Start header sync with the new peer.
  network_->send(id_, peer, MsgGetHeaders{build_locator(), Hash256{}});
  if (mempool_.empty()) return;
  // Mempool resync: a (re)connected peer may have diverged arbitrarily —
  // e.g. across a partition — so offer everything we hold. Flooding
  // announces outright; reconciliation queues the lot, and the next sketch
  // exchange cancels the (typically large) overlap at sketch cost.
  std::vector<Hash256> txids;
  txids.reserve(mempool_.size());
  for (const auto& [txid, entry] : mempool_) txids.push_back(txid);
  std::sort(txids.begin(), txids.end());
  if (options_.tx_relay_mode == TxRelayMode::kFlood) {
    send_tx_inv_chunked(peer, txids);
  } else {
    ReconLink& link = recon_link(peer);
    link.parked = false;
    link.failed_rounds = 0;
    for (const auto& txid : txids) link.set.add(txid);
    schedule_recon_tick();
  }
}

void BitcoinNode::on_disconnected(NodeId peer) {
  auto it = recon_links_.find(peer);
  if (it == recon_links_.end()) return;
  network_->sim().cancel(it->second.timeout);
  recon_links_.erase(it);
}

void BitcoinNode::send_tx_inv_chunked(NodeId peer, const std::vector<Hash256>& txids) {
  for (std::size_t i = 0; i < txids.size(); i += options_.max_inv) {
    MsgInv inv;
    inv.tx_ids.assign(txids.begin() + static_cast<std::ptrdiff_t>(i),
                      txids.begin() +
                          static_cast<std::ptrdiff_t>(std::min(i + options_.max_inv, txids.size())));
    network_->send(id_, peer, std::move(inv));
  }
}

std::vector<Hash256> BitcoinNode::build_locator() const {
  // Standard exponentially-spaced locator along the best chain.
  std::vector<Hash256> chain = tree_.current_chain();
  std::vector<Hash256> locator;
  std::size_t step = 1;
  std::size_t i = chain.size();
  while (i > 0) {
    --i;
    locator.push_back(chain[i]);
    if (locator.size() > 10) step *= 2;
    if (i < step) break;
    i -= step - 1;
  }
  if (locator.empty() || locator.back() != chain.front()) locator.push_back(chain.front());
  return locator;
}

void BitcoinNode::handle_inv(NodeId from, const MsgInv& msg) {
  MsgGetData request;
  for (const auto& hash : msg.block_hashes) {
    if (blocks_.contains(hash)) continue;
    announced_by_[hash].insert(from);
    if (requested_blocks_.contains(hash) || pending_compact_.contains(hash)) continue;
    requested_blocks_.insert(hash);
    request.block_hashes.push_back(hash);
  }
  for (const auto& txid : msg.tx_ids) {
    // The announcer evidently has it: no need to reconcile it their way.
    if (options_.tx_relay_mode == TxRelayMode::kReconcile) {
      auto link = recon_links_.find(from);
      if (link != recon_links_.end()) link->second.set.remove(txid);
    }
    if (mempool_.contains(txid)) continue;
    announced_by_[txid].insert(from);
    if (requested_txs_.contains(txid)) continue;
    requested_txs_.insert(txid);
    request.tx_ids.push_back(txid);
  }
  if (!request.block_hashes.empty() || !request.tx_ids.empty()) {
    network_->send(id_, from, std::move(request));
  }
}

void BitcoinNode::handle_get_headers(NodeId from, const MsgGetHeaders& msg) {
  // Find the fork point: first locator entry we know on our best chain.
  std::vector<Hash256> chain = tree_.current_chain();
  std::unordered_map<Hash256, std::size_t> position;
  position.reserve(chain.size());
  for (std::size_t i = 0; i < chain.size(); ++i) position[chain[i]] = i;

  std::size_t start = 0;  // default: from the root
  for (const auto& hash : msg.locator) {
    auto it = position.find(hash);
    if (it != position.end()) {
      start = it->second + 1;
      break;
    }
  }
  MsgHeaders response;
  for (std::size_t i = start; i < chain.size() && response.headers.size() < kMaxHeadersPerMsg;
       ++i) {
    response.headers.push_back(tree_.find(chain[i])->header);
    if (!msg.stop.is_zero() && chain[i] == msg.stop) break;
  }
  network_->send(id_, from, std::move(response));
}

void BitcoinNode::handle_headers(NodeId from, const MsgHeaders& msg) {
  MsgGetData request;
  for (const auto& header : msg.headers) {
    auto result = tree_.accept(header, now_s());
    if (result == chain::AcceptResult::kInvalid) break;  // stop at garbage
    if (result == chain::AcceptResult::kOrphan) {
      // We are behind this peer by more than one batch: restart sync.
      network_->send(id_, from, MsgGetHeaders{build_locator(), Hash256{}});
      return;
    }
    Hash256 hash = header.hash();
    if (!blocks_.contains(hash) && !requested_blocks_.contains(hash) &&
        !pending_compact_.contains(hash) && request.block_hashes.size() < options_.max_inv) {
      requested_blocks_.insert(hash);
      request.block_hashes.push_back(hash);
    }
  }
  if (!request.block_hashes.empty()) network_->send(id_, from, std::move(request));
  if (msg.headers.size() == kMaxHeadersPerMsg) {
    network_->send(id_, from, MsgGetHeaders{build_locator(), Hash256{}});
  }
}

void BitcoinNode::handle_get_data(NodeId from, const MsgGetData& msg) {
  MsgNotFound missing;
  for (const auto& hash : msg.block_hashes) {
    auto it = blocks_.find(hash);
    if (it == blocks_.end()) {
      missing.block_hashes.push_back(hash);
      continue;
    }
    if (msg.compact_blocks) {
      MsgCmpctBlock compact = make_compact(it->second);
      if (metrics_.cmpct_sent != nullptr) {
        metrics_.cmpct_sent->inc();
        metrics_.cmpct_bytes_sketch->inc(compact.compact.wire_size());
        metrics_.cmpct_bytes_full_equiv->inc(it->second.size());
      }
      network_->send(id_, from, std::move(compact));
    } else {
      network_->send(id_, from, MsgBlock{it->second});
    }
  }
  for (const auto& txid : msg.tx_ids) {
    auto it = mempool_.find(txid);
    if (it != mempool_.end()) {
      network_->send(id_, from, MsgTx{it->second.tx});
    } else {
      // Evicted, replaced, or confirmed since the announcement; tell the
      // requester so it does not wait on a dead request.
      missing.tx_ids.push_back(txid);
    }
  }
  if (!missing.block_hashes.empty() || !missing.tx_ids.empty()) {
    network_->send(id_, from, std::move(missing));
  }
}

void BitcoinNode::handle_not_found(NodeId, const MsgNotFound& msg) {
  // Clear in-flight state so a later announcement can retrigger the fetch.
  for (const auto& hash : msg.block_hashes) requested_blocks_.erase(hash);
  for (const auto& txid : msg.tx_ids) {
    requested_txs_.erase(txid);
    announced_by_.erase(txid);
  }
}

void BitcoinNode::handle_block(NodeId from, const MsgBlock& msg) {
  requested_blocks_.erase(msg.block.hash());
  accept_block(msg.block, from);
}

void BitcoinNode::handle_tx(NodeId from, const MsgTx& msg) {
  // Single txid computation per received tx: this call seeds msg.tx's cache,
  // so accept_tx — and the mempool/relay copies made downstream — reuse the
  // hash instead of reserializing.
  const Hash256 txid = msg.tx.txid();
  requested_txs_.erase(txid);
  accept_tx(msg.tx, from);
}

void BitcoinNode::handle_get_addr(NodeId from) {
  auto addresses = network_->sample_addresses(options_.max_addr_response, network_->rng());
  network_->send(id_, from, MsgAddr{std::move(addresses)});
}

void BitcoinNode::handle_addr(NodeId, const MsgAddr&) {
  // Full nodes rely on the registry for connectivity in this simulation;
  // address books are only modelled in the Bitcoin adapter (§III-B).
}

MsgCmpctBlock BitcoinNode::make_compact(const Block& block) {
  MsgCmpctBlock msg{reconcile::CompactBlockCodec::encode(block, estimator_.estimate())};
  if (metrics_.cmpct_sketch_cells != nullptr) {
    metrics_.cmpct_sketch_cells->observe(static_cast<double>(msg.compact.sketch.cell_count()));
  }
  return msg;
}

void BitcoinNode::handle_cmpct_block(NodeId from, const MsgCmpctBlock& msg) {
  const reconcile::CompactBlock& cb = msg.compact;
  Hash256 hash = cb.header.hash();
  if (metrics_.cmpct_received != nullptr) metrics_.cmpct_received->inc();
  if (blocks_.contains(hash) || pending_compact_.contains(hash)) return;
  requested_blocks_.erase(hash);  // supersedes any earlier inv-triggered getdata
  announced_by_[hash].insert(from);

  std::vector<const Transaction*> pool;
  pool.reserve(mempool_.size());
  for (const auto& [txid, entry] : mempool_) pool.push_back(&entry.tx);
  obs::ScopedSpan span(tracer_, "cmpct.decode", "reconcile");
  span.attr("node", static_cast<std::uint64_t>(id_));
  span.attr("sketch_cells", static_cast<std::uint64_t>(cb.sketch.cell_count()));
  span.attr("mempool", static_cast<std::uint64_t>(pool.size()));
  auto decode = reconcile::CompactBlockCodec::decode(cb, pool);
  estimator_.observe(decode.diff_slices);
  if (metrics_.cmpct_decode_success != nullptr) {
    if (decode.peel_complete) {
      metrics_.cmpct_decode_success->inc();
    } else {
      metrics_.cmpct_peel_failure->inc();
    }
  }

  if (decode.complete()) {
    auto block = reconcile::CompactBlockCodec::assemble(cb, decode);
    if (block) {
      span.attr("outcome", "reconstructed");
      accept_block(*block, from);
      return;
    }
    // Merkle mismatch (short-id collision picked a wrong transaction): only
    // the full block can resolve it.
    span.attr("outcome", "fallback_full");
    span.event(obs::Severity::kWarn, "cmpct.merkle_mismatch", "falling back to full block");
    if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
    requested_blocks_.insert(hash);
    network_->send(id_, from, MsgGetData{{hash}, {}});
    return;
  }

  // Some positions are unresolved: ask the announcer for exactly those.
  span.attr("outcome", "getblocktxn");
  span.attr("missing", static_cast<std::uint64_t>(decode.missing.size()));
  if (metrics_.cmpct_fallback_getblocktxn != nullptr) metrics_.cmpct_fallback_getblocktxn->inc();
  MsgGetBlockTxn request{hash, decode.missing};
  pending_compact_.emplace(hash, PendingCompact{cb, std::move(decode), from});
  network_->send(id_, from, std::move(request));
}

void BitcoinNode::handle_get_block_txn(NodeId from, const MsgGetBlockTxn& msg) {
  auto it = blocks_.find(msg.block_hash);
  if (it == blocks_.end()) {
    network_->send(id_, from, MsgNotFound{{msg.block_hash}});
    return;
  }
  MsgBlockTxn response{msg.block_hash, {}};
  response.transactions.reserve(msg.indexes.size());
  for (std::uint32_t index : msg.indexes) {
    std::size_t pos = static_cast<std::size_t>(index) + 1;  // index 0 = first non-coinbase
    if (pos >= it->second.transactions.size()) {
      network_->send(id_, from, MsgNotFound{{msg.block_hash}});
      return;
    }
    response.transactions.push_back(it->second.transactions[pos]);
  }
  network_->send(id_, from, std::move(response));
}

void BitcoinNode::handle_block_txn(NodeId from, const MsgBlockTxn& msg) {
  auto it = pending_compact_.find(msg.block_hash);
  if (it == pending_compact_.end()) return;
  if (!reconcile::CompactBlockCodec::fill(it->second.decode, msg.transactions)) {
    pending_compact_.erase(it);
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "cmpct.fill_failed", "falling back to full block");
    }
    if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
    requested_blocks_.insert(msg.block_hash);
    network_->send(id_, from, MsgGetData{{msg.block_hash}, {}});
    return;
  }
  finish_compact(msg.block_hash);
}

void BitcoinNode::finish_compact(const Hash256& hash) {
  auto it = pending_compact_.find(hash);
  if (it == pending_compact_.end()) return;
  NodeId from = it->second.from;
  std::optional<Block> block;
  if (it->second.decode.complete()) {
    block = reconcile::CompactBlockCodec::assemble(it->second.compact, it->second.decode);
  }
  pending_compact_.erase(it);
  if (block) {
    accept_block(*block, from);
    return;
  }
  if (tracer_ != nullptr) {
    tracer_->event(obs::Severity::kWarn, "cmpct.assemble_failed", "falling back to full block");
  }
  if (metrics_.cmpct_fallback_full != nullptr) metrics_.cmpct_fallback_full->inc();
  requested_blocks_.insert(hash);
  network_->send(id_, from, MsgGetData{{hash}, {}});
}

bool BitcoinNode::accept_block(const Block& block, NodeId from) {
  Hash256 hash = block.hash();
  if (blocks_.contains(hash)) return false;
  if (!block.is_well_formed()) return false;

  auto result = tree_.accept(block.header, now_s());
  if (result == chain::AcceptResult::kOrphan) {
    // Remember the sender so the eventual connect does not echo the
    // announcement back to it.
    orphans_[block.header.prev_hash].push_back(OrphanBlock{block, from});
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "node.orphan_block",
                     "node " + std::to_string(id_) + " missing parent");
    }
    if (metrics_.orphan_blocks != nullptr) metrics_.orphan_blocks->inc();
    // Learn the missing ancestry.
    if (from != kInvalidNode) {
      network_->send(id_, from, MsgGetHeaders{build_locator(), Hash256{}});
    }
    return false;
  }
  if (result == chain::AcceptResult::kInvalid) {
    announced_by_.erase(hash);
    return false;
  }
  // kAccepted or kDuplicate (header known, block was missing): store it.
  blocks_.emplace(hash, block);
  ++blocks_accepted_;

  update_active_chain();
  relay_block_inv(hash, from);
  try_connect_orphans();
  return true;
}

void BitcoinNode::try_connect_orphans() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (tree_.contains(it->first)) {
        auto pending = std::move(it->second);
        it = orphans_.erase(it);
        for (const auto& orphan : pending) accept_block(orphan.block, orphan.from);
        progress = true;
        break;  // iterator invalidated by recursion; restart scan
      }
      ++it;
    }
  }
}

void BitcoinNode::update_active_chain() {
  Hash256 best = tree_.best_tip();
  if (best == active_tip_) return;

  std::vector<Hash256> target_chain = tree_.current_chain();
  std::unordered_set<Hash256> on_target(target_chain.begin(), target_chain.end());

  // Roll back until the active tip lies on the target chain.
  bool rolled_back = false;
  while (!on_target.contains(active_tip_) && !undo_stack_.empty()) {
    auto& [hash, undo] = undo_stack_.back();
    utxos_.undo_block(undo);
    // Return the block's non-coinbase transactions to the mempool.
    auto it = blocks_.find(hash);
    if (it != blocks_.end()) {
      for (const auto& tx : it->second.transactions) {
        if (!tx.is_coinbase()) accept_tx(tx, kInvalidNode);
      }
    }
    const auto* entry = tree_.find(hash);
    active_tip_ = entry != nullptr ? entry->parent : Hash256{};
    undo_stack_.pop_back();
    rolled_back = true;
  }
  if (rolled_back) {
    ++reorg_count_;
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "node.reorg",
                     "node " + std::to_string(id_) + " switched best chain");
    }
  }

  // Walk forward from the fork point.
  const auto* active_entry = tree_.find(active_tip_);
  if (active_entry == nullptr) return;
  std::size_t idx = static_cast<std::size_t>(active_entry->height - tree_.root().height);
  for (std::size_t i = idx + 1; i < target_chain.size(); ++i) {
    auto it = blocks_.find(target_chain[i]);
    if (it == blocks_.end()) break;  // block not yet downloaded
    int height = tree_.find(target_chain[i])->height;
    auto undo = utxos_.apply_block(it->second, height);
    if (!undo) break;  // invalid spend; leave the view at the last good block
    undo_stack_.emplace_back(target_chain[i], std::move(*undo));
    active_tip_ = target_chain[i];
    // Evict included transactions (and anything now conflicting) from the
    // mempool.
    for (const auto& tx : it->second.transactions) {
      Hash256 txid = tx.txid();
      if (mempool_.contains(txid)) {
        remove_mempool_tx(txid);
        if (metrics_.mempool_evicted_block != nullptr) metrics_.mempool_evicted_block->inc();
      }
      for (const auto& in : tx.inputs) {
        auto spender = mempool_spends_.find(in.prevout);
        if (spender != mempool_spends_.end() && spender->second != txid) {
          evict_subtree(spender->second, metrics_.mempool_evicted_conflict);
        }
      }
    }
  }
  update_mempool_gauges();
  // Cap undo history to bound memory; deep reorgs past this are not
  // supported (Bitcoin Core behaves similarly with its pruning depth).
  constexpr std::size_t kMaxUndoDepth = 1000;
  if (undo_stack_.size() > kMaxUndoDepth) {
    undo_stack_.erase(undo_stack_.begin(),
                      undo_stack_.begin() +
                          static_cast<std::ptrdiff_t>(undo_stack_.size() - kMaxUndoDepth));
  }
}

bool BitcoinNode::accept_tx(const Transaction& tx, NodeId from) {
  Hash256 txid = tx.txid();
  if (mempool_.contains(txid)) return false;
  auto reject = [this, &txid] {
    if (metrics_.mempool_rejected != nullptr) metrics_.mempool_rejected->inc();
    announced_by_.erase(txid);
    return false;
  };
  if (!tx.is_well_formed() || tx.is_coinbase()) return reject();

  // Each input must be unspent (in the UTXO view or an in-mempool output);
  // mempool double-spends are rejected outright unless they qualify as an
  // RBF replacement (checked below, once the fee is known).
  bitcoin::Amount in_value = 0;
  bool value_known = true;
  std::vector<Hash256> conflicts;
  for (const auto& in : tx.inputs) {
    auto spender = mempool_spends_.find(in.prevout);
    if (spender != mempool_spends_.end()) {
      if (!options_.replace_by_fee) return reject();
      conflicts.push_back(spender->second);
    }
    auto entry = utxos_.find(in.prevout);
    if (entry) {
      in_value += entry->output.value;
      if (options_.verify_scripts) {
        std::size_t index = static_cast<std::size_t>(&in - tx.inputs.data());
        if (bitcoin::is_p2pkh(entry->output.script_pubkey)) {
          if (!bitcoin::verify_p2pkh_input(tx, index, entry->output.script_pubkey)) {
            return reject();
          }
        } else if (bitcoin::is_p2tr(entry->output.script_pubkey)) {
          if (!bitcoin::verify_p2tr_input(tx, index, entry->output.script_pubkey)) {
            return reject();
          }
        }
      }
      continue;
    }
    // Maybe spending an in-mempool parent.
    auto parent = mempool_.find(in.prevout.txid);
    if (parent != mempool_.end() && in.prevout.vout < parent->second.tx.outputs.size()) {
      in_value += parent->second.tx.outputs[in.prevout.vout].value;
      continue;
    }
    value_known = false;
    break;
  }
  if (!value_known) return reject();
  if (in_value < tx.total_output_value()) return reject();

  bitcoin::Amount fee = in_value - tx.total_output_value();
  std::size_t vsize = std::max<std::size_t>(tx.size(), 1);
  std::uint64_t feerate_milli =
      static_cast<std::uint64_t>(fee) * 1000 / static_cast<std::uint64_t>(vsize);
  if (feerate_milli < options_.min_relay_fee_rate) return reject();

  if (!conflicts.empty()) {
    // BIP125-flavoured replacement: the newcomer must strictly beat every
    // direct conflict's feerate AND pay for the bandwidth it wastes — the
    // evicted fees plus the incremental relay fee on its own size. A
    // replacement may not depend on what it evicts.
    std::sort(conflicts.begin(), conflicts.end());
    conflicts.erase(std::unique(conflicts.begin(), conflicts.end()), conflicts.end());
    bitcoin::Amount conflict_fees = 0;
    for (const auto& conflict : conflicts) {
      const MempoolEntry& victim = mempool_.at(conflict);
      if (feerate_milli <= victim.feerate_milli) return reject();
      conflict_fees += victim.fee;
    }
    for (const auto& in : tx.inputs) {
      if (std::binary_search(conflicts.begin(), conflicts.end(), in.prevout.txid)) {
        return reject();
      }
    }
    bitcoin::Amount increment = static_cast<bitcoin::Amount>(
        static_cast<std::uint64_t>(vsize) * options_.min_relay_fee_rate / 1000);
    if (fee < conflict_fees + increment) return reject();
  } else if (options_.mempool_max_txs > 0 && mempool_.size() >= options_.mempool_max_txs &&
             !fee_index_.empty() && feerate_milli <= fee_index_.begin()->first.first) {
    // Full, and the newcomer does not beat the fee floor: rejecting here —
    // rather than admit-then-evict — keeps the pool converging to the top-K
    // of everything offered, independent of arrival order.
    return reject();
  }

  for (const auto& conflict : conflicts) {
    evict_subtree(conflict, metrics_.mempool_rbf_replaced);
  }

  for (const auto& in : tx.inputs) mempool_spends_[in.prevout] = txid;
  std::uint64_t sequence = mempool_sequence_++;
  MempoolEntry entry{tx, sequence, fee, vsize, feerate_milli, {}};
  if (options_.mempool_tx_ttl > 0) {
    entry.expiry = network_->sim().schedule(options_.mempool_tx_ttl, [this, txid, sequence] {
      auto it = mempool_.find(txid);
      if (it == mempool_.end() || it->second.sequence != sequence) return;
      evict_subtree(txid, metrics_.mempool_evicted_expired);
      update_mempool_gauges();
    });
  }
  fee_index_.emplace(std::make_pair(feerate_milli, sequence), txid);
  mempool_[txid] = std::move(entry);
  enforce_mempool_cap();
  if (metrics_.mempool_admitted != nullptr) metrics_.mempool_admitted->inc();
  update_mempool_gauges();
  announce_tx(txid, from);
  return true;
}

void BitcoinNode::remove_mempool_tx(const Hash256& txid) {
  auto it = mempool_.find(txid);
  if (it == mempool_.end()) return;
  for (const auto& in : it->second.tx.inputs) {
    auto spender = mempool_spends_.find(in.prevout);
    if (spender != mempool_spends_.end() && spender->second == txid) {
      mempool_spends_.erase(spender);
    }
  }
  fee_index_.erase({it->second.feerate_milli, it->second.sequence});
  network_->sim().cancel(it->second.expiry);
  // Never announce a transaction we no longer hold.
  for (auto& [peer, link] : recon_links_) link.set.remove(txid);
  mempool_.erase(it);
}

void BitcoinNode::evict_subtree(const Hash256& txid, obs::Counter* reason) {
  auto it = mempool_.find(txid);
  if (it == mempool_.end()) return;
  std::vector<Hash256> children;
  for (std::uint32_t vout = 0; vout < it->second.tx.outputs.size(); ++vout) {
    auto spender = mempool_spends_.find(OutPoint{txid, vout});
    if (spender != mempool_spends_.end()) children.push_back(spender->second);
  }
  remove_mempool_tx(txid);
  if (reason != nullptr) reason->inc();
  for (const auto& child : children) evict_subtree(child, reason);
}

void BitcoinNode::enforce_mempool_cap() {
  if (options_.mempool_max_txs == 0) return;
  while (mempool_.size() > options_.mempool_max_txs && !fee_index_.empty()) {
    evict_subtree(fee_index_.begin()->second, metrics_.mempool_evicted_sizecap);
  }
}

void BitcoinNode::update_mempool_gauges() {
  if (metrics_.mempool_size != nullptr) {
    metrics_.mempool_size->set(static_cast<std::int64_t>(mempool_.size()));
  }
  if (metrics_.mempool_fee_floor != nullptr) {
    metrics_.mempool_fee_floor->set(
        fee_index_.empty() ? 0 : static_cast<std::int64_t>(fee_index_.begin()->first.first));
  }
}

std::optional<BitcoinNode::MempoolTxInfo> BitcoinNode::mempool_info(const Hash256& txid) const {
  auto it = mempool_.find(txid);
  if (it == mempool_.end()) return std::nullopt;
  return MempoolTxInfo{it->second.fee, it->second.vsize, it->second.feerate_milli};
}

std::uint64_t BitcoinNode::mempool_fee_floor() const {
  return fee_index_.empty() ? 0 : fee_index_.begin()->first.first;
}

std::size_t BitcoinNode::recon_pending(NodeId peer) const {
  auto it = recon_links_.find(peer);
  return it == recon_links_.end() ? 0 : it->second.set.size();
}

std::vector<Transaction> BitcoinNode::mempool_template(std::size_t max_txs) const {
  // Feerate-descending greedy selection that never orders a child before its
  // in-mempool parent: repeatedly scan the ranked list admitting whatever
  // has all parents selected, until the cap or a fixed point.
  struct Ranked {
    const Hash256* txid;
    const MempoolEntry* entry;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(mempool_.size());
  for (const auto& [txid, entry] : mempool_) ranked.push_back(Ranked{&txid, &entry});
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    if (a.entry->feerate_milli != b.entry->feerate_milli) {
      return a.entry->feerate_milli > b.entry->feerate_milli;
    }
    return a.entry->sequence < b.entry->sequence;
  });
  std::unordered_set<Hash256> selected;
  std::vector<bool> taken(ranked.size(), false);
  std::vector<Transaction> out;
  bool progress = true;
  while (progress && out.size() < max_txs) {
    progress = false;
    for (std::size_t i = 0; i < ranked.size() && out.size() < max_txs; ++i) {
      if (taken[i]) continue;
      bool ready = true;
      for (const auto& in : ranked[i].entry->tx.inputs) {
        if (mempool_.contains(in.prevout.txid) && !selected.contains(in.prevout.txid)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      taken[i] = true;
      selected.insert(*ranked[i].txid);
      out.push_back(ranked[i].entry->tx);
      progress = true;
    }
  }
  return out;
}

void BitcoinNode::relay_block_inv(const Hash256& hash, NodeId except) {
  auto skip = announced_by_.find(hash);
  std::optional<MsgCmpctBlock> compact;
  for (NodeId peer : network_->peers_of(id_)) {
    if (peer == except) continue;
    if (skip != announced_by_.end() && skip->second.contains(peer)) continue;
    if (options_.relay_mode == BlockRelayMode::kCompact) {
      if (!compact) compact = make_compact(blocks_.at(hash));
      if (metrics_.cmpct_sent != nullptr) {
        metrics_.cmpct_sent->inc();
        metrics_.cmpct_bytes_sketch->inc(compact->compact.wire_size());
        metrics_.cmpct_bytes_full_equiv->inc(blocks_.at(hash).size());
      }
      network_->send(id_, peer, *compact);
    } else {
      network_->send(id_, peer, MsgInv{{hash}, {}});
    }
  }
  announced_by_.erase(hash);
}

void BitcoinNode::announce_tx(const Hash256& txid, NodeId except) {
  auto skip = announced_by_.find(txid);
  auto already_has = [&](NodeId peer) {
    return peer == except || (skip != announced_by_.end() && skip->second.contains(peer));
  };
  if (options_.tx_relay_mode == TxRelayMode::kFlood) {
    for (NodeId peer : network_->peers_of(id_)) {
      if (already_has(peer)) continue;
      network_->send(id_, peer, MsgInv{{}, {txid}});
    }
  } else {
    std::vector<NodeId> eligible;
    for (NodeId peer : network_->peers_of(id_)) {
      if (!already_has(peer)) eligible.push_back(peer);
    }
    std::vector<NodeId> targets = reconcile::select_fanout_peers(
        txid, eligible, options_.flood_fanout, options_.relay_salt);
    for (NodeId peer : eligible) {
      if (std::binary_search(targets.begin(), targets.end(), peer)) {
        network_->send(id_, peer, MsgInv{{}, {txid}});
        if (metrics_.relay_fanout_invs != nullptr) metrics_.relay_fanout_invs->inc();
      } else {
        ReconLink& link = recon_link(peer);
        link.set.add(txid);
        if (link.parked) {
          // New work revives a link parked by timeouts (the partition may
          // have healed without the connection cycling).
          link.parked = false;
          link.failed_rounds = 0;
        }
      }
    }
    schedule_recon_tick();
  }
  announced_by_.erase(txid);
}

BitcoinNode::ReconLink& BitcoinNode::recon_link(NodeId peer) {
  auto it = recon_links_.find(peer);
  if (it == recon_links_.end()) {
    ReconLink link;
    link.set = reconcile::ReconSet(reconcile::link_salt(id_, peer, options_.relay_salt));
    it = recon_links_.emplace(peer, std::move(link)).first;
  }
  return it->second;
}

// Each link gets its own phase slot (derived from both endpoint ids) so a
// node's rounds to its peers spread across the interval instead of firing as
// one salvo. Staggering matters for bandwidth, not just smoothness: when
// several concurrent rounds would each learn that this node lacks the same
// transaction, each responder pushes a copy; serialized rounds let the first
// push land so the transaction cancels in every later sketch.
std::uint32_t BitcoinNode::recon_phase_key(NodeId peer) const {
  return id_ * 0x9e3779b9u + peer * 0x85ebca6bu;
}

void BitcoinNode::schedule_recon_tick() {
  if (options_.tx_relay_mode != TxRelayMode::kReconcile) return;
  if (recon_tick_.valid()) return;
  util::SimTime next = 0;
  for (const auto& [peer, link] : recon_links_) {
    if (link.parked || link.round_active || link.set.empty()) continue;
    if (!network_->connected(id_, peer)) continue;
    util::SimTime tick = reconcile::next_recon_tick(network_->sim().now(),
                                                    options_.recon_interval,
                                                    recon_phase_key(peer));
    if (next == 0 || tick < next) next = tick;
  }
  if (next == 0) return;
  recon_tick_ = network_->sim().schedule_at(next, [this] {
    recon_tick_ = {};
    run_recon_ticks();
  });
}

void BitcoinNode::run_recon_ticks() {
  util::SimTime now = network_->sim().now();
  for (auto& [peer, link] : recon_links_) {
    if (link.parked || link.round_active || link.set.empty()) continue;
    if (!network_->connected(id_, peer)) continue;
    // Only links whose phase slot lands exactly on this tick fire; the rest
    // are picked up when the timer is re-armed for the next due slot.
    if (reconcile::next_recon_tick(now - 1, options_.recon_interval,
                                   recon_phase_key(peer)) != now) {
      continue;
    }
    start_recon_round(peer, link);
  }
  schedule_recon_tick();
}

void BitcoinNode::start_recon_round(NodeId peer, ReconLink& link) {
  link.round_active = true;
  link.round = next_round_++;
  link.awaiting_parts = 1;
  link.round_diff = 0;
  // Size for the smoothed divergence with a two-sigma cushion — enough that
  // ordinary fluctuation rarely triggers a bisection, without stacking the
  // estimator's full fallback margin on top of the sizing law's own decode
  // margin. Two local signals then correct the smoothed history:
  //  - cap at 2|A|+4: arrivals are symmetric across a link, so the peer's
  //    pending count tracks ours and the true difference is near-surely
  //    under twice our own. This is what deflates the post-burst tail —
  //    the EWMA decays a round late, but a near-empty set is proof the
  //    divergence it predicts cannot materialise.
  //  - floor at |A|/2 on a cold link: with no observed diff the prior mean
  //    is meaningless, but by the first tick both sides have been filling
  //    their sets from the same stream, so roughly half of what we hold is
  //    already mirrored on the other side.
  double mean = link.estimator.mean();
  auto sized = static_cast<std::size_t>(std::ceil(mean + 2.0 * std::sqrt(std::max(mean, 1.0))));
  sized = std::min(sized, 2 * link.set.size() + 4);
  if (!link.warmed) sized = std::max(sized, link.set.size() / 2 + 4);
  link.round_sized = sized;
  link.round_cells = reconcile::recon_sketch_cells(sized);
  reconcile::ShortIdSketch sketch = link.set.sketch(link.round_cells, 0);
  link.snapshot = link.set.take_snapshot();
  MsgReconSketch msg{link.round, 0, static_cast<std::uint32_t>(link.snapshot.size()),
                    std::move(sketch)};
  if (metrics_.relay_sketches_sent != nullptr) {
    metrics_.relay_sketches_sent->inc();
    metrics_.relay_sketch_bytes->inc(msg.sketch.wire_size());
    metrics_.relay_sketch_cells->observe(static_cast<double>(link.round_cells));
  }
  network_->send(id_, peer, std::move(msg));
  std::uint32_t round = link.round;
  link.timeout = network_->sim().schedule(options_.recon_timeout, [this, peer, round] {
    auto it = recon_links_.find(peer);
    if (it == recon_links_.end() || !it->second.round_active || it->second.round != round) return;
    fail_recon_round(peer, it->second);
  });
}

void BitcoinNode::fail_recon_round(NodeId peer, ReconLink& link) {
  link.round_active = false;
  link.set.restore_snapshot(std::move(link.snapshot));
  link.snapshot.clear();
  ++link.failed_rounds;
  if (metrics_.relay_round_timeouts != nullptr) metrics_.relay_round_timeouts->inc();
  if (link.failed_rounds >= 3) {
    link.parked = true;
    if (tracer_ != nullptr) {
      tracer_->event(obs::Severity::kWarn, "relay.link_parked",
                     "node " + std::to_string(id_) + " parked link to " + std::to_string(peer));
    }
    return;
  }
  schedule_recon_tick();
}

void BitcoinNode::finish_recon_round(ReconLink& link) {
  // Every snapshot entry was either resolved by a direct push or cancelled
  // against the peer's set; anything left (shouldn't happen) is re-queued
  // rather than dropped.
  if (!link.snapshot.empty()) link.set.restore_snapshot(std::move(link.snapshot));
  link.snapshot.clear();
  link.estimator.observe(link.round_diff);
  link.warmed = true;
  link.round_active = false;
  link.failed_rounds = 0;
  network_->sim().cancel(link.timeout);
  link.timeout = {};
  if (metrics_.relay_rounds != nullptr) metrics_.relay_rounds->inc();
  schedule_recon_tick();
}

void BitcoinNode::handle_recon_sketch(NodeId from, const MsgReconSketch& msg) {
  ReconLink& link = recon_link(from);
  obs::ScopedSpan span(tracer_, "relay.respond", "reconcile");
  span.attr("node", static_cast<std::uint64_t>(id_));
  span.attr("part", static_cast<std::uint64_t>(msg.part));
  span.attr("cells", static_cast<std::uint64_t>(msg.sketch.cell_count()));
  std::size_t mine_before = link.set.part_size(msg.part);
  reconcile::ReconDiffResult result = reconcile::respond_to_sketch(link.set, msg.sketch, msg.part);
  MsgReconDiff reply{msg.round, msg.part, result.decode_failed,
                    static_cast<std::uint32_t>(mine_before),
                    0,
                    {},
                    {}};
  std::vector<const bitcoin::Transaction*> push;
  if (result.decode_failed) {
    span.attr("outcome", "decode_failed");
    if (metrics_.relay_diffs_failed != nullptr) metrics_.relay_diffs_failed->inc();
  } else {
    span.attr("outcome", "decoded");
    span.attr("diff", static_cast<std::uint64_t>(result.want.size() + result.have.size()));
    if (metrics_.relay_diffs_decoded != nullptr) metrics_.relay_diffs_decoded->inc();
    link.estimator.observe(result.want.size() + result.have.size());
    link.warmed = true;
    reply.want = std::move(result.want);
    for (const auto& [short_id, txid] : result.have) {
      // The decoded sketch proves the initiator lacks this transaction, so
      // push the body outright — no txid/getdata round trip needed, and the
      // push cannot duplicate a payload the way blind flooding would.
      auto entry = mempool_.find(txid);
      if (entry != mempool_.end()) {
        announced_by_[txid].insert(from);
        ++reply.have_count;
        push.push_back(&entry->second.tx);
      } else {
        reply.have_txs.push_back(txid);  // left the mempool mid-round
      }
    }
  }
  network_->send(id_, from, std::move(reply));
  for (const bitcoin::Transaction* tx : push) network_->send(id_, from, MsgTx{*tx});
}

void BitcoinNode::handle_recon_diff(NodeId from, const MsgReconDiff& msg) {
  // The peer's exclusive transactions are worth fetching no matter how stale
  // the round bookkeeping is (timeouts and reordered bisection halves must
  // not lose announcements).
  MsgGetData request;
  for (const auto& txid : msg.have_txs) {
    announced_by_[txid].insert(from);
    if (mempool_.contains(txid) || requested_txs_.contains(txid)) continue;
    requested_txs_.insert(txid);
    request.tx_ids.push_back(txid);
  }
  if (!request.tx_ids.empty()) network_->send(id_, from, std::move(request));

  auto it = recon_links_.find(from);
  if (it == recon_links_.end()) return;
  ReconLink& link = it->second;
  if (!link.round_active || msg.round != link.round) return;

  if (msg.decode_failed) {
    if (msg.part == 0) {
      // Bisect: the same cell count over half the ids doubles capacity.
      if (metrics_.relay_bisections != nullptr) metrics_.relay_bisections->inc();
      if (tracer_ != nullptr) {
        tracer_->event(obs::Severity::kDebug, "relay.bisect",
                       "node " + std::to_string(id_) + " round " + std::to_string(link.round));
      }
      link.awaiting_parts = 2;
      for (std::uint8_t part = 1; part <= 2; ++part) {
        std::uint32_t count = 0;
        for (const auto& [short_id, txid] : link.snapshot) {
          if (reconcile::id_in_part(short_id, part)) ++count;
        }
        // The failed round taught us both set sizes, so size each half by
        // the union bound (our part count plus half the peer's set): the
        // part's true difference cannot exceed it, making a second failure
        // — and the full-inv fallback it would force — vanishingly rare.
        // Escalate geometrically from the estimate that just failed: each
        // half gets the full failed capacity, doubling overall reach. The
        // union bound (our part count plus half the peer's set) stays as a
        // hard cap — the half's true difference cannot exceed it, and with
        // heavily overlapping sets the bound alone would oversize wildly.
        std::size_t bound = count + (msg.set_size + 1) / 2;
        std::size_t target = std::min(bound, 2 * link.round_sized);
        reconcile::ShortIdSketch sketch(reconcile::recon_sketch_cells(target),
                                        link.set.salt());
        for (const auto& [short_id, txid] : link.snapshot) {
          if (reconcile::id_in_part(short_id, part)) sketch.insert(short_id);
        }
        MsgReconSketch half{link.round, part, count, std::move(sketch)};
        if (metrics_.relay_sketches_sent != nullptr) {
          metrics_.relay_sketches_sent->inc();
          metrics_.relay_sketch_bytes->inc(half.sketch.wire_size());
        }
        network_->send(id_, from, std::move(half));
      }
    } else {
      // Even a bisection half failed: give up on sketches for this round and
      // exchange full inventories. Our whole snapshot goes out; the peer
      // answers with its own pending set as a plain inv.
      if (metrics_.relay_full_inv != nullptr) metrics_.relay_full_inv->inc();
      if (tracer_ != nullptr) {
        tracer_->event(obs::Severity::kWarn, "relay.full_inv",
                       "node " + std::to_string(id_) + " round " + std::to_string(link.round));
      }
      std::vector<Hash256> all;
      all.reserve(link.snapshot.size());
      for (const auto& [short_id, txid] : link.snapshot) all.push_back(txid);
      // Grow the estimate past this round's capacity so the next sketch has
      // headroom (the true difference is unknowable after a failed decode).
      link.round_diff += link.round_cells * 2 + msg.set_size;
      network_->send(id_, from, MsgReconFinalize{link.round, true, std::move(all)});
      link.snapshot.clear();
      finish_recon_round(link);
    }
    return;
  }

  // Successful decode for this part: resolve the peer's wants by pushing the
  // bodies outright (the peer proved it lacks them) and retire every
  // snapshot entry the part covered (ids not wanted cancelled in the sketch
  // — the peer already has them).
  link.round_diff += msg.want.size() + msg.have_count + msg.have_txs.size();
  for (auto snap = link.snapshot.begin(); snap != link.snapshot.end();) {
    if (!reconcile::id_in_part(snap->first, msg.part)) {
      ++snap;
      continue;
    }
    if (std::binary_search(msg.want.begin(), msg.want.end(), snap->first)) {
      auto entry = mempool_.find(snap->second);
      if (entry != mempool_.end()) {
        // If the tx left the mempool mid-round (mined, replaced), skip: a
        // mined tx reaches the peer through block relay, a replaced one is
        // no longer worth announcing.
        announced_by_[snap->second].insert(from);
        network_->send(id_, from, MsgTx{entry->second.tx});
      }
    }
    snap = link.snapshot.erase(snap);
  }
  if (--link.awaiting_parts == 0) finish_recon_round(link);
}

void BitcoinNode::handle_recon_finalize(NodeId from, const MsgReconFinalize& msg) {
  ReconLink& link = recon_link(from);
  MsgGetData request;
  for (const auto& txid : msg.tx_ids) {
    // The initiator has these; never announce them back (this is what makes
    // reconciliation-learned transactions echo-free, same as inv relay).
    announced_by_[txid].insert(from);
    link.set.remove(txid);
    if (mempool_.contains(txid) || requested_txs_.contains(txid)) continue;
    requested_txs_.insert(txid);
    request.tx_ids.push_back(txid);
  }
  if (msg.full_inv) {
    // Sketchless exchange: hand the initiator our whole pending set too.
    std::vector<Hash256> mine = link.set.txids();
    link.set.clear();
    send_tx_inv_chunked(from, mine);
  }
  if (!request.tx_ids.empty()) network_->send(id_, from, std::move(request));
}

}  // namespace icbtc::btcnet
