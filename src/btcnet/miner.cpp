#include "btcnet/miner.h"

#include "bitcoin/script.h"
#include "crypto/ripemd160.h"

namespace icbtc::btcnet {

namespace {
util::Bytes miner_coinbase_script(std::uint64_t tag) {
  // Pay to a synthetic key hash derived from the tag; no one spends these in
  // the simulation unless a wallet is given the matching key.
  util::ByteWriter w;
  w.str("miner-");
  w.u64le(tag);
  return bitcoin::p2pkh_script(crypto::hash160(w.data()));
}
}  // namespace

Miner::Miner(BitcoinNode& node, double hashrate_share, util::Rng rng)
    : node_(&node), share_(hashrate_share), rng_(std::move(rng)) {
  if (share_ <= 0.0 || share_ > 1.0) {
    throw std::invalid_argument("Miner: hashrate share must be in (0, 1]");
  }
  coinbase_script_ = miner_coinbase_script(node.id());
}

void Miner::start() {
  if (running_) return;
  running_ = true;
  schedule_next();
}

void Miner::stop() {
  running_ = false;
  node_->network().sim().cancel(pending_);
  pending_ = {};
}

void Miner::schedule_next() {
  double mean_s = static_cast<double>(node_->params().target_spacing_s) / share_;
  double wait_s = rng_.next_exponential(mean_s);
  pending_ = node_->network().sim().schedule(
      static_cast<util::SimTime>(wait_s * static_cast<double>(util::kSecond)),
      [this] { on_block_found(); });
}

void Miner::on_block_found() {
  if (!running_) return;
  mine_one();
  schedule_next();
}

bitcoin::Block Miner::mine_one() {
  const auto& tree = node_->tree();
  int height = node_->best_height() + 1;
  std::uint32_t time = static_cast<std::uint32_t>(
      static_cast<std::int64_t>(node_->params().genesis_header.time) +
      node_->network().sim().now() / util::kSecond);
  // Respect median-time-past: nudge forward if the clock lags the chain.
  std::int64_t mtp = tree.median_time_past(node_->best_tip());
  if (time <= mtp) time = static_cast<std::uint32_t>(mtp + 1);

  // Fee-ordered template: highest feerate first (admission order as the
  // tie-break, so zero-fee simulations mine exactly what they always did),
  // parents always before children.
  auto txs = node_->mempool_template();
  bitcoin::Block block = chain::build_child_block(
      tree, node_->best_tip(), time, coinbase_script_,
      bitcoin::block_subsidy(height / 210000), std::move(txs),
      (static_cast<std::uint64_t>(node_->id()) << 32) | coinbase_counter_++);
  ++blocks_mined_;
  node_->submit_block(block);
  return block;
}

AdversaryMiner::AdversaryMiner(const BitcoinNode& honest_view, const util::Hash256& fork_point,
                               double hashrate_share, util::Rng rng)
    : params_(&honest_view.params()),
      share_(hashrate_share),
      rng_(std::move(rng)),
      tree_(honest_view.params(), honest_view.tree().find(fork_point)->header,
            honest_view.tree().find(fork_point)->height,
            honest_view.tree().find(fork_point)->cumulative_work -
                honest_view.tree().find(fork_point)->block_work),
      tip_(fork_point) {
  if (share_ <= 0.0 || share_ >= 1.0) {
    throw std::invalid_argument("AdversaryMiner: hashrate share must be in (0, 1)");
  }
}

double AdversaryMiner::expected_block_interval_s() const {
  // The adversary mines at the same difficulty as the network (Definition
  // IV.2's setting), so at share φ of the hash power its block interval is
  // spacing / φ — but the honest network also keeps extending, which attack
  // harnesses model separately.
  return static_cast<double>(params_->target_spacing_s) / share_;
}

double AdversaryMiner::sample_block_interval_s(util::Rng& rng) const {
  return rng.next_exponential(expected_block_interval_s());
}

const bitcoin::Block& AdversaryMiner::mine_next(std::uint32_t time) {
  std::int64_t mtp = tree_.median_time_past(tip_);
  if (static_cast<std::int64_t>(time) <= mtp) time = static_cast<std::uint32_t>(mtp + 1);
  bitcoin::Block block = chain::build_child_block(
      tree_, tip_, time, miner_coinbase_script(0xad7e25a11ULL), bitcoin::block_subsidy(0), {},
      0xad00000000000000ULL | coinbase_counter_++);
  // The adversary's own tree accepts its block unconditionally (it mined it).
  std::int64_t far_future = static_cast<std::int64_t>(time) + params_->max_future_drift_s;
  auto result = tree_.accept(block.header, far_future);
  if (result != chain::AcceptResult::kAccepted) {
    throw std::logic_error("AdversaryMiner: private block rejected by own tree");
  }
  tip_ = block.hash();
  private_blocks_.push_back(std::move(block));
  return private_blocks_.back();
}

std::vector<bitcoin::BlockHeader> AdversaryMiner::private_headers() const {
  std::vector<bitcoin::BlockHeader> out;
  out.reserve(private_blocks_.size());
  for (const auto& b : private_blocks_) out.push_back(b.header);
  return out;
}

}  // namespace icbtc::btcnet
