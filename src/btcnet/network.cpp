#include "btcnet/network.h"

#include <algorithm>

namespace icbtc::btcnet {

namespace {
// Indexed by the Message variant alternative order.
constexpr const char* kTypeNames[] = {"inv",         "getheaders", "headers",
                                      "getdata",     "block",      "notfound",
                                      "tx",          "getaddr",    "addr",
                                      "cmpctblock",  "getblocktxn", "blocktxn",
                                      "reconsketch", "recondiff",  "reconfinalize"};
static_assert(std::size(kTypeNames) == std::variant_size_v<Message>);
}  // namespace

const char* message_type_name(std::size_t index) {
  return index < std::size(kTypeNames) ? kTypeNames[index] : "unknown";
}

std::size_t message_size(const Message& msg) {
  struct Sizer {
    std::size_t operator()(const MsgInv& m) const {
      return 8 + 36 * (m.block_hashes.size() + m.tx_ids.size());
    }
    std::size_t operator()(const MsgGetHeaders& m) const { return 8 + 32 * (m.locator.size() + 1); }
    std::size_t operator()(const MsgHeaders& m) const { return 8 + 81 * m.headers.size(); }
    std::size_t operator()(const MsgGetData& m) const {
      return 9 + 36 * (m.block_hashes.size() + m.tx_ids.size());
    }
    std::size_t operator()(const MsgBlock& m) const { return 8 + m.block.size(); }
    std::size_t operator()(const MsgNotFound& m) const {
      return 8 + 36 * (m.block_hashes.size() + m.tx_ids.size());
    }
    std::size_t operator()(const MsgTx& m) const { return 8 + m.tx.size(); }
    std::size_t operator()(const MsgGetAddr&) const { return 8; }
    std::size_t operator()(const MsgAddr& m) const { return 8 + 30 * m.addresses.size(); }
    std::size_t operator()(const MsgCmpctBlock& m) const { return 8 + m.compact.wire_size(); }
    std::size_t operator()(const MsgGetBlockTxn& m) const { return 8 + 32 + 3 + 3 * m.indexes.size(); }
    std::size_t operator()(const MsgBlockTxn& m) const {
      std::size_t total = 8 + 32 + 3;
      for (const auto& tx : m.transactions) total += tx.size();
      return total;
    }
    std::size_t operator()(const MsgReconSketch& m) const {
      return 8 + 4 + 1 + 4 + m.sketch.wire_size();
    }
    std::size_t operator()(const MsgReconDiff& m) const {
      // Short ids travel as 6 bytes each; txids as full 32.
      return 8 + 4 + 1 + 1 + 4 + 4 + 6 * m.want.size() + 32 * m.have_txs.size();
    }
    std::size_t operator()(const MsgReconFinalize& m) const {
      return 8 + 4 + 1 + 32 * m.tx_ids.size();
    }
  };
  return std::visit(Sizer{}, msg);
}

util::SimTime LatencyModel::sample(std::size_t message_bytes, util::Rng& rng) const {
  double transfer = static_cast<double>(per_kilobyte) * static_cast<double>(message_bytes) / 1024.0;
  double raw = static_cast<double>(base) + transfer;
  double factor = 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
  return static_cast<util::SimTime>(raw * std::max(0.0, factor));
}

NodeId Network::attach(Endpoint* endpoint, bool ipv6, bool gossiped) {
  NodeId id = next_id_++;
  endpoints_[id] = endpoint;
  addresses_[id] = NetAddress{id, ipv6};
  if (gossiped) gossiped_.insert(id);
  return id;
}

void Network::detach(NodeId id) {
  for (NodeId peer : peers_of(id)) disconnect(id, peer);
  endpoints_.erase(id);
  addresses_.erase(id);
  gossiped_.erase(id);
  std::erase(dns_seeds_, id);
  partitioned_.erase(id);
}

void Network::add_dns_seed(NodeId id) {
  if (endpoints_.contains(id)) dns_seeds_.push_back(id);
}

std::vector<NetAddress> Network::query_dns_seeds() const {
  std::vector<NetAddress> out;
  out.reserve(dns_seeds_.size());
  for (NodeId id : dns_seeds_) out.push_back(addresses_.at(id));
  return out;
}

std::vector<NetAddress> Network::sample_addresses(std::size_t max, util::Rng& rng) const {
  std::vector<NetAddress> all;
  all.reserve(gossiped_.size());
  for (NodeId id : gossiped_) all.push_back(addresses_.at(id));
  // Sort for determinism (unordered_set iteration order is unspecified),
  // then shuffle with the caller's RNG.
  std::sort(all.begin(), all.end(),
            [](const NetAddress& x, const NetAddress& y) { return x.id < y.id; });
  rng.shuffle(all);
  if (all.size() > max) all.resize(max);
  return all;
}

bool Network::connect(NodeId a, NodeId b) {
  if (a == b || !endpoints_.contains(a) || !endpoints_.contains(b)) return false;
  auto [it, inserted] = links_.insert(make_link(a, b));
  (void)it;
  if (inserted) {
    endpoints_.at(a)->on_connected(b);
    endpoints_.at(b)->on_connected(a);
  }
  return inserted;
}

void Network::disconnect(NodeId a, NodeId b) {
  if (links_.erase(make_link(a, b)) > 0) {
    if (auto it = endpoints_.find(a); it != endpoints_.end()) it->second->on_disconnected(b);
    if (auto it = endpoints_.find(b); it != endpoints_.end()) it->second->on_disconnected(a);
  }
}

bool Network::connected(NodeId a, NodeId b) const { return links_.contains(make_link(a, b)); }

std::vector<NodeId> Network::peers_of(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& link : links_) {
    if (link.a == id) out.push_back(link.b);
    if (link.b == id) out.push_back(link.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    messages_metric_ = bytes_metric_ = drops_metric_ = nullptr;
    msg_type_metrics_.fill(nullptr);
    msg_type_bytes_.fill(nullptr);
    return;
  }
  messages_metric_ = &registry->counter("net.messages");
  bytes_metric_ = &registry->counter("net.bytes");
  drops_metric_ = &registry->counter("net.drops");
  for (std::size_t i = 0; i < msg_type_metrics_.size(); ++i) {
    msg_type_metrics_[i] = &registry->counter(std::string("net.msg.") + kTypeNames[i]);
    msg_type_bytes_[i] = &registry->counter(std::string("net.bytes.") + kTypeNames[i]);
  }
}

void Network::send(NodeId from, NodeId to, Message msg) {
  if (!connected(from, to) || partitioned_.contains(from) != partitioned_.contains(to)) {
    if (drops_metric_ != nullptr) drops_metric_->inc();
    return;
  }
  std::size_t size = message_size(msg);
  ++messages_sent_;
  bytes_sent_ += size;
  if (messages_metric_ != nullptr) {
    messages_metric_->inc();
    bytes_metric_->inc(size);
    msg_type_metrics_[msg.index()]->inc();
    msg_type_bytes_[msg.index()]->inc(size);
  }
  util::SimTime delay = latency_.sample(size, rng_);
  // Capture the causal parent at send time: the delivery event then nests
  // under whatever span initiated the send, stitching request/response
  // chains into one trace across the scheduler boundary.
  obs::SpanContext parent = tracer_ != nullptr ? tracer_->current() : obs::SpanContext{};
  sim_->schedule(delay, [this, from, to, size, parent, m = std::move(msg)] {
    // The link may have been torn down or the endpoint detached in flight.
    if (!connected(from, to) || !endpoints_.contains(to) ||
        partitioned_.contains(from) != partitioned_.contains(to)) {
      if (drops_metric_ != nullptr) drops_metric_->inc();
      if (tracer_ != nullptr) {
        tracer_->event(obs::Severity::kDebug, "net.drop_in_flight",
                       std::string(message_type_name(m.index())), parent);
      }
      return;
    }
    obs::ScopedSpan span(tracer_, std::string("net.") + message_type_name(m.index()), "btcnet",
                         parent);
    span.attr("from", static_cast<std::uint64_t>(from));
    span.attr("to", static_cast<std::uint64_t>(to));
    span.attr("bytes", static_cast<std::uint64_t>(size));
    endpoints_.at(to)->deliver(from, m);
  });
}

void Network::set_partitioned(NodeId id, bool partitioned) {
  if (partitioned) {
    partitioned_.insert(id);
  } else {
    partitioned_.erase(id);
  }
}

}  // namespace icbtc::btcnet
