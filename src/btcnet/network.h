// Transport and registry for the simulated Bitcoin P2P network.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "btcnet/messages.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/sim.h"

namespace icbtc::btcnet {

/// Wire-protocol name of the Message variant alternative at `index`
/// ("inv", "headers", "block", ...), or "unknown" if out of range.
const char* message_type_name(std::size_t index);

/// Anything that can be attached to the network: full nodes and Bitcoin
/// adapters implement this.
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Delivers a message from a connected peer.
  virtual void deliver(NodeId from, const Message& msg) = 0;

  /// Called when a connection is established / torn down.
  virtual void on_connected(NodeId peer) { (void)peer; }
  virtual void on_disconnected(NodeId peer) { (void)peer; }
};

/// Latency model: base propagation delay plus per-byte transfer time, with
/// multiplicative jitter.
struct LatencyModel {
  util::SimTime base = 50 * util::kMillisecond;
  util::SimTime per_kilobyte = 1 * util::kMillisecond;
  double jitter = 0.2;  // +- fraction

  util::SimTime sample(std::size_t message_bytes, util::Rng& rng) const;
};

/// The simulated network: address registry, connections, and message
/// delivery with latency. Deterministic given the seed of the supplied RNG.
class Network {
 public:
  Network(util::Simulation& sim, util::Rng rng, LatencyModel latency = {})
      : sim_(&sim), rng_(std::move(rng)), latency_(latency) {}

  util::Simulation& sim() { return *sim_; }
  util::Rng& rng() { return rng_; }

  /// Registers an endpoint; returns its assigned id. `gossiped` controls
  /// whether the address appears in addr gossip / DNS seed answers (adapters
  /// do not advertise themselves).
  NodeId attach(Endpoint* endpoint, bool ipv6 = true, bool gossiped = true);
  void detach(NodeId id);

  /// Marks an address as a DNS seed answer source.
  void add_dns_seed(NodeId id);
  /// The DNS-seed bootstrap answer: addresses of seed nodes.
  std::vector<NetAddress> query_dns_seeds() const;

  /// All gossiped addresses (for nodes answering getaddr).
  std::vector<NetAddress> sample_addresses(std::size_t max, util::Rng& rng) const;

  bool connect(NodeId a, NodeId b);
  void disconnect(NodeId a, NodeId b);
  bool connected(NodeId a, NodeId b) const;
  std::vector<NodeId> peers_of(NodeId id) const;
  bool exists(NodeId id) const { return endpoints_.contains(id); }
  const NetAddress& address_of(NodeId id) const { return addresses_.at(id); }

  /// Sends `msg` from `from` to `to`; silently dropped if the two are not
  /// connected at send time (as a TCP reset would).
  void send(NodeId from, NodeId to, Message msg);

  /// Partitions: while set, messages between the two groups are dropped.
  void set_partitioned(NodeId id, bool partitioned);
  bool is_partitioned(NodeId id) const { return partitioned_.contains(id); }

  std::size_t message_count() const { return messages_sent_; }
  std::size_t bytes_sent() const { return bytes_sent_; }

  /// Attaches a metrics registry (nullptr detaches): counts messages and
  /// bytes by type (`net.msg.<type>`, `net.bytes.<type>`), total
  /// messages/bytes, and drops (disconnected link, partition cut, or torn
  /// down in flight).
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches). Each delivery then runs inside a
  /// "net.<type>" span whose parent is the span that was current at *send*
  /// time, so request/response chains (e.g. an adapter GetSuccessors
  /// round-trip) form one causal trace across scheduled events.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

 private:
  struct Link {
    NodeId a, b;
    bool operator==(const Link&) const = default;
  };
  static Link make_link(NodeId a, NodeId b) { return a < b ? Link{a, b} : Link{b, a}; }
  struct LinkHash {
    std::size_t operator()(const Link& l) const noexcept {
      return std::hash<std::uint64_t>{}((static_cast<std::uint64_t>(l.a) << 32) | l.b);
    }
  };

  util::Simulation* sim_;
  util::Rng rng_;
  LatencyModel latency_;
  NodeId next_id_ = 1;
  std::unordered_map<NodeId, Endpoint*> endpoints_;
  std::unordered_map<NodeId, NetAddress> addresses_;
  std::unordered_set<NodeId> gossiped_;
  std::vector<NodeId> dns_seeds_;
  std::unordered_set<Link, LinkHash> links_;
  std::unordered_set<NodeId> partitioned_;
  std::size_t messages_sent_ = 0;
  std::size_t bytes_sent_ = 0;

  obs::Tracer* tracer_ = nullptr;
  obs::Counter* messages_metric_ = nullptr;
  obs::Counter* bytes_metric_ = nullptr;
  obs::Counter* drops_metric_ = nullptr;
  std::array<obs::Counter*, std::variant_size_v<Message>> msg_type_metrics_{};
  std::array<obs::Counter*, std::variant_size_v<Message>> msg_type_bytes_{};
};

}  // namespace icbtc::btcnet
