// Convenience builder assembling a whole simulated Bitcoin network: nodes,
// topology, DNS seeds, and miners. Used by integration tests, benches, and
// the examples.
#pragma once

#include <memory>
#include <vector>

#include "btcnet/miner.h"
#include "btcnet/network.h"
#include "btcnet/node.h"

namespace icbtc::btcnet {

struct BitcoinNetworkConfig {
  std::size_t num_nodes = 20;
  std::size_t connections_per_node = 4;
  std::size_t num_dns_seeds = 3;
  std::size_t num_miners = 4;
  /// Fraction of nodes reachable over IPv6 (the adapter can only use these).
  double ipv6_fraction = 0.6;
  NodeOptions node_options;
};

class BitcoinNetworkHarness {
 public:
  BitcoinNetworkHarness(util::Simulation& sim, const bitcoin::ChainParams& params,
                        BitcoinNetworkConfig config, std::uint64_t seed);

  Network& network() { return network_; }
  const bitcoin::ChainParams& params() const { return *params_; }

  std::size_t num_nodes() const { return nodes_.size(); }
  BitcoinNode& node(std::size_t i) { return *nodes_.at(i); }
  const BitcoinNode& node(std::size_t i) const { return *nodes_.at(i); }
  std::vector<Miner*> miners();

  void start_miners();
  void stop_miners();

  /// Height of the longest best chain across all nodes.
  int max_best_height() const;
  /// True if all nodes agree on the best tip.
  bool converged() const;

  /// Submits a transaction at a random node (as a user wallet would).
  bool broadcast_tx(const bitcoin::Transaction& tx);

 private:
  Network network_;
  const bitcoin::ChainParams* params_;
  util::Rng rng_;
  std::vector<std::unique_ptr<BitcoinNode>> nodes_;
  std::vector<std::unique_ptr<Miner>> miners_;
};

}  // namespace icbtc::btcnet
