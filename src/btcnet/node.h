// A simulated Bitcoin full node: header tree, block store, best-chain UTXO
// set with reorg support, mempool with standard policy, and P2P relay.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bitcoin/utxo.h"
#include "btcnet/network.h"
#include "chain/header_tree.h"
#include "reconcile/compact_block.h"

namespace icbtc::btcnet {

/// How a node pushes newly accepted blocks to its peers.
enum class BlockRelayMode {
  /// Announce via inv; peers pull the full block with getdata.
  kFull,
  /// Push a compact block (header + coinbase + short ids + IBLT sketch);
  /// peers reconstruct from their mempools, falling back to getblocktxn and
  /// finally a full getdata (src/reconcile).
  kCompact,
};

struct NodeOptions {
  /// Verify P2PKH spends when admitting transactions to the mempool.
  bool verify_scripts = true;
  /// Maximum addresses returned to a getaddr.
  std::size_t max_addr_response = 1000;
  /// Maximum blocks announced per inv.
  std::size_t max_inv = 500;
  /// Block relay mode. Nodes always *accept* compact blocks; this selects
  /// what they send.
  BlockRelayMode relay_mode = BlockRelayMode::kFull;
};

class BitcoinNode : public Endpoint {
 public:
  BitcoinNode(Network& network, const bitcoin::ChainParams& params, NodeOptions options = {},
              bool ipv6 = true);
  ~BitcoinNode() override;

  BitcoinNode(const BitcoinNode&) = delete;
  BitcoinNode& operator=(const BitcoinNode&) = delete;

  NodeId id() const { return id_; }
  Network& network() { return *network_; }
  const bitcoin::ChainParams& params() const { return *params_; }

  const chain::HeaderTree& tree() const { return tree_; }
  const bitcoin::UtxoSet& utxos() const { return utxos_; }
  int best_height() const { return tree_.best_height(); }
  util::Hash256 best_tip() const { return tree_.best_tip(); }

  bool has_block(const util::Hash256& hash) const { return blocks_.contains(hash); }
  const bitcoin::Block* get_block(const util::Hash256& hash) const;

  std::size_t mempool_size() const { return mempool_.size(); }
  bool in_mempool(const util::Hash256& txid) const { return mempool_.contains(txid); }
  /// Mempool transactions in admission order (miners consume this).
  std::vector<bitcoin::Transaction> mempool_snapshot() const;

  /// Locally submits a block (e.g. from an attached miner). Returns true if
  /// the block was accepted and stored.
  bool submit_block(const bitcoin::Block& block);

  /// Locally submits a transaction (e.g. a wallet RPC). Returns true if it
  /// entered the mempool.
  bool submit_tx(const bitcoin::Transaction& tx);

  // Endpoint interface.
  void deliver(NodeId from, const Message& msg) override;
  void on_connected(NodeId peer) override;

  std::size_t blocks_accepted() const { return blocks_accepted_; }
  std::size_t reorg_count() const { return reorg_count_; }

  /// Attaches a metrics registry (nullptr detaches): mempool flow (size,
  /// admissions, rejects, block/conflict evictions), orphan blocks, and the
  /// compact-relay pipeline (sketch vs full bytes, decode outcomes, fallback
  /// counters, sketch-size histogram). Shared registries aggregate across
  /// nodes: the counters are network-wide totals.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches): spans around compact-block decode
  /// with the outcome (mempool reconstruction, getblocktxn round-trip, full
  /// fallback) and flight-recorder events for orphan blocks and reorgs.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// The node's current estimate of mempool divergence (slices), used to
  /// size outgoing sketches.
  const reconcile::DivergenceEstimator& divergence_estimator() const { return estimator_; }

 private:
  void handle_inv(NodeId from, const MsgInv& msg);
  void handle_get_headers(NodeId from, const MsgGetHeaders& msg);
  void handle_headers(NodeId from, const MsgHeaders& msg);
  void handle_get_data(NodeId from, const MsgGetData& msg);
  void handle_block(NodeId from, const MsgBlock& msg);
  void handle_tx(NodeId from, const MsgTx& msg);
  void handle_get_addr(NodeId from);
  void handle_addr(NodeId from, const MsgAddr& msg);
  void handle_cmpct_block(NodeId from, const MsgCmpctBlock& msg);
  void handle_get_block_txn(NodeId from, const MsgGetBlockTxn& msg);
  void handle_block_txn(NodeId from, const MsgBlockTxn& msg);
  /// Builds MsgCmpctBlock for `block`, sketch sized by the estimator.
  MsgCmpctBlock make_compact(const bitcoin::Block& block);
  /// Finishes a compact reconstruction: accept on success, full-getdata
  /// fallback on Merkle/fill failure.
  void finish_compact(const util::Hash256& hash);

  bool accept_block(const bitcoin::Block& block, NodeId from);
  bool accept_tx(const bitcoin::Transaction& tx, NodeId from);
  /// Moves the UTXO view to the (possibly new) best chain.
  void update_active_chain();
  void relay_block_inv(const util::Hash256& hash, NodeId except);
  void relay_tx_inv(const util::Hash256& txid, NodeId except);
  std::vector<util::Hash256> build_locator() const;
  std::int64_t now_s() const;
  /// Tries to connect orphan blocks whose parent just arrived.
  void try_connect_orphans();

  Network* network_;
  const bitcoin::ChainParams* params_;
  NodeOptions options_;
  NodeId id_ = kInvalidNode;

  chain::HeaderTree tree_;
  std::unordered_map<util::Hash256, bitcoin::Block> blocks_;
  // Blocks whose parent header is unknown yet, keyed by parent hash. The
  // sender is remembered so a later connect does not echo the inv back.
  struct OrphanBlock {
    bitcoin::Block block;
    NodeId from = kInvalidNode;
  };
  std::unordered_map<util::Hash256, std::vector<OrphanBlock>> orphans_;

  // UTXO view of the active chain plus undo data to unwind reorgs.
  bitcoin::UtxoSet utxos_;
  std::vector<std::pair<util::Hash256, bitcoin::BlockUndo>> undo_stack_;
  util::Hash256 active_tip_;

  struct MempoolEntry {
    bitcoin::Transaction tx;
    std::uint64_t sequence;  // admission order
  };
  std::unordered_map<util::Hash256, MempoolEntry> mempool_;
  std::unordered_map<bitcoin::OutPoint, util::Hash256> mempool_spends_;
  std::uint64_t mempool_sequence_ = 0;

  // Inventory bookkeeping: what we already requested, to avoid floods.
  std::unordered_set<util::Hash256> requested_blocks_;
  std::unordered_set<util::Hash256> requested_txs_;

  // Peers that announced or delivered an item we do not have yet. Relay
  // skips them (they evidently have it); entries are dropped once the item
  // is relayed or rejected, so the map only tracks in-flight inventory.
  std::unordered_map<util::Hash256, std::unordered_set<NodeId>> announced_by_;

  // Compact blocks being reconstructed (waiting for blocktxn).
  struct PendingCompact {
    reconcile::CompactBlock compact;
    reconcile::CompactBlockCodec::Decode decode;
    NodeId from = kInvalidNode;
  };
  std::unordered_map<util::Hash256, PendingCompact> pending_compact_;

  reconcile::DivergenceEstimator estimator_;

  std::size_t blocks_accepted_ = 0;
  std::size_t reorg_count_ = 0;

  // Optional observability hooks; all nullptr when no registry is attached.
  struct Metrics {
    obs::Gauge* mempool_size = nullptr;
    obs::Counter* mempool_admitted = nullptr;
    obs::Counter* mempool_rejected = nullptr;
    obs::Counter* mempool_evicted_block = nullptr;
    obs::Counter* mempool_evicted_conflict = nullptr;
    obs::Counter* orphan_blocks = nullptr;
    obs::Counter* cmpct_sent = nullptr;
    obs::Counter* cmpct_received = nullptr;
    obs::Counter* cmpct_decode_success = nullptr;
    obs::Counter* cmpct_peel_failure = nullptr;
    obs::Counter* cmpct_fallback_getblocktxn = nullptr;
    obs::Counter* cmpct_fallback_full = nullptr;
    obs::Counter* cmpct_bytes_sketch = nullptr;
    obs::Counter* cmpct_bytes_full_equiv = nullptr;
    obs::Histogram* cmpct_sketch_cells = nullptr;
  };
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace icbtc::btcnet
