// A simulated Bitcoin full node: header tree, block store, best-chain UTXO
// set with reorg support, mempool with standard policy, and P2P relay.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "bitcoin/utxo.h"
#include "btcnet/network.h"
#include "chain/header_tree.h"
#include "reconcile/compact_block.h"
#include "reconcile/recon_set.h"

namespace icbtc::btcnet {

/// How a node pushes newly accepted blocks to its peers.
enum class BlockRelayMode {
  /// Announce via inv; peers pull the full block with getdata.
  kFull,
  /// Push a compact block (header + coinbase + short ids + IBLT sketch);
  /// peers reconstruct from their mempools, falling back to getblocktxn and
  /// finally a full getdata (src/reconcile).
  kCompact,
};

/// How a node announces newly accepted transactions.
enum class TxRelayMode {
  /// inv to every peer (classic flooding).
  kFlood,
  /// Erlay-style: inv to a small fanout subset, everyone else learns via
  /// periodic per-link sketch reconciliation (src/reconcile/recon_set).
  kReconcile,
};

struct NodeOptions {
  /// Verify P2PKH spends when admitting transactions to the mempool.
  bool verify_scripts = true;
  /// Maximum addresses returned to a getaddr.
  std::size_t max_addr_response = 1000;
  /// Maximum blocks announced per inv.
  std::size_t max_inv = 500;
  /// Block relay mode. Nodes always *accept* compact blocks; this selects
  /// what they send.
  BlockRelayMode relay_mode = BlockRelayMode::kFull;

  /// Transaction relay mode. Nodes always *answer* reconciliation messages;
  /// this selects how their own announcements go out.
  TxRelayMode tx_relay_mode = TxRelayMode::kFlood;
  /// Peers a new transaction is inv-flooded to in kReconcile mode; the rest
  /// learn it through sketch exchange.
  std::size_t flood_fanout = 2;
  /// Reconciliation cadence. Ticks land on staggered per-node phases of this
  /// interval (simulated time, so traces stay byte-identical).
  util::SimTime recon_interval = 2 * util::kSecond;
  /// A round with no response after this long is abandoned (its snapshot is
  /// re-queued); three consecutive timeouts park the link until it
  /// reconnects or new transactions arrive.
  util::SimTime recon_timeout = 10 * util::kSecond;
  /// Network-wide seed all per-link short-id salts and fanout ranks derive
  /// from.
  std::uint64_t relay_salt = 0x69636274u;

  // Fee-market policy. The zero defaults keep the legacy permissive mempool
  // (no floor, no cap, no expiry); RBF only changes behaviour when a
  // replacement actually pays more.
  /// Minimum feerate (millisatoshi per vbyte) to enter the mempool; also the
  /// incremental rate an RBF replacement must pay over the evicted total.
  std::uint64_t min_relay_fee_rate = 0;
  /// Replace-by-fee: a conflicting transaction may displace mempool entries
  /// when its feerate strictly beats every direct conflict and its absolute
  /// fee covers the evicted fees plus the incremental rate.
  bool replace_by_fee = true;
  /// Mempool size cap in transactions (0 = unbounded). When full, arrivals
  /// not beating the current fee floor are rejected; otherwise the
  /// lowest-feerate entry (and its descendants) is evicted.
  std::size_t mempool_max_txs = 0;
  /// Transactions expire from the mempool after this long (0 = never).
  util::SimTime mempool_tx_ttl = 0;
};

class BitcoinNode : public Endpoint {
 public:
  BitcoinNode(Network& network, const bitcoin::ChainParams& params, NodeOptions options = {},
              bool ipv6 = true);
  ~BitcoinNode() override;

  BitcoinNode(const BitcoinNode&) = delete;
  BitcoinNode& operator=(const BitcoinNode&) = delete;

  NodeId id() const { return id_; }
  Network& network() { return *network_; }
  const bitcoin::ChainParams& params() const { return *params_; }

  const chain::HeaderTree& tree() const { return tree_; }
  const bitcoin::UtxoSet& utxos() const { return utxos_; }
  int best_height() const { return tree_.best_height(); }
  util::Hash256 best_tip() const { return tree_.best_tip(); }

  bool has_block(const util::Hash256& hash) const { return blocks_.contains(hash); }
  const bitcoin::Block* get_block(const util::Hash256& hash) const;

  std::size_t mempool_size() const { return mempool_.size(); }
  bool in_mempool(const util::Hash256& txid) const { return mempool_.contains(txid); }
  /// Mempool transactions in admission order (miners consume this).
  std::vector<bitcoin::Transaction> mempool_snapshot() const;

  /// Block template: transactions ordered by feerate (descending, admission
  /// order as tie-break), parents always before children. Capped at
  /// `max_txs` entries.
  std::vector<bitcoin::Transaction> mempool_template(std::size_t max_txs = SIZE_MAX) const;

  struct MempoolTxInfo {
    bitcoin::Amount fee = 0;
    std::size_t vsize = 0;
    std::uint64_t feerate_milli = 0;  // millisatoshi per vbyte
  };
  std::optional<MempoolTxInfo> mempool_info(const util::Hash256& txid) const;
  /// Lowest feerate currently in the mempool (msat/vbyte; 0 when empty).
  std::uint64_t mempool_fee_floor() const;
  /// Transactions queued for reconciliation with `peer` (0 when flooding or
  /// no such link).
  std::size_t recon_pending(NodeId peer) const;

  /// Locally submits a block (e.g. from an attached miner). Returns true if
  /// the block was accepted and stored.
  bool submit_block(const bitcoin::Block& block);

  /// Locally submits a transaction (e.g. a wallet RPC). Returns true if it
  /// entered the mempool.
  bool submit_tx(const bitcoin::Transaction& tx);

  // Endpoint interface.
  void deliver(NodeId from, const Message& msg) override;
  void on_connected(NodeId peer) override;
  void on_disconnected(NodeId peer) override;

  std::size_t blocks_accepted() const { return blocks_accepted_; }
  std::size_t reorg_count() const { return reorg_count_; }

  /// Attaches a metrics registry (nullptr detaches): mempool flow (size,
  /// admissions, rejects, block/conflict evictions), orphan blocks, and the
  /// compact-relay pipeline (sketch vs full bytes, decode outcomes, fallback
  /// counters, sketch-size histogram). Shared registries aggregate across
  /// nodes: the counters are network-wide totals.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer (nullptr detaches): spans around compact-block decode
  /// with the outcome (mempool reconstruction, getblocktxn round-trip, full
  /// fallback) and flight-recorder events for orphan blocks and reorgs.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// The node's current estimate of mempool divergence (slices), used to
  /// size outgoing sketches.
  const reconcile::DivergenceEstimator& divergence_estimator() const { return estimator_; }

 private:
  void handle_inv(NodeId from, const MsgInv& msg);
  void handle_get_headers(NodeId from, const MsgGetHeaders& msg);
  void handle_headers(NodeId from, const MsgHeaders& msg);
  void handle_get_data(NodeId from, const MsgGetData& msg);
  void handle_block(NodeId from, const MsgBlock& msg);
  void handle_tx(NodeId from, const MsgTx& msg);
  void handle_not_found(NodeId from, const MsgNotFound& msg);
  void handle_get_addr(NodeId from);
  void handle_addr(NodeId from, const MsgAddr& msg);
  void handle_cmpct_block(NodeId from, const MsgCmpctBlock& msg);
  void handle_get_block_txn(NodeId from, const MsgGetBlockTxn& msg);
  void handle_block_txn(NodeId from, const MsgBlockTxn& msg);
  void handle_recon_sketch(NodeId from, const MsgReconSketch& msg);
  void handle_recon_diff(NodeId from, const MsgReconDiff& msg);
  void handle_recon_finalize(NodeId from, const MsgReconFinalize& msg);
  /// Builds MsgCmpctBlock for `block`, sketch sized by the estimator.
  MsgCmpctBlock make_compact(const bitcoin::Block& block);
  /// Finishes a compact reconstruction: accept on success, full-getdata
  /// fallback on Merkle/fill failure.
  void finish_compact(const util::Hash256& hash);

  bool accept_block(const bitcoin::Block& block, NodeId from);
  bool accept_tx(const bitcoin::Transaction& tx, NodeId from);
  /// Moves the UTXO view to the (possibly new) best chain.
  void update_active_chain();
  void relay_block_inv(const util::Hash256& hash, NodeId except);
  /// Mode dispatch: flood invs everywhere, or fanout-inv + queue into the
  /// per-peer reconciliation sets.
  void announce_tx(const util::Hash256& txid, NodeId except);
  std::vector<util::Hash256> build_locator() const;
  std::int64_t now_s() const;
  /// Tries to connect orphan blocks whose parent just arrived.
  void try_connect_orphans();

  // --- Continuous reconciliation (TxRelayMode::kReconcile) ---
  struct ReconLink;
  ReconLink& recon_link(NodeId peer);
  /// Arms the cadence timer iff some link has unreconciled work.
  void schedule_recon_tick();
  /// Per-link phase slot key: spreads one node's rounds across the interval.
  std::uint32_t recon_phase_key(NodeId peer) const;
  void run_recon_ticks();
  void start_recon_round(NodeId peer, ReconLink& link);
  /// Timeout path: restores the round snapshot, counts the failure, parks
  /// the link after three in a row.
  void fail_recon_round(NodeId peer, ReconLink& link);
  void finish_recon_round(ReconLink& link);
  void send_tx_inv_chunked(NodeId peer, const std::vector<util::Hash256>& txids);

  // --- Fee-market mempool maintenance ---
  /// Removes one entry and all its bookkeeping (spends, fee index, expiry
  /// timer, queued announcements). No-op when absent.
  void remove_mempool_tx(const util::Hash256& txid);
  /// Removes `txid` and every in-mempool descendant, counting each into
  /// `reason` (when attached).
  void evict_subtree(const util::Hash256& txid, obs::Counter* reason);
  void enforce_mempool_cap();
  void update_mempool_gauges();

  Network* network_;
  const bitcoin::ChainParams* params_;
  NodeOptions options_;
  NodeId id_ = kInvalidNode;

  chain::HeaderTree tree_;
  std::unordered_map<util::Hash256, bitcoin::Block> blocks_;
  // Blocks whose parent header is unknown yet, keyed by parent hash. The
  // sender is remembered so a later connect does not echo the inv back.
  struct OrphanBlock {
    bitcoin::Block block;
    NodeId from = kInvalidNode;
  };
  std::unordered_map<util::Hash256, std::vector<OrphanBlock>> orphans_;

  // UTXO view of the active chain plus undo data to unwind reorgs.
  bitcoin::UtxoSet utxos_;
  std::vector<std::pair<util::Hash256, bitcoin::BlockUndo>> undo_stack_;
  util::Hash256 active_tip_;

  struct MempoolEntry {
    bitcoin::Transaction tx;
    std::uint64_t sequence = 0;  // admission order
    bitcoin::Amount fee = 0;
    std::size_t vsize = 0;
    std::uint64_t feerate_milli = 0;  // millisatoshi per vbyte
    util::EventHandle expiry{};       // armed when mempool_tx_ttl > 0
  };
  std::unordered_map<util::Hash256, MempoolEntry> mempool_;
  std::unordered_map<bitcoin::OutPoint, util::Hash256> mempool_spends_;
  /// (feerate_milli, sequence) -> txid, ascending: begin() is the eviction
  /// candidate, and ties break deterministically by admission order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, util::Hash256> fee_index_;
  std::uint64_t mempool_sequence_ = 0;

  /// Per-peer reconciliation state (kReconcile mode; created lazily, dropped
  /// on disconnect). std::map keeps round scheduling deterministic.
  struct ReconLink {
    reconcile::ReconSet set;
    reconcile::DivergenceEstimator estimator{4.0};
    bool round_active = false;
    std::uint32_t round = 0;
    /// Outstanding sketch parts this round (1, or 2 while bisecting).
    std::uint8_t awaiting_parts = 0;
    std::size_t round_cells = 0;
    /// The diff estimate the active round's sketch was sized for; a failed
    /// decode escalates geometrically from it rather than from the (far
    /// larger) union bound.
    std::size_t round_sized = 0;
    std::size_t round_diff = 0;
    std::uint32_t failed_rounds = 0;
    /// Three consecutive timeouts (e.g. a partition) stop the cadence for
    /// this link until it reconnects or new work arrives.
    bool parked = false;
    /// False until the first observed diff: a cold link sizes its sketch by
    /// its own pending-set size instead of the (meaningless) prior mean.
    bool warmed = false;
    /// The set contents the active round is reconciling; arrivals during the
    /// round accumulate in `set` for the next one.
    std::map<std::uint64_t, util::Hash256> snapshot;
    util::EventHandle timeout{};
  };
  std::map<NodeId, ReconLink> recon_links_;
  std::uint32_t next_round_ = 1;
  util::EventHandle recon_tick_{};

  // Inventory bookkeeping: what we already requested, to avoid floods.
  std::unordered_set<util::Hash256> requested_blocks_;
  std::unordered_set<util::Hash256> requested_txs_;

  // Peers that announced or delivered an item we do not have yet. Relay
  // skips them (they evidently have it); entries are dropped once the item
  // is relayed or rejected, so the map only tracks in-flight inventory.
  std::unordered_map<util::Hash256, std::unordered_set<NodeId>> announced_by_;

  // Compact blocks being reconstructed (waiting for blocktxn).
  struct PendingCompact {
    reconcile::CompactBlock compact;
    reconcile::CompactBlockCodec::Decode decode;
    NodeId from = kInvalidNode;
  };
  std::unordered_map<util::Hash256, PendingCompact> pending_compact_;

  reconcile::DivergenceEstimator estimator_;

  std::size_t blocks_accepted_ = 0;
  std::size_t reorg_count_ = 0;

  // Optional observability hooks; all nullptr when no registry is attached.
  struct Metrics {
    obs::Gauge* mempool_size = nullptr;
    obs::Counter* mempool_admitted = nullptr;
    obs::Counter* mempool_rejected = nullptr;
    obs::Counter* mempool_evicted_block = nullptr;
    obs::Counter* mempool_evicted_conflict = nullptr;
    obs::Counter* orphan_blocks = nullptr;
    obs::Counter* cmpct_sent = nullptr;
    obs::Counter* cmpct_received = nullptr;
    obs::Counter* cmpct_decode_success = nullptr;
    obs::Counter* cmpct_peel_failure = nullptr;
    obs::Counter* cmpct_fallback_getblocktxn = nullptr;
    obs::Counter* cmpct_fallback_full = nullptr;
    obs::Counter* cmpct_bytes_sketch = nullptr;
    obs::Counter* cmpct_bytes_full_equiv = nullptr;
    obs::Histogram* cmpct_sketch_cells = nullptr;
    // Continuous tx relay (relay.*).
    obs::Counter* relay_sketches_sent = nullptr;
    obs::Counter* relay_sketch_bytes = nullptr;
    obs::Counter* relay_diffs_decoded = nullptr;
    obs::Counter* relay_diffs_failed = nullptr;
    obs::Counter* relay_bisections = nullptr;
    obs::Counter* relay_full_inv = nullptr;
    obs::Counter* relay_fanout_invs = nullptr;
    obs::Counter* relay_rounds = nullptr;
    obs::Counter* relay_round_timeouts = nullptr;
    obs::Histogram* relay_sketch_cells = nullptr;
    // Fee market (mempool.*).
    obs::Counter* mempool_rbf_replaced = nullptr;
    obs::Counter* mempool_evicted_expired = nullptr;
    obs::Counter* mempool_evicted_sizecap = nullptr;
    obs::Gauge* mempool_fee_floor = nullptr;
  };
  Metrics metrics_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace icbtc::btcnet
