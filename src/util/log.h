// Minimal leveled logger. Disabled by default so tests and benches stay
// quiet; flip the level for debugging simulation runs.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace icbtc::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const std::string& component, const std::string& msg);

template <typename... Args>
std::string format(const char* fmt, Args&&... args) {
  int n = std::snprintf(nullptr, 0, fmt, args...);
  if (n <= 0) return fmt;
  std::string out(static_cast<std::size_t>(n), '\0');
  std::snprintf(out.data(), out.size() + 1, fmt, args...);
  return out;
}
inline std::string format(const char* fmt) { return fmt; }
}  // namespace detail

template <typename... Args>
void log(LogLevel level, const std::string& component, const char* fmt, Args&&... args) {
  if (level < log_level()) return;
  detail::log_line(level, component, detail::format(fmt, std::forward<Args>(args)...));
}

#define ICBTC_LOG_DEBUG(component, ...) \
  ::icbtc::util::log(::icbtc::util::LogLevel::kDebug, (component), __VA_ARGS__)
#define ICBTC_LOG_INFO(component, ...) \
  ::icbtc::util::log(::icbtc::util::LogLevel::kInfo, (component), __VA_ARGS__)
#define ICBTC_LOG_WARN(component, ...) \
  ::icbtc::util::log(::icbtc::util::LogLevel::kWarn, (component), __VA_ARGS__)

}  // namespace icbtc::util
