#include "util/sim.h"

#include <algorithm>
#include <cstdio>

namespace icbtc::util {

EventHandle Simulation::schedule(SimTime delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<SimTime>(delay, 0), std::move(fn));
}

EventHandle Simulation::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  std::uint64_t id = next_seq_++;
  queue_.push(Event{when, id, std::move(fn)});
  return EventHandle{id};
}

void Simulation::cancel(EventHandle h) {
  if (h.valid()) cancelled_.push_back(h.id);
}

bool Simulation::step() {
  while (!queue_.empty()) {
    // const_cast to move the closure out; the element is popped immediately.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.seq);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ev.fn();
    return true;
  }
  return false;
}

std::size_t Simulation::run_until(SimTime until) {
  std::size_t n = 0;
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    bool is_cancelled =
        std::find(cancelled_.begin(), cancelled_.end(), top.seq) != cancelled_.end();
    if (!is_cancelled && top.when > until) break;
    if (step()) ++n;
  }
  if (now_ < until) now_ = until;
  return n;
}

std::size_t Simulation::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::string format_time(SimTime t) {
  std::int64_t us = t % 1000000;
  std::int64_t total_s = t / 1000000;
  std::int64_t s = total_s % 60;
  std::int64_t m = (total_s / 60) % 60;
  std::int64_t h = (total_s / 3600) % 24;
  std::int64_t d = total_s / 86400;
  char buf[64];
  if (d > 0) {
    std::snprintf(buf, sizeof(buf), "%lldd %02lld:%02lld:%02lld.%03lld", (long long)d,
                  (long long)h, (long long)m, (long long)s, (long long)(us / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld:%02lld.%03lld", (long long)h, (long long)m,
                  (long long)s, (long long)(us / 1000));
  }
  return buf;
}

}  // namespace icbtc::util
