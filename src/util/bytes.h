// Byte-buffer primitives and hex encoding shared by every module.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace icbtc::util {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;

/// Encodes `data` as a lowercase hex string.
std::string to_hex(ByteSpan data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteSpan src);

/// Constant-time-ish equality (not security critical in the simulation, but
/// keeps call sites tidy).
bool equal(ByteSpan a, ByteSpan b);

/// A fixed-size byte array with value semantics, ordering, and hashing; used
/// for hashes (32 bytes), addresses, etc.
template <std::size_t N>
struct FixedBytes {
  std::array<std::uint8_t, N> data{};

  constexpr FixedBytes() = default;

  static FixedBytes from_span(ByteSpan s) {
    if (s.size() != N) throw std::invalid_argument("FixedBytes: bad length");
    FixedBytes out;
    for (std::size_t i = 0; i < N; ++i) out.data[i] = s[i];
    return out;
  }

  static FixedBytes from_hex_str(std::string_view hex) {
    return from_span(from_hex(hex));
  }

  ByteSpan span() const { return ByteSpan(data.data(), N); }
  std::string hex() const { return to_hex(span()); }
  bool is_zero() const {
    for (auto b : data)
      if (b != 0) return false;
    return true;
  }

  auto operator<=>(const FixedBytes&) const = default;
};

/// 256-bit hash/id in internal (little-endian-number) byte order, as Bitcoin
/// stores hashes. Displayed in the conventional reversed (big-endian) order
/// via `rpc_hex`.
struct Hash256 : FixedBytes<32> {
  static Hash256 from_span(ByteSpan s) {
    Hash256 h;
    h.data = FixedBytes<32>::from_span(s).data;
    return h;
  }
  /// Hex in RPC/display order (byte-reversed), as block explorers show it.
  std::string rpc_hex() const;
};

struct Hash160 : FixedBytes<20> {
  static Hash160 from_span(ByteSpan s) {
    Hash160 h;
    h.data = FixedBytes<20>::from_span(s).data;
    return h;
  }
};

}  // namespace icbtc::util

namespace std {
template <size_t N>
struct hash<icbtc::util::FixedBytes<N>> {
  size_t operator()(const icbtc::util::FixedBytes<N>& v) const noexcept {
    // FNV-1a over the bytes; the inputs are themselves cryptographic hashes
    // in practice, so quality is ample.
    size_t h = 1469598103934665603ULL;
    for (auto b : v.data) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};
template <>
struct hash<icbtc::util::Hash256> {
  size_t operator()(const icbtc::util::Hash256& v) const noexcept {
    return hash<icbtc::util::FixedBytes<32>>{}(v);
  }
};
template <>
struct hash<icbtc::util::Hash160> {
  size_t operator()(const icbtc::util::Hash160& v) const noexcept {
    return hash<icbtc::util::FixedBytes<20>>{}(v);
  }
};
}  // namespace std
