#include "util/byteio.h"

namespace icbtc::util {

void ByteWriter::varint(std::uint64_t v) {
  if (v < 0xfd) {
    u8(static_cast<std::uint8_t>(v));
  } else if (v <= 0xffff) {
    u8(0xfd);
    u16le(static_cast<std::uint16_t>(v));
  } else if (v <= 0xffffffffULL) {
    u8(0xfe);
    u32le(static_cast<std::uint32_t>(v));
  } else {
    u8(0xff);
    u64le(v);
  }
}

std::uint64_t ByteReader::varint() {
  std::uint8_t tag = u8();
  std::uint64_t v;
  if (tag < 0xfd) return tag;
  if (tag == 0xfd) {
    v = u16le();
    if (v < 0xfd) throw DecodeError("non-canonical varint");
  } else if (tag == 0xfe) {
    v = u32le();
    if (v <= 0xffff) throw DecodeError("non-canonical varint");
  } else {
    v = u64le();
    if (v <= 0xffffffffULL) throw DecodeError("non-canonical varint");
  }
  return v;
}

}  // namespace icbtc::util
