// Little-endian byte stream reader/writer with Bitcoin varint support.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace icbtc::util {

/// Thrown when a reader runs past the end of its buffer or a decoded value is
/// malformed (e.g. a non-canonical varint).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16le(std::uint16_t v) { write_le(v, 2); }
  void u32le(std::uint32_t v) { write_le(v, 4); }
  void u64le(std::uint64_t v) { write_le(v, 8); }
  void i32le(std::int32_t v) { u32le(static_cast<std::uint32_t>(v)); }
  void i64le(std::int64_t v) { u64le(static_cast<std::uint64_t>(v)); }

  void bytes(ByteSpan s) { append(buf_, s); }
  void str(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Bitcoin CompactSize encoding.
  void varint(std::uint64_t v);

  /// CompactSize length prefix followed by the raw bytes.
  void var_bytes(ByteSpan s) {
    varint(s.size());
    bytes(s);
  }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void write_le(std::uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(ByteSpan data) : data_(data) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16le() { return static_cast<std::uint16_t>(read_le(2)); }
  std::uint32_t u32le() { return static_cast<std::uint32_t>(read_le(4)); }
  std::uint64_t u64le() { return read_le(8); }
  std::int32_t i32le() { return static_cast<std::int32_t>(u32le()); }
  std::int64_t i64le() { return static_cast<std::int64_t>(u64le()); }

  /// Bitcoin CompactSize decoding; rejects non-canonical encodings.
  std::uint64_t varint();

  ByteSpan bytes(std::size_t n) { return take(n); }
  Bytes bytes_copy(std::size_t n) {
    auto s = take(n);
    return Bytes(s.begin(), s.end());
  }
  Bytes var_bytes() { return bytes_copy(checked_len(varint())); }

  template <std::size_t N>
  FixedBytes<N> fixed() {
    return FixedBytes<N>::from_span(take(N));
  }
  Hash256 hash256() {
    Hash256 h;
    auto s = take(32);
    std::memcpy(h.data.data(), s.data(), 32);
    return h;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

  /// The already-consumed slice [start, position()). Lets a decoder hash the
  /// exact wire bytes of a value it just parsed without reserializing.
  ByteSpan window(std::size_t start) const {
    if (start > pos_) throw DecodeError("window start past read position");
    return data_.subspan(start, pos_ - start);
  }

  /// Ensures a CompactSize-decoded length fits the remaining buffer before it
  /// is used for an allocation.
  std::size_t checked_len(std::uint64_t n) {
    if (n > remaining()) throw DecodeError("length prefix exceeds buffer");
    return static_cast<std::size_t>(n);
  }

 private:
  ByteSpan take(std::size_t n) {
    if (n > remaining()) throw DecodeError("read past end of buffer");
    ByteSpan s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  std::uint64_t read_le(int n) {
    auto s = take(static_cast<std::size_t>(n));
    std::uint64_t v = 0;
    for (int i = n - 1; i >= 0; --i) v = (v << 8) | s[static_cast<std::size_t>(i)];
    return v;
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace icbtc::util
