#include "util/rng.h"

#include <cmath>

namespace icbtc::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("Rng::next_below: zero bound");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::next_range: lo > hi");
  if (lo == 0 && hi == max()) return next();
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::next_exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("Rng::next_exponential: non-positive mean");
  double u;
  do {
    u = next_double();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

Bytes Rng::next_bytes(std::size_t n) {
  Bytes out(n);
  std::size_t i = 0;
  while (i + 8 <= n) {
    std::uint64_t v = next();
    for (int k = 0; k < 8; ++k) out[i + k] = static_cast<std::uint8_t>(v >> (8 * k));
    i += 8;
  }
  if (i < n) {
    std::uint64_t v = next();
    for (; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

Hash256 Rng::next_hash() {
  Hash256 h;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = next();
    for (int k = 0; k < 8; ++k) h.data[i * 8 + k] = static_cast<std::uint8_t>(v >> (8 * k));
  }
  return h;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  // Partial Fisher–Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::fork() { return Rng(next()); }

}  // namespace icbtc::util
