// Deterministic discrete-event simulation core.
//
// Every simulated component (Bitcoin nodes, miners, IC replicas, adapters)
// schedules callbacks on a shared Simulation. Events fire in (time, sequence)
// order, so two runs with the same seed are bit-for-bit identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

namespace icbtc::util {

/// Simulated time in microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;

/// Handle used to cancel a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class Simulation {
 public:
  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at now() + delay. delay < 0 is clamped to 0.
  EventHandle schedule(SimTime delay, std::function<void()> fn);

  /// Schedules `fn` at an absolute time (>= now()).
  EventHandle schedule_at(SimTime when, std::function<void()> fn);

  /// Cancels a pending event. Safe on already-fired or invalid handles.
  void cancel(EventHandle h);

  /// Runs until the event queue drains or `until` is passed. Returns the
  /// number of events executed.
  std::size_t run_until(SimTime until);

  /// Runs until the queue drains or `max_events` events have executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  bool empty() const { return queue_.size() == cancelled_.size(); }
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  bool step();  // executes the next event; false if queue empty

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Cancellation is recorded by sequence id; cancelled events are skipped on
  // pop. Cheap relative to a mutable heap and keeps determinism trivial.
  std::vector<std::uint64_t> cancelled_;
};

/// Formats a SimTime as "1d 02:03:04.005" for logs and reports.
std::string format_time(SimTime t);

}  // namespace icbtc::util
