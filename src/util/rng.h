// Deterministic random-number generation for reproducible simulation runs.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/bytes.h"

namespace icbtc::util {

/// xoshiro256** seeded via splitmix64 — fast, high quality, and fully
/// deterministic given a seed. Satisfies UniformRandomBitGenerator so it can
/// drive <random> distributions, but the helpers below are preferred because
/// their output is identical across standard libraries.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's method. bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean (for Poisson-process
  /// inter-arrival times such as Bitcoin block intervals).
  double next_exponential(double mean);

  /// n uniformly random bytes.
  Bytes next_bytes(std::size_t n);

  Hash256 next_hash();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) uniformly. k must be <= n.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derives an independent child generator; used to give each simulated
  /// process its own stream so event ordering does not perturb randomness.
  Rng fork();

 private:
  std::uint64_t state_[4]{};
};

}  // namespace icbtc::util
