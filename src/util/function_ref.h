// Non-owning callable reference, the trampoline idiom std::function_ref
// standardizes in C++26. Used on read hot paths (shard-store visitation)
// where std::function's ownership and potential allocation are unwanted:
// a FunctionRef is two words, never allocates, and must not outlive the
// callable it was constructed from.
#pragma once

#include <memory>
#include <type_traits>
#include <utility>

namespace icbtc::util {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& f) noexcept  // NOLINT(google-explicit-constructor): by design
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const { return call_(obj_, std::forward<Args>(args)...); }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace icbtc::util
