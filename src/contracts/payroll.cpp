#include "contracts/payroll.h"

namespace icbtc::contracts {

PayrollContract::PayrollContract(canister::BitcoinIntegration& integration,
                                 const std::string& payroll_id, std::vector<Employee> employees,
                                 int min_confirmations)
    : integration_(&integration),
      wallet_(integration,
              crypto::DerivationPath{util::Bytes{'p', 'a', 'y'},
                                     util::Bytes(payroll_id.begin(), payroll_id.end())}),
      employees_(std::move(employees)),
      min_confirmations_(min_confirmations) {
  if (employees_.empty()) throw std::invalid_argument("PayrollContract: no employees");
  for (const auto& e : employees_) {
    if (e.salary <= 0) throw std::invalid_argument("PayrollContract: non-positive salary");
  }
}

PayrollContract::~PayrollContract() { stop_schedule(); }

canister::Outcome<bitcoin::Amount> PayrollContract::treasury_balance() {
  return wallet_.balance(min_confirmations_);
}

bitcoin::Amount PayrollContract::total_salaries() const {
  bitcoin::Amount total = 0;
  for (const auto& e : employees_) total += e.salary;
  return total;
}

PaydayRecord PayrollContract::run_payday(std::uint64_t round) {
  PaydayRecord record;
  record.round = round;

  std::vector<Payment> payments;
  payments.reserve(employees_.size());
  for (const auto& e : employees_) payments.push_back(Payment{e.btc_address, e.salary});

  SendResult sent = wallet_.send(payments, /*fee_per_vbyte=*/2, min_confirmations_);
  record.success = sent.ok();
  if (sent.ok()) {
    record.txid = sent.txid;
    record.total_paid = total_salaries();
    record.employees_paid = employees_.size();
  }
  history_.push_back(record);
  return record;
}

void PayrollContract::start_schedule(std::uint64_t period_rounds) {
  if (scheduled_) return;
  if (period_rounds == 0) throw std::invalid_argument("PayrollContract: zero period");
  scheduled_ = true;
  heartbeat_id_ = integration_->subnet().register_heartbeat(
      [this, period_rounds](const ic::RoundInfo& info) {
        if (info.round % period_rounds == 0) run_payday(info.round);
      });
}

void PayrollContract::stop_schedule() {
  if (!scheduled_) return;
  integration_->subnet().unregister_heartbeat(heartbeat_id_);
  scheduled_ = false;
}

}  // namespace icbtc::contracts
