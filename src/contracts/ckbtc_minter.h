// A chain-key Bitcoin ("ckBTC"-style) minter: the flagship application of
// the paper's integration. Users deposit native BTC to per-user addresses
// derived from the subnet's threshold key; once the deposit has c*
// confirmations (§IV-A: critical actions wait for deep confirmation) the
// minter credits a 1:1 token on a ledger. Burning tokens withdraws native
// BTC, signed by the threshold key — no bridge, no custodian, no wrapped
// IOU: the BTC sits on the Bitcoin chain under a key no single party holds.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "contracts/btc_wallet.h"

namespace icbtc::contracts {

/// A minimal fungible-token ledger canister (the ckBTC ledger).
class Ledger {
 public:
  using Principal = std::string;

  bitcoin::Amount balance_of(const Principal& owner) const;
  bitcoin::Amount total_supply() const { return total_supply_; }

  void mint(const Principal& to, bitcoin::Amount amount);
  /// Returns false (and changes nothing) if the balance is insufficient.
  bool burn(const Principal& from, bitcoin::Amount amount);
  bool transfer(const Principal& from, const Principal& to, bitcoin::Amount amount);

  std::uint64_t transactions() const { return transactions_; }

 private:
  std::unordered_map<Principal, bitcoin::Amount> balances_;
  bitcoin::Amount total_supply_ = 0;
  std::uint64_t transactions_ = 0;
};

struct RetrieveResult {
  canister::Status status = canister::Status::kOk;
  util::Hash256 txid;
  bitcoin::Amount amount_sent = 0;  // requested amount minus the BTC fee
  bitcoin::Amount fee = 0;

  bool ok() const { return status == canister::Status::kOk; }
};

class CkBtcMinter {
 public:
  /// `required_confirmations` is the deposit finality bar (c*). The real
  /// minter uses 6 on mainnet (and 12 for large amounts).
  CkBtcMinter(canister::BitcoinIntegration& integration, const std::string& minter_id,
              int required_confirmations = 6);

  Ledger& ledger() { return ledger_; }

  /// The unique BTC deposit address for `user` (derived threshold key).
  const std::string& deposit_address_for(const Ledger::Principal& user);

  /// Scans the user's deposit address for newly confirmed UTXOs and mints
  /// the corresponding tokens. Returns the newly minted amount.
  canister::Outcome<bitcoin::Amount> update_balance(const Ledger::Principal& user);

  /// Burns `amount` of the user's tokens and sends native BTC (minus the
  /// Bitcoin fee) to `btc_address`, spending pooled deposit UTXOs.
  RetrieveResult retrieve_btc(const Ledger::Principal& user, const std::string& btc_address,
                              bitcoin::Amount amount);

  int required_confirmations() const { return required_confirmations_; }
  std::size_t managed_utxo_count() const;
  bitcoin::Amount managed_btc() const;

 private:
  struct UserAccount {
    std::unique_ptr<BtcWallet> wallet;
    std::string address;
  };
  UserAccount& account_for(const Ledger::Principal& user);

  struct ManagedUtxo {
    canister::Utxo utxo;
    Ledger::Principal owner;  // whose deposit produced it
  };

  canister::BitcoinIntegration* integration_;
  std::string minter_id_;
  int required_confirmations_;
  Ledger ledger_;
  std::unordered_map<Ledger::Principal, UserAccount> accounts_;
  /// Credited deposit UTXOs available for withdrawals.
  std::vector<ManagedUtxo> managed_;
  std::unordered_set<bitcoin::OutPoint> credited_;
};

}  // namespace icbtc::contracts
