#include "contracts/btc_wallet.h"

#include <algorithm>

#include "bitcoin/script.h"
#include "crypto/ripemd160.h"

namespace icbtc::contracts {

using canister::Outcome;
using canister::Status;

BtcWallet::BtcWallet(canister::BitcoinIntegration& integration, crypto::DerivationPath path,
                     WalletType type)
    : integration_(&integration), path_(std::move(path)), type_(type) {
  auto network = integration_->canister().params().network;
  if (type_ == WalletType::kP2pkh) {
    public_key_ = integration_->subnet().ecdsa().public_key(path_);
    pubkey_bytes_ = public_key_.compressed();
    util::Hash160 key_hash = crypto::hash160(pubkey_bytes_);
    script_pubkey_ = bitcoin::p2pkh_script(key_hash);
    address_ = bitcoin::p2pkh_address(key_hash, network);
  } else {
    schnorr_key_ = integration_->subnet().schnorr().public_key(path_);
    auto key_bytes = schnorr_key_.bytes();
    pubkey_bytes_ = util::Bytes(key_bytes.data.begin(), key_bytes.data.end());
    script_pubkey_ = bitcoin::p2tr_script(key_bytes);
    address_ = bitcoin::p2tr_address(key_bytes, network);
  }
}

Outcome<bitcoin::Amount> BtcWallet::balance(int min_confirmations) {
  return integration_->canister().get_balance(address_, min_confirmations);
}

Outcome<std::vector<canister::Utxo>> BtcWallet::utxos(int min_confirmations) {
  std::vector<canister::Utxo> all;
  canister::GetUtxosRequest request;
  request.address = address_;
  request.min_confirmations = min_confirmations;
  for (;;) {
    auto outcome = integration_->canister().get_utxos(request);
    if (!outcome.ok()) return {outcome.status, {}};
    auto& response = outcome.value;
    all.insert(all.end(), response.utxos.begin(), response.utxos.end());
    if (!response.next_page) break;
    request.page = response.next_page;
  }
  return {Status::kOk, std::move(all)};
}

util::Hash256 BtcWallet::input_digest(const bitcoin::Transaction& tx, std::size_t index) const {
  return type_ == WalletType::kP2pkh ? bitcoin::legacy_sighash(tx, index, script_pubkey_)
                                     : bitcoin::taproot_sighash(tx, index, script_pubkey_);
}

void BtcWallet::apply_input_signature(bitcoin::Transaction& tx, std::size_t index,
                                      const crypto::Signature& sig) {
  ++signatures_requested_;
  tx.inputs[index].script_sig = bitcoin::p2pkh_script_sig(sig, pubkey_bytes_);
}

void BtcWallet::sign_input(bitcoin::Transaction& tx, std::size_t index) {
  if (type_ == WalletType::kP2pkh) {
    util::Hash256 digest = input_digest(tx, index);
    crypto::Signature sig = integration_->subnet().sign_with_ecdsa(digest, path_);
    apply_input_signature(tx, index, sig);
  } else {
    ++signatures_requested_;
    util::Hash256 digest = bitcoin::taproot_sighash(tx, index, script_pubkey_);
    crypto::SchnorrSignature sig = integration_->subnet().sign_with_schnorr(digest, path_);
    tx.inputs[index].script_sig = sig.bytes();
  }
}

void BtcWallet::sign_all_inputs(bitcoin::Transaction& tx) {
  if (type_ != WalletType::kP2pkh) {
    for (std::size_t i = 0; i < tx.inputs.size(); ++i) sign_input(tx, i);
    return;
  }
  std::vector<crypto::ThresholdEcdsaService::SignRequest> requests;
  requests.reserve(tx.inputs.size());
  for (std::size_t i = 0; i < tx.inputs.size(); ++i) {
    requests.push_back({input_digest(tx, i), path_});
  }
  std::vector<crypto::Signature> sigs = integration_->subnet().sign_with_ecdsa_batch(requests);
  for (std::size_t i = 0; i < sigs.size(); ++i) apply_input_signature(tx, i, sigs[i]);
}

SendResult BtcWallet::send(const std::vector<Payment>& payments,
                           bitcoin::Amount fee_per_vbyte, int min_confirmations) {
  SendResult result;

  // Resolve recipients first; any bad address fails the whole payment.
  bitcoin::Transaction tx;
  bitcoin::Amount total_out = 0;
  for (const auto& payment : payments) {
    auto decoded =
        bitcoin::decode_address(payment.to_address, integration_->canister().params().network);
    if (!decoded || payment.amount <= 0) {
      result.status = Status::kBadAddress;
      return result;
    }
    tx.outputs.push_back(bitcoin::TxOut{payment.amount, bitcoin::script_for_address(*decoded)});
    total_out += payment.amount;
  }

  auto available = utxos(min_confirmations);
  if (!available.ok()) {
    result.status = available.status;
    return result;
  }
  // Largest-first selection keeps input counts (and so signing costs) low.
  std::sort(available.value.begin(), available.value.end(),
            [](const canister::Utxo& a, const canister::Utxo& b) { return a.value > b.value; });

  // Iteratively select until inputs cover outputs + fee (fee depends on the
  // input count, so re-estimate as we add).
  std::size_t input_vbytes = type_ == WalletType::kP2pkh ? 148 : 100;
  auto estimate_fee = [&](std::size_t n_inputs, std::size_t n_outputs) {
    // ~148 vbytes per P2PKH input (~100 for taproot key-path), ~34 per
    // output, ~10 overhead.
    return fee_per_vbyte * static_cast<bitcoin::Amount>(input_vbytes * n_inputs +
                                                        34 * (n_outputs + 1) + 10);
  };
  bitcoin::Amount selected = 0;
  std::vector<canister::Utxo> inputs;
  for (const auto& utxo : available.value) {
    inputs.push_back(utxo);
    selected += utxo.value;
    if (selected >= total_out + estimate_fee(inputs.size(), tx.outputs.size())) break;
  }
  bitcoin::Amount fee = estimate_fee(inputs.size(), tx.outputs.size());
  if (selected < total_out + fee) {
    result.status = Status::kMalformedTransaction;  // insufficient funds
    return result;
  }

  for (const auto& utxo : inputs) {
    bitcoin::TxIn in;
    in.prevout = utxo.outpoint;
    tx.inputs.push_back(in);
  }
  bitcoin::Amount change = selected - total_out - fee;
  constexpr bitcoin::Amount kDustLimit = 546;
  if (change >= kDustLimit) {
    tx.outputs.push_back(bitcoin::TxOut{change, script_pubkey_});
  } else {
    fee += change;  // dust folds into the fee
  }

  // Threshold-sign every input under this wallet's derivation path, as one
  // batched signing pass.
  sign_all_inputs(tx);

  result.raw_tx = tx.serialize();
  result.status = integration_->canister().send_transaction(result.raw_tx);
  result.txid = tx.txid();
  result.fee = fee;
  result.inputs_used = tx.inputs.size();
  return result;
}

}  // namespace icbtc::contracts
